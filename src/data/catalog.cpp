#include "data/catalog.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace hpc::data {

std::string_view name_of(Sensitivity s) noexcept {
  switch (s) {
    case Sensitivity::kPublic: return "public";
    case Sensitivity::kInternal: return "internal";
    case Sensitivity::kRestricted: return "restricted";
  }
  return "internal";
}

int Catalog::add(std::string name, double size_gb, int home_site, int admin_domain,
                 Sensitivity sensitivity, std::string schema, sim::TimeNs created) {
  DatasetMeta m;
  m.id = static_cast<int>(datasets_.size());
  m.name = std::move(name);
  m.size_gb = size_gb;
  m.home_site = home_site;
  m.admin_domain = admin_domain;
  m.sensitivity = sensitivity;
  m.schema = std::move(schema);
  m.created = created;
  m.replica_sites.push_back(home_site);
  datasets_.push_back(std::move(m));
  return datasets_.back().id;
}

int Catalog::derive(std::string name, const std::vector<int>& parents,
                    std::string transform, double size_gb, int home_site,
                    int admin_domain, Sensitivity sensitivity, sim::TimeNs created) {
  for (const int p : parents) (void)get(p);  // validate
  const int id = add(std::move(name), size_gb, home_site, admin_domain, sensitivity, "",
                     created);
  datasets_[static_cast<std::size_t>(id)].parents = parents;
  datasets_[static_cast<std::size_t>(id)].transform = std::move(transform);
  return id;
}

const DatasetMeta& Catalog::get(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= datasets_.size())
    throw std::out_of_range("catalog: unknown dataset id " + std::to_string(id));
  return datasets_[static_cast<std::size_t>(id)];
}

std::vector<int> Catalog::ancestors(int id) const {
  std::vector<int> out;
  std::vector<bool> seen(datasets_.size(), false);
  std::deque<int> queue(get(id).parents.begin(), get(id).parents.end());
  while (!queue.empty()) {
    const int cur = queue.front();
    queue.pop_front();
    if (seen[static_cast<std::size_t>(cur)]) continue;
    seen[static_cast<std::size_t>(cur)] = true;
    out.push_back(cur);
    for (const int p : get(cur).parents) queue.push_back(p);
  }
  return out;
}

std::vector<int> Catalog::descendants(int id) const {
  std::vector<int> out;
  for (const DatasetMeta& m : datasets_) {
    const std::vector<int> anc = ancestors(m.id);
    if (std::find(anc.begin(), anc.end(), id) != anc.end()) out.push_back(m.id);
  }
  return out;
}

std::vector<ProvenanceStep> Catalog::provenance(int id) const {
  // Roots first: ancestors() is nearest-first, so reverse it.
  std::vector<int> chain = ancestors(id);
  std::reverse(chain.begin(), chain.end());
  chain.push_back(id);
  std::vector<ProvenanceStep> steps;
  for (const int d : chain) {
    const DatasetMeta& m = get(d);
    ProvenanceStep s;
    s.dataset = d;
    s.description = m.parents.empty()
                        ? m.name + " (source)"
                        : m.name + " <- " + m.transform;
    steps.push_back(std::move(s));
  }
  return steps;
}

bool Catalog::may_move_to(int id, int site, int domain) const {
  const DatasetMeta& m = get(id);
  switch (m.sensitivity) {
    case Sensitivity::kPublic: return true;
    case Sensitivity::kInternal: return domain == m.admin_domain;
    case Sensitivity::kRestricted: return site == m.home_site;
  }
  return false;
}

void Catalog::add_replica(int id, int site) {
  auto& replicas = datasets_[static_cast<std::size_t>(get(id).id)].replica_sites;
  if (std::find(replicas.begin(), replicas.end(), site) == replicas.end())
    replicas.push_back(site);
}

std::optional<Catalog::ReplicaChoice> Catalog::cheapest_replica(
    int id, int site, int domain, const TransferOracle& oracle) const {
  const DatasetMeta& m = get(id);
  if (!may_move_to(id, site, domain)) return std::nullopt;
  std::optional<ReplicaChoice> best;
  for (const int r : m.replica_sites) {
    const double cost = r == site ? 0.0 : oracle(r, site, m.size_gb);
    if (!best || cost < best->transfer_ns) best = ReplicaChoice{r, cost};
  }
  return best;
}

Catalog::StagingPlan Catalog::plan_staging(const std::vector<int>& ids, int site,
                                           int domain, const TransferOracle& oracle) const {
  StagingPlan plan;
  for (const int id : ids) {
    const auto choice = cheapest_replica(id, site, domain, oracle);
    if (!choice) {
      plan.unmovable.push_back(id);
      continue;
    }
    if (choice->from_site != site) {
      plan.total_gb += get(id).size_gb;
      plan.total_ns += choice->transfer_ns;
    }
  }
  return plan;
}

}  // namespace hpc::data
