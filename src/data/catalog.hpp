#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

/// \file catalog.hpp
/// The common data foundation (Section III.A): "well-defined foundational
/// data protocols can accelerate innovation by providing actionable metadata
/// and preserving important aspects such as lineage and provenance ... while
/// preserving security, interoperability and data governance".
///
/// The catalog tracks datasets, their locations/replicas, their derivation
/// graph (lineage), and governance labels that constrain where they may move.

namespace hpc::data {

/// Governance label controlling cross-domain movement.
enum class Sensitivity : std::uint8_t {
  kPublic,      ///< moves anywhere
  kInternal,    ///< moves within the owning administrative domain
  kRestricted,  ///< pinned to its home site
};

std::string_view name_of(Sensitivity s) noexcept;

/// Metadata record of one dataset version.
struct DatasetMeta {
  int id = 0;
  std::string name;
  double size_gb = 0.0;
  int home_site = 0;
  int admin_domain = 0;
  Sensitivity sensitivity = Sensitivity::kInternal;
  std::string schema;          ///< free-form schema tag
  std::vector<int> parents;    ///< lineage: datasets this was derived from
  std::string transform;       ///< derivation description (provenance)
  sim::TimeNs created = 0;
  std::vector<int> replica_sites;  ///< sites holding a full copy (incl. home)
};

/// One step of a provenance chain, rendered for audits.
struct ProvenanceStep {
  int dataset = 0;
  std::string description;
};

/// Per-site pairwise transfer-time oracle: (from_site, to_site, gb) -> ns.
using TransferOracle = std::function<double(int, int, double)>;

/// The data catalog.
class Catalog {
 public:
  /// Registers a root dataset; returns its id.
  int add(std::string name, double size_gb, int home_site, int admin_domain,
          Sensitivity sensitivity, std::string schema, sim::TimeNs created = 0);

  /// Registers a dataset derived from \p parents via \p transform; lineage is
  /// recorded.  Throws std::out_of_range on unknown parents.
  int derive(std::string name, const std::vector<int>& parents, std::string transform,
             double size_gb, int home_site, int admin_domain, Sensitivity sensitivity,
             sim::TimeNs created = 0);

  const DatasetMeta& get(int id) const;
  std::size_t size() const noexcept { return datasets_.size(); }

  /// All ancestors of \p id (deduplicated, nearest first).
  std::vector<int> ancestors(int id) const;

  /// All datasets derived (transitively) from \p id.
  std::vector<int> descendants(int id) const;

  /// Human-readable provenance chain from roots to \p id.
  std::vector<ProvenanceStep> provenance(int id) const;

  /// Governance: may \p id be copied into \p domain at \p site?
  bool may_move_to(int id, int site, int domain) const;

  /// Records that \p site now holds a replica (no-op if already there).
  void add_replica(int id, int site);

  /// The replica whose transfer to \p site is cheapest under \p oracle, with
  /// its cost; nullopt if governance forbids every option.
  struct ReplicaChoice {
    int from_site = 0;
    double transfer_ns = 0.0;
  };
  std::optional<ReplicaChoice> cheapest_replica(int id, int site, int domain,
                                                const TransferOracle& oracle) const;

  /// Total bytes that would move to materialize \p ids at \p site (using the
  /// cheapest governed replica; unmovable datasets are skipped and reported).
  struct StagingPlan {
    double total_gb = 0.0;
    double total_ns = 0.0;
    std::vector<int> unmovable;
  };
  StagingPlan plan_staging(const std::vector<int>& ids, int site, int domain,
                           const TransferOracle& oracle) const;

 private:
  std::vector<DatasetMeta> datasets_;
};

}  // namespace hpc::data
