#include "edge/pipeline.hpp"

#include <algorithm>

namespace hpc::edge {

namespace {

/// Queueing inflation for a utilized server (M/D/1-flavoured): latency grows
/// as 1/(1-rho) and the link starts dropping beyond saturation.
double queueing_factor(double utilization) noexcept {
  const double rho = std::min(utilization, 0.95);
  return 1.0 / (1.0 - rho);
}

}  // namespace

PipelineOutcome backhaul_all(const InstrumentSpec& inst, const Deployment& dep) {
  PipelineOutcome out;
  out.wan_gbs_required = mean_rate_gbs(inst);
  out.wan_utilization = out.wan_gbs_required / dep.wan_bandwidth_gbs;
  out.frames_lost_fraction =
      out.wan_utilization > 1.0 ? 1.0 - 1.0 / out.wan_utilization : 0.0;

  const double transfer_ns = inst.frame_bytes / dep.wan_bandwidth_gbs;  // bytes/(GB/s)=ns
  out.mean_decision_latency_ns =
      (dep.wan_rtt_ns / 2.0 + transfer_ns) * queueing_factor(out.wan_utilization) +
      dep.core_inference_ns;
  out.energy_per_frame_j = dep.core_power_w * dep.core_inference_ns * 1e-9;
  return out;
}

PipelineOutcome edge_triage(const InstrumentSpec& inst, const Deployment& dep) {
  PipelineOutcome out;
  // Interesting frames cross in full; the rest send a compact feature record.
  out.wan_gbs_required =
      mean_rate_gbs(inst) * inst.interesting_fraction +
      inst.frames_per_s * inst.burst_duty * dep.feature_bytes *
          (1.0 - inst.interesting_fraction) / 1e9;
  out.wan_utilization = out.wan_gbs_required / dep.wan_bandwidth_gbs;
  out.frames_lost_fraction =
      out.wan_utilization > 1.0 ? 1.0 - 1.0 / out.wan_utilization : 0.0;
  // The actionable verdict is produced at the edge, WAN not in the loop.
  out.mean_decision_latency_ns = dep.edge_inference_ns;
  out.energy_per_frame_j = dep.edge_power_w * dep.edge_inference_ns * 1e-9;
  return out;
}

}  // namespace hpc::edge
