#pragma once

#include "sim/rng.hpp"
#include "sim/stats.hpp"

/// \file control.hpp
/// Real-time control at the instrumentation edge (Section III.A: "real-time
/// predictive analytics, control, and optimization is needed to minimize the
/// need of a human-in-the-loop for operating the instrumentation edge").
///
/// A disturbed first-order plant (e.g. beam position against thermal drift)
/// is regulated by a PID controller whose actuation arrives after a loop
/// delay.  Placing the controller at the edge (sub-ms delay) versus at the
/// remote core (WAN round trip) changes the achievable regulation error —
/// that difference is the quantitative content of the paper's claim.

namespace hpc::edge {

/// First-order linear plant  dx/dt = a x + b u + w,  w ~ N(0, sigma) pulses.
struct Plant {
  double a = -0.5;              ///< natural decay (stable for a < 0)
  double b = 1.0;               ///< actuator gain
  double disturbance_sigma = 0.3;  ///< per-step random disturbance
  double step_disturbance = 1.0;   ///< occasional setpoint kicks
  double kick_probability = 0.001;
  double actuator_limit = 60.0;    ///< |u| saturation
};

/// Textbook PID, tuned tight: a fast instrument loop runs high gain, which
/// is exactly what makes it intolerant of loop delay.
struct PidGains {
  double kp = 50.0;
  double ki = 5.0;
  double kd = 0.0;
};

/// Regulation quality of one closed-loop run.
struct ControlResult {
  double rms_error = 0.0;
  double max_error = 0.0;
  double settled_fraction = 0.0;  ///< fraction of time within the 5% band
};

/// Simulates \p duration_s of closed-loop regulation toward setpoint 0 with a
/// sensor-to-actuator loop delay of \p delay_steps control periods of
/// \p dt_s seconds each.
ControlResult run_control_loop(const Plant& plant, const PidGains& gains, double dt_s,
                               int delay_steps, double duration_s, sim::Rng& rng);

}  // namespace hpc::edge
