#pragma once

#include <cstdint>

#include "edge/instrument.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

/// \file stream_sim.hpp
/// Event-driven edge triage pipeline on the discrete-event kernel.
///
/// Where pipeline.hpp gives closed-form steady-state answers, this simulates
/// the actual frame-by-frame dynamics: Poisson frame arrivals during bursts,
/// a finite inference queue in front of k parallel NPU engines, tail-drop
/// when the queue overflows, and per-frame latency percentiles — the queueing
/// behaviour a real "second wave" edge deployment must be provisioned for
/// (paper Section III.B).

namespace hpc::edge {

/// Edge inference station: k engines behind one finite queue.
struct StationConfig {
  int engines = 4;                 ///< parallel NPU inference engines
  double service_ns = 400e3;       ///< per-frame inference time
  int queue_capacity = 64;         ///< frames buffered before tail drop
};

/// Result of streaming a duration of instrument frames through the station.
struct StreamResult {
  std::int64_t frames_offered = 0;
  std::int64_t frames_served = 0;
  std::int64_t frames_dropped = 0;
  double drop_fraction = 0.0;
  double mean_latency_ns = 0.0;    ///< arrival -> verdict (queue + service)
  double p99_latency_ns = 0.0;
  double utilization = 0.0;        ///< busy engine-time / total engine-time
};

/// Simulates \p duration_s of frames from \p inst through the station.
/// Arrivals are Poisson at the burst rate gated by an on/off duty cycle.
StreamResult run_stream(const InstrumentSpec& inst, const StationConfig& station,
                        double duration_s, sim::Rng& rng);

}  // namespace hpc::edge
