#pragma once

#include <cstdint>
#include <deque>

#include "edge/instrument.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

/// \file stream_sim.hpp
/// Event-driven edge triage pipeline on the discrete-event kernel.
///
/// Where pipeline.hpp gives closed-form steady-state answers, this simulates
/// the actual frame-by-frame dynamics: Poisson frame arrivals during bursts,
/// a finite inference queue in front of k parallel NPU engines, tail-drop
/// when the queue overflows, and per-frame latency percentiles — the queueing
/// behaviour a real "second wave" edge deployment must be provisioned for
/// (paper Section III.B).
///
/// StreamSim is a sim::Component: attach it to a shared sim::Engine to run
/// the station alongside other substrates on one clock.  The `run_stream`
/// convenience wrapper constructs a private Engine and drives it to the
/// horizon — bit-identical to the historical free-standing simulator.

namespace hpc::edge {

/// Edge inference station: k engines behind one finite queue.
struct StationConfig {
  int engines = 4;                 ///< parallel NPU inference engines
  double service_ns = 400e3;       ///< per-frame inference time
  int queue_capacity = 64;         ///< frames buffered before tail drop
};

/// Result of streaming a duration of instrument frames through the station.
struct StreamResult {
  std::int64_t frames_offered = 0;
  std::int64_t frames_served = 0;
  std::int64_t frames_dropped = 0;
  double drop_fraction = 0.0;
  double mean_latency_ns = 0.0;    ///< arrival -> verdict (queue + service)
  double p99_latency_ns = 0.0;
  double utilization = 0.0;        ///< busy engine-time / total engine-time
};

/// Edge station component: frames from \p inst flow through k engines on the
/// shared clock, for \p duration_s of simulated time past attach.  Frames
/// still in service at the horizon are not counted as served.
class StreamSim final : public sim::Component {
 public:
  /// \p rng is borrowed (callers often share one generator across sweeps);
  /// it must outlive the component.
  StreamSim(const InstrumentSpec& inst, const StationConfig& station, double duration_s,
            sim::Rng& rng)
      : inst_(inst), station_(station), duration_s_(duration_s), rng_(&rng) {}

  // sim::Component contract.
  [[nodiscard]] std::string_view component_name() const noexcept override {
    return "edge.stream";
  }
  /// Schedules the deterministic burst windows (100 ms on, idle sized by the
  /// duty cycle) with Poisson arrivals within each window.
  void on_attach(sim::Engine& engine) override;

  /// Absolute shared time the station stops accepting/serving work.
  [[nodiscard]] sim::TimeNs horizon() const noexcept { return horizon_; }

  /// Final counters and latency percentiles; resets per-session state.
  [[nodiscard]] StreamResult take_result();

 private:
  void start_service();
  void finish_frame();
  void frame_arrives();
  void arrival_chain(sim::TimeNs window_end);

  InstrumentSpec inst_;
  StationConfig station_;
  double duration_s_;
  sim::Rng* rng_;

  // Session state (between on_attach and take_result).
  sim::TimeNs horizon_ = 0;
  std::deque<sim::TimeNs> queue_;  ///< arrival timestamps of buffered frames
  int busy_engines_ = 0;
  double busy_ns_ = 0.0;
  sim::Sampler latency_;
  StreamResult result_;
};

/// Simulates \p duration_s of frames from \p inst through the station.
/// Arrivals are Poisson at the burst rate gated by an on/off duty cycle.
StreamResult run_stream(const InstrumentSpec& inst, const StationConfig& station,
                        double duration_s, sim::Rng& rng);

}  // namespace hpc::edge
