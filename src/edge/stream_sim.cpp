#include "edge/stream_sim.hpp"

#include <algorithm>

namespace hpc::edge {

void StreamSim::start_service() {
  const sim::TimeNs now = engine()->now();
  while (busy_engines_ < station_.engines && !queue_.empty()) {
    const sim::TimeNs arrived = queue_.front();
    queue_.pop_front();
    ++busy_engines_;
    busy_ns_ += station_.service_ns;
    const sim::TimeNs done = now + static_cast<sim::TimeNs>(station_.service_ns);
    latency_.push(static_cast<double>(done - arrived));
    engine()->schedule_at(done, [this] { finish_frame(); });
  }
}

void StreamSim::finish_frame() {
  // Past-horizon events only exist when a shared engine runs longer than
  // this station's window; the batch wrapper stops at the horizon, so the
  // gate preserves its exact accounting.
  if (engine()->now() > horizon_) return;
  --busy_engines_;
  ++result_.frames_served;
  start_service();
}

void StreamSim::frame_arrives() {
  ++result_.frames_offered;
  if (static_cast<int>(queue_.size()) >= station_.queue_capacity) {
    ++result_.frames_dropped;
  } else {
    queue_.push_back(engine()->now());
    start_service();
  }
}

void StreamSim::arrival_chain(sim::TimeNs window_end) {
  const sim::TimeNs now = engine()->now();
  if (now >= horizon_ || now >= window_end) return;
  frame_arrives();
  const double mean_gap_ns = 1e9 / inst_.frames_per_s;
  const auto gap = static_cast<sim::TimeNs>(std::max(1.0, rng_->exponential(mean_gap_ns)));
  engine()->schedule_in(gap, [this, window_end] { arrival_chain(window_end); });
}

void StreamSim::on_attach(sim::Engine& engine) {
  queue_.clear();
  busy_engines_ = 0;
  busy_ns_ = 0.0;
  latency_ = sim::Sampler{};
  result_ = StreamResult{};
  const sim::TimeNs start = engine.now();
  horizon_ = start + sim::from_seconds(duration_s_);

  // Deterministic burst windows (100 ms on, idle sized by the duty cycle);
  // Poisson arrivals within each window.
  const double burst_ns = 100e6;
  const double idle_ns =
      inst_.burst_duty >= 1.0 ? 0.0 : burst_ns * (1.0 - inst_.burst_duty) / inst_.burst_duty;
  const double mean_gap_ns = 1e9 / inst_.frames_per_s;
  const auto window_span = static_cast<double>(horizon_ - start);

  for (double t = 0.0; t < window_span; t += burst_ns + idle_ns) {
    const auto window_start = start + static_cast<sim::TimeNs>(t);
    const auto window_end =
        std::min(horizon_, window_start + static_cast<sim::TimeNs>(burst_ns));
    const auto first =
        window_start + static_cast<sim::TimeNs>(rng_->exponential(mean_gap_ns));
    engine.schedule_at(first, [this, window_end] { arrival_chain(window_end); });
    if (idle_ns <= 0.0 && burst_ns >= window_span) break;
  }
}

StreamResult StreamSim::take_result() {
  StreamResult result = result_;
  result.drop_fraction =
      result.frames_offered > 0
          ? static_cast<double>(result.frames_dropped) / result.frames_offered
          : 0.0;
  result.mean_latency_ns = latency_.mean();
  result.p99_latency_ns = latency_.p99();
  const double engine_ns = duration_s_ * 1e9 * station_.engines;
  result.utilization = engine_ns > 0.0 ? std::min(1.0, busy_ns_ / engine_ns) : 0.0;
  queue_.clear();
  busy_engines_ = 0;
  busy_ns_ = 0.0;
  latency_ = sim::Sampler{};
  result_ = StreamResult{};
  return result;
}

StreamResult run_stream(const InstrumentSpec& inst, const StationConfig& station,
                        double duration_s, sim::Rng& rng) {
  sim::Engine engine(rng.seed());
  StreamSim stream(inst, station, duration_s, rng);
  engine.attach(stream);
  engine.run_until(stream.horizon());
  engine.detach(stream);
  return stream.take_result();
}

}  // namespace hpc::edge
