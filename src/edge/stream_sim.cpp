#include "edge/stream_sim.hpp"

#include <algorithm>
#include <deque>
#include <functional>

namespace hpc::edge {

StreamResult run_stream(const InstrumentSpec& inst, const StationConfig& station,
                        double duration_s, sim::Rng& rng) {
  sim::Simulator sim;
  StreamResult result;
  sim::Sampler latency;
  std::deque<sim::TimeNs> queue;  // arrival timestamps of buffered frames
  int busy_engines = 0;
  double busy_ns = 0.0;
  const auto horizon = sim::from_seconds(duration_s);

  std::function<void()> finish_frame;
  auto start_service = [&]() {
    while (busy_engines < station.engines && !queue.empty()) {
      const sim::TimeNs arrived = queue.front();
      queue.pop_front();
      ++busy_engines;
      busy_ns += station.service_ns;
      const sim::TimeNs done = sim.now() + static_cast<sim::TimeNs>(station.service_ns);
      latency.push(static_cast<double>(done - arrived));
      sim.schedule_at(done, [&] { finish_frame(); });
    }
  };
  finish_frame = [&] {
    --busy_engines;
    ++result.frames_served;
    start_service();
  };

  auto frame_arrives = [&]() {
    ++result.frames_offered;
    if (static_cast<int>(queue.size()) >= station.queue_capacity) {
      ++result.frames_dropped;
    } else {
      queue.push_back(sim.now());
      start_service();
    }
  };

  // Deterministic burst windows (100 ms on, idle sized by the duty cycle);
  // Poisson arrivals within each window.
  const double burst_ns = 100e6;
  const double idle_ns =
      inst.burst_duty >= 1.0 ? 0.0 : burst_ns * (1.0 - inst.burst_duty) / inst.burst_duty;
  const double mean_gap_ns = 1e9 / inst.frames_per_s;

  std::function<void(sim::TimeNs)> arrival_chain = [&](sim::TimeNs window_end) {
    if (sim.now() >= horizon || sim.now() >= window_end) return;
    frame_arrives();
    const auto gap = static_cast<sim::TimeNs>(std::max(1.0, rng.exponential(mean_gap_ns)));
    sim.schedule_in(gap, [&, window_end] { arrival_chain(window_end); });
  };

  for (double t = 0.0; t < static_cast<double>(horizon); t += burst_ns + idle_ns) {
    const auto window_start = static_cast<sim::TimeNs>(t);
    const auto window_end =
        std::min(horizon, window_start + static_cast<sim::TimeNs>(burst_ns));
    const auto first =
        window_start + static_cast<sim::TimeNs>(rng.exponential(mean_gap_ns));
    sim.schedule_at(first, [&, window_end] { arrival_chain(window_end); });
    if (idle_ns <= 0.0 && burst_ns >= static_cast<double>(horizon)) break;
  }
  sim.run_until(horizon);

  result.drop_fraction =
      result.frames_offered > 0
          ? static_cast<double>(result.frames_dropped) / result.frames_offered
          : 0.0;
  result.mean_latency_ns = latency.mean();
  result.p99_latency_ns = latency.p99();
  const double engine_ns = duration_s * 1e9 * station.engines;
  result.utilization = engine_ns > 0.0 ? std::min(1.0, busy_ns / engine_ns) : 0.0;
  return result;
}

}  // namespace hpc::edge
