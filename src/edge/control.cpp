#include "edge/control.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace hpc::edge {

ControlResult run_control_loop(const Plant& plant, const PidGains& gains, double dt_s,
                               int delay_steps, double duration_s, sim::Rng& rng) {
  const int steps = static_cast<int>(duration_s / dt_s);
  double x = 1.0;  // initial offset to regulate away
  double integral = 0.0;
  double prev_err = -x;

  // Actuation pipeline: u computed now is applied delay_steps later.
  std::deque<double> pipeline(static_cast<std::size_t>(std::max(0, delay_steps)), 0.0);

  ControlResult res;
  double sum_sq = 0.0;
  int settled = 0;
  for (int s = 0; s < steps; ++s) {
    const double err = -x;  // setpoint is 0
    integral = std::clamp(integral + err * dt_s, -10.0, 10.0);
    const double derivative = (err - prev_err) / dt_s;
    prev_err = err;
    const double u_new =
        std::clamp(gains.kp * err + gains.ki * integral + gains.kd * derivative,
                   -plant.actuator_limit, plant.actuator_limit);

    pipeline.push_back(u_new);
    const double u = pipeline.front();
    pipeline.pop_front();

    // Integrate the plant over one period (forward Euler, small dt).
    double w = rng.normal(0.0, plant.disturbance_sigma) * std::sqrt(dt_s);
    if (rng.bernoulli(plant.kick_probability)) w += plant.step_disturbance;
    x += (plant.a * x + plant.b * u) * dt_s + w;

    sum_sq += x * x;
    res.max_error = std::max(res.max_error, std::abs(x));
    if (std::abs(x) < 0.05) ++settled;
  }
  res.rms_error = steps > 0 ? std::sqrt(sum_sq / steps) : 0.0;
  res.settled_fraction = steps > 0 ? static_cast<double>(settled) / steps : 0.0;
  return res;
}

}  // namespace hpc::edge
