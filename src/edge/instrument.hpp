#pragma once

#include <cstdint>
#include <string>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

/// \file instrument.hpp
/// Scientific instruments at the "heavy edge" (Section III.A): light sources,
/// particle detectors and similar burst data sources whose output has become
/// "a critical bottleneck ... expected to get even worse with new generations
/// of faster and more detailed experimental facilities".

namespace hpc::edge {

/// Data-production profile of an instrument.
struct InstrumentSpec {
  std::string name = "detector";
  double frame_bytes = 1e6;          ///< bytes per detector frame
  double frames_per_s = 1'000.0;     ///< frame rate while bursting
  double burst_duty = 1.0;           ///< fraction of time bursting
  double interesting_fraction = 0.05;///< frames containing signal worth keeping
};

/// Current-generation synchrotron light-source beamline detector.
InstrumentSpec light_source_spec();

/// Next-generation upgrade (the paper's "faster and more detailed"): 10x the
/// frame rate, 4x the frame size.
InstrumentSpec light_source_upgrade_spec();

/// Particle-physics detector front end after hardware triggering.
InstrumentSpec particle_detector_spec();

/// Mean data rate in GB/s the instrument produces.
double mean_rate_gbs(const InstrumentSpec& spec) noexcept;

/// Samples frames over \p duration_s: total frames, interesting frames.
struct FrameSample {
  std::int64_t frames = 0;
  std::int64_t interesting = 0;
};
FrameSample sample_frames(const InstrumentSpec& spec, double duration_s, sim::Rng& rng);

}  // namespace hpc::edge
