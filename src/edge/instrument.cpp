#include "edge/instrument.hpp"

#include <cmath>

namespace hpc::edge {

InstrumentSpec light_source_spec() {
  return {"light-source", 4e6, 1'000.0, 0.8, 0.05};
}

InstrumentSpec light_source_upgrade_spec() {
  return {"light-source-ng", 16e6, 10'000.0, 0.8, 0.02};
}

InstrumentSpec particle_detector_spec() {
  return {"particle-detector", 2e5, 100'000.0, 0.5, 0.001};
}

double mean_rate_gbs(const InstrumentSpec& spec) noexcept {
  return spec.frame_bytes * spec.frames_per_s * spec.burst_duty / 1e9;
}

FrameSample sample_frames(const InstrumentSpec& spec, double duration_s, sim::Rng& rng) {
  FrameSample out;
  const double expected = spec.frames_per_s * spec.burst_duty * duration_s;
  out.frames = static_cast<std::int64_t>(expected);
  for (std::int64_t i = 0; i < out.frames; ++i)
    if (rng.bernoulli(spec.interesting_fraction)) ++out.interesting;
  return out;
}

}  // namespace hpc::edge
