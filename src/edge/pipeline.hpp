#pragma once

#include "edge/instrument.hpp"

/// \file pipeline.hpp
/// Edge-vs-backhaul analysis pipelines (Sections III.A/B): either every
/// frame streams to the supercomputing core over the facility WAN, or a
/// "second wave" edge inference accelerator triages frames at the source and
/// forwards only the interesting ones (plus compact features for the rest).
/// Experiment C9 sweeps instrument generations over both designs.

namespace hpc::edge {

/// Deployment parameters shared by both pipeline designs.
struct Deployment {
  double wan_bandwidth_gbs = 1.25;      ///< facility uplink
  double wan_rtt_ns = 10e6;             ///< to the core and back
  double core_inference_ns = 50e3;      ///< per-frame decision at the core
  double edge_inference_ns = 400e3;     ///< per-frame decision on the edge NPU
  double edge_power_w = 15.0;           ///< NPU board power
  double core_power_w = 400.0;          ///< GPU share at the core
  double feature_bytes = 2'048.0;       ///< compact descriptor per triaged frame
};

/// Outcome of operating a pipeline at steady state.
struct PipelineOutcome {
  double wan_gbs_required = 0.0;   ///< offered WAN load
  double wan_utilization = 0.0;    ///< offered / available
  double frames_lost_fraction = 0.0;  ///< dropped when the uplink saturates
  double mean_decision_latency_ns = 0.0;  ///< frame capture -> actionable verdict
  double energy_per_frame_j = 0.0;
};

/// Everything streams to the core; decisions happen there.
PipelineOutcome backhaul_all(const InstrumentSpec& inst, const Deployment& dep);

/// Edge NPU triages; only interesting frames (plus features) cross the WAN.
PipelineOutcome edge_triage(const InstrumentSpec& inst, const Deployment& dep);

}  // namespace hpc::edge
