#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

/// \file forwards.hpp
/// Forward contracts on compute capacity (paper Section III.F: the new
/// exchange economy enables "consumer and provider market orders strategies,
/// third-party brokers, technology speculators and future HPC architectures
/// risk hedging").
///
/// A forward locks a price today for node-hours delivered at a future round.
/// Settlement is cash-settled against the spot price at delivery — zero-sum
/// by construction.  The canonical use: a consumer with a known future
/// campaign hedges against spot volatility.

namespace hpc::market {

/// One cash-settled forward contract.
struct ForwardContract {
  int buyer = 0;            ///< agent locking the purchase price
  int seller = 0;
  double strike = 0.0;      ///< $ per node-hour agreed today
  double quantity = 0.0;    ///< node-hours
  int delivery_round = 0;

  /// Cash the buyer receives at settlement (negative = pays): the buyer
  /// profits when spot ends above the strike.
  double buyer_payoff(double spot) const noexcept { return (spot - strike) * quantity; }
};

/// Settlement book: registers forwards and settles them against spot fixes.
class ForwardBook {
 public:
  /// Registers a contract; returns its id.
  int add(const ForwardContract& contract);

  /// Settles every contract with delivery_round == round at \p spot.
  /// Returns the settled contracts (cash already attributed via payoffs()).
  std::vector<ForwardContract> settle(int round, double spot);

  /// Net cash position of an agent across all settlements so far.
  double cash(int agent) const;

  /// Sum of all agents' cash — 0 by construction.
  double imbalance() const;

  std::size_t open_contracts() const noexcept { return open_.size(); }

 private:
  std::vector<ForwardContract> open_;
  std::vector<std::pair<int, double>> cash_;  // agent, delta
};

/// Hedging experiment: a consumer must buy \p quantity node-hours at a future
/// round under a stochastic spot-price path.  Compares the effective price
/// paid unhedged (pure spot) vs hedged (a forward at today's fair strike).
struct HedgeOutcome {
  double mean_unhedged = 0.0;
  double stdev_unhedged = 0.0;
  double mean_hedged = 0.0;
  double stdev_hedged = 0.0;   ///< ~0: the hedge removes price risk
};

/// Simulates \p trials independent geometric-random-walk spot paths of
/// \p rounds steps starting at \p spot0 with per-round volatility \p sigma.
HedgeOutcome evaluate_hedge(double spot0, double sigma, int rounds, double quantity,
                            int trials, sim::Rng& rng);

}  // namespace hpc::market
