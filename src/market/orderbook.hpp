#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

/// \file orderbook.hpp
/// Price-time-priority limit order book for the Open Compute Exchange
/// (Section III.F: "in many ways similar to existing commodity exchange
/// (e.g., the Chicago Mercantile)").  The traded good is a node-hour of
/// compute capacity; prices are $/node-hour.

namespace hpc::market {

/// Order side.
enum class Side : std::uint8_t { kBid, kAsk };

/// A resting or incoming limit order.
struct Order {
  int id = 0;
  int agent = 0;
  Side side = Side::kBid;
  double price = 0.0;
  double quantity = 0.0;   ///< node-hours remaining
  std::uint64_t seq = 0;   ///< arrival sequence (time priority)
};

/// An executed trade.
struct Trade {
  int buyer = 0;     ///< agent id
  int seller = 0;    ///< agent id
  double price = 0.0;
  double quantity = 0.0;
  std::uint64_t seq = 0;  ///< matching sequence
};

/// Central limit order book with continuous matching.
class OrderBook {
 public:
  /// Submits a limit order; crosses immediately against the opposite side at
  /// resting-order prices (price-time priority); any remainder rests.
  /// Returns the order id (usable with cancel() while any part rests).
  int submit(int agent, Side side, double price, double quantity);

  /// Cancels a resting order by id; returns false if not found (fully filled
  /// or already cancelled).
  bool cancel(int order_id);

  /// Drains the trades executed since the last call.
  std::vector<Trade> take_trades();

  std::optional<double> best_bid() const;
  std::optional<double> best_ask() const;
  /// Mid price if both sides quoted, else whichever side exists, else nullopt.
  std::optional<double> mid() const;

  /// Total resting quantity on a side.
  double depth(Side side) const;
  std::size_t open_orders() const;

  /// Price of the most recent trade (nullopt before the first trade).
  std::optional<double> last_trade_price() const { return last_price_; }

 private:
  // Bids: highest price first; asks: lowest price first.  Each level holds a
  // FIFO of orders.
  std::map<double, std::vector<Order>, std::greater<double>> bids_;
  std::map<double, std::vector<Order>> asks_;
  std::vector<Trade> trades_;
  std::optional<double> last_price_;
  int next_id_ = 1;
  std::uint64_t next_seq_ = 1;
};

}  // namespace hpc::market
