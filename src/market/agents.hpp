#pragma once

#include <memory>
#include <string>
#include <vector>

#include "market/orderbook.hpp"
#include "sim/rng.hpp"

/// \file agents.hpp
/// Trading agents of the Open Compute Exchange (Section III.F/G): capacity
/// providers, compute consumers, market-making brokers, and "technology
/// speculators" — the roles the paper predicts the new economy instantiates.
/// Providers/consumers adapt their quotes tatonnement-style, which is how the
/// non-cooperative game approaches the competitive equilibrium (tested in C8).

namespace hpc::market {

class Exchange;  // forward

/// Common agent interface.
class Agent {
 public:
  explicit Agent(std::string name) : name_(std::move(name)) {}
  virtual ~Agent() = default;

  /// Quotes/acts for one trading round.
  virtual void step(Exchange& ex, sim::Rng& rng) = 0;

  /// Called for every fill this agent participated in.
  virtual void on_fill(const Trade& trade, bool as_buyer);

  int id() const noexcept { return id_; }
  void set_id(int id) noexcept { id_ = id; }
  const std::string& name() const noexcept { return name_; }

  double cash() const noexcept { return cash_; }
  double inventory() const noexcept { return inventory_; }  ///< node-hours held

 protected:
  double cash_ = 0.0;
  double inventory_ = 0.0;

 private:
  int id_ = -1;
  std::string name_;
};

/// Site selling spare capacity: asks start above marginal cost and walk down
/// while unsold, up after fills.
class ProviderAgent final : public Agent {
 public:
  ProviderAgent(std::string name, double marginal_cost, double capacity_per_round,
                double initial_markup = 0.5, double step = 0.05);
  void step(Exchange& ex, sim::Rng& rng) override;
  void on_fill(const Trade& trade, bool as_buyer) override;

  double marginal_cost() const noexcept { return cost_; }
  double sold_total() const noexcept { return sold_; }
  double offered_total() const noexcept { return offered_; }

 private:
  double cost_;
  double capacity_;
  double markup_;
  double step_;
  double sold_ = 0.0;
  double offered_ = 0.0;
  bool filled_last_round_ = false;
  int resting_ = -1;
};

/// User buying node-hours for jobs: bids start below willingness-to-pay and
/// walk up while unfilled.
class ConsumerAgent final : public Agent {
 public:
  ConsumerAgent(std::string name, double valuation, double demand_per_round,
                double initial_margin = 0.5, double step = 0.05);
  void step(Exchange& ex, sim::Rng& rng) override;
  void on_fill(const Trade& trade, bool as_buyer) override;

  double valuation() const noexcept { return value_; }
  double bought_total() const noexcept { return bought_; }
  double demanded_total() const noexcept { return demanded_; }

 private:
  double value_;
  double demand_;
  double margin_;
  double step_;
  double bought_ = 0.0;
  double demanded_ = 0.0;
  bool filled_last_round_ = false;
  int resting_ = -1;
};

/// Third-party broker quoting both sides around the last price with a spread,
/// providing liquidity within an inventory limit.
class BrokerAgent final : public Agent {
 public:
  BrokerAgent(std::string name, double spread = 0.06, double quote_size = 2.0,
              double inventory_limit = 20.0);
  void step(Exchange& ex, sim::Rng& rng) override;

 private:
  double spread_;
  double size_;
  double limit_;
  int resting_bid_ = -1;
  int resting_ask_ = -1;
};

/// Momentum speculator: buys into rising prices, sells into falling ones.
/// Adds the volatility the paper's "technology speculators" would.
class SpeculatorAgent final : public Agent {
 public:
  SpeculatorAgent(std::string name, double aggressiveness = 0.3,
                  double inventory_limit = 10.0);
  void step(Exchange& ex, sim::Rng& rng) override;

 private:
  double aggressiveness_;
  double limit_;
  double ewma_ = -1.0;
};

}  // namespace hpc::market
