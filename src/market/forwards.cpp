#include "market/forwards.hpp"

#include <algorithm>
#include <cmath>

namespace hpc::market {

int ForwardBook::add(const ForwardContract& contract) {
  open_.push_back(contract);
  return static_cast<int>(open_.size()) - 1;
}

std::vector<ForwardContract> ForwardBook::settle(int round, double spot) {
  std::vector<ForwardContract> settled;
  for (std::size_t i = 0; i < open_.size();) {
    if (open_[i].delivery_round == round) {
      const ForwardContract c = open_[i];
      const double payoff = c.buyer_payoff(spot);
      cash_.emplace_back(c.buyer, payoff);
      cash_.emplace_back(c.seller, -payoff);
      settled.push_back(c);
      open_[i] = open_.back();
      open_.pop_back();
    } else {
      ++i;
    }
  }
  return settled;
}

double ForwardBook::cash(int agent) const {
  double total = 0.0;
  for (const auto& [a, delta] : cash_)
    if (a == agent) total += delta;
  return total;
}

double ForwardBook::imbalance() const {
  double total = 0.0;
  for (const auto& [a, delta] : cash_) total += delta;
  return total;
}

HedgeOutcome evaluate_hedge(double spot0, double sigma, int rounds, double quantity,
                            int trials, sim::Rng& rng) {
  sim::RunningStats unhedged;
  sim::RunningStats hedged;
  for (int t = 0; t < trials; ++t) {
    // Geometric random walk without drift: today's fair forward strike is
    // spot0 itself.
    double spot = spot0;
    for (int r = 0; r < rounds; ++r)
      spot *= std::exp(rng.normal(0.0, sigma) - 0.5 * sigma * sigma);

    const double cost_unhedged = spot * quantity;
    // Hedged: buy at spot, receive the forward payoff (spot - strike) * q
    // => effective cost = strike * q, independent of the path.
    ForwardBook book;
    book.add({/*buyer=*/0, /*seller=*/1, spot0, quantity, rounds});
    book.settle(rounds, spot);
    const double cost_hedged = spot * quantity - book.cash(0);

    unhedged.push(cost_unhedged);
    hedged.push(cost_hedged);
  }
  return {unhedged.mean(), unhedged.stddev(), hedged.mean(), hedged.stddev()};
}

}  // namespace hpc::market
