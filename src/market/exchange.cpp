#include "market/exchange.hpp"

#include <algorithm>
#include <numeric>

namespace hpc::market {

EquilibriumPoint competitive_equilibrium(std::vector<double> supply_costs,
                                         std::vector<double> demand_values) {
  std::sort(supply_costs.begin(), supply_costs.end());                  // ascending
  std::sort(demand_values.begin(), demand_values.end(), std::greater<>());  // descending
  EquilibriumPoint eq;
  const std::size_t n = std::min(supply_costs.size(), demand_values.size());
  std::size_t k = 0;
  while (k < n && demand_values[k] >= supply_costs[k]) {
    eq.max_surplus += demand_values[k] - supply_costs[k];
    ++k;
  }
  eq.quantity = static_cast<double>(k);
  if (k == 0) {
    // No trade possible; reference price between best ask and best bid.
    eq.price = supply_costs.empty() || demand_values.empty()
                   ? 0.0
                   : (supply_costs.front() + demand_values.front()) / 2.0;
  } else {
    // Any price between the marginal traded pair clears; take the midpoint.
    eq.price = (supply_costs[k - 1] + demand_values[k - 1]) / 2.0;
  }
  return eq;
}

Exchange::Exchange(std::uint64_t seed) : rng_(seed) {}

int Exchange::add_agent(std::unique_ptr<Agent> agent) {
  const int id = static_cast<int>(agents_.size());
  agent->set_id(id);
  agents_.push_back(std::move(agent));
  return id;
}

void Exchange::set_observer(obs::TraceRecorder* trace, obs::MetricRegistry* metrics) {
  trace_ = trace;
  if (trace_ != nullptr) {
    otrack_ = trace_->track("market");
    sid_match_ = trace_->intern("market.match");
    sid_clear_ = trace_->intern("market.clear");
    sid_volume_ = trace_->intern("market.volume");
  }
  if (metrics != nullptr) {
    m_trades_ = &metrics->counter("market.trades_matched");
    h_price_ = &metrics->histogram("market.trade_price");
  } else {
    m_trades_ = nullptr;
    h_price_ = nullptr;
  }
}

void Exchange::step_round() {
  // Random activation order each round (no structural advantage).
  std::vector<int> order(agents_.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng_.engine());
  for (const int id : order) agents_[static_cast<std::size_t>(id)]->step(*this, rng_);

  // Settle the round's fills.  Logical time for trace events is the
  // cumulative round index (stable across batch and co-sim clocks).
  const auto round_ts = static_cast<sim::TimeNs>(round_prices_.size());
  const bool tracing = trace_ != nullptr && trace_->enabled();
  const std::vector<Trade> trades = book_.take_trades();
  double volume = 0.0;
  double notional = 0.0;
  for (const Trade& t : trades) {
    agents_[static_cast<std::size_t>(t.buyer)]->on_fill(t, true);
    agents_[static_cast<std::size_t>(t.seller)]->on_fill(t, false);
    volume += t.quantity;
    notional += t.quantity * t.price;
    all_trades_.push_back(t);
    if (tracing) trace_->instant(otrack_, sid_match_, round_ts, t.price);
    if (m_trades_ != nullptr) {
      m_trades_->inc();
      h_price_->record(t.price);
    }
  }
  total_volume_ += volume;
  const double price = volume > 0.0 ? notional / volume
                                    : (round_prices_.empty() ? 0.0 : round_prices_.back());
  round_prices_.push_back(price);
  round_volumes_.push_back(volume);
  if (tracing) {
    trace_->instant(otrack_, sid_clear_, round_ts, price);
    trace_->counter(otrack_, sid_volume_, round_ts, volume);
  }
}

void Exchange::round_event() {
  step_round();
  if (--rounds_left_ <= 0) return;
  engine()->schedule_in(cosim_period_ > 0 ? cosim_period_ : 1, [this] { round_event(); });
}

void Exchange::on_attach(sim::Engine& engine) {
  if (rounds_left_ <= 0) return;
  if (cosim_period_ > 0) {
    engine.schedule_in(cosim_period_, [this] { round_event(); });
  } else {
    engine.schedule_at(engine.now(), [this] { round_event(); });
  }
}

void Exchange::run_rounds(int rounds) {
  const sim::TimeNs saved_period = cosim_period_;
  cosim_period_ = 0;
  rounds_left_ = rounds;
  sim::Engine engine(rng_.seed());
  engine.attach(*this);
  engine.run();
  engine.detach(*this);
  cosim_period_ = saved_period;
}

double Exchange::cash_imbalance() const {
  double sum = 0.0;
  for (const auto& a : agents_) sum += a->cash();
  return sum;
}

}  // namespace hpc::market
