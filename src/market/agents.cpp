#include "market/agents.hpp"

#include <algorithm>
#include <cmath>

#include "market/exchange.hpp"

namespace hpc::market {

void Agent::on_fill(const Trade& trade, bool as_buyer) {
  const double value = trade.price * trade.quantity;
  if (as_buyer) {
    cash_ -= value;
    inventory_ += trade.quantity;
  } else {
    cash_ += value;
    inventory_ -= trade.quantity;
  }
}

ProviderAgent::ProviderAgent(std::string name, double marginal_cost,
                             double capacity_per_round, double initial_markup, double step)
    : Agent(std::move(name)),
      cost_(marginal_cost),
      capacity_(capacity_per_round),
      markup_(initial_markup),
      step_(step) {}

void ProviderAgent::step(Exchange& ex, sim::Rng& rng) {
  if (resting_ >= 0) {
    ex.book().cancel(resting_);
    resting_ = -1;
  }
  // Tatonnement, asymmetric: firm up slowly after selling, undercut fast
  // while unsold.  Symmetric steps would leave every agent oscillating around
  // its fill boundary at ~50% duty cycle and strand half the feasible trades.
  if (filled_last_round_) {
    markup_ += step_ * rng.uniform(0.1, 0.3);
  } else {
    markup_ -= step_ * rng.uniform(1.0, 2.0);
  }
  markup_ = std::clamp(markup_, 0.0, 3.0);
  filled_last_round_ = false;
  const double ask = cost_ * (1.0 + markup_);
  offered_ += capacity_;
  resting_ = ex.book().submit(id(), Side::kAsk, ask, capacity_);
}

void ProviderAgent::on_fill(const Trade& trade, bool as_buyer) {
  Agent::on_fill(trade, as_buyer);
  if (!as_buyer) {
    sold_ += trade.quantity;
    filled_last_round_ = true;
  }
}

ConsumerAgent::ConsumerAgent(std::string name, double valuation, double demand_per_round,
                             double initial_margin, double step)
    : Agent(std::move(name)),
      value_(valuation),
      demand_(demand_per_round),
      margin_(initial_margin),
      step_(step) {}

void ConsumerAgent::step(Exchange& ex, sim::Rng& rng) {
  if (resting_ >= 0) {
    ex.book().cancel(resting_);
    resting_ = -1;
  }
  if (filled_last_round_) {
    margin_ += step_ * rng.uniform(0.1, 0.3);
  } else {
    margin_ -= step_ * rng.uniform(1.0, 2.0);
  }
  margin_ = std::clamp(margin_, 0.0, 0.95);
  filled_last_round_ = false;
  const double bid = value_ * (1.0 - margin_);
  demanded_ += demand_;
  resting_ = ex.book().submit(id(), Side::kBid, bid, demand_);
}

void ConsumerAgent::on_fill(const Trade& trade, bool as_buyer) {
  Agent::on_fill(trade, as_buyer);
  if (as_buyer) {
    bought_ += trade.quantity;
    filled_last_round_ = true;
  }
}

BrokerAgent::BrokerAgent(std::string name, double spread, double quote_size,
                         double inventory_limit)
    : Agent(std::move(name)), spread_(spread), size_(quote_size), limit_(inventory_limit) {}

void BrokerAgent::step(Exchange& ex, sim::Rng& rng) {
  (void)rng;
  if (resting_bid_ >= 0) ex.book().cancel(resting_bid_);
  if (resting_ask_ >= 0) ex.book().cancel(resting_ask_);
  resting_bid_ = resting_ask_ = -1;
  const auto mid = ex.book().last_trade_price().has_value()
                       ? ex.book().last_trade_price()
                       : ex.book().mid();
  if (!mid) return;
  // Inventory-skewed quotes: lean prices to shed excess inventory.
  const double skew = -0.02 * (inventory_ / std::max(1.0, limit_)) * *mid;
  if (inventory_ < limit_)
    resting_bid_ = ex.book().submit(id(), Side::kBid, *mid * (1.0 - spread_ / 2.0) + skew, size_);
  if (inventory_ > -limit_)
    resting_ask_ = ex.book().submit(id(), Side::kAsk, *mid * (1.0 + spread_ / 2.0) + skew, size_);
}

SpeculatorAgent::SpeculatorAgent(std::string name, double aggressiveness,
                                 double inventory_limit)
    : Agent(std::move(name)), aggressiveness_(aggressiveness), limit_(inventory_limit) {}

void SpeculatorAgent::step(Exchange& ex, sim::Rng& rng) {
  const auto last = ex.book().last_trade_price();
  if (!last) return;
  if (ewma_ < 0.0) {
    ewma_ = *last;
    return;
  }
  const double momentum = *last - ewma_;
  ewma_ += 0.2 * (*last - ewma_);
  const double size = aggressiveness_ * rng.uniform(0.5, 1.5);
  if (momentum > 0.0 && inventory_ < limit_) {
    ex.book().submit(id(), Side::kBid, *last * 1.02, size);
  } else if (momentum < 0.0 && inventory_ > -limit_) {
    ex.book().submit(id(), Side::kAsk, *last * 0.98, size);
  }
}

}  // namespace hpc::market
