#pragma once

#include <memory>
#include <vector>

#include "market/agents.hpp"
#include "market/orderbook.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

/// \file exchange.hpp
/// The Open Compute Exchange: an order book plus a population of trading
/// agents, run in rounds.  Settlement is zero-sum in cash (the paper frames
/// the underlying economic model as "a non-cooperative, zero-summed game,
/// that eventually reaches equilibrium" — experiment C8 measures whether the
/// simulated market actually does).

namespace hpc::market {

/// Competitive-equilibrium reference point from supply costs and demand
/// valuations (one unit each): the price where supply meets demand and the
/// number of units that trade under perfect competition.
struct EquilibriumPoint {
  double price = 0.0;
  double quantity = 0.0;   ///< units that should trade
  double max_surplus = 0.0;///< total gains from trade at the optimum
};

/// Computes the competitive equilibrium of unit supply/demand curves.
EquilibriumPoint competitive_equilibrium(std::vector<double> supply_costs,
                                         std::vector<double> demand_values);

/// Market session driver (a sim::Component).
///
/// Historically the exchange had no simulated clock — rounds were a plain
/// counter.  On a sim::Engine each round is a kernel event: batch
/// `run_rounds(n)` wraps a private Engine with one event per round (kernel
/// time = round index), and co-simulation attaches the exchange to a shared
/// Engine with `set_cosim_clearing(period, rounds)` so clearing rounds
/// interleave with the other substrates on one timeline.
class Exchange final : public sim::Component {
 public:
  explicit Exchange(std::uint64_t seed = 7);

  /// Registers an agent; the exchange assigns and returns its id.
  int add_agent(std::unique_ptr<Agent> agent);

  OrderBook& book() noexcept { return book_; }
  const OrderBook& book() const noexcept { return book_; }

  Agent& agent(int id) { return *agents_[static_cast<std::size_t>(id)]; }
  std::size_t agent_count() const noexcept { return agents_.size(); }

  /// Attaches observability sinks (both optional; nullptr detaches).  The
  /// exchange has no simulated clock, so the cumulative round index serves
  /// as the logical timestamp on the "market" track: each fill becomes a
  /// "market.match" instant (payload = trade price) and each round a
  /// "market.clear" instant (payload = volume-weighted round price) plus a
  /// volume counter sample.  Metered: trades matched and a trade-price
  /// histogram.  Passive: results are identical either way.
  void set_observer(obs::TraceRecorder* trace, obs::MetricRegistry* metrics = nullptr);

  /// Runs \p rounds trading rounds: each round steps agents in a random
  /// order, then routes fills to both counterparties.  Batch wrapper around
  /// a private Engine (one kernel event per round).
  void run_rounds(int rounds);

  // sim::Component contract.
  [[nodiscard]] std::string_view component_name() const noexcept override {
    return "market.exchange";
  }
  /// Schedules the pending clearing rounds (batch: back-to-back kernel
  /// events; co-sim: every `period` ns of shared time).
  void on_attach(sim::Engine& engine) override;

  /// Configures periodic clearing for co-simulation: after attach, one
  /// clearing round runs every \p period ns of shared time, \p rounds times.
  void set_cosim_clearing(sim::TimeNs period, int rounds) {
    cosim_period_ = period;
    rounds_left_ = rounds;
  }

  /// Volume-weighted mean trade price of each completed round (rounds with
  /// no trades repeat the previous price; leading empty rounds record 0).
  const std::vector<double>& round_prices() const noexcept { return round_prices_; }
  const std::vector<double>& round_volumes() const noexcept { return round_volumes_; }

  double total_volume() const noexcept { return total_volume_; }
  double last_price() const noexcept {
    return round_prices_.empty() ? 0.0 : round_prices_.back();
  }

  /// Sum of all agents' cash — ~0 by construction (zero-sum settlement).
  double cash_imbalance() const;

  /// Realized gains from trade: sum over trades of (buyer value - seller
  /// cost) is not observable here; exposed as traded volume x price spread
  /// via the ledger kept by the agents themselves.  The C8 bench computes
  /// allocative efficiency from agent totals instead.
  const std::vector<Trade>& all_trades() const noexcept { return all_trades_; }

 private:
  /// One clearing round: step agents in random order, settle fills.
  void step_round();
  /// Kernel event wrapper: run a round, chain the next one.
  void round_event();

  sim::TimeNs cosim_period_ = 0;  ///< 0: batch (rounds back to back)
  int rounds_left_ = 0;

  OrderBook book_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<double> round_prices_;
  std::vector<double> round_volumes_;
  std::vector<Trade> all_trades_;
  double total_volume_ = 0.0;
  sim::Rng rng_;

  // Observability (optional, passive; see set_observer).
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId otrack_ = 0;
  obs::StrId sid_match_ = 0;
  obs::StrId sid_clear_ = 0;
  obs::StrId sid_volume_ = 0;
  obs::Counter* m_trades_ = nullptr;
  obs::Histogram* h_price_ = nullptr;
};

}  // namespace hpc::market
