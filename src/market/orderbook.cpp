#include "market/orderbook.hpp"

#include <algorithm>

namespace hpc::market {

namespace {
constexpr double kEps = 1e-9;
}

int OrderBook::submit(int agent, Side side, double price, double quantity) {
  Order incoming{next_id_++, agent, side, price, quantity, next_seq_++};

  auto cross = [&](auto& book, auto pricable) {
    while (incoming.quantity > kEps && !book.empty()) {
      auto level = book.begin();
      if (!pricable(level->first)) break;
      auto& queue = level->second;
      Order& resting = queue.front();
      const double qty = std::min(incoming.quantity, resting.quantity);
      Trade t;
      t.buyer = incoming.side == Side::kBid ? incoming.agent : resting.agent;
      t.seller = incoming.side == Side::kAsk ? incoming.agent : resting.agent;
      t.price = resting.price;  // resting order sets the price
      t.quantity = qty;
      t.seq = next_seq_++;
      trades_.push_back(t);
      last_price_ = t.price;
      incoming.quantity -= qty;
      resting.quantity -= qty;
      if (resting.quantity <= kEps) {
        queue.erase(queue.begin());
        if (queue.empty()) book.erase(level);
      }
    }
  };

  if (side == Side::kBid) {
    cross(asks_, [&](double ask) { return ask <= price + kEps; });
    if (incoming.quantity > kEps) bids_[price].push_back(incoming);
  } else {
    cross(bids_, [&](double bid) { return bid >= price - kEps; });
    if (incoming.quantity > kEps) asks_[price].push_back(incoming);
  }
  return incoming.id;
}

bool OrderBook::cancel(int order_id) {
  auto scan = [&](auto& book) {
    for (auto it = book.begin(); it != book.end(); ++it) {
      auto& queue = it->second;
      for (auto oit = queue.begin(); oit != queue.end(); ++oit) {
        if (oit->id == order_id) {
          queue.erase(oit);
          if (queue.empty()) book.erase(it);
          return true;
        }
      }
    }
    return false;
  };
  return scan(bids_) || scan(asks_);
}

std::vector<Trade> OrderBook::take_trades() {
  std::vector<Trade> out;
  out.swap(trades_);
  return out;
}

std::optional<double> OrderBook::best_bid() const {
  if (bids_.empty()) return std::nullopt;
  return bids_.begin()->first;
}

std::optional<double> OrderBook::best_ask() const {
  if (asks_.empty()) return std::nullopt;
  return asks_.begin()->first;
}

std::optional<double> OrderBook::mid() const {
  const auto b = best_bid();
  const auto a = best_ask();
  if (b && a) return (*b + *a) / 2.0;
  if (b) return b;
  if (a) return a;
  return std::nullopt;
}

double OrderBook::depth(Side side) const {
  double total = 0.0;
  if (side == Side::kBid) {
    for (const auto& [price, queue] : bids_)
      for (const Order& o : queue) total += o.quantity;
  } else {
    for (const auto& [price, queue] : asks_)
      for (const Order& o : queue) total += o.quantity;
  }
  return total;
}

std::size_t OrderBook::open_orders() const {
  std::size_t n = 0;
  for (const auto& [price, queue] : bids_) n += queue.size();
  for (const auto& [price, queue] : asks_) n += queue.size();
  return n;
}

}  // namespace hpc::market
