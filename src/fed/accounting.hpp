#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

/// \file accounting.hpp
/// Monitoring and accounting of resource exchange between sites — the paper:
/// "it will also put in place the monitoring and accounting framework to
/// capture the resource exchange between the sites.  Such resource
/// consumption data collection could lay the foundation to an 'Open Compute
/// Exchange'" (Section III.F).

namespace hpc::fed {

/// One metered record of consumption.
struct UsageRecord {
  int job_id = 0;
  int consumer_site = 0;   ///< who submitted (pays)
  int provider_site = 0;   ///< who ran it (earns)
  double node_hours = 0.0;
  double cost_usd = 0.0;
  double wan_gb = 0.0;
  sim::TimeNs start = 0;
  sim::TimeNs finish = 0;
};

/// Ledger with per-site settlement.  Append-mostly: records are only removed
/// when a site failure voids an in-flight job's usage.
class Ledger {
 public:
  void record(const UsageRecord& r);

  /// Removes every record of \p job_id (a failed site voided its usage).
  void void_job(int job_id);

  const std::vector<UsageRecord>& records() const noexcept { return records_; }

  /// Dollars site \p id earned providing capacity to others.
  double earned_usd(int site) const;
  /// Dollars site \p id spent consuming remote capacity.
  double spent_usd(int site) const;
  /// Net position (earned - spent); sums to ~0 across sites for internal
  /// exchange (the paper's zero-sum framing).
  double net_usd(int site) const;

  double total_node_hours() const;
  double total_wan_gb() const;

 private:
  std::vector<UsageRecord> records_;
};

}  // namespace hpc::fed
