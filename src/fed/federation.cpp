#include "fed/federation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hpc::fed {

std::string_view name_of(MetaPolicy p) noexcept {
  switch (p) {
    case MetaPolicy::kHomeOnly: return "home-only";
    case MetaPolicy::kComputeOnly: return "compute-only";
    case MetaPolicy::kDataGravity: return "data-gravity";
    case MetaPolicy::kCheapest: return "cheapest";
  }
  return "home-only";
}

std::string_view name_of(FederationStage s) noexcept {
  switch (s) {
    case FederationStage::kLocalOnly: return "local-only";
    case FederationStage::kBursting: return "bursting";
    case FederationStage::kFluid: return "fluid";
    case FederationStage::kGrid: return "grid";
    case FederationStage::kExchange: return "exchange";
  }
  return "local-only";
}

namespace {

/// Fastest feasible partition for a job at a site (-1 if none fits).
int best_partition_at(const Site& site, const sched::Job& job) {
  int best = -1;
  double best_t = std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < site.cluster.partitions.size(); ++p) {
    const sched::Partition& part = site.cluster.partitions[p];
    if (part.nodes < job.nodes) continue;
    const double t = sched::job_runtime_ns(job, part.device, job.nodes);
    if (t < 1e17 && t < best_t) {
      best_t = t;
      best = static_cast<int>(p);
    }
  }
  return best;
}

double runtime_at(const Site& site, const sched::Job& job, int partition) {
  return sched::job_runtime_ns(
      job, site.cluster.partitions[static_cast<std::size_t>(partition)].device, job.nodes);
}

}  // namespace

FederationSim::FederationSim(std::vector<Site> sites, FederationConfig cfg)
    : sites_(std::move(sites)), cfg_(cfg), rng_(cfg.seed) {}

void FederationSim::submit(const sched::Job& job, int home_site) {
  jobs_.push_back(FedJob{job, home_site});
}

void FederationSim::submit_all(const std::vector<sched::Job>& jobs, int home_site) {
  for (const sched::Job& j : jobs) submit(j, home_site);
}

void FederationSim::set_observer(obs::TraceRecorder* trace, obs::MetricRegistry* metrics) {
  trace_ = trace;
  if (trace_ != nullptr) {
    otrack_ = trace_->track("fed");
    sid_burst_ = trace_->intern("fed.burst");
    sid_reroute_ = trace_->intern("fed.reroute");
    sid_failure_ = trace_->intern("fed.site_failure");
  }
  if (metrics != nullptr) {
    m_burst_ = &metrics->counter("fed.jobs_routed_remote");
    m_reroute_ = &metrics->counter("fed.jobs_rerouted");
  } else {
    m_burst_ = m_reroute_ = nullptr;
  }
}

double FederationSim::transfer_penalty(const Site& from, const Site& to) const {
  return from.admin_domain == to.admin_domain ? 1.0 : cfg_.cross_domain_transfer_penalty;
}

double FederationSim::est_wait_s(int site, sim::TimeNs now,
                                 const std::vector<Running>& running,
                                 const std::vector<std::vector<int>>& queues) const {
  const Site& s = sites_[static_cast<std::size_t>(site)];
  const int capacity = s.cluster.total_nodes();
  if (capacity <= 0) return std::numeric_limits<double>::infinity();
  double outstanding_node_s = 0.0;
  for (const Running& r : running)
    if (r.site == site && r.finish > now)
      outstanding_node_s += static_cast<double>(r.finish - now) * 1e-9 * r.nodes;
  // Outstanding work approximation: queued jobs at their best-partition rate.
  for (const int ji : queues[static_cast<std::size_t>(site)]) {
    const sched::Job& job = jobs_[static_cast<std::size_t>(ji)].job;
    const int bp = best_partition_at(s, job);
    if (bp >= 0)
      outstanding_node_s += runtime_at(s, job, bp) * 1e-9 * job.nodes;
  }
  return outstanding_node_s / static_cast<double>(capacity);
}

std::vector<int> FederationSim::candidate_sites(const FedJob& fj, double home_wait_s) const {
  std::vector<int> out;
  const Site& home = sites_[static_cast<std::size_t>(fj.home_site)];
  switch (cfg_.stage) {
    case FederationStage::kLocalOnly:
      out.push_back(fj.home_site);
      break;
    case FederationStage::kBursting:
      out.push_back(fj.home_site);
      if (cfg_.burst_site >= 0 && home_wait_s > cfg_.burst_queue_threshold_s)
        out.push_back(cfg_.burst_site);
      break;
    case FederationStage::kFluid:
      for (const Site& s : sites_)
        if (s.admin_domain == home.admin_domain) out.push_back(s.id);
      break;
    case FederationStage::kGrid:
    case FederationStage::kExchange:
      for (const Site& s : sites_) out.push_back(s.id);
      break;
  }
  return out;
}

int FederationSim::choose_site(const FedJob& fj, sim::TimeNs now,
                               const std::vector<Running>& running,
                               const std::vector<std::vector<int>>& queues) {
  const double home_wait = est_wait_s(fj.home_site, now, running, queues);
  std::vector<int> candidates = candidate_sites(fj, home_wait);
  const Site& home = sites_[static_cast<std::size_t>(fj.home_site)];

  int best_site = -1;
  double best_score = std::numeric_limits<double>::infinity();
  for (const int sid : candidates) {
    if (!dead_.empty() && dead_[static_cast<std::size_t>(sid)]) continue;
    const Site& s = sites_[static_cast<std::size_t>(sid)];
    const int bp = best_partition_at(s, fj.job);
    if (bp < 0) continue;

    const double run_s = runtime_at(s, fj.job, bp) * 1e-9 * (1.0 + s.noise_factor);
    const int data_site = fj.job.data_site >= 0 ? fj.job.data_site : fj.home_site;
    const Site& from = sites_[static_cast<std::size_t>(data_site)];
    const double xfer_s =
        wan_transfer_ns(from, s, fj.job.dataset_gb) * 1e-9 * transfer_penalty(from, s);
    const double wait_s = est_wait_s(sid, now, running, queues);
    const double cost =
        run_s / 3600.0 * fj.job.nodes * s.price_per_node_hour;

    double score = 0.0;
    switch (cfg_.policy) {
      case MetaPolicy::kHomeOnly:
        score = sid == fj.home_site ? 0.0 : std::numeric_limits<double>::infinity();
        break;
      case MetaPolicy::kComputeOnly:
        score = wait_s + run_s;  // ignores data movement entirely
        break;
      case MetaPolicy::kDataGravity:
        score = xfer_s + wait_s + run_s;
        break;
      case MetaPolicy::kCheapest:
        score = cost * 1e6 + xfer_s + wait_s + run_s;  // cost lexicographically first
        break;
    }
    (void)home;
    if (score < best_score) {
      best_score = score;
      best_site = sid;
    }
  }
  return best_site;
}

void FederationSim::on_attach(sim::Engine& engine) {
  const std::size_t nj = jobs_.size();
  st_ = Session{};
  st_.result.placements.resize(nj);
  dead_.assign(sites_.size(), false);
  st_.failure_pending =
      cfg_.fail_site >= 0 && cfg_.fail_site < static_cast<int>(sites_.size());

  // Submission order.
  st_.order.resize(nj);
  for (std::size_t i = 0; i < nj; ++i) st_.order[i] = static_cast<int>(i);
  std::stable_sort(st_.order.begin(), st_.order.end(), [&](int a, int b) {
    return jobs_[static_cast<std::size_t>(a)].job.arrival <
           jobs_[static_cast<std::size_t>(b)].job.arrival;
  });

  st_.free.resize(sites_.size());
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    st_.free[s].resize(sites_[s].cluster.partitions.size());
    for (std::size_t p = 0; p < st_.free[s].size(); ++p)
      st_.free[s][p] = sites_[s].cluster.partitions[p].nodes;
  }

  st_.queues.resize(sites_.size());
  st_.data_ready.assign(nj, 0);
  st_.dest.assign(nj, -1);
  st_.uplink_busy.assign(sites_.size(), 0);

  if (!jobs_.empty()) engine.schedule_at(engine.now(), [this] { step(); });
}

void FederationSim::admit(sim::TimeNs now) {
  // Admit submissions due now: route, start staging, queue at destination.
  const std::size_t nj = jobs_.size();
  while (st_.next_submit < nj &&
         jobs_[static_cast<std::size_t>(st_.order[st_.next_submit])].job.arrival <= now) {
    const int ji = st_.order[st_.next_submit++];
    const FedJob& fj = jobs_[static_cast<std::size_t>(ji)];
    FedPlacement& pl = st_.result.placements[static_cast<std::size_t>(ji)];
    pl.job_id = fj.job.id;
    pl.submitted = fj.job.arrival;

    const int sid = choose_site(fj, now, st_.running, st_.queues);
    if (sid < 0) continue;  // counted as dropped in the final aggregation
    st_.dest[static_cast<std::size_t>(ji)] = sid;
    if (sid != fj.home_site) {
      if (trace_ != nullptr && trace_->enabled())
        trace_->instant(otrack_, sid_burst_, now, static_cast<double>(sid));
      if (m_burst_ != nullptr) m_burst_->inc();
    }
    const int data_site = fj.job.data_site >= 0 ? fj.job.data_site : fj.home_site;
    const Site& from = sites_[static_cast<std::size_t>(data_site)];
    const Site& to = sites_[static_cast<std::size_t>(sid)];
    if (data_site != sid && fj.job.dataset_gb > 0.0) {
      const double xfer_ns =
          wan_transfer_ns(from, to, fj.job.dataset_gb) * transfer_penalty(from, to);
      pl.transfer_gb = fj.job.dataset_gb;
      st_.result.wan_gb_moved += fj.job.dataset_gb;
      const sim::TimeNs start =
          std::max({now, st_.uplink_busy[static_cast<std::size_t>(data_site)],
                    st_.uplink_busy[static_cast<std::size_t>(sid)]});
      const auto finish = start + static_cast<sim::TimeNs>(xfer_ns);
      st_.uplink_busy[static_cast<std::size_t>(data_site)] = finish;
      st_.uplink_busy[static_cast<std::size_t>(sid)] = finish;
      st_.data_ready[static_cast<std::size_t>(ji)] = finish;
    } else {
      st_.data_ready[static_cast<std::size_t>(ji)] = now;
    }
    pl.data_ready = st_.data_ready[static_cast<std::size_t>(ji)];
    st_.queues[static_cast<std::size_t>(sid)].push_back(ji);
  }
}

void FederationSim::start_ready_jobs(sim::TimeNs now) {
  for (std::size_t sid = 0; sid < sites_.size(); ++sid) {
    if (dead_[sid]) continue;
    Site& site = sites_[sid];
    auto& q = st_.queues[sid];
    for (std::size_t w = 0; w < q.size();) {
      const int ji = q[w];
      const FedJob& fj = jobs_[static_cast<std::size_t>(ji)];
      if (st_.data_ready[static_cast<std::size_t>(ji)] > now) {
        ++w;
        continue;
      }
      // Fastest feasible partition with free capacity.
      int pick = -1;
      double pick_t = std::numeric_limits<double>::infinity();
      for (std::size_t p = 0; p < site.cluster.partitions.size(); ++p) {
        if (st_.free[sid][p] < fj.job.nodes) continue;
        const double t = runtime_at(site, fj.job, static_cast<int>(p));
        if (t < 1e17 && t < pick_t) {
          pick_t = t;
          pick = static_cast<int>(p);
        }
      }
      if (pick < 0) {
        ++w;
        continue;
      }
      // Interference: sample the actual slowdown at noisy (cloud) sites.
      double slowdown = 1.0;
      if (site.noise_factor > 0.0)
        slowdown = 1.0 + rng_.exponential(site.noise_factor);
      const double actual_ns = pick_t * slowdown;
      const auto finish = now + static_cast<sim::TimeNs>(actual_ns);
      st_.free[sid][static_cast<std::size_t>(pick)] -= fj.job.nodes;
      st_.running.push_back(Running{ji, static_cast<int>(sid), pick, finish, fj.job.nodes});

      FedPlacement& pl = st_.result.placements[static_cast<std::size_t>(ji)];
      pl.site = static_cast<int>(sid);
      pl.partition = pick;
      pl.start = now;
      pl.finish = finish;
      const double node_hours = actual_ns * 1e-9 / 3600.0 * fj.job.nodes;
      pl.cost_usd = node_hours * site.price_per_node_hour;

      UsageRecord rec;
      rec.job_id = fj.job.id;
      rec.consumer_site = fj.home_site;
      rec.provider_site = static_cast<int>(sid);
      rec.node_hours = node_hours;
      rec.cost_usd = pl.cost_usd;
      rec.wan_gb = pl.transfer_gb;
      rec.start = pl.start;
      rec.finish = pl.finish;
      st_.result.ledger.record(rec);

      q.erase(q.begin() + static_cast<std::ptrdiff_t>(w));
    }
  }
}

void FederationSim::handle_failure(sim::TimeNs now) {
  // Site failure: kill everything at the site and reroute it.
  if (!st_.failure_pending || now < cfg_.fail_at) return;
  st_.failure_pending = false;
  const auto dead_site = static_cast<std::size_t>(cfg_.fail_site);
  dead_[dead_site] = true;
  if (trace_ != nullptr && trace_->enabled())
    trace_->instant(otrack_, sid_failure_, now, static_cast<double>(cfg_.fail_site));
  std::vector<int> displaced;
  std::vector<Running>& running = st_.running;
  for (std::size_t i = 0; i < running.size();) {
    if (running[i].site == cfg_.fail_site) {
      displaced.push_back(running[i].job_index);
      running[i] = running.back();
      running.pop_back();
    } else {
      ++i;
    }
  }
  for (int ji : st_.queues[dead_site]) displaced.push_back(ji);
  st_.queues[dead_site].clear();
  for (const int ji : displaced) {
    const FedJob& fj = jobs_[static_cast<std::size_t>(ji)];
    FedPlacement& pl = st_.result.placements[static_cast<std::size_t>(ji)];
    st_.result.ledger.void_job(fj.job.id);  // in-flight usage is voided
    pl = FedPlacement{};
    pl.job_id = fj.job.id;
    pl.submitted = fj.job.arrival;
    const int sid = choose_site(fj, now, running, st_.queues);
    if (sid < 0) continue;  // nowhere left: dropped
    ++st_.result.jobs_rerouted;
    if (trace_ != nullptr && trace_->enabled())
      trace_->instant(otrack_, sid_reroute_, now, static_cast<double>(sid));
    if (m_reroute_ != nullptr) m_reroute_->inc();
    const int data_site = fj.job.data_site >= 0 ? fj.job.data_site : fj.home_site;
    const Site& from = sites_[static_cast<std::size_t>(data_site)];
    const Site& to = sites_[static_cast<std::size_t>(sid)];
    double xfer_ns = 0.0;
    if (data_site != sid && fj.job.dataset_gb > 0.0) {
      xfer_ns = wan_transfer_ns(from, to, fj.job.dataset_gb) * transfer_penalty(from, to);
      pl.transfer_gb = fj.job.dataset_gb;
      st_.result.wan_gb_moved += fj.job.dataset_gb;
    }
    st_.data_ready[static_cast<std::size_t>(ji)] = now + static_cast<sim::TimeNs>(xfer_ns);
    pl.data_ready = st_.data_ready[static_cast<std::size_t>(ji)];
    st_.queues[static_cast<std::size_t>(sid)].push_back(ji);
  }
}

void FederationSim::retire(sim::TimeNs now) {
  std::vector<Running>& running = st_.running;
  for (std::size_t i = 0; i < running.size();) {
    if (running[i].finish <= now) {
      st_.free[static_cast<std::size_t>(running[i].site)]
              [static_cast<std::size_t>(running[i].partition)] += running[i].nodes;
      running[i] = running.back();
      running.pop_back();
    } else {
      ++i;
    }
  }
}

std::size_t FederationSim::queued_jobs() const {
  std::size_t n = 0;
  for (const auto& q : st_.queues) n += q.size();
  return n;
}

void FederationSim::step() {
  const sim::TimeNs now = engine()->now();
  const std::size_t nj = jobs_.size();
  if (st_.started) {
    // Tail of the historical loop iteration that advanced the clock here:
    // the failure instant fires and completions retire before new admits.
    handle_failure(now);
    retire(now);
    if (st_.next_submit >= nj && st_.running.empty() && queued_jobs() == 0)
      return;  // session quiescent
  } else {
    st_.started = true;
  }

  admit(now);
  start_ready_jobs(now);

  // Next event: submission, data-ready, completion, or site failure.
  sim::TimeNs next = std::numeric_limits<sim::TimeNs>::max();
  if (st_.failure_pending) next = cfg_.fail_at;
  if (st_.next_submit < nj)
    next = std::min(next,
                    jobs_[static_cast<std::size_t>(st_.order[st_.next_submit])].job.arrival);
  for (const auto& q : st_.queues)
    for (const int ji : q)
      if (st_.data_ready[static_cast<std::size_t>(ji)] > now)
        next = std::min(next, st_.data_ready[static_cast<std::size_t>(ji)]);
  for (const Running& r : st_.running) next = std::min(next, r.finish);
  if (next == std::numeric_limits<sim::TimeNs>::max()) {
    // No future event: remaining queued jobs (if any) can never start.
    return;
  }
  // Jobs whose data is ready but whose partition is full wait for the next
  // completion; if nothing is running either, they can never start.  The +1
  // keeps the step strictly advancing (historical tie-break semantics).
  engine()->schedule_at(std::max(now + 1, next), [this] { step(); });
}

FederationResult FederationSim::take_result() {
  FederationResult result = std::move(st_.result);
  // Aggregate.
  sim::Sampler completion;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const FedPlacement& pl = result.placements[i];
    if (pl.site < 0) {
      ++result.jobs_dropped;
      continue;
    }
    ++result.jobs_completed;
    result.makespan = std::max(result.makespan, pl.finish);
    completion.push(sim::to_seconds(pl.finish - pl.submitted));
    result.total_cost_usd += pl.cost_usd;
  }
  result.mean_completion_s = completion.mean();
  result.p95_completion_s = completion.percentile(95.0);
  st_ = Session{};
  return result;
}

FederationResult FederationSim::run() {
  sim::Engine engine(cfg_.seed);
  engine.attach(*this);
  engine.run();
  engine.detach(*this);
  return take_result();
}

}  // namespace hpc::fed
