#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sched/cluster.hpp"

/// \file site.hpp
/// Federated sites (Sections II.C, III.F): on-premise HPC centers, leadership
/// supercomputers, cloud partitions and instrumentation-edge facilities, each
/// with its own administrative domain, WAN connectivity, pricing, and — for
/// shared clouds — interference noise.

namespace hpc::fed {

/// Delivery-model class of a site (paper Figure 3, bottom half).
enum class SiteKind : std::uint8_t {
  kOnPrem,         ///< in-house cluster
  kSupercomputer,  ///< leadership-class dedicated machine
  kCloud,          ///< shared multi-tenant cloud partition
  kEdge,           ///< instrumentation-edge micro-datacenter
};

std::string_view name_of(SiteKind k) noexcept;

/// One federated site.
struct Site {
  int id = 0;
  std::string name;
  SiteKind kind = SiteKind::kOnPrem;
  sched::Cluster cluster;
  double wan_bandwidth_gbs = 1.25;    ///< site uplink (10 Gb/s default)
  double wan_latency_ns = 5e6;        ///< one-way WAN latency (5 ms default)
  double price_per_node_hour = 1.0;   ///< $ per node-hour charged to tenants
  int admin_domain = 0;               ///< governance boundary
  /// Multi-tenant interference: mean fractional runtime inflation (0 for
  /// dedicated systems; clouds typically 0.05-0.3 for tightly coupled jobs).
  double noise_factor = 0.0;
};

/// Builders for the common site shapes used in examples and benches.
Site make_onprem_site(int id, std::string name, int cpu_nodes, int gpu_nodes);
Site make_supercomputer_site(int id, std::string name, int nodes);
Site make_cloud_site(int id, std::string name, int nodes, double noise_factor = 0.15);
Site make_edge_site(int id, std::string name, int npu_nodes);

/// Point-to-point WAN transfer time for \p gb between two sites: sum of
/// one-way latencies plus serialization at the narrower uplink.
double wan_transfer_ns(const Site& from, const Site& to, double gb);

}  // namespace hpc::fed
