#include "fed/noise.hpp"

#include <algorithm>

namespace hpc::fed {

double NoiseModel::sample_slowdown(sim::Rng& rng) const {
  double s = 1.0 + std::max(0.0, rng.normal(0.0, jitter_sigma));
  if (spike_prob > 0.0 && rng.bernoulli(spike_prob)) {
    // Pareto-tailed spike scaled to the configured mean (mean of a Pareto
    // with xm, alpha is xm*alpha/(alpha-1) for alpha > 1).
    const double xm = spike_mean * (spike_pareto_alpha - 1.0) / spike_pareto_alpha;
    s += rng.pareto(std::max(1e-6, xm), spike_pareto_alpha);
  }
  return s;
}

NoiseModel dedicated_noise() { return NoiseModel{0.002, 0.0, 0.0, 1.5}; }

NoiseModel hpc_cloud_noise() { return NoiseModel{0.01, 0.002, 0.5, 1.8}; }

NoiseModel shared_cloud_noise() { return NoiseModel{0.05, 0.02, 1.5, 1.4}; }

BspResult run_bsp(int ranks, int steps, double compute_ns, double barrier_ns,
                  const NoiseModel& noise, sim::Rng& rng) {
  BspResult r;
  sim::Sampler step_times;
  for (int s = 0; s < steps; ++s) {
    double slowest = 0.0;
    for (int rank = 0; rank < ranks; ++rank)
      slowest = std::max(slowest, compute_ns * noise.sample_slowdown(rng));
    const double step = slowest + barrier_ns;
    r.total_ns += step;
    step_times.push(step);
  }
  r.ideal_ns = static_cast<double>(steps) * (compute_ns + barrier_ns);
  r.efficiency = r.total_ns > 0.0 ? r.ideal_ns / r.total_ns : 1.0;
  r.mean_step_ns = step_times.mean();
  r.p99_step_ns = step_times.p99();
  return r;
}

}  // namespace hpc::fed
