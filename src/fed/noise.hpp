#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

/// \file noise.hpp
/// Multi-tenant interference and its effect on bulk-synchronous (BSP)
/// applications.  The paper (Section II.C): cloud "sharing of infrastructure
/// and the interference of other applications ... creates noise and makes
/// barrier-based synchronizations ineffective (the slowest component dictates
/// performance)".  Experiment C6 sweeps this model.

namespace hpc::fed {

/// Per-rank, per-step interference model: every rank's compute time is
/// inflated by Gaussian jitter plus occasional heavy spikes (noisy
/// neighbours, page migrations, network interference).
struct NoiseModel {
  double jitter_sigma = 0.02;   ///< relative Gaussian jitter per rank-step
  double spike_prob = 0.01;     ///< probability a rank hits a spike this step
  double spike_mean = 1.0;      ///< mean spike size, relative to step time
  double spike_pareto_alpha = 1.5;  ///< tail heaviness (alpha <= 1 is extreme)

  /// Samples one rank's multiplicative slowdown for one step (>= 1).
  double sample_slowdown(sim::Rng& rng) const;
};

/// Dedicated partition: no interference.
NoiseModel dedicated_noise();

/// HPC-optimized cloud partition: light jitter, rare spikes.
NoiseModel hpc_cloud_noise();

/// General-purpose shared cloud: the paper's problem case.
NoiseModel shared_cloud_noise();

/// Outcome of a BSP run.
struct BspResult {
  double total_ns = 0.0;
  double ideal_ns = 0.0;       ///< noise-free total
  double efficiency = 1.0;     ///< ideal / actual
  double mean_step_ns = 0.0;
  double p99_step_ns = 0.0;
};

/// Runs \p steps bulk-synchronous steps over \p ranks ranks, each step
/// costing max over ranks of (compute_ns x slowdown) + barrier_ns.
/// Step costs are analytic fractional nanoseconds, not simulator timestamps.
// archlint: allow(raw-time)
BspResult run_bsp(int ranks, int steps, double compute_ns, double barrier_ns,
                  const NoiseModel& noise, sim::Rng& rng);

}  // namespace hpc::fed
