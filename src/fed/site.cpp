#include "fed/site.hpp"

#include <algorithm>

#include "hw/catalog.hpp"

namespace hpc::fed {

std::string_view name_of(SiteKind k) noexcept {
  switch (k) {
    case SiteKind::kOnPrem: return "on-prem";
    case SiteKind::kSupercomputer: return "supercomputer";
    case SiteKind::kCloud: return "cloud";
    case SiteKind::kEdge: return "edge";
  }
  return "on-prem";
}

Site make_onprem_site(int id, std::string name, int cpu_nodes, int gpu_nodes) {
  Site s;
  s.id = id;
  s.name = std::move(name);
  s.kind = SiteKind::kOnPrem;
  s.cluster = sched::make_cpu_gpu_cluster(cpu_nodes, gpu_nodes, s.name + "-cluster");
  s.wan_bandwidth_gbs = 1.25;
  s.wan_latency_ns = 5e6;
  s.price_per_node_hour = 0.8;
  return s;
}

Site make_supercomputer_site(int id, std::string name, int nodes) {
  Site s;
  s.id = id;
  s.name = std::move(name);
  s.kind = SiteKind::kSupercomputer;
  s.cluster = sched::make_diversified_cluster(nodes / 4, nodes / 2, nodes / 8,
                                              nodes / 16, nodes / 16, s.name + "-cluster");
  s.wan_bandwidth_gbs = 12.5;  // 100 Gb/s science DMZ
  s.wan_latency_ns = 8e6;
  s.price_per_node_hour = 1.5;
  return s;
}

Site make_cloud_site(int id, std::string name, int nodes, double noise_factor) {
  Site s;
  s.id = id;
  s.name = std::move(name);
  s.kind = SiteKind::kCloud;
  s.cluster = sched::make_cpu_gpu_cluster(nodes / 2, nodes / 2, s.name + "-cluster");
  s.wan_bandwidth_gbs = 2.5;
  s.wan_latency_ns = 20e6;
  s.price_per_node_hour = 2.5;  // elasticity is priced in
  s.admin_domain = 100 + id;    // clouds are foreign domains
  s.noise_factor = noise_factor;
  return s;
}

Site make_edge_site(int id, std::string name, int npu_nodes) {
  Site s;
  s.id = id;
  s.name = std::move(name);
  s.kind = SiteKind::kEdge;
  s.cluster.name = s.name + "-cluster";
  s.cluster.partitions.push_back({"edge-cpu", hw::cpu_edge_spec(), npu_nodes});
  s.cluster.partitions.push_back({"edge-npu", hw::edge_npu_spec(), npu_nodes});
  s.wan_bandwidth_gbs = 0.125;  // 1 Gb/s facility uplink
  s.wan_latency_ns = 2e6;
  s.price_per_node_hour = 0.3;
  return s;
}

double wan_transfer_ns(const Site& from, const Site& to, double gb) {
  if (from.id == to.id || gb <= 0.0) return 0.0;
  const double bw = std::min(from.wan_bandwidth_gbs, to.wan_bandwidth_gbs);
  return from.wan_latency_ns + to.wan_latency_ns + gb * 1e9 / bw;
}

}  // namespace hpc::fed
