#include "fed/accounting.hpp"

#include <algorithm>

namespace hpc::fed {

void Ledger::record(const UsageRecord& r) { records_.push_back(r); }

void Ledger::void_job(int job_id) {
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [job_id](const UsageRecord& r) { return r.job_id == job_id; }),
                 records_.end());
}

double Ledger::earned_usd(int site) const {
  double sum = 0.0;
  for (const UsageRecord& r : records_)
    if (r.provider_site == site && r.consumer_site != site) sum += r.cost_usd;
  return sum;
}

double Ledger::spent_usd(int site) const {
  double sum = 0.0;
  for (const UsageRecord& r : records_)
    if (r.consumer_site == site && r.provider_site != site) sum += r.cost_usd;
  return sum;
}

double Ledger::net_usd(int site) const { return earned_usd(site) - spent_usd(site); }

double Ledger::total_node_hours() const {
  double sum = 0.0;
  for (const UsageRecord& r : records_) sum += r.node_hours;
  return sum;
}

double Ledger::total_wan_gb() const {
  double sum = 0.0;
  for (const UsageRecord& r : records_) sum += r.wan_gb;
  return sum;
}

}  // namespace hpc::fed
