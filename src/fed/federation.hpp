#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fed/accounting.hpp"
#include "fed/site.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

/// \file federation.hpp
/// Multi-site federated scheduling — the paper's horizontal federation
/// (Section III.F) and the staged path to "democratized compute"
/// (Section III.G): local-only → bursting → fluid workloads → grid →
/// exchange.  Experiments C7, C10, F3 run on this simulator.

namespace hpc::fed {

/// How the meta-scheduler chooses a site for a job.
enum class MetaPolicy : std::uint8_t {
  kHomeOnly,       ///< run where submitted (traditional on-prem)
  kComputeOnly,    ///< least-loaded feasible site, ignoring data location
  kDataGravity,    ///< minimize staged-transfer + wait + run end to end
  kCheapest,       ///< minimize dollar cost subject to feasibility
};

std::string_view name_of(MetaPolicy p) noexcept;

/// Maturity stage of the federation (Section III.G, Figure 3 trajectory).
enum class FederationStage : std::uint8_t {
  kLocalOnly,   ///< every job runs at its home site
  kBursting,    ///< overflow to a designated cloud when home queue is deep
  kFluid,       ///< any site within the same administrative domain
  kGrid,        ///< any site, gravity-aware placement
  kExchange,    ///< any site, market-priced: gravity-aware among affordable
};

std::string_view name_of(FederationStage s) noexcept;

/// Configuration of a federation run.
struct FederationConfig {
  MetaPolicy policy = MetaPolicy::kDataGravity;
  FederationStage stage = FederationStage::kGrid;
  int burst_site = -1;                  ///< designated burst target (kBursting)
  double burst_queue_threshold_s = 600.0;
  double cross_domain_transfer_penalty = 1.0;  ///< multiplier on WAN time
  std::uint64_t seed = 1;
  /// Failure injection: site \p fail_site goes dark at \p fail_at (ns).
  /// Jobs running or queued there are rerouted to surviving sites (lost
  /// entirely if no alternative exists).  -1 disables.
  int fail_site = -1;
  sim::TimeNs fail_at = 0;
};

/// A job with federation context.
struct FedJob {
  sched::Job job;
  int home_site = 0;
};

/// One job's federated outcome.
struct FedPlacement {
  int job_id = 0;
  int site = -1;             ///< -1: never ran
  int partition = -1;
  sim::TimeNs submitted = 0;
  sim::TimeNs data_ready = 0;///< after staging input over the WAN
  sim::TimeNs start = 0;
  sim::TimeNs finish = 0;
  double transfer_gb = 0.0;
  double cost_usd = 0.0;
};

/// Aggregate outcome.
struct FederationResult {
  std::vector<FedPlacement> placements;
  sim::TimeNs makespan = 0;
  double mean_completion_s = 0.0;   ///< submit -> finish
  double p95_completion_s = 0.0;
  double total_cost_usd = 0.0;
  double wan_gb_moved = 0.0;
  int jobs_completed = 0;
  int jobs_dropped = 0;
  int jobs_rerouted = 0;  ///< rescheduled after a site failure
  Ledger ledger;
};

/// Event-driven federated scheduling simulation (a sim::Component).  Each
/// site schedules its local queue with heterogeneity-affinity placement; the
/// meta-scheduler routes jobs to sites per policy/stage at submission time.
class FederationSim final : public sim::Component {
 public:
  FederationSim(std::vector<Site> sites, FederationConfig cfg);

  void submit(const sched::Job& job, int home_site);
  void submit_all(const std::vector<sched::Job>& jobs, int home_site);

  const std::vector<Site>& sites() const noexcept { return sites_; }

  /// Attaches observability sinks (both optional; nullptr detaches).  The
  /// meta-scheduler's decisions become instants on the "fed" track:
  /// "fed.burst" when a job is routed off its home site (payload = chosen
  /// site), "fed.site_failure" when a site goes dark, and "fed.reroute" per
  /// displaced job that found a new home.  Metered: remote routes and
  /// reroutes.  Passive: results are identical either way.
  void set_observer(obs::TraceRecorder* trace, obs::MetricRegistry* metrics = nullptr);

  /// Batch wrapper: private Engine, attach, run to quiescence, aggregate.
  FederationResult run();

  // sim::Component contract.
  [[nodiscard]] std::string_view component_name() const noexcept override {
    return "fed.federation";
  }
  /// Starts a federation session on the shared clock.
  void on_attach(sim::Engine& engine) override;

  /// Aggregate result of the last completed session.
  [[nodiscard]] FederationResult take_result();

 private:
  struct Running {
    int job_index;
    int site;
    int partition;
    sim::TimeNs finish;
    int nodes;
  };

  /// Transient state of one federation session.
  struct Session {
    bool started = false;        ///< first step ran (failure/retire gate)
    bool failure_pending = false;
    std::vector<int> order;      ///< job indices in submission order
    std::vector<std::vector<int>> free;      ///< free nodes per site/partition
    std::vector<std::vector<int>> queues;    ///< queued job indices per site
    std::vector<sim::TimeNs> data_ready;
    std::vector<int> dest;
    /// Site uplinks serialize staging transfers: a transfer may only start
    /// when both endpoints' WAN uplinks are free (simple full-serialization
    /// model of WAN contention; finer-grained sharing lives in hpc::net and
    /// is used instead when co-simulating — see core::System).
    std::vector<sim::TimeNs> uplink_busy;
    std::vector<Running> running;
    std::size_t next_submit = 0;
    FederationResult result;
  };

  /// One meta-scheduling step on the shared clock.
  void step();
  void admit(sim::TimeNs now);
  void start_ready_jobs(sim::TimeNs now);
  void handle_failure(sim::TimeNs now);
  void retire(sim::TimeNs now);
  std::size_t queued_jobs() const;

  /// Estimated queue wait at a site: outstanding node-seconds / capacity.
  double est_wait_s(int site, sim::TimeNs now, const std::vector<Running>& running,
                    const std::vector<std::vector<int>>& queues) const;

  /// Sites the stage/policy allows this job to use.
  std::vector<int> candidate_sites(const FedJob& fj, double home_wait_s) const;

  /// Chooses the destination site; returns -1 if nothing feasible.
  int choose_site(const FedJob& fj, sim::TimeNs now, const std::vector<Running>& running,
                  const std::vector<std::vector<int>>& queues);

  double transfer_penalty(const Site& from, const Site& to) const;

  std::vector<Site> sites_;
  FederationConfig cfg_;
  sim::Rng rng_;
  std::vector<FedJob> jobs_;
  std::vector<bool> dead_;  ///< per-site failure state during a session
  Session st_;

  // Observability (optional, passive; see set_observer).
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId otrack_ = 0;
  obs::StrId sid_burst_ = 0;
  obs::StrId sid_reroute_ = 0;
  obs::StrId sid_failure_ = 0;
  obs::Counter* m_burst_ = nullptr;
  obs::Counter* m_reroute_ = nullptr;
};

}  // namespace hpc::fed
