#pragma once

#include "ai/mlp.hpp"
#include "sim/rng.hpp"

/// \file datasets.hpp
/// Synthetic datasets shaped like the paper's HPC data characterization
/// (Section III.A: "sparse, bit-rich and information-poor, tightly
/// constrained by the laws of the physical world"): physics-flavoured
/// regression targets and low-dimensional classification manifolds.

namespace hpc::ai {

/// Gaussian blobs: \p classes clusters in \p dim dimensions.
Dataset make_blobs(std::int64_t n, int classes, std::int64_t dim, double spread,
                   sim::Rng& rng);

/// Two interleaved spirals (binary classification, 2-D, non-linearly
/// separable — exercises real training rather than a linear shortcut).
Dataset make_two_spirals(std::int64_t n, double noise, sim::Rng& rng);

/// Damped-oscillator response regression: inputs (omega, zeta, t) in [0,1]^3,
/// target the normalized displacement — a stand-in for an expensive
/// simulation step the surrogate experiment learns (C11).
Dataset make_oscillator(std::int64_t n, sim::Rng& rng);

/// The ground-truth oscillator response used by make_oscillator (normalized
/// inputs), exposed so surrogates can be compared against the true function.
double oscillator_response(double omega01, double zeta01, double t01) noexcept;

/// Splits a dataset deterministically: the first \p train_fraction goes to
/// train, the rest to test (datasets above are generated pre-shuffled).
std::pair<Dataset, Dataset> split(const Dataset& data, double train_fraction);

}  // namespace hpc::ai
