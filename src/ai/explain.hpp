#pragma once

#include <span>
#include <vector>

#include "ai/mlp.hpp"
#include "sim/rng.hpp"

/// \file explain.hpp
/// Model explainability (paper Section III.D: "explainability is crucial for
/// any behavior analysis and auditing.  As the AI-HPC integration progresses,
/// explainability will increase in relevance"; Section III.A: mission-critical
/// AI "must have a much stronger explainability basis").
///
/// Two standard post-hoc methods for the MLP substrate: per-sample saliency
/// (finite-difference gradient x input) and global permutation importance.

namespace hpc::ai {

/// Per-feature attribution for one prediction: the change in the predicted
/// output (selected class probability, or the regression output) per unit of
/// feature movement, times the feature value (gradient x input, central
/// differences).
std::vector<double> saliency(const Mlp& model, std::span<const float> x,
                             double epsilon = 1e-3);

/// Global permutation importance: accuracy (or negative RMSE) drop when one
/// feature column is shuffled across the dataset.  Larger = more important.
struct FeatureImportance {
  std::vector<double> importance;  ///< per input feature
  double baseline_score = 0.0;     ///< accuracy (CE head) or -RMSE (MSE head)
};

FeatureImportance permutation_importance(const Mlp& model, const Dataset& data,
                                         sim::Rng& rng, int repeats = 3);

}  // namespace hpc::ai
