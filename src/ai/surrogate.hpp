#pragma once

#include <functional>

#include "ai/datasets.hpp"
#include "ai/mlp.hpp"
#include "sim/rng.hpp"

/// \file surrogate.hpp
/// AI surrogate models for simulation steps (Section III.B: accelerators
/// "enable closed-loop combinations of classical simulation and deep-learning
/// inference (to accelerate some simulation steps)").  Experiment C11 runs
/// the closed loop built here.

namespace hpc::ai {

/// An expensive, deterministic ground-truth model y = f(x), x in [0,1]^dim,
/// with a declared simulated cost per evaluation.
struct GroundTruth {
  std::function<double(std::span<const double>)> f;
  std::int64_t dim = 3;
  double cost_ns = 1e6;  ///< simulated cost of one exact evaluation
};

/// The damped-oscillator ground truth (matches make_oscillator).
/// Cost is an analytic fractional-ns model parameter, not a simulator
/// timestamp.
// archlint: allow(raw-time)
GroundTruth oscillator_truth(double cost_ns = 1e6);

/// Result of training a surrogate for a ground-truth model.
struct Surrogate {
  Mlp model;
  double train_rmse = 0.0;
  double test_rmse = 0.0;
  double train_cost_ns = 0.0;    ///< simulated cost of collecting samples
  double inference_cost_ns = 0.0;///< simulated cost of one surrogate call
};

/// Samples \p truth, trains an MLP surrogate, reports fidelity.
/// \param samples       number of ground-truth evaluations to learn from
/// \param inference_ns  simulated cost of one surrogate inference
Surrogate train_surrogate(const GroundTruth& truth, std::int64_t samples,
                          // archlint: allow(raw-time): analytic fractional-ns cost model
                          double inference_ns, sim::Rng& rng);

/// Closed-loop campaign outcome.
struct LoopResult {
  double time_full_ns = 0.0;     ///< all steps exact
  double time_hybrid_ns = 0.0;   ///< surrogate + periodic exact re-anchor
  double speedup = 0.0;
  double mean_abs_error = 0.0;   ///< hybrid trajectory error vs exact
};

/// Runs a parameter-sweep campaign of \p steps evaluations where the hybrid
/// policy calls the exact model every \p anchor_every steps (and for surrogate
/// training, already amortized in Surrogate::train_cost_ns) and the surrogate
/// otherwise.
LoopResult run_campaign(const GroundTruth& truth, const Surrogate& surrogate,
                        std::int64_t steps, std::int64_t anchor_every, sim::Rng& rng);

}  // namespace hpc::ai
