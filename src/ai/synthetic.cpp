#include "ai/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace hpc::ai {

namespace {
constexpr double kMinVar = 1e-4;
}

GaussianMixture::GaussianMixture(int components, std::int64_t dim)
    : k_(components),
      dim_(dim),
      weight_(static_cast<std::size_t>(components), 1.0 / components),
      mean_(static_cast<std::size_t>(components * dim), 0.0),
      var_(static_cast<std::size_t>(components * dim), 1.0) {}

double GaussianMixture::log_density(const float* x, int component) const {
  const double* mu = mean_.data() + component * dim_;
  const double* v = var_.data() + component * dim_;
  double ll = 0.0;
  for (std::int64_t d = 0; d < dim_; ++d) {
    const double diff = x[d] - mu[d];
    ll += -0.5 * (std::log(2.0 * std::numbers::pi * v[d]) + diff * diff / v[d]);
  }
  return ll;
}

double GaussianMixture::fit(std::span<const float> x, std::int64_t n, int iterations,
                            sim::Rng& rng) {
  if (n == 0) return 0.0;
  // Seed means from random distinct samples, variances from the data spread.
  for (int c = 0; c < k_; ++c) {
    const auto pick = static_cast<std::int64_t>(rng.index(static_cast<std::size_t>(n)));
    for (std::int64_t d = 0; d < dim_; ++d)
      mean_[static_cast<std::size_t>(c * dim_ + d)] =
          x[static_cast<std::size_t>(pick * dim_ + d)];
  }
  for (std::int64_t d = 0; d < dim_; ++d) {
    double m = 0.0;
    double m2 = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const double v = x[static_cast<std::size_t>(i * dim_ + d)];
      m += v;
      m2 += v * v;
    }
    m /= static_cast<double>(n);
    const double var = std::max(kMinVar, m2 / static_cast<double>(n) - m * m);
    for (int c = 0; c < k_; ++c) var_[static_cast<std::size_t>(c * dim_ + d)] = var;
  }

  std::vector<double> resp(static_cast<std::size_t>(n * k_));
  double mean_ll = 0.0;
  for (int it = 0; it < iterations; ++it) {
    // E step.
    mean_ll = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      double mx = -1e300;
      for (int c = 0; c < k_; ++c) {
        const double l = std::log(std::max(weight_[static_cast<std::size_t>(c)], 1e-12)) +
                         log_density(x.data() + i * dim_, c);
        resp[static_cast<std::size_t>(i * k_ + c)] = l;
        mx = std::max(mx, l);
      }
      double sum = 0.0;
      for (int c = 0; c < k_; ++c)
        sum += std::exp(resp[static_cast<std::size_t>(i * k_ + c)] - mx);
      const double log_norm = mx + std::log(sum);
      mean_ll += log_norm;
      for (int c = 0; c < k_; ++c)
        resp[static_cast<std::size_t>(i * k_ + c)] =
            std::exp(resp[static_cast<std::size_t>(i * k_ + c)] - log_norm);
    }
    mean_ll /= static_cast<double>(n);

    // M step.
    for (int c = 0; c < k_; ++c) {
      double nc = 0.0;
      for (std::int64_t i = 0; i < n; ++i) nc += resp[static_cast<std::size_t>(i * k_ + c)];
      weight_[static_cast<std::size_t>(c)] = nc / static_cast<double>(n);
      if (nc < 1e-9) continue;  // dead component: keep previous parameters
      for (std::int64_t d = 0; d < dim_; ++d) {
        double m = 0.0;
        for (std::int64_t i = 0; i < n; ++i)
          m += resp[static_cast<std::size_t>(i * k_ + c)] *
               x[static_cast<std::size_t>(i * dim_ + d)];
        m /= nc;
        double v = 0.0;
        for (std::int64_t i = 0; i < n; ++i) {
          const double diff = x[static_cast<std::size_t>(i * dim_ + d)] - m;
          v += resp[static_cast<std::size_t>(i * k_ + c)] * diff * diff;
        }
        mean_[static_cast<std::size_t>(c * dim_ + d)] = m;
        var_[static_cast<std::size_t>(c * dim_ + d)] = std::max(kMinVar, v / nc);
      }
    }
  }
  return mean_ll;
}

std::vector<float> GaussianMixture::sample(sim::Rng& rng) const {
  // Pick a component by weight.
  double u = rng.uniform();
  int c = k_ - 1;
  for (int i = 0; i < k_; ++i) {
    u -= weight_[static_cast<std::size_t>(i)];
    if (u <= 0.0) {
      c = i;
      break;
    }
  }
  std::vector<float> out(static_cast<std::size_t>(dim_));
  for (std::int64_t d = 0; d < dim_; ++d)
    out[static_cast<std::size_t>(d)] = static_cast<float>(
        rng.normal(mean_[static_cast<std::size_t>(c * dim_ + d)],
                   std::sqrt(var_[static_cast<std::size_t>(c * dim_ + d)])));
  return out;
}

double GaussianMixture::log_likelihood(std::span<const float> x, std::int64_t n) const {
  if (n == 0) return 0.0;
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    double mx = -1e300;
    std::vector<double> ls(static_cast<std::size_t>(k_));
    for (int c = 0; c < k_; ++c) {
      ls[static_cast<std::size_t>(c)] =
          std::log(std::max(weight_[static_cast<std::size_t>(c)], 1e-12)) +
          log_density(x.data() + i * dim_, c);
      mx = std::max(mx, ls[static_cast<std::size_t>(c)]);
    }
    double sum = 0.0;
    for (int c = 0; c < k_; ++c) sum += std::exp(ls[static_cast<std::size_t>(c)] - mx);
    total += mx + std::log(sum);
  }
  return total / static_cast<double>(n);
}

Dataset synthesize_like(const Dataset& real, std::int64_t n, int components,
                        sim::Rng& rng, int em_iterations) {
  // Split real data by class.
  const int classes = static_cast<int>(real.targets);
  std::vector<std::vector<float>> per_class(static_cast<std::size_t>(classes));
  std::vector<std::int64_t> counts(static_cast<std::size_t>(classes), 0);
  for (std::int64_t i = 0; i < real.n; ++i) {
    const int c = real.label[static_cast<std::size_t>(i)];
    ++counts[static_cast<std::size_t>(c)];
    const auto row = real.input(i);
    per_class[static_cast<std::size_t>(c)].insert(per_class[static_cast<std::size_t>(c)].end(),
                                                  row.begin(), row.end());
  }

  // Fit one generator per class.
  std::vector<GaussianMixture> generators;
  generators.reserve(static_cast<std::size_t>(classes));
  for (int c = 0; c < classes; ++c) {
    GaussianMixture gm(components, real.dim);
    gm.fit(per_class[static_cast<std::size_t>(c)], counts[static_cast<std::size_t>(c)],
           em_iterations, rng);
    generators.push_back(std::move(gm));
  }

  // Sample preserving the class balance.
  Dataset synth;
  synth.n = n;
  synth.dim = real.dim;
  synth.targets = real.targets;
  synth.x.resize(static_cast<std::size_t>(n * real.dim));
  synth.label.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    // Class by empirical frequency.
    std::int64_t pick = rng.uniform_int(0, real.n - 1);
    const int c = real.label[static_cast<std::size_t>(pick)];
    synth.label[static_cast<std::size_t>(i)] = c;
    const std::vector<float> row = generators[static_cast<std::size_t>(c)].sample(rng);
    std::copy(row.begin(), row.end(), synth.x.begin() + i * real.dim);
  }
  return synth;
}

}  // namespace hpc::ai
