#pragma once

#include <iosfwd>
#include <string>

#include "ai/mlp.hpp"

/// \file model_io.hpp
/// Model interchange (paper Section III.D): "intermediate layers, such as
/// ONNX, play an important interoperability role in hiding heterogeneity of
/// both programming environments and the underlying hardware, for example by
/// decoupling model training from model inference."
///
/// A small self-describing text format: a model trained at the
/// supercomputing core can be shipped to an edge runtime (or a different
/// executor — quantized, analog) without sharing any training code.

namespace hpc::ai {

/// Serializes a model (architecture + weights, full float precision).
std::string to_text(const Mlp& model);
void write_text(std::ostream& os, const Mlp& model);

/// Reconstructs a model; throws std::runtime_error on malformed input or
/// unsupported format version.
Mlp from_text(const std::string& text);
Mlp read_text(std::istream& is);

}  // namespace hpc::ai
