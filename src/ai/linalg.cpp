#include "ai/linalg.hpp"

#include <algorithm>
#include <cmath>

namespace hpc::ai {

void matvec(std::span<const float> w, std::int64_t rows, std::int64_t cols,
            std::span<const float> x, std::span<float> y) noexcept {
  for (std::int64_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    const float* row = w.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) acc += static_cast<double>(row[c]) * x[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(r)] = static_cast<float>(acc);
  }
}

void matvec_transposed(std::span<const float> w, std::int64_t rows, std::int64_t cols,
                       std::span<const float> x, std::span<float> y) noexcept {
  std::fill(y.begin(), y.end(), 0.0f);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float xr = x[static_cast<std::size_t>(r)];
    const float* row = w.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) y[static_cast<std::size_t>(c)] += row[c] * xr;
  }
}

void add_outer(std::span<float> w, std::int64_t rows, std::int64_t cols,
               std::span<const float> a, std::span<const float> b, float scale) noexcept {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float ar = a[static_cast<std::size_t>(r)] * scale;
    float* row = w.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) row[c] += ar * b[static_cast<std::size_t>(c)];
  }
}

void axpy(std::span<float> dst, std::span<const float> src, float scale) noexcept {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += scale * src[i];
}

float norm2(std::span<const float> v) noexcept {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

float rms_error(std::span<const float> a, std::span<const float> b) noexcept {
  if (a.empty()) return 0.0f;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc / static_cast<double>(a.size())));
}

std::size_t argmax(std::span<const float> v) noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i)
    if (v[i] > v[best]) best = i;
  return best;
}

void softmax(std::span<float> v) noexcept {
  if (v.empty()) return;
  float mx = v[0];
  for (float x : v) mx = std::max(mx, x);
  double sum = 0.0;
  for (float& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& x : v) x *= inv;
}

}  // namespace hpc::ai
