#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ai/mlp.hpp"
#include "hw/analog.hpp"
#include "hw/precision.hpp"
#include "sim/rng.hpp"

/// \file exec.hpp
/// Alternative inference executors for a trained Mlp: exact float, reduced
/// precision (bf16/fp16/int8/int4 — the formats Section III.B says are
/// "becoming mainstream"), and analog/photonic execution with real crossbar
/// quantization and read noise.  Experiments C4 and C5 run the same trained
/// weights through these executors and compare accuracy.

namespace hpc::ai {

/// Strategy for computing the W·x inner loop of a dense layer.
class MatvecExecutor {
 public:
  virtual ~MatvecExecutor() = default;
  /// y = W x (row-major rows x cols).
  virtual std::vector<float> matvec(std::span<const float> w, std::int64_t rows,
                                    std::int64_t cols, std::span<const float> x) = 0;
};

/// Bit-exact float32 reference.
class ExactExecutor final : public MatvecExecutor {
 public:
  std::vector<float> matvec(std::span<const float> w, std::int64_t rows, std::int64_t cols,
                            std::span<const float> x) override;
};

/// Quantizes weights and activations to \p precision before each MAC stream.
/// Int formats use per-tensor symmetric scales derived from the max-abs.
class QuantizedExecutor final : public MatvecExecutor {
 public:
  explicit QuantizedExecutor(hw::Precision precision) : precision_(precision) {}
  std::vector<float> matvec(std::span<const float> w, std::int64_t rows, std::int64_t cols,
                            std::span<const float> x) override;

 private:
  hw::Precision precision_;
};

/// Runs each layer's mat-vec on an analog crossbar engine (noise + quantized
/// conductances), per Section III.B's neuromorphic accelerators.
class AnalogExecutor final : public MatvecExecutor {
 public:
  AnalogExecutor(const hw::AnalogEngine& engine, sim::Rng& rng)
      : engine_(engine), rng_(rng) {}
  std::vector<float> matvec(std::span<const float> w, std::int64_t rows, std::int64_t cols,
                            std::span<const float> x) override;

 private:
  const hw::AnalogEngine& engine_;
  sim::Rng& rng_;
};

/// Forward pass of \p mlp where every dense mat-vec goes through \p exec
/// (bias add and activations stay in float, as real mixed-precision
/// deployments do).
std::vector<float> forward_with(const Mlp& mlp, std::span<const float> x,
                                MatvecExecutor& exec);

/// Classification accuracy of \p mlp over \p data using \p exec.
double accuracy_with(const Mlp& mlp, const Dataset& data, MatvecExecutor& exec);

/// Regression RMSE of \p mlp over \p data using \p exec.
double rmse_with(const Mlp& mlp, const Dataset& data, MatvecExecutor& exec);

}  // namespace hpc::ai
