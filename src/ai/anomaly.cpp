#include "ai/anomaly.hpp"

#include <cmath>

namespace hpc::ai {

StreamingDetector::StreamingDetector(double alpha, double threshold_sigma,
                                     std::int64_t warmup)
    : alpha_(alpha), threshold_(threshold_sigma), warmup_(warmup) {}

double StreamingDetector::stddev() const noexcept { return std::sqrt(var_); }

bool StreamingDetector::observe(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = x;
    var_ = 0.0;
    return false;
  }
  const double sd = stddev();
  const bool anomalous = n_ > warmup_ && sd > 1e-12 && std::abs(x - mean_) > threshold_ * sd;
  if (anomalous) {
    ++alarms_;
    // Do not absorb outliers into the baseline.
    return true;
  }
  const double delta = x - mean_;
  mean_ += alpha_ * delta;
  var_ = (1.0 - alpha_) * (var_ + alpha_ * delta * delta);
  return false;
}

}  // namespace hpc::ai
