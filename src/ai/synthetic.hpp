#pragma once

#include <vector>

#include "ai/mlp.hpp"
#include "sim/rng.hpp"

/// \file synthetic.hpp
/// Generative synthetic data (paper Section V: "AI will ... enable use of
/// GANs for synthetic data").  A per-class Gaussian-mixture density model is
/// fit with EM on real data and sampled to produce privacy-safe synthetic
/// training sets — the workflow where a site cannot export governed raw data
/// (Section III.A data governance) but can export a generator.

namespace hpc::ai {

/// Diagonal-covariance Gaussian mixture fit with EM.
class GaussianMixture {
 public:
  /// \param components  mixture size
  /// \param dim         feature dimensionality
  GaussianMixture(int components, std::int64_t dim);

  /// Fits to row-major samples (n x dim) with \p iterations EM steps;
  /// k-means++-style seeding from \p rng.  Returns the final mean
  /// log-likelihood per sample.
  double fit(std::span<const float> x, std::int64_t n, int iterations, sim::Rng& rng);

  /// Samples one point.
  std::vector<float> sample(sim::Rng& rng) const;

  /// Mean log-likelihood per sample of held-out data.
  double log_likelihood(std::span<const float> x, std::int64_t n) const;

  int components() const noexcept { return k_; }
  std::int64_t dim() const noexcept { return dim_; }

 private:
  double log_density(const float* x, int component) const;

  int k_;
  std::int64_t dim_;
  std::vector<double> weight_;  ///< k
  std::vector<double> mean_;    ///< k x dim
  std::vector<double> var_;     ///< k x dim (diagonal)
};

/// Fits one mixture per class and samples a synthetic classification dataset
/// of n points mirroring the class balance of \p real.
Dataset synthesize_like(const Dataset& real, std::int64_t n, int components,
                        sim::Rng& rng, int em_iterations = 40);

}  // namespace hpc::ai
