#include "ai/surrogate.hpp"

#include <cmath>

namespace hpc::ai {

GroundTruth oscillator_truth(double cost_ns) {
  GroundTruth g;
  g.dim = 3;
  g.cost_ns = cost_ns;
  g.f = [](std::span<const double> x) {
    return oscillator_response(x[0], x[1], x[2]);
  };
  return g;
}

Surrogate train_surrogate(const GroundTruth& truth, std::int64_t samples,
                          double inference_ns, sim::Rng& rng) {
  Dataset data;
  data.n = samples;
  data.dim = truth.dim;
  data.targets = 1;
  data.x.resize(static_cast<std::size_t>(samples * truth.dim));
  data.y.resize(static_cast<std::size_t>(samples));
  std::vector<double> point(static_cast<std::size_t>(truth.dim));
  for (std::int64_t i = 0; i < samples; ++i) {
    for (std::int64_t k = 0; k < truth.dim; ++k) {
      point[static_cast<std::size_t>(k)] = rng.uniform();
      data.x[static_cast<std::size_t>(i * truth.dim + k)] =
          static_cast<float>(point[static_cast<std::size_t>(k)]);
    }
    data.y[static_cast<std::size_t>(i)] = static_cast<float>(truth.f(point));
  }
  auto [train, test] = split(data, 0.85);

  Surrogate s{Mlp({truth.dim, 48, 48, 1}, Activation::kTanh, Loss::kMse, rng)};
  TrainConfig cfg;
  cfg.learning_rate = 0.05f;
  cfg.momentum = 0.9f;
  cfg.batch_size = 32;
  cfg.epochs = 250;
  s.model.train(train, cfg, rng);
  s.train_rmse = s.model.rmse(train);
  s.test_rmse = s.model.rmse(test);
  s.train_cost_ns = static_cast<double>(samples) * truth.cost_ns;
  s.inference_cost_ns = inference_ns;
  return s;
}

LoopResult run_campaign(const GroundTruth& truth, const Surrogate& surrogate,
                        std::int64_t steps, std::int64_t anchor_every, sim::Rng& rng) {
  LoopResult r;
  double err = 0.0;
  std::vector<double> point(static_cast<std::size_t>(truth.dim));
  std::vector<float> pointf(static_cast<std::size_t>(truth.dim));
  for (std::int64_t i = 0; i < steps; ++i) {
    for (std::int64_t k = 0; k < truth.dim; ++k) {
      point[static_cast<std::size_t>(k)] = rng.uniform();
      pointf[static_cast<std::size_t>(k)] = static_cast<float>(point[static_cast<std::size_t>(k)]);
    }
    const double exact = truth.f(point);
    r.time_full_ns += truth.cost_ns;

    const bool anchor = anchor_every > 0 && (i % anchor_every) == 0;
    if (anchor) {
      r.time_hybrid_ns += truth.cost_ns;
      // Exact step contributes no surrogate error.
    } else {
      r.time_hybrid_ns += surrogate.inference_cost_ns;
      const std::vector<float> out = surrogate.model.forward(pointf);
      err += std::abs(static_cast<double>(out[0]) - exact);
    }
  }
  // Amortize the surrogate's training-data collection over the campaign.
  r.time_hybrid_ns += surrogate.train_cost_ns;
  r.speedup = r.time_hybrid_ns > 0.0 ? r.time_full_ns / r.time_hybrid_ns : 0.0;
  r.mean_abs_error = steps > 0 ? err / static_cast<double>(steps) : 0.0;
  return r;
}

}  // namespace hpc::ai
