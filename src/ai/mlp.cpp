#include "ai/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ai/linalg.hpp"

namespace hpc::ai {

struct Mlp::Scratch {
  // post[i] = activations after layer i (post-nonlinearity); pre-activation
  // gradients reuse the same shapes.
  std::vector<std::vector<float>> post;
  std::vector<std::vector<float>> grad;
};

Mlp::Mlp(std::vector<std::int64_t> sizes, Activation hidden, Loss loss, sim::Rng& rng)
    : hidden_(hidden), loss_(loss) {
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    DenseLayer layer;
    layer.in = sizes[i];
    layer.out = sizes[i + 1];
    layer.w.resize(static_cast<std::size_t>(layer.in * layer.out));
    layer.b.assign(static_cast<std::size_t>(layer.out), 0.0f);
    // He initialization for ReLU-family, Xavier for tanh.
    const double scale = hidden == Activation::kTanh
                             ? std::sqrt(1.0 / static_cast<double>(layer.in))
                             : std::sqrt(2.0 / static_cast<double>(layer.in));
    for (float& w : layer.w) w = static_cast<float>(rng.normal(0.0, scale));
    layers_.push_back(std::move(layer));
  }
  velocity_ = layers_;
  for (auto& v : velocity_) {
    std::fill(v.w.begin(), v.w.end(), 0.0f);
    std::fill(v.b.begin(), v.b.end(), 0.0f);
  }
}

void Mlp::apply_activation(std::span<float> v) const noexcept {
  switch (hidden_) {
    case Activation::kReLU:
      for (float& x : v) x = std::max(0.0f, x);
      break;
    case Activation::kTanh:
      for (float& x : v) x = std::tanh(x);
      break;
    case Activation::kIdentity:
      break;
  }
}

void Mlp::activation_grad(std::span<const float> post, std::span<float> grad) const noexcept {
  switch (hidden_) {
    case Activation::kReLU:
      for (std::size_t i = 0; i < grad.size(); ++i)
        if (post[i] <= 0.0f) grad[i] = 0.0f;
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < grad.size(); ++i) grad[i] *= 1.0f - post[i] * post[i];
      break;
    case Activation::kIdentity:
      break;
  }
}

std::vector<float> Mlp::forward(std::span<const float> x) const {
  std::vector<float> cur(x.begin(), x.end());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const DenseLayer& l = layers_[i];
    std::vector<float> next(static_cast<std::size_t>(l.out));
    matvec(l.w, l.out, l.in, cur, next);
    for (std::int64_t r = 0; r < l.out; ++r) next[static_cast<std::size_t>(r)] += l.b[static_cast<std::size_t>(r)];
    if (i + 1 < layers_.size()) apply_activation(next);
    cur = std::move(next);
  }
  if (loss_ == Loss::kSoftmaxCrossEntropy) softmax(cur);
  return cur;
}

void Mlp::backward_one(std::span<const float> x, const float* target, int label,
                       Scratch& s, std::vector<DenseLayer>& grads) const {
  const std::size_t nl = layers_.size();
  s.post.resize(nl);
  s.grad.resize(nl);

  // Forward with caching.
  std::span<const float> cur = x;
  for (std::size_t i = 0; i < nl; ++i) {
    const DenseLayer& l = layers_[i];
    s.post[i].assign(static_cast<std::size_t>(l.out), 0.0f);
    matvec(l.w, l.out, l.in, cur, s.post[i]);
    for (std::int64_t r = 0; r < l.out; ++r)
      s.post[i][static_cast<std::size_t>(r)] += l.b[static_cast<std::size_t>(r)];
    if (i + 1 < nl) apply_activation(s.post[i]);
    cur = s.post[i];
  }

  // Output gradient (dL/d pre-activation of the last layer).
  std::vector<float>& out_grad = s.grad[nl - 1];
  out_grad = s.post[nl - 1];
  if (loss_ == Loss::kSoftmaxCrossEntropy) {
    softmax(out_grad);
    out_grad[static_cast<std::size_t>(label)] -= 1.0f;
  } else {
    for (std::size_t i = 0; i < out_grad.size(); ++i) out_grad[i] -= target[i];
  }

  // Backpropagate.
  for (std::size_t li = nl; li-- > 0;) {
    const DenseLayer& l = layers_[li];
    std::span<const float> input = li == 0 ? x : std::span<const float>(s.post[li - 1]);
    DenseLayer& g = grads[li];
    add_outer(g.w, l.out, l.in, s.grad[li], input, 1.0f);
    axpy(g.b, s.grad[li], 1.0f);
    if (li > 0) {
      s.grad[li - 1].assign(static_cast<std::size_t>(l.in), 0.0f);
      matvec_transposed(l.w, l.out, l.in, s.grad[li], s.grad[li - 1]);
      activation_grad(s.post[li - 1], s.grad[li - 1]);
    }
  }
}

float Mlp::train_epoch(const Dataset& data, const TrainConfig& cfg, sim::Rng& rng) {
  std::vector<std::int64_t> order(static_cast<std::size_t>(data.n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());

  std::vector<DenseLayer> grads = layers_;
  Scratch scratch;
  double epoch_loss = 0.0;

  for (std::int64_t start = 0; start < data.n; start += cfg.batch_size) {
    const std::int64_t end = std::min<std::int64_t>(start + cfg.batch_size, data.n);
    const float inv_batch = 1.0f / static_cast<float>(end - start);
    for (auto& g : grads) {
      std::fill(g.w.begin(), g.w.end(), 0.0f);
      std::fill(g.b.begin(), g.b.end(), 0.0f);
    }
    for (std::int64_t bi = start; bi < end; ++bi) {
      const std::int64_t i = order[static_cast<std::size_t>(bi)];
      const float* target = loss_ == Loss::kMse ? data.y.data() + i * data.targets : nullptr;
      const int label = loss_ == Loss::kSoftmaxCrossEntropy
                            ? data.label[static_cast<std::size_t>(i)]
                            : 0;
      backward_one(data.input(i), target, label, scratch, grads);

      // Loss bookkeeping.
      const std::vector<float> out = forward(data.input(i));
      if (loss_ == Loss::kSoftmaxCrossEntropy) {
        epoch_loss += -std::log(std::max(out[static_cast<std::size_t>(label)], 1e-12f));
      } else {
        double se = 0.0;
        for (std::int64_t t = 0; t < data.targets; ++t) {
          const double d = out[static_cast<std::size_t>(t)] - target[t];
          se += d * d;
        }
        epoch_loss += 0.5 * se;
      }
    }
    // SGD with momentum.
    for (std::size_t li = 0; li < layers_.size(); ++li) {
      DenseLayer& l = layers_[li];
      DenseLayer& v = velocity_[li];
      DenseLayer& g = grads[li];
      for (std::size_t k = 0; k < l.w.size(); ++k) {
        v.w[k] = cfg.momentum * v.w[k] - cfg.learning_rate * g.w[k] * inv_batch;
        l.w[k] += v.w[k];
      }
      for (std::size_t k = 0; k < l.b.size(); ++k) {
        v.b[k] = cfg.momentum * v.b[k] - cfg.learning_rate * g.b[k] * inv_batch;
        l.b[k] += v.b[k];
      }
    }
  }
  return static_cast<float>(epoch_loss / static_cast<double>(data.n));
}

float Mlp::train(const Dataset& data, const TrainConfig& cfg, sim::Rng& rng) {
  float last = 0.0f;
  for (int e = 0; e < cfg.epochs; ++e) last = train_epoch(data, cfg, rng);
  return last;
}

double Mlp::accuracy(const Dataset& data) const {
  if (data.n == 0) return 0.0;
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < data.n; ++i) {
    const std::vector<float> out = forward(data.input(i));
    if (static_cast<int>(argmax(out)) == data.label[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.n);
}

double Mlp::rmse(const Dataset& data) const {
  if (data.n == 0) return 0.0;
  double acc = 0.0;
  for (std::int64_t i = 0; i < data.n; ++i) {
    const std::vector<float> out = forward(data.input(i));
    const auto target = data.target(i);
    for (std::int64_t t = 0; t < data.targets; ++t) {
      const double d = out[static_cast<std::size_t>(t)] - target[static_cast<std::size_t>(t)];
      acc += d * d;
    }
  }
  return std::sqrt(acc / static_cast<double>(data.n * data.targets));
}

double Mlp::prune(double fraction) {
  std::vector<float> magnitudes;
  for (const DenseLayer& l : layers_)
    for (float w : l.w) magnitudes.push_back(std::abs(w));
  if (magnitudes.empty()) return 0.0;
  std::sort(magnitudes.begin(), magnitudes.end());
  const auto cut = static_cast<std::size_t>(
      std::clamp(fraction, 0.0, 1.0) * static_cast<double>(magnitudes.size()));
  const float threshold = cut > 0 ? magnitudes[cut - 1] : -1.0f;
  for (DenseLayer& l : layers_)
    for (float& w : l.w)
      if (std::abs(w) <= threshold) w = 0.0f;
  return sparsity();
}

double Mlp::sparsity() const noexcept {
  std::int64_t zeros = 0;
  std::int64_t total = 0;
  for (const DenseLayer& l : layers_) {
    total += static_cast<std::int64_t>(l.w.size());
    for (float w : l.w)
      if (w == 0.0f) ++zeros;  // archlint: allow(float-eq): exact stored zeros
  }
  return total ? static_cast<double>(zeros) / static_cast<double>(total) : 0.0;
}

std::int64_t Mlp::parameter_count() const noexcept {
  std::int64_t n = 0;
  for (const DenseLayer& l : layers_)
    n += static_cast<std::int64_t>(l.w.size() + l.b.size());
  return n;
}

double Mlp::inference_flops() const noexcept {
  double flops = 0.0;
  for (const DenseLayer& l : layers_)
    flops += 2.0 * static_cast<double>(l.in) * static_cast<double>(l.out);
  return flops;
}

}  // namespace hpc::ai
