#pragma once

#include <cstdint>

/// \file anomaly.hpp
/// Streaming anomaly detection for the paper's "AI-enhanced cybersecurity
/// algorithms ... detecting and diagnosing attacks in real-time"
/// (Section III.A) and for instrument-health monitoring at the facility edge.

namespace hpc::ai {

/// EWMA + z-score detector over a scalar telemetry stream.  O(1) per sample,
/// suitable for edge deployment; flags samples more than \p threshold_sigma
/// standard deviations from the running mean.
class StreamingDetector {
 public:
  /// \param alpha            EWMA smoothing factor in (0, 1]
  /// \param threshold_sigma  alarm threshold in standard deviations
  /// \param warmup           samples to observe before raising alarms
  StreamingDetector(double alpha = 0.02, double threshold_sigma = 4.0,
                    std::int64_t warmup = 50);

  /// Feeds one sample; returns true if it is anomalous.
  bool observe(double x);

  double mean() const noexcept { return mean_; }
  double stddev() const noexcept;
  std::int64_t samples() const noexcept { return n_; }
  std::int64_t alarms() const noexcept { return alarms_; }

 private:
  double alpha_;
  double threshold_;
  std::int64_t warmup_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::int64_t n_ = 0;
  std::int64_t alarms_ = 0;
};

/// Detection-quality counters for labelled streams.
struct DetectionQuality {
  std::int64_t true_positives = 0;
  std::int64_t false_positives = 0;
  std::int64_t false_negatives = 0;
  std::int64_t true_negatives = 0;

  double precision() const noexcept {
    const double d = static_cast<double>(true_positives + false_positives);
    return d > 0.0 ? static_cast<double>(true_positives) / d : 0.0;
  }
  double recall() const noexcept {
    const double d = static_cast<double>(true_positives + false_negatives);
    return d > 0.0 ? static_cast<double>(true_positives) / d : 0.0;
  }
};

}  // namespace hpc::ai
