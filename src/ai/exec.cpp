#include "ai/exec.hpp"

#include <algorithm>
#include <cmath>

#include "ai/linalg.hpp"

namespace hpc::ai {

std::vector<float> ExactExecutor::matvec(std::span<const float> w, std::int64_t rows,
                                         std::int64_t cols, std::span<const float> x) {
  std::vector<float> y(static_cast<std::size_t>(rows));
  ai::matvec(w, rows, cols, x, y);
  return y;
}

std::vector<float> QuantizedExecutor::matvec(std::span<const float> w, std::int64_t rows,
                                             std::int64_t cols, std::span<const float> x) {
  // Per-tensor symmetric scales for the integer formats.
  float wmax = 0.0f;
  for (float v : w) wmax = std::max(wmax, std::abs(v));
  float xmax = 0.0f;
  for (float v : x) xmax = std::max(xmax, std::abs(v));
  const float levels = precision_ == hw::Precision::INT4 ? 7.0f : 127.0f;
  const float wscale = wmax > 0.0f ? wmax / levels : 1.0f;
  const float xscale = xmax > 0.0f ? xmax / levels : 1.0f;

  std::vector<float> wq(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) wq[i] = hw::apply_precision(w[i], precision_, wscale);
  std::vector<float> xq(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xq[i] = hw::apply_precision(x[i], precision_, xscale);

  std::vector<float> y(static_cast<std::size_t>(rows));
  ai::matvec(wq, rows, cols, xq, y);
  // Accumulation in fp32 (tensor-core style); round the result too for the
  // floating formats to model the output datapath.
  if (precision_ != hw::Precision::INT8 && precision_ != hw::Precision::INT4)
    for (float& v : y) v = hw::apply_precision(v, precision_);
  return y;
}

std::vector<float> AnalogExecutor::matvec(std::span<const float> w, std::int64_t rows,
                                          std::int64_t cols, std::span<const float> x) {
  return engine_.matvec(w, rows, cols, x, rng_);
}

std::vector<float> forward_with(const Mlp& mlp, std::span<const float> x,
                                MatvecExecutor& exec) {
  std::vector<float> cur(x.begin(), x.end());
  const auto& layers = mlp.layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const DenseLayer& l = layers[i];
    std::vector<float> next = exec.matvec(l.w, l.out, l.in, cur);
    for (std::int64_t r = 0; r < l.out; ++r)
      next[static_cast<std::size_t>(r)] += l.b[static_cast<std::size_t>(r)];
    if (i + 1 < layers.size()) {
      switch (mlp.hidden_activation()) {
        case Activation::kReLU:
          for (float& v : next) v = std::max(0.0f, v);
          break;
        case Activation::kTanh:
          for (float& v : next) v = std::tanh(v);
          break;
        case Activation::kIdentity:
          break;
      }
    }
    cur = std::move(next);
  }
  if (mlp.loss() == Loss::kSoftmaxCrossEntropy) softmax(cur);
  return cur;
}

double accuracy_with(const Mlp& mlp, const Dataset& data, MatvecExecutor& exec) {
  if (data.n == 0) return 0.0;
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < data.n; ++i) {
    const std::vector<float> out = forward_with(mlp, data.input(i), exec);
    if (static_cast<int>(argmax(out)) == data.label[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.n);
}

double rmse_with(const Mlp& mlp, const Dataset& data, MatvecExecutor& exec) {
  if (data.n == 0) return 0.0;
  double acc = 0.0;
  for (std::int64_t i = 0; i < data.n; ++i) {
    const std::vector<float> out = forward_with(mlp, data.input(i), exec);
    const auto target = data.target(i);
    for (std::int64_t t = 0; t < data.targets; ++t) {
      const double d = out[static_cast<std::size_t>(t)] - target[static_cast<std::size_t>(t)];
      acc += d * d;
    }
  }
  return std::sqrt(acc / static_cast<double>(data.n * data.targets));
}

}  // namespace hpc::ai
