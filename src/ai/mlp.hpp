#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/rng.hpp"

/// \file mlp.hpp
/// Multi-layer perceptron with SGD+momentum training.
///
/// This is a real (small) learning substrate, not a stub: the precision,
/// analog-noise and sparsity experiments (C4/C5) quantize or perturb *these*
/// trained weights and measure the genuine accuracy loss, and the surrogate
/// experiment (C11) trains this network to replace simulation steps.

namespace hpc::ai {

/// Hidden-layer nonlinearity.
enum class Activation : std::uint8_t { kReLU, kTanh, kIdentity };

/// Output head / loss pairing.
enum class Loss : std::uint8_t { kMse, kSoftmaxCrossEntropy };

/// One dense layer, row-major weights (out x in).
struct DenseLayer {
  std::int64_t in = 0;
  std::int64_t out = 0;
  std::vector<float> w;
  std::vector<float> b;
};

/// Training hyperparameters.
struct TrainConfig {
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  int batch_size = 32;
  int epochs = 50;
};

/// A labelled dataset: flattened row-major inputs plus either class labels or
/// regression targets (one of the two is used depending on the loss).
struct Dataset {
  std::int64_t n = 0;
  std::int64_t dim = 0;
  std::int64_t targets = 1;  ///< classes (classification) or output dims
  std::vector<float> x;      ///< n x dim
  std::vector<int> label;    ///< n (classification)
  std::vector<float> y;      ///< n x targets (regression)

  std::span<const float> input(std::int64_t i) const {
    return {x.data() + i * dim, static_cast<std::size_t>(dim)};
  }
  std::span<const float> target(std::int64_t i) const {
    return {y.data() + i * targets, static_cast<std::size_t>(targets)};
  }
};

/// Fully-connected network.
class Mlp {
 public:
  /// \param sizes  layer widths including input and output,
  ///               e.g. {2, 32, 32, 3} for 2-D input, 3 classes.
  Mlp(std::vector<std::int64_t> sizes, Activation hidden, Loss loss, sim::Rng& rng);

  std::int64_t input_size() const noexcept { return layers_.front().in; }
  std::int64_t output_size() const noexcept { return layers_.back().out; }
  Activation hidden_activation() const noexcept { return hidden_; }
  Loss loss() const noexcept { return loss_; }
  const std::vector<DenseLayer>& layers() const noexcept { return layers_; }
  std::vector<DenseLayer>& mutable_layers() noexcept { return layers_; }

  /// Forward pass (softmax applied for the CE head).
  std::vector<float> forward(std::span<const float> x) const;

  /// Trains one epoch over a shuffled dataset; returns the mean loss.
  float train_epoch(const Dataset& data, const TrainConfig& cfg, sim::Rng& rng);

  /// Trains for cfg.epochs; returns the final epoch's mean loss.
  float train(const Dataset& data, const TrainConfig& cfg, sim::Rng& rng);

  /// Classification accuracy in [0, 1] (CE head).
  double accuracy(const Dataset& data) const;

  /// Regression root-mean-square error (MSE head).
  double rmse(const Dataset& data) const;

  /// Magnitude-prunes the smallest \p fraction of weights in every layer
  /// (biases kept).  Returns the overall fraction of zero weights after.
  double prune(double fraction);

  /// Fraction of exactly-zero weights across all layers.
  double sparsity() const noexcept;

  /// Total weight + bias parameter count.
  std::int64_t parameter_count() const noexcept;

  /// Total flops of one inference forward pass (2 per MAC).
  double inference_flops() const noexcept;

 private:
  struct Scratch;  // per-layer activations/gradients for backprop
  void backward_one(std::span<const float> x, const float* target, int label,
                    Scratch& s, std::vector<DenseLayer>& grads) const;
  void apply_activation(std::span<float> v) const noexcept;
  void activation_grad(std::span<const float> post, std::span<float> grad) const noexcept;

  std::vector<DenseLayer> layers_;
  Activation hidden_;
  Loss loss_;
  // Momentum buffers parallel to layers_.
  std::vector<DenseLayer> velocity_;
};

}  // namespace hpc::ai
