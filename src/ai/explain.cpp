#include "ai/explain.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ai/linalg.hpp"

namespace hpc::ai {

namespace {

/// The scalar this model "predicts" for explanation purposes.
double predicted_scalar(const Mlp& model, std::span<const float> x, std::size_t cls) {
  const std::vector<float> out = model.forward(x);
  if (model.loss() == Loss::kSoftmaxCrossEntropy)
    return out[cls];
  return out[0];
}

double score(const Mlp& model, const Dataset& data) {
  return model.loss() == Loss::kSoftmaxCrossEntropy ? model.accuracy(data)
                                                    : -model.rmse(data);
}

}  // namespace

std::vector<double> saliency(const Mlp& model, std::span<const float> x, double epsilon) {
  const std::vector<float> base_out = model.forward(x);
  const std::size_t cls =
      model.loss() == Loss::kSoftmaxCrossEntropy ? argmax(base_out) : 0;

  std::vector<double> attribution(x.size(), 0.0);
  std::vector<float> probe(x.begin(), x.end());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float original = probe[i];
    probe[i] = original + static_cast<float>(epsilon);
    const double up = predicted_scalar(model, probe, cls);
    probe[i] = original - static_cast<float>(epsilon);
    const double down = predicted_scalar(model, probe, cls);
    probe[i] = original;
    const double gradient = (up - down) / (2.0 * epsilon);
    attribution[i] = gradient * static_cast<double>(original);
  }
  return attribution;
}

FeatureImportance permutation_importance(const Mlp& model, const Dataset& data,
                                         sim::Rng& rng, int repeats) {
  FeatureImportance result;
  result.baseline_score = score(model, data);
  result.importance.assign(static_cast<std::size_t>(data.dim), 0.0);

  std::vector<std::int64_t> perm(static_cast<std::size_t>(data.n));
  for (std::int64_t feature = 0; feature < data.dim; ++feature) {
    double drop = 0.0;
    for (int r = 0; r < repeats; ++r) {
      std::iota(perm.begin(), perm.end(), 0);
      std::shuffle(perm.begin(), perm.end(), rng.engine());
      Dataset shuffled = data;
      for (std::int64_t i = 0; i < data.n; ++i)
        shuffled.x[static_cast<std::size_t>(i * data.dim + feature)] =
            data.x[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)] * data.dim +
                                            feature)];
      drop += result.baseline_score - score(model, shuffled);
    }
    result.importance[static_cast<std::size_t>(feature)] = drop / repeats;
  }
  return result;
}

}  // namespace hpc::ai
