#include "ai/datasets.hpp"

#include <cmath>
#include <numbers>

namespace hpc::ai {

Dataset make_blobs(std::int64_t n, int classes, std::int64_t dim, double spread,
                   sim::Rng& rng) {
  Dataset d;
  d.n = n;
  d.dim = dim;
  d.targets = classes;
  d.x.resize(static_cast<std::size_t>(n * dim));
  d.label.resize(static_cast<std::size_t>(n));

  // Class centers on a circle in the first two dims, random in the rest.
  std::vector<std::vector<double>> centers(static_cast<std::size_t>(classes),
                                           std::vector<double>(static_cast<std::size_t>(dim)));
  for (int c = 0; c < classes; ++c) {
    const double angle = 2.0 * std::numbers::pi * c / classes;
    centers[static_cast<std::size_t>(c)][0] = 3.0 * std::cos(angle);
    if (dim > 1) centers[static_cast<std::size_t>(c)][1] = 3.0 * std::sin(angle);
    for (std::int64_t k = 2; k < dim; ++k)
      centers[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0);
  }
  for (std::int64_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(rng.index(static_cast<std::size_t>(classes)));
    d.label[static_cast<std::size_t>(i)] = c;
    for (std::int64_t k = 0; k < dim; ++k)
      d.x[static_cast<std::size_t>(i * dim + k)] = static_cast<float>(
          centers[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)] +
          rng.normal(0.0, spread));
  }
  return d;
}

Dataset make_two_spirals(std::int64_t n, double noise, sim::Rng& rng) {
  Dataset d;
  d.n = n;
  d.dim = 2;
  d.targets = 2;
  d.x.resize(static_cast<std::size_t>(n * 2));
  d.label.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    const double t = rng.uniform(0.25, 3.0);  // spiral parameter (radians / pi)
    const double angle = t * std::numbers::pi + (cls == 1 ? std::numbers::pi : 0.0);
    const double r = t;
    d.x[static_cast<std::size_t>(i * 2)] =
        static_cast<float>(r * std::cos(angle) + rng.normal(0.0, noise));
    d.x[static_cast<std::size_t>(i * 2 + 1)] =
        static_cast<float>(r * std::sin(angle) + rng.normal(0.0, noise));
    d.label[static_cast<std::size_t>(i)] = cls;
  }
  return d;
}

double oscillator_response(double omega01, double zeta01, double t01) noexcept {
  const double omega = 1.0 + 4.0 * omega01;   // natural frequency 1..5
  const double zeta = 0.05 + 0.6 * zeta01;    // damping ratio
  const double t = 2.0 * t01;                 // time window
  const double wd = omega * std::sqrt(std::max(0.0, 1.0 - zeta * zeta));
  return std::exp(-zeta * omega * t) * std::cos(wd * t);
}

Dataset make_oscillator(std::int64_t n, sim::Rng& rng) {
  Dataset d;
  d.n = n;
  d.dim = 3;
  d.targets = 1;
  d.x.resize(static_cast<std::size_t>(n * 3));
  d.y.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const double a = rng.uniform();
    const double b = rng.uniform();
    const double c = rng.uniform();
    d.x[static_cast<std::size_t>(i * 3)] = static_cast<float>(a);
    d.x[static_cast<std::size_t>(i * 3 + 1)] = static_cast<float>(b);
    d.x[static_cast<std::size_t>(i * 3 + 2)] = static_cast<float>(c);
    d.y[static_cast<std::size_t>(i)] = static_cast<float>(oscillator_response(a, b, c));
  }
  return d;
}

std::pair<Dataset, Dataset> split(const Dataset& data, double train_fraction) {
  const std::int64_t ntrain =
      static_cast<std::int64_t>(train_fraction * static_cast<double>(data.n));
  auto slice = [&](std::int64_t from, std::int64_t to) {
    Dataset out;
    out.n = to - from;
    out.dim = data.dim;
    out.targets = data.targets;
    out.x.assign(data.x.begin() + from * data.dim, data.x.begin() + to * data.dim);
    if (!data.label.empty())
      out.label.assign(data.label.begin() + from, data.label.begin() + to);
    if (!data.y.empty())
      out.y.assign(data.y.begin() + from * data.targets, data.y.begin() + to * data.targets);
    return out;
  };
  return {slice(0, ntrain), slice(ntrain, data.n)};
}

}  // namespace hpc::ai
