#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// \file linalg.hpp
/// Span-based dense kernels backing the MLP substrate.  Row-major throughout:
/// a rows x cols matrix stores element (r, c) at w[r * cols + c].

namespace hpc::ai {

/// y = W x  (W: rows x cols, x: cols, y: rows).
void matvec(std::span<const float> w, std::int64_t rows, std::int64_t cols,
            std::span<const float> x, std::span<float> y) noexcept;

/// y = W^T x  (W: rows x cols, x: rows, y: cols).
void matvec_transposed(std::span<const float> w, std::int64_t rows, std::int64_t cols,
                       std::span<const float> x, std::span<float> y) noexcept;

/// W += scale * a b^T  (a: rows, b: cols) — gradient accumulation.
void add_outer(std::span<float> w, std::int64_t rows, std::int64_t cols,
               std::span<const float> a, std::span<const float> b, float scale) noexcept;

/// dst += scale * src.
void axpy(std::span<float> dst, std::span<const float> src, float scale) noexcept;

/// Euclidean norm.
float norm2(std::span<const float> v) noexcept;

/// Root mean squared difference between two equal-length vectors.
float rms_error(std::span<const float> a, std::span<const float> b) noexcept;

/// Index of the maximum element (argmax); 0 for empty input.
std::size_t argmax(std::span<const float> v) noexcept;

/// Numerically stable in-place softmax.
void softmax(std::span<float> v) noexcept;

}  // namespace hpc::ai
