#include "ai/model_io.hpp"

#include <sstream>
#include <stdexcept>

namespace hpc::ai {

namespace {
constexpr const char* kMagic = "archipelago-mlp";
constexpr int kVersion = 1;
}  // namespace

void write_text(std::ostream& os, const Mlp& model) {
  os << kMagic << ' ' << kVersion << '\n';
  os << static_cast<int>(model.hidden_activation()) << ' '
     << static_cast<int>(model.loss()) << '\n';
  const auto& layers = model.layers();
  os << layers.size() << '\n';
  os.precision(9);
  for (const DenseLayer& l : layers) {
    os << l.in << ' ' << l.out << '\n';
    for (std::size_t i = 0; i < l.w.size(); ++i)
      os << l.w[i] << (i + 1 == l.w.size() ? '\n' : ' ');
    for (std::size_t i = 0; i < l.b.size(); ++i)
      os << l.b[i] << (i + 1 == l.b.size() ? '\n' : ' ');
  }
}

std::string to_text(const Mlp& model) {
  std::ostringstream os;
  write_text(os, model);
  return os.str();
}

Mlp read_text(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic)
    throw std::runtime_error("model_io: not an archipelago-mlp stream");
  if (version != kVersion)
    throw std::runtime_error("model_io: unsupported version " + std::to_string(version));

  int activation = 0;
  int loss = 0;
  std::size_t layer_count = 0;
  if (!(is >> activation >> loss >> layer_count) || layer_count == 0)
    throw std::runtime_error("model_io: malformed header");

  // First pass: layer shapes, to construct the model, then weights.
  std::vector<std::int64_t> ins(layer_count);
  std::vector<std::int64_t> outs(layer_count);
  std::vector<std::vector<float>> ws(layer_count);
  std::vector<std::vector<float>> bs(layer_count);
  for (std::size_t l = 0; l < layer_count; ++l) {
    if (!(is >> ins[l] >> outs[l]) || ins[l] <= 0 || outs[l] <= 0)
      throw std::runtime_error("model_io: malformed layer shape");
    ws[l].resize(static_cast<std::size_t>(ins[l] * outs[l]));
    bs[l].resize(static_cast<std::size_t>(outs[l]));
    for (float& v : ws[l])
      if (!(is >> v)) throw std::runtime_error("model_io: truncated weights");
    for (float& v : bs[l])
      if (!(is >> v)) throw std::runtime_error("model_io: truncated biases");
    if (l > 0 && ins[l] != outs[l - 1])
      throw std::runtime_error("model_io: inconsistent layer chaining");
  }

  std::vector<std::int64_t> sizes;
  sizes.push_back(ins.front());
  for (std::size_t l = 0; l < layer_count; ++l) sizes.push_back(outs[l]);

  // The Mlp ctor needs an Rng to initialize weights; the loop below then
  // overwrites every one of them from disk, so this stream never leaks.
  // archlint: allow(rng-discipline): placeholder stream, output overwritten
  sim::Rng scratch(0);
  Mlp model(sizes, static_cast<Activation>(activation), static_cast<Loss>(loss), scratch);
  auto& layers = model.mutable_layers();
  for (std::size_t l = 0; l < layer_count; ++l) {
    layers[l].w = std::move(ws[l]);
    layers[l].b = std::move(bs[l]);
  }
  return model;
}

Mlp from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

}  // namespace hpc::ai
