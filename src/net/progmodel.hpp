#pragma once

#include <cstdint>
#include <string_view>

#include "net/link.hpp"

/// \file progmodel.hpp
/// Programming-model communication cost (paper Section III.D): "there were
/// only two programming models for HPC: message passing, exemplified with
/// MPI, and multi-threaded, represented by a variety of shared memory models
/// (SHMEM and PGAS ...)."  The model quantifies when each wins as a function
/// of the access granularity and the fabric underneath — which is how
/// CXL-class load/store fabrics change the programming-model calculus.

namespace hpc::net {

/// Communication style.
enum class ProgModel : std::uint8_t {
  kMessagePassing,  ///< two-sided, aggregated buffers, rendezvous per message
  kPgas,            ///< one-sided load/store or put/get over the fabric
};

std::string_view name_of(ProgModel m) noexcept;

/// A communication phase: \p accesses touches of \p granularity_bytes each to
/// a remote partner (e.g. a halo exchange aggregates everything into one
/// message; a graph update issues millions of 8-byte touches).
struct CommPhase {
  std::int64_t accesses = 1;
  double granularity_bytes = 8.0;
  double total_bytes() const noexcept {
    return static_cast<double>(accesses) * granularity_bytes;
  }
};

/// Time of the phase under a programming model over a given link class.
///  - Message passing: software aggregates the touches into one message:
///    pack/unpack per byte + rendezvous latency + bandwidth term.
///  - PGAS: one fabric transaction per touch with hardware pipelining
///    (bounded outstanding transactions), no pack/unpack; bandwidth term
///    applies to the same bytes.
double phase_time_ns(ProgModel model, const CommPhase& phase, LinkClass link,
                     int outstanding = 16);

/// The finest granularity (bytes per access, fixed total volume) at which
/// PGAS still beats message passing on this link: PGAS wins for every
/// granularity at or above the returned value.  Returns 8 when PGAS wins even
/// at single-word grain (load/store fabrics), +inf when message passing wins
/// even for one bulk transfer.
double pgas_win_granularity_bytes(LinkClass link, double total_bytes,
                                  int outstanding = 16);

}  // namespace hpc::net
