#pragma once

#include <vector>

#include "net/flowsim.hpp"
#include "net/network.hpp"

/// \file collectives.hpp
/// Cost models for the collective operations HPC/AI workloads lean on —
/// the paper singles out "bulk-data all-reduction operations used in
/// training" as the pattern future fabrics must offload (Section III.C).

namespace hpc::net {

/// Ring all-reduce of \p bytes across \p ranks (endpoint ids):
/// 2(n-1) steps, each moving bytes/n between ring neighbours; per-step cost
/// is the slowest neighbour transfer.
double ring_allreduce_ns(const Network& net, const std::vector<int>& ranks, double bytes);

/// Ring reduce-scatter: the first (n-1) steps of the ring all-reduce — each
/// rank ends with its reduced shard of bytes/n.
double ring_reduce_scatter_ns(const Network& net, const std::vector<int>& ranks,
                              double bytes);

/// Binomial-tree broadcast of \p bytes from ranks[0]: ceil(log2 n) rounds,
/// each round the set of informed ranks doubles; per-round cost is the
/// slowest active pair.
double tree_broadcast_ns(const Network& net, const std::vector<int>& ranks, double bytes);

/// Binomial-tree barrier: ceil(log2 n) rounds of 64-byte control messages;
/// each round costs the slowest participating pair.
double barrier_ns(const Network& net, const std::vector<int>& ranks);

/// All-to-all personalized exchange of \p bytes_per_pair between every
/// ordered pair, simulated with the fluid flow model; returns the makespan.
double alltoall_ns(const Network& net, const std::vector<int>& ranks,
                   double bytes_per_pair,
                   CongestionControl cc = CongestionControl::kFlowBased);

/// Effective per-rank bandwidth (GB/s) achieved during that all-to-all —
/// the "global bandwidth under load" metric from Section II.B.
double alltoall_per_rank_bandwidth_gbs(const Network& net, const std::vector<int>& ranks,
                                       double bytes_per_pair,
                                       CongestionControl cc = CongestionControl::kFlowBased);

}  // namespace hpc::net
