#pragma once

#include "net/network.hpp"

/// \file topology.hpp
/// Builders for the network topologies the paper discusses (Section II.B):
/// low-diameter dragonfly [11] and HyperX [12], plus fat-tree and 2-D torus
/// as the classical baselines, and a single-switch star as the rack-scale
/// reference.  Intra-group/edge links are electrical Ethernet; long/global
/// links are silicon-photonics optical, reflecting the paper's cost argument.
///
/// Every builder returns a Network with routes already built.

namespace hpc::net {

/// Star: one switch, \p hosts endpoints (rack scale reference).
Network make_single_switch(int hosts, LinkClass edge = LinkClass::kEth200);

/// Canonical k-ary fat-tree (k even): k pods, k^2/4 core switches,
/// k^3/4 hosts.  Edge/aggregation electrical; core layer optical.
Network make_fat_tree(int k);

/// 2-D torus of switches (width x height), \p hosts_per_switch endpoints
/// each.  All links electrical.
Network make_torus_2d(int width, int height, int hosts_per_switch = 1);

/// Dragonfly(a, p, h): groups of \p a routers, \p p hosts per router,
/// \p h global links per router; g = a*h + 1 groups; routers within a group
/// form a clique (electrical); global links optical.
Network make_dragonfly(int a, int p, int h);

/// 2-D HyperX: s1 x s2 switch grid, fully connected along each dimension,
/// \p hosts_per_switch endpoints per switch.  Dimension links optical when
/// they span more than a neighbouring position.
Network make_hyperx_2d(int s1, int s2, int hosts_per_switch);

/// Summary statistics used by experiment C3.
struct TopologySummary {
  std::string name;
  int endpoints = 0;
  int switches = 0;
  int diameter = 0;
  double mean_hops = 0.0;
  std::size_t electrical_links = 0;
  std::size_t optical_links = 0;
  double cost_usd = 0.0;
};

/// Computes the C3 summary for a built network.
TopologySummary summarize(const Network& net, std::string name);

}  // namespace hpc::net
