#include "net/topology.hpp"

#include <vector>

namespace hpc::net {

namespace {

/// "prefix" + a [+ sep + b] built via append rather than operator+, dodging
/// GCC 12's spurious -Wrestrict on inlined SSO concatenation (PR105651).
std::string label_of(const char* prefix, int a, const char* sep = nullptr, int b = -1) {
  std::string s = prefix;
  s += std::to_string(a);
  if (sep) {
    s += sep;
    s += std::to_string(b);
  }
  return s;
}

}  // namespace

Network make_single_switch(int hosts, LinkClass edge) {
  Network net;
  const int sw = net.add_node(NodeRole::kSwitch, "sw");
  for (int h = 0; h < hosts; ++h) {
    const int node = net.add_node(NodeRole::kEndpoint, label_of("h", h));
    net.add_duplex_link(node, sw, edge);
  }
  net.build_routes();
  return net;
}

Network make_fat_tree(int k) {
  Network net;
  const int pods = k;
  const int edge_per_pod = k / 2;
  const int agg_per_pod = k / 2;
  const int hosts_per_edge = k / 2;
  const int cores = (k / 2) * (k / 2);

  std::vector<int> core(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c)
    core[static_cast<std::size_t>(c)] = net.add_node(NodeRole::kSwitch, label_of("core", c));

  for (int p = 0; p < pods; ++p) {
    std::vector<int> agg(static_cast<std::size_t>(agg_per_pod));
    std::vector<int> edge(static_cast<std::size_t>(edge_per_pod));
    for (int a = 0; a < agg_per_pod; ++a)
      agg[static_cast<std::size_t>(a)] =
          net.add_node(NodeRole::kSwitch, label_of("agg", p, "_", a));
    for (int e = 0; e < edge_per_pod; ++e) {
      edge[static_cast<std::size_t>(e)] =
          net.add_node(NodeRole::kSwitch, label_of("edge", p, "_", e));
      for (int h = 0; h < hosts_per_edge; ++h) {
        const int host = net.add_node(NodeRole::kEndpoint, "h");
        net.add_duplex_link(host, edge[static_cast<std::size_t>(e)], LinkClass::kEth200);
      }
      for (int a = 0; a < agg_per_pod; ++a)
        net.add_duplex_link(edge[static_cast<std::size_t>(e)], agg[static_cast<std::size_t>(a)],
                            LinkClass::kEth200);
    }
    // Aggregation a connects to cores [a*k/2, (a+1)*k/2).
    for (int a = 0; a < agg_per_pod; ++a)
      for (int c = 0; c < k / 2; ++c)
        net.add_duplex_link(agg[static_cast<std::size_t>(a)],
                            core[static_cast<std::size_t>(a * (k / 2) + c)], LinkClass::kSiph);
  }
  net.build_routes();
  return net;
}

Network make_torus_2d(int width, int height, int hosts_per_switch) {
  Network net;
  std::vector<int> sw(static_cast<std::size_t>(width * height));
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x) {
      const int id = net.add_node(NodeRole::kSwitch,
                                  label_of("sw", x, ",", y));
      sw[static_cast<std::size_t>(y * width + x)] = id;
      for (int h = 0; h < hosts_per_switch; ++h) {
        const int host = net.add_node(NodeRole::kEndpoint, "h");
        net.add_duplex_link(host, id, LinkClass::kEth200);
      }
    }
  auto at = [&](int x, int y) {
    return sw[static_cast<std::size_t>(((y + height) % height) * width + (x + width) % width)];
  };
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x) {
      net.add_duplex_link(at(x, y), at(x + 1, y), LinkClass::kEth200);
      net.add_duplex_link(at(x, y), at(x, y + 1), LinkClass::kEth200);
    }
  net.build_routes();
  return net;
}

Network make_dragonfly(int a, int p, int h) {
  Network net;
  const int groups = a * h + 1;
  std::vector<std::vector<int>> router(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    router[static_cast<std::size_t>(g)].resize(static_cast<std::size_t>(a));
    for (int r = 0; r < a; ++r) {
      const int id = net.add_node(NodeRole::kSwitch,
                                  label_of("r", g, "_", r));
      router[static_cast<std::size_t>(g)][static_cast<std::size_t>(r)] = id;
      for (int host = 0; host < p; ++host) {
        const int hn = net.add_node(NodeRole::kEndpoint, "h");
        net.add_duplex_link(hn, id, LinkClass::kEth200);
      }
    }
    // Intra-group clique (electrical).
    for (int r1 = 0; r1 < a; ++r1)
      for (int r2 = r1 + 1; r2 < a; ++r2)
        net.add_duplex_link(router[static_cast<std::size_t>(g)][static_cast<std::size_t>(r1)],
                            router[static_cast<std::size_t>(g)][static_cast<std::size_t>(r2)],
                            LinkClass::kEth200);
  }
  // Global links: canonical assignment — router r of group g owns global
  // ports r*h..r*h+h-1; port k of group g connects toward group
  // (g + r*h + k + 1) mod groups, one link per unordered group pair.
  for (int g = 0; g < groups; ++g) {
    for (int r = 0; r < a; ++r) {
      for (int k = 0; k < h; ++k) {
        const int offset = r * h + k + 1;
        const int tg = (g + offset) % groups;
        if (tg <= g) continue;  // add each pair once (peer adds the reverse)
        // Peer router in target group: the one whose offset reaches back to g.
        const int back = groups - offset;  // (tg + back) % groups == g
        const int pr = (back - 1) / h;
        net.add_duplex_link(router[static_cast<std::size_t>(g)][static_cast<std::size_t>(r)],
                            router[static_cast<std::size_t>(tg)][static_cast<std::size_t>(pr)],
                            LinkClass::kSiph);
      }
    }
  }
  net.build_routes();
  return net;
}

Network make_hyperx_2d(int s1, int s2, int hosts_per_switch) {
  Network net;
  std::vector<int> sw(static_cast<std::size_t>(s1 * s2));
  for (int y = 0; y < s2; ++y)
    for (int x = 0; x < s1; ++x) {
      const int id = net.add_node(NodeRole::kSwitch,
                                  label_of("sw", x, ",", y));
      sw[static_cast<std::size_t>(y * s1 + x)] = id;
      for (int h = 0; h < hosts_per_switch; ++h) {
        const int host = net.add_node(NodeRole::kEndpoint, "h");
        net.add_duplex_link(host, id, LinkClass::kEth200);
      }
    }
  auto at = [&](int x, int y) { return sw[static_cast<std::size_t>(y * s1 + x)]; };
  // Full connectivity along each row and column.
  for (int y = 0; y < s2; ++y)
    for (int x1 = 0; x1 < s1; ++x1)
      for (int x2 = x1 + 1; x2 < s1; ++x2)
        net.add_duplex_link(at(x1, y), at(x2, y),
                            x2 - x1 > 1 ? LinkClass::kSiph : LinkClass::kEth200);
  for (int x = 0; x < s1; ++x)
    for (int y1 = 0; y1 < s2; ++y1)
      for (int y2 = y1 + 1; y2 < s2; ++y2)
        net.add_duplex_link(at(x, y1), at(x, y2),
                            y2 - y1 > 1 ? LinkClass::kSiph : LinkClass::kEth200);
  net.build_routes();
  return net;
}

TopologySummary summarize(const Network& net, std::string name) {
  TopologySummary s;
  s.name = std::move(name);
  s.endpoints = static_cast<int>(net.endpoints().size());
  s.switches = static_cast<int>(net.node_count()) - s.endpoints;
  s.diameter = net.endpoint_diameter();
  s.mean_hops = net.mean_endpoint_hops();
  s.optical_links = net.duplex_links_of(LinkClass::kSiph);
  std::size_t total = net.link_count() / 2;
  s.electrical_links = total - s.optical_links;
  s.cost_usd = net.total_cost_usd();
  return s;
}

}  // namespace hpc::net
