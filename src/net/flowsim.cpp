#include "net/flowsim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace hpc::net {

sim::Sampler FlowRunSummary::fct_sampler(int tag) const {
  sim::Sampler s;
  for (const FlowResult& f : flows)
    if (tag < 0 || f.spec.tag == tag) s.push(f.fct_ns);
  return s;
}

FlowSim::FlowSim(const Network& net, CongestionControl cc, Routing routing,
                 std::uint64_t seed, double tree_degradation)
    : net_(net), cc_(cc), routing_(routing), rng_(seed),
      tree_degradation_(tree_degradation) {
  const std::size_t nl = net_.link_count();
  capacity_.resize(nl);
  for (std::size_t l = 0; l < nl; ++l)
    capacity_[l] = net_.link(static_cast<int>(l)).bandwidth_gbs;
  link_load_.assign(nl, 0);
  link_sharing_.assign(nl, 0);
  eff_.assign(nl, 0.0);
  for (std::size_t v = 0; v < net_.node_count(); ++v)
    if (net_.role(static_cast<int>(v)) == NodeRole::kSwitch)
      switches_.push_back(static_cast<int>(v));
}

void FlowSim::add_flow(const FlowSpec& spec) { pending_.push_back(spec); }

void FlowSim::set_observer(obs::TraceRecorder* trace, obs::MetricRegistry* metrics) {
  trace_ = trace;
  if (trace_ != nullptr) {
    otrack_ = trace_->track("net.flowsim");
    sid_solve_ = trace_->intern("net.flowsim.solve");
    sid_active_ = trace_->intern("net.flowsim.active_flows");
    sid_backpressure_ = trace_->intern("net.flowsim.backpressure");
  }
  if (metrics != nullptr) {
    m_solves_ = &metrics->counter("net.flowsim.solver_invocations");
    m_skips_ = &metrics->counter("net.flowsim.recompute_skips");
    m_backpressure_ = &metrics->counter("net.flowsim.backpressure_events");
  } else {
    m_solves_ = m_skips_ = m_backpressure_ = nullptr;
  }
}

int FlowSim::path_load(const std::vector<int>& path) const {
  int worst = 0;
  for (const int lid : path)
    worst = std::max(worst, link_load_[static_cast<std::size_t>(lid)]);
  return worst;
}

void FlowSim::track_links(const std::vector<int>& path, int delta) {
  for (std::size_t i = 0; i < path.size(); ++i) {
    const auto l = static_cast<std::size_t>(path[i]);
    link_load_[l] += delta;
    // link_sharing_ counts *distinct* flows per link: a link a path crosses
    // twice (Valiant detours can do this) still counts the flow once.
    bool first = true;
    for (std::size_t j = 0; j < i; ++j)
      if (path[j] == path[i]) {
        first = false;
        break;
      }
    if (first) link_sharing_[l] += delta;
  }
}

std::vector<int> FlowSim::pick_path(int src, int dst) {
  if (src == dst) return {};
  if (routing_ == Routing::kMinimal) return net_.route(src, dst);

  // Random intermediate switch for the misrouted candidate (switches_ is
  // cached at construction — the old code rebuilt it O(V) per call).
  if (switches_.empty()) return net_.route(src, dst);
  const int mid = switches_[rng_.index(switches_.size())];
  std::vector<int> detour = net_.route_via(src, mid, dst);
  if (routing_ == Routing::kValiant) return detour;

  // kAdaptive (UGAL-lite): prefer minimal unless its instantaneous load is
  // at least twice the probed detour's (the classic 2x bias accounts for the
  // detour being ~twice as long).  link_load_ is constructor-initialized and
  // deliberately probed *before* the flow being placed is counted, so a flow
  // never sees itself as congestion.
  std::vector<int> minimal = net_.route(src, dst);
  if (path_load(minimal) >= 2 * path_load(detour) + 2) return detour;
  return minimal;
}

void FlowSim::compute_rates(std::vector<ActiveFlow*>& active) {
  const std::size_t nf = active.size();
  paths_scratch_.clear();
  paths_scratch_.reserve(nf);
  for (const ActiveFlow* f : active) paths_scratch_.push_back(&f->path);

  weights_scratch_.clear();
  weights_scratch_.reserve(nf);
  for (const ActiveFlow* f : active)
    weights_scratch_.push_back(std::max(1e-6, f->spec.weight));

  maxmin_rates(paths_scratch_, capacity_, weights_scratch_, nullptr, scratch_, rates_);

  last_congesting_ = 0;
  if (cc_ == CongestionControl::kNone && !active.empty()) {
    // Congestion-tree model: a flow whose fair-share bottleneck is tighter
    // than its injection link keeps injecting at the injection share; the
    // excess occupies buffers on every upstream hop, degrading those links
    // for everyone else.  Flow-based congestion management (Slingshot)
    // eliminates exactly this term by throttling at the source.
    //
    // Only links touched by the first solve can be degraded or consulted by
    // the second, so eff_ is refreshed over that set instead of all links.
    for (const int lid : scratch_.touched_links)
      eff_[static_cast<std::size_t>(lid)] = capacity_[static_cast<std::size_t>(lid)];
    caps_.assign(nf, 0.0);
    for (std::size_t f = 0; f < nf; ++f) {
      const auto& path = active[f]->path;
      if (path.empty()) continue;
      // Injection share: capacity of first link divided by flows sharing it.
      // link_sharing_ is the maintained distinct-flow incidence count, an
      // O(1) lookup replacing the old O(flows² · pathlen) rescan.
      const int sharing = link_sharing_[static_cast<std::size_t>(path.front())];
      const double inject =
          capacity_[static_cast<std::size_t>(path.front())] / std::max(1, sharing);
      const double excess = std::max(0.0, inject - rates_[f]);
      caps_[f] = rates_[f];  // congesting flows still drain at their bottleneck
      if (excess <= 1e-12) continue;
      ++last_congesting_;
      // The queue sits in front of the bottleneck (the flow's last
      // oversubscribed hop — for incast, the egress).  That link itself keeps
      // draining at full rate; every hop upstream of it carries the standing
      // queue and loses effective capacity for other traffic.
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        const auto l = static_cast<std::size_t>(path[h]);
        eff_[l] = std::max(0.05 * capacity_[l], eff_[l] - tree_degradation_ * excess);
      }
    }
    maxmin_rates(paths_scratch_, eff_, weights_scratch_, &caps_, scratch_, rates_);
  }

  // Assign rates and fuse the next-completion min into the same pass.
  has_inf_rate_ = false;
  min_completion_dt_ = std::numeric_limits<double>::infinity();
  for (std::size_t f = 0; f < nf; ++f) {
    const double r = rates_[f];
    active[f]->rate = r;
    if (r <= 0.0) continue;
    if (std::isinf(r)) {
      has_inf_rate_ = true;  // zero-hop flow finishes immediately
    } else {
      min_completion_dt_ = std::min(min_completion_dt_, active[f]->remaining / r);
    }
  }
}

void FlowSim::activate_due(double t) {
  while (next_arrival_ < pending_.size() &&
         static_cast<double>(pending_[next_arrival_].start) <= t + 1e-9) {
    const FlowSpec& spec = pending_[next_arrival_++];
    storage_.push_back(ActiveFlow{spec, pick_path(spec.src, spec.dst), spec.bytes, 0.0,
                                  static_cast<double>(spec.start), nullptr});
    ActiveFlow& flow = storage_.back();
    active_.push_back(&flow);
    if (flow.path.empty()) {
      // Zero-hop flows touch no shared constraint: the standing rates stay
      // valid, so don't dirty them — just flag the immediate completion.
      flow.rate = std::numeric_limits<double>::infinity();
      has_inf_rate_ = true;
    } else {
      track_links(flow.path, +1);
      rates_dirty_ = true;
    }
    total_bytes_ += spec.bytes;
  }
}

void FlowSim::on_attach(sim::Engine& engine) {
  std::sort(pending_.begin(), pending_.end(),
            [](const FlowSpec& a, const FlowSpec& b) { return a.start < b.start; });
  storage_.clear();
  active_.clear();
  next_arrival_ = 0;
  now_ = static_cast<double>(engine.now());
  total_bytes_ = 0.0;
  summary_ = FlowRunSummary{};
  rates_dirty_ = true;
  has_inf_rate_ = false;
  min_completion_dt_ = std::numeric_limits<double>::infinity();

  activate_due(now_);
  arm();
}

void FlowSim::arm() {
  if (active_.empty()) {
    if (next_arrival_ >= pending_.size()) return;  // session quiescent
    // Idle fabric: jump straight to the next queued arrival.
    next_target_ = static_cast<double>(pending_[next_arrival_].start);
    const std::uint64_t gen = gen_;
    engine()->schedule_at(static_cast<sim::TimeNs>(next_target_), [this, gen] {
      if (gen != gen_) return;  // superseded by an inject()
      now_ = next_target_;
      activate_due(now_);
      arm();
    });
    return;
  }

  // Recompute-skip invariant: rates (and the fused completion min) remain
  // valid as long as no path-carrying flow joined or left the active set
  // and the survivors' relative order is unchanged — exactly the events
  // the dirty flag tracks in the drain pass and activate_due.
  if (rates_dirty_) {
    const bool tracing = trace_ != nullptr && trace_->enabled();
    const auto ts = static_cast<sim::TimeNs>(now_);
    if (tracing) {
      trace_->counter(otrack_, sid_active_, ts, static_cast<double>(active_.size()));
      trace_->begin_span(otrack_, sid_solve_, ts);
    }
    compute_rates(active_);
    if (tracing) {
      trace_->end_span(otrack_, sid_solve_, ts);
      if (last_congesting_ > 0)
        trace_->instant(otrack_, sid_backpressure_, ts,
                        static_cast<double>(last_congesting_));
    }
    if (m_solves_ != nullptr) {
      m_solves_->inc();
      if (last_congesting_ > 0) m_backpressure_->inc();
    }
    rates_dirty_ = false;
  } else if (m_skips_ != nullptr) {
    m_skips_->inc();
  }

  const double next_completion =
      has_inf_rate_ ? now_
                    : (std::isinf(min_completion_dt_)
                           ? std::numeric_limits<double>::infinity()
                           : now_ + min_completion_dt_);
  const double next_arrival_t = next_arrival_ < pending_.size()
                                    ? static_cast<double>(pending_[next_arrival_].start)
                                    : std::numeric_limits<double>::infinity();
  double t_next = std::min(next_completion, next_arrival_t);
  if (!std::isfinite(t_next)) {
    // No flow can make progress and nothing arrives: numerically stalled
    // (should be unreachable; kept as a hard safety net against hangs).
    for (ActiveFlow* f : active_) f->remaining = 0.0;
    t_next = now_;
  }
  next_target_ = t_next;
  const std::uint64_t gen = gen_;
  engine()->schedule_at(static_cast<sim::TimeNs>(next_target_), [this, gen] {
    if (gen != gen_) return;  // superseded by an inject()
    tick();
  });
}

void FlowSim::tick() {
  const double dt = std::max(0.0, next_target_ - now_);
  now_ = next_target_;

  // Fused pass: drain bytes, sweep completions, and track the next
  // completion min for the skip path — one walk instead of three.
  std::vector<std::pair<FlowDone, FlowResult>> fired;
  has_inf_rate_ = false;
  min_completion_dt_ = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < active_.size();) {
    ActiveFlow* f = active_[i];
    if (std::isinf(f->rate)) {
      f->remaining = 0.0;
    } else {
      f->remaining -= f->rate * dt;
    }
    // Sub-byte residues are floating-point dust; at large simulated times
    // now + residue/rate can equal now in double precision, so they must
    // count as complete or the loop never advances.
    if (f->remaining <= 0.1) {
      FlowResult r;
      r.spec = f->spec;
      r.finish_ns = now_;
      r.fct_ns = now_ - f->started_ns;
      r.mean_rate_gbs = r.fct_ns > 0.0 ? f->spec.bytes / r.fct_ns : 0.0;
      summary_.flows.push_back(r);
      if (f->on_done) fired.emplace_back(std::move(f->on_done), r);
      if (!f->path.empty()) {
        track_links(f->path, -1);
        rates_dirty_ = true;
      } else if (i + 1 != active_.size()) {
        // Swap-erase reorders the survivors, which changes the solver's
        // floating-point accumulation order: recompute to stay identical.
        rates_dirty_ = true;
      }
      active_[i] = active_.back();
      active_.pop_back();
      // The element swapped into slot i has not been drained yet; the next
      // loop round processes it at this same index.
    } else {
      if (f->rate > 0.0)
        min_completion_dt_ = std::min(min_completion_dt_, f->remaining / f->rate);
      ++i;
    }
  }
  activate_due(now_);

  // Completion callbacks fire after the fabric state is consistent.  A
  // callback may inject() re-entrantly; that bumps gen_ and re-arms, in
  // which case this tick must not arm a duplicate.
  const std::uint64_t gen = gen_;
  for (auto& [cb, res] : fired) cb(res);
  if (gen == gen_) arm();
}

void FlowSim::inject(FlowSpec spec, FlowDone on_done) {
  assert(attached() && "net::FlowSim: inject() requires an attached engine");
  const double t = static_cast<double>(engine()->now());
  if (t > now_) {
    // Catch the fluid clock up to the shared clock: drain active flows over
    // the elapsed interval (no completion can be due — the armed tick for it
    // lies at or beyond this instant — so survivors only lose bytes).
    const double dt = t - now_;
    for (ActiveFlow* f : active_)
      if (!std::isinf(f->rate)) f->remaining -= f->rate * dt;
    now_ = t;
  }

  spec.start = static_cast<sim::TimeNs>(now_);
  storage_.push_back(ActiveFlow{spec, pick_path(spec.src, spec.dst), spec.bytes, 0.0,
                                now_, std::move(on_done)});
  ActiveFlow& flow = storage_.back();
  active_.push_back(&flow);
  if (flow.path.empty()) {
    flow.rate = std::numeric_limits<double>::infinity();
    has_inf_rate_ = true;
  } else {
    track_links(flow.path, +1);
    rates_dirty_ = true;
  }
  total_bytes_ += spec.bytes;

  ++gen_;  // invalidate the armed tick: the rate landscape changed now
  arm();
}

FlowRunSummary FlowSim::take_summary() {
  summary_.makespan_ns = now_;
  summary_.aggregate_throughput_gbs = now_ > 0.0 ? total_bytes_ / now_ : 0.0;
  FlowRunSummary out = std::move(summary_);
  summary_ = FlowRunSummary{};
  storage_.clear();
  active_.clear();
  next_arrival_ = 0;
  now_ = 0.0;
  total_bytes_ = 0.0;
  return out;
}

FlowRunSummary FlowSim::run() {
  sim::Engine engine(rng_.seed());
  engine.attach(*this);
  engine.run();
  engine.detach(*this);
  return take_summary();
}

}  // namespace hpc::net
