#include "net/flowsim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hpc::net {

sim::Sampler FlowRunSummary::fct_sampler(int tag) const {
  sim::Sampler s;
  for (const FlowResult& f : flows)
    if (tag < 0 || f.spec.tag == tag) s.push(f.fct_ns);
  return s;
}

FlowSim::FlowSim(const Network& net, CongestionControl cc, Routing routing,
                 std::uint64_t seed, double tree_degradation)
    : net_(net), cc_(cc), routing_(routing), rng_(seed),
      tree_degradation_(tree_degradation) {}

void FlowSim::add_flow(const FlowSpec& spec) { pending_.push_back(spec); }

int FlowSim::path_load(const std::vector<int>& path) const {
  int worst = 0;
  for (const int lid : path)
    worst = std::max(worst, link_load_[static_cast<std::size_t>(lid)]);
  return worst;
}

std::vector<int> FlowSim::pick_path(int src, int dst) {
  if (src == dst) return {};
  if (routing_ == Routing::kMinimal) return net_.route(src, dst);

  // Random intermediate switch for the misrouted candidate.
  std::vector<int> switches;
  for (std::size_t v = 0; v < net_.node_count(); ++v)
    if (net_.role(static_cast<int>(v)) == NodeRole::kSwitch)
      switches.push_back(static_cast<int>(v));
  if (switches.empty()) return net_.route(src, dst);
  const int mid = switches[rng_.index(switches.size())];
  std::vector<int> detour = net_.route_via(src, mid, dst);
  if (routing_ == Routing::kValiant) return detour;

  // kAdaptive (UGAL-lite): prefer minimal unless its instantaneous load is
  // at least twice the probed detour's (the classic 2x bias accounts for the
  // detour being ~twice as long).
  std::vector<int> minimal = net_.route(src, dst);
  if (link_load_.size() != net_.link_count())
    link_load_.assign(net_.link_count(), 0);
  if (path_load(minimal) >= 2 * path_load(detour) + 2) return detour;
  return minimal;
}

namespace {

/// Progressive-filling weighted max-min fair allocation.
/// \param paths     per-flow directed-link-id paths
/// \param capacity  per-link capacity in GB/s
/// \param weights   per-flow fair-share weights (>= small positive)
/// \param rate_cap  optional per-flow rate ceiling (<=0 means none)
/// \returns per-flow rates (flows with empty paths get +inf)
std::vector<double> maxmin_rates(const std::vector<const std::vector<int>*>& paths,
                                 const std::vector<double>& capacity,
                                 const std::vector<double>& weights,
                                 const std::vector<double>* rate_cap = nullptr) {
  const std::size_t nf = paths.size();
  std::vector<double> rate(nf, std::numeric_limits<double>::infinity());
  std::vector<double> rem = capacity;
  std::vector<double> weight_sum(capacity.size(), 0.0);
  std::vector<int> count(capacity.size(), 0);
  std::vector<bool> fixed(nf, false);

  for (std::size_t f = 0; f < nf; ++f) {
    if (paths[f]->empty()) {
      fixed[f] = true;  // src == dst: no network constraint
      continue;
    }
    for (const int lid : *paths[f]) {
      weight_sum[static_cast<std::size_t>(lid)] += weights[f];
      ++count[static_cast<std::size_t>(lid)];
    }
  }

  // Progressive filling on the *unit share* (rate per unit weight): at each
  // round the binding constraint is either a link's unit share or some
  // capped flow whose ceiling divided by its weight is tighter.  The unit
  // share is non-decreasing round over round in exact arithmetic; enforcing
  // that monotonicity (last_unit clamp) keeps floating-point drift from
  // producing zero or negative rates on ties.
  double last_unit = 0.0;
  while (true) {
    double best_unit = std::numeric_limits<double>::infinity();
    int best_link = -1;
    for (std::size_t l = 0; l < rem.size(); ++l) {
      if (count[l] > 0 && weight_sum[l] > 0.0) {
        const double unit = std::max(rem[l] / weight_sum[l], last_unit);
        if (unit < best_unit) {
          best_unit = unit;
          best_link = static_cast<int>(l);
        }
      }
    }
    int best_flow = -1;
    if (rate_cap) {
      for (std::size_t f = 0; f < nf; ++f)
        if (!fixed[f] && (*rate_cap)[f] > 0.0 && (*rate_cap)[f] / weights[f] < best_unit) {
          best_unit = (*rate_cap)[f] / weights[f];
          best_flow = static_cast<int>(f);
          best_link = -1;
        }
    }
    if (best_link < 0 && best_flow < 0) break;
    last_unit = best_unit;

    auto fix_flow = [&](std::size_t f) {
      rate[f] = best_unit * weights[f];
      fixed[f] = true;
      for (const int lid : *paths[f]) {
        const auto l = static_cast<std::size_t>(lid);
        rem[l] = std::max(0.0, rem[l] - rate[f]);
        weight_sum[l] -= weights[f];
        --count[l];
      }
    };

    if (best_flow >= 0) {
      fix_flow(static_cast<std::size_t>(best_flow));
      continue;
    }
    // Fix every unfixed flow crossing the bottleneck link.
    for (std::size_t f = 0; f < nf; ++f) {
      if (fixed[f]) continue;
      bool on = false;
      for (const int lid : *paths[f])
        if (lid == best_link) {
          on = true;
          break;
        }
      if (on) fix_flow(f);
    }
  }
  return rate;
}

}  // namespace

void FlowSim::compute_rates(std::vector<ActiveFlow*>& active) {
  std::vector<const std::vector<int>*> paths;
  paths.reserve(active.size());
  for (const ActiveFlow* f : active) paths.push_back(&f->path);

  std::vector<double> capacity(net_.link_count());
  for (std::size_t l = 0; l < capacity.size(); ++l)
    capacity[l] = net_.link(static_cast<int>(l)).bandwidth_gbs;

  std::vector<double> weights;
  weights.reserve(active.size());
  for (const ActiveFlow* f : active) weights.push_back(std::max(1e-6, f->spec.weight));

  std::vector<double> rates = maxmin_rates(paths, capacity, weights);

  if (cc_ == CongestionControl::kNone && !active.empty()) {
    // Congestion-tree model: a flow whose fair-share bottleneck is tighter
    // than its injection link keeps injecting at the injection share; the
    // excess occupies buffers on every upstream hop, degrading those links
    // for everyone else.  Flow-based congestion management (Slingshot)
    // eliminates exactly this term by throttling at the source.
    std::vector<double> eff = capacity;
    std::vector<double> caps(active.size(), 0.0);
    for (std::size_t f = 0; f < active.size(); ++f) {
      const auto& path = active[f]->path;
      if (path.empty()) continue;
      // Injection share: capacity of first link divided by flows sharing it.
      int sharing = 0;
      for (const ActiveFlow* g : active)
        for (const int lid : g->path)
          if (lid == path.front()) {
            ++sharing;
            break;
          }
      const double inject =
          capacity[static_cast<std::size_t>(path.front())] / std::max(1, sharing);
      const double excess = std::max(0.0, inject - rates[f]);
      caps[f] = rates[f];  // congesting flows still drain at their bottleneck
      if (excess <= 1e-12) continue;
      // The queue sits in front of the bottleneck (the flow's last
      // oversubscribed hop — for incast, the egress).  That link itself keeps
      // draining at full rate; every hop upstream of it carries the standing
      // queue and loses effective capacity for other traffic.
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        const auto l = static_cast<std::size_t>(path[h]);
        eff[l] = std::max(0.05 * capacity[l], eff[l] - tree_degradation_ * excess);
      }
    }
    rates = maxmin_rates(paths, eff, weights, &caps);
  }

  for (std::size_t f = 0; f < active.size(); ++f) active[f]->rate = rates[f];
}

FlowRunSummary FlowSim::run() {
  std::sort(pending_.begin(), pending_.end(),
            [](const FlowSpec& a, const FlowSpec& b) { return a.start < b.start; });

  FlowRunSummary summary;
  std::vector<ActiveFlow> storage;
  storage.reserve(pending_.size());
  std::vector<ActiveFlow*> active;
  std::size_t next_arrival = 0;
  double now = 0.0;
  double total_bytes = 0.0;

  auto activate_due = [&](double t) {
    while (next_arrival < pending_.size() &&
           static_cast<double>(pending_[next_arrival].start) <= t + 1e-9) {
      const FlowSpec& spec = pending_[next_arrival++];
      storage.push_back(ActiveFlow{spec, pick_path(spec.src, spec.dst), spec.bytes, 0.0,
                                   static_cast<double>(spec.start)});
      active.push_back(&storage.back());
      if (link_load_.size() != net_.link_count()) link_load_.assign(net_.link_count(), 0);
      for (const int lid : storage.back().path) ++link_load_[static_cast<std::size_t>(lid)];
      total_bytes += spec.bytes;
    }
  };

  activate_due(0.0);

  while (!active.empty() || next_arrival < pending_.size()) {
    if (active.empty()) {
      now = static_cast<double>(pending_[next_arrival].start);
      activate_due(now);
      continue;
    }
    compute_rates(active);

    // Next completion.
    double next_completion = std::numeric_limits<double>::infinity();
    for (const ActiveFlow* f : active) {
      if (f->rate <= 0.0) continue;
      if (std::isinf(f->rate)) {
        next_completion = now;  // zero-hop flow finishes immediately
        break;
      }
      next_completion = std::min(next_completion, now + f->remaining / f->rate);
    }
    const double next_arrival_t = next_arrival < pending_.size()
                                      ? static_cast<double>(pending_[next_arrival].start)
                                      : std::numeric_limits<double>::infinity();
    double t_next = std::min(next_completion, next_arrival_t);
    if (!std::isfinite(t_next)) {
      // No flow can make progress and nothing arrives: numerically stalled
      // (should be unreachable; kept as a hard safety net against hangs).
      for (ActiveFlow* f : active) f->remaining = 0.0;
      t_next = now;
    }
    const double dt = std::max(0.0, t_next - now);

    // Drain bytes.
    for (ActiveFlow* f : active) {
      if (std::isinf(f->rate)) {
        f->remaining = 0.0;
      } else {
        f->remaining -= f->rate * dt;
      }
    }
    now = t_next;

    // Complete finished flows.
    for (std::size_t i = 0; i < active.size();) {
      ActiveFlow* f = active[i];
      // Sub-byte residues are floating-point dust; at large simulated times
      // now + residue/rate can equal now in double precision, so they must
      // count as complete or the loop never advances.
      if (f->remaining <= 0.1) {
        FlowResult r;
        r.spec = f->spec;
        r.finish_ns = now;
        r.fct_ns = now - f->started_ns;
        r.mean_rate_gbs = r.fct_ns > 0.0 ? f->spec.bytes / r.fct_ns : 0.0;
        summary.flows.push_back(r);
        for (const int lid : f->path) --link_load_[static_cast<std::size_t>(lid)];
        active[i] = active.back();
        active.pop_back();
      } else {
        ++i;
      }
    }
    activate_due(now);
  }

  summary.makespan_ns = now;
  summary.aggregate_throughput_gbs = now > 0.0 ? total_bytes / now : 0.0;
  return summary;
}

}  // namespace hpc::net
