#include "net/maxmin.hpp"

#include <algorithm>
#include <limits>

namespace hpc::net {

void maxmin_rates(const std::vector<const std::vector<int>*>& paths,
                  const std::vector<double>& capacity,
                  const std::vector<double>& weights,
                  const std::vector<double>* rate_cap, MaxMinScratch& scratch,
                  std::vector<double>& rate_out) {
  const std::size_t nf = paths.size();
  rate_out.assign(nf, std::numeric_limits<double>::infinity());

  const std::size_t nl = capacity.size();
  if (scratch.rem.size() < nl) {
    scratch.rem.resize(nl);
    scratch.weight_sum.resize(nl);
    scratch.count.resize(nl);
    scratch.stamp.resize(nl, 0);
    scratch.flows_on_link.resize(nl);
  }
  ++scratch.epoch;
  if (scratch.epoch == 0) {  // wrapped: stale stamps could alias, hard reset
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
    scratch.epoch = 1;
  }
  const std::uint32_t epoch = scratch.epoch;
  scratch.touched_links.clear();
  scratch.fixed.assign(nf, 0);

  // Build the touched-link set, per-link weight sums / occurrence counts, and
  // the link→flow incidence index in one pass.  Iterating flows in ascending
  // index order keeps the weight-sum accumulation order — and therefore the
  // floating-point result — identical to the original dense implementation.
  for (std::size_t f = 0; f < nf; ++f) {
    if (paths[f]->empty()) {
      scratch.fixed[f] = 1;  // src == dst: no network constraint
      continue;
    }
    for (const int lid : *paths[f]) {
      const auto l = static_cast<std::size_t>(lid);
      if (scratch.stamp[l] != epoch) {
        scratch.stamp[l] = epoch;
        scratch.rem[l] = capacity[l];
        scratch.weight_sum[l] = 0.0;
        scratch.count[l] = 0;
        scratch.flows_on_link[l].clear();
        scratch.touched_links.push_back(lid);
      }
      scratch.weight_sum[l] += weights[f];
      ++scratch.count[l];
      scratch.flows_on_link[l].push_back(static_cast<int>(f));
    }
  }
  // Ascending link ids so the bottleneck scan's strict-< tie break picks the
  // same (lowest-id) link as a dense 0..link_count scan would.
  std::sort(scratch.touched_links.begin(), scratch.touched_links.end());
  scratch.active_links = scratch.touched_links;

  // Progressive filling on the *unit share* (rate per unit weight): at each
  // round the binding constraint is either a link's unit share or some
  // capped flow whose ceiling divided by its weight is tighter.  The unit
  // share is non-decreasing round over round in exact arithmetic; enforcing
  // that monotonicity (last_unit clamp) keeps floating-point drift from
  // producing zero or negative rates on ties.
  double last_unit = 0.0;
  while (true) {
    double best_unit = std::numeric_limits<double>::infinity();
    int best_link = -1;
    // Bottleneck scan over live touched links only; links whose unfixed-flow
    // count has reached zero can never come back, so compact them out.
    std::size_t live = 0;
    for (const int lid : scratch.active_links) {
      const auto l = static_cast<std::size_t>(lid);
      if (scratch.count[l] <= 0) continue;
      scratch.active_links[live++] = lid;
      if (scratch.weight_sum[l] > 0.0) {
        const double unit = std::max(scratch.rem[l] / scratch.weight_sum[l], last_unit);
        if (unit < best_unit) {
          best_unit = unit;
          best_link = lid;
        }
      }
    }
    scratch.active_links.resize(live);

    int best_flow = -1;
    if (rate_cap) {
      for (std::size_t f = 0; f < nf; ++f)
        if (!scratch.fixed[f] && (*rate_cap)[f] > 0.0 &&
            (*rate_cap)[f] / weights[f] < best_unit) {
          best_unit = (*rate_cap)[f] / weights[f];
          best_flow = static_cast<int>(f);
          best_link = -1;
        }
    }
    if (best_link < 0 && best_flow < 0) break;
    last_unit = best_unit;

    auto fix_flow = [&](std::size_t f) {
      rate_out[f] = best_unit * weights[f];
      scratch.fixed[f] = 1;
      for (const int lid : *paths[f]) {
        const auto l = static_cast<std::size_t>(lid);
        scratch.rem[l] = std::max(0.0, scratch.rem[l] - rate_out[f]);
        scratch.weight_sum[l] -= weights[f];
        --scratch.count[l];
      }
    };

    if (best_flow >= 0) {
      fix_flow(static_cast<std::size_t>(best_flow));
      continue;
    }
    // Fix every unfixed flow crossing the bottleneck link.  The incidence
    // list was appended in ascending flow order, so this fixes flows in the
    // same order as a dense 0..nf scan (duplicate entries from a link that
    // appears twice on one path are skipped via the fixed flag).
    for (const int fi : scratch.flows_on_link[static_cast<std::size_t>(best_link)]) {
      const auto f = static_cast<std::size_t>(fi);
      if (!scratch.fixed[f]) fix_flow(f);
    }
  }
}

std::vector<double> maxmin_rates(const std::vector<const std::vector<int>*>& paths,
                                 const std::vector<double>& capacity,
                                 const std::vector<double>& weights,
                                 const std::vector<double>* rate_cap) {
  MaxMinScratch scratch;
  std::vector<double> rates;
  maxmin_rates(paths, capacity, weights, rate_cap, scratch, rates);
  return rates;
}

}  // namespace hpc::net
