#pragma once

#include <string>
#include <vector>

/// \file switchgen.hpp
/// Switch-silicon generational model (paper Section II.B): "State of the art
/// switches (12.8 Tbps) combine high radix and high per-port bandwidth.
/// Current designs have one more natural step (to 25.6 Tbps with 64 ports at
/// 400 Gbps).  These designs have a very high wire density, much of their
/// area is taken up by SerDes, and they make only limited gains from
/// improvements in process technology.  Radical change is required beyond
/// this point" — the radical change being co-packaged silicon photonics
/// (the Hewlett Packard Labs IP the paper describes).
///
/// The model tracks, per generation: aggregate bandwidth, radix x per-port
/// speed, the die-area share consumed by SerDes (which scales with beachfront
/// I/O, not with process), electrical reach, and power per Tbps — for both
/// the electrical path and the co-packaged-photonics path.

namespace hpc::net {

/// One switch ASIC generation.
struct SwitchGen {
  std::string name;
  int year = 2020;
  double aggregate_tbps = 12.8;
  int radix = 64;                 ///< ports
  double port_gbps = 200.0;
  double serdes_area_share = 0.3; ///< fraction of die area spent on I/O
  double electrical_reach_m = 3.0;///< passive copper reach at this rate
  double power_w = 350.0;
  bool copackaged_optics = false;

  double power_per_tbps() const noexcept { return power_w / aggregate_tbps; }
  /// Die area left for the crossbar/buffers, relative to a full die.
  double logic_area_share() const noexcept { return 1.0 - serdes_area_share; }
};

/// The electrical roadmap: 12.8T (current in the paper), 25.6T ("one more
/// natural step"), then the extrapolated 51.2T and 102.4T designs where the
/// SerDes share and reach collapse make the paper's case.
std::vector<SwitchGen> electrical_roadmap();

/// The co-packaged silicon-photonics path from 25.6T on: constant modest
/// SerDes share (fibres leave the package directly) and optical reach.
std::vector<SwitchGen> copackaged_roadmap();

/// First electrical generation whose SerDes share exceeds \p threshold —
/// the "radical change required" point (-1 if none).
int radical_change_generation(const std::vector<SwitchGen>& roadmap,
                              double threshold = 0.5);

}  // namespace hpc::net
