#include "net/collectives.hpp"

#include <algorithm>
#include <cmath>

namespace hpc::net {

double ring_allreduce_ns(const Network& net, const std::vector<int>& ranks, double bytes) {
  const std::size_t n = ranks.size();
  if (n < 2) return 0.0;
  const double chunk = bytes / static_cast<double>(n);
  double step = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int src = ranks[i];
    const int dst = ranks[(i + 1) % n];
    step = std::max(step, net.message_latency_ns(src, dst, chunk));
  }
  return 2.0 * static_cast<double>(n - 1) * step;
}

double ring_reduce_scatter_ns(const Network& net, const std::vector<int>& ranks,
                              double bytes) {
  const std::size_t n = ranks.size();
  if (n < 2) return 0.0;
  const double chunk = bytes / static_cast<double>(n);
  double step = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    step = std::max(step, net.message_latency_ns(ranks[i], ranks[(i + 1) % n], chunk));
  return static_cast<double>(n - 1) * step;
}

double tree_broadcast_ns(const Network& net, const std::vector<int>& ranks, double bytes) {
  const std::size_t n = ranks.size();
  if (n < 2) return 0.0;
  double total = 0.0;
  // Round r: ranks [0, 2^r) send to ranks [2^r, 2^{r+1}).
  for (std::size_t informed = 1; informed < n; informed *= 2) {
    double round = 0.0;
    for (std::size_t i = 0; i < informed && informed + i < n; ++i)
      round = std::max(round, net.message_latency_ns(ranks[i], ranks[informed + i], bytes));
    total += round;
  }
  return total;
}

double barrier_ns(const Network& net, const std::vector<int>& ranks) {
  const std::size_t n = ranks.size();
  if (n < 2) return 0.0;
  const int rounds = static_cast<int>(std::ceil(std::log2(static_cast<double>(n))));
  double total = 0.0;
  for (int r = 0; r < rounds; ++r) {
    const std::size_t stride = static_cast<std::size_t>(1) << r;
    double round = 0.0;
    for (std::size_t i = 0; i + stride < n; i += 2 * stride)
      round = std::max(round, net.message_latency_ns(ranks[i], ranks[i + stride], 64.0));
    total += round;
  }
  return 2.0 * total;  // reduce + broadcast phases
}

double alltoall_ns(const Network& net, const std::vector<int>& ranks,
                   double bytes_per_pair, CongestionControl cc) {
  FlowSim sim(net, cc);
  for (const int a : ranks)
    for (const int b : ranks)
      if (a != b) sim.add_flow(FlowSpec{a, b, bytes_per_pair, 0, 0});
  return sim.run().makespan_ns;
}

double alltoall_per_rank_bandwidth_gbs(const Network& net, const std::vector<int>& ranks,
                                       double bytes_per_pair, CongestionControl cc) {
  const double t = alltoall_ns(net, ranks, bytes_per_pair, cc);
  if (t <= 0.0 || ranks.size() < 2) return 0.0;
  const double per_rank_bytes = bytes_per_pair * static_cast<double>(ranks.size() - 1);
  return per_rank_bytes / t;  // bytes/ns == GB/s
}

}  // namespace hpc::net
