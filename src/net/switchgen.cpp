#include "net/switchgen.hpp"

namespace hpc::net {

std::vector<SwitchGen> electrical_roadmap() {
  // SerDes area grows with lane count x per-lane complexity (longer-reach
  // equalization at PAM-4 rates); electrical reach shrinks with symbol rate.
  return {
      {"12.8T-el", 2020, 12.8, 64, 200.0, 0.30, 3.0, 350.0, false},
      {"25.6T-el", 2022, 25.6, 64, 400.0, 0.42, 2.0, 550.0, false},   // the "one more natural step"
      {"51.2T-el", 2025, 51.2, 64, 800.0, 0.58, 1.0, 1'000.0, false},
      {"102.4T-el", 2028, 102.4, 64, 1'600.0, 0.74, 0.5, 1'900.0, false},
  };
}

std::vector<SwitchGen> copackaged_roadmap() {
  // Co-packaged optics: fibres off the package edge; the die spends a small,
  // flat share on the electrical interface to the optical engines, and reach
  // becomes an optics property (hundreds of meters).
  return {
      {"25.6T-cpo", 2023, 25.6, 64, 400.0, 0.18, 500.0, 450.0, true},
      {"51.2T-cpo", 2025, 51.2, 128, 400.0, 0.20, 500.0, 750.0, true},
      {"102.4T-cpo", 2027, 102.4, 128, 800.0, 0.22, 500.0, 1'300.0, true},
      {"204.8T-cpo", 2030, 204.8, 256, 800.0, 0.24, 500.0, 2'300.0, true},
  };
}

int radical_change_generation(const std::vector<SwitchGen>& roadmap, double threshold) {
  for (std::size_t g = 0; g < roadmap.size(); ++g)
    if (roadmap[g].serdes_area_share > threshold) return static_cast<int>(g);
  return -1;
}

}  // namespace hpc::net
