#include "net/progmodel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hpc::net {

namespace {
// Software costs of the message-passing path.
constexpr double kPackNsPerByte = 0.05;       // memcpy-class pack+unpack
constexpr double kRendezvousNs = 1'500.0;     // matching + protocol per message
// Per-access cost of aggregating scattered touches into messages: destination
// bucketing on the sender plus the scattered (cache-hostile) application of
// each element at the receiver.  This is what one-sided load/store hardware
// eliminates.
constexpr double kMarshalNsPerAccess = 25.0;
}  // namespace

std::string_view name_of(ProgModel m) noexcept {
  switch (m) {
    case ProgModel::kMessagePassing: return "message-passing";
    case ProgModel::kPgas: return "pgas";
  }
  return "message-passing";
}

double phase_time_ns(ProgModel model, const CommPhase& phase, LinkClass link,
                     int outstanding) {
  const LinkType t = link_type(link);
  const double bytes = phase.total_bytes();
  const double bandwidth_ns = bytes / t.bandwidth_gbs;  // bytes / (GB/s) = ns

  switch (model) {
    case ProgModel::kMessagePassing:
      // One aggregated message: marshal each touch, pack, rendezvous, stream,
      // unpack-and-scatter at the receiver.
      return kMarshalNsPerAccess * static_cast<double>(phase.accesses) +
             2.0 * kPackNsPerByte * bytes + kRendezvousNs + t.latency_ns + bandwidth_ns;
    case ProgModel::kPgas: {
      // One transaction per access; round-trip latency amortized over the
      // hardware's outstanding-transaction window.
      const double transactions = static_cast<double>(phase.accesses);
      const double latency_ns =
          transactions * (2.0 * t.latency_ns) / std::max(1, outstanding);
      return latency_ns + bandwidth_ns;
    }
  }
  return bandwidth_ns;
}

double pgas_win_granularity_bytes(LinkClass link, double total_bytes, int outstanding) {
  auto pgas_wins = [&](double granularity) {
    CommPhase phase;
    phase.granularity_bytes = granularity;
    phase.accesses = static_cast<std::int64_t>(std::max(1.0, total_bytes / granularity));
    return phase_time_ns(ProgModel::kPgas, phase, link, outstanding) <
           phase_time_ns(ProgModel::kMessagePassing, phase, link, outstanding);
  };
  if (!pgas_wins(total_bytes)) return std::numeric_limits<double>::infinity();
  if (pgas_wins(8.0)) return 8.0;  // load/store fabric: PGAS wins at word grain
  // Bisect the crossover in [8, total_bytes]: MP wins at lo, PGAS at hi.
  double lo = 8.0;
  double hi = total_bytes;
  for (int i = 0; i < 60; ++i) {
    const double mid = std::sqrt(lo * hi);  // geometric: granularity is log-scaled
    if (pgas_wins(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace hpc::net
