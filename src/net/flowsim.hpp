#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/maxmin.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

/// \file flowsim.hpp
/// Flow-level (fluid) network simulator.
///
/// Flows are (src, dst, bytes, start) tuples routed over the Network; active
/// flows share links by progressive-filling max-min fairness, and the
/// simulation advances from rate-change event to rate-change event (arrivals
/// and completions).  This preserves the congestion phenomenology the paper
/// discusses at a tiny fraction of packet-level cost (DESIGN.md choice #1).
///
/// The hot path is *incremental* (DESIGN.md "Performance model"): a
/// persistent link→flow incidence index maintained on flow activation and
/// completion feeds the incidence-indexed max-min solver (maxmin.hpp), all
/// per-event working sets live in scratch arenas owned by the simulator, and
/// rate recomputation is skipped outright for events that provably leave
/// every binding constraint unchanged.  All of it is behavior-preserving:
/// results are bit-identical to the straightforward dense implementation
/// (tests/test_net_flowsim_golden.cpp pins this against a frozen oracle).
///
/// Congestion management models the Slingshot claim (Section II.B):
///  - kNone: congesting flows (those bottlenecked at an oversubscribed egress)
///    keep injecting; their excess occupies buffers along their path and
///    degrades the effective capacity of the upstream links they cross — the
///    classic congestion tree / HOL blocking that hurts *victim* flows.
///  - kFlowBased: congesting flows are identified and selectively throttled at
///    injection (back-pressure), so victims see clean max-min fair shares.
namespace hpc::net {

/// Congestion-management policy of the fabric.
enum class CongestionControl : std::uint8_t { kNone, kFlowBased };

/// Path-selection policy.
enum class Routing : std::uint8_t {
  kMinimal,   ///< BFS minimal path
  kValiant,   ///< minimal to a random intermediate switch, then minimal
  /// UGAL-lite adaptive: take the minimal path unless, at flow start, it is
  /// carrying at least twice the load of a randomly probed Valiant detour
  /// (approximating the adaptive routing low-diameter networks rely on).
  kAdaptive,
};

/// One flow to simulate.
struct FlowSpec {
  int src = 0;              ///< endpoint vertex id
  int dst = 0;              ///< endpoint vertex id
  double bytes = 0.0;
  sim::TimeNs start = 0;
  int tag = 0;              ///< caller-defined grouping (e.g. victim vs elephant)
  /// Weighted fair share (Section III.C virtual networks: "a secure
  /// environment with strong service level guarantees").  A flow with weight
  /// w gets w times the share of a weight-1 flow on every contended link.
  double weight = 1.0;
};

/// Result of one completed flow.
struct FlowResult {
  FlowSpec spec;
  double finish_ns = 0.0;
  double fct_ns = 0.0;       ///< flow completion time (finish - start)
  double mean_rate_gbs = 0.0;
};

/// Aggregate results of a FlowSim run.
struct FlowRunSummary {
  std::vector<FlowResult> flows;
  double makespan_ns = 0.0;
  double aggregate_throughput_gbs = 0.0;  ///< total bytes / makespan

  /// FCT sampler over flows with the given tag (all flows if tag < 0).
  sim::Sampler fct_sampler(int tag = -1) const;
};

/// Fluid flow simulator over a Network (a sim::Component).
///
/// The fluid solver tracks time at fractional-nanosecond precision in a
/// double; that precise clock is component state, while every *scheduling*
/// decision goes through the shared kernel (truncated to integer ns — the
/// exact target time rides along in next_target_, so precision is never
/// lost).  Batch `run()` wraps a private Engine; co-simulation attaches the
/// FlowSim to a shared Engine and feeds it flows via `inject()`.
class FlowSim final : public sim::Component {
 public:
  /// Completion callback for injected flows (co-simulation coupling).
  using FlowDone = std::function<void(const FlowResult&)>;

  /// \param tree_degradation  fraction of a congesting flow's excess demand
  ///        that poisons each upstream link it crosses (kNone mode only).
  FlowSim(const Network& net, CongestionControl cc = CongestionControl::kFlowBased,
          Routing routing = Routing::kMinimal, std::uint64_t seed = 1,
          double tree_degradation = 0.8);

  /// Queues a flow for simulation.
  void add_flow(const FlowSpec& spec);

  /// Attaches observability sinks (both optional; pass nullptr to detach).
  /// Traced: max-min solver invocations as "net.flowsim.solve" spans, the
  /// active-flow count as a counter series, and congestion-tree backpressure
  /// instants (payload = number of congesting flows).  Metered: solver
  /// invocations, recompute-skips, backpressure events.  Observation is
  /// passive — it never touches the RNG or the solver, so results are
  /// bit-identical with and without an observer attached.
  void set_observer(obs::TraceRecorder* trace, obs::MetricRegistry* metrics = nullptr);

  /// Batch wrapper: private Engine, attach, run all queued flows, summarize.
  FlowRunSummary run();

  // sim::Component contract.
  [[nodiscard]] std::string_view component_name() const noexcept override {
    return "net.flowsim";
  }
  /// Starts a fluid session on the shared clock: sorts queued flows,
  /// activates those due at the current time, and arms the first tick.
  void on_attach(sim::Engine& engine) override;

  /// Starts \p spec at the engine's current time (spec.start is overridden).
  /// Active flows first drain to now, so the new flow contends from this
  /// instant on.  \p on_done (optional) fires when the flow completes —
  /// this is the co-simulation coupling point: stage a transfer, get called
  /// back on the shared clock when the fabric delivered it.  Requires an
  /// attached engine.
  void inject(FlowSpec spec, FlowDone on_done = nullptr);

  /// Summary of the session so far (makespan = precise internal clock);
  /// resets per-session state.  Queued flow specs are retained, matching the
  /// historical re-runnable batch semantics.
  [[nodiscard]] FlowRunSummary take_summary();

 private:
  struct ActiveFlow {
    FlowSpec spec;
    std::vector<int> path;     // directed link ids
    double remaining = 0.0;
    double rate = 0.0;         // GB/s == bytes/ns
    double started_ns = 0.0;
    FlowDone on_done;          // null for batch flows
  };

  /// Activates queued flows with start <= t (+tolerance).
  void activate_due(double t);
  /// Solves (or skip-counts) at the current instant and schedules the next
  /// tick; quiescent when nothing is active or queued.
  void arm();
  /// One fluid event: advance to next_target_, drain/complete, activate, re-arm.
  void tick();

  std::vector<int> pick_path(int src, int dst);
  /// Recomputes max-min rates for the active set and refreshes the fused
  /// next-completion tracking (min_completion_dt_ / has_inf_rate_).
  void compute_rates(std::vector<ActiveFlow*>& active);
  /// Highest concurrent-flow count over the links of \p path.
  int path_load(const std::vector<int>& path) const;
  /// Maintains the incidence counters for an activating (+1) or completing
  /// (-1) flow: link_load_ per path occurrence, link_sharing_ per distinct
  /// link (the O(1) congestion-tree injection-sharing lookup).
  void track_links(const std::vector<int>& path, int delta);

  const Network& net_;
  CongestionControl cc_;
  Routing routing_;
  sim::Rng rng_;
  double tree_degradation_;
  std::vector<FlowSpec> pending_;

  // Session state (between on_attach and take_summary).  storage_ is a deque
  // so ActiveFlow pointers stay stable when inject() grows it mid-session.
  std::deque<ActiveFlow> storage_;
  std::vector<ActiveFlow*> active_;
  std::size_t next_arrival_ = 0;
  double now_ = 0.0;          ///< precise fluid clock (fractional ns)
  double next_target_ = 0.0;  ///< precise time of the armed tick
  double total_bytes_ = 0.0;
  std::uint64_t gen_ = 0;     ///< bumped by inject(); stale armed ticks no-op
  FlowRunSummary summary_;

  // Persistent per-fabric state, sized once in the constructor.
  std::vector<int> switches_;      ///< switch vertex ids (Valiant/adaptive mid picks)
  std::vector<double> capacity_;   ///< per-link bandwidth_gbs snapshot
  std::vector<int> link_load_;     ///< active path-occurrences per link (adaptive probe)
  std::vector<int> link_sharing_;  ///< distinct active flows per link (incidence index)

  // Scratch arenas reused across events: no per-event allocation on the
  // steady-state hot path.
  MaxMinScratch scratch_;
  std::vector<const std::vector<int>*> paths_scratch_;
  std::vector<double> weights_scratch_;
  std::vector<double> rates_;
  std::vector<double> eff_;   ///< degraded capacities (congestion-tree mode)
  std::vector<double> caps_;  ///< per-flow injection caps (congestion-tree mode)

  // Recompute-skip bookkeeping: rates stay valid until the active set's
  // path-carrying composition (membership or relative order) changes.
  bool rates_dirty_ = true;
  bool has_inf_rate_ = false;       ///< a zero-hop flow is active (completes now)
  double min_completion_dt_ = 0.0;  ///< min remaining/rate over active flows

  // Observability (all null/zero until set_observer; one branch per solve
  // decision when detached, so the hot path stays within the bench_perf_obs
  // disabled-overhead budget).
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId otrack_ = 0;
  obs::StrId sid_solve_ = 0;
  obs::StrId sid_active_ = 0;
  obs::StrId sid_backpressure_ = 0;
  obs::Counter* m_solves_ = nullptr;
  obs::Counter* m_skips_ = nullptr;
  obs::Counter* m_backpressure_ = nullptr;
  std::uint64_t last_congesting_ = 0;  ///< congesting flows in the last solve
};

}  // namespace hpc::net
