#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/link.hpp"

/// \file network.hpp
/// Directed-graph network model with minimal-path routing.
///
/// Vertices are endpoints (compute nodes) or switches; links are directed
/// (duplex links create a pair).  Routing tables are all-pairs BFS next-hops,
/// which matches minimal routing on the regular topologies we build.  The
/// flow simulator (flowsim.hpp) runs on top of this graph.

namespace hpc::net {

/// Role of a vertex in the graph.
enum class NodeRole : std::uint8_t { kEndpoint, kSwitch };

/// One directed link.
struct DirectedLink {
  int from = 0;
  int to = 0;
  double bandwidth_gbs = 0.0;
  double latency_ns = 0.0;
  LinkClass cls = LinkClass::kEth200;
};

/// Mutable network graph plus routing.
class Network {
 public:
  /// Adds a vertex; returns its id.
  int add_node(NodeRole role, std::string label = {});

  /// Adds a duplex link (two directed links) of class \p cls between a and b.
  /// Bandwidth/latency default to the class datasheet; overrides in GB/s / ns
  /// (fractional-ns propagation model with -1 sentinel, hence not TimeNs).
  void add_duplex_link(int a, int b, LinkClass cls, double bandwidth_gbs = -1.0,
                       // archlint: allow(raw-time)
                       double latency_ns = -1.0);

  std::size_t node_count() const noexcept { return roles_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }
  NodeRole role(int node) const { return roles_[static_cast<std::size_t>(node)]; }
  const std::string& label(int node) const { return labels_[static_cast<std::size_t>(node)]; }
  const DirectedLink& link(int id) const { return links_[static_cast<std::size_t>(id)]; }

  /// All endpoint vertex ids, in insertion order.
  const std::vector<int>& endpoints() const noexcept { return endpoints_; }

  /// Directed link ids leaving \p node.
  const std::vector<int>& out_links(int node) const {
    return adjacency_[static_cast<std::size_t>(node)];
  }

  /// (Re)builds all-pairs BFS next-hop routing tables.  Must be called after
  /// the topology is complete and before route()/hops().
  void build_routes();

  /// Minimal route from src to dst as a sequence of directed link ids.
  /// Empty if src == dst; routing tables must be built.
  std::vector<int> route(int src, int dst) const;

  /// Route via an intermediate vertex (Valiant-style misrouting).
  std::vector<int> route_via(int src, int mid, int dst) const;

  /// Hop count of the minimal route (-1 if unreachable).
  int hops(int src, int dst) const;

  /// Maximum minimal-route hops over all endpoint pairs.
  int endpoint_diameter() const;

  /// Mean minimal-route hops over all endpoint pairs.
  double mean_endpoint_hops() const;

  /// Sum of one-way latencies plus serialization of \p bytes at the
  /// bottleneck bandwidth along the minimal path; per-hop switch delay added
  /// for each intermediate vertex.  Analytic fractional-ns model.
  double message_latency_ns(int src, int dst, double bytes,
                            // archlint: allow(raw-time)
                            double switch_delay_ns = 100.0) const;

  /// Total acquisition cost of all links (each duplex pair counted once) plus
  /// \p cost_per_switch for every switch vertex.
  double total_cost_usd(double cost_per_switch = 15'000.0) const;

  /// Count of duplex links of class \p cls.
  std::size_t duplex_links_of(LinkClass cls) const;

 private:
  std::vector<NodeRole> roles_;
  std::vector<std::string> labels_;
  std::vector<DirectedLink> links_;
  std::vector<std::vector<int>> adjacency_;  // node -> outgoing link ids
  std::vector<int> endpoints_;
  // next_hop_[src][dst] = directed link id of the first hop (-1 unreachable).
  std::vector<std::vector<int>> next_hop_;
  bool routes_built_ = false;
};

}  // namespace hpc::net
