#include "net/link.hpp"

namespace hpc::net {

LinkType link_type(LinkClass cls) noexcept {
  switch (cls) {
    case LinkClass::kPcie4:    return {"pcie4", 900.0, 32.0, 80.0};
    case LinkClass::kPcie5:    return {"pcie5", 850.0, 64.0, 120.0};
    case LinkClass::kCxl:      return {"cxl", 150.0, 64.0, 150.0};
    case LinkClass::kNvlinkish:return {"nvlink", 300.0, 300.0, 400.0};
    case LinkClass::kEth200:   return {"eth200", 1'200.0, 25.0, 250.0};
    case LinkClass::kEth400:   return {"eth400", 1'100.0, 50.0, 450.0};
    case LinkClass::kSiph:     return {"siph", 250.0, 100.0, 300.0};
    case LinkClass::kWan:      return {"wan", 5'000'000.0, 12.5, 20'000.0};
    case LinkClass::kOnBoard:  return {"dram", 90.0, 205.0, 0.0};
  }
  return {"eth200", 350.0, 25.0, 250.0};
}

}  // namespace hpc::net
