#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <stdexcept>

namespace hpc::net {

int Network::add_node(NodeRole role, std::string label) {
  const int id = static_cast<int>(roles_.size());
  roles_.push_back(role);
  labels_.push_back(std::move(label));
  adjacency_.emplace_back();
  if (role == NodeRole::kEndpoint) endpoints_.push_back(id);
  routes_built_ = false;
  return id;
}

void Network::add_duplex_link(int a, int b, LinkClass cls, double bandwidth_gbs,
                              double latency_ns) {
  const LinkType t = link_type(cls);
  const double bw = bandwidth_gbs > 0.0 ? bandwidth_gbs : t.bandwidth_gbs;
  const double lat = latency_ns > 0.0 ? latency_ns : t.latency_ns;
  for (const auto& [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    const int id = static_cast<int>(links_.size());
    links_.push_back(DirectedLink{from, to, bw, lat, cls});
    adjacency_[static_cast<std::size_t>(from)].push_back(id);
  }
  routes_built_ = false;
}

void Network::build_routes() {
  const std::size_t n = roles_.size();
  next_hop_.assign(n, std::vector<int>(n, -1));
  // Reverse adjacency: node -> incoming directed link ids.
  std::vector<std::vector<int>> reverse(n);
  for (std::size_t lid = 0; lid < links_.size(); ++lid)
    reverse[static_cast<std::size_t>(links_[lid].to)].push_back(static_cast<int>(lid));

  // BFS from every destination over reversed edges; for each vertex reached,
  // the traversed link is its first hop toward that destination.
  std::vector<int> dist(n);
  for (std::size_t dst = 0; dst < n; ++dst) {
    std::fill(dist.begin(), dist.end(), std::numeric_limits<int>::max());
    dist[dst] = 0;
    std::deque<int> queue{static_cast<int>(dst)};
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop_front();
      for (const int lid : reverse[static_cast<std::size_t>(v)]) {
        const DirectedLink& l = links_[static_cast<std::size_t>(lid)];
        auto& du = dist[static_cast<std::size_t>(l.from)];
        if (du == std::numeric_limits<int>::max()) {
          du = dist[static_cast<std::size_t>(v)] + 1;
          next_hop_[static_cast<std::size_t>(l.from)][dst] = lid;
          queue.push_back(l.from);
        }
      }
    }
  }
  routes_built_ = true;
}

std::vector<int> Network::route(int src, int dst) const {
  assert(routes_built_ && "call build_routes() first");
  std::vector<int> path;
  int cur = src;
  while (cur != dst) {
    const int lid = next_hop_[static_cast<std::size_t>(cur)][static_cast<std::size_t>(dst)];
    if (lid < 0) throw std::runtime_error("network: no route");
    path.push_back(lid);
    cur = links_[static_cast<std::size_t>(lid)].to;
  }
  return path;
}

std::vector<int> Network::route_via(int src, int mid, int dst) const {
  std::vector<int> path = route(src, mid);
  const std::vector<int> tail = route(mid, dst);
  path.insert(path.end(), tail.begin(), tail.end());
  return path;
}

int Network::hops(int src, int dst) const {
  assert(routes_built_);
  int count = 0;
  int cur = src;
  while (cur != dst) {
    const int lid = next_hop_[static_cast<std::size_t>(cur)][static_cast<std::size_t>(dst)];
    if (lid < 0) return -1;
    cur = links_[static_cast<std::size_t>(lid)].to;
    ++count;
  }
  return count;
}

int Network::endpoint_diameter() const {
  int worst = 0;
  for (int a : endpoints_)
    for (int b : endpoints_)
      if (a != b) worst = std::max(worst, hops(a, b));
  return worst;
}

double Network::mean_endpoint_hops() const {
  double sum = 0.0;
  std::size_t pairs = 0;
  for (int a : endpoints_)
    for (int b : endpoints_)
      if (a != b) {
        sum += hops(a, b);
        ++pairs;
      }
  return pairs ? sum / static_cast<double>(pairs) : 0.0;
}

double Network::message_latency_ns(int src, int dst, double bytes,
                                   double switch_delay_ns) const {
  if (src == dst) return 0.0;
  const std::vector<int> path = route(src, dst);
  double lat = 0.0;
  double min_bw = std::numeric_limits<double>::infinity();
  for (const int lid : path) {
    const DirectedLink& l = links_[static_cast<std::size_t>(lid)];
    lat += l.latency_ns;
    min_bw = std::min(min_bw, l.bandwidth_gbs);
  }
  if (path.size() > 1) lat += switch_delay_ns * static_cast<double>(path.size() - 1);
  if (bytes > 0.0 && min_bw > 0.0) lat += bytes / min_bw;  // GB/s == bytes/ns
  return lat;
}

double Network::total_cost_usd(double cost_per_switch) const {
  double cost = 0.0;
  for (std::size_t i = 0; i < links_.size(); i += 2) {  // duplex pairs adjacent
    cost += link_type(links_[i].cls).cost_usd;
  }
  for (const NodeRole r : roles_)
    if (r == NodeRole::kSwitch) cost += cost_per_switch;
  return cost;
}

std::size_t Network::duplex_links_of(LinkClass cls) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < links_.size(); i += 2)
    if (links_[i].cls == cls) ++n;
  return n;
}

}  // namespace hpc::net
