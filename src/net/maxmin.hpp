#pragma once

#include <cstdint>
#include <vector>

/// \file maxmin.hpp
/// Progressive-filling weighted max-min fair allocation — FlowSim's rate
/// solver, exposed as a standalone engine so it can be unit-tested directly
/// and reused with caller-owned scratch arenas.
///
/// The solver is *incidence-indexed*: instead of scanning every link of the
/// network each round (the pre-PR-2 behavior), it builds a per-call list of
/// the links actually touched by the given paths plus a link→flow incidence
/// index, and each round scans only still-live touched links (dead links are
/// compacted out as their flow counts reach zero).  All arithmetic — the
/// accumulation order of per-link weight sums, the ascending-link-id tie
/// break of the bottleneck scan, the ascending-flow-index fixing order, and
/// the `last_unit` monotonicity clamp — is kept exactly equivalent to the
/// original dense scan, so results are bit-identical
/// (tests/test_net_flowsim_golden.cpp holds this to the frozen oracle).
namespace hpc::net {

/// Reusable arenas for maxmin_rates.  One instance per simulator; sized to
/// the fabric on first use and never shrunk, so steady-state solves allocate
/// nothing.
struct MaxMinScratch {
  // Per-link arenas (indexed by directed link id).
  std::vector<double> rem;          ///< remaining capacity this solve
  std::vector<double> weight_sum;   ///< unfixed weight crossing the link
  std::vector<int> count;           ///< unfixed path-occurrences on the link
  std::vector<std::uint32_t> stamp; ///< epoch mark: entry initialized this solve
  std::vector<std::vector<int>> flows_on_link;  ///< link → flow-index incidence
  // Per-solve link lists.
  std::vector<int> touched_links;   ///< sorted ids of links touched this solve
  std::vector<int> active_links;    ///< working copy, compacted as links die
  // Per-flow arena.
  std::vector<unsigned char> fixed;
  std::uint32_t epoch = 0;
};

/// Weighted max-min fair rates by progressive filling.
/// \param paths     per-flow directed-link-id paths (flows with empty paths
///                  get +inf — no network constraint)
/// \param capacity  per-link capacity in GB/s (indexed by link id; only
///                  entries for links on \p paths are read)
/// \param weights   per-flow fair-share weights (>= small positive)
/// \param rate_cap  optional per-flow rate ceiling (<= 0 means none)
/// \param scratch   caller-owned arenas, reused across calls
/// \param rate_out  per-flow allocated rates (resized/overwritten)
void maxmin_rates(const std::vector<const std::vector<int>*>& paths,
                  const std::vector<double>& capacity,
                  const std::vector<double>& weights,
                  const std::vector<double>* rate_cap, MaxMinScratch& scratch,
                  std::vector<double>& rate_out);

/// Convenience overload with internal scratch (tests, one-off callers).
[[nodiscard]] std::vector<double> maxmin_rates(
    const std::vector<const std::vector<int>*>& paths,
    const std::vector<double>& capacity, const std::vector<double>& weights,
    const std::vector<double>* rate_cap = nullptr);

}  // namespace hpc::net
