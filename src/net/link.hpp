#pragma once

#include <cstdint>
#include <string_view>

/// \file link.hpp
/// Link technology classes spanning the paper's Figure 2 scales: device-level
/// (PCIe, CXL-class coherent fabrics), rack/system-level (200/400G Ethernet,
/// silicon-photonics), and WAN.  Each class carries the latency/bandwidth/cost
/// triple the experiments sweep; the paper's claim that "PCIe latencies are
/// far too high for memory access" is the µs-vs-ns gap between kPcie4 and
/// kCxl below.

namespace hpc::net {

/// Physical/protocol class of a link.
enum class LinkClass : std::uint8_t {
  kPcie4,    ///< PCIe gen4 x16: device attach, DMA-oriented
  kPcie5,    ///< PCIe gen5 x16
  kCxl,      ///< CXL/Gen-Z-class coherent memory fabric (load/store)
  kNvlinkish,///< proprietary GPU-to-GPU point-to-point
  kEth200,   ///< 4x56G PAM-4 Ethernet (current generation in the paper)
  kEth400,   ///< 4x112G PAM-4 Ethernet (next generation in the paper)
  kSiph,     ///< co-packaged silicon-photonics optical
  kWan,      ///< metro/wide-area link between federated sites
  kOnBoard,  ///< on-board memory channel (reference point)
};

/// Datasheet for a link class.
struct LinkType {
  std::string_view name;
  double latency_ns;    ///< one-way propagation + protocol latency
  double bandwidth_gbs; ///< usable unidirectional bandwidth, GB/s
  double cost_usd;      ///< per-link cost (cable + 2 ports share)
};

/// Returns the calibrated datasheet for \p cls.
LinkType link_type(LinkClass cls) noexcept;

}  // namespace hpc::net
