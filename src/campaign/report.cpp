#include "campaign/report.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "exec/policy.hpp"
#include "sim/report.hpp"

namespace hpc::campaign {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fold_u64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xfULL];
    v >>= 4;
  }
  return out;
}

/// Per-cell data gathered in replica index order.
struct CellData {
  std::uint64_t digest = kFnvOffset;
  std::uint64_t replicas = 0;
  std::uint64_t failed = 0;
  std::vector<double> latencies_ns;  ///< index order; sorted only for percentiles
  double work_sum = 0.0;
  double latency_sum_ns = 0.0;
  double cost_sum = 0.0;
};

/// Exact percentile over a sorted sample set (nearest-rank).
double pct(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

std::string make_report(const CampaignResult& campaign) {
  std::map<std::string, CellData, std::less<>> cells;
  for (std::size_t i = 0; i < campaign.replicas.size(); ++i) {
    CellData& cell = cells[campaign.replicas[i].cell()];
    const ReplicaResult& r = campaign.results[i];
    ++cell.replicas;
    if (!r.error.empty()) {
      ++cell.failed;
      continue;
    }
    cell.digest = fold_u64(cell.digest, r.digest);
    cell.latencies_ns.push_back(r.latency_ns);
    cell.latency_sum_ns += r.latency_ns;
    cell.work_sum += r.work;
    cell.cost_sum += r.cost_usd;
  }

  std::string out = "campaign summary\n================\n";
  out += "replicas:         " + std::to_string(campaign.replicas.size()) + "\n";
  out += "cells:            " + std::to_string(cells.size()) + "\n";
  out += "campaign digest:  " + hex16(campaign.campaign_digest) + "\n";
  // Advisory only: the host's thread-pool sizing default.  Recorded so a
  // reader knows what ThreadPoolPolicy{0} would have meant here; identical
  // across execution policies on a given host and never an input to any
  // simulation.
  out += "host worker hint: " + std::to_string(exec::hardware_worker_hint()) + "\n\n";

  sim::Table digests({"cell", "replicas", "failed", "cell digest"});
  for (const auto& [name, cell] : cells)
    digests.add_row({name, std::to_string(cell.replicas), std::to_string(cell.failed),
                     hex16(cell.digest)});
  out += digests.to_string() + "\n";

  sim::Table latency(
      {"cell", "lat p50", "lat p90", "lat p99", "throughput (work/s)", "cost ($)"});
  for (auto& [name, cell] : cells) {
    std::vector<double> sorted = cell.latencies_ns;
    std::sort(sorted.begin(), sorted.end());
    const double sim_seconds = cell.latency_sum_ns / 1e9;
    const double throughput = sim_seconds > 0.0 ? cell.work_sum / sim_seconds : 0.0;
    latency.add_row({name, sim::fmt_time_ns(pct(sorted, 50.0)),
                     sim::fmt_time_ns(pct(sorted, 90.0)), sim::fmt_time_ns(pct(sorted, 99.0)),
                     sim::fmt(throughput), sim::fmt(cell.cost_sum)});
  }
  out += latency.to_string() + "\n";

  // Best policy per topology × device-mix group: lowest mean latency over
  // the group's successful replicas; ties break to the lexicographically
  // first policy (cells iterate sorted, so "first seen wins" is that).
  struct Best {
    std::string policy;
    double mean_latency_ns = 0.0;
    bool set = false;
  };
  std::map<std::string, Best, std::less<>> best;
  for (const auto& [name, cell] : cells) {
    if (cell.latencies_ns.empty()) continue;
    const std::size_t cut = name.rfind('/');
    const std::string group = name.substr(0, cut);
    const std::string policy = name.substr(cut + 1);
    const double mean = cell.latency_sum_ns / static_cast<double>(cell.latencies_ns.size());
    Best& b = best[group];
    if (!b.set || mean < b.mean_latency_ns) {
      b.policy = policy;
      b.mean_latency_ns = mean;
      b.set = true;
    }
  }
  sim::Table winners({"topology/device mix", "best policy", "mean latency"});
  for (const auto& [group, b] : best)
    winners.add_row({group, b.policy, sim::fmt_time_ns(b.mean_latency_ns)});
  out += winners.to_string();

  return out;
}

}  // namespace hpc::campaign
