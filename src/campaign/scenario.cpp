#include "campaign/scenario.hpp"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/system.hpp"
#include "fed/site.hpp"
#include "sim/rng.hpp"

namespace hpc::campaign {

namespace {

/// Every site's uplink bandwidth for the topology axis, in GB/s.
double topology_bandwidth_gbs(const std::string& topology) {
  if (topology == "wan-10g") return 1.25;
  if (topology == "wan-100g") return 12.5;
  throw std::invalid_argument("campaign: unknown topology '" + topology + "'");
}

/// Site roster for the device-mix axis.  All mixes keep the same three
/// roles (campus / center / cloud) so the siloed pins below stay valid;
/// only capacities shift.
std::vector<hpc::fed::Site> make_sites(const std::string& device_mix) {
  using namespace hpc;
  std::vector<fed::Site> sites;
  if (device_mix == "baseline") {
    sites.push_back(fed::make_onprem_site(0, "campus", 12, 4));
    sites.push_back(fed::make_supercomputer_site(1, "center", 48));
    sites.push_back(fed::make_cloud_site(2, "cloud", 48));
  } else if (device_mix == "cloud-heavy") {
    sites.push_back(fed::make_onprem_site(0, "campus", 8, 2));
    sites.push_back(fed::make_supercomputer_site(1, "center", 24));
    sites.push_back(fed::make_cloud_site(2, "cloud", 96));
  } else {
    throw std::invalid_argument("campaign: unknown device mix '" + device_mix + "'");
  }
  // One governance domain: the campaign measures placement and WAN
  // behaviour, not policy walls.
  for (fed::Site& site : sites) site.admin_domain = 0;
  return sites;
}

hpc::core::PlacementPolicy placement_of(const std::string& policy) {
  using hpc::core::PlacementPolicy;
  if (policy == "siloed") return PlacementPolicy::kSiloed;
  if (policy == "gravity") return PlacementPolicy::kGravityAware;
  if (policy == "cheapest") return PlacementPolicy::kCheapest;
  throw std::invalid_argument("campaign: unknown policy '" + policy + "'");
}

/// Uniform draw in [0.9, 1.1) from the replica's named child stream — the
/// seed axis perturbs the *sampled workload* (shard sizes, task demands),
/// the standard campaign idiom for exploring a design point under input
/// variation.  Streams are minted only through `Rng::child_seed` (rule D12:
/// no ad-hoc RNG roots outside the sim kernel).
double workload_jitter(std::uint64_t engine_seed, const std::string& label) {
  const std::uint64_t h = hpc::sim::Rng::child_seed(engine_seed, label);
  return 0.9 + 0.2 * static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// The C7-style sharded campaign, scaled by \p shards: parallel analysis
/// tasks (own ~60 GB shard + shared 40 GB reference each) fanned into a
/// training task and a final inference deployment.  Dataset sizes and task
/// demands are jittered per replica from \p engine_seed (see
/// workload_jitter), so the seed axis yields genuinely distinct runs.
hpc::core::Workflow make_workflow(hpc::core::System& system, int shards,
                                  std::uint64_t engine_seed) {
  using namespace hpc;
  std::vector<int> shard_ds;
  for (int s = 0; s < shards; ++s)
    shard_ds.push_back(system.catalog().add(
        "shard-" + std::to_string(s),
        60.0 * workload_jitter(engine_seed, "workload/shard-" + std::to_string(s)),
        /*home_site=*/0, /*admin_domain=*/0, data::Sensitivity::kInternal,
        "survey frames, shard " + std::to_string(s)));
  const int reference = system.catalog().add(
      "reference-catalog", 40.0, /*home_site=*/0, /*admin_domain=*/0,
      data::Sensitivity::kPublic, "calibration reference");

  core::Workflow wf;
  std::vector<int> shard_tasks;
  for (int s = 0; s < shards; ++s) {
    core::Task analyze;
    analyze.name = "analyze-" + std::to_string(s);
    analyze.kind = core::TaskKind::kAnalyze;
    analyze.input_datasets = {shard_ds[static_cast<std::size_t>(s)], reference};
    analyze.output_gb = 8.0;
    analyze.job.nodes = 8;
    analyze.job.total_gflop =
        3e5 * workload_jitter(engine_seed, "workload/analyze-" + std::to_string(s));
    shard_tasks.push_back(wf.add(analyze));
  }
  core::Task train;
  train.name = "train-surrogate";
  train.kind = core::TaskKind::kTrain;
  train.deps = shard_tasks;
  train.input_tasks = shard_tasks;
  train.output_gb = 2.0;
  train.job.nodes = 16;
  train.job.total_gflop = 8e5 * workload_jitter(engine_seed, "workload/train");
  const int t_train = wf.add(train);

  core::Task deploy;
  deploy.name = "deploy-inference";
  deploy.kind = core::TaskKind::kInfer;
  deploy.deps = {t_train};
  deploy.input_tasks = {t_train};
  deploy.job.nodes = 1;
  deploy.job.total_gflop = 5e2;
  wf.add(deploy);
  return wf;
}

}  // namespace

ScenarioFn make_federation_scenario(const FederationOptions& options) {
  const int shards = options.shards;
  return [shards](const ReplicaSpec& spec, std::uint64_t engine_seed) {
    using namespace hpc;
    const double bandwidth = topology_bandwidth_gbs(spec.topology);
    std::vector<fed::Site> sites = make_sites(spec.device_mix);
    for (fed::Site& site : sites) site.wan_bandwidth_gbs = bandwidth;
    const core::PlacementPolicy placement = placement_of(spec.policy);

    core::System system(std::move(sites), engine_seed);
    system.pin_silo(core::TaskKind::kAnalyze, 0);
    system.pin_silo(core::TaskKind::kTrain, 1);
    system.pin_silo(core::TaskKind::kInfer, 2);

    obs::MetricRegistry metrics;
    system.set_observer(nullptr, &metrics);

    const core::Workflow wf = make_workflow(system, shards, engine_seed);
    core::CosimConfig cfg;
    cfg.seed = engine_seed;
    const core::CoupledResult coupled = system.run_coupled(wf, placement, cfg);

    ReplicaResult result;
    result.digest = coupled.engine_digest;
    result.events = coupled.events_executed;
    result.end_time = coupled.end_time;
    result.latency_ns = static_cast<double>(coupled.workflow.makespan);
    result.cost_usd = coupled.workflow.total_cost_usd;
    result.work = static_cast<double>(coupled.workflow.outcomes.size());
    metrics.gauge("scenario.makespan_ns").set(result.latency_ns);
    metrics.gauge("scenario.wan_gb_moved").set(coupled.workflow.wan_gb_moved);
    result.metrics = std::move(metrics);
    return result;
  };
}

ScenarioMatrix default_federation_matrix(int seeds) {
  ScenarioMatrix matrix;
  matrix.topologies = {"wan-10g", "wan-100g"};
  matrix.device_mixes = {"baseline", "cloud-heavy"};
  matrix.policies = {"siloed", "gravity", "cheapest"};
  for (int s = 0; s < seeds; ++s)
    matrix.seeds.push_back(static_cast<std::uint64_t>(s + 1));
  return matrix;
}

}  // namespace hpc::campaign
