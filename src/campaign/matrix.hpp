#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file matrix.hpp
/// `hpc::campaign` — declarative scenario matrices for design-space sweeps.
///
/// The paper's central argument is that extreme heterogeneity forces
/// *campaigns* of experiments across device mixes, interconnects, and
/// resource-allocation policies — not one big run.  A `ScenarioMatrix` is
/// the declarative form of such a campaign: four axes
/// (topology × device mix × policy × seed) whose cross product expands into
/// independent replicas, each a self-contained `sim::Engine` run.
///
/// Determinism by construction:
///
///  - **Expansion order is pinned**: row-major with topology outermost and
///    seed innermost, so replica index `i` means the same cell content in
///    every run of the same matrix.
///  - **Stream labels are content-addressed**: a replica's RNG stream label
///    is a pure function of its axis *values*
///    (`campaign/<topology>/<device_mix>/<policy>/seed=<seed>`), never of
///    its position.  Reordering or extending the matrix therefore cannot
///    perturb the random streams — and hence the results — of replicas
///    whose cells it did not change (pinned by tests/test_campaign.cpp).

namespace hpc::campaign {

/// The four campaign axes.  Empty axes make the matrix empty; duplicated
/// values are kept as distinct replicas (they share a stream label, which
/// is almost never what you want — keep values unique).
struct ScenarioMatrix {
  std::vector<std::string> topologies;
  std::vector<std::string> device_mixes;
  std::vector<std::string> policies;
  std::vector<std::uint64_t> seeds;

  /// Number of replicas the matrix expands into (the axis-size product).
  [[nodiscard]] std::size_t size() const noexcept;
};

/// One expanded replica: its cell coordinates plus its pinned index.
struct ReplicaSpec {
  std::size_t index = 0;  ///< position in the pinned expansion order
  std::string topology;
  std::string device_mix;
  std::string policy;
  std::uint64_t seed = 0;

  /// Cell key "topology/device_mix/policy" — replicas differing only by
  /// seed share a cell, which is the aggregation unit of the report.
  [[nodiscard]] std::string cell() const;

  /// Content-addressed RNG stream label
  /// "campaign/<topology>/<device_mix>/<policy>/seed=<seed>".  Feed it to
  /// `sim::Rng::child_seed(campaign_seed, label)` for the replica's engine
  /// seed; being position-independent, it is stable across matrix
  /// reordering.
  [[nodiscard]] std::string stream() const;
};

/// Expands the matrix in the pinned row-major order (topology outermost,
/// then device mix, then policy, then seed).
[[nodiscard]] std::vector<ReplicaSpec> expand(const ScenarioMatrix& matrix);

}  // namespace hpc::campaign
