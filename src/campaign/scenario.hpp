#pragma once

#include "campaign/runner.hpp"

/// \file scenario.hpp
/// The built-in federation scenario: maps campaign axis values onto a small
/// C7-style sharded-analysis federation (the coupled_archipelago setup,
/// scaled down) and runs it as one `core::System::run_coupled` co-simulation
/// per replica.
///
/// Axis vocabulary (unknown values throw, which the runner captures as a
/// deterministic per-replica error):
///
///   topology    "wan-10g" | "wan-100g"      — every site's uplink bandwidth
///   device_mix  "baseline" | "cloud-heavy"  — node counts per site class
///   policy      "siloed" | "gravity" | "cheapest" — placement policy
///   seed        any                          — CosimConfig seed material
///
/// Each replica builds its own System (sites, catalog, workflow) from
/// scratch, so replicas share no mutable state and are safe to run under
/// any execution policy.  The replica's engine seed — already derived by
/// the runner from the campaign seed and the content-addressed stream
/// label — becomes the CosimConfig seed, so every replica owns a named,
/// collision-free slice of the campaign's seed tree.

namespace hpc::campaign {

struct FederationOptions {
  /// Parallel analysis shards in the workflow (each stages its own dataset
  /// over the contended WAN).  4 keeps tests and CI fast; the example and
  /// bench raise it.
  int shards = 4;
};

/// Builds the scenario function.  Thread-safe and reusable across runs.
[[nodiscard]] ScenarioFn make_federation_scenario(const FederationOptions& options = {});

/// The default sweep: 2 topologies x 2 device mixes x 3 policies x N seeds.
[[nodiscard]] ScenarioMatrix default_federation_matrix(int seeds = 2);

}  // namespace hpc::campaign
