#include "campaign/runner.hpp"

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>

#include "campaign/report.hpp"
#include "obs/jsonlite.hpp"
#include "sim/rng.hpp"

namespace hpc::campaign {

namespace {

/// FNV-1a fold of the per-replica digests, index order.  Same primes as the
/// kernel's event digest, so one constant family witnesses the whole tree.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fold_u64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xfULL];
    v >>= 4;
  }
  return out;
}

std::string pad4(std::size_t i) {
  std::string digits = std::to_string(i);
  if (digits.size() < 4) digits.insert(0, 4 - digits.size(), '0');
  return digits;
}

void write_text_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary);
  if (f) f.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!f) throw std::runtime_error("campaign: cannot write artifact '" + path.string() + "'");
}

/// Per-cell accumulation for cells_bench_json (std::map: sorted, rule D2).
struct CellAgg {
  std::uint64_t replicas = 0;
  double latency_sum = 0.0;
};

}  // namespace

std::string CampaignResult::digests_text() const {
  std::string out;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    out += pad4(i);
    out += ' ';
    if (!results[i].error.empty()) {
      out += "error " + results[i].error;
    } else {
      out += hex16(results[i].digest);
    }
    out += ' ';
    out += replicas[i].stream();
    out += '\n';
  }
  return out;
}

std::string CampaignResult::cells_bench_json() const {
  std::map<std::string, CellAgg, std::less<>> cells;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (!results[i].error.empty()) continue;
    CellAgg& agg = cells[replicas[i].cell()];
    ++agg.replicas;
    agg.latency_sum += results[i].latency_ns;
  }

  // archipelago-bench-v1, emitted directly (src/ cannot link tools/, so this
  // mirrors benchjson::write_file byte for byte): name = cell key,
  // ns_per_op = mean replica latency, iterations = successful replica count.
  // The strict benchjson parser admits exactly these three entry keys, which
  // is why the richer per-cell data (cost, work) lives in report.txt instead.
  std::string out = "{\n  \"schema\": \"archipelago-bench-v1\",\n";
  out += "  \"bench\": \"campaign\",\n  \"unit\": \"ns_per_op\",\n  \"results\": [\n";
  bool first = true;
  for (const auto& [cell, agg] : cells) {
    char num[64];
    std::snprintf(num, sizeof num, "%.3f",
                  agg.latency_sum / static_cast<double>(agg.replicas));
    if (!first) out += ",\n";
    first = false;
    out += "    {\"name\": \"" + obs::jsonlite::escape(cell) +
           "\", \"ns_per_op\": " + num +
           ", \"iterations\": " + std::to_string(agg.replicas) + "}";
  }
  out += first ? "  ]\n}\n" : "\n  ]\n}\n";
  return out;
}

CampaignResult run_campaign(const ScenarioMatrix& matrix, const ScenarioFn& scenario,
                            exec::ExecutionPolicy& policy, const CampaignOptions& options) {
  CampaignResult campaign;
  campaign.replicas = expand(matrix);
  campaign.results.resize(campaign.replicas.size());

  // Engine seeds are derived up front, on the calling thread, purely from
  // the campaign seed and each replica's content-addressed stream label.
  std::vector<std::uint64_t> engine_seeds;
  engine_seeds.reserve(campaign.replicas.size());
  for (const ReplicaSpec& spec : campaign.replicas)
    engine_seeds.push_back(sim::Rng::child_seed(options.seed, spec.stream()));

  // Parallel phase: each task touches only its own pre-allocated slot, so
  // no synchronisation is needed beyond the policy's join.
  policy.run(campaign.replicas.size(), [&](std::size_t i) {
    try {
      campaign.results[i] = scenario(campaign.replicas[i], engine_seeds[i]);
    } catch (const std::exception& e) {
      campaign.results[i].error = e.what();
    } catch (...) {
      campaign.results[i].error = "unknown scenario failure";
    }
  });

  // Sequential aggregation phase, replica index order — never completion
  // order.  Everything below is execution-policy independent.
  campaign.campaign_digest = kFnvOffset;
  for (std::size_t i = 0; i < campaign.results.size(); ++i) {
    const ReplicaResult& r = campaign.results[i];
    campaign.campaign_digest = fold_u64(campaign.campaign_digest, r.digest);
    campaign.merged.merge_from(r.metrics);
  }

  {
    auto& ok = campaign.merged.counter("campaign.replicas_ok");
    auto& failed = campaign.merged.counter("campaign.replicas_failed");
    auto& latency = campaign.merged.histogram("campaign.replica_latency_ns");
    auto& cost = campaign.merged.histogram("campaign.replica_cost_usd");
    for (const ReplicaResult& r : campaign.results) {
      if (!r.error.empty()) {
        failed.inc();
        continue;
      }
      ok.inc();
      if (r.latency_ns > 0.0) latency.record(r.latency_ns);
      if (r.cost_usd > 0.0) cost.record(r.cost_usd);
    }
  }

  if (!options.artifact_dir.empty()) {
    const std::filesystem::path dir(options.artifact_dir);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
      throw std::runtime_error("campaign: cannot create artifact dir '" +
                               options.artifact_dir + "': " + ec.message());
    for (std::size_t i = 0; i < campaign.results.size(); ++i)
      write_text_file(dir / ("replica-" + pad4(i) + ".json"),
                      campaign.results[i].metrics.snapshot_json());
    write_text_file(dir / "digests.txt", campaign.digests_text());
    write_text_file(dir / "metrics.json", campaign.merged.snapshot_json());
    write_text_file(dir / "cells.json", campaign.cells_bench_json());
    write_text_file(dir / "report.txt", make_report(campaign));
  }

  return campaign;
}

}  // namespace hpc::campaign
