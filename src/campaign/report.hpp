#pragma once

#include <string>

#include "campaign/runner.hpp"

/// \file report.hpp
/// Human-readable campaign summary: per-cell digests, latency/throughput
/// percentiles, and a best-policy-per-cell table.
///
/// The report is part of the byte-diffed artifact set, so it must be a pure
/// function of the campaign *results* — it never mentions which execution
/// policy ran the campaign or how many workers it used.  The one piece of
/// host information it records is `exec::hardware_worker_hint()`, the
/// default-only sizing hint the thread pool consults when constructed with
/// workers=0; it is identical for every policy on a given host and never
/// affects simulation output (archlint rule D11 allowlists it for exactly
/// this advisory role).

namespace hpc::campaign {

/// Renders the summary report:
///
///  1. header — replica/cell counts, campaign digest, host worker hint;
///  2. per-cell digest table (cell digest = FNV-1a fold of its replicas'
///     digests in replica-index order);
///  3. per-cell latency percentiles (exact, over the per-replica latency
///     scalars) and mean throughput (work per simulated second);
///  4. best-policy-per-cell: for each topology × device-mix group, the
///     policy with the lowest mean latency (ties break lexicographically).
[[nodiscard]] std::string make_report(const CampaignResult& campaign);

}  // namespace hpc::campaign
