#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/matrix.hpp"
#include "exec/policy.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

/// \file runner.hpp
/// The campaign driver: expands a `ScenarioMatrix`, executes every replica
/// as an independent simulation under a pluggable `exec::ExecutionPolicy`,
/// and aggregates deterministically.
///
/// The aggregation contract — the whole point of the module — is that every
/// produced artifact is **byte-identical regardless of the execution policy**
/// (serial, 2 threads, 64 threads):
///
///  - each replica runs in isolation (own `sim::Engine`, own seed derived
///    from its content-addressed stream label, own `obs::MetricRegistry`)
///    and writes only its pre-allocated result slot;
///  - per-replica digests, the merged metrics registry, and the campaign
///    digest are folded in **replica index order** after all replicas
///    finish — never in completion order;
///  - artifacts (per-replica metrics snapshots, digest list, merged
///    snapshot, per-cell aggregate) are written sequentially, post-run.
///
/// CI runs a small campaign twice (serial and 2-thread) and byte-diffs the
/// artifact trees; tests/test_campaign.cpp pins the same property for
/// {1, 2, 4}-worker pools.

namespace hpc::campaign {

/// Outcome of one replica.  `metrics` is the replica's private registry
/// (its obs artifact); the scalar fields feed the report's percentile and
/// best-policy tables.
struct ReplicaResult {
  std::uint64_t digest = 0;    ///< engine event digest — determinism witness
  std::uint64_t events = 0;    ///< kernel events executed
  sim::TimeNs end_time = 0;    ///< simulated clock at quiescence
  double latency_ns = 0.0;     ///< scenario-defined latency (e.g. makespan)
  double cost_usd = 0.0;       ///< scenario-defined dollar cost
  double work = 0.0;           ///< scenario-defined work units completed
  obs::MetricRegistry metrics; ///< per-replica instruments
  std::string error;           ///< non-empty: replica failed (deterministic text)
};

/// Runs one replica: spec plus the engine seed already derived from the
/// spec's stream label.  Must be thread-safe across distinct replicas
/// (build all state locally; no globals) and deterministic in
/// (spec, engine_seed).
using ScenarioFn = std::function<ReplicaResult(const ReplicaSpec& spec,
                                               std::uint64_t engine_seed)>;

struct CampaignOptions {
  /// Root of the campaign's seed tree; replica engine seeds are
  /// `sim::Rng::child_seed(seed, spec.stream())`.
  std::uint64_t seed = 1;
  /// When non-empty, artifacts are written here (directory is created):
  /// replica-NNNN.json (per-replica metrics snapshots), digests.txt,
  /// metrics.json (merged snapshot), cells.json (per-cell aggregate in
  /// archipelago-bench-v1 form, so tools/benchjson can check and diff it).
  std::string artifact_dir;
};

/// A finished campaign, index-aligned: replicas[i] produced results[i].
struct CampaignResult {
  std::vector<ReplicaSpec> replicas;
  std::vector<ReplicaResult> results;
  /// All replica registries folded in index order, plus the runner's own
  /// campaign.* instruments (replica counts, latency/cost histograms).
  obs::MetricRegistry merged;
  /// FNV-1a over the per-replica digests in index order — one number that
  /// witnesses every replica's event stream.  Execution-policy independent;
  /// CI pins it in ci/expected_campaign_digest.txt.
  std::uint64_t campaign_digest = 0;

  /// Deterministic digest listing, one line per replica:
  /// "NNNN <digest-hex-16> <stream-label>" (or "error <text>").
  [[nodiscard]] std::string digests_text() const;

  /// Per-cell aggregate in archipelago-bench-v1 JSON: one entry per cell,
  /// name = cell key, ns_per_op = mean replica latency, iterations =
  /// replica count.  Self-contained emission (src/ cannot depend on
  /// tools/), but schema-compatible with tools/benchjson, so
  /// `benchjson_check` validates it and `benchjson_check --compare` diffs
  /// two campaigns' aggregates like any BENCH baseline.
  [[nodiscard]] std::string cells_bench_json() const;
};

/// Expands \p matrix, runs every replica through \p scenario under
/// \p policy, and aggregates in index order.  A throwing scenario is
/// captured into the replica's `error` field (the run continues); artifact
/// writing happens post-run on the calling thread.  Throws
/// std::runtime_error only when artifacts were requested but cannot be
/// written.
[[nodiscard]] CampaignResult run_campaign(const ScenarioMatrix& matrix,
                                          const ScenarioFn& scenario,
                                          exec::ExecutionPolicy& policy,
                                          const CampaignOptions& options);

}  // namespace hpc::campaign
