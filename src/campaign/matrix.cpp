#include "campaign/matrix.hpp"

namespace hpc::campaign {

std::size_t ScenarioMatrix::size() const noexcept {
  // archlint: allow(rng-discipline): matrix cardinality, not seed math
  return topologies.size() * device_mixes.size() * policies.size() * seeds.size();
}

std::string ReplicaSpec::cell() const {
  return topology + "/" + device_mix + "/" + policy;
}

std::string ReplicaSpec::stream() const {
  return "campaign/" + topology + "/" + device_mix + "/" + policy +
         "/seed=" + std::to_string(seed);
}

std::vector<ReplicaSpec> expand(const ScenarioMatrix& matrix) {
  std::vector<ReplicaSpec> out;
  out.reserve(matrix.size());
  for (const std::string& topo : matrix.topologies)
    for (const std::string& mix : matrix.device_mixes)
      for (const std::string& policy : matrix.policies)
        for (const std::uint64_t seed : matrix.seeds) {
          ReplicaSpec spec;
          spec.index = out.size();
          spec.topology = topo;
          spec.device_mix = mix;
          spec.policy = policy;
          spec.seed = seed;
          out.push_back(std::move(spec));
        }
  return out;
}

}  // namespace hpc::campaign
