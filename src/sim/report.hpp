#pragma once

#include <cstdio>
#include <string>
#include <vector>

/// \file report.hpp
/// Plain-text table printer so every bench binary reports its experiment in
/// the same aligned row/series format the paper's tables would use.

namespace hpc::sim {

/// Column-aligned table accumulated row by row and printed to stdout.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row of preformatted cells (must match header count; short rows
  /// are padded with empty cells).
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and column padding.
  [[nodiscard]] std::string to_string() const;
  void print() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with \p digits significant decimal places.
std::string fmt(double v, int digits = 3);

/// Formats bytes with binary-ish units (KB/MB/GB/TB at 1000 steps, matching
/// how the networking literature quotes bandwidth).
std::string fmt_bytes(double bytes);

/// Formats nanoseconds with an adaptive unit (ns/us/ms/s).
std::string fmt_time_ns(double ns);

}  // namespace hpc::sim
