#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hpc::sim {

void RunningStats::push(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void Sampler::push(double x) {
  values_.push_back(x);
  stats_.push(x);
  sorted_ = false;
}

double Sampler::percentile(double p) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    sorted_values_ = values_;
    std::sort(sorted_values_.begin(), sorted_values_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Linear interpolation between closest ranks.
  const double rank = clamped / 100.0 * static_cast<double>(sorted_values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_values_[lo] * (1.0 - frac) + sorted_values_[hi] * frac;
}

LogHistogram::LogHistogram(int bins_per_decade, double min_value, double max_value)
    : bins_per_decade_(bins_per_decade),
      min_value_(min_value),
      log_min_(std::log10(min_value)) {
  const double decades = std::log10(max_value) - log_min_;
  counts_.assign(static_cast<std::size_t>(decades * bins_per_decade) + 2, 0);
}

std::size_t LogHistogram::bin_for(double value) const {
  if (value <= min_value_) return 0;
  const double pos = (std::log10(value) - log_min_) * bins_per_decade_;
  const auto bin = static_cast<std::size_t>(pos) + 1;
  return std::min(bin, counts_.size() - 1);
}

double LogHistogram::bin_lower(std::size_t bin) const {
  if (bin == 0) return 0.0;
  return std::pow(10.0, log_min_ + static_cast<double>(bin - 1) / bins_per_decade_);
}

void LogHistogram::record(double value) {
  ++counts_[bin_for(value)];
  ++total_;
  sum_ += value;
}

void LogHistogram::merge(const LogHistogram& other) {
  const bool same_binning = bins_per_decade_ == other.bins_per_decade_ &&
                            counts_.size() == other.counts_.size() &&
                            // archlint: allow(float-eq): comparing stored
                            // constructor parameters, not computed values
                            min_value_ == other.min_value_;
  if (same_binning) {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    return;
  }
  // Mismatched binning: re-bin each of other's bins at its representative
  // value (geometric midpoint, matching percentile()'s reconstruction).
  // The exact running sum carries over unchanged, so count/mean stay exact
  // and only percentiles degrade to bin resolution.
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    if (other.counts_[i] == 0) continue;
    const double lo = other.bin_lower(i);
    const double hi = other.bin_lower(i + 1);
    const double rep = lo > 0.0 ? std::sqrt(lo * hi) : hi / 2.0;
    counts_[bin_for(rep)] += other.counts_[i];
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

double LogHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target && counts_[i] > 0) {
      // Midpoint of the bin (geometric for log bins).
      const double lo = bin_lower(i);
      const double hi = bin_lower(i + 1);
      return lo > 0.0 ? std::sqrt(lo * hi) : hi / 2.0;
    }
  }
  return bin_lower(counts_.size());
}

void TimeSeries::add(double t, double value) {
  if (t < 0.0) return;
  const auto bucket = static_cast<std::size_t>(t / width_);
  if (bucket >= values_.size()) values_.resize(bucket + 1, 0.0);
  values_[bucket] += value;
}

double TimeSeries::peak() const {
  double best = 0.0;
  for (double v : values_) best = std::max(best, v);
  return best;
}

double TimeSeries::total() const {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum;
}

}  // namespace hpc::sim
