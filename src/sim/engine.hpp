#pragma once

#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

/// \file engine.hpp
/// Co-simulation layer: one shared clock for every substrate.
///
/// The paper's archipelago is *tightly connected* islands; before this layer
/// each substrate (sched::ClusterSim, fed::FederationSim, net::FlowSim,
/// market::Exchange, edge::StreamSim) simulated its island on a private batch
/// loop with an ad-hoc clock, so no cross-substrate experiment could exchange
/// events on one timeline.  `Engine` owns exactly one `Simulator` — the one
/// clock — and `Component` is the contract a substrate implements to run on
/// it:
///
///  - **Clock ownership.**  The Engine's kernel is the only clock.  A
///    component never advances time itself; it schedules handlers and reads
///    `now()`.  Components that internally track fractional-nanosecond time
///    (FlowSim's fluid solver) keep the precise value as component state but
///    must only *schedule* through the kernel — and never into the past
///    (enforced by a debug assert in schedule_at; the release kernel clamps).
///  - **RNG stream tree.**  Each component draws from named child streams of
///    the engine seed (`rng("fed.site.3")`), so adding or reordering one
///    component's draws can never perturb another's stream.
///  - **Composition.**  Attach any number of components, then `run()` to
///    quiescence (or `run_until` a horizon).  The kernel's FNV-1a event
///    digest doubles as the coupled scenario's determinism witness, and any
///    `obs::SimulatorProbe` attached to the kernel observes every substrate
///    for free.
///
/// Batch compatibility: every substrate keeps its `run()` API as a thin
/// wrapper that constructs a private Engine, attaches itself, and drives it —
/// bit-identical to the retired substrate-owned loops (pinned by
/// tests/test_cosim_golden.cpp).

namespace hpc::sim {

class Engine;

/// A simulation substrate that runs on a shared Engine.
///
/// Lifecycle: `Engine::attach` wires the back-pointer and calls `on_attach`,
/// where the component schedules its initial events; `Engine::detach` (or
/// Engine destruction) calls `on_detach`.  Handlers a component schedules
/// must not outlive it: detach before destroying a component whose events
/// may still be queued, or drain the engine first.
class Component {
 public:
  Component() = default;
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;
  virtual ~Component();

  /// Stable identity of this component: names its obs tracks and its child
  /// RNG streams (e.g. "net.flowsim").
  [[nodiscard]] virtual std::string_view component_name() const noexcept = 0;

  /// Called by Engine::attach after the back-pointer is set.  Schedule the
  /// component's initial events here.
  virtual void on_attach(Engine& engine) = 0;

  /// Called by Engine::detach (and Engine teardown) before the back-pointer
  /// is cleared.  Default: nothing.
  virtual void on_detach(Engine& engine);

  /// Engine this component is attached to (nullptr when detached).
  [[nodiscard]] Engine* engine() const noexcept { return engine_; }
  [[nodiscard]] bool attached() const noexcept { return engine_ != nullptr; }

 protected:
  /// Moves are permitted only while detached: an attached component's address
  /// is registered with its engine and queued handlers capture it.
  Component(Component&& other) noexcept {
    assert(other.engine_ == nullptr && "sim::Component: cannot move while attached");
    (void)other;
  }
  Component& operator=(Component&& other) noexcept {
    assert(engine_ == nullptr && other.engine_ == nullptr &&
           "sim::Component: cannot move while attached");
    (void)other;
    return *this;
  }

 private:
  friend class Engine;
  Engine* engine_ = nullptr;
};

/// Owns the one shared discrete-event kernel and the attached components.
class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1) : root_(seed) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// The shared kernel.  Exposed for probes (`kernel().set_probe(...)`) and
  /// read-only inspection; components should schedule through the Engine so
  /// the no-past contract is checked.
  [[nodiscard]] Simulator& kernel() noexcept { return sim_; }
  [[nodiscard]] const Simulator& kernel() const noexcept { return sim_; }

  /// Current shared simulated time.
  [[nodiscard]] TimeNs now() const noexcept { return sim_.now(); }

  /// Seed at the root of the engine's RNG stream tree.
  [[nodiscard]] std::uint64_t seed() const noexcept { return root_.seed(); }

  /// Independent generator for the named child stream of the engine seed.
  /// Stable: a function of (seed, label) only — see Rng::child_seed.
  [[nodiscard]] Rng rng(std::string_view stream) const { return root_.child(stream); }

  /// Seed of the named child stream (for substrates that take a raw seed).
  [[nodiscard]] std::uint64_t stream_seed(std::string_view stream) const {
    return root_.child_seed(stream);
  }

  /// Attaches \p component and calls its on_attach.  The component is not
  /// owned and must stay alive until detached (or the engine is destroyed).
  void attach(Component& component);

  /// Detaches \p component (no-op if it is not attached to this engine).
  void detach(Component& component);

  [[nodiscard]] const std::vector<Component*>& components() const noexcept {
    return components_;
  }

  /// Schedules \p fn at absolute shared time \p at.  Scheduling into the
  /// past is a component bug: debug builds assert, release builds clamp to
  /// now (the kernel's monotonicity guarantee).
  void schedule_at(TimeNs at, Simulator::Handler fn) {
    assert(at >= sim_.now() && "sim::Engine: component scheduled into the past");
    sim_.schedule_at(at, std::move(fn));
  }

  /// Schedules \p fn \p delay nanoseconds from now.
  void schedule_in(TimeNs delay, Simulator::Handler fn) {
    sim_.schedule_in(delay, std::move(fn));
  }

  /// Runs the shared kernel to quiescence (empty queue or stop()).
  void run() { sim_.run(); }

  /// Runs until shared time reaches \p until; later events stay queued.
  void run_until(TimeNs until) { sim_.run_until(until); }

  /// Kernel determinism digest over the executed event stream — the coupled
  /// scenario's single determinism witness.
  [[nodiscard]] std::uint64_t digest() const noexcept { return sim_.event_digest(); }

  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return sim_.events_executed();
  }

 private:
  Simulator sim_;
  Rng root_;  ///< never drawn from directly; only child streams are handed out
  std::vector<Component*> components_;
};

}  // namespace hpc::sim
