#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string_view>
#include <vector>

/// \file rng.hpp
/// Deterministic, explicitly-seeded random number generation.
///
/// Every stochastic component in Archipelago draws from an Rng it is handed,
/// never from global state, so that every experiment in EXPERIMENTS.md is
/// reproducible bit-for-bit from its seed.

namespace hpc::sim {

/// Seeded pseudo-random generator with the distributions the simulators need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : seed_(seed), engine_(seed) {}

  /// The seed this generator was constructed with (not the current engine
  /// state): the root of its named child-stream tree.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Exponential variate with the given mean (not rate).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal variate.
  double normal(double mu, double sigma) {
    return std::normal_distribution<double>(mu, sigma)(engine_);
  }

  /// Log-normal variate parameterized by the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Pareto variate with minimum xm > 0 and shape alpha > 0 (heavy tail).
  double pareto(double xm, double alpha);

  /// Zipf-distributed rank in [1, n] with exponent s >= 0 (s = 0 is uniform).
  /// Uses inverse-CDF on the precomputable harmonic weights; O(log n) amortized
  /// after an O(n) table build, the table is rebuilt when (n, s) change.
  std::size_t zipf(std::size_t n, double s);

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }

  /// Returns an independent generator forked from this one (stable stream split).
  Rng fork() { return Rng(engine_()); }

  /// Seed of the named child stream \p label: FNV-1a over the construction
  /// seed and the label bytes, finalized with a splitmix64 mix.  Purely a
  /// function of (seed, label) — never of how many variates have been drawn —
  /// so a substream named "fed.site.3" stays bit-stable no matter how the
  /// surrounding code reorders its own draws.  This is the sanctioned
  /// replacement for ad-hoc `seed + k` constructions.
  [[nodiscard]] std::uint64_t child_seed(std::string_view label) const noexcept;

  /// Static form of child_seed: the named child stream of an arbitrary base
  /// seed, without constructing a generator.  This is how code outside
  /// src/sim (which archlint rule D12 bars from minting Rng roots) derives
  /// per-replica engine seeds — e.g. the campaign runner maps each replica's
  /// content-addressed stream label to `child_seed(campaign_seed, label)`.
  [[nodiscard]] static std::uint64_t child_seed(std::uint64_t base_seed,
                                                std::string_view label) noexcept;

  /// Independent generator for the named child stream (see child_seed).
  [[nodiscard]] Rng child(std::string_view label) const { return Rng(child_seed(label)); }

  /// Underlying engine access for std distributions not wrapped here.
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
  // Cached Zipf table for the last (n, s) pair requested.
  std::size_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace hpc::sim
