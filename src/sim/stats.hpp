#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

/// \file stats.hpp
/// Statistics collectors used across the simulators: streaming moments,
/// exact-percentile samplers, and memory-bounded log-binned histograms.
/// Tail latency (p99/p999) is the paper's headline interconnect metric
/// (Section II.B), so percentile support is first class.

namespace hpc::sim {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void push(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-percentile sampler: stores every value.  Fine at simulation scale
/// (millions of samples); use LogHistogram when memory must stay bounded.
class Sampler {
 public:
  void push(double x);
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return stats_.stddev(); }
  [[nodiscard]] double min() const noexcept { return stats_.min(); }
  [[nodiscard]] double max() const noexcept { return stats_.max(); }
  [[nodiscard]] double sum() const noexcept { return stats_.sum(); }

  /// Percentile p in [0, 100].  Sorts lazily; repeated queries are cheap.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }

  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

 private:
  std::vector<double> values_;
  RunningStats stats_;
  mutable bool sorted_ = true;
  mutable std::vector<double> sorted_values_;
};

/// Log-binned histogram over (0, +inf) with bounded memory and approximate
/// percentiles (relative error bounded by the per-decade resolution).
class LogHistogram {
 public:
  /// \param bins_per_decade  resolution; 20 gives ~12% worst-case bin width.
  explicit LogHistogram(int bins_per_decade = 20, double min_value = 1e-9,
                        double max_value = 1e18);

  void record(double value);

  /// Folds \p other into this histogram.  With identical binning (same
  /// bins_per_decade and value range) the merge is exact — bin counts add —
  /// and merging per-replica histograms in a fixed order is deterministic.
  /// With mismatched binning it degrades gracefully: other's bins are
  /// re-recorded at their representative (geometric-midpoint) values, which
  /// keeps count/mean exact and percentiles within bin resolution.
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] int bins_per_decade() const noexcept { return bins_per_decade_; }
  [[nodiscard]] double mean() const noexcept {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }
  [[nodiscard]] double percentile(double p) const;

 private:
  [[nodiscard]] std::size_t bin_for(double value) const;
  [[nodiscard]] double bin_lower(std::size_t bin) const;

  int bins_per_decade_;
  double min_value_;
  double log_min_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Uniform time-bucketed counter, e.g. bytes-per-interval over a run.
class TimeSeries {
 public:
  explicit TimeSeries(double bucket_width) : width_(bucket_width) {}

  void add(double t, double value);
  [[nodiscard]] std::size_t buckets() const noexcept { return values_.size(); }
  [[nodiscard]] double bucket_width() const noexcept { return width_; }
  /// Sum recorded into bucket i (0 if never touched).
  [[nodiscard]] double at(std::size_t i) const { return i < values_.size() ? values_[i] : 0.0; }
  [[nodiscard]] double peak() const;
  [[nodiscard]] double total() const;

 private:
  double width_;
  std::vector<double> values_;
};

}  // namespace hpc::sim
