#include "sim/engine.hpp"

#include <algorithm>

namespace hpc::sim {

Component::~Component() {
  // A component must not die attached: its queued handlers would dangle.
  // Detach defensively (without the virtual on_detach, which is gone by now).
  if (engine_ != nullptr) engine_->detach(*this);
}

void Component::on_detach(Engine& engine) { (void)engine; }

Engine::~Engine() {
  // Reverse attach order, mirroring construction/teardown conventions.
  while (!components_.empty()) detach(*components_.back());
}

void Engine::attach(Component& component) {
  assert(component.engine_ == nullptr && "sim::Engine: component already attached");
  if (component.engine_ != nullptr) return;
  component.engine_ = this;
  components_.push_back(&component);
  component.on_attach(*this);
}

void Engine::detach(Component& component) {
  if (component.engine_ != this) return;
  const auto it = std::find(components_.begin(), components_.end(), &component);
  if (it != components_.end()) {
    component.on_detach(*this);
    components_.erase(it);
  }
  component.engine_ = nullptr;
}

}  // namespace hpc::sim
