#pragma once

#include <cstdint>

/// \file time.hpp
/// Simulated-time representation shared by every Archipelago substrate.
///
/// Simulated time is an unsigned count of nanoseconds since simulation start.
/// Nanosecond granularity spans the whole range the paper cares about: from
/// CXL-class memory-fabric hops (~100 ns) up to multi-day federated job
/// campaigns (~10^14 ns), all comfortably inside 64 bits.

namespace hpc::sim {

/// Simulated time in nanoseconds.
using TimeNs = std::uint64_t;

/// Signed time delta in nanoseconds (for differences that may be negative).
using TimeDeltaNs = std::int64_t;

inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1'000;
inline constexpr TimeNs kMillisecond = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;
inline constexpr TimeNs kMinute = 60 * kSecond;
inline constexpr TimeNs kHour = 60 * kMinute;

/// Converts simulated nanoseconds to floating-point seconds.
[[nodiscard]] constexpr double to_seconds(TimeNs t) noexcept {
  return static_cast<double>(t) / 1e9;
}

/// Converts floating-point seconds to simulated nanoseconds (clamped at 0).
[[nodiscard]] constexpr TimeNs from_seconds(double s) noexcept {
  return s <= 0.0 ? 0 : static_cast<TimeNs>(s * 1e9 + 0.5);
}

/// Converts simulated nanoseconds to floating-point microseconds.
[[nodiscard]] constexpr double to_micros(TimeNs t) noexcept {
  return static_cast<double>(t) / 1e3;
}

/// Converts simulated nanoseconds to floating-point milliseconds.
[[nodiscard]] constexpr double to_millis(TimeNs t) noexcept {
  return static_cast<double>(t) / 1e6;
}

}  // namespace hpc::sim
