#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

/// \file audit.hpp
/// Runtime determinism auditor.
///
/// `tools/archlint` enforces the determinism contract statically (no ambient
/// randomness, no iteration-order-unstable containers, typed simulated time);
/// this is the runtime half: replay a scenario from the same seed and assert
/// that the executed event streams are bit-identical, using the simulator's
/// FNV-1a `(time, sequence)` digest as the witness.  Any divergence — a stray
/// wall-clock read, an address-dependent tie-break, an uninitialized value —
/// shows up as a digest mismatch.

namespace hpc::sim {

/// Observables of one audited run.
struct AuditRun {
  std::uint64_t digest = 0;    ///< Simulator::event_digest() after the run
  std::uint64_t events = 0;    ///< events executed
  TimeNs end_time = 0;         ///< simulated clock at completion
};

/// Verdict of a determinism audit.
struct AuditReport {
  std::vector<AuditRun> runs;
  bool deterministic = false;  ///< all runs produced identical observables

  /// Digest of the first run (0 if no runs executed).
  [[nodiscard]] std::uint64_t digest() const noexcept {
    return runs.empty() ? 0 : runs.front().digest;
  }
};

/// Replays a simulation scenario and checks that repeated runs from one seed
/// are indistinguishable.
class DeterminismAuditor {
 public:
  /// A scenario seeds its event graph onto a fresh Simulator, drawing every
  /// random variate from the Rng it is handed (never ambient state).  The
  /// auditor runs the simulator to completion after the scenario returns;
  /// handlers may keep scheduling further events.
  using Scenario = std::function<void(Simulator&, Rng&)>;

  explicit DeterminismAuditor(Scenario scenario) : scenario_(std::move(scenario)) {}

  /// Runs the scenario \p runs times, each on a fresh Simulator with a fresh
  /// Rng(\p seed).  Deterministic iff every run's digest, event count, and
  /// end time are identical.
  [[nodiscard]] AuditReport audit(std::uint64_t seed, int runs = 2) const;

 private:
  Scenario scenario_;
};

}  // namespace hpc::sim
