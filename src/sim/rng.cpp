#include "sim/rng.hpp"

#include <algorithm>
#include <cmath>

namespace hpc::sim {

std::uint64_t Rng::child_seed(std::uint64_t base_seed, std::string_view label) noexcept {
  // FNV-1a over the root seed's eight bytes, then the label bytes.
  std::uint64_t h = 14695981039346656037ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (base_seed >> (8 * i)) & 0xffULL;
    h *= kPrime;
  }
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= kPrime;
  }
  // splitmix64 finalizer: spreads the hash over the full 64-bit space so
  // sibling labels ("site.1" vs "site.2") land in uncorrelated mt19937_64
  // seedings.
  std::uint64_t z = h + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::child_seed(std::string_view label) const noexcept {
  return child_seed(seed_, label);
}

double Rng::pareto(double xm, double alpha) {
  // Inverse CDF: xm / U^{1/alpha}.
  const double u = std::max(uniform(0.0, 1.0), 1e-300);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) return 0;
  // archlint: allow(float-eq): cache key check; s is stored, not computed
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k), s);
      zipf_cdf_[k - 1] = acc;
    }
    const double total = zipf_cdf_.back();
    for (double& v : zipf_cdf_) v /= total;
  }
  const double u = uniform(0.0, 1.0);
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  const auto rank = static_cast<std::size_t>(it - zipf_cdf_.begin()) + 1;
  return std::min(rank, n);
}

}  // namespace hpc::sim
