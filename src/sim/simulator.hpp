#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

/// \file simulator.hpp
/// Deterministic discrete-event simulation kernel.
///
/// Ties are broken by insertion order, so runs are reproducible regardless of
/// how many events share a timestamp.  All substrates (fabric, scheduler,
/// federation, market, edge) run on this kernel.
///
/// The kernel also maintains a running FNV-1a digest over the executed event
/// stream — every `(time, sequence)` pair folded in execution order — as the
/// runtime witness of the determinism contract: two runs of the same scenario
/// from the same seed must produce bit-identical digests (enforced by
/// `sim::DeterminismAuditor` in audit.hpp and by `tools/archlint` statically).

namespace hpc::sim {

/// Kernel observation hooks (the runtime seam `hpc::obs` plugs into).
///
/// The kernel stays observability-agnostic: it only knows this tiny
/// interface, and `obs::SimulatorProbe` translates the callbacks into trace
/// spans, gauges, and digest-checkpoint instants.  With no probe attached
/// the dispatch loop pays a single predictable branch per event.  Probes
/// must be passive — a probe that schedules events or mutates simulation
/// state breaks the determinism contract it exists to witness.
class SimProbe {
 public:
  virtual ~SimProbe() = default;
  /// Called before an event's handler runs.  \p pending is the queue depth
  /// excluding the event being dispatched.
  virtual void on_event(TimeNs at, std::uint64_t seq, std::size_t pending) = 0;
  /// Called after the event's handler returns.
  virtual void on_event_done(TimeNs at, std::uint64_t seq) = 0;
  /// Called every checkpoint interval with the running event-stream digest.
  virtual void on_checkpoint(TimeNs at, std::uint64_t digest,
                             std::uint64_t executed) = 0;
};

/// Discrete-event simulator with a monotonically advancing clock.
class Simulator {
 public:
  using Handler = std::function<void()>;

  /// Attaches (or detaches, with nullptr) an observation probe.  Every
  /// \p checkpoint_interval executed events the probe additionally receives
  /// the running FNV-1a digest (0 disables checkpoints).  The probe is not
  /// owned and must outlive the simulator's runs.
  void set_probe(SimProbe* probe, std::uint64_t checkpoint_interval = 0) noexcept {
    probe_ = probe;
    checkpoint_interval_ = checkpoint_interval;
  }
  [[nodiscard]] SimProbe* probe() const noexcept { return probe_; }

  /// Current simulated time.
  [[nodiscard]] TimeNs now() const noexcept { return now_; }

  /// Schedules \p fn at absolute time \p at (clamped to now if in the past).
  void schedule_at(TimeNs at, Handler fn);

  /// Schedules \p fn \p delay nanoseconds from now.
  void schedule_in(TimeNs delay, Handler fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Schedules \p fn every \p period, starting at now + \p period, until it
  /// returns false or the simulation stops.
  void schedule_every(TimeNs period, std::function<bool()> fn);

  /// Runs until the event queue is empty or stop() is called.
  void run();

  /// Runs until simulated time reaches \p until (events after it stay queued).
  void run_until(TimeNs until);

  /// Executes at most \p n events; returns the number actually executed.
  std::size_t step(std::size_t n = 1);

  /// Stops the current run() after the in-flight event handler returns.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// FNV-1a digest over the executed event stream: each event's
  /// `(time, sequence)` pair is folded in, in execution order.  Identical
  /// scenarios replayed from identical seeds must yield identical digests;
  /// any divergence means the determinism contract was broken.
  [[nodiscard]] std::uint64_t event_digest() const noexcept { return digest_; }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
  static constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

  /// Folds one 64-bit value into the digest, byte by byte (FNV-1a).
  [[nodiscard]] static constexpr std::uint64_t fnv1a_step(std::uint64_t h,
                                                          std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= kFnvPrime;
    }
    return h;
  }

  bool pop_and_run();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t digest_ = kFnvOffset;
  bool stopped_ = false;
  SimProbe* probe_ = nullptr;
  std::uint64_t checkpoint_interval_ = 0;
};

}  // namespace hpc::sim
