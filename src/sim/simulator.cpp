#include "sim/simulator.hpp"

#include <utility>

namespace hpc::sim {

void Simulator::schedule_at(TimeNs at, Handler fn) {
  queue_.push(Event{at < now_ ? now_ : at, next_seq_++, std::move(fn)});
}

void Simulator::schedule_every(TimeNs period, std::function<bool()> fn) {
  schedule_in(period, [this, period, fn = std::move(fn)]() mutable {
    if (fn()) schedule_every(period, std::move(fn));
  });
}

bool Simulator::pop_and_run() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent, so
  // copy the handler.  Handlers are cheap std::functions at simulation scale.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  digest_ = fnv1a_step(fnv1a_step(digest_, ev.at), ev.seq);
  if (probe_ != nullptr) {
    probe_->on_event(ev.at, ev.seq, queue_.size());
    ev.fn();
    probe_->on_event_done(ev.at, ev.seq);
    if (checkpoint_interval_ != 0 && executed_ % checkpoint_interval_ == 0)
      probe_->on_checkpoint(now_, digest_, executed_);
  } else {
    ev.fn();
  }
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && pop_and_run()) {
  }
}

void Simulator::run_until(TimeNs until) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().at <= until) {
    pop_and_run();
  }
  if (now_ < until) now_ = until;
}

std::size_t Simulator::step(std::size_t n) {
  std::size_t done = 0;
  while (done < n && pop_and_run()) ++done;
  return done;
}

}  // namespace hpc::sim
