#include "sim/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hpc::sim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int u = 0;
  while (std::abs(bytes) >= 1000.0 && u < 5) {
    bytes /= 1000.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
  return buf;
}

std::string fmt_time_ns(double ns) {
  char buf[64];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
  }
  return buf;
}

}  // namespace hpc::sim
