#include "sim/audit.hpp"

namespace hpc::sim {

AuditReport DeterminismAuditor::audit(std::uint64_t seed, int runs) const {
  AuditReport report;
  report.runs.reserve(static_cast<std::size_t>(runs > 0 ? runs : 0));
  for (int r = 0; r < runs; ++r) {
    Simulator sim;
    Rng rng(seed);
    scenario_(sim, rng);
    sim.run();
    report.runs.push_back(AuditRun{sim.event_digest(), sim.events_executed(), sim.now()});
  }
  report.deterministic = !report.runs.empty();
  for (const AuditRun& run : report.runs) {
    const AuditRun& first = report.runs.front();
    if (run.digest != first.digest || run.events != first.events ||
        run.end_time != first.end_time)
      report.deterministic = false;
  }
  return report;
}

}  // namespace hpc::sim
