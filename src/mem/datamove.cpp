#include "mem/datamove.hpp"

namespace hpc::mem {

namespace {
constexpr double kGb = 1e9;
}

double copy_pipeline_ns(const FabricPool& pool, double input_gb,
                        const std::vector<PipelineStage>& stages) {
  double t = 0.0;
  double gb = input_gb;
  for (const PipelineStage& s : stages) {
    t += bulk_read_ns(pool, gb * kGb);            // fetch input
    t += s.compute_ns_per_gb * gb;                // process locally
    const double out_gb = gb * s.selectivity;
    t += bulk_read_ns(pool, out_gb * kGb);        // write result back
    gb = out_gb;
  }
  return t;
}

double memory_driven_pipeline_ns(const FabricPool& pool, double input_gb,
                                 const std::vector<PipelineStage>& stages) {
  double t = 0.0;
  double gb = input_gb;
  for (const PipelineStage& s : stages) {
    // Stream once over the fabric; intermediates stay in the pool by
    // reference, so no write-back transfer.
    t += bulk_read_ns(pool, gb * kGb);
    t += s.compute_ns_per_gb * gb;
    gb *= s.selectivity;
  }
  return t;
}

double copy_pipeline_bytes(double input_gb, const std::vector<PipelineStage>& stages) {
  double bytes = 0.0;
  double gb = input_gb;
  for (const PipelineStage& s : stages) {
    bytes += gb * kGb;
    gb *= s.selectivity;
    bytes += gb * kGb;
  }
  return bytes;
}

double memory_driven_pipeline_bytes(double input_gb,
                                    const std::vector<PipelineStage>& stages) {
  double bytes = 0.0;
  double gb = input_gb;
  for (const PipelineStage& s : stages) {
    bytes += gb * kGb;
    gb *= s.selectivity;
  }
  return bytes;
}

}  // namespace hpc::mem
