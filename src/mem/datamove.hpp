#pragma once

#include <vector>

#include "mem/fabric.hpp"
#include "mem/tier.hpp"

/// \file datamove.hpp
/// Data-movement accounting and the memory-driven-computing comparison
/// (Section III.D: "moving data across hierarchies of computation and
/// memory/storage has a dominant cost"; [24][25][26] revisit computing in
/// memory).  Experiment C12 uses these models.

namespace hpc::mem {

/// One stage of a processing pipeline over a shared dataset.
struct PipelineStage {
  double compute_ns_per_gb = 1e6;  ///< processing time per GB of input
  double selectivity = 1.0;        ///< output bytes / input bytes
};

/// Copy-based pipeline: every stage reads its input from the pool, processes
/// locally, and writes its output back (2 transfers per stage).
double copy_pipeline_ns(const FabricPool& pool, double input_gb,
                        const std::vector<PipelineStage>& stages);

/// Memory-driven pipeline: data stays in the fabric-attached pool; stages
/// operate in place over the fabric (streaming read once per stage, no
/// write-back of intermediates — stages pass data by reference).
double memory_driven_pipeline_ns(const FabricPool& pool, double input_gb,
                                 const std::vector<PipelineStage>& stages);

/// Bytes moved over the fabric by each variant (for the bytes-moved column).
double copy_pipeline_bytes(double input_gb, const std::vector<PipelineStage>& stages);
double memory_driven_pipeline_bytes(double input_gb,
                                    const std::vector<PipelineStage>& stages);

}  // namespace hpc::mem
