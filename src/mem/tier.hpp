#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file tier.hpp
/// Memory/storage tiers.  The paper's Figure 2 design "separates persistent
/// memory, the first storage tier, from processing" — tiers here carry the
/// latency/bandwidth/capacity/cost points that argument rests on.

namespace hpc::mem {

/// Technology class of a memory tier.
enum class TierKind : std::uint8_t { kHbm, kDram, kPmem, kSsd, kHdd };

std::string_view name_of(TierKind k) noexcept;

/// Datasheet of one tier.
struct MemoryTier {
  TierKind kind = TierKind::kDram;
  double latency_ns = 90.0;     ///< random-access latency
  double bandwidth_gbs = 200.0; ///< streaming bandwidth
  double capacity_gb = 512.0;
  double cost_per_gb = 4.0;
  bool byte_addressable = true; ///< load/store vs block I/O
  bool persistent = false;
};

/// Calibrated tier datasheets (2020-class parts).
MemoryTier hbm_tier();
MemoryTier dram_tier();
MemoryTier pmem_tier();   ///< fabric-attachable persistent memory
MemoryTier ssd_tier();

/// Streaming access time for \p bytes resident in \p tier.
double stream_time_ns(const MemoryTier& tier, double bytes) noexcept;

/// Random access time for \p accesses cacheline-sized touches.
double random_access_time_ns(const MemoryTier& tier, double accesses) noexcept;

/// An ordered local hierarchy (fastest first) with capacity-aware placement.
class Hierarchy {
 public:
  explicit Hierarchy(std::vector<MemoryTier> tiers) : tiers_(std::move(tiers)) {}

  const std::vector<MemoryTier>& tiers() const noexcept { return tiers_; }

  /// Index of the fastest tier that can hold \p gb (falls through to the
  /// last tier if nothing fits).
  std::size_t place(double gb) const noexcept;

  /// Streaming time for \p bytes placed greedily by place().
  double stream_time_ns(double bytes) const noexcept;

  double total_capacity_gb() const noexcept;
  double total_cost_usd() const noexcept;

 private:
  std::vector<MemoryTier> tiers_;
};

}  // namespace hpc::mem
