#include "mem/fabric.hpp"

#include <algorithm>

namespace hpc::mem {

double load_latency_ns(const FabricPool& pool) noexcept {
  const net::LinkType t = net::link_type(pool.link);
  // Round trip per hop (request + response) plus media access.
  return 2.0 * t.latency_ns * pool.fabric_hops + pool.tier.latency_ns;
}

double stream_bandwidth_gbs(const FabricPool& pool) noexcept {
  const net::LinkType t = net::link_type(pool.link);
  return std::min(t.bandwidth_gbs, pool.tier.bandwidth_gbs);
}

double bulk_read_ns(const FabricPool& pool, double bytes) noexcept {
  if (bytes <= 0.0) return 0.0;
  return load_latency_ns(pool) + bytes / stream_bandwidth_gbs(pool);
}

double pointer_chase_slowdown(const FabricPool& pool) noexcept {
  const MemoryTier local = dram_tier();
  return load_latency_ns(pool) / local.latency_ns;
}

}  // namespace hpc::mem
