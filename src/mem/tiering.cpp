#include "mem/tiering.hpp"

#include <algorithm>
#include <cmath>

namespace hpc::mem {

std::string_view name_of(TieringPolicy p) noexcept {
  switch (p) {
    case TieringPolicy::kStatic: return "static";
    case TieringPolicy::kHotCold: return "hot-cold";
  }
  return "static";
}

TieringOutcome evaluate_tiering(const MemoryTier& fast, const MemoryTier& slow,
                                double working_set_gb, double fast_capacity_gb,
                                double zipf_s, TieringPolicy policy,
                                std::int64_t pages) {
  TieringOutcome out;
  const double fit = std::clamp(fast_capacity_gb / working_set_gb, 0.0, 1.0);
  const auto fast_pages = static_cast<std::int64_t>(fit * static_cast<double>(pages));

  if (policy == TieringPolicy::kStatic || zipf_s <= 0.0) {
    // Without popularity knowledge every page is equally likely to be fast.
    out.fast_hit_rate = fit;
  } else {
    // Zipf mass of the hottest `fast_pages` pages.
    double hot_mass = 0.0;
    double total_mass = 0.0;
    for (std::int64_t k = 1; k <= pages; ++k) {
      const double mass = 1.0 / std::pow(static_cast<double>(k), zipf_s);
      total_mass += mass;
      if (k <= fast_pages) hot_mass += mass;
    }
    out.fast_hit_rate = total_mass > 0.0 ? hot_mass / total_mass : 0.0;
  }

  const double fast_ns = fast.latency_ns;
  const double slow_ns = slow.latency_ns;
  out.mean_access_ns = out.fast_hit_rate * fast_ns + (1.0 - out.fast_hit_rate) * slow_ns;
  out.slowdown_vs_all_fast = out.mean_access_ns / fast_ns;
  return out;
}

}  // namespace hpc::mem
