#include "mem/tier.hpp"

#include <string_view>

namespace hpc::mem {

std::string_view name_of(TierKind k) noexcept {
  switch (k) {
    case TierKind::kHbm: return "hbm";
    case TierKind::kDram: return "dram";
    case TierKind::kPmem: return "pmem";
    case TierKind::kSsd: return "ssd";
    case TierKind::kHdd: return "hdd";
  }
  return "dram";
}

MemoryTier hbm_tier() { return {TierKind::kHbm, 110.0, 2'000.0, 80.0, 25.0, true, false}; }
MemoryTier dram_tier() { return {TierKind::kDram, 90.0, 205.0, 512.0, 4.0, true, false}; }
MemoryTier pmem_tier() { return {TierKind::kPmem, 300.0, 40.0, 4'096.0, 1.5, true, true}; }
MemoryTier ssd_tier() { return {TierKind::kSsd, 80'000.0, 7.0, 16'384.0, 0.1, false, true}; }

double stream_time_ns(const MemoryTier& tier, double bytes) noexcept {
  if (bytes <= 0.0) return 0.0;
  return tier.latency_ns + bytes / tier.bandwidth_gbs;
}

double random_access_time_ns(const MemoryTier& tier, double accesses) noexcept {
  // Allow modest overlap of outstanding requests (MLP of ~4 for DRAM-class).
  const double overlap = tier.byte_addressable ? 4.0 : 1.0;
  return accesses * tier.latency_ns / overlap;
}

std::size_t Hierarchy::place(double gb) const noexcept {
  for (std::size_t i = 0; i < tiers_.size(); ++i)
    if (gb <= tiers_[i].capacity_gb) return i;
  return tiers_.empty() ? 0 : tiers_.size() - 1;
}

double Hierarchy::stream_time_ns(double bytes) const noexcept {
  if (tiers_.empty()) return 0.0;
  return mem::stream_time_ns(tiers_[place(bytes / 1e9)], bytes);
}

double Hierarchy::total_capacity_gb() const noexcept {
  double total = 0.0;
  for (const auto& t : tiers_) total += t.capacity_gb;
  return total;
}

double Hierarchy::total_cost_usd() const noexcept {
  double total = 0.0;
  for (const auto& t : tiers_) total += t.capacity_gb * t.cost_per_gb;
  return total;
}

}  // namespace hpc::mem
