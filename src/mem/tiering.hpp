#pragma once

#include <cstdint>
#include <string_view>

#include "mem/tier.hpp"

/// \file tiering.hpp
/// Multi-tier placement policies (paper Section III.D: data-centric runtimes
/// "map more easily to complex, multi-level, memory hierarchies").  A working
/// set with skewed (Zipf) page popularity is split between a small fast tier
/// and a large slow tier; the policy decides which pages live where.

namespace hpc::mem {

/// Placement policy for the fast tier.
enum class TieringPolicy : std::uint8_t {
  kStatic,   ///< pages placed without popularity knowledge (uniform random)
  kHotCold,  ///< popularity-aware: the hottest pages occupy the fast tier
};

std::string_view name_of(TieringPolicy p) noexcept;

/// Outcome of running an access stream against a two-tier placement.
struct TieringOutcome {
  double fast_hit_rate = 0.0;       ///< fraction of accesses served fast
  double mean_access_ns = 0.0;      ///< expected random-access latency
  double slowdown_vs_all_fast = 1.0;///< vs an (unaffordable) all-fast system
};

/// Evaluates a placement analytically from sampled Zipf access mass.
/// \param fast, slow       the two tiers
/// \param working_set_gb   total data
/// \param fast_capacity_gb capacity of the fast tier (< working set)
/// \param zipf_s           access skew (0 = uniform; ~1 typical)
/// \param pages            page granularity count for the popularity model
TieringOutcome evaluate_tiering(const MemoryTier& fast, const MemoryTier& slow,
                                double working_set_gb, double fast_capacity_gb,
                                double zipf_s, TieringPolicy policy,
                                std::int64_t pages = 4'096);

}  // namespace hpc::mem
