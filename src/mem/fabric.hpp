#pragma once

#include "mem/tier.hpp"
#include "net/link.hpp"

/// \file fabric.hpp
/// Fabric-attached memory (Section II.B / III.C): a memory pool reached over
/// a device-level interconnect.  Quantifies the paper's claim that "PCIe
/// latencies are far too high for memory access" while CXL/Gen-Z-class links
/// make disaggregated, globally accessible memory viable.

namespace hpc::mem {

/// A remote memory pool behind a link.
struct FabricPool {
  MemoryTier tier = pmem_tier();
  net::LinkClass link = net::LinkClass::kCxl;
  int fabric_hops = 1;  ///< switches traversed to reach the pool
};

/// Latency of one dependent load/store (cacheline): round trip over the link
/// per hop plus the media latency.  This is what pointer-chasing sees.
double load_latency_ns(const FabricPool& pool) noexcept;

/// Streaming bandwidth to the pool: min(link, media) bandwidth.
double stream_bandwidth_gbs(const FabricPool& pool) noexcept;

/// Time to stream \p bytes from the pool.
double bulk_read_ns(const FabricPool& pool, double bytes) noexcept;

/// Slowdown factor of a pointer-chasing workload using the pool instead of
/// local DRAM (ratio of dependent-load latencies).
double pointer_chase_slowdown(const FabricPool& pool) noexcept;

}  // namespace hpc::mem
