#pragma once

#include <cstddef>
#include <functional>
#include <string_view>

/// \file policy.hpp
/// `hpc::exec` — pluggable execution policies for fanning independent work
/// items across host resources.
///
/// The simulation kernel is single-threaded *by design*: its determinism
/// witness is a serial event digest, so the next order of magnitude comes
/// from scaling **across** simulations, not inside one.  An
/// `ExecutionPolicy` executes `n` independent tasks (campaign replicas,
/// each owning its private `sim::Engine`) and promises a scheduling
/// contract strong enough that *no output artifact can depend on the
/// policy chosen*:
///
///  - every index in [0, n) is executed exactly once;
///  - the replica→worker assignment is a pure function of (index, worker
///    count): worker `w` executes the indices `{i : i % workers == w}` in
///    increasing order.  There is **no work stealing** and no shared run
///    queue, so which thread runs a task — and the order of tasks within a
///    worker — never depends on timing;
///  - tasks communicate results only through their own pre-allocated slot,
///    so no synchronization order is observable.
///
/// Policies: `SerialPolicy` (the reference executor — plain index order on
/// the calling thread) and `ThreadPoolPolicy` (a fixed worker count over
/// the static assignment above).  `hardware_worker_hint()` exposes
/// `std::thread::hardware_concurrency` as a *default-only* sizing hint: it
/// is recorded in campaign reports for provenance but must never steer
/// simulation output (archlint's entropy rule D11 enforces that it cannot
/// be read anywhere else in src/).
///
/// This is the zpc/lgrtk host-policy idiom (serial / thread-pool / device
/// policies behind one interface) specialized to deterministic campaign
/// fan-out.

namespace hpc::exec {

/// One independent work item, identified by its index in [0, n).
using TaskFn = std::function<void(std::size_t)>;

/// Abstract executor for n independent tasks (see file comment for the
/// determinism contract every implementation must honor).
class ExecutionPolicy {
 public:
  ExecutionPolicy() = default;
  ExecutionPolicy(const ExecutionPolicy&) = delete;
  ExecutionPolicy& operator=(const ExecutionPolicy&) = delete;
  virtual ~ExecutionPolicy();

  /// Policy family name ("serial", "threads") for logs and bench rows.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Number of workers this policy fans across (1 for serial).
  [[nodiscard]] virtual int workers() const noexcept = 0;

  /// Executes task(0) .. task(n-1), each exactly once, under the policy's
  /// static assignment.  If a task throws, the remaining tasks on that
  /// worker's slice are skipped and, after all workers finish, the pending
  /// exception with the **lowest task index** is rethrown — deterministic
  /// regardless of which worker hit its error first.
  virtual void run(std::size_t n, const TaskFn& task) = 0;
};

/// Reference executor: index order, calling thread.
class SerialPolicy final : public ExecutionPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "serial"; }
  [[nodiscard]] int workers() const noexcept override { return 1; }
  void run(std::size_t n, const TaskFn& task) override;
};

/// Fixed-size thread pool with static round-robin assignment (worker w runs
/// indices i with i % workers == w, ascending).  Work-stealing-free: the
/// schedule is a pure function of (n, workers), so artifacts can never
/// encode a thread race.  Threads are spawned per run() call — campaign
/// replicas are long (milliseconds and up), so pool reuse is not worth a
/// persistent-thread lifecycle.
class ThreadPoolPolicy final : public ExecutionPolicy {
 public:
  /// \param workers  fixed worker count; 0 means hardware_worker_hint().
  explicit ThreadPoolPolicy(int workers = 0);

  [[nodiscard]] std::string_view name() const noexcept override { return "threads"; }
  [[nodiscard]] int workers() const noexcept override { return workers_; }
  void run(std::size_t n, const TaskFn& task) override;

 private:
  int workers_;
};

/// Default worker count: std::thread::hardware_concurrency(), clamped to at
/// least 1.  A *hint only*: campaign reports record it for provenance, but
/// nothing derived from it may influence simulation results — passing an
/// explicit worker count must produce byte-identical artifacts on every
/// machine.
[[nodiscard]] int hardware_worker_hint() noexcept;

}  // namespace hpc::exec
