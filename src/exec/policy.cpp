#include "exec/policy.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

namespace hpc::exec {

ExecutionPolicy::~ExecutionPolicy() = default;

namespace {

/// Per-worker error capture: the exception (if any) plus the task index it
/// came from, so run() can rethrow the lowest-index failure regardless of
/// wall-clock interleaving.
struct WorkerError {
  std::exception_ptr error;
  std::size_t index = 0;
};

/// Runs worker \p w's static slice {i : i % stride == w} in ascending order,
/// stopping the slice at the first throwing task.
void run_slice(std::size_t w, std::size_t stride, std::size_t n, const TaskFn& task,
               WorkerError& out) {
  for (std::size_t i = w; i < n; i += stride) {
    try {
      task(i);
    } catch (...) {
      out.error = std::current_exception();
      out.index = i;
      return;
    }
  }
}

/// Rethrows the captured exception with the lowest task index, if any.
void rethrow_first_by_index(const std::vector<WorkerError>& errors) {
  const WorkerError* first = nullptr;
  for (const WorkerError& e : errors) {
    if (e.error == nullptr) continue;
    if (first == nullptr || e.index < first->index) first = &e;
  }
  if (first != nullptr) std::rethrow_exception(first->error);
}

}  // namespace

void SerialPolicy::run(std::size_t n, const TaskFn& task) {
  std::vector<WorkerError> errors(1);
  run_slice(0, 1, n, task, errors[0]);
  rethrow_first_by_index(errors);
}

ThreadPoolPolicy::ThreadPoolPolicy(int workers)
    : workers_(workers > 0 ? workers : hardware_worker_hint()) {}

void ThreadPoolPolicy::run(std::size_t n, const TaskFn& task) {
  if (n == 0) return;
  // Excess workers beyond n would idle; the assignment below is unchanged
  // for the workers that do run, so clamping cannot alter any schedule.
  const std::size_t stride = std::min(static_cast<std::size_t>(workers_), n);
  std::vector<WorkerError> errors(stride);
  if (stride <= 1) {
    run_slice(0, 1, n, task, errors[0]);
    rethrow_first_by_index(errors);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(stride - 1);
  for (std::size_t w = 1; w < stride; ++w)
    threads.emplace_back([w, stride, n, &task, &errors] {
      run_slice(w, stride, n, task, errors[w]);
    });
  run_slice(0, stride, n, task, errors[0]);  // worker 0 is the calling thread
  for (std::thread& t : threads) t.join();
  rethrow_first_by_index(errors);
}

int hardware_worker_hint() noexcept {
  // Default-only sizing hint (see header); allowlisted for archlint D11 in
  // tools/archlint/semantics.txt — the one sanctioned read in src/.
  const unsigned hint = std::thread::hardware_concurrency();
  return hint == 0 ? 1 : static_cast<int>(hint);
}

}  // namespace hpc::exec
