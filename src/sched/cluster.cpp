#include "sched/cluster.hpp"

namespace hpc::sched {

Cluster make_homogeneous_cpu_cluster(int nodes, std::string name) {
  Cluster c;
  c.name = std::move(name);
  c.partitions.push_back({"cpu", hw::cpu_server_spec(), nodes});
  return c;
}

Cluster make_cpu_gpu_cluster(int cpu_nodes, int gpu_nodes, std::string name) {
  Cluster c;
  c.name = std::move(name);
  c.partitions.push_back({"cpu", hw::cpu_server_spec(), cpu_nodes});
  c.partitions.push_back({"gpu", hw::gpu_hpc_spec(), gpu_nodes});
  return c;
}

Cluster make_diversified_cluster(int cpu_nodes, int gpu_nodes, int systolic_nodes,
                                 int fpga_nodes, int dpe_nodes, std::string name) {
  Cluster c;
  c.name = std::move(name);
  c.partitions.push_back({"cpu", hw::cpu_server_spec(), cpu_nodes});
  c.partitions.push_back({"gpu", hw::gpu_hpc_spec(), gpu_nodes});
  c.partitions.push_back({"systolic", hw::systolic_spec(), systolic_nodes});
  c.partitions.push_back({"fpga", hw::fpga_spec(), fpga_nodes});
  c.partitions.push_back({"dpe", hw::analog_dpe_device_spec(), dpe_nodes});
  return c;
}

}  // namespace hpc::sched
