#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/cluster.hpp"
#include "sched/job.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

/// \file scheduler.hpp
/// Event-driven single-cluster batch scheduling with heterogeneous
/// partitions.  Policies range from classic FCFS/backfill to the
/// heterogeneity-affinity placement the paper's meta-scheduler vision needs
/// (Section III.F).  Multi-site/federated scheduling builds on this in
/// hpc::fed.

namespace hpc::sched {

/// Placement/queueing policy.
enum class Policy : std::uint8_t {
  kFcfsBlocking,    ///< strict FCFS: queue head blocks everyone
  kFcfsSkip,        ///< FCFS order, but unstartable jobs are skipped this round
  kEasyBackfill,    ///< EASY backfill: later jobs may run if they cannot delay the head
  kHeteroAffinity,  ///< kFcfsSkip + pick the partition with the fastest runtime
  kRandomPlacement, ///< kFcfsSkip + uniformly random feasible partition
  kDeadlineAware,   ///< EDF queue order + fastest-partition placement (SLA work)
};

std::string_view name_of(Policy p) noexcept;

/// Where and when one job ran.
struct Placement {
  int job_id = 0;
  int partition = -1;            ///< index into Cluster::partitions, -1 = never ran
  sim::TimeNs start = 0;
  sim::TimeNs finish = 0;
  sim::TimeNs wait() const noexcept { return start >= arrival ? start - arrival : 0; }
  sim::TimeNs arrival = 0;
  double energy_j = 0.0;
};

/// Aggregate outcome of a scheduling run.
struct ScheduleResult {
  std::vector<Placement> placements;
  sim::TimeNs makespan = 0;
  double mean_wait_ns = 0.0;
  double p95_wait_ns = 0.0;
  double mean_slowdown = 0.0;      ///< (wait+run)/run, bounded below by 1
  double utilization = 0.0;        ///< busy node-time / (nodes x makespan)
  int sla_violations = 0;
  double total_energy_j = 0.0;
  double throughput_jobs_per_s = 0.0;
};

/// Event-driven scheduling simulation.
class ClusterSim {
 public:
  ClusterSim(Cluster cluster, Policy policy, std::uint64_t seed = 1);

  void add_job(Job job);
  void add_jobs(const std::vector<Job>& jobs);

  /// Attaches observability sinks (both optional; nullptr detaches).  Each
  /// job's lifecycle becomes two complete spans on the "sched" track —
  /// "sched.job.wait" (submit→start) and "sched.job.run" (start→finish) —
  /// plus a queue-depth counter series.  Metered: jobs started/finished and
  /// a wait-time histogram.  Passive: results are identical either way.
  void set_observer(obs::TraceRecorder* trace, obs::MetricRegistry* metrics = nullptr);

  /// Runs all jobs to completion and returns the aggregate result.
  ScheduleResult run();

 private:
  struct Running {
    int job_index;
    int partition;
    sim::TimeNs finish;
    int nodes;
  };

  /// Picks a partition for \p job with free capacity per policy; -1 if none.
  int pick_partition(const Job& job, const std::vector<int>& free) const;
  /// Fastest-runtime partition regardless of current occupancy (-1 if none fits).
  int best_partition(const Job& job) const;

  Cluster cluster_;
  Policy policy_;
  mutable sim::Rng rng_;
  std::vector<Job> jobs_;

  // Observability (optional, passive; see set_observer).
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId otrack_ = 0;
  obs::StrId sid_wait_ = 0;
  obs::StrId sid_run_ = 0;
  obs::StrId sid_queue_ = 0;
  obs::Counter* m_started_ = nullptr;
  obs::Counter* m_finished_ = nullptr;
  obs::Histogram* h_wait_ = nullptr;
};

}  // namespace hpc::sched
