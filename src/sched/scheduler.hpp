#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/cluster.hpp"
#include "sched/job.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

/// \file scheduler.hpp
/// Event-driven single-cluster batch scheduling with heterogeneous
/// partitions.  Policies range from classic FCFS/backfill to the
/// heterogeneity-affinity placement the paper's meta-scheduler vision needs
/// (Section III.F).  Multi-site/federated scheduling builds on this in
/// hpc::fed.
///
/// ClusterSim is a sim::Component: it runs on a shared sim::Engine clock
/// (one scheduling step per kernel event).  The batch `run()` API is a
/// convenience wrapper that constructs a private Engine, attaches the
/// simulator, and drives it to quiescence — bit-identical to the historical
/// substrate-owned loop (pinned by tests/test_cosim_golden.cpp).

namespace hpc::sched {

/// Placement/queueing policy.
enum class Policy : std::uint8_t {
  kFcfsBlocking,    ///< strict FCFS: queue head blocks everyone
  kFcfsSkip,        ///< FCFS order, but unstartable jobs are skipped this round
  kEasyBackfill,    ///< EASY backfill: later jobs may run if they cannot delay the head
  kHeteroAffinity,  ///< kFcfsSkip + pick the partition with the fastest runtime
  kRandomPlacement, ///< kFcfsSkip + uniformly random feasible partition
  kDeadlineAware,   ///< EDF queue order + fastest-partition placement (SLA work)
};

std::string_view name_of(Policy p) noexcept;

/// Where and when one job ran.
struct Placement {
  int job_id = 0;
  int partition = -1;            ///< index into Cluster::partitions, -1 = never ran
  sim::TimeNs start = 0;
  sim::TimeNs finish = 0;
  sim::TimeNs wait() const noexcept { return start >= arrival ? start - arrival : 0; }
  sim::TimeNs arrival = 0;
  double energy_j = 0.0;
};

/// Aggregate outcome of a scheduling run.
struct ScheduleResult {
  std::vector<Placement> placements;
  sim::TimeNs makespan = 0;
  double mean_wait_ns = 0.0;
  double p95_wait_ns = 0.0;
  double mean_slowdown = 0.0;      ///< (wait+run)/run, bounded below by 1
  double utilization = 0.0;        ///< busy node-time / (nodes x makespan)
  int sla_violations = 0;
  double total_energy_j = 0.0;
  double throughput_jobs_per_s = 0.0;
};

/// Event-driven scheduling simulation (a sim::Component).
class ClusterSim final : public sim::Component {
 public:
  ClusterSim(Cluster cluster, Policy policy, std::uint64_t seed = 1);

  void add_job(Job job);
  void add_jobs(const std::vector<Job>& jobs);

  /// Attaches observability sinks (both optional; nullptr detaches).  Each
  /// job's lifecycle becomes two complete spans on the "sched" track —
  /// "sched.job.wait" (submit→start) and "sched.job.run" (start→finish) —
  /// plus a queue-depth counter series.  Metered: jobs started/finished and
  /// a wait-time histogram.  Passive: results are identical either way.
  void set_observer(obs::TraceRecorder* trace, obs::MetricRegistry* metrics = nullptr);

  /// Batch wrapper: private Engine, attach, run to quiescence, aggregate.
  ScheduleResult run();

  // sim::Component contract.
  [[nodiscard]] std::string_view component_name() const noexcept override {
    return "sched.cluster";
  }
  /// Starts a scheduling session on the shared clock: resets session state
  /// and schedules the first scheduling step (nothing to do if no jobs).
  void on_attach(sim::Engine& engine) override;

  /// Aggregate result of the last completed session (valid after the engine
  /// ran to quiescence; consumed by the batch `run()` wrapper).
  [[nodiscard]] ScheduleResult take_result();

 private:
  struct Running {
    int job_index;
    int partition;
    sim::TimeNs finish;
    int nodes;
  };

  /// Transient state of one scheduling session.
  struct Session {
    std::vector<int> order;     ///< job indices in arrival order
    std::vector<int> free;      ///< free nodes per partition
    std::vector<Running> running;
    std::vector<int> waiting;   ///< job indices, FCFS order
    std::size_t next_arrival = 0;
    double busy_node_ns = 0.0;
    ScheduleResult result;
  };

  /// One scheduling step on the shared clock: retire completions due now,
  /// admit arrivals, start whatever the policy allows, then schedule the
  /// next step at the next arrival/completion instant.
  void step();
  void retire(sim::TimeNs now);
  void start_job(int ji, int p, sim::TimeNs now);
  void try_start(sim::TimeNs now);

  /// Picks a partition for \p job with free capacity per policy; -1 if none.
  int pick_partition(const Job& job, const std::vector<int>& free) const;
  /// Fastest-runtime partition regardless of current occupancy (-1 if none fits).
  int best_partition(const Job& job) const;

  Cluster cluster_;
  Policy policy_;
  mutable sim::Rng rng_;
  std::vector<Job> jobs_;
  Session st_;

  // Observability (optional, passive; see set_observer).
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId otrack_ = 0;
  obs::StrId sid_wait_ = 0;
  obs::StrId sid_run_ = 0;
  obs::StrId sid_queue_ = 0;
  obs::Counter* m_started_ = nullptr;
  obs::Counter* m_finished_ = nullptr;
  obs::Histogram* h_wait_ = nullptr;
};

}  // namespace hpc::sched
