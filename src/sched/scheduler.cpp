#include "sched/scheduler.hpp"

#include <algorithm>
#include <limits>

namespace hpc::sched {

std::string_view name_of(Policy p) noexcept {
  switch (p) {
    case Policy::kFcfsBlocking: return "fcfs";
    case Policy::kFcfsSkip: return "fcfs-skip";
    case Policy::kEasyBackfill: return "backfill";
    case Policy::kHeteroAffinity: return "hetero-affinity";
    case Policy::kRandomPlacement: return "random";
    case Policy::kDeadlineAware: return "deadline-edf";
  }
  return "fcfs";
}

ClusterSim::ClusterSim(Cluster cluster, Policy policy, std::uint64_t seed)
    : cluster_(std::move(cluster)), policy_(policy), rng_(seed) {}

void ClusterSim::add_job(Job job) { jobs_.push_back(std::move(job)); }

void ClusterSim::set_observer(obs::TraceRecorder* trace, obs::MetricRegistry* metrics) {
  trace_ = trace;
  if (trace_ != nullptr) {
    otrack_ = trace_->track("sched");
    sid_wait_ = trace_->intern("sched.job.wait");
    sid_run_ = trace_->intern("sched.job.run");
    sid_queue_ = trace_->intern("sched.queue_depth");
  }
  if (metrics != nullptr) {
    m_started_ = &metrics->counter("sched.jobs_started");
    m_finished_ = &metrics->counter("sched.jobs_finished");
    h_wait_ = &metrics->histogram("sched.wait_ns");
  } else {
    m_started_ = m_finished_ = nullptr;
    h_wait_ = nullptr;
  }
}

void ClusterSim::add_jobs(const std::vector<Job>& jobs) {
  jobs_.insert(jobs_.end(), jobs.begin(), jobs.end());
}

int ClusterSim::pick_partition(const Job& job, const std::vector<int>& free) const {
  std::vector<int> feasible;
  for (std::size_t p = 0; p < cluster_.partitions.size(); ++p) {
    if (free[p] >= job.nodes &&
        job_runtime_ns(job, cluster_.partitions[p].device, job.nodes) < 1e17)
      feasible.push_back(static_cast<int>(p));
  }
  if (feasible.empty()) return -1;
  switch (policy_) {
    case Policy::kFcfsBlocking:
    case Policy::kFcfsSkip:
    case Policy::kEasyBackfill:
      return feasible.front();  // first configured partition that fits
    case Policy::kDeadlineAware:
    case Policy::kHeteroAffinity: {
      int best = feasible.front();
      double best_t = std::numeric_limits<double>::infinity();
      for (const int p : feasible) {
        const double t =
            job_runtime_ns(job, cluster_.partitions[static_cast<std::size_t>(p)].device, job.nodes);
        if (t < best_t) {
          best_t = t;
          best = p;
        }
      }
      return best;
    }
    case Policy::kRandomPlacement:
      return feasible[rng_.index(feasible.size())];
  }
  return feasible.front();
}

int ClusterSim::best_partition(const Job& job) const {
  for (std::size_t p = 0; p < cluster_.partitions.size(); ++p) {
    if (cluster_.partitions[p].nodes >= job.nodes &&
        job_runtime_ns(job, cluster_.partitions[p].device, job.nodes) < 1e17)
      return static_cast<int>(p);
  }
  return -1;
}

void ClusterSim::on_attach(sim::Engine& engine) {
  st_ = Session{};
  // Arrival order, stable on id for determinism.
  st_.order.resize(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) st_.order[i] = static_cast<int>(i);
  std::stable_sort(st_.order.begin(), st_.order.end(), [&](int a, int b) {
    return jobs_[static_cast<std::size_t>(a)].arrival < jobs_[static_cast<std::size_t>(b)].arrival;
  });

  st_.free.resize(cluster_.partitions.size());
  for (std::size_t p = 0; p < st_.free.size(); ++p) st_.free[p] = cluster_.partitions[p].nodes;

  st_.result.placements.resize(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    st_.result.placements[i].job_id = jobs_[i].id;
    st_.result.placements[i].arrival = jobs_[i].arrival;
  }

  if (!jobs_.empty()) engine.schedule_at(engine.now(), [this] { step(); });
}

void ClusterSim::start_job(int ji, int p, sim::TimeNs now) {
  const Job& job = jobs_[static_cast<std::size_t>(ji)];
  const double rt =
      job_runtime_ns(job, cluster_.partitions[static_cast<std::size_t>(p)].device, job.nodes);
  const auto finish = now + static_cast<sim::TimeNs>(rt);
  st_.free[static_cast<std::size_t>(p)] -= job.nodes;
  st_.running.push_back(Running{ji, p, finish, job.nodes});
  Placement& pl = st_.result.placements[static_cast<std::size_t>(ji)];
  pl.partition = p;
  pl.start = now;
  pl.finish = finish;
  pl.energy_j =
      job_energy_j(job, cluster_.partitions[static_cast<std::size_t>(p)].device, job.nodes);
  st_.busy_node_ns += rt * job.nodes;
  if (trace_ != nullptr && trace_->enabled())
    trace_->complete_span(otrack_, sid_wait_, job.arrival, now);
  if (m_started_ != nullptr) {
    m_started_->inc();
    h_wait_->record(static_cast<double>(now - job.arrival));
  }
}

void ClusterSim::try_start(sim::TimeNs now) {
  std::vector<int>& waiting = st_.waiting;
  std::vector<int>& free = st_.free;
  if (policy_ == Policy::kFcfsBlocking) {
    while (!waiting.empty()) {
      const int p = pick_partition(jobs_[static_cast<std::size_t>(waiting.front())], free);
      if (p < 0) break;
      start_job(waiting.front(), p, now);
      waiting.erase(waiting.begin());
    }
    return;
  }
  if (policy_ == Policy::kEasyBackfill) {
    // Start head jobs while possible.
    while (!waiting.empty()) {
      const int p = pick_partition(jobs_[static_cast<std::size_t>(waiting.front())], free);
      if (p < 0) break;
      start_job(waiting.front(), p, now);
      waiting.erase(waiting.begin());
    }
    if (waiting.empty()) return;
    // Shadow time: earliest moment the head could start on its first
    // feasible partition as running jobs drain.
    const Job& head = jobs_[static_cast<std::size_t>(waiting.front())];
    const int hp = best_partition(head);
    if (hp < 0) return;  // head can never run; handled by caller
    std::vector<Running> drains = st_.running;
    std::sort(drains.begin(), drains.end(),
              [](const Running& a, const Running& b) { return a.finish < b.finish; });
    int avail = free[static_cast<std::size_t>(hp)];
    sim::TimeNs shadow = now;
    for (const Running& r : drains) {
      if (avail >= head.nodes) break;
      if (r.partition == hp) {
        avail += r.nodes;
        shadow = r.finish;
      }
    }
    if (avail < head.nodes) return;  // cannot ever start — caller handles
    // Backfill: any later job that fits now and finishes by the shadow.
    for (std::size_t w = 1; w < waiting.size();) {
      const Job& job = jobs_[static_cast<std::size_t>(waiting[w])];
      const int p = pick_partition(job, free);
      if (p >= 0) {
        const double rt =
            job_runtime_ns(job, cluster_.partitions[static_cast<std::size_t>(p)].device, job.nodes);
        const bool harmless = p != hp || now + static_cast<sim::TimeNs>(rt) <= shadow;
        if (harmless) {
          start_job(waiting[w], p, now);
          waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(w));
          continue;
        }
      }
      ++w;
    }
    return;
  }
  // Skip-style policies: start anything that fits.  Priority is FCFS,
  // except deadline-aware which serves earliest-deadline-first (jobs
  // without a deadline go last, FCFS among themselves).
  if (policy_ == Policy::kDeadlineAware) {
    std::stable_sort(waiting.begin(), waiting.end(), [&](int a, int b) {
      const sim::TimeNs da = jobs_[static_cast<std::size_t>(a)].deadline;
      const sim::TimeNs db = jobs_[static_cast<std::size_t>(b)].deadline;
      if ((da == 0) != (db == 0)) return db == 0;  // deadlines before none
      return da < db;
    });
  }
  for (std::size_t w = 0; w < waiting.size();) {
    const int p = pick_partition(jobs_[static_cast<std::size_t>(waiting[w])], free);
    if (p >= 0) {
      start_job(waiting[w], p, now);
      waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(w));
    } else {
      ++w;
    }
  }
}

void ClusterSim::retire(sim::TimeNs now) {
  std::vector<Running>& running = st_.running;
  for (std::size_t i = 0; i < running.size();) {
    if (running[i].finish <= now) {
      if (trace_ != nullptr && trace_->enabled()) {
        const Placement& pl =
            st_.result.placements[static_cast<std::size_t>(running[i].job_index)];
        trace_->complete_span(otrack_, sid_run_, pl.start, running[i].finish);
      }
      if (m_finished_ != nullptr) m_finished_->inc();
      st_.free[static_cast<std::size_t>(running[i].partition)] += running[i].nodes;
      running[i] = running.back();
      running.pop_back();
    } else {
      ++i;
    }
  }
}

void ClusterSim::step() {
  const sim::TimeNs now = engine()->now();
  // Retire completions at `now` (this was the tail of the historical loop
  // iteration that advanced the clock here).
  retire(now);
  if (st_.next_arrival >= st_.order.size() && st_.running.empty() && st_.waiting.empty())
    return;  // session quiescent

  // Admit arrivals at `now`.
  while (st_.next_arrival < st_.order.size() &&
         jobs_[static_cast<std::size_t>(st_.order[st_.next_arrival])].arrival <= now) {
    st_.waiting.push_back(st_.order[st_.next_arrival]);
    ++st_.next_arrival;
  }
  try_start(now);
  if (trace_ != nullptr && trace_->enabled())
    trace_->counter(otrack_, sid_queue_, now, static_cast<double>(st_.waiting.size()));

  // Drop jobs that can never run anywhere (misconfigured workloads).
  st_.waiting.erase(
      std::remove_if(st_.waiting.begin(), st_.waiting.end(),
                     [&](int ji) {
                       return best_partition(jobs_[static_cast<std::size_t>(ji)]) < 0;
                     }),
      st_.waiting.end());

  // Schedule the next step at the next arrival/completion instant.
  sim::TimeNs next = std::numeric_limits<sim::TimeNs>::max();
  if (st_.next_arrival < st_.order.size())
    next = jobs_[static_cast<std::size_t>(st_.order[st_.next_arrival])].arrival;
  for (const Running& r : st_.running) next = std::min(next, r.finish);
  if (next == std::numeric_limits<sim::TimeNs>::max()) return;
  engine()->schedule_at(std::max(now, next), [this] { step(); });
}

ScheduleResult ClusterSim::take_result() {
  ScheduleResult result = std::move(st_.result);
  // Aggregate metrics.
  sim::Sampler waits;
  sim::Sampler slowdowns;
  int completed = 0;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Placement& pl = result.placements[i];
    if (pl.partition < 0) continue;
    ++completed;
    result.makespan = std::max(result.makespan, pl.finish);
    const double wait = static_cast<double>(pl.start - pl.arrival);
    const double run = static_cast<double>(pl.finish - pl.start);
    waits.push(wait);
    slowdowns.push(run > 0.0 ? (wait + run) / run : 1.0);
    result.total_energy_j += pl.energy_j;
    if (jobs_[i].deadline > 0 && pl.finish > jobs_[i].deadline) ++result.sla_violations;
  }
  result.mean_wait_ns = waits.mean();
  result.p95_wait_ns = waits.percentile(95.0);
  result.mean_slowdown = slowdowns.mean();
  const double total_node_ns =
      static_cast<double>(result.makespan) * cluster_.total_nodes();
  result.utilization = total_node_ns > 0.0 ? st_.busy_node_ns / total_node_ns : 0.0;
  result.throughput_jobs_per_s =
      result.makespan > 0 ? completed / sim::to_seconds(result.makespan) : 0.0;
  st_ = Session{};
  return result;
}

ScheduleResult ClusterSim::run() {
  sim::Engine engine(rng_.seed());
  engine.attach(*this);
  engine.run();
  engine.detach(*this);
  return take_result();
}

}  // namespace hpc::sched
