#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "hw/device.hpp"
#include "hw/kernel.hpp"
#include "sim/time.hpp"

/// \file job.hpp
/// Job model for the heterogeneous scheduling substrate (Section III.F: users'
/// "workloads run across a breadth of silicon options, ideally with a
/// meta-scheduler that selects the best available for the job").
///
/// A job is characterized by total work (flops), an operation-class mix, a
/// precision, node parallelism and data location — enough to predict its
/// runtime on any device family and its transfer cost from any site.

namespace hpc::sched {

/// Fractional mix over hw::OpClass (should sum to ~1).
using OpMix = std::array<double, hw::kOpClassCount>;

/// Returns a mix with 100% of \p c.
OpMix pure_mix(hw::OpClass c) noexcept;

/// Normalizes a mix in place so the fractions sum to 1 (no-op if all zero).
void normalize(OpMix& mix) noexcept;

/// A schedulable job.
struct Job {
  int id = 0;
  std::string name;
  sim::TimeNs arrival = 0;
  int nodes = 1;                    ///< nodes (devices) requested
  double total_gflop = 1e3;         ///< total work across all nodes
  OpMix mix{};                      ///< operation-class mix of the work
  hw::Precision precision = hw::Precision::FP64;
  double dataset_gb = 0.0;          ///< input data to stage in
  int data_site = -1;               ///< site id holding the input (-1 local)
  sim::TimeNs deadline = 0;         ///< absolute SLA deadline (0 = none)
};

/// Sustained Gflop/s of one device of \p spec on operation class \p c at
/// precision \p p, evaluated with a representative kernel through the
/// roofline model.
double sustained_gflops(const hw::DeviceSpec& spec, hw::OpClass c, hw::Precision p);

/// Predicted runtime of \p job on \p nodes devices of \p spec: the op-class
/// shares run at their class rates, nodes scale throughput linearly (jobs
/// request a fixed node count and are assumed well decomposed).
/// Returns +inf-like 1e18 if the device cannot make progress on some class.
double job_runtime_ns(const Job& job, const hw::DeviceSpec& spec, int nodes);

/// Energy (J) of running \p job on \p nodes devices of \p spec, assuming TDP
/// draw while running.
double job_energy_j(const Job& job, const hw::DeviceSpec& spec, int nodes);

}  // namespace hpc::sched
