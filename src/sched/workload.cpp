#include "sched/workload.hpp"

#include <algorithm>
#include <cmath>

#include "hw/catalog.hpp"

namespace hpc::sched {

std::string_view name_of(JobKind k) noexcept {
  switch (k) {
    case JobKind::kHpcSimulation: return "hpc-sim";
    case JobKind::kAiTraining: return "ai-train";
    case JobKind::kAiInference: return "ai-infer";
    case JobKind::kAnalytics: return "analytics";
  }
  return "hpc-sim";
}

OpMix mix_of(JobKind k) noexcept {
  OpMix mix{};
  auto set = [&](hw::OpClass c, double v) { mix[static_cast<std::size_t>(c)] = v; };
  switch (k) {
    // Mixes count flops; the dense domains have essentially all of their
    // flops in dense kernels (control code contributes work, not flops).
    case JobKind::kHpcSimulation:
      set(hw::OpClass::kStencil, 0.50);
      set(hw::OpClass::kFft, 0.30);
      set(hw::OpClass::kSpMV, 0.20);
      break;
    case JobKind::kAiTraining:
      set(hw::OpClass::kGemm, 0.65);
      set(hw::OpClass::kConv, 0.35);
      break;
    case JobKind::kAiInference:
      set(hw::OpClass::kMatVec, 0.80);
      set(hw::OpClass::kConv, 0.20);
      break;
    case JobKind::kAnalytics:
      set(hw::OpClass::kSort, 0.35);
      set(hw::OpClass::kGraph, 0.35);
      set(hw::OpClass::kScalar, 0.30);
      break;
  }
  return mix;
}

hw::Precision precision_of(JobKind k) noexcept {
  switch (k) {
    case JobKind::kHpcSimulation: return hw::Precision::FP64;
    case JobKind::kAiTraining: return hw::Precision::BF16;
    case JobKind::kAiInference: return hw::Precision::INT8;
    case JobKind::kAnalytics: return hw::Precision::FP64;
  }
  return hw::Precision::FP64;
}

JobKind kind_of(const Job& job) noexcept {
  // The dominant op class identifies the domain.
  std::size_t best = 0;
  for (std::size_t c = 1; c < job.mix.size(); ++c)
    if (job.mix[c] > job.mix[best]) best = c;
  switch (static_cast<hw::OpClass>(best)) {
    case hw::OpClass::kStencil:
    case hw::OpClass::kFft:
    case hw::OpClass::kSpMV: return JobKind::kHpcSimulation;
    case hw::OpClass::kGemm:
    case hw::OpClass::kConv: return JobKind::kAiTraining;
    case hw::OpClass::kMatVec: return JobKind::kAiInference;
    default: return JobKind::kAnalytics;
  }
}

std::vector<Job> generate_workload(const WorkloadConfig& cfg, sim::Rng& rng) {
  const double total_share =
      cfg.share_hpc + cfg.share_training + cfg.share_inference + cfg.share_analytics;
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(cfg.jobs));
  double clock_s = 0.0;

  for (int i = 0; i < cfg.jobs; ++i) {
    clock_s += rng.exponential(cfg.mean_interarrival_s);

    const double pick = rng.uniform(0.0, total_share);
    JobKind kind = JobKind::kAnalytics;
    if (pick < cfg.share_hpc) {
      kind = JobKind::kHpcSimulation;
    } else if (pick < cfg.share_hpc + cfg.share_training) {
      kind = JobKind::kAiTraining;
    } else if (pick < cfg.share_hpc + cfg.share_training + cfg.share_inference) {
      kind = JobKind::kAiInference;
    }

    Job job;
    job.id = i;
    job.name = std::string(name_of(kind)) + "-" + std::to_string(i);
    job.arrival = sim::from_seconds(clock_s);
    job.mix = mix_of(kind);
    job.precision = precision_of(kind);
    job.total_gflop = rng.lognormal(cfg.log_mean_gflop, cfg.log_sigma_gflop);
    if (kind == JobKind::kAiInference)  // inference jobs are small and frequent
      job.total_gflop = std::max(1.0, job.total_gflop * 0.01);
    // Node counts: power of two up to max, biased small.
    const int max_pow = std::max(0, static_cast<int>(std::log2(cfg.max_nodes)));
    const int pw = static_cast<int>(rng.uniform_int(0, max_pow));
    job.nodes = std::min(cfg.max_nodes, 1 << std::min(pw, static_cast<int>(
                                                              rng.uniform_int(0, max_pow))));
    job.dataset_gb = cfg.dataset_gb_per_tflop * job.total_gflop / 1e3;
    if (cfg.deadline_slack > 0.0) {
      // Hint: runtime on a reference CPU node.
      const double hint = job_runtime_ns(job, hw::cpu_server_spec(), job.nodes);
      job.deadline = job.arrival + static_cast<sim::TimeNs>(cfg.deadline_slack * hint);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace hpc::sched
