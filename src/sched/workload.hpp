#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sched/job.hpp"
#include "sim/rng.hpp"

/// \file workload.hpp
/// Synthetic workload generation over the application domains the paper's
/// Figure 1 converges: classical HPC simulation, AI training, AI inference,
/// and data analytics.  Arrivals are Poisson; work sizes are lognormal
/// (heavy-tailed, as production traces are).

namespace hpc::sched {

/// Application domain of a generated job.
enum class JobKind : std::uint8_t {
  kHpcSimulation,  ///< fp64 stencil/FFT/spmv mix
  kAiTraining,     ///< bf16 GEMM/conv mix
  kAiInference,    ///< int8 mat-vec mix, small and latency-sensitive
  kAnalytics,      ///< sort/graph/scalar mix
};

std::string_view name_of(JobKind k) noexcept;

/// The op-class mix characterizing \p kind.
OpMix mix_of(JobKind k) noexcept;

/// Precision the domain typically runs at.
hw::Precision precision_of(JobKind k) noexcept;

/// Workload-stream parameters.
struct WorkloadConfig {
  int jobs = 200;
  double mean_interarrival_s = 30.0;
  /// Relative frequency of each kind (normalized internally).
  double share_hpc = 0.4;
  double share_training = 0.25;
  double share_inference = 0.2;
  double share_analytics = 0.15;
  /// Lognormal work size (in Gflop) parameters per job.
  double log_mean_gflop = 9.0;   ///< exp(9) ≈ 8.1e3 Gflop
  double log_sigma_gflop = 1.6;
  int max_nodes = 16;
  double dataset_gb_per_tflop = 2.0;  ///< input size scales with work
  double deadline_slack = 0.0;        ///< 0 = no SLA; else deadline = arrival + slack*runtime_hint
};

/// Generates a deterministic job stream.
std::vector<Job> generate_workload(const WorkloadConfig& cfg, sim::Rng& rng);

/// Kind of a generated job (recovered from its stored mix).
JobKind kind_of(const Job& job) noexcept;

}  // namespace hpc::sched
