#pragma once

#include <string>
#include <vector>

#include "hw/catalog.hpp"
#include "hw/device.hpp"
#include "sched/job.hpp"

/// \file cluster.hpp
/// A cluster is a set of homogeneous partitions, each holding \c nodes
/// devices of one family — the "more than a dozen configurations" a
/// heterogeneous system integrator fields (Section III.E).

namespace hpc::sched {

/// One homogeneous partition.
struct Partition {
  std::string name;
  hw::DeviceSpec device;
  int nodes = 0;
};

/// A (possibly heterogeneous) cluster.
struct Cluster {
  std::string name;
  std::vector<Partition> partitions;

  int total_nodes() const noexcept {
    int n = 0;
    for (const Partition& p : partitions) n += p.nodes;
    return n;
  }
  double total_power_w() const noexcept {
    double w = 0.0;
    for (const Partition& p : partitions) w += p.device.tdp_w * p.nodes;
    return w;
  }
  double total_cost_usd() const noexcept {
    double c = 0.0;
    for (const Partition& p : partitions) c += p.device.cost_usd * p.nodes;
    return c;
  }
};

/// A CPU-only cluster of \p nodes server CPUs.
Cluster make_homogeneous_cpu_cluster(int nodes, std::string name = "cpu-cluster");

/// A CPU+GPU cluster (the 2021 mainstream).
Cluster make_cpu_gpu_cluster(int cpu_nodes, int gpu_nodes, std::string name = "cpu-gpu");

/// A diversified cluster spanning the paper's silicon menagerie, sized to
/// roughly the same acquisition budget as \p reference_nodes CPU nodes.
Cluster make_diversified_cluster(int cpu_nodes, int gpu_nodes, int systolic_nodes,
                                 int fpga_nodes, int dpe_nodes,
                                 std::string name = "diversified");

}  // namespace hpc::sched
