#include "sched/job.hpp"

#include <cmath>

namespace hpc::sched {

OpMix pure_mix(hw::OpClass c) noexcept {
  OpMix mix{};
  mix[static_cast<std::size_t>(c)] = 1.0;
  return mix;
}

void normalize(OpMix& mix) noexcept {
  double sum = 0.0;
  for (double v : mix) sum += v;
  if (sum <= 0.0) return;
  for (double& v : mix) v /= sum;
}

namespace {

/// Representative kernel per op class, sized so roofline behaviour (compute
/// vs memory bound) matches the motif at realistic scales.
hw::Kernel representative_kernel(hw::OpClass c, hw::Precision p) {
  switch (c) {
    case hw::OpClass::kGemm: return hw::make_gemm(4096, 4096, 4096, p);
    case hw::OpClass::kConv: {
      hw::Kernel k = hw::make_gemm(2048, 2048, 1024, p);  // im2col equivalent
      k.op = hw::OpClass::kConv;
      return k;
    }
    case hw::OpClass::kMatVec: return hw::make_matvec(8192, p);
    case hw::OpClass::kFft: return hw::make_fft(1 << 22, p);
    case hw::OpClass::kStencil: return hw::make_stencil3d(512, p);
    case hw::OpClass::kSpMV: return hw::make_spmv(100'000'000, p);
    case hw::OpClass::kGraph: return hw::make_graph(100'000'000);
    case hw::OpClass::kSort: {
      hw::Kernel k = hw::make_graph(100'000'000);
      k.op = hw::OpClass::kSort;
      return k;
    }
    case hw::OpClass::kScalar: {
      hw::Kernel k;
      k.name = "scalar";
      k.op = hw::OpClass::kScalar;
      k.flops = 1e9;
      k.bytes = 8e9;
      k.precision = p;
      return k;
    }
  }
  return hw::make_gemm(1024, 1024, 1024, p);
}

}  // namespace

double sustained_gflops(const hw::DeviceSpec& spec, hw::OpClass c, hw::Precision p) {
  const hw::Device dev(spec);
  return dev.sustained_gflops(representative_kernel(c, p));
}

double job_runtime_ns(const Job& job, const hw::DeviceSpec& spec, int nodes) {
  if (nodes <= 0) return 1e18;
  double time_ns = 0.0;
  for (int c = 0; c < hw::kOpClassCount; ++c) {
    const double share = job.mix[static_cast<std::size_t>(c)];
    if (share <= 0.0) continue;
    const double rate = sustained_gflops(spec, static_cast<hw::OpClass>(c), job.precision);
    if (rate <= 0.0) return 1e18;
    time_ns += share * job.total_gflop / rate;  // Gflop / (Gflop/s) = s... see below
  }
  // total_gflop / Gflop-per-s gives seconds; convert to ns and divide by nodes.
  return time_ns * 1e9 / static_cast<double>(nodes);
}

double job_energy_j(const Job& job, const hw::DeviceSpec& spec, int nodes) {
  const double t_ns = job_runtime_ns(job, spec, nodes);
  if (t_ns >= 1e18) return 1e18;
  return t_ns * 1e-9 * spec.tdp_w * static_cast<double>(nodes);
}

}  // namespace hpc::sched
