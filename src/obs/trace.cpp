#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

#include "obs/jsonlite.hpp"

namespace hpc::obs {

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

StrId TraceRecorder::intern(std::string_view s) {
  const auto it = name_ids_.find(s);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<StrId>(names_.size());
  names_.emplace_back(s);
  name_ids_.emplace(std::string(s), id);
  return id;
}

TrackId TraceRecorder::track(std::string_view name) {
  const auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  const auto id = static_cast<TrackId>(tracks_.size());
  tracks_.emplace_back(name);
  track_ids_.emplace(std::string(name), id);
  return id;
}

void TraceRecorder::push(const TraceEvent& e) {
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  ring_[write_] = e;
  write_ = (write_ + 1) % capacity_;
  ++dropped_;
}

void TraceRecorder::begin_span(TrackId t, StrId name, sim::TimeNs ts) {
  if (!enabled_) return;
  push(TraceEvent{ts, 0, 0.0, name, t, EventKind::kSpanBegin});
}

void TraceRecorder::end_span(TrackId t, StrId name, sim::TimeNs ts) {
  if (!enabled_) return;
  push(TraceEvent{ts, 0, 0.0, name, t, EventKind::kSpanEnd});
}

void TraceRecorder::complete_span(TrackId t, StrId name, sim::TimeNs begin,
                                  sim::TimeNs end) {
  if (!enabled_) return;
  if (end < begin) end = begin;
  push(TraceEvent{end, begin, 0.0, name, t, EventKind::kComplete});
}

void TraceRecorder::instant(TrackId t, StrId name, sim::TimeNs ts, double payload) {
  if (!enabled_) return;
  push(TraceEvent{ts, 0, payload, name, t, EventKind::kInstant});
}

void TraceRecorder::counter(TrackId t, StrId name, sim::TimeNs ts, double value) {
  if (!enabled_) return;
  push(TraceEvent{ts, 0, value, name, t, EventKind::kCounter});
}

const TraceEvent& TraceRecorder::event(std::size_t i) const {
  // Oldest-first view: once wrapped, the oldest retained slot is write_.
  const std::size_t start = ring_.size() < capacity_ ? 0 : write_;
  return ring_[(start + i) % ring_.size()];
}

std::string_view TraceRecorder::name(StrId id) const {
  return id < names_.size() ? std::string_view(names_[id]) : std::string_view();
}

std::string_view TraceRecorder::track_name(TrackId t) const {
  return t < tracks_.size() ? std::string_view(tracks_[t]) : std::string_view();
}

void TraceRecorder::clear() {
  ring_.clear();
  write_ = 0;
  dropped_ = 0;
}

namespace {

/// Chrome "ts"/"dur" fields are microseconds; emit at fixed nanosecond
/// resolution so values round-trip exactly and deterministically.
std::string micros(sim::TimeNs ns) {
  return jsonlite::fmt_fixed3(static_cast<double>(ns) / 1e3);
}

}  // namespace

std::string TraceRecorder::chrome_trace_json() const {
  std::string out;
  out.reserve(128 + ring_.size() * 96);
  std::uint64_t truncated = 0;  // span ends whose begin was evicted

  // First pass: per-track span-stack repair.  Scoped spans are strictly
  // nested per track, so in ring order an end on an empty stack means its
  // begin fell off the ring; it is skipped so the exported stream always
  // balances.  Whatever remains on a stack afterwards is still open at
  // export and gets closed (by name, innermost first) at the last timestamp.
  std::vector<std::vector<StrId>> open(tracks_.size());
  std::vector<char> keep(ring_.size(), 1);
  sim::TimeNs last_ts = 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const TraceEvent& e = event(i);
    last_ts = std::max(last_ts, e.ts);
    if (e.kind == EventKind::kSpanBegin) {
      open[e.track].push_back(e.name);
    } else if (e.kind == EventKind::kSpanEnd) {
      if (!open[e.track].empty()) {
        open[e.track].pop_back();
      } else {
        keep[i] = 0;
        ++truncated;
      }
    }
  }

  out += "{\n\"otherData\": {\"schema\": \"archipelago-trace-v1\", \"dropped\": ";
  out += std::to_string(dropped_);
  out += ", \"truncated_spans\": ";
  out += std::to_string(truncated);
  out += "},\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [";

  bool first = true;
  auto emit = [&](const std::string& line) {
    out += first ? "\n" : ",\n";
    first = false;
    out += line;
  };

  // Track (pseudo-thread) names so viewers label the substrates.
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    emit("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
         std::to_string(t) + ", \"args\": {\"name\": \"" + jsonlite::escape(tracks_[t]) +
         "\"}}");
  }

  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (keep[i] == 0) continue;
    const TraceEvent& e = event(i);
    const std::string head = "{\"name\": \"" + jsonlite::escape(name(e.name)) +
                             "\", \"cat\": \"" + jsonlite::escape(track_name(e.track)) +
                             "\", \"pid\": 1, \"tid\": " + std::to_string(e.track);
    switch (e.kind) {
      case EventKind::kSpanBegin:
        emit(head + ", \"ph\": \"B\", \"ts\": " + micros(e.ts) + "}");
        break;
      case EventKind::kSpanEnd:
        emit(head + ", \"ph\": \"E\", \"ts\": " + micros(e.ts) + "}");
        break;
      case EventKind::kComplete:
        emit(head + ", \"ph\": \"X\", \"ts\": " + micros(e.begin) +
             ", \"dur\": " + micros(e.ts - e.begin) + "}");
        break;
      case EventKind::kInstant:
        emit(head + ", \"ph\": \"i\", \"s\": \"t\", \"ts\": " + micros(e.ts) +
             ", \"args\": {\"value\": " + jsonlite::fmt_double(e.value) + "}}");
        break;
      case EventKind::kCounter:
        emit(head + ", \"ph\": \"C\", \"ts\": " + micros(e.ts) +
             ", \"args\": {\"value\": " + jsonlite::fmt_double(e.value) + "}}");
        break;
    }
  }

  // Close any scoped span still open at export so the file balances.
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    while (!open[t].empty()) {
      emit("{\"name\": \"" + jsonlite::escape(name(open[t].back())) + "\", \"cat\": \"" +
           jsonlite::escape(tracks_[t]) + "\", \"pid\": 1, \"tid\": " + std::to_string(t) +
           ", \"ph\": \"E\", \"ts\": " + micros(last_ts) + "}");
      open[t].pop_back();
    }
  }

  out += "\n]\n}\n";
  return out;
}

bool TraceRecorder::export_chrome_trace(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string text = chrome_trace_json();
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(f);
}

}  // namespace hpc::obs
