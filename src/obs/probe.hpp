#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

/// \file probe.hpp
/// `hpc::obs::SimulatorProbe` — the observability adapter for the
/// discrete-event kernel.
///
/// Attach with `sim.set_probe(&probe, checkpoint_interval)`.  Each dispatched
/// event becomes a scoped "sim.dispatch" span on the "sim" track; the queue
/// depth is sampled as a counter series and aggregated into a gauge; and
/// every checkpoint the kernel's running FNV-1a event-stream digest is
/// recorded as a "sim.digest" instant whose payload carries the digest's low
/// 32 bits exactly (a double holds 32 bits losslessly; the full 64-bit value
/// is exposed via `last_digest()` for the determinism tests).  The probe is
/// strictly passive: it never schedules events, never draws randomness, and
/// never reads a wall clock, so attaching it cannot perturb the simulation
/// it observes — `tests/test_obs_golden.cpp` pins digest equality between
/// probed and unprobed runs.
namespace hpc::obs {

/// Translates sim::SimProbe callbacks into trace events and metrics.
class SimulatorProbe final : public sim::SimProbe {
 public:
  /// \param trace    required; records only while trace->enabled().
  /// \param metrics  optional aggregate registry (may be nullptr).
  SimulatorProbe(TraceRecorder* trace, MetricRegistry* metrics);

  void on_event(sim::TimeNs at, std::uint64_t seq, std::size_t pending) override;
  void on_event_done(sim::TimeNs at, std::uint64_t seq) override;
  void on_checkpoint(sim::TimeNs at, std::uint64_t digest,
                     std::uint64_t executed) override;

  /// Digest observed at the most recent checkpoint (0 before the first).
  [[nodiscard]] std::uint64_t last_digest() const noexcept { return last_digest_; }
  [[nodiscard]] std::uint64_t checkpoints() const noexcept { return checkpoints_; }

 private:
  TraceRecorder* trace_;
  MetricRegistry* metrics_;
  TrackId track_ = 0;
  StrId dispatch_ = 0;
  StrId queue_depth_ = 0;
  StrId digest_mark_ = 0;
  Counter* events_ = nullptr;
  Gauge* depth_gauge_ = nullptr;
  std::uint64_t last_digest_ = 0;
  std::uint64_t checkpoints_ = 0;
};

}  // namespace hpc::obs
