#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

/// \file trace.hpp
/// `hpc::obs::TraceRecorder` — the deterministic flight recorder.
///
/// A bounded ring buffer of spans, instant events, and counter samples, all
/// keyed on *simulated* time (`sim::TimeNs`, never wall clock — archlint's
/// D1 rule holds across this subsystem), so two runs of the same seeded
/// scenario record bit-identical event streams and export byte-identical
/// trace files.  When the ring fills, the oldest events are overwritten —
/// flight-recorder semantics: the tail of a long run is always retained, and
/// `dropped()` reports how much history was lost.
///
/// Event names and track (substrate) names are interned once into stable
/// 32-bit ids; instrumented modules intern at attach time and the steady
/// state hot path stores four machine words per event.  The `enabled()` flag
/// is the master observability switch: every record call checks it first and
/// returns without touching memory when tracing is off, which is what keeps
/// the disabled-path overhead budget (≤ 2% on the FlowSim hot path,
/// bench/bench_perf_obs.cpp) honest.
///
/// Export is the Chrome trace-event JSON format, so any recorded run opens
/// directly in chrome://tracing or https://ui.perfetto.dev: spans become
/// "B"/"E" (scoped) or "X" (complete, for lifecycle spans whose begin and
/// end are far apart in simulated time), instants "i", counter samples "C",
/// and each track a named pseudo-thread.  The exporter repairs wraparound
/// damage — an end whose begin was evicted is dropped, a begin still open at
/// export is closed at the final timestamp — so exported traces always
/// balance (tools/tracecat verifies this).
namespace hpc::obs {

/// Interned string id (index into the recorder's string table).
using StrId = std::uint32_t;

/// Track id: one per instrumented substrate, rendered as a named thread.
using TrackId = std::uint16_t;

/// What one ring slot records.
enum class EventKind : std::uint8_t {
  kSpanBegin,  ///< scoped span opens at ts
  kSpanEnd,    ///< scoped span closes at ts
  kComplete,   ///< lifecycle span [begin, ts] recorded at completion
  kInstant,    ///< point event at ts (value carries optional payload)
  kCounter,    ///< counter sample: value at ts
};

/// One recorded event (one ring slot).
struct TraceEvent {
  sim::TimeNs ts = 0;     ///< event time (end time for kComplete)
  sim::TimeNs begin = 0;  ///< start time (kComplete only)
  double value = 0.0;     ///< counter sample / instant payload
  StrId name = 0;
  TrackId track = 0;
  EventKind kind = EventKind::kInstant;
};

/// Bounded deterministic flight recorder.
class TraceRecorder {
 public:
  /// \param capacity ring size in events; once full, oldest events drop.
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  /// Master switch.  Disabled recorders ignore every record call without
  /// allocating; interning stays available so instrumentation can set up
  /// handles before deciding whether to record.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Interns \p s, returning a stable id (same string ⇒ same id for the
  /// lifetime of the recorder, including across clear()).
  [[nodiscard]] StrId intern(std::string_view s);

  /// Registers (or looks up) a track — one per instrumented substrate.
  [[nodiscard]] TrackId track(std::string_view name);

  // Record calls.  All no-ops while disabled; all O(1); none allocate on the
  // steady-state path (the ring grows to capacity once, then wraps).
  void begin_span(TrackId t, StrId name, sim::TimeNs ts);
  void end_span(TrackId t, StrId name, sim::TimeNs ts);
  void complete_span(TrackId t, StrId name, sim::TimeNs begin, sim::TimeNs end);
  void instant(TrackId t, StrId name, sim::TimeNs ts, double payload = 0.0);
  void counter(TrackId t, StrId name, sim::TimeNs ts, double value);

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events overwritten by wraparound since construction/clear().
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t track_count() const noexcept { return tracks_.size(); }

  /// i-th retained event, oldest first.
  [[nodiscard]] const TraceEvent& event(std::size_t i) const;
  /// Name for an interned id ("" if out of range).
  [[nodiscard]] std::string_view name(StrId id) const;
  [[nodiscard]] std::string_view track_name(TrackId t) const;

  /// Serializes the retained events as Chrome trace-event JSON.  Identical
  /// recorded streams produce byte-identical strings.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to \p path.  Returns true on success.
  [[nodiscard]] bool export_chrome_trace(const std::string& path) const;

  /// Forgets recorded events (string/track tables survive, ids stay stable).
  void clear();

 private:
  void push(const TraceEvent& e);

  std::size_t capacity_;
  bool enabled_ = false;
  std::vector<TraceEvent> ring_;
  std::size_t write_ = 0;        ///< next overwrite position once full
  std::uint64_t dropped_ = 0;

  std::vector<std::string> names_;
  std::map<std::string, StrId, std::less<>> name_ids_;
  std::vector<std::string> tracks_;
  std::map<std::string, TrackId, std::less<>> track_ids_;
};

}  // namespace hpc::obs
