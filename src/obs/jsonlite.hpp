#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file jsonlite.hpp
/// Minimal deterministic JSON support for the observability subsystem.
///
/// Two halves, both deliberately tiny:
///
///  - `escape()` / `fmt_double()`: the emission conventions shared with the
///    tools/benchjson baseline writer.  Every obs artifact (chrome trace,
///    metrics snapshot) is serialized through these so identical inputs
///    produce byte-identical files — the property the golden determinism
///    tests and the same-seed acceptance criterion pin.
///  - `Value` + `parse()`: a strict recursive-descent DOM parser used by the
///    tracecat validator.  Like benchjson's parser it rejects anything
///    malformed (truncation, bad escapes, trailing garbage) instead of
///    guessing, so a corrupted trace artifact fails CI rather than passing
///    silently.  Object keys keep insertion order; no iteration-order-
///    unstable containers are involved (determinism rule D2).
namespace hpc::obs::jsonlite {

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters; same convention as tools/benchjson plus
/// \uXXXX for other control bytes).
[[nodiscard]] std::string escape(std::string_view s);

/// Shortest-ish deterministic rendering of a double ("%.6g", with "-0"
/// normalized to "0" and non-finite values clamped to 0 so emitted documents
/// are always valid JSON).
[[nodiscard]] std::string fmt_double(double v);

/// Fixed three-decimal rendering ("%.3f") — used for trace timestamps, where
/// sub-nanosecond resolution of a microsecond field must round-trip exactly.
[[nodiscard]] std::string fmt_fixed3(double v);

/// One parsed JSON value.  A tagged struct rather than a variant keeps the
/// parser and its consumers boring and easy to audit.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< insertion order

  [[nodiscard]] bool is_object() const noexcept { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const noexcept { return type == Type::kString; }
  [[nodiscard]] bool is_number() const noexcept { return type == Type::kNumber; }

  /// Member lookup on an object (nullptr if absent or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;
};

/// Parses \p text into \p out.  Returns true on success; on failure fills
/// \p error with a message carrying the byte offset of the problem.
bool parse(std::string_view text, Value& out, std::string& error);

}  // namespace hpc::obs::jsonlite
