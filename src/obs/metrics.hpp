#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "sim/stats.hpp"

/// \file metrics.hpp
/// `hpc::obs::MetricRegistry` — namespaced counters, gauges, and log-binned
/// histograms aggregated over a run, with a deterministic JSON snapshot.
///
/// Where the TraceRecorder answers "what happened when", the registry
/// answers "how much, overall": monotonic counters (events, matches,
/// skips), gauges (last/min/max of a level such as queue depth), and
/// bounded-memory log-binned histograms (reusing `sim::LogHistogram`, with a
/// `sim::RunningStats` alongside for exact mean/min/max) for latency-shaped
/// distributions where the paper cares about tails (p50/p90/p99/p999).
///
/// Names are dot-namespaced by convention ("net.flowsim.solver_invocations").
/// Instruments live in `std::map`s, so references returned by the accessors
/// are stable for the registry's lifetime — instrumented modules resolve
/// them once at attach time and update through pointers on the hot path —
/// and snapshot iteration is sorted and deterministic (rule D2: no
/// iteration-order-unstable containers).
///
/// The snapshot follows the tools/benchjson emitter conventions (same
/// escaping, strict fixed schema, schema-tagged):
///
///     {
///       "schema": "archipelago-metrics-v1",
///       "counters":   [{"name": "...", "value": 123}, ...],
///       "gauges":     [{"name": "...", "value": v, "min": m, "max": M,
///                       "samples": n}, ...],
///       "histograms": [{"name": "...", "count": n, "mean": ..., "min": ...,
///                       "max": ..., "p50": ..., "p90": ..., "p99": ...,
///                       "p999": ...}, ...]
///     }
///
/// `validate_snapshot_file` re-parses an emitted file and checks that
/// schema, mirroring `benchjson::validate_file` for BENCH_*.json baselines.
namespace hpc::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  void inc() noexcept { ++value_; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value gauge with min/max/sample tracking.
class Gauge {
 public:
  void set(double v) noexcept;
  /// Folds \p other in: min/max widen, samples add, and other's last value
  /// wins when it observed anything (merge order decides "last", so merging
  /// replicas in index order is deterministic).
  void merge(const Gauge& other) noexcept;
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double min() const noexcept { return samples_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return samples_ ? max_ : 0.0; }
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

 private:
  double value_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t samples_ = 0;
};

/// Log-binned histogram (bounded memory) plus exact streaming moments.
class Histogram {
 public:
  explicit Histogram(int bins_per_decade = 20) : bins_(bins_per_decade) {}

  void record(double value);
  /// Folds \p other in: exact for the streaming moments, bin-exact when the
  /// two histograms share a resolution (see sim::LogHistogram::merge).
  void merge(const Histogram& other);
  [[nodiscard]] int bins_per_decade() const noexcept { return bins_.bins_per_decade(); }
  [[nodiscard]] std::uint64_t count() const noexcept { return bins_.count(); }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double min() const noexcept { return stats_.min(); }
  [[nodiscard]] double max() const noexcept { return stats_.max(); }
  /// Approximate percentile (log-binned; relative error bounded by the
  /// per-decade resolution).
  [[nodiscard]] double percentile(double p) const { return bins_.percentile(p); }

 private:
  sim::LogHistogram bins_;
  sim::RunningStats stats_;
};

/// Deterministic registry of named instruments.
class MetricRegistry {
 public:
  /// Finds or creates; the returned reference is stable for the registry's
  /// lifetime (instruments are never removed).
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name, int bins_per_decade = 20);

  /// Folds every instrument of \p other into this registry by name:
  /// counters add, gauges widen (other's last value wins), histograms merge
  /// bin-wise; instruments missing here are created.  Merging N per-replica
  /// registries into a fresh one in replica-index order yields the same
  /// registry — and therefore a byte-identical snapshot_json() — no matter
  /// which execution policy produced the replicas (the campaign layer's
  /// aggregate-determinism contract).
  void merge_from(const MetricRegistry& other);

  [[nodiscard]] std::size_t counter_count() const noexcept { return counters_.size(); }
  [[nodiscard]] std::size_t gauge_count() const noexcept { return gauges_.size(); }
  [[nodiscard]] std::size_t histogram_count() const noexcept { return histograms_.size(); }

  /// Serializes the archipelago-metrics-v1 snapshot.  Identical registry
  /// contents produce byte-identical strings (names iterate sorted).
  [[nodiscard]] std::string snapshot_json() const;

  /// Writes snapshot_json() to \p path.  Returns true on success.
  [[nodiscard]] bool write_snapshot(const std::string& path) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Validates an archipelago-metrics-v1 file: well-formed JSON, right schema
/// tag, all three sections present as arrays of named entries with finite
/// values.  Returns an empty string when valid, else a human-readable error.
[[nodiscard]] std::string validate_snapshot_file(const std::string& path);

/// Same, over in-memory text (used by tests and validate_snapshot_file).
[[nodiscard]] std::string validate_snapshot_text(std::string_view text);

}  // namespace hpc::obs
