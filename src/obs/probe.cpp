#include "obs/probe.hpp"

namespace hpc::obs {

SimulatorProbe::SimulatorProbe(TraceRecorder* trace, MetricRegistry* metrics)
    : trace_(trace), metrics_(metrics) {
  track_ = trace_->track("sim");
  dispatch_ = trace_->intern("sim.dispatch");
  queue_depth_ = trace_->intern("sim.queue_depth");
  digest_mark_ = trace_->intern("sim.digest");
  if (metrics_ != nullptr) {
    events_ = &metrics_->counter("sim.events_executed");
    depth_gauge_ = &metrics_->gauge("sim.queue_depth");
  }
}

void SimulatorProbe::on_event(sim::TimeNs at, std::uint64_t /*seq*/,
                              std::size_t pending) {
  trace_->begin_span(track_, dispatch_, at);
  trace_->counter(track_, queue_depth_, at, static_cast<double>(pending));
  if (events_ != nullptr) events_->inc();
  if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<double>(pending));
}

void SimulatorProbe::on_event_done(sim::TimeNs at, std::uint64_t /*seq*/) {
  trace_->end_span(track_, dispatch_, at);
}

void SimulatorProbe::on_checkpoint(sim::TimeNs at, std::uint64_t digest,
                                   std::uint64_t /*executed*/) {
  last_digest_ = digest;
  ++checkpoints_;
  // The instant's payload carries the low 32 bits exactly (doubles hold 53
  // mantissa bits); the full digest is available via last_digest().
  trace_->instant(track_, digest_mark_, at,
                  static_cast<double>(digest & 0xffffffffULL));
}

}  // namespace hpc::obs
