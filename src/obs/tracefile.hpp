#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

/// \file tracefile.hpp
/// Validation and summarization of exported Chrome trace-event files.
///
/// This is the library half of `tools/tracecat`: it re-parses a trace
/// artifact with the strict jsonlite parser and checks the structural
/// invariants the TraceRecorder exporter promises — well-formed JSON, a
/// `traceEvents` array, known phase codes, non-negative timestamps and
/// durations, counter samples carrying numeric values, and per-track
/// begin/end span balance with matching names.  A trace that fails any of
/// these is a bug in the exporter or a corrupted artifact, and ci/check.sh
/// treats it as a hard failure.
///
/// Alongside validation it aggregates a `TraceStats` summary (event counts
/// per phase, inclusive simulated time per span name, counter extrema) that
/// `summary()` renders for humans.  All aggregation uses sorted `std::map`s,
/// so identical traces summarize to byte-identical text (rule D2).
namespace hpc::obs {

/// Aggregate over all spans sharing a name (both "X" completes and matched
/// "B"/"E" pairs contribute).
struct SpanAgg {
  std::uint64_t count = 0;
  double total_us = 0.0;  ///< inclusive simulated time, microseconds
};

/// Extrema over all counter samples sharing a name.
struct CounterAgg {
  std::uint64_t samples = 0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
};

/// What validation learned about one trace file.
struct TraceStats {
  std::uint64_t events = 0;           ///< entries in traceEvents
  std::uint64_t dropped = 0;          ///< from otherData (ring overwrites)
  std::uint64_t truncated_spans = 0;  ///< from otherData (ends with evicted begins)
  std::map<std::string, std::uint64_t> phase_counts;  ///< per ph code
  std::map<std::string, SpanAgg> spans;               ///< per span name
  std::map<std::string, CounterAgg> counters;         ///< per counter name
};

/// Validates trace text and (optionally) fills \p stats.  Returns an empty
/// string when the trace is well-formed and balanced, else a human-readable
/// error naming the first offending event.
[[nodiscard]] std::string check_trace_text(std::string_view text, TraceStats* stats);

/// Same, reading from \p path.
[[nodiscard]] std::string check_trace_file(const std::string& path, TraceStats* stats);

/// Renders a human-readable summary: event counts per phase, the \p top_n
/// span names by total inclusive simulated time, and counter extrema.
/// Deterministic for identical stats.
[[nodiscard]] std::string summary(const TraceStats& stats, int top_n = 10);

}  // namespace hpc::obs
