#include "obs/jsonlite.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hpc::obs::jsonlite {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  std::string s(buf);
  if (s == "-0") s = "0";
  return s;
}

std::string fmt_fixed3(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

/// Strict recursive-descent parser.  Depth-limited so a hostile or corrupted
/// file cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse_document(Value& out, std::string& error) {
    skip_ws();
    if (!parse_value(out, 0, error)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after document", error);
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool parse_value(Value& out, int depth, std::string& error) {
    if (depth > kMaxDepth) return fail("nesting too deep", error);
    if (pos_ >= text_.size()) return fail("unexpected end of input", error);
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth, error);
    if (c == '[') return parse_array(out, depth, error);
    if (c == '"') {
      out.type = Value::Type::kString;
      return parse_string(out.string, error);
    }
    if (match_word("true")) {
      out.type = Value::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (match_word("false")) {
      out.type = Value::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (match_word("null")) {
      out.type = Value::Type::kNull;
      return true;
    }
    out.type = Value::Type::kNumber;
    return parse_number(out.number, error);
  }

  bool parse_object(Value& out, int depth, std::string& error) {
    out.type = Value::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key, error)) return fail("expected object key", error);
      skip_ws();
      if (!consume(':')) return fail("expected ':' after key", error);
      skip_ws();
      Value v;
      if (!parse_value(v, depth + 1, error)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object", error);
    }
  }

  bool parse_array(Value& out, int depth, std::string& error) {
    out.type = Value::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v, depth + 1, error)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array", error);
    }
  }

  bool parse_string(std::string& out, std::string& error) {
    if (!consume('"')) return fail("expected string", error);
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape", error);
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape", error);
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape digit", error);
            }
            // UTF-8 encode (basic multilingual plane; surrogate pairs are not
            // emitted by any obs writer, so reject them as malformed).
            if (code >= 0xD800 && code <= 0xDFFF)
              return fail("surrogate \\u escape unsupported", error);
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape", error);
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string", error);
  }

  bool parse_number(double& out, std::string& error) {
    const std::size_t start = pos_;
    auto is_num_char = [](char c) {
      return std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '+' ||
             c == '.' || c == 'e' || c == 'E';
    };
    while (pos_ < text_.size() && is_num_char(text_[pos_])) ++pos_;
    if (pos_ == start) return fail("expected a value", error);
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number", error);
    return true;
  }

  bool match_word(std::string_view w) {
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool fail(const std::string& msg, std::string& error) {
    error = msg + " (offset " + std::to_string(pos_) + ")";
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string& error) {
  Parser p(text);
  return p.parse_document(out, error);
}

}  // namespace hpc::obs::jsonlite
