#include "obs/tracefile.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/jsonlite.hpp"

namespace hpc::obs {

namespace {

/// Reads a non-negative integral field out of an otherData-style object.
std::uint64_t read_count(const jsonlite::Value& obj, std::string_view key) {
  const jsonlite::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number() || v->number < 0) return 0;
  return static_cast<std::uint64_t>(v->number);
}

std::string at_event(std::size_t i) { return "traceEvents[" + std::to_string(i) + "]"; }

}  // namespace

std::string check_trace_text(std::string_view text, TraceStats* stats) {
  jsonlite::Value root;
  std::string error;
  if (!jsonlite::parse(text, root, error)) return "malformed JSON: " + error;
  if (!root.is_object()) return "top level is not an object";
  const jsonlite::Value* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) return "missing 'traceEvents' array";

  TraceStats local;
  if (const jsonlite::Value* other = root.find("otherData");
      other != nullptr && other->is_object()) {
    local.dropped = read_count(*other, "dropped");
    local.truncated_spans = read_count(*other, "truncated_spans");
  }

  // Per-(pid, tid) stack of open scoped spans: (name, ts in microseconds).
  std::map<std::pair<long long, long long>, std::vector<std::pair<std::string, double>>>
      open;

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const jsonlite::Value& e = events->array[i];
    if (!e.is_object()) return at_event(i) + " is not an object";

    const jsonlite::Value* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->string.size() != 1)
      return at_event(i) + " has no single-character 'ph'";
    const char phase = ph->string[0];
    if (phase != 'B' && phase != 'E' && phase != 'X' && phase != 'i' &&
        phase != 'I' && phase != 'C' && phase != 'M')
      return at_event(i) + " has unknown phase '" + ph->string + "'";

    const jsonlite::Value* name = e.find("name");
    if (name == nullptr || !name->is_string() || name->string.empty())
      return at_event(i) + " has no name";

    const jsonlite::Value* pid = e.find("pid");
    const jsonlite::Value* tid = e.find("tid");
    if (pid == nullptr || !pid->is_number() || tid == nullptr || !tid->is_number())
      return at_event(i) + " has no numeric pid/tid";

    ++local.events;
    ++local.phase_counts[ph->string];

    if (phase == 'M') continue;  // metadata carries no timestamp

    const jsonlite::Value* ts = e.find("ts");
    if (ts == nullptr || !ts->is_number() || !std::isfinite(ts->number) ||
        ts->number < 0)
      return at_event(i) + " ('" + name->string + "') has no valid 'ts'";

    switch (phase) {
      case 'B':
        open[{static_cast<long long>(pid->number), static_cast<long long>(tid->number)}]
            .emplace_back(name->string, ts->number);
        break;
      case 'E': {
        auto& stack = open[{static_cast<long long>(pid->number),
                            static_cast<long long>(tid->number)}];
        if (stack.empty())
          return at_event(i) + ": end of '" + name->string + "' with no open span";
        if (stack.back().first != name->string)
          return at_event(i) + ": end of '" + name->string + "' but '" +
                 stack.back().first + "' is open";
        SpanAgg& agg = local.spans[name->string];
        ++agg.count;
        agg.total_us += ts->number - stack.back().second;
        stack.pop_back();
        break;
      }
      case 'X': {
        const jsonlite::Value* dur = e.find("dur");
        if (dur == nullptr || !dur->is_number() || !std::isfinite(dur->number) ||
            dur->number < 0)
          return at_event(i) + " ('" + name->string + "') has no valid 'dur'";
        SpanAgg& agg = local.spans[name->string];
        ++agg.count;
        agg.total_us += dur->number;
        break;
      }
      case 'C': {
        const jsonlite::Value* args = e.find("args");
        const jsonlite::Value* value =
            args != nullptr && args->is_object() ? args->find("value") : nullptr;
        if (value == nullptr || !value->is_number() || !std::isfinite(value->number))
          return at_event(i) + " ('" + name->string + "') counter has no numeric value";
        CounterAgg& agg = local.counters[name->string];
        if (agg.samples == 0) {
          agg.min = agg.max = value->number;
        } else {
          agg.min = std::min(agg.min, value->number);
          agg.max = std::max(agg.max, value->number);
        }
        agg.last = value->number;
        ++agg.samples;
        break;
      }
      default:
        break;  // 'i' / 'I': nothing beyond the shared checks
    }
  }

  for (const auto& [key, stack] : open) {
    if (!stack.empty())
      return "unbalanced spans: '" + stack.back().first + "' on tid " +
             std::to_string(key.second) + " never closed";
  }

  if (stats != nullptr) *stats = std::move(local);
  return {};
}

std::string check_trace_file(const std::string& path, TraceStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "cannot open '" + path + "'";
  std::ostringstream buf;
  buf << in.rdbuf();
  return check_trace_text(buf.str(), stats);
}

std::string summary(const TraceStats& stats, int top_n) {
  std::string out = "events: " + std::to_string(stats.events) +
                    " (dropped: " + std::to_string(stats.dropped) +
                    ", truncated spans: " + std::to_string(stats.truncated_spans) + ")\n";
  out += "phases:";
  for (const auto& [ph, n] : stats.phase_counts)
    out += " " + ph + "=" + std::to_string(n);
  out += "\n";

  // Rank span names by total inclusive simulated time, name as tie-break.
  std::vector<std::pair<std::string, SpanAgg>> ranked(stats.spans.begin(),
                                                      stats.spans.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.total_us != b.second.total_us)
      return a.second.total_us > b.second.total_us;
    return a.first < b.first;
  });
  if (top_n >= 0 && ranked.size() > static_cast<std::size_t>(top_n))
    ranked.resize(static_cast<std::size_t>(top_n));

  out += "top spans by inclusive simulated time:\n";
  if (ranked.empty()) out += "  (none)\n";
  for (const auto& [name, agg] : ranked)
    out += "  " + name + "  count=" + std::to_string(agg.count) +
           "  total_us=" + jsonlite::fmt_double(agg.total_us) + "\n";

  out += "counters:\n";
  if (stats.counters.empty()) out += "  (none)\n";
  for (const auto& [name, agg] : stats.counters)
    out += "  " + name + "  samples=" + std::to_string(agg.samples) +
           "  min=" + jsonlite::fmt_double(agg.min) +
           "  max=" + jsonlite::fmt_double(agg.max) +
           "  last=" + jsonlite::fmt_double(agg.last) + "\n";
  return out;
}

}  // namespace hpc::obs
