#include "obs/metrics.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/jsonlite.hpp"

namespace hpc::obs {

void Gauge::set(double v) noexcept {
  value_ = v;
  if (samples_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++samples_;
}

void Gauge::merge(const Gauge& other) noexcept {
  if (other.samples_ == 0) return;
  if (samples_ == 0) {
    *this = other;
    return;
  }
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  samples_ += other.samples_;
  value_ = other.value_;
}

void Histogram::record(double value) {
  bins_.record(value);
  stats_.push(value);
}

void Histogram::merge(const Histogram& other) {
  bins_.merge(other.bins_);
  stats_.merge(other.stats_);
}

Counter& MetricRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricRegistry::histogram(std::string_view name, int bins_per_decade) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram(bins_per_decade)).first->second;
}

void MetricRegistry::merge_from(const MetricRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).add(c.value());
  for (const auto& [name, g] : other.gauges_) gauge(name).merge(g);
  for (const auto& [name, h] : other.histograms_)
    histogram(name, h.bins_per_decade()).merge(h);
}

std::string MetricRegistry::snapshot_json() const {
  std::string out = "{\n  \"schema\": \"archipelago-metrics-v1\",\n  \"counters\": [";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + jsonlite::escape(name) +
           "\", \"value\": " + std::to_string(c.value()) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + jsonlite::escape(name) +
           "\", \"value\": " + jsonlite::fmt_double(g.value()) +
           ", \"min\": " + jsonlite::fmt_double(g.min()) +
           ", \"max\": " + jsonlite::fmt_double(g.max()) +
           ", \"samples\": " + std::to_string(g.samples()) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + jsonlite::escape(name) +
           "\", \"count\": " + std::to_string(h.count()) +
           ", \"mean\": " + jsonlite::fmt_double(h.mean()) +
           ", \"min\": " + jsonlite::fmt_double(h.count() ? h.min() : 0.0) +
           ", \"max\": " + jsonlite::fmt_double(h.count() ? h.max() : 0.0) +
           ", \"p50\": " + jsonlite::fmt_double(h.percentile(50.0)) +
           ", \"p90\": " + jsonlite::fmt_double(h.percentile(90.0)) +
           ", \"p99\": " + jsonlite::fmt_double(h.percentile(99.0)) +
           ", \"p999\": " + jsonlite::fmt_double(h.percentile(99.9)) + "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool MetricRegistry::write_snapshot(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string text = snapshot_json();
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(f);
}

namespace {

/// Checks one section: an array of objects, each with a unique string "name"
/// and finite numeric fields.  Returns "" or an error.
std::string check_section(const jsonlite::Value& root, std::string_view section) {
  const jsonlite::Value* arr = root.find(section);
  if (arr == nullptr || !arr->is_array())
    return "missing '" + std::string(section) + "' array";
  std::string prev;
  for (const jsonlite::Value& entry : arr->array) {
    if (!entry.is_object())
      return std::string(section) + " entry is not an object";
    const jsonlite::Value* name = entry.find("name");
    if (name == nullptr || !name->is_string() || name->string.empty())
      return std::string(section) + " entry missing a name";
    if (!prev.empty() && !(prev < name->string))
      return std::string(section) + " names not sorted/unique ('" + name->string + "')";
    prev = name->string;
    for (const auto& [key, field] : entry.object) {
      if (key == "name") continue;
      if (!field.is_number())
        return "'" + name->string + "': field '" + key + "' is not a number";
      if (!std::isfinite(field.number))
        return "'" + name->string + "': field '" + key + "' is not finite";
    }
  }
  return {};
}

}  // namespace

std::string validate_snapshot_text(std::string_view text) {
  jsonlite::Value root;
  std::string error;
  if (!jsonlite::parse(text, root, error)) return "malformed JSON: " + error;
  if (!root.is_object()) return "top level is not an object";
  const jsonlite::Value* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string()) return "missing schema field";
  if (schema->string != "archipelago-metrics-v1")
    return "unknown schema '" + schema->string + "'";
  for (const std::string_view section : {std::string_view("counters"),
                                         std::string_view("gauges"),
                                         std::string_view("histograms")}) {
    std::string err = check_section(root, section);
    if (!err.empty()) return err;
  }
  return {};
}

std::string validate_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "cannot open '" + path + "'";
  std::ostringstream buf;
  buf << in.rdbuf();
  return validate_snapshot_text(buf.str());
}

}  // namespace hpc::obs
