#include "hw/conformance.hpp"

#include <bit>

#include "hw/kernel.hpp"

namespace hpc::hw {

std::string_view name_of(Capability c) noexcept {
  switch (c) {
    case Capability::kKernelLaunch: return "kernel-launch";
    case Capability::kMemoryAlloc: return "memory-alloc";
    case Capability::kHostTransfer: return "host-transfer";
    case Capability::kPeerTransfer: return "peer-transfer";
    case Capability::kTelemetry: return "telemetry";
    case Capability::kVirtualization: return "virtualization";
    case Capability::kPrecisionQuery: return "precision-query";
  }
  return "kernel-launch";
}

CapabilitySet::CapabilitySet(std::initializer_list<Capability> caps) {
  for (const Capability c : caps) add(c);
}

void CapabilitySet::add(Capability c) noexcept {
  bits_ |= 1u << static_cast<unsigned>(c);
}

bool CapabilitySet::has(Capability c) const noexcept {
  return (bits_ & (1u << static_cast<unsigned>(c))) != 0;
}

std::size_t CapabilitySet::size() const noexcept {
  return static_cast<std::size_t>(std::popcount(bits_));
}

std::vector<Capability> CapabilitySet::missing(const CapabilitySet& required) const {
  std::vector<Capability> out;
  for (int c = 0; c < kCapabilityCount; ++c) {
    const auto cap = static_cast<Capability>(c);
    if (required.has(cap) && !has(cap)) out.push_back(cap);
  }
  return out;
}

RuntimeProfile service_profile() {
  RuntimeProfile p;
  p.name = "archipelago-aas-1";
  p.required = CapabilitySet{Capability::kKernelLaunch, Capability::kMemoryAlloc,
                             Capability::kHostTransfer, Capability::kPrecisionQuery,
                             Capability::kTelemetry, Capability::kVirtualization};
  return p;
}

namespace {

CheckResult check(std::string name, bool passed, std::string detail = {}) {
  return CheckResult{std::move(name), passed, std::move(detail)};
}

}  // namespace

CertificationReport certify(const DeviceSpec& device, const CapabilitySet& driver_caps,
                            const RuntimeProfile& profile) {
  CertificationReport report;
  report.missing_capabilities = driver_caps.missing(profile.required);

  const Device dev(device);

  // Smoke test 1: the device executes a dense kernel in finite time.
  const Kernel gemm = make_gemm(1024, 1024, 1024, Precision::FP32);
  const ExecutionEstimate est = dev.execute(gemm);
  report.checks.push_back(check("executes-gemm", est.time_ns > 0.0 && est.time_ns < 1e17,
                                "time_ns=" + std::to_string(est.time_ns)));

  // Smoke test 2: scaling sanity — 8x the work takes strictly more time.
  const double t_small = dev.exec_time_ns(make_gemm(512, 512, 512, Precision::FP32));
  const double t_large = dev.exec_time_ns(make_gemm(1024, 1024, 1024, Precision::FP32));
  report.checks.push_back(check("monotone-scaling", t_large > t_small));

  // Smoke test 3: the roofline never reports super-peak throughput.
  const double sustained = dev.sustained_gflops(gemm);
  report.checks.push_back(check("respects-peak",
                                sustained <= dev.peak_gflops(Precision::FP32) * 1.0001,
                                "sustained=" + std::to_string(sustained)));

  // Smoke test 4: power model sanity — energy implies idle <= power <= TDP.
  const double power_w = est.time_ns > 0.0 ? est.energy_j / (est.time_ns * 1e-9) : 0.0;
  report.checks.push_back(check("power-in-envelope",
                                power_w >= device.idle_w * 0.99 &&
                                    power_w <= device.tdp_w * 1.01,
                                "power_w=" + std::to_string(power_w)));

  // Smoke test 5: precision enumeration is non-empty and self-consistent.
  bool precisions_ok = !device.peak_gflops.empty();
  for (const auto& [p, gf] : device.peak_gflops)
    precisions_ok = precisions_ok && gf > 0.0 && dev.supports(p);
  report.checks.push_back(check("precision-query", precisions_ok));

  report.certified = report.failures() == 0;
  return report;
}

CapabilitySet typical_driver(DeviceKind kind) {
  CapabilitySet base{Capability::kKernelLaunch, Capability::kMemoryAlloc,
                     Capability::kHostTransfer, Capability::kPrecisionQuery};
  switch (kind) {
    case DeviceKind::kCpu:
    case DeviceKind::kGpu:
      base.add(Capability::kPeerTransfer);
      base.add(Capability::kTelemetry);
      base.add(Capability::kVirtualization);
      break;
    case DeviceKind::kSystolic:
    case DeviceKind::kFpga:
      base.add(Capability::kTelemetry);
      break;
    case DeviceKind::kWaferScale:
    case DeviceKind::kEdgeNpu:
      base.add(Capability::kTelemetry);
      break;
    case DeviceKind::kAnalogDpe:
    case DeviceKind::kOptical:
      // Early silicon: bare-bones drivers, no counters or partitioning yet.
      break;
  }
  return base;
}

}  // namespace hpc::hw
