#pragma once

#include <string>
#include <vector>

/// \file platform.hpp
/// Platform-enablement economics (paper Section III.E): "any given platform
/// enablement effort can now easily reach a few million dollars in
/// development cost ... the industry should drive towards a standard for
/// motherboards and other electronic sub-components."
///
/// Models the integrator's decision: how many silicon options can a vendor
/// field under custom per-device board development vs an OCP-like standard
/// module, and where does the break-even sit per device volume.

namespace hpc::hw {

/// Cost structure of one enablement path.
struct PlatformModel {
  std::string name = "custom-board";
  double nre_per_device_usd = 3e6;   ///< board design/SI/validation per silicon
  double unit_premium_usd = 0.0;     ///< extra per-unit cost of the board path
  double integration_weeks = 40.0;   ///< time to production per silicon
};

/// The paper's two paths, calibrated to its "few million dollars" anchor.
PlatformModel custom_board_model();
/// Standard module: the NRE was paid once by the ecosystem; each new silicon
/// pays a small adaptation cost plus a per-unit premium for the standard form
/// factor (extra power headroom, management ASIC, connectors).
PlatformModel standard_module_model();

/// Total enablement cost of fielding \p device_kinds silicon options at
/// \p units_per_kind production volume each.
double enablement_cost_usd(const PlatformModel& model, int device_kinds,
                           double units_per_kind);

/// Number of silicon options a vendor can field with \p budget_usd at the
/// given volume per option.
int affordable_device_kinds(const PlatformModel& model, double budget_usd,
                            double units_per_kind);

/// Volume per silicon at which the custom path's lower unit cost overtakes
/// the standard path's lower NRE (units; +inf if it never does).
double breakeven_units(const PlatformModel& custom, const PlatformModel& standard);

}  // namespace hpc::hw
