#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "hw/precision.hpp"

/// \file kernel.hpp
/// Work descriptors.  A Kernel is the unit of computation the roofline device
/// model executes: an operation class, a flop count, a byte count and a
/// precision.  Operation classes carry the "narrow applicability of
/// specialization" the paper builds its argument on — a systolic accelerator
/// is excellent at GEMM and useless at graph traversal.

namespace hpc::hw {

/// Broad computational motifs (after the Berkeley dwarfs, trimmed to what the
/// paper's application domains exercise).
enum class OpClass : std::uint8_t {
  kGemm,      ///< dense matrix multiply (DL training/inference, chemistry)
  kConv,      ///< convolution (imaging, CNN)
  kMatVec,    ///< dense matrix-vector (inference inner loop, iterative solvers)
  kFft,       ///< spectral methods
  kStencil,   ///< structured-grid PDE
  kSpMV,      ///< sparse matrix-vector (graph/ML sparsity)
  kGraph,     ///< irregular pointer chasing / graph analytics
  kSort,      ///< data analytics / shuffles
  kScalar,    ///< control-heavy scalar code
};

std::string_view name_of(OpClass c) noexcept;
inline constexpr int kOpClassCount = 9;

/// A unit of computation with known cost shape.
struct Kernel {
  std::string name;
  OpClass op = OpClass::kScalar;
  double flops = 0.0;      ///< useful arithmetic operations
  double bytes = 0.0;      ///< bytes that must move to/from device memory
  Precision precision = Precision::FP32;

  /// Arithmetic intensity in flops/byte (the roofline x-axis).
  double intensity() const noexcept { return bytes > 0.0 ? flops / bytes : 1e18; }
};

/// Dense GEMM C[m,n] += A[m,k] * B[k,n].
Kernel make_gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                 Precision p = Precision::FP32);

/// Dense mat-vec y[n] = W[n,n] * x[n] — the motif analog engines accelerate.
Kernel make_matvec(std::int64_t n, Precision p = Precision::FP32);

/// 3-D 7-point stencil sweep over an n^3 grid.
Kernel make_stencil3d(std::int64_t n, Precision p = Precision::FP64);

/// 1-D complex FFT of length n.
Kernel make_fft(std::int64_t n, Precision p = Precision::FP64);

/// SpMV with nnz nonzeros.
Kernel make_spmv(std::int64_t nnz, Precision p = Precision::FP64);

/// Graph traversal touching \p edges edges (latency-bound, ~1 flop/edge).
Kernel make_graph(std::int64_t edges);

}  // namespace hpc::hw
