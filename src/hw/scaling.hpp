#pragma once

/// \file scaling.hpp
/// Semiconductor technology-scaling model (paper Sections I, II.A).
///
/// Captures the paper's premise quantitatively: Dennard scaling delivered
/// compounding performance-per-watt until ~2005; after that, general-purpose
/// gains decelerate generation over generation ("the imminent end of Moore's
/// law"), and the only remaining lever inside a fixed power envelope is
/// specialization.  Experiment C1 sweeps this model.

namespace hpc::hw {

/// Generational perf/W model.  Generation 0 is normalized to 1.0; one
/// generation is roughly two years of process evolution.
struct TechnologyModel {
  int dennard_end_gen = 8;                ///< ~1990 to ~2005 at 2 yr/gen
  double dennard_gain = 2.8;              ///< perf/W multiplier per gen (Dennard era)
  double post_dennard_gain_initial = 1.35;///< first post-Dennard generation
  double gain_decay = 0.90;               ///< each later gen's gain multiplier decays

  /// Cumulative general-purpose performance per watt at generation \p gen,
  /// normalized to generation 0.
  double perf_per_watt(int gen) const noexcept;

  /// The per-generation improvement factor between gen-1 and gen.
  double generation_gain(int gen) const noexcept;
};

/// One-off architectural efficiency multiplier available from specializing a
/// design to a single operation class, relative to a general-purpose core in
/// the same process.  Literature-calibrated: ~10-50x for dataflow/systolic on
/// dense linear algebra, ~100-1000x for fixed-function analog.
struct SpecializationModel {
  double asic_gain = 30.0;     ///< digital domain-specific accelerator
  double analog_gain = 300.0;  ///< analog/neuromorphic, where applicable
  double coverage = 0.7;       ///< fraction of the workload it can absorb

  /// Amdahl-limited speedup of the whole workload when the covered fraction
  /// runs \p gain times more efficiently.
  double effective_speedup(double gain) const noexcept;
};

}  // namespace hpc::hw
