#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "hw/kernel.hpp"
#include "hw/precision.hpp"
#include "sim/time.hpp"

/// \file device.hpp
/// Roofline-style compute-device model.
///
/// A device is described by peak throughput per precision, memory bandwidth,
/// per-operation-class efficiency (how much of peak a motif can realize), a
/// launch overhead, and a power envelope.  Specialization — the paper's core
/// theme — shows up as a sharply peaked efficiency profile: a systolic array
/// realizes ~85% of peak on GEMM and ~1% on graph traversal, while a CPU is
/// mediocre-but-flat.

namespace hpc::hw {

/// Families of silicon the paper's Figure 3 enumerates.
enum class DeviceKind : std::uint8_t {
  kCpu,
  kGpu,
  kSystolic,     ///< TPU-like dataflow/systolic tile array
  kWaferScale,   ///< Cerebras-like wafer-scale engine
  kFpga,
  kAnalogDpe,    ///< memristor dot-product engine (O(N) matvec)
  kOptical,      ///< coherent-photonics matrix engine
  kEdgeNpu,      ///< power-optimized edge inference accelerator
};

std::string_view name_of(DeviceKind k) noexcept;

/// Static description of a device (the "datasheet").
struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kCpu;

  /// Peak throughput in Gflop/s per supported precision; missing precision
  /// means unsupported (kernels fall back to the nearest wider format).
  std::map<Precision, double> peak_gflops;

  double mem_bw_gbs = 100.0;       ///< device memory bandwidth, GB/s
  double mem_capacity_gb = 64.0;   ///< device memory capacity, GB
  double tdp_w = 200.0;            ///< thermal design power
  double idle_w = 40.0;            ///< idle power draw
  double launch_overhead_ns = 5'000.0;  ///< fixed per-kernel overhead
  double cost_usd = 5'000.0;       ///< acquisition cost (for $/throughput)

  /// Fraction of peak realized per operation class, in [0, 1].
  std::array<double, kOpClassCount> efficiency{};

  double efficiency_of(OpClass c) const noexcept {
    return efficiency[static_cast<std::size_t>(c)];
  }
  void set_efficiency(OpClass c, double e) noexcept {
    efficiency[static_cast<std::size_t>(c)] = e;
  }
  /// Sets every op-class efficiency to \p e (flat profile, CPU-like).
  void set_flat_efficiency(double e) noexcept { efficiency.fill(e); }
};

/// Result of executing one kernel on one device.
struct ExecutionEstimate {
  double time_ns = 0.0;
  double energy_j = 0.0;
  double achieved_gflops = 0.0;
  bool compute_bound = false;   ///< false ⇒ memory-bandwidth bound
  Precision executed_precision = Precision::FP32;
};

/// Executable device wrapping a spec with the roofline timing model.
class Device {
 public:
  explicit Device(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const noexcept { return spec_; }
  const std::string& name() const noexcept { return spec_.name; }
  DeviceKind kind() const noexcept { return spec_.kind; }

  /// True if the device natively supports precision \p p.
  bool supports(Precision p) const noexcept { return spec_.peak_gflops.contains(p); }

  /// The precision the device would actually run \p p at: itself if native,
  /// else the narrowest supported format at least as wide.
  Precision effective_precision(Precision p) const noexcept;

  /// Peak Gflop/s at precision \p p after fallback (0 if nothing supports it).
  double peak_gflops(Precision p) const noexcept;

  /// Roofline execution estimate for a kernel:
  ///   time = overhead + max(flops / (peak * eff(op)), bytes / (mem_bw * eff(op)))
  ///   energy = time * (idle + utilization * (tdp - idle))
  /// The op-class efficiency derates both roofs: off-motif code wastes
  /// compute lanes *and* bandwidth (scatter/gather, poor locality).
  ExecutionEstimate execute(const Kernel& k) const noexcept;

  /// Convenience: just the time in nanoseconds.
  double exec_time_ns(const Kernel& k) const noexcept { return execute(k).time_ns; }

  /// Energy in joules for the kernel.
  double exec_energy_j(const Kernel& k) const noexcept { return execute(k).energy_j; }

  /// Sustained Gflop/s the device achieves on this kernel.
  double sustained_gflops(const Kernel& k) const noexcept;

 private:
  DeviceSpec spec_;
};

}  // namespace hpc::hw
