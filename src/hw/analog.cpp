#include "hw/analog.hpp"

#include <algorithm>
#include <cmath>

namespace hpc::hw {

AnalogSpec dpe_spec() {
  AnalogSpec s;
  s.name = "memristor-dpe";
  s.array_size = 256;
  s.parallel_tiles = 64;
  s.tile_latency_ns = 100.0;
  s.row_write_ns = 200.0;
  s.tile_energy_nj = 4.0;
  s.cell_write_energy_pj = 10.0;
  s.static_power_w = 5.0;
  s.read_noise_sigma = 0.03;
  s.weight_bits = 6;
  s.cost_usd = 800.0;
  return s;
}

AnalogSpec photonic_spec() {
  AnalogSpec s;
  s.name = "photonic-mxu";
  s.array_size = 64;           // modulator arrays are smaller
  s.parallel_tiles = 16;
  s.tile_latency_ns = 5.0;     // GHz-class modulators + photodetectors
  s.row_write_ns = 50.0;
  s.tile_energy_nj = 0.3;
  s.cell_write_energy_pj = 2.0;
  s.static_power_w = 10.0;     // lasers burn static power
  s.read_noise_sigma = 0.05;
  s.weight_bits = 5;
  s.cost_usd = 2'500.0;
  return s;
}

std::int64_t AnalogEngine::tiles_for(std::int64_t rows, std::int64_t cols) const noexcept {
  const auto s = static_cast<std::int64_t>(spec_.array_size);
  const std::int64_t tr = (rows + s - 1) / s;
  const std::int64_t tc = (cols + s - 1) / s;
  return tr * tc;
}

double AnalogEngine::matvec_time_ns(std::int64_t rows, std::int64_t cols) const noexcept {
  const std::int64_t tiles = tiles_for(rows, cols);
  const std::int64_t waves = (tiles + spec_.parallel_tiles - 1) / spec_.parallel_tiles;
  return static_cast<double>(waves) * spec_.tile_latency_ns;
}

double AnalogEngine::matvec_energy_j(std::int64_t rows, std::int64_t cols) const noexcept {
  const double dynamic = static_cast<double>(tiles_for(rows, cols)) * spec_.tile_energy_nj * 1e-9;
  const double static_e = spec_.static_power_w * matvec_time_ns(rows, cols) * 1e-9;
  return dynamic + static_e;
}

double AnalogEngine::program_time_ns(std::int64_t rows, std::int64_t cols) const noexcept {
  // Rows program serially within a tile; tile rows across the pool in parallel.
  const auto s = static_cast<std::int64_t>(spec_.array_size);
  const std::int64_t tile_rows = std::min<std::int64_t>(rows, s);
  const std::int64_t tiles = tiles_for(rows, cols);
  const std::int64_t waves = (tiles + spec_.parallel_tiles - 1) / spec_.parallel_tiles;
  return static_cast<double>(waves) * static_cast<double>(tile_rows) * spec_.row_write_ns;
}

double AnalogEngine::program_energy_j(std::int64_t rows, std::int64_t cols) const noexcept {
  return static_cast<double>(rows) * static_cast<double>(cols) *
         spec_.cell_write_energy_pj * 1e-12;
}

std::vector<float> AnalogEngine::matvec(std::span<const float> w, std::int64_t rows,
                                        std::int64_t cols, std::span<const float> x,
                                        sim::Rng& rng) const {
  // Weight quantization to 2^bits conductance levels over [-wmax, wmax].
  float wmax = 0.0f;
  for (float v : w) wmax = std::max(wmax, std::abs(v));
  const float levels = static_cast<float>((1 << spec_.weight_bits) - 1);
  const float step = wmax > 0.0f ? 2.0f * wmax / levels : 1.0f;

  float xmax = 0.0f;
  for (float v : x) xmax = std::max(xmax, std::abs(v));

  // ADC full scale for a tile-sized dot product; noise is a fraction of it.
  const double tile_n = std::min<std::int64_t>(cols, spec_.array_size);
  const double full_scale = static_cast<double>(wmax) * xmax * std::sqrt(tile_n);
  const double sigma = spec_.read_noise_sigma * full_scale;
  const auto tiles_per_row =
      (cols + spec_.array_size - 1) / static_cast<std::int64_t>(spec_.array_size);

  std::vector<float> y(static_cast<std::size_t>(rows), 0.0f);
  for (std::int64_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < cols; ++j) {
      const float wq = std::round(w[static_cast<std::size_t>(i * cols + j)] / step) * step;
      acc += static_cast<double>(wq) * x[static_cast<std::size_t>(j)];
    }
    // One ADC read (and its noise) per tile along the row.
    acc += rng.normal(0.0, sigma) * std::sqrt(static_cast<double>(tiles_per_row));
    y[static_cast<std::size_t>(i)] = static_cast<float>(acc);
  }
  return y;
}

}  // namespace hpc::hw
