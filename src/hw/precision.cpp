#include "hw/precision.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace hpc::hw {

std::string_view name_of(Precision p) noexcept {
  switch (p) {
    case Precision::FP64: return "fp64";
    case Precision::FP32: return "fp32";
    case Precision::TF32: return "tf32";
    case Precision::BF16: return "bf16";
    case Precision::FP16: return "fp16";
    case Precision::INT8: return "int8";
    case Precision::INT4: return "int4";
  }
  return "fp32";
}

namespace {

/// Rounds the float bit pattern to keep \p mantissa_bits of the 23-bit
/// mantissa, round-to-nearest-even.  Used for bf16 (7 bits) and tf32 (10).
float truncate_mantissa(float x, int mantissa_bits) noexcept {
  if (!std::isfinite(x)) return x;
  auto bits = std::bit_cast<std::uint32_t>(x);
  const int drop = 23 - mantissa_bits;
  const std::uint32_t mask = (1u << drop) - 1u;
  const std::uint32_t halfway = 1u << (drop - 1);
  const std::uint32_t rem = bits & mask;
  bits &= ~mask;
  // Round to nearest, ties to even (even = lowest kept bit is 0).
  if (rem > halfway || (rem == halfway && (bits & (1u << drop)))) {
    bits += 1u << drop;
  }
  return std::bit_cast<float>(bits);
}

}  // namespace

float round_bf16(float x) noexcept { return truncate_mantissa(x, 7); }

float round_tf32(float x) noexcept { return truncate_mantissa(x, 10); }

float round_fp16(float x) noexcept {
  if (std::isnan(x)) return x;
  // Overflow: binary16 max finite is 65504.
  if (std::abs(x) > 65504.0f) return std::copysign(INFINITY, x);
  // Subnormal range: quantize to multiples of 2^-24.
  if (std::abs(x) < 6.103515625e-5f) {  // min normal 2^-14
    const float q = 5.960464477539063e-8f;  // 2^-24
    return std::round(x / q) * q;
  }
  return truncate_mantissa(x, 10);
}

float round_int8(float x, float scale) noexcept {
  if (scale <= 0.0f) return 0.0f;
  const float q = std::clamp(std::round(x / scale), -127.0f, 127.0f);
  return q * scale;
}

float round_int4(float x, float scale) noexcept {
  if (scale <= 0.0f) return 0.0f;
  const float q = std::clamp(std::round(x / scale), -7.0f, 7.0f);
  return q * scale;
}

float apply_precision(float x, Precision p, float scale) noexcept {
  switch (p) {
    case Precision::FP64:
    case Precision::FP32: return x;
    case Precision::TF32: return round_tf32(x);
    case Precision::BF16: return round_bf16(x);
    case Precision::FP16: return round_fp16(x);
    case Precision::INT8: return round_int8(x, scale);
    case Precision::INT4: return round_int4(x, scale);
  }
  return x;
}

}  // namespace hpc::hw
