#include "hw/scaling.hpp"

#include <cmath>

namespace hpc::hw {

double TechnologyModel::generation_gain(int gen) const noexcept {
  if (gen <= 0) return 1.0;
  if (gen <= dennard_end_gen) return dennard_gain;
  const int post = gen - dennard_end_gen;
  // Gain itself decays geometrically toward 1.0.
  const double g = 1.0 + (post_dennard_gain_initial - 1.0) * std::pow(gain_decay, post - 1);
  return g;
}

double TechnologyModel::perf_per_watt(int gen) const noexcept {
  double ppw = 1.0;
  for (int g = 1; g <= gen; ++g) ppw *= generation_gain(g);
  return ppw;
}

double SpecializationModel::effective_speedup(double gain) const noexcept {
  if (gain <= 0.0) return 1.0;
  return 1.0 / ((1.0 - coverage) + coverage / gain);
}

}  // namespace hpc::hw
