#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/device.hpp"

/// \file conformance.hpp
/// Hardware-DevOps driver conformance (paper Section III.E): "this model
/// could lay the foundation to a hardware Dev/Ops model, where new silicon
/// could get rolled in with minimum lift on the system side, and integration
/// testing could get automated for as long as the silicon drivers meet the
/// interfaces to the runtime."
///
/// A runtime profile declares the driver capabilities it requires; a device's
/// driver declares what it implements; certification runs the capability
/// check plus behavioural smoke tests against the device model (sane rooflines,
/// monotone scaling, bounded power).  Only certified silicon may be rolled
/// into a cluster.

namespace hpc::hw {

/// Driver capabilities the runtime interface can require.
enum class Capability : std::uint8_t {
  kKernelLaunch,     ///< enqueue compute kernels
  kMemoryAlloc,      ///< allocate/free device memory
  kHostTransfer,     ///< DMA to/from host
  kPeerTransfer,     ///< device-to-device transfer
  kTelemetry,        ///< power/thermal/utilization counters
  kVirtualization,   ///< partitioning for multi-tenant use
  kPrecisionQuery,   ///< enumerate supported precisions
};

std::string_view name_of(Capability c) noexcept;
inline constexpr int kCapabilityCount = 7;

/// A driver's declared capability set.
class CapabilitySet {
 public:
  CapabilitySet() = default;
  CapabilitySet(std::initializer_list<Capability> caps);

  void add(Capability c) noexcept;
  bool has(Capability c) const noexcept;
  std::size_t size() const noexcept;

  /// Capabilities in \p required that this set lacks.
  std::vector<Capability> missing(const CapabilitySet& required) const;

 private:
  std::uint32_t bits_ = 0;
};

/// The runtime interface version a platform ships.
struct RuntimeProfile {
  std::string name = "archipelago-rt-1";
  CapabilitySet required{Capability::kKernelLaunch, Capability::kMemoryAlloc,
                         Capability::kHostTransfer, Capability::kPrecisionQuery};
};

/// A multi-tenant (as-a-Service) profile additionally demands telemetry and
/// virtualization.
RuntimeProfile service_profile();

/// One behavioural check outcome.
struct CheckResult {
  std::string name;
  bool passed = false;
  std::string detail;
};

/// Full certification report for one device + driver.
struct CertificationReport {
  bool certified = false;
  std::vector<Capability> missing_capabilities;
  std::vector<CheckResult> checks;

  int failures() const noexcept {
    int n = static_cast<int>(missing_capabilities.size());
    for (const CheckResult& c : checks)
      if (!c.passed) ++n;
    return n;
  }
};

/// Certifies \p device with \p driver_caps against \p profile: capability
/// check plus behavioural smoke tests on the device model.
CertificationReport certify(const DeviceSpec& device, const CapabilitySet& driver_caps,
                            const RuntimeProfile& profile);

/// Default driver capability sets for the catalog families (the established
/// families ship full drivers; early silicon tends to lack virtualization
/// and sometimes telemetry).
CapabilitySet typical_driver(DeviceKind kind);

}  // namespace hpc::hw
