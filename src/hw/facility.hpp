#pragma once

#include <string>
#include <vector>

#include "hw/device.hpp"

/// \file facility.hpp
/// Datacenter power/cooling packing model (paper Section II.C: "the exascale
/// supercomputing generation is expected to require a 30-40 MW datacenter
/// with aggressive liquid cooling and very high-density racks, up to 400 kW
/// per rack").
///
/// Racks pack devices against a per-rack power cap; the cooling technology
/// sets the cap and the energy overhead (PUE).  The facility model answers
/// how much of a given silicon mix fits in a machine room and what it costs
/// to run.

namespace hpc::hw {

/// Rack-level cooling technology.
enum class Cooling : std::uint8_t {
  kAirCooled,        ///< classic hot/cold aisle
  kRearDoor,         ///< rear-door heat exchangers
  kDirectLiquid,     ///< cold plates (the paper's exascale assumption)
  kImmersion,        ///< full immersion
};

std::string_view name_of(Cooling c) noexcept;

/// Limits and overheads of a cooling class.
struct CoolingSpec {
  Cooling kind = Cooling::kAirCooled;
  double max_rack_kw = 20.0;   ///< sustainable per-rack IT power
  double pue = 1.6;            ///< facility power / IT power
  double capex_per_rack_usd = 10'000.0;
};

CoolingSpec cooling_spec(Cooling c) noexcept;

/// A homogeneous rack of one device family under a cooling envelope.
struct RackPlan {
  DeviceSpec device;
  CoolingSpec cooling;
  int devices_per_rack = 0;   ///< packed against the rack power cap
  double rack_it_kw = 0.0;    ///< actual IT draw
};

/// Packs as many devices as the rack cap allows (>= 0).
RackPlan pack_rack(const DeviceSpec& device, const CoolingSpec& cooling);

/// A facility hosting \p racks racks of one plan.
struct FacilityPlan {
  RackPlan rack;
  int racks = 0;
  double it_mw = 0.0;          ///< total IT power
  double facility_mw = 0.0;    ///< IT power x PUE
  double devices = 0.0;
  double capex_usd = 0.0;      ///< devices + racks
  double annual_energy_cost_usd = 0.0;  ///< at the given $/kWh
};

/// Fills a facility power budget (facility-side MW) with racks of \p rack.
FacilityPlan plan_facility(const RackPlan& rack, double facility_mw_budget,
                           double usd_per_kwh = 0.08);

}  // namespace hpc::hw
