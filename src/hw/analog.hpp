#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/rng.hpp"

/// \file analog.hpp
/// "Neuromorphic"-class matrix engines (paper Section III.B): analog
/// dot-product engines built from memristor crossbars (Ohm + Kirchhoff), and
/// coherent-photonics matrix units.  Both execute an NxN mat-vec in time and
/// energy *linear* in N — turning the O(N^2) digital problem into O(N) — at
/// the cost of limited weight precision and analog read noise.
///
/// The class provides both a *timing/energy* model (used by benches C4/C9)
/// and a *functional noisy execution* (used by hpc::ai to measure the real
/// accuracy impact of analog inference).

namespace hpc::hw {

/// Physical parameters of a crossbar-style analog matrix engine.
struct AnalogSpec {
  std::string name = "analog-dpe";
  int array_size = 256;          ///< S: crossbar rows = columns per tile
  int parallel_tiles = 64;       ///< tiles that operate concurrently
  double tile_latency_ns = 100.0;///< DAC + settle + ADC for one tile mat-vec
  double row_write_ns = 200.0;   ///< programming time per crossbar row
  double tile_energy_nj = 4.0;   ///< energy per tile activation
  double cell_write_energy_pj = 10.0;  ///< programming energy per cell
  double static_power_w = 5.0;
  double read_noise_sigma = 0.03;///< additive noise as fraction of full scale
  int weight_bits = 6;           ///< conductance levels = 2^weight_bits
  double cost_usd = 800.0;
};

/// Memristor dot-product engine calibrated after the DAC'16 DPE paper [19].
AnalogSpec dpe_spec();

/// Coherent-photonics matrix engine (Hot Chips'20 [20]): much faster tiles,
/// lower energy, but noisier and fewer effective weight bits.
AnalogSpec photonic_spec();

/// Analog matrix engine: O(N) mat-vec timing plus functional noisy execution.
class AnalogEngine {
 public:
  explicit AnalogEngine(AnalogSpec spec) : spec_(std::move(spec)) {}

  const AnalogSpec& spec() const noexcept { return spec_; }

  /// Number of tile activations an n x m mat-vec needs.
  std::int64_t tiles_for(std::int64_t rows, std::int64_t cols) const noexcept;

  /// Time for y = W x with W of shape rows x cols (weights already
  /// programmed).  Linear in matrix dimension: tiles serialize over the
  /// parallel tile pool; each tile costs a constant latency regardless of how
  /// many MACs it performs.
  double matvec_time_ns(std::int64_t rows, std::int64_t cols) const noexcept;

  /// Dynamic energy of that mat-vec in joules (linear in tile count).
  double matvec_energy_j(std::int64_t rows, std::int64_t cols) const noexcept;

  /// One-time programming cost of writing a rows x cols weight matrix.
  double program_time_ns(std::int64_t rows, std::int64_t cols) const noexcept;
  double program_energy_j(std::int64_t rows, std::int64_t cols) const noexcept;

  /// Functional noisy execution: y = W x with weights quantized to
  /// spec.weight_bits levels and per-output additive Gaussian read noise
  /// scaled to the dot product's full-scale range.  W is row-major
  /// rows x cols; x has cols entries.
  std::vector<float> matvec(std::span<const float> w, std::int64_t rows,
                            std::int64_t cols, std::span<const float> x,
                            sim::Rng& rng) const;

 private:
  AnalogSpec spec_;
};

}  // namespace hpc::hw
