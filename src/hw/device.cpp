#include "hw/device.hpp"

#include <algorithm>
#include <cmath>

namespace hpc::hw {

std::string_view name_of(DeviceKind k) noexcept {
  switch (k) {
    case DeviceKind::kCpu: return "cpu";
    case DeviceKind::kGpu: return "gpu";
    case DeviceKind::kSystolic: return "systolic";
    case DeviceKind::kWaferScale: return "wafer-scale";
    case DeviceKind::kFpga: return "fpga";
    case DeviceKind::kAnalogDpe: return "analog-dpe";
    case DeviceKind::kOptical: return "optical";
    case DeviceKind::kEdgeNpu: return "edge-npu";
  }
  return "cpu";
}

namespace {

/// Width ordering used for precision fallback (wider first).
constexpr Precision kWidthOrder[] = {Precision::FP64, Precision::FP32, Precision::TF32,
                                     Precision::BF16, Precision::FP16, Precision::INT8,
                                     Precision::INT4};

int width_rank(Precision p) noexcept {
  for (int i = 0; i < 7; ++i)
    if (kWidthOrder[i] == p) return i;
  return 1;
}

}  // namespace

Precision Device::effective_precision(Precision p) const noexcept {
  if (supports(p)) return p;
  // Fall back to the narrowest supported format that is at least as wide.
  const int want = width_rank(p);
  Precision best = Precision::FP64;
  int best_rank = -1;
  bool found = false;
  for (const auto& [prec, gf] : spec_.peak_gflops) {
    (void)gf;
    const int r = width_rank(prec);
    if (r <= want && r > best_rank) {
      best = prec;
      best_rank = r;
      found = true;
    }
  }
  if (found) return best;
  // Nothing wider: use the widest supported format (least lossy choice left).
  int widest = 7;
  for (const auto& [prec, gf] : spec_.peak_gflops) {
    (void)gf;
    if (width_rank(prec) < widest) {
      widest = width_rank(prec);
      best = prec;
    }
  }
  return best;
}

double Device::peak_gflops(Precision p) const noexcept {
  const auto it = spec_.peak_gflops.find(effective_precision(p));
  return it != spec_.peak_gflops.end() ? it->second : 0.0;
}

ExecutionEstimate Device::execute(const Kernel& k) const noexcept {
  ExecutionEstimate est;
  est.executed_precision = effective_precision(k.precision);
  const double peak = peak_gflops(k.precision);
  const double eff = std::clamp(spec_.efficiency_of(k.op), 0.0, 1.0);
  const double usable = peak * eff;  // Gflop/s
  if (usable <= 0.0 || spec_.mem_bw_gbs <= 0.0) {
    est.time_ns = 1e18;  // effectively cannot run here
    est.energy_j = 1e18;
    return est;
  }
  const double compute_ns = k.flops / usable;  // flops / (Gflop/s) = ns
  // Off-motif kernels waste bandwidth too (scatter/gather, poor locality):
  // the same efficiency factor derates the memory roof.
  const double memory_ns = k.bytes / (spec_.mem_bw_gbs * eff);  // bytes / (GB/s) = ns
  const double busy_ns = std::max(compute_ns, memory_ns);
  est.compute_bound = compute_ns >= memory_ns;
  est.time_ns = spec_.launch_overhead_ns + busy_ns;
  est.achieved_gflops = est.time_ns > 0.0 ? k.flops / est.time_ns : 0.0;

  const double utilization = busy_ns > 0.0 ? std::min(1.0, compute_ns / busy_ns) : 0.0;
  const double power_w = spec_.idle_w + utilization * (spec_.tdp_w - spec_.idle_w);
  est.energy_j = power_w * est.time_ns * 1e-9;
  return est;
}

double Device::sustained_gflops(const Kernel& k) const noexcept {
  const auto est = execute(k);
  return est.time_ns > 0.0 && est.time_ns < 1e17 ? k.flops / est.time_ns : 0.0;
}

}  // namespace hpc::hw
