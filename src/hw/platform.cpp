#include "hw/platform.hpp"

#include <cmath>
#include <limits>

namespace hpc::hw {

PlatformModel custom_board_model() {
  PlatformModel m;
  m.name = "custom-board";
  m.nre_per_device_usd = 3e6;  // the paper's "few million dollars"
  m.unit_premium_usd = 0.0;
  m.integration_weeks = 40.0;
  return m;
}

PlatformModel standard_module_model() {
  PlatformModel m;
  m.name = "standard-module";
  m.nre_per_device_usd = 3e5;  // adaptation + compliance only
  m.unit_premium_usd = 400.0;  // standard form factor overhead per unit
  m.integration_weeks = 8.0;
  return m;
}

double enablement_cost_usd(const PlatformModel& model, int device_kinds,
                           double units_per_kind) {
  return device_kinds *
         (model.nre_per_device_usd + model.unit_premium_usd * units_per_kind);
}

int affordable_device_kinds(const PlatformModel& model, double budget_usd,
                            double units_per_kind) {
  const double per_kind = model.nre_per_device_usd + model.unit_premium_usd * units_per_kind;
  if (per_kind <= 0.0) return 0;
  return static_cast<int>(budget_usd / per_kind);
}

double breakeven_units(const PlatformModel& custom, const PlatformModel& standard) {
  const double nre_gap = custom.nre_per_device_usd - standard.nre_per_device_usd;
  const double premium_gap = standard.unit_premium_usd - custom.unit_premium_usd;
  if (premium_gap <= 0.0) return std::numeric_limits<double>::infinity();
  return nre_gap / premium_gap;
}

}  // namespace hpc::hw
