#include "hw/catalog.hpp"

namespace hpc::hw {

namespace {

void set_efficiencies(DeviceSpec& d, double gemm, double conv, double matvec, double fft,
                      double stencil, double spmv, double graph, double sort, double scalar) {
  d.set_efficiency(OpClass::kGemm, gemm);
  d.set_efficiency(OpClass::kConv, conv);
  d.set_efficiency(OpClass::kMatVec, matvec);
  d.set_efficiency(OpClass::kFft, fft);
  d.set_efficiency(OpClass::kStencil, stencil);
  d.set_efficiency(OpClass::kSpMV, spmv);
  d.set_efficiency(OpClass::kGraph, graph);
  d.set_efficiency(OpClass::kSort, sort);
  d.set_efficiency(OpClass::kScalar, scalar);
}

}  // namespace

DeviceSpec cpu_server_spec() {
  DeviceSpec d;
  d.name = "cpu-server";
  d.kind = DeviceKind::kCpu;
  d.peak_gflops = {{Precision::FP64, 2'000.0}, {Precision::FP32, 4'000.0},
                   {Precision::BF16, 8'000.0}, {Precision::INT8, 16'000.0}};
  d.mem_bw_gbs = 205.0;
  d.mem_capacity_gb = 512.0;
  d.tdp_w = 280.0;
  d.idle_w = 90.0;
  d.launch_overhead_ns = 1'000.0;
  d.cost_usd = 8'000.0;
  // The generalist: decent everywhere, spectacular nowhere.
  set_efficiencies(d, 0.85, 0.65, 0.80, 0.50, 0.60, 0.55, 0.30, 0.50, 0.45);
  return d;
}

DeviceSpec cpu_edge_spec() {
  DeviceSpec d;
  d.name = "cpu-edge";
  d.kind = DeviceKind::kCpu;
  d.peak_gflops = {{Precision::FP64, 50.0}, {Precision::FP32, 200.0},
                   {Precision::BF16, 400.0}, {Precision::INT8, 800.0}};
  d.mem_bw_gbs = 25.0;
  d.mem_capacity_gb = 16.0;
  d.tdp_w = 12.0;
  d.idle_w = 2.0;
  d.launch_overhead_ns = 500.0;
  d.cost_usd = 250.0;
  set_efficiencies(d, 0.75, 0.60, 0.70, 0.45, 0.55, 0.50, 0.30, 0.45, 0.45);
  return d;
}

DeviceSpec gpu_hpc_spec() {
  DeviceSpec d;
  d.name = "gpu-hpc";
  d.kind = DeviceKind::kGpu;
  d.peak_gflops = {{Precision::FP64, 9'700.0},  {Precision::FP32, 19'500.0},
                   {Precision::TF32, 156'000.0}, {Precision::BF16, 312'000.0},
                   {Precision::FP16, 312'000.0}, {Precision::INT8, 624'000.0}};
  d.mem_bw_gbs = 2'000.0;
  d.mem_capacity_gb = 80.0;
  d.tdp_w = 400.0;
  d.idle_w = 60.0;
  d.launch_overhead_ns = 8'000.0;
  d.cost_usd = 12'000.0;
  set_efficiencies(d, 0.90, 0.85, 0.85, 0.70, 0.70, 0.30, 0.10, 0.40, 0.05);
  return d;
}

DeviceSpec systolic_spec() {
  DeviceSpec d;
  d.name = "systolic-tpu";
  d.kind = DeviceKind::kSystolic;
  d.peak_gflops = {{Precision::FP32, 4'000.0}, {Precision::BF16, 123'000.0},
                   {Precision::INT8, 246'000.0}};
  d.mem_bw_gbs = 900.0;
  d.mem_capacity_gb = 32.0;
  d.tdp_w = 250.0;
  d.idle_w = 50.0;
  d.launch_overhead_ns = 10'000.0;
  d.cost_usd = 9'000.0;
  // GEMM monoculture: superb on dense MM/conv, nearly useless off-motif.
  set_efficiencies(d, 0.95, 0.90, 0.70, 0.05, 0.05, 0.04, 0.01, 0.03, 0.01);
  return d;
}

DeviceSpec wafer_scale_spec() {
  DeviceSpec d;
  d.name = "wafer-scale";
  d.kind = DeviceKind::kWaferScale;
  d.peak_gflops = {{Precision::FP32, 400'000.0}, {Precision::BF16, 2'500'000.0},
                   {Precision::FP16, 2'500'000.0}};
  d.mem_bw_gbs = 20'000'000.0;  // on-wafer SRAM: ~20 PB/s aggregate
  d.mem_capacity_gb = 40.0;     // SRAM only; models must fit
  d.tdp_w = 20'000.0;
  d.idle_w = 4'000.0;
  d.launch_overhead_ns = 20'000.0;
  d.cost_usd = 2'000'000.0;
  // Wide chiplet-to-chiplet paths help sparsity and stencils too.
  set_efficiencies(d, 0.80, 0.80, 0.75, 0.30, 0.70, 0.50, 0.15, 0.20, 0.02);
  return d;
}

DeviceSpec fpga_spec() {
  DeviceSpec d;
  d.name = "fpga-hbm";
  d.kind = DeviceKind::kFpga;
  d.peak_gflops = {{Precision::FP32, 1'000.0}, {Precision::BF16, 8'000.0},
                   {Precision::INT8, 33'000.0}, {Precision::INT4, 66'000.0}};
  d.mem_bw_gbs = 460.0;
  d.mem_capacity_gb = 16.0;
  d.tdp_w = 110.0;
  d.idle_w = 25.0;
  d.launch_overhead_ns = 50'000.0;  // reconfiguration amortized elsewhere
  d.cost_usd = 7'000.0;
  // Flexibility: moderate on everything including irregular motifs.
  set_efficiencies(d, 0.60, 0.60, 0.60, 0.50, 0.60, 0.55, 0.40, 0.50, 0.20);
  return d;
}

DeviceSpec edge_npu_spec() {
  DeviceSpec d;
  d.name = "edge-npu";
  d.kind = DeviceKind::kEdgeNpu;
  d.peak_gflops = {{Precision::BF16, 4'000.0}, {Precision::INT8, 26'000.0},
                   {Precision::INT4, 52'000.0}};
  d.mem_bw_gbs = 34.0;
  d.mem_capacity_gb = 8.0;
  d.tdp_w = 15.0;
  d.idle_w = 1.5;
  d.launch_overhead_ns = 2'000.0;
  d.cost_usd = 300.0;
  set_efficiencies(d, 0.80, 0.90, 0.60, 0.05, 0.05, 0.10, 0.02, 0.05, 0.02);
  return d;
}

DeviceSpec analog_dpe_device_spec() {
  DeviceSpec d;
  d.name = "analog-dpe";
  d.kind = DeviceKind::kAnalogDpe;
  // 64 tiles x (2 * 256^2 MACs / 100 ns) ≈ 84 Tops equivalent on mat-vec.
  d.peak_gflops = {{Precision::INT8, 84'000.0}};
  d.mem_bw_gbs = 10'000.0;  // weights are stationary in the crossbars
  d.mem_capacity_gb = 0.5;
  d.tdp_w = 30.0;
  d.idle_w = 5.0;
  d.launch_overhead_ns = 1'000.0;
  d.cost_usd = 800.0;
  set_efficiencies(d, 0.70, 0.60, 0.95, 0.0, 0.0, 0.05, 0.0, 0.0, 0.0);
  return d;
}

DeviceSpec optical_device_spec() {
  DeviceSpec d;
  d.name = "photonic-mxu";
  d.kind = DeviceKind::kOptical;
  // 16 tiles x (2 * 64^2 MACs / 5 ns) ≈ 26 Tops equivalent.
  d.peak_gflops = {{Precision::INT8, 26'000.0}};
  d.mem_bw_gbs = 5'000.0;
  d.mem_capacity_gb = 0.1;
  d.tdp_w = 25.0;
  d.idle_w = 10.0;  // lasers
  d.launch_overhead_ns = 200.0;
  d.cost_usd = 2'500.0;
  set_efficiencies(d, 0.60, 0.50, 0.95, 0.0, 0.0, 0.02, 0.0, 0.0, 0.0);
  return d;
}

std::vector<DeviceSpec> default_catalog() {
  return {cpu_server_spec(), cpu_edge_spec(),   gpu_hpc_spec(),
          systolic_spec(),   wafer_scale_spec(), fpga_spec(),
          edge_npu_spec(),   analog_dpe_device_spec(), optical_device_spec()};
}

}  // namespace hpc::hw
