#include "hw/facility.hpp"

#include <algorithm>
#include <cmath>

namespace hpc::hw {

std::string_view name_of(Cooling c) noexcept {
  switch (c) {
    case Cooling::kAirCooled: return "air";
    case Cooling::kRearDoor: return "rear-door";
    case Cooling::kDirectLiquid: return "direct-liquid";
    case Cooling::kImmersion: return "immersion";
  }
  return "air";
}

CoolingSpec cooling_spec(Cooling c) noexcept {
  switch (c) {
    case Cooling::kAirCooled: return {c, 20.0, 1.6, 10'000.0};
    case Cooling::kRearDoor: return {c, 60.0, 1.35, 25'000.0};
    case Cooling::kDirectLiquid: return {c, 400.0, 1.1, 80'000.0};  // the paper's 400 kW rack
    case Cooling::kImmersion: return {c, 250.0, 1.05, 120'000.0};
  }
  return {Cooling::kAirCooled, 20.0, 1.6, 10'000.0};
}

RackPlan pack_rack(const DeviceSpec& device, const CoolingSpec& cooling) {
  RackPlan plan;
  plan.device = device;
  plan.cooling = cooling;
  if (device.tdp_w > 0.0)
    plan.devices_per_rack =
        static_cast<int>(cooling.max_rack_kw * 1'000.0 / device.tdp_w);
  plan.rack_it_kw = plan.devices_per_rack * device.tdp_w / 1'000.0;
  return plan;
}

FacilityPlan plan_facility(const RackPlan& rack, double facility_mw_budget,
                           double usd_per_kwh) {
  FacilityPlan plan;
  plan.rack = rack;
  if (rack.rack_it_kw <= 0.0) return plan;
  const double rack_facility_kw = rack.rack_it_kw * rack.cooling.pue;
  plan.racks = static_cast<int>(facility_mw_budget * 1'000.0 / rack_facility_kw);
  plan.devices = static_cast<double>(plan.racks) * rack.devices_per_rack;
  plan.it_mw = plan.racks * rack.rack_it_kw / 1'000.0;
  plan.facility_mw = plan.it_mw * rack.cooling.pue;
  plan.capex_usd = plan.devices * rack.device.cost_usd +
                   plan.racks * rack.cooling.capex_per_rack_usd;
  plan.annual_energy_cost_usd = plan.facility_mw * 1'000.0 * 24.0 * 365.0 * usd_per_kwh;
  return plan;
}

}  // namespace hpc::hw
