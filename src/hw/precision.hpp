#pragma once

#include <cstdint>
#include <string_view>

/// \file precision.hpp
/// Numeric precision formats and bit-exact software emulation of the reduced
/// formats the paper calls out as "becoming mainstream" (Section III.B):
/// bfloat16, fp16 and int8.  The emulators are used by hpc::ai so that the
/// precision-vs-accuracy experiment (C5) measures real rounding error.

namespace hpc::hw {

/// Arithmetic formats a device may support.
enum class Precision : std::uint8_t { FP64, FP32, TF32, BF16, FP16, INT8, INT4 };

/// Storage width in bits.
constexpr int bits_of(Precision p) noexcept {
  switch (p) {
    case Precision::FP64: return 64;
    case Precision::FP32: return 32;
    case Precision::TF32: return 19;  // stored as 32, 19 significant bits
    case Precision::BF16: return 16;
    case Precision::FP16: return 16;
    case Precision::INT8: return 8;
    case Precision::INT4: return 4;
  }
  return 32;
}

/// Bytes each element occupies in memory (TF32 is stored in 32 bits).
constexpr double bytes_of(Precision p) noexcept {
  switch (p) {
    case Precision::FP64: return 8.0;
    case Precision::FP32: return 4.0;
    case Precision::TF32: return 4.0;
    case Precision::BF16: return 2.0;
    case Precision::FP16: return 2.0;
    case Precision::INT8: return 1.0;
    case Precision::INT4: return 0.5;
  }
  return 4.0;
}

std::string_view name_of(Precision p) noexcept;

/// Rounds a float to bfloat16 (truncate mantissa to 7 bits, round-to-nearest).
float round_bf16(float x) noexcept;

/// Rounds a float to IEEE binary16 (round-to-nearest-even, with overflow to
/// +-inf and gradual underflow to subnormals).
float round_fp16(float x) noexcept;

/// Rounds a float to TF32 (10-bit mantissa, fp32 exponent range).
float round_tf32(float x) noexcept;

/// Symmetric linear int8 quantization of x given a scale (clamps to [-127,127]).
float round_int8(float x, float scale) noexcept;

/// Symmetric linear int4 quantization of x given a scale (clamps to [-7,7]).
float round_int4(float x, float scale) noexcept;

/// Applies the rounding of \p p to \p x; int formats use \p scale.
float apply_precision(float x, Precision p, float scale = 1.0f) noexcept;

}  // namespace hpc::hw
