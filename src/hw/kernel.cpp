#include "hw/kernel.hpp"

#include <cmath>

namespace hpc::hw {

std::string_view name_of(OpClass c) noexcept {
  switch (c) {
    case OpClass::kGemm: return "gemm";
    case OpClass::kConv: return "conv";
    case OpClass::kMatVec: return "matvec";
    case OpClass::kFft: return "fft";
    case OpClass::kStencil: return "stencil";
    case OpClass::kSpMV: return "spmv";
    case OpClass::kGraph: return "graph";
    case OpClass::kSort: return "sort";
    case OpClass::kScalar: return "scalar";
  }
  return "scalar";
}

Kernel make_gemm(std::int64_t m, std::int64_t n, std::int64_t k, Precision p) {
  Kernel ker;
  ker.name = "gemm_" + std::to_string(m) + "x" + std::to_string(n) + "x" + std::to_string(k);
  ker.op = OpClass::kGemm;
  ker.flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
  ker.bytes = bytes_of(p) * (static_cast<double>(m) * k + static_cast<double>(k) * n +
                             2.0 * static_cast<double>(m) * n);
  ker.precision = p;
  return ker;
}

Kernel make_matvec(std::int64_t n, Precision p) {
  Kernel ker;
  ker.name = "matvec_" + std::to_string(n);
  ker.op = OpClass::kMatVec;
  const double dn = static_cast<double>(n);
  ker.flops = 2.0 * dn * dn;
  ker.bytes = bytes_of(p) * (dn * dn + 2.0 * dn);
  ker.precision = p;
  return ker;
}

Kernel make_stencil3d(std::int64_t n, Precision p) {
  Kernel ker;
  ker.name = "stencil3d_" + std::to_string(n);
  ker.op = OpClass::kStencil;
  const double cells = static_cast<double>(n) * n * n;
  ker.flops = 8.0 * cells;            // 7 adds + 1 mul per cell
  ker.bytes = 2.0 * bytes_of(p) * cells;  // read + write per cell (cache-ideal)
  ker.precision = p;
  return ker;
}

Kernel make_fft(std::int64_t n, Precision p) {
  Kernel ker;
  ker.name = "fft_" + std::to_string(n);
  ker.op = OpClass::kFft;
  const double dn = static_cast<double>(n);
  const double log2n = dn > 1.0 ? std::log2(dn) : 1.0;
  ker.flops = 5.0 * dn * log2n;       // classic 5 N log N complex flop count
  ker.bytes = 4.0 * bytes_of(p) * dn; // complex in + out
  ker.precision = p;
  return ker;
}

Kernel make_spmv(std::int64_t nnz, Precision p) {
  Kernel ker;
  ker.name = "spmv_" + std::to_string(nnz);
  ker.op = OpClass::kSpMV;
  const double dn = static_cast<double>(nnz);
  ker.flops = 2.0 * dn;
  ker.bytes = (bytes_of(p) + 4.0) * dn;  // value + column index per nonzero
  ker.precision = p;
  return ker;
}

Kernel make_graph(std::int64_t edges) {
  Kernel ker;
  ker.name = "graph_" + std::to_string(edges);
  ker.op = OpClass::kGraph;
  const double de = static_cast<double>(edges);
  ker.flops = de;
  ker.bytes = 16.0 * de;  // pointer-chasing: two 8-byte loads per edge
  ker.precision = Precision::FP64;
  return ker;
}

}  // namespace hpc::hw
