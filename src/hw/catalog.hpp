#pragma once

#include <vector>

#include "hw/device.hpp"

/// \file catalog.hpp
/// Calibrated device datasheets for the silicon families the paper's Figure 3
/// enumerates.  Numbers are datasheet-class calibrations of publicly known
/// 2020-2021 parts (server CPU, HPC GPU, TPU-like systolic array, wafer-scale
/// engine, HBM FPGA, edge NPU) — the experiments depend on their *relative*
/// shapes, not their absolute values.

namespace hpc::hw {

/// 64-core server CPU (EPYC-class): flat, mediocre-everywhere efficiency.
DeviceSpec cpu_server_spec();

/// Small edge CPU (embedded-class).
DeviceSpec cpu_edge_spec();

/// HPC GPU (A100-class): wide precision menu, strong on dense motifs.
DeviceSpec gpu_hpc_spec();

/// Systolic/dataflow training accelerator (TPU-class): GEMM monoculture.
DeviceSpec systolic_spec();

/// Wafer-scale engine (Cerebras-class): on-wafer SRAM bandwidth, 20 kW.
DeviceSpec wafer_scale_spec();

/// Reconfigurable FPGA with HBM: flexible, moderate everywhere.
DeviceSpec fpga_spec();

/// Power-optimized edge inference NPU (Section III.B "second wave" edge).
DeviceSpec edge_npu_spec();

/// Device wrapper for the analog dot-product engine (timing via roofline
/// equivalent; functional noise model lives in AnalogEngine).
DeviceSpec analog_dpe_device_spec();

/// Device wrapper for the photonic matrix engine.
DeviceSpec optical_device_spec();

/// All of the above, the "Cambrian explosion" the paper describes.
std::vector<DeviceSpec> default_catalog();

}  // namespace hpc::hw
