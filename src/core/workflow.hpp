#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/catalog.hpp"
#include "sched/job.hpp"

/// \file workflow.hpp
/// Cross-site scientific workflows — the paper's converged Big Data + HPC +
/// AI campaigns (Figure 1) expressed as DAGs of simulate/train/infer/analyze
/// tasks with dataset dependencies, "connected through a data foundation
/// layer that keeps track of the workflow and the various data transformation
/// steps" (Section III.B).

namespace hpc::core {

/// What a task does (determines its op mix if the job's mix is unset).
enum class TaskKind : std::uint8_t { kSimulate, kTrain, kInfer, kAnalyze, kIngest };

std::string_view name_of(TaskKind k) noexcept;

/// One workflow node.
struct Task {
  int id = 0;
  std::string name;
  TaskKind kind = TaskKind::kSimulate;
  sched::Job job;                 ///< resource shape (mix auto-filled from kind)
  std::vector<int> deps;          ///< task ids that must finish first
  std::vector<int> input_datasets;///< catalog ids consumed
  /// Task ids whose output dataset this task consumes (resolved at run time;
  /// implies the dependency, which must also be listed in deps).
  std::vector<int> input_tasks;
  double output_gb = 0.0;         ///< dataset produced (registered on completion)
  data::Sensitivity output_sensitivity = data::Sensitivity::kInternal;
};

/// A DAG of tasks.
class Workflow {
 public:
  /// Adds a task; fills job.mix from the kind when the mix is all-zero.
  /// Returns the task id.
  int add(Task task);

  [[nodiscard]] const std::vector<Task>& tasks() const noexcept { return tasks_; }
  [[nodiscard]] const Task& task(int id) const { return tasks_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }

  /// Topological order; throws std::runtime_error on cycles.
  [[nodiscard]] std::vector<int> topological_order() const;

  /// Critical-path length in task count (longest dependency chain).
  [[nodiscard]] int critical_path_length() const;

 private:
  std::vector<Task> tasks_;
};

/// Default op mix of a task kind.
sched::OpMix default_mix(TaskKind k) noexcept;

/// Default precision of a task kind.
hw::Precision default_precision(TaskKind k) noexcept;

}  // namespace hpc::core
