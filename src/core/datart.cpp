#include "core/datart.hpp"

#include <algorithm>
#include <limits>
#include <map>

namespace hpc::core {

int DataRuntime::add_region(std::string name, double size_gb) {
  const int id = static_cast<int>(regions_.size());
  regions_.push_back(LogicalRegion{id, std::move(name), size_gb});
  last_writer_.push_back(-1);
  readers_.emplace_back();
  return id;
}

int DataRuntime::add_task(std::string name, std::vector<RegionRequirement> requirements,
                          double cost_ns) {
  const int id = static_cast<int>(tasks_.size());
  std::vector<int> deps;
  for (const RegionRequirement& req : requirements) {
    auto& last_writer = last_writer_[static_cast<std::size_t>(req.region)];
    auto& readers = readers_[static_cast<std::size_t>(req.region)];
    const bool reads = req.access != Access::kWrite;
    const bool writes = req.access != Access::kRead;
    if (reads && last_writer >= 0) deps.push_back(last_writer);  // RAW
    if (writes) {
      if (last_writer >= 0) deps.push_back(last_writer);         // WAW
      deps.insert(deps.end(), readers.begin(), readers.end());   // WAR
      last_writer = id;
      readers.clear();
    }
    if (reads && !writes) readers.push_back(id);
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  deps.erase(std::remove(deps.begin(), deps.end(), id), deps.end());

  tasks_.push_back(RegionTask{id, std::move(name), std::move(requirements), cost_ns});
  deps_.push_back(std::move(deps));
  return id;
}

double DataRuntime::critical_path_ns() const {
  std::vector<double> depth(tasks_.size(), 0.0);
  double best = 0.0;
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    double pre = 0.0;
    for (const int d : deps_[t]) pre = std::max(pre, depth[static_cast<std::size_t>(d)]);
    depth[t] = pre + tasks_[t].cost_ns;
    best = std::max(best, depth[t]);
  }
  return best;
}

double DataRuntime::serial_ns() const {
  double total = 0.0;
  for (const RegionTask& t : tasks_) total += t.cost_ns;
  return total;
}

RuntimeSchedule DataRuntime::schedule(int workers) const {
  RuntimeSchedule out;
  out.tasks.resize(tasks_.size());
  out.serial_ns = serial_ns();
  if (tasks_.empty() || workers <= 0) return out;

  std::vector<double> worker_free(static_cast<std::size_t>(workers), 0.0);
  std::vector<double> finish(tasks_.size(), -1.0);
  std::vector<int> remaining_deps(tasks_.size(), 0);
  for (std::size_t t = 0; t < tasks_.size(); ++t)
    remaining_deps[t] = static_cast<int>(deps_[t].size());

  // Ready tasks in submission order (stable, deterministic).
  std::vector<int> ready;
  for (std::size_t t = 0; t < tasks_.size(); ++t)
    if (remaining_deps[t] == 0) ready.push_back(static_cast<int>(t));

  std::size_t scheduled = 0;
  while (scheduled < tasks_.size()) {
    // Pick the ready task whose dependencies complete earliest.
    int best = -1;
    double best_ready_at = std::numeric_limits<double>::infinity();
    for (const int t : ready) {
      double at = 0.0;
      for (const int d : deps_[static_cast<std::size_t>(t)])
        at = std::max(at, finish[static_cast<std::size_t>(d)]);
      if (at < best_ready_at) {
        best_ready_at = at;
        best = t;
      }
    }
    // Earliest-free worker.
    std::size_t w = 0;
    for (std::size_t k = 1; k < worker_free.size(); ++k)
      if (worker_free[k] < worker_free[w]) w = k;

    const double start = std::max(best_ready_at, worker_free[w]);
    const double end = start + tasks_[static_cast<std::size_t>(best)].cost_ns;
    out.tasks[static_cast<std::size_t>(best)] =
        ScheduledTask{best, static_cast<int>(w), start, end};
    finish[static_cast<std::size_t>(best)] = end;
    worker_free[w] = end;
    out.makespan_ns = std::max(out.makespan_ns, end);
    ++scheduled;
    ready.erase(std::find(ready.begin(), ready.end(), best));

    // Unlock dependents.
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      if (finish[t] >= 0.0 || remaining_deps[t] == 0) continue;
      if (std::find(deps_[t].begin(), deps_[t].end(), best) != deps_[t].end()) {
        if (--remaining_deps[t] == 0) ready.push_back(static_cast<int>(t));
      }
    }
  }

  out.speedup = out.makespan_ns > 0.0 ? out.serial_ns / out.makespan_ns : 1.0;
  out.parallel_efficiency = out.speedup / workers;
  return out;
}

std::vector<std::size_t> DataRuntime::map_regions(const mem::Hierarchy& hierarchy) const {
  // Heat: sum of the costs of tasks touching each region.
  std::vector<double> heat(regions_.size(), 0.0);
  for (const RegionTask& t : tasks_)
    for (const RegionRequirement& req : t.requirements)
      heat[static_cast<std::size_t>(req.region)] += t.cost_ns;

  std::vector<int> order(regions_.size());
  for (std::size_t r = 0; r < regions_.size(); ++r) order[r] = static_cast<int>(r);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return heat[static_cast<std::size_t>(a)] >
                                              heat[static_cast<std::size_t>(b)]; });

  std::vector<double> tier_free;
  for (const mem::MemoryTier& t : hierarchy.tiers()) tier_free.push_back(t.capacity_gb);

  std::vector<std::size_t> placement(regions_.size(), hierarchy.tiers().size() - 1);
  for (const int r : order) {
    const double need = regions_[static_cast<std::size_t>(r)].size_gb;
    for (std::size_t tier = 0; tier < tier_free.size(); ++tier) {
      if (tier_free[tier] >= need) {
        tier_free[tier] -= need;
        placement[static_cast<std::size_t>(r)] = tier;
        break;
      }
    }
  }
  return placement;
}

}  // namespace hpc::core
