#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/tier.hpp"

/// \file datart.hpp
/// Data-centric task runtime (paper Section III.D): "especially well-suited
/// for distributed heterogeneous architectures, data-centric runtime
/// environments like Legion [21] are also rapidly emerging.  They enable the
/// programmer to embed the data structure to facilitate the extraction of
/// task and data parallelism, and to map more easily to complex, multi-level,
/// memory hierarchies."
///
/// Tasks declare which logical regions they read and write; the runtime
/// derives the dependency graph (RAW/WAR/WAW), extracts the available
/// parallelism, list-schedules onto workers, and maps regions onto a memory
/// hierarchy by access heat.

namespace hpc::core {

/// A named block of data the runtime manages.
struct LogicalRegion {
  int id = 0;
  std::string name;
  double size_gb = 0.0;
};

/// How a task touches a region.
enum class Access : std::uint8_t { kRead, kWrite, kReadWrite };

/// One region requirement of a task.
struct RegionRequirement {
  int region = 0;
  Access access = Access::kRead;
};

/// A task with declared data usage and a cost.
struct RegionTask {
  int id = 0;
  std::string name;
  std::vector<RegionRequirement> requirements;
  double cost_ns = 0.0;
};

/// One scheduled task instance.
struct ScheduledTask {
  int task = 0;
  int worker = 0;
  double start_ns = 0.0;
  double finish_ns = 0.0;
};

/// Outcome of scheduling the task graph.
struct RuntimeSchedule {
  std::vector<ScheduledTask> tasks;
  double makespan_ns = 0.0;
  double serial_ns = 0.0;
  double parallel_efficiency = 0.0;  ///< serial / (makespan x workers)
  double speedup = 0.0;              ///< serial / makespan
};

/// The runtime: regions, tasks, implicit dependencies, scheduling, mapping.
class DataRuntime {
 public:
  /// Registers a region; returns its id.
  int add_region(std::string name, double size_gb);

  /// Registers a task; dependencies are derived automatically from the
  /// region access sets against previously submitted tasks (program order):
  ///  - a reader depends on the region's last writer (RAW),
  ///  - a writer depends on the last writer (WAW) and every reader since
  ///    (WAR).
  /// Returns the task id.
  /// Costs are analytic fractional nanoseconds (list-scheduling arithmetic),
  /// not discrete simulator timestamps.
  int add_task(std::string name, std::vector<RegionRequirement> requirements,
               // archlint: allow(raw-time)
               double cost_ns);

  [[nodiscard]] std::size_t region_count() const noexcept { return regions_.size(); }
  [[nodiscard]] std::size_t task_count() const noexcept { return tasks_.size(); }
  [[nodiscard]] const LogicalRegion& region(int id) const {
    return regions_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const RegionTask& task(int id) const {
    return tasks_[static_cast<std::size_t>(id)];
  }

  /// Derived dependencies of a task (deduplicated, ascending).
  [[nodiscard]] const std::vector<int>& dependencies(int task) const {
    return deps_[static_cast<std::size_t>(task)];
  }

  /// Length of the longest dependency chain, weighted by cost.
  [[nodiscard]] double critical_path_ns() const;

  /// Sum of all task costs (the serial execution time).
  [[nodiscard]] double serial_ns() const;

  /// List-schedules the graph on \p workers identical workers (earliest
  /// finish first among ready tasks).
  [[nodiscard]] RuntimeSchedule schedule(int workers) const;

  /// Maps regions to tiers of \p hierarchy by access heat (touch count x
  /// task cost), hottest first, respecting per-tier capacity.  Returns the
  /// tier index per region.
  [[nodiscard]] std::vector<std::size_t> map_regions(const mem::Hierarchy& hierarchy) const;

 private:
  std::vector<LogicalRegion> regions_;
  std::vector<RegionTask> tasks_;
  std::vector<std::vector<int>> deps_;
  // Per-region bookkeeping for dependency extraction.
  std::vector<int> last_writer_;            // -1 if never written
  std::vector<std::vector<int>> readers_;   // readers since the last write
};

}  // namespace hpc::core
