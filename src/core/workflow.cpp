#include "core/workflow.hpp"

#include <algorithm>
#include <stdexcept>

#include "sched/workload.hpp"

namespace hpc::core {

std::string_view name_of(TaskKind k) noexcept {
  switch (k) {
    case TaskKind::kSimulate: return "simulate";
    case TaskKind::kTrain: return "train";
    case TaskKind::kInfer: return "infer";
    case TaskKind::kAnalyze: return "analyze";
    case TaskKind::kIngest: return "ingest";
  }
  return "simulate";
}

sched::OpMix default_mix(TaskKind k) noexcept {
  switch (k) {
    case TaskKind::kSimulate: return sched::mix_of(sched::JobKind::kHpcSimulation);
    case TaskKind::kTrain: return sched::mix_of(sched::JobKind::kAiTraining);
    case TaskKind::kInfer: return sched::mix_of(sched::JobKind::kAiInference);
    case TaskKind::kAnalyze: return sched::mix_of(sched::JobKind::kAnalytics);
    case TaskKind::kIngest: {
      sched::OpMix mix{};
      mix[static_cast<std::size_t>(hw::OpClass::kScalar)] = 0.5;
      mix[static_cast<std::size_t>(hw::OpClass::kSort)] = 0.5;
      return mix;
    }
  }
  return sched::mix_of(sched::JobKind::kHpcSimulation);
}

hw::Precision default_precision(TaskKind k) noexcept {
  switch (k) {
    case TaskKind::kSimulate: return hw::Precision::FP64;
    case TaskKind::kTrain: return hw::Precision::BF16;
    case TaskKind::kInfer: return hw::Precision::INT8;
    case TaskKind::kAnalyze:
    case TaskKind::kIngest: return hw::Precision::FP64;
  }
  return hw::Precision::FP64;
}

int Workflow::add(Task task) {
  task.id = static_cast<int>(tasks_.size());
  bool mix_empty = true;
  for (const double v : task.job.mix)
    if (v > 0.0) mix_empty = false;
  if (mix_empty) {
    task.job.mix = default_mix(task.kind);
    task.job.precision = default_precision(task.kind);
  }
  if (task.job.name.empty()) task.job.name = task.name;
  for (const int d : task.deps)
    if (d < 0 || d >= task.id) throw std::runtime_error("workflow: bad dependency");
  tasks_.push_back(std::move(task));
  return tasks_.back().id;
}

std::vector<int> Workflow::topological_order() const {
  // Tasks may only depend on earlier ids (enforced in add), so identity order
  // is already topological.
  std::vector<int> order(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) order[i] = static_cast<int>(i);
  return order;
}

int Workflow::critical_path_length() const {
  std::vector<int> depth(tasks_.size(), 1);
  int best = tasks_.empty() ? 0 : 1;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    for (const int d : tasks_[i].deps)
      depth[i] = std::max(depth[i], depth[static_cast<std::size_t>(d)] + 1);
    best = std::max(best, depth[i]);
  }
  return best;
}

}  // namespace hpc::core
