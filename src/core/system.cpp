#include "core/system.hpp"

#include <algorithm>
#include <limits>

#include "sched/job.hpp"

namespace hpc::core {

std::string_view name_of(PlacementPolicy p) noexcept {
  switch (p) {
    case PlacementPolicy::kSiloed: return "siloed";
    case PlacementPolicy::kGravityAware: return "gravity-aware";
    case PlacementPolicy::kCheapest: return "cheapest";
  }
  return "siloed";
}

/// Per-node availability times, indexed [site][partition][node].
struct System::NodePool {
  std::vector<std::vector<std::vector<sim::TimeNs>>> free_at;

  explicit NodePool(const std::vector<fed::Site>& sites) {
    free_at.resize(sites.size());
    for (std::size_t s = 0; s < sites.size(); ++s) {
      free_at[s].resize(sites[s].cluster.partitions.size());
      for (std::size_t p = 0; p < free_at[s].size(); ++p)
        free_at[s][p].assign(
            static_cast<std::size_t>(sites[s].cluster.partitions[p].nodes), 0);
    }
  }

  /// Earliest time \p nodes nodes of (site, partition) are simultaneously
  /// free at or after \p not_before.
  sim::TimeNs earliest(int site, int partition, int nodes, sim::TimeNs not_before) const {
    const auto& pool = free_at[static_cast<std::size_t>(site)][static_cast<std::size_t>(partition)];
    if (static_cast<int>(pool.size()) < nodes) return std::numeric_limits<sim::TimeNs>::max();
    std::vector<sim::TimeNs> sorted = pool;
    std::sort(sorted.begin(), sorted.end());
    return std::max(not_before, sorted[static_cast<std::size_t>(nodes - 1)]);
  }

  /// Marks the \p nodes earliest-free nodes busy until \p until.
  void acquire(int site, int partition, int nodes, sim::TimeNs until) {
    auto& pool = free_at[static_cast<std::size_t>(site)][static_cast<std::size_t>(partition)];
    // Select indices of the `nodes` smallest availability times.
    std::vector<std::size_t> idx(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) idx[i] = i;
    std::partial_sort(idx.begin(), idx.begin() + nodes, idx.end(),
                      [&](std::size_t a, std::size_t b) { return pool[a] < pool[b]; });
    for (int k = 0; k < nodes; ++k) pool[idx[static_cast<std::size_t>(k)]] = until;
  }
};

System::System(std::vector<fed::Site> sites, std::uint64_t seed)
    : sites_(std::move(sites)), rng_(seed), silo_of_kind_(5, 0) {}

void System::pin_silo(TaskKind kind, int site) {
  silo_of_kind_[static_cast<std::size_t>(kind)] = site;
}

void System::set_observer(obs::TraceRecorder* trace, obs::MetricRegistry* metrics) {
  trace_ = trace;
  metrics_ = metrics;
  if (trace_ != nullptr) {
    otrack_ = trace_->track("core");
    sid_task_ = trace_->intern("core.task");
    sid_stage_ = trace_->intern("core.stage");
  }
  if (metrics != nullptr) {
    m_placed_ = &metrics->counter("core.tasks_placed");
    m_unplaced_ = &metrics->counter("core.tasks_unplaced");
    h_runtime_ = &metrics->histogram("core.task_runtime_ns");
  } else {
    m_placed_ = m_unplaced_ = nullptr;
    h_runtime_ = nullptr;
  }
}

double System::transfer_ns(int from, int to, double gb) const {
  return fed::wan_transfer_ns(sites_[static_cast<std::size_t>(from)],
                              sites_[static_cast<std::size_t>(to)], gb);
}

WorkflowResult System::run(const Workflow& wf, PlacementPolicy policy) {
  WorkflowResult result;
  result.outcomes.resize(wf.size());
  NodePool pool(sites_);

  const data::TransferOracle oracle = [this](int from, int to, double gb) {
    return transfer_ns(from, to, gb);
  };

  for (const int tid : wf.topological_order()) {
    const Task& task = wf.task(tid);
    TaskOutcome& out = result.outcomes[static_cast<std::size_t>(tid)];
    out.task = tid;

    // Ready when all dependencies have finished.
    sim::TimeNs ready = task.job.arrival;
    for (const int d : task.deps)
      ready = std::max(ready, result.outcomes[static_cast<std::size_t>(d)].finish);
    out.ready = ready;

    // Inputs: explicit catalog ids plus the outputs of upstream tasks.
    std::vector<int> inputs = task.input_datasets;
    for (const int t : task.input_tasks) {
      ready = std::max(ready, result.outcomes[static_cast<std::size_t>(t)].finish);
      const int ds = result.outcomes[static_cast<std::size_t>(t)].output_dataset;
      if (ds >= 0) inputs.push_back(ds);
    }
    out.ready = ready;

    // Candidate sites per policy.
    std::vector<int> candidates;
    if (policy == PlacementPolicy::kSiloed) {
      candidates.push_back(silo_of_kind_[static_cast<std::size_t>(task.kind)]);
    } else {
      for (const fed::Site& s : sites_) candidates.push_back(s.id);
    }

    struct Option {
      int site = -1;
      int partition = -1;
      sim::TimeNs start = 0;
      sim::TimeNs finish = 0;
      double staged_gb = 0.0;
      double staging_ns = 0.0;
      double cost = 0.0;
      double energy = 0.0;
    };
    Option best;
    bool have = false;

    for (const int sid : candidates) {
      const fed::Site& site = sites_[static_cast<std::size_t>(sid)];

      // Staging: every input must be at the site (replica) or movable to it.
      double staging_ns = 0.0;
      double staged_gb = 0.0;
      bool feasible = true;
      for (const int ds : inputs) {
        const data::DatasetMeta& m = catalog_.get(ds);
        if (std::find(m.replica_sites.begin(), m.replica_sites.end(), sid) !=
            m.replica_sites.end())
          continue;  // already local
        const auto choice = catalog_.cheapest_replica(ds, sid, site.admin_domain, oracle);
        if (!choice) {
          feasible = false;  // governance pins this input elsewhere
          break;
        }
        staging_ns += choice->transfer_ns;
        staged_gb += m.size_gb;
      }
      if (!feasible) continue;

      // Best partition at the site.
      for (std::size_t p = 0; p < site.cluster.partitions.size(); ++p) {
        const sched::Partition& part = site.cluster.partitions[p];
        if (part.nodes < task.job.nodes) continue;
        const double run_ns = sched::job_runtime_ns(task.job, part.device, task.job.nodes);
        if (run_ns >= 1e17) continue;
        const double noisy_ns = run_ns * (1.0 + site.noise_factor);
        const auto data_ready = ready + static_cast<sim::TimeNs>(staging_ns);
        const sim::TimeNs start =
            pool.earliest(sid, static_cast<int>(p), task.job.nodes, data_ready);
        if (start == std::numeric_limits<sim::TimeNs>::max()) continue;
        const auto finish = start + static_cast<sim::TimeNs>(noisy_ns);
        const double node_hours = noisy_ns * 1e-9 / 3600.0 * task.job.nodes;
        const double cost = node_hours * site.price_per_node_hour;
        const double energy =
            sched::job_energy_j(task.job, part.device, task.job.nodes);

        const bool better = [&] {
          if (!have) return true;
          if (policy == PlacementPolicy::kCheapest)
            // archlint: allow(float-eq): tie-break on identically-derived costs
            return cost < best.cost || (cost == best.cost && finish < best.finish);
          return finish < best.finish ||
                 (finish == best.finish && staged_gb < best.staged_gb);
        }();
        if (better) {
          best = Option{sid, static_cast<int>(p), start, finish,
                        staged_gb, staging_ns, cost, energy};
          have = true;
        }
      }
    }

    if (!have) {
      // No feasible placement: record as never-run; downstream tasks treat the
      // dependency as satisfied at `ready` (degraded but non-blocking).
      out.site = -1;
      out.start = out.finish = ready;
      if (m_unplaced_ != nullptr) m_unplaced_->inc();
      continue;
    }

    // Commit.
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->complete_span(otrack_, sid_task_, best.start, best.finish);
      if (best.staged_gb > 0.0)
        trace_->instant(otrack_, sid_stage_, best.start, best.staged_gb);
    }
    if (m_placed_ != nullptr) {
      m_placed_->inc();
      h_runtime_->record(static_cast<double>(best.finish - best.start));
    }
    pool.acquire(best.site, best.partition, task.job.nodes, best.finish);
    out.site = best.site;
    out.partition = best.partition;
    out.start = best.start;
    out.finish = best.finish;
    out.staged_gb = best.staged_gb;
    out.cost_usd = best.cost;
    out.energy_j = best.energy;

    // Staged inputs now have replicas here; future tasks reuse them.
    for (const int ds : inputs) catalog_.add_replica(ds, best.site);

    // Register the output dataset at the execution site.
    if (task.output_gb > 0.0) {
      out.output_dataset = catalog_.derive(
          task.name + ".out", inputs, std::string(name_of(task.kind)),
          task.output_gb, best.site,
          sites_[static_cast<std::size_t>(best.site)].admin_domain,
          task.output_sensitivity, best.finish);
    }

    result.makespan = std::max(result.makespan, best.finish);
    result.wan_gb_moved += best.staged_gb;
    result.total_cost_usd += best.cost;
    result.total_energy_j += best.energy;
  }
  return result;
}

/// Workflow driver for run_coupled: tasks become events on the shared clock.
///
/// Lifecycle per task: task_ready (dependencies finished) plans a placement
/// with the same candidate evaluation as the batch planner, then stages each
/// non-local input as a *real* flow on the WAN fabric; task_staged (all
/// transfers delivered) acquires nodes and commits; task_finished releases
/// dependents and registers the output dataset.  The planner's staging
/// estimate stays analytic — the point of the coupling is that *execution*
/// sees contention the planner could not.
struct System::CosimDriver final : public sim::Component {
  System& sys;
  const Workflow& wf;
  PlacementPolicy policy;
  const CosimConfig& cfg;
  net::FlowSim& wan;
  const std::vector<int>& site_ep;  ///< site id -> WAN endpoint vertex

  NodePool pool;
  data::TransferOracle oracle;
  WorkflowResult result;
  std::vector<int> waiting;                 ///< unfinished gating deps per task
  std::vector<int> stage_left;              ///< outstanding staging flows per task
  std::vector<std::vector<int>> inputs_of;  ///< resolved input dataset ids
  std::vector<std::vector<int>> dependents;

  CosimDriver(System& system, const Workflow& workflow, PlacementPolicy pol,
              const CosimConfig& config, net::FlowSim& fabric,
              const std::vector<int>& endpoints)
      : sys(system), wf(workflow), policy(pol), cfg(config), wan(fabric),
        site_ep(endpoints), pool(system.sites_),
        oracle([&system](int from, int to, double gb) {
          return system.transfer_ns(from, to, gb);
        }) {}

  [[nodiscard]] std::string_view component_name() const noexcept override {
    return "core.cosim";
  }

  void on_attach(sim::Engine& engine) override {
    const std::size_t n = wf.size();
    result.outcomes.resize(n);
    waiting.assign(n, 0);
    stage_left.assign(n, 0);
    inputs_of.assign(n, {});
    dependents.assign(n, {});
    for (const Task& t : wf.tasks()) {
      // Readiness gate: explicit deps plus data-producing upstream tasks
      // (input_tasks imply deps, but tolerate either being listed alone).
      std::vector<int> gate = t.deps;
      gate.insert(gate.end(), t.input_tasks.begin(), t.input_tasks.end());
      std::sort(gate.begin(), gate.end());
      gate.erase(std::unique(gate.begin(), gate.end()), gate.end());
      waiting[static_cast<std::size_t>(t.id)] = static_cast<int>(gate.size());
      for (const int d : gate) dependents[static_cast<std::size_t>(d)].push_back(t.id);
      if (gate.empty())
        engine.schedule_at(t.job.arrival, [this, tid = t.id] { task_ready(tid); });
    }
  }

  void task_ready(int tid) {
    const Task& task = wf.task(tid);
    TaskOutcome& out = result.outcomes[static_cast<std::size_t>(tid)];
    out.task = tid;
    const sim::TimeNs ready = engine()->now();
    out.ready = ready;

    std::vector<int>& inputs = inputs_of[static_cast<std::size_t>(tid)];
    inputs = task.input_datasets;
    for (const int t : task.input_tasks) {
      const int ds = result.outcomes[static_cast<std::size_t>(t)].output_dataset;
      if (ds >= 0) inputs.push_back(ds);
    }

    std::vector<int> candidates;
    if (policy == PlacementPolicy::kSiloed) {
      candidates.push_back(sys.silo_of_kind_[static_cast<std::size_t>(task.kind)]);
    } else {
      for (const fed::Site& s : sys.sites_) candidates.push_back(s.id);
    }

    // Same evaluation as the batch planner; the analytic staging estimate
    // orders candidates, the fabric decides what staging actually costs.
    struct Option {
      int site = -1;
      int partition = -1;
      sim::TimeNs finish = 0;
      double staged_gb = 0.0;
      double cost = 0.0;
    };
    Option best;
    bool have = false;
    for (const int sid : candidates) {
      const fed::Site& site = sys.sites_[static_cast<std::size_t>(sid)];
      double staging_ns = 0.0;
      double staged_gb = 0.0;
      bool feasible = true;
      for (const int ds : inputs) {
        const data::DatasetMeta& m = sys.catalog_.get(ds);
        if (std::find(m.replica_sites.begin(), m.replica_sites.end(), sid) !=
            m.replica_sites.end())
          continue;
        const auto choice =
            sys.catalog_.cheapest_replica(ds, sid, site.admin_domain, oracle);
        if (!choice) {
          feasible = false;
          break;
        }
        staging_ns += choice->transfer_ns;
        staged_gb += m.size_gb;
      }
      if (!feasible) continue;

      for (std::size_t p = 0; p < site.cluster.partitions.size(); ++p) {
        const sched::Partition& part = site.cluster.partitions[p];
        if (part.nodes < task.job.nodes) continue;
        const double run_ns = sched::job_runtime_ns(task.job, part.device, task.job.nodes);
        if (run_ns >= 1e17) continue;
        const double noisy_ns = run_ns * (1.0 + site.noise_factor);
        const auto data_ready = ready + static_cast<sim::TimeNs>(staging_ns);
        const sim::TimeNs start =
            pool.earliest(sid, static_cast<int>(p), task.job.nodes, data_ready);
        if (start == std::numeric_limits<sim::TimeNs>::max()) continue;
        const auto finish = start + static_cast<sim::TimeNs>(noisy_ns);
        const double node_hours = noisy_ns * 1e-9 / 3600.0 * task.job.nodes;
        const double cost = node_hours * site.price_per_node_hour;
        const bool better = [&] {
          if (!have) return true;
          if (policy == PlacementPolicy::kCheapest)
            // archlint: allow(float-eq): tie-break on identically-derived costs
            return cost < best.cost || (cost == best.cost && finish < best.finish);
          return finish < best.finish ||
                 (finish == best.finish && staged_gb < best.staged_gb);
        }();
        if (better) {
          best = Option{sid, static_cast<int>(p), finish, staged_gb, cost};
          have = true;
        }
      }
    }

    if (!have) {
      out.site = -1;
      out.start = out.finish = ready;
      if (sys.m_unplaced_ != nullptr) sys.m_unplaced_->inc();
      task_finished(tid);  // degraded but non-blocking, as in the batch path
      return;
    }

    out.site = best.site;
    out.partition = best.partition;
    out.staged_gb = best.staged_gb;

    // Stage every non-local input as a real flow: cheapest governed replica
    // picks the source, the fabric delivers under contention, and the two
    // one-way WAN latencies ride on top of the fluid serialization (the same
    // decomposition as fed::wan_transfer_ns).
    int transfers = 0;
    for (const int ds : inputs) {
      const data::DatasetMeta& m = sys.catalog_.get(ds);
      if (std::find(m.replica_sites.begin(), m.replica_sites.end(), best.site) !=
          m.replica_sites.end())
        continue;
      const fed::Site& site = sys.sites_[static_cast<std::size_t>(best.site)];
      const auto choice =
          sys.catalog_.cheapest_replica(ds, best.site, site.admin_domain, oracle);
      if (!choice) continue;  // plan found it feasible; belt and braces
      const auto lat = static_cast<sim::TimeNs>(
          sys.sites_[static_cast<std::size_t>(choice->from_site)].wan_latency_ns +
          site.wan_latency_ns);
      net::FlowSpec spec;
      spec.src = site_ep[static_cast<std::size_t>(choice->from_site)];
      spec.dst = site_ep[static_cast<std::size_t>(best.site)];
      spec.bytes = m.size_gb * 1e9;
      spec.tag = tid;
      ++transfers;
      wan.inject(spec, [this, tid, lat](const net::FlowResult&) {
        engine()->schedule_in(lat, [this, tid] {
          if (--stage_left[static_cast<std::size_t>(tid)] == 0) task_staged(tid);
        });
      });
    }
    stage_left[static_cast<std::size_t>(tid)] = transfers;
    if (transfers == 0) task_staged(tid);
  }

  void task_staged(int tid) {
    const Task& task = wf.task(tid);
    TaskOutcome& out = result.outcomes[static_cast<std::size_t>(tid)];
    const fed::Site& site = sys.sites_[static_cast<std::size_t>(out.site)];
    const sched::Partition& part =
        site.cluster.partitions[static_cast<std::size_t>(out.partition)];
    const sim::TimeNs now = engine()->now();

    const double run_ns = sched::job_runtime_ns(task.job, part.device, task.job.nodes);
    const double noisy_ns = run_ns * (1.0 + site.noise_factor);
    const sim::TimeNs start = pool.earliest(out.site, out.partition, task.job.nodes, now);
    const auto finish = start + static_cast<sim::TimeNs>(noisy_ns);
    pool.acquire(out.site, out.partition, task.job.nodes, finish);

    const double node_hours = noisy_ns * 1e-9 / 3600.0 * task.job.nodes;
    double cost = node_hours * site.price_per_node_hour;
    if (cfg.price_fn) {
      const double price = cfg.price_fn();
      if (price > 0.0) cost *= price;  // market coupling: pay the cleared price
    }
    out.start = start;
    out.finish = finish;
    out.cost_usd = cost;
    out.energy_j = sched::job_energy_j(task.job, part.device, task.job.nodes);

    if (sys.trace_ != nullptr && sys.trace_->enabled()) {
      sys.trace_->complete_span(sys.otrack_, sys.sid_task_, start, finish);
      if (out.staged_gb > 0.0)
        sys.trace_->instant(sys.otrack_, sys.sid_stage_, start, out.staged_gb);
    }
    if (sys.m_placed_ != nullptr) {
      sys.m_placed_->inc();
      sys.h_runtime_->record(static_cast<double>(finish - start));
    }

    // The transfers just landed: the inputs are replicas here from now on.
    for (const int ds : inputs_of[static_cast<std::size_t>(tid)])
      sys.catalog_.add_replica(ds, out.site);

    engine()->schedule_at(finish, [this, tid] { task_finished(tid); });
  }

  void task_finished(int tid) {
    const Task& task = wf.task(tid);
    TaskOutcome& out = result.outcomes[static_cast<std::size_t>(tid)];
    if (out.site >= 0) {
      if (task.output_gb > 0.0) {
        out.output_dataset = sys.catalog_.derive(
            task.name + ".out", inputs_of[static_cast<std::size_t>(tid)],
            std::string(name_of(task.kind)), task.output_gb, out.site,
            sys.sites_[static_cast<std::size_t>(out.site)].admin_domain,
            task.output_sensitivity, out.finish);
      }
      result.makespan = std::max(result.makespan, out.finish);
      result.wan_gb_moved += out.staged_gb;
      result.total_cost_usd += out.cost_usd;
      result.total_energy_j += out.energy_j;
    }
    const sim::TimeNs now = engine()->now();
    for (const int d : dependents[static_cast<std::size_t>(tid)]) {
      if (--waiting[static_cast<std::size_t>(d)] == 0) {
        const sim::TimeNs at = std::max(now, wf.task(d).job.arrival);
        engine()->schedule_at(at, [this, d] { task_ready(d); });
      }
    }
  }
};

CoupledResult System::run_coupled(const Workflow& wf, PlacementPolicy policy,
                                  const CosimConfig& cfg) {
  // WAN star: one endpoint per site, uplinked into a core switch at the
  // site's uplink bandwidth/latency.  Concurrent staging transfers through
  // the same uplink now share it max-min fairly instead of each assuming the
  // full pipe (the analytic formula's blind spot).
  net::Network wan_net;
  std::vector<int> site_ep(sites_.size());
  for (std::size_t s = 0; s < sites_.size(); ++s)
    site_ep[s] = wan_net.add_node(net::NodeRole::kEndpoint, sites_[s].name);
  const int core = wan_net.add_node(net::NodeRole::kSwitch, "wan.core");
  for (std::size_t s = 0; s < sites_.size(); ++s)
    wan_net.add_duplex_link(site_ep[s], core, net::LinkClass::kWan,
                            sites_[s].wan_bandwidth_gbs, sites_[s].wan_latency_ns);
  wan_net.build_routes();

  sim::Engine engine(cfg.seed);
  net::FlowSim wan(wan_net, cfg.wan_cc, net::Routing::kMinimal,
                   engine.stream_seed("net.wan"));
  wan.set_observer(trace_, metrics_);
  for (sim::Component* c : cfg.extra) engine.attach(*c);
  engine.attach(wan);
  CosimDriver driver(*this, wf, policy, cfg, wan, site_ep);
  engine.attach(driver);
  engine.run();

  CoupledResult res;
  res.workflow = std::move(driver.result);
  res.wan = wan.take_summary();
  res.engine_digest = engine.digest();
  res.events_executed = engine.events_executed();
  res.end_time = engine.now();
  engine.detach(driver);
  engine.detach(wan);
  for (sim::Component* c : cfg.extra) engine.detach(*c);
  return res;
}

}  // namespace hpc::core
