#include "core/system.hpp"

#include <algorithm>
#include <limits>

#include "sched/job.hpp"

namespace hpc::core {

std::string_view name_of(PlacementPolicy p) noexcept {
  switch (p) {
    case PlacementPolicy::kSiloed: return "siloed";
    case PlacementPolicy::kGravityAware: return "gravity-aware";
    case PlacementPolicy::kCheapest: return "cheapest";
  }
  return "siloed";
}

/// Per-node availability times, indexed [site][partition][node].
struct System::NodePool {
  std::vector<std::vector<std::vector<sim::TimeNs>>> free_at;

  explicit NodePool(const std::vector<fed::Site>& sites) {
    free_at.resize(sites.size());
    for (std::size_t s = 0; s < sites.size(); ++s) {
      free_at[s].resize(sites[s].cluster.partitions.size());
      for (std::size_t p = 0; p < free_at[s].size(); ++p)
        free_at[s][p].assign(
            static_cast<std::size_t>(sites[s].cluster.partitions[p].nodes), 0);
    }
  }

  /// Earliest time \p nodes nodes of (site, partition) are simultaneously
  /// free at or after \p not_before.
  sim::TimeNs earliest(int site, int partition, int nodes, sim::TimeNs not_before) const {
    const auto& pool = free_at[static_cast<std::size_t>(site)][static_cast<std::size_t>(partition)];
    if (static_cast<int>(pool.size()) < nodes) return std::numeric_limits<sim::TimeNs>::max();
    std::vector<sim::TimeNs> sorted = pool;
    std::sort(sorted.begin(), sorted.end());
    return std::max(not_before, sorted[static_cast<std::size_t>(nodes - 1)]);
  }

  /// Marks the \p nodes earliest-free nodes busy until \p until.
  void acquire(int site, int partition, int nodes, sim::TimeNs until) {
    auto& pool = free_at[static_cast<std::size_t>(site)][static_cast<std::size_t>(partition)];
    // Select indices of the `nodes` smallest availability times.
    std::vector<std::size_t> idx(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) idx[i] = i;
    std::partial_sort(idx.begin(), idx.begin() + nodes, idx.end(),
                      [&](std::size_t a, std::size_t b) { return pool[a] < pool[b]; });
    for (int k = 0; k < nodes; ++k) pool[idx[static_cast<std::size_t>(k)]] = until;
  }
};

System::System(std::vector<fed::Site> sites, std::uint64_t seed)
    : sites_(std::move(sites)), rng_(seed), silo_of_kind_(5, 0) {}

void System::pin_silo(TaskKind kind, int site) {
  silo_of_kind_[static_cast<std::size_t>(kind)] = site;
}

void System::set_observer(obs::TraceRecorder* trace, obs::MetricRegistry* metrics) {
  trace_ = trace;
  if (trace_ != nullptr) {
    otrack_ = trace_->track("core");
    sid_task_ = trace_->intern("core.task");
    sid_stage_ = trace_->intern("core.stage");
  }
  if (metrics != nullptr) {
    m_placed_ = &metrics->counter("core.tasks_placed");
    m_unplaced_ = &metrics->counter("core.tasks_unplaced");
    h_runtime_ = &metrics->histogram("core.task_runtime_ns");
  } else {
    m_placed_ = m_unplaced_ = nullptr;
    h_runtime_ = nullptr;
  }
}

double System::transfer_ns(int from, int to, double gb) const {
  return fed::wan_transfer_ns(sites_[static_cast<std::size_t>(from)],
                              sites_[static_cast<std::size_t>(to)], gb);
}

WorkflowResult System::run(const Workflow& wf, PlacementPolicy policy) {
  WorkflowResult result;
  result.outcomes.resize(wf.size());
  NodePool pool(sites_);

  const data::TransferOracle oracle = [this](int from, int to, double gb) {
    return transfer_ns(from, to, gb);
  };

  for (const int tid : wf.topological_order()) {
    const Task& task = wf.task(tid);
    TaskOutcome& out = result.outcomes[static_cast<std::size_t>(tid)];
    out.task = tid;

    // Ready when all dependencies have finished.
    sim::TimeNs ready = task.job.arrival;
    for (const int d : task.deps)
      ready = std::max(ready, result.outcomes[static_cast<std::size_t>(d)].finish);
    out.ready = ready;

    // Inputs: explicit catalog ids plus the outputs of upstream tasks.
    std::vector<int> inputs = task.input_datasets;
    for (const int t : task.input_tasks) {
      ready = std::max(ready, result.outcomes[static_cast<std::size_t>(t)].finish);
      const int ds = result.outcomes[static_cast<std::size_t>(t)].output_dataset;
      if (ds >= 0) inputs.push_back(ds);
    }
    out.ready = ready;

    // Candidate sites per policy.
    std::vector<int> candidates;
    if (policy == PlacementPolicy::kSiloed) {
      candidates.push_back(silo_of_kind_[static_cast<std::size_t>(task.kind)]);
    } else {
      for (const fed::Site& s : sites_) candidates.push_back(s.id);
    }

    struct Option {
      int site = -1;
      int partition = -1;
      sim::TimeNs start = 0;
      sim::TimeNs finish = 0;
      double staged_gb = 0.0;
      double staging_ns = 0.0;
      double cost = 0.0;
      double energy = 0.0;
    };
    Option best;
    bool have = false;

    for (const int sid : candidates) {
      const fed::Site& site = sites_[static_cast<std::size_t>(sid)];

      // Staging: every input must be at the site (replica) or movable to it.
      double staging_ns = 0.0;
      double staged_gb = 0.0;
      bool feasible = true;
      for (const int ds : inputs) {
        const data::DatasetMeta& m = catalog_.get(ds);
        if (std::find(m.replica_sites.begin(), m.replica_sites.end(), sid) !=
            m.replica_sites.end())
          continue;  // already local
        const auto choice = catalog_.cheapest_replica(ds, sid, site.admin_domain, oracle);
        if (!choice) {
          feasible = false;  // governance pins this input elsewhere
          break;
        }
        staging_ns += choice->transfer_ns;
        staged_gb += m.size_gb;
      }
      if (!feasible) continue;

      // Best partition at the site.
      for (std::size_t p = 0; p < site.cluster.partitions.size(); ++p) {
        const sched::Partition& part = site.cluster.partitions[p];
        if (part.nodes < task.job.nodes) continue;
        const double run_ns = sched::job_runtime_ns(task.job, part.device, task.job.nodes);
        if (run_ns >= 1e17) continue;
        const double noisy_ns = run_ns * (1.0 + site.noise_factor);
        const auto data_ready = ready + static_cast<sim::TimeNs>(staging_ns);
        const sim::TimeNs start =
            pool.earliest(sid, static_cast<int>(p), task.job.nodes, data_ready);
        if (start == std::numeric_limits<sim::TimeNs>::max()) continue;
        const auto finish = start + static_cast<sim::TimeNs>(noisy_ns);
        const double node_hours = noisy_ns * 1e-9 / 3600.0 * task.job.nodes;
        const double cost = node_hours * site.price_per_node_hour;
        const double energy =
            sched::job_energy_j(task.job, part.device, task.job.nodes);

        const bool better = [&] {
          if (!have) return true;
          if (policy == PlacementPolicy::kCheapest)
            // archlint: allow(float-eq): tie-break on identically-derived costs
            return cost < best.cost || (cost == best.cost && finish < best.finish);
          return finish < best.finish ||
                 (finish == best.finish && staged_gb < best.staged_gb);
        }();
        if (better) {
          best = Option{sid, static_cast<int>(p), start, finish,
                        staged_gb, staging_ns, cost, energy};
          have = true;
        }
      }
    }

    if (!have) {
      // No feasible placement: record as never-run; downstream tasks treat the
      // dependency as satisfied at `ready` (degraded but non-blocking).
      out.site = -1;
      out.start = out.finish = ready;
      if (m_unplaced_ != nullptr) m_unplaced_->inc();
      continue;
    }

    // Commit.
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->complete_span(otrack_, sid_task_, best.start, best.finish);
      if (best.staged_gb > 0.0)
        trace_->instant(otrack_, sid_stage_, best.start, best.staged_gb);
    }
    if (m_placed_ != nullptr) {
      m_placed_->inc();
      h_runtime_->record(static_cast<double>(best.finish - best.start));
    }
    pool.acquire(best.site, best.partition, task.job.nodes, best.finish);
    out.site = best.site;
    out.partition = best.partition;
    out.start = best.start;
    out.finish = best.finish;
    out.staged_gb = best.staged_gb;
    out.cost_usd = best.cost;
    out.energy_j = best.energy;

    // Staged inputs now have replicas here; future tasks reuse them.
    for (const int ds : inputs) catalog_.add_replica(ds, best.site);

    // Register the output dataset at the execution site.
    if (task.output_gb > 0.0) {
      out.output_dataset = catalog_.derive(
          task.name + ".out", inputs, std::string(name_of(task.kind)),
          task.output_gb, best.site,
          sites_[static_cast<std::size_t>(best.site)].admin_domain,
          task.output_sensitivity, best.finish);
    }

    result.makespan = std::max(result.makespan, best.finish);
    result.wan_gb_moved += best.staged_gb;
    result.total_cost_usd += best.cost;
    result.total_energy_j += best.energy;
  }
  return result;
}

}  // namespace hpc::core
