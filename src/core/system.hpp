#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "core/workflow.hpp"
#include "data/catalog.hpp"
#include "fed/site.hpp"
#include "net/flowsim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

/// \file system.hpp
/// The Archipelago itself: "an archipelago of tightly connected
/// supercomputing islands, some containing combinations of very large
/// accelerators and massive compute capabilities, some distributed at the
/// edge ..., all of them connected through a data foundation layer"
/// (Section III.B).  The System composes federated sites with the data
/// catalog and executes workflows through a transparent meta-scheduler
/// (Section III.F) that picks silicon and site per task.

namespace hpc::core {

/// How the meta-scheduler maps workflow tasks to sites.
enum class PlacementPolicy : std::uint8_t {
  kSiloed,       ///< each task kind pinned to its traditional silo
  kGravityAware, ///< minimize staging + queue + run per task
  kCheapest,     ///< minimize dollar cost, ties broken by finish time
};

std::string_view name_of(PlacementPolicy p) noexcept;

/// One executed task.
struct TaskOutcome {
  int task = 0;
  int site = -1;
  int partition = -1;
  sim::TimeNs ready = 0;   ///< dependencies satisfied
  sim::TimeNs start = 0;   ///< inputs staged and nodes acquired
  sim::TimeNs finish = 0;
  double staged_gb = 0.0;
  double cost_usd = 0.0;
  double energy_j = 0.0;
  int output_dataset = -1;
};

/// Whole-workflow outcome.
struct WorkflowResult {
  std::vector<TaskOutcome> outcomes;
  sim::TimeNs makespan = 0;
  double wan_gb_moved = 0.0;
  double total_cost_usd = 0.0;
  double total_energy_j = 0.0;
};

/// Coupled co-simulation configuration (System::run_coupled).
struct CosimConfig {
  std::uint64_t seed = 1;  ///< engine seed; all substrate streams derive from it
  net::CongestionControl wan_cc = net::CongestionControl::kFlowBased;
  /// Optional market coupling: sampled when a task commits to run; the task's
  /// dollar cost is multiplied by the sampled price when it returns > 0
  /// (e.g. `[&ex] { return ex.last_price(); }` for an attached Exchange).
  std::function<double()> price_fn;
  /// Extra components to attach to the shared engine before the workflow
  /// driver (e.g. a market::Exchange with periodic co-sim clearing).  Borrowed;
  /// must outlive the run_coupled call.
  std::vector<sim::Component*> extra;
};

/// Outcome of a coupled run: the workflow result plus the WAN fabric summary
/// and the shared kernel's determinism witness.
struct CoupledResult {
  WorkflowResult workflow;
  net::FlowRunSummary wan;
  std::uint64_t engine_digest = 0;   ///< FNV-1a over the executed event stream
  std::uint64_t events_executed = 0;
  sim::TimeNs end_time = 0;          ///< shared clock at quiescence
};

/// The composed system.
class System {
 public:
  explicit System(std::vector<fed::Site> sites, std::uint64_t seed = 1);

  [[nodiscard]] const std::vector<fed::Site>& sites() const noexcept { return sites_; }
  data::Catalog& catalog() noexcept { return catalog_; }
  [[nodiscard]] const data::Catalog& catalog() const noexcept { return catalog_; }

  /// Pins a task kind to a site (used by the kSiloed policy).  Unpinned kinds
  /// default to site 0.
  void pin_silo(TaskKind kind, int site);

  /// Attaches observability sinks (both optional; nullptr detaches).  Each
  /// placed task becomes a "core.task" complete span (start→finish) on the
  /// "core" track, with a "core.stage" instant (payload = GB staged) when
  /// inputs moved over the WAN.  Metered: tasks placed/unplaced and a
  /// task-runtime histogram.  Passive: results are identical either way.
  void set_observer(obs::TraceRecorder* trace, obs::MetricRegistry* metrics = nullptr);

  /// Executes a workflow: tasks run in dependency order; each task is placed
  /// per \p policy, inputs are staged through the catalog's cheapest governed
  /// replica, outputs are registered as new datasets at the execution site.
  /// Staging time is the *analytic* WAN formula (no contention between
  /// concurrent transfers) — the batch planner.
  WorkflowResult run(const Workflow& wf, PlacementPolicy policy);

  /// Executes a workflow as a coupled co-simulation on one shared clock:
  /// task staging emits *real* flows on a WAN star topology simulated by
  /// net::FlowSim (concurrent transfers contend for uplink bandwidth under
  /// max-min fairness), task completion events release dependents, and any
  /// extra components in \p cfg (e.g. a market exchange clearing
  /// periodically) interleave on the same timeline.  The returned engine
  /// digest is the scenario's single determinism witness.
  CoupledResult run_coupled(const Workflow& wf, PlacementPolicy policy,
                            const CosimConfig& cfg);

 private:
  struct NodePool;     // per-partition node availability
  struct CosimDriver;  // workflow driver component for run_coupled

  [[nodiscard]] double transfer_ns(int from, int to, double gb) const;

  std::vector<fed::Site> sites_;
  data::Catalog catalog_;
  sim::Rng rng_;
  std::vector<int> silo_of_kind_;

  // Observability (optional, passive; see set_observer).
  obs::TraceRecorder* trace_ = nullptr;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::TrackId otrack_ = 0;
  obs::StrId sid_task_ = 0;
  obs::StrId sid_stage_ = 0;
  obs::Counter* m_placed_ = nullptr;
  obs::Counter* m_unplaced_ = nullptr;
  obs::Histogram* h_runtime_ = nullptr;
};

}  // namespace hpc::core
