/// Ablation A3 (paper Section III.C): per-workflow virtual networks — "a
/// secure environment with strong service level guarantees that allows a
/// heterogeneous mix of processing capabilities to be used together".
///
/// A premium tenant's all-to-all collective shares a dragonfly fabric with
/// an increasingly aggressive best-effort tenant.  Weighted-fair virtual
/// networks hold the premium tenant's completion time nearly flat; without
/// them, the storm tramples it.  Combined with flow-based congestion control
/// this is the full isolation story of the paper's fabric section.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/flowsim.hpp"
#include "net/topology.hpp"

namespace {

using namespace hpc;

/// Premium tenant FCT (p99, ms) with `storm` best-effort flows sharing the
/// fabric, with or without virtual-network weighting.
double premium_p99_ms(int storm_flows, bool virtual_networks, net::CongestionControl cc) {
  const net::Network net = net::make_dragonfly(4, 2, 2);
  const auto& h = net.endpoints();
  net::FlowSim sim(net, cc, net::Routing::kMinimal, 7);

  // Premium tenant: 16-endpoint all-to-all of 250 MB pairs, weight 8 inside
  // its virtual network.
  const double premium_weight = virtual_networks ? 8.0 : 1.0;
  for (int a = 0; a < 16; ++a)
    for (int b = 0; b < 16; ++b)
      if (a != b)
        sim.add_flow({h[static_cast<std::size_t>(a)], h[static_cast<std::size_t>(b)],
                      2.5e8, 0, 1, premium_weight});

  // Best-effort storm: random large flows across the whole machine.
  sim::Rng rng(9);
  for (int s = 0; s < storm_flows; ++s) {
    const int src = static_cast<int>(rng.index(h.size()));
    int dst = static_cast<int>(rng.index(h.size()));
    if (dst == src) dst = (dst + 1) % static_cast<int>(h.size());
    sim.add_flow({h[static_cast<std::size_t>(src)], h[static_cast<std::size_t>(dst)],
                  5e9, 0, 2, 1.0});
  }
  return sim.run().fct_sampler(1).p99() / 1e6;
}

void print_experiment() {
  hpc::bench::banner(
      "A3", "Virtual networks with service-level guarantees (Section III.C)",
      "per-workflow virtual networks isolate tenants: a premium collective "
      "keeps its tail latency under a best-effort storm");

  sim::Table t({"storm flows", "premium p99 (no VN)", "premium p99 (VN w=8)",
                "protection"});
  for (const int storm : {0, 16, 64, 128}) {
    const double none = premium_p99_ms(storm, false, net::CongestionControl::kFlowBased);
    const double vn = premium_p99_ms(storm, true, net::CongestionControl::kFlowBased);
    t.add_row({std::to_string(storm), sim::fmt(none, 1) + " ms", sim::fmt(vn, 1) + " ms",
               sim::fmt(none / vn, 2) + "x"});
  }
  t.print();

  std::printf("\nand stacked with congestion management off (the worst case):\n");
  sim::Table w({"storm flows", "no VN + no CC", "VN + flow-based CC", "protection"});
  for (const int storm : {64}) {
    const double worst = premium_p99_ms(storm, false, net::CongestionControl::kNone);
    const double best = premium_p99_ms(storm, true, net::CongestionControl::kFlowBased);
    w.add_row({std::to_string(storm), sim::fmt(worst, 1) + " ms", sim::fmt(best, 1) + " ms",
               sim::fmt(worst / best, 2) + "x"});
  }
  w.print();
  std::printf("\n");
}

void BM_TenantIsolation(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        premium_p99_ms(static_cast<int>(state.range(0)), true,
                       net::CongestionControl::kFlowBased));
}
BENCHMARK(BM_TenantIsolation)->Arg(16)->Arg(64);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
