#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "benchjson.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "exec/policy.hpp"

/// \file bench_perf_campaign.cpp
/// Campaign throughput benchmark — replicas/sec under SerialPolicy vs
/// ThreadPoolPolicy{2,4} — plus an in-bench assertion that the thread-pool
/// runs produce byte-identical artifacts to the serial reference.
///
/// Two row families, because executor speedup has two distinct sources:
///
///   federation/12r/*      — 12 coupled-co-sim replicas (the real workload).
///                           CPU-bound, so the speedup here is the host's
///                           spare *cores*: ~Nx on an N-core machine, ~1x on
///                           a single-core container.
///   latency_hiding/16r/*  — 16 replicas that each block for a fixed 25 ms
///                           (standing in for replicas gated on I/O, remote
///                           data, or a busy queue — the archipelago's normal
///                           operating mode).  The pool overlaps the waits,
///                           so the speedup here measures pure executor
///                           concurrency and reaches ~min(N, workers)x even
///                           with one core.
///
/// Both families go into BENCH_campaign.json (>= 3 fixed iterations per
/// row, self-validated like BENCH_obs.json).  The committed baseline from a
/// single-core CI container therefore shows ~1x on the federation rows and
/// >= 3x at 4 workers on the latency-hiding rows; on a multicore host the
/// federation rows scale too.  The determinism cross-check below is
/// unconditional: whatever the speedup, serial and 4-thread campaigns must
/// agree byte-for-byte on digests, merged metrics, and the cell aggregate.

namespace {

using hpc::campaign::CampaignOptions;
using hpc::campaign::CampaignResult;
using hpc::campaign::ReplicaResult;
using hpc::campaign::ReplicaSpec;
using hpc::campaign::ScenarioFn;
using hpc::campaign::ScenarioMatrix;

/// 2 topologies x 1 mix x 3 policies x 2 seeds = 12 coupled-sim replicas.
ScenarioMatrix federation_matrix() {
  ScenarioMatrix m;
  m.topologies = {"wan-10g", "wan-100g"};
  m.device_mixes = {"baseline"};
  m.policies = {"siloed", "gravity", "cheapest"};
  m.seeds = {1, 2};
  return m;
}

/// 16 replicas on one synthetic axis set; the scenario blocks 25 ms each.
ScenarioMatrix blocking_matrix() {
  ScenarioMatrix m;
  m.topologies = {"wan-10g"};
  m.device_mixes = {"baseline"};
  m.policies = {"blocked"};
  m.seeds = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  return m;
}

/// Stand-in for a replica gated on an external wait: a fixed deterministic
/// sleep plus a trivial digest.  Wall-time only — the sleep length never
/// enters any artifact, so determinism is unaffected.
ReplicaResult blocking_scenario(const ReplicaSpec& spec, std::uint64_t engine_seed) {
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  ReplicaResult r;
  r.digest = engine_seed;
  r.events = 1;
  r.latency_ns = 1.0;
  r.work = 1.0;
  r.metrics.counter("blocked.replicas").inc();
  (void)spec;
  return r;
}

void run_campaign_rows(benchmark::State& state, const ScenarioMatrix& matrix,
                       const ScenarioFn& scenario, int workers) {
  CampaignOptions options;
  options.seed = 2026;
  std::uint64_t digest = 0;
  for (auto _ : state) {
    CampaignResult result;
    if (workers > 0) {
      hpc::exec::ThreadPoolPolicy policy(workers);
      result = run_campaign(matrix, scenario, policy, options);
    } else {
      hpc::exec::SerialPolicy policy;
      result = run_campaign(matrix, scenario, policy, options);
    }
    digest = result.campaign_digest;
    benchmark::DoNotOptimize(digest);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(matrix.size()));
}

void register_all() {
  struct Row {
    const char* name;
    bool federation;
    int workers;  ///< 0 = SerialPolicy
  };
  constexpr Row kRows[] = {
      {"federation/12r/serial", true, 0},
      {"federation/12r/threads2", true, 2},
      {"federation/12r/threads4", true, 4},
      {"latency_hiding/16r/serial", false, 0},
      {"latency_hiding/16r/threads2", false, 2},
      {"latency_hiding/16r/threads4", false, 4},
  };
  for (const Row& row : kRows) {
    benchmark::RegisterBenchmark(
        row.name,
        [row](benchmark::State& state) {
          if (row.federation) {
            run_campaign_rows(state, federation_matrix(),
                              hpc::campaign::make_federation_scenario(), row.workers);
          } else {
            run_campaign_rows(state, blocking_matrix(), blocking_scenario, row.workers);
          }
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

/// Strip google-benchmark's "/iterations:N" name suffix (same convention as
/// bench_perf_obs) so baseline row names stay stable.
std::vector<hpc::benchjson::Entry> stable_names(
    std::vector<hpc::benchjson::Entry> entries) {
  const std::string marker = "/iterations:";
  for (hpc::benchjson::Entry& e : entries) {
    const std::size_t at = e.name.rfind(marker);
    if (at != std::string::npos &&
        e.name.find_first_not_of("0123456789", at + marker.size()) == std::string::npos)
      e.name.erase(at);
  }
  return entries;
}

double entry_ns(const std::vector<hpc::benchjson::Entry>& entries,
                const std::string& name) {
  for (const hpc::benchjson::Entry& e : entries)
    if (e.name == name) return e.ns_per_op;
  return 0.0;
}

/// The acceptance cross-check: serial and 4-thread campaigns over the
/// federation matrix must agree byte-for-byte on every aggregate.
bool check_determinism() {
  const ScenarioMatrix matrix = federation_matrix();
  const ScenarioFn scenario = hpc::campaign::make_federation_scenario();
  CampaignOptions options;
  options.seed = 2026;
  hpc::exec::SerialPolicy serial;
  hpc::exec::ThreadPoolPolicy threads(4);
  const CampaignResult a = run_campaign(matrix, scenario, serial, options);
  const CampaignResult b = run_campaign(matrix, scenario, threads, options);
  if (a.campaign_digest != b.campaign_digest ||
      a.digests_text() != b.digests_text() ||
      a.merged.snapshot_json() != b.merged.snapshot_json() ||
      a.cells_bench_json() != b.cells_bench_json()) {
    std::fprintf(stderr,
                 "bench_perf_campaign: serial and 4-thread artifacts differ — "
                 "execution policy leaked into results\n");
    return false;
  }
  std::printf("bench_perf_campaign: serial == threads4 artifacts (digest %016llx)\n",
              static_cast<unsigned long long>(a.campaign_digest));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  hpc::benchjson::Recorder recorder;
  benchmark::RunSpecifiedBenchmarks(&recorder);
  benchmark::Shutdown();

  if (!check_determinism()) return 1;

  const char* out_env = std::getenv("BENCHJSON_OUT");
  const std::string out = out_env != nullptr ? out_env : "BENCH_campaign.json";
  const std::vector<hpc::benchjson::Entry> entries = stable_names(recorder.entries());
  if (!hpc::benchjson::write_file(out, "campaign", entries)) {
    std::fprintf(stderr, "bench_perf_campaign: failed to write %s\n", out.c_str());
    return 1;
  }
  const std::string error = hpc::benchjson::validate_file(out, /*min_iterations=*/3);
  if (!error.empty()) {
    std::fprintf(stderr, "bench_perf_campaign: emitted %s is invalid: %s\n",
                 out.c_str(), error.c_str());
    return 1;
  }

  for (const char* family : {"federation/12r", "latency_hiding/16r"}) {
    const double serial = entry_ns(entries, std::string(family) + "/serial");
    const double t2 = entry_ns(entries, std::string(family) + "/threads2");
    const double t4 = entry_ns(entries, std::string(family) + "/threads4");
    if (serial > 0.0 && t2 > 0.0 && t4 > 0.0)
      std::printf("bench_perf_campaign: %s speedup  x2: %.2f  x4: %.2f\n", family,
                  serial / t2, serial / t4);
  }
  std::printf("bench_perf_campaign: wrote %s (%zu rows)\n", out.c_str(), entries.size());
  return 0;
}
