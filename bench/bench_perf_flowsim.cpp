#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchjson.hpp"
#include "net/flowsim.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

/// \file bench_perf_flowsim.cpp
/// P1: FlowSim hot-path microbenchmarks — the repo's perf trajectory.
///
/// Unlike the bench_c*/bench_a* experiment binaries (which reproduce paper
/// claims), this binary exists to *regress performance*: it times complete
/// FlowSim runs over fat-tree and dragonfly fabrics at 256/1k/4k flows for
/// the three CongestionControl × Routing corners the experiments exercise
/// (congestion-tree minimal, flow-based minimal, flow-based adaptive), and
/// emits BENCH_flowsim.json (ns/op per scenario) via tools/benchjson so
/// subsequent PRs can diff against the committed baseline.  ci/check.sh
/// stage [5/8] runs it with --benchmark_min_time=0.05s as a perf smoke.
///
/// The traffic mix is the hostile one for the solver: a quarter of the
/// flows form incasts onto a few receivers (deep congestion trees, many
/// max-min rounds) and the rest are pseudo-uniform pairs, with arrivals
/// staggered so the active set churns on every event.

namespace {

using hpc::net::CongestionControl;
using hpc::net::FlowSim;
using hpc::net::FlowSpec;
using hpc::net::Network;
using hpc::net::Routing;

struct Corner {
  const char* name;
  CongestionControl cc;
  Routing routing;
};

constexpr Corner kCorners[] = {
    {"none_minimal", CongestionControl::kNone, Routing::kMinimal},
    {"flowbased_minimal", CongestionControl::kFlowBased, Routing::kMinimal},
    {"flowbased_adaptive", CongestionControl::kFlowBased, Routing::kAdaptive},
};

/// Deterministic incast + uniform mix: seeded, so every run (and every PR's
/// baseline) times exactly the same workload.
std::vector<FlowSpec> make_flows(const Network& net, int n, std::uint64_t seed) {
  hpc::sim::Rng rng(seed);
  const std::vector<int>& hosts = net.endpoints();
  std::vector<int> receivers;
  for (int r = 0; r < 8; ++r) receivers.push_back(hosts[rng.index(hosts.size())]);
  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    FlowSpec f;
    if (i % 4 == 0) {  // incast quarter
      f.src = hosts[rng.index(hosts.size())];
      f.dst = receivers[static_cast<std::size_t>(i / 4) % receivers.size()];
    } else {  // pseudo-uniform pair
      f.src = hosts[rng.index(hosts.size())];
      f.dst = hosts[rng.index(hosts.size())];
    }
    if (f.src == f.dst) f.dst = hosts[(rng.index(hosts.size()) + 1) % hosts.size()];
    f.bytes = rng.uniform(1e6, 5e7);
    f.start = static_cast<hpc::sim::TimeNs>(rng.uniform(0.0, 1e6 * n));
    f.tag = i;
    f.weight = (i % 8 == 0) ? 4.0 : 1.0;  // QoS-weighted slice in the mix
    flows.push_back(f);
  }
  return flows;
}

/// One registered scenario: the measured op is a full simulation run.
void run_scenario(benchmark::State& state, const Network& net,
                  const std::vector<FlowSpec>& flows, const Corner& corner) {
  for (auto _ : state) {
    FlowSim sim(net, corner.cc, corner.routing, /*seed=*/42);
    for (const FlowSpec& f : flows) sim.add_flow(f);
    benchmark::DoNotOptimize(sim.run().makespan_ns);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(flows.size()));
}

/// Owns the topologies and flow sets for the process lifetime (benchmark
/// lambdas capture references into it).
struct Scenarios {
  std::vector<std::unique_ptr<Network>> nets;
  std::vector<std::unique_ptr<std::vector<FlowSpec>>> flow_sets;
};

Scenarios& scenarios() {
  static Scenarios s;
  return s;
}

/// Strip google-benchmark's "/iterations:N" decoration from the fixed-
/// iteration rows (same convention as bench_perf_obs) so the committed
/// baseline keeps the stable scenario names earlier baselines used.
std::vector<hpc::benchjson::Entry> stable_names(
    std::vector<hpc::benchjson::Entry> entries) {
  const std::string marker = "/iterations:";
  for (hpc::benchjson::Entry& e : entries) {
    const std::size_t at = e.name.rfind(marker);
    if (at != std::string::npos &&
        e.name.find_first_not_of("0123456789", at + marker.size()) ==
            std::string::npos)
      e.name.erase(at);
  }
  return entries;
}

void register_all() {
  struct Topo {
    const char* name;
    Network net;
  };
  std::vector<Topo> topos;
  topos.push_back({"fat_tree", hpc::net::make_fat_tree(8)});
  topos.push_back({"dragonfly", hpc::net::make_dragonfly(8, 4, 2)});

  for (Topo& t : topos) {
    scenarios().nets.push_back(std::make_unique<Network>(std::move(t.net)));
    const Network& net = *scenarios().nets.back();
    for (const int n : {256, 1024, 4096}) {
      scenarios().flow_sets.push_back(
          std::make_unique<std::vector<FlowSpec>>(make_flows(net, n, 1234)));
      const std::vector<FlowSpec>& flows = *scenarios().flow_sets.back();
      for (const Corner& corner : kCorners) {
        const std::string name =
            std::string(t.name) + "/" + std::to_string(n) + "/" + corner.name;
        auto* bench = benchmark::RegisterBenchmark(
            name.c_str(),
            [&net, &flows, &corner](benchmark::State& state) {
              run_scenario(state, net, flows, corner);
            });
        bench->Unit(benchmark::kMillisecond);
        // The none_minimal rows at 1024/4096 are ~0.1-0.5 s/op: --benchmark
        // _min_time leaves them at a single iteration, which is a noise-level
        // measurement no baseline should publish (the BENCH_obs.json lesson).
        // Pin them to 3 fixed iterations so every committed row clears
        // benchjson_check's default --min-iters 3 without a per-suite opt-out.
        if (corner.cc == CongestionControl::kNone && n >= 1024) bench->Iterations(3);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  hpc::benchjson::Recorder recorder;
  benchmark::RunSpecifiedBenchmarks(&recorder);
  benchmark::Shutdown();

  const char* out_env = std::getenv("BENCHJSON_OUT");
  const std::string out = out_env != nullptr ? out_env : "BENCH_flowsim.json";
  const std::vector<hpc::benchjson::Entry> entries = stable_names(recorder.entries());
  if (!hpc::benchjson::write_file(out, "flowsim", entries)) {
    std::fprintf(stderr, "bench_perf_flowsim: failed to write %s\n", out.c_str());
    return 1;
  }
  const std::string error = hpc::benchjson::validate_file(out, /*min_iterations=*/3);
  if (!error.empty()) {
    std::fprintf(stderr, "bench_perf_flowsim: emitted %s is invalid: %s\n", out.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("bench_perf_flowsim: wrote %s (%zu scenarios)\n", out.c_str(),
              entries.size());
  return 0;
}
