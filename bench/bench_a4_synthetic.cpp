/// Ablation A4 (paper Sections III.A, III.D, V): the AI-governance toolkit —
/// synthetic data where governance pins the raw data ("AI will ... enable
/// use of GANs for synthetic data"), and explainability for mission-critical
/// deployment ("must have a much stronger explainability basis").
///
/// Part (a): a model trained only on generator-sampled synthetic data is
/// evaluated on real held-out data across generator quality (mixture size),
/// against the train-on-real upper bound.
/// Part (b): permutation importance on a task with known signal/noise
/// features — the explanation must recover the ground truth.

#include <string>

#include "bench_common.hpp"
#include "ai/datasets.hpp"
#include "ai/explain.hpp"
#include "ai/synthetic.hpp"

namespace {

using namespace hpc;

void print_synthetic() {
  hpc::bench::section(
      "(a) train-on-synthetic vs train-on-real (two-spirals manifold)");
  sim::Rng rng(51);
  const ai::Dataset all = ai::make_two_spirals(4'000, 0.15, rng);
  const auto [real_train, real_test] = ai::split(all, 0.7);

  ai::TrainConfig cfg;
  cfg.epochs = 120;
  cfg.learning_rate = 0.03f;
  ai::Mlp on_real({2, 48, 48, 2}, ai::Activation::kTanh, ai::Loss::kSoftmaxCrossEntropy,
                  rng);
  on_real.train(real_train, cfg, rng);
  const double acc_real = on_real.accuracy(real_test);

  sim::Table t({"training data", "generator", "accuracy on real test", "gap"});
  t.add_row({"real (upper bound)", "-", sim::fmt(100.0 * acc_real, 1) + " %", "-"});
  for (const int components : {1, 4, 16}) {
    const ai::Dataset synth = ai::synthesize_like(real_train, real_train.n, components, rng);
    ai::Mlp model({2, 48, 48, 2}, ai::Activation::kTanh, ai::Loss::kSoftmaxCrossEntropy,
                  rng);
    model.train(synth, cfg, rng);
    const double acc = model.accuracy(real_test);
    t.add_row({"synthetic only", "GMM-" + std::to_string(components),
               sim::fmt(100.0 * acc, 1) + " %",
               sim::fmt(100.0 * (acc_real - acc), 1) + " pp"});
  }
  t.print();
  std::printf("(raw data never leaves its governance domain; only the fitted "
              "generator does — and generator fidelity is what you pay)\n\n");
}

void print_explainability() {
  hpc::bench::section("(b) explainability: permutation importance vs ground truth");
  // Feature 0 carries the label; 1..3 are noise.
  sim::Rng rng(52);
  ai::Dataset data;
  data.n = 1'000;
  data.dim = 4;
  data.targets = 2;
  data.x.resize(static_cast<std::size_t>(data.n * data.dim));
  data.label.resize(static_cast<std::size_t>(data.n));
  for (std::int64_t i = 0; i < data.n; ++i) {
    const double x0 = rng.uniform(-2.0, 2.0);
    data.x[static_cast<std::size_t>(i * 4)] = static_cast<float>(x0);
    for (int k = 1; k < 4; ++k)
      data.x[static_cast<std::size_t>(i * 4 + k)] = static_cast<float>(rng.normal(0.0, 1.0));
    data.label[static_cast<std::size_t>(i)] = x0 > 0.0 ? 1 : 0;
  }
  ai::Mlp model({4, 16, 2}, ai::Activation::kTanh, ai::Loss::kSoftmaxCrossEntropy, rng);
  ai::TrainConfig cfg;
  cfg.epochs = 40;
  model.train(data, cfg, rng);

  sim::Rng rng2(53);
  const ai::FeatureImportance fi = ai::permutation_importance(model, data, rng2);
  sim::Table t({"feature", "ground truth", "importance (accuracy drop)"});
  for (std::size_t k = 0; k < 4; ++k)
    t.add_row({"x" + std::to_string(k), k == 0 ? "signal" : "noise",
               sim::fmt(fi.importance[k], 4)});
  t.print();
  std::printf("baseline accuracy: %.1f %%\n\n", 100.0 * fi.baseline_score);
}

void print_experiment() {
  hpc::bench::banner(
      "A4", "Synthetic data and explainability (Sections III.A/D, V)",
      "generators substitute governed raw data with little accuracy loss, and "
      "post-hoc attribution recovers what the model actually uses");
  print_synthetic();
  print_explainability();
}

void BM_GmmFit(benchmark::State& state) {
  sim::Rng rng(54);
  const ai::Dataset blobs = ai::make_blobs(1'000, 3, 2, 0.4, rng);
  for (auto _ : state) {
    ai::GaussianMixture gm(3, 2);
    sim::Rng r(55);
    benchmark::DoNotOptimize(gm.fit(blobs.x, blobs.n, 20, r));
  }
}
BENCHMARK(BM_GmmFit);

void BM_PermutationImportance(benchmark::State& state) {
  sim::Rng rng(56);
  const ai::Dataset blobs = ai::make_blobs(500, 3, 2, 0.4, rng);
  ai::Mlp model({2, 16, 3}, ai::Activation::kReLU, ai::Loss::kSoftmaxCrossEntropy, rng);
  for (auto _ : state) {
    sim::Rng r(57);
    benchmark::DoNotOptimize(ai::permutation_importance(model, blobs, r, 1));
  }
}
BENCHMARK(BM_PermutationImportance);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
