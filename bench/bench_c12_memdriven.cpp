/// Experiment C12 (paper Section III.D): memory-driven computing.
///
/// "Due to the high cost of data movement, computing in memory has been
/// revisited and approaches to memory driven computing have been explored
/// [24][25][26]."  A multi-stage analytics pipeline over fabric-attached
/// persistent memory is executed copy-style (fetch, process, write back every
/// stage) and memory-driven (operate in place, pass by reference).  Expected
/// shape: memory-driven wins time and bytes-moved, and the win grows with
/// pipeline depth and shrinking selectivity; with compute-dominated stages
/// the two designs converge (data movement is the differentiator).

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mem/datamove.hpp"
#include "mem/tiering.hpp"

namespace {

using namespace hpc;

std::vector<mem::PipelineStage> make_stages(int depth, double selectivity,
                                            double compute_ns_per_gb) {
  return std::vector<mem::PipelineStage>(static_cast<std::size_t>(depth),
                                         {compute_ns_per_gb, selectivity});
}

void print_experiment() {
  hpc::bench::banner(
      "C12", "Memory-driven computing (Section III.D)",
      "operating on data in place in fabric-attached memory beats copy-based "
      "pipelines; the advantage is the data movement itself");

  const mem::FabricPool pool{mem::pmem_tier(), net::LinkClass::kCxl, 1};
  const double input_gb = 100.0;

  hpc::bench::section("pipeline depth sweep (50% selectivity, movement-bound stages)");
  sim::Table t({"stages", "copy time", "mdc time", "speedup", "copy bytes", "mdc bytes"});
  for (const int depth : {1, 2, 4, 8}) {
    const auto stages = make_stages(depth, 0.5, 1e5);
    const double tc = mem::copy_pipeline_ns(pool, input_gb, stages);
    const double tm = mem::memory_driven_pipeline_ns(pool, input_gb, stages);
    t.add_row({std::to_string(depth), sim::fmt_time_ns(tc), sim::fmt_time_ns(tm),
               sim::fmt(tc / tm, 2) + "x",
               sim::fmt_bytes(mem::copy_pipeline_bytes(input_gb, stages)),
               sim::fmt_bytes(mem::memory_driven_pipeline_bytes(input_gb, stages))});
  }
  t.print();

  hpc::bench::section("\nstage character sweep (4 stages)");
  sim::Table c({"stage compute ns/GB", "selectivity", "copy time", "mdc time", "speedup"});
  for (const double compute : {1e4, 1e6, 1e8}) {
    for (const double sel : {0.1, 1.0}) {
      const auto stages = make_stages(4, sel, compute);
      const double tc = mem::copy_pipeline_ns(pool, input_gb, stages);
      const double tm = mem::memory_driven_pipeline_ns(pool, input_gb, stages);
      c.add_row({sim::fmt(compute, 0), sim::fmt(sel, 1), sim::fmt_time_ns(tc),
                 sim::fmt_time_ns(tm), sim::fmt(tc / tm, 2) + "x"});
    }
  }
  c.print();

  hpc::bench::section("\nlatency substrate: the same pipelines behind PCIe instead of CXL");
  const mem::FabricPool pcie{mem::pmem_tier(), net::LinkClass::kPcie4, 1};
  const auto stages = make_stages(4, 0.5, 1e5);
  sim::Table l({"fabric", "load latency", "mdc time", "copy time"});
  for (const auto& [name, p] : {std::pair{"cxl", pool}, std::pair{"pcie4", pcie}}) {
    l.add_row({name, sim::fmt_time_ns(mem::load_latency_ns(p)),
               sim::fmt_time_ns(mem::memory_driven_pipeline_ns(p, input_gb, stages)),
               sim::fmt_time_ns(mem::copy_pipeline_ns(p, input_gb, stages))});
  }
  l.print();

  hpc::bench::section(
      "\nmulti-level hierarchy: DRAM-in-front-of-PMEM tier placement "
      "(Section III.D 'complex, multi-level, memory hierarchies')");
  sim::Table tt({"fast-tier size", "policy", "fast hit rate", "mean access",
                 "slowdown vs all-DRAM"});
  for (const double cap : {10.0, 25.0, 50.0}) {
    for (const auto policy : {mem::TieringPolicy::kStatic, mem::TieringPolicy::kHotCold}) {
      const mem::TieringOutcome o = mem::evaluate_tiering(
          mem::dram_tier(), mem::pmem_tier(), 100.0, cap, 1.0, policy);
      tt.add_row({sim::fmt(cap, 0) + " GB / 100 GB", std::string(mem::name_of(policy)),
                  sim::fmt(100.0 * o.fast_hit_rate, 1) + " %",
                  sim::fmt_time_ns(o.mean_access_ns),
                  sim::fmt(o.slowdown_vs_all_fast, 2) + "x"});
    }
  }
  tt.print();
  std::printf("\n");
}

void BM_CopyPipeline(benchmark::State& state) {
  const mem::FabricPool pool{mem::pmem_tier(), net::LinkClass::kCxl, 1};
  const auto stages = make_stages(static_cast<int>(state.range(0)), 0.5, 1e5);
  for (auto _ : state)
    benchmark::DoNotOptimize(mem::copy_pipeline_ns(pool, 100.0, stages));
}
BENCHMARK(BM_CopyPipeline)->Arg(4)->Arg(16);

void BM_MemoryDrivenPipeline(benchmark::State& state) {
  const mem::FabricPool pool{mem::pmem_tier(), net::LinkClass::kCxl, 1};
  const auto stages = make_stages(static_cast<int>(state.range(0)), 0.5, 1e5);
  for (auto _ : state)
    benchmark::DoNotOptimize(mem::memory_driven_pipeline_ns(pool, 100.0, stages));
}
BENCHMARK(BM_MemoryDrivenPipeline)->Arg(4)->Arg(16);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
