/// Experiment C8 (paper Sections III.F/G): the Open Compute Exchange.
///
/// The paper asserts the exchange economy is "a non-cooperative, zero-summed
/// game, that eventually reaches equilibrium" and that market allocation is
/// "a lot more liquid" than static provisioning.  We test all three claims:
///  (a) zero-sum: the cash imbalance across all agents after a session;
///  (b) equilibrium: |price - p*| by round bucket, converging to ~0;
///  (c) liquidity/efficiency: gains-from-trade captured by the market vs a
///      static random pairing of users to providers, and the effect of
///      brokers and speculators on convergence.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "market/exchange.hpp"
#include "market/forwards.hpp"

namespace {

using namespace hpc;

struct MarketSetup {
  market::Exchange ex{17};
  std::vector<double> costs;
  std::vector<double> values;
  market::EquilibriumPoint eq;
};

MarketSetup make_market(int providers, int consumers, bool with_traders,
                        std::uint64_t seed) {
  MarketSetup m;
  m.ex = market::Exchange(seed);
  sim::Rng rng = sim::Rng(seed).child("bench.c8.population");
  for (int i = 0; i < providers; ++i) {
    const double cost = rng.uniform(0.5, 1.5);
    m.costs.push_back(cost);
    m.ex.add_agent(std::make_unique<market::ProviderAgent>("prov" + std::to_string(i),
                                                           cost, 1.0));
  }
  for (int i = 0; i < consumers; ++i) {
    const double value = rng.uniform(0.8, 2.5);
    m.values.push_back(value);
    m.ex.add_agent(std::make_unique<market::ConsumerAgent>("cons" + std::to_string(i),
                                                           value, 1.0));
  }
  if (with_traders) {
    m.ex.add_agent(std::make_unique<market::BrokerAgent>("broker1"));
    m.ex.add_agent(std::make_unique<market::BrokerAgent>("broker2"));
    m.ex.add_agent(std::make_unique<market::SpeculatorAgent>("spec1"));
    m.ex.add_agent(std::make_unique<market::SpeculatorAgent>("spec2"));
  }
  m.eq = market::competitive_equilibrium(m.costs, m.values);
  return m;
}

double bucket_deviation(const std::vector<double>& prices, double p_star,
                        std::size_t from, std::size_t to) {
  double acc = 0.0;
  int n = 0;
  for (std::size_t i = from; i < to && i < prices.size(); ++i) {
    if (prices[i] <= 0.0) continue;
    acc += std::abs(prices[i] - p_star);
    ++n;
  }
  return n ? acc / n : 0.0;
}

/// Static allocation baseline: users randomly paired 1:1 with providers at a
/// posted price; the pair trades only if it is individually rational.
double static_pairing_surplus(const std::vector<double>& costs,
                              const std::vector<double>& values, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> shuffled_costs = costs;
  std::shuffle(shuffled_costs.begin(), shuffled_costs.end(), rng.engine());
  double surplus = 0.0;
  const std::size_t n = std::min(costs.size(), values.size());
  for (std::size_t i = 0; i < n; ++i)
    if (values[i] >= shuffled_costs[i]) surplus += values[i] - shuffled_costs[i];
  return surplus;
}

void print_experiment() {
  hpc::bench::banner(
      "C8", "Open Compute Exchange (Sections III.F/G)",
      "the exchange is a zero-sum game that reaches equilibrium, and market "
      "allocation captures more gains from trade than static provisioning");

  hpc::bench::section("(a)+(b) convergence to competitive equilibrium, 300 rounds");
  sim::Table t({"agents", "p*", "|p-p*| r1-50", "r51-150", "r151-300",
                "cash imbalance"});
  for (const bool traders : {false, true}) {
    MarketSetup m = make_market(40, 60, traders, 21);
    m.ex.run_rounds(300);
    const auto& prices = m.ex.round_prices();
    t.add_row({traders ? "40p+60c+brokers+specs" : "40p+60c",
               sim::fmt(m.eq.price, 3), sim::fmt(bucket_deviation(prices, m.eq.price, 0, 50), 3),
               sim::fmt(bucket_deviation(prices, m.eq.price, 50, 150), 3),
               sim::fmt(bucket_deviation(prices, m.eq.price, 150, 300), 3),
               sim::fmt(m.ex.cash_imbalance(), 9)});
  }
  t.print();

  hpc::bench::section("\n(c) allocative efficiency: market vs static pairing");
  sim::Table e({"allocation", "gains from trade ($/round equiv)", "% of optimum"});
  MarketSetup m = make_market(40, 60, false, 23);
  // Realized surplus per round: every trade between a consumer (value v) and
  // provider (cost c) realizes v - c regardless of price.  Measure it in the
  // converged regime: snapshot agent totals after a 200-round warm-up, then
  // meter 100 more rounds.
  auto total_surplus = [&] {
    double s = 0.0;
    for (std::size_t a = 0; a < m.ex.agent_count(); ++a) {
      const auto* prov =
          dynamic_cast<const market::ProviderAgent*>(&m.ex.agent(static_cast<int>(a)));
      if (prov) s -= prov->marginal_cost() * prov->sold_total();
      const auto* cons =
          dynamic_cast<const market::ConsumerAgent*>(&m.ex.agent(static_cast<int>(a)));
      if (cons) s += cons->valuation() * cons->bought_total();
    }
    return s;
  };
  m.ex.run_rounds(200);
  const double warmup = total_surplus();
  m.ex.run_rounds(100);
  const double market_surplus = (total_surplus() - warmup) / 100.0;
  const double static_surplus = static_pairing_surplus(m.costs, m.values, 24);
  e.add_row({"open exchange", sim::fmt(market_surplus, 2),
             sim::fmt(100.0 * market_surplus / m.eq.max_surplus, 1) + " %"});
  e.add_row({"static random pairing", sim::fmt(static_surplus, 2),
             sim::fmt(100.0 * static_surplus / m.eq.max_surplus, 1) + " %"});
  e.add_row({"competitive optimum", sim::fmt(m.eq.max_surplus, 2), "100.0 %"});
  e.print();

  hpc::bench::section(
      "\n(d) risk hedging with forwards (the paper's 'future HPC architectures "
      "risk hedging')");
  sim::Table hdg({"spot volatility/round", "unhedged cost (mean +- sd)",
                  "hedged cost (mean +- sd)"});
  for (const double sigma : {0.02, 0.05, 0.10}) {
    sim::Rng rng(29);
    const market::HedgeOutcome h = market::evaluate_hedge(1.45, sigma, 20, 1'000.0, 400, rng);
    hdg.add_row({sim::fmt(100.0 * sigma, 0) + " %",
                 "$" + sim::fmt(h.mean_unhedged, 0) + " +- " + sim::fmt(h.stdev_unhedged, 0),
                 "$" + sim::fmt(h.mean_hedged, 0) + " +- " + sim::fmt(h.stdev_hedged, 2)});
  }
  hdg.print();
  std::printf("(a cash-settled forward at today's fair strike removes the price "
              "risk entirely; settlement stays zero-sum)\n\n");
}

void BM_MarketSession(benchmark::State& state) {
  for (auto _ : state) {
    MarketSetup m = make_market(40, 60, true, 25);
    m.ex.run_rounds(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(m.ex.total_volume());
  }
}
BENCHMARK(BM_MarketSession)->Arg(50)->Arg(300);

void BM_OrderBookSubmit(benchmark::State& state) {
  market::OrderBook book;
  sim::Rng rng(26);
  int agent = 0;
  for (auto _ : state) {
    book.submit(agent++ % 100, rng.bernoulli(0.5) ? market::Side::kBid : market::Side::kAsk,
                rng.uniform(0.9, 1.1), 1.0);
    benchmark::DoNotOptimize(book.open_orders());
  }
}
BENCHMARK(BM_OrderBookSubmit);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
