/// Experiment C2 (paper Section II.B): Slingshot-class flow-based congestion
/// management.
///
/// An incast congestion tree is created on a dragonfly fabric (N elephants
/// converging on one endpoint) while unrelated victim flows cross the shared
/// fabric.  With no congestion management the elephants' excess injection
/// poisons upstream links (tree saturation / HOL blocking); with flow-based
/// selective back-pressure the congesting flows are throttled at the source.
/// Expected shape: victim mean and tail (p99) FCT collapse back to baseline
/// under flow-based CC, while elephant throughput is unchanged (they are
/// bottlenecked at the hot link either way).

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/flowsim.hpp"
#include "net/topology.hpp"

namespace {

using namespace hpc;

struct Outcome {
  double victim_mean_ms;
  double victim_p99_ms;
  double elephant_mean_ms;
  double makespan_ms;
};

Outcome run_incast(int elephants, net::CongestionControl cc, std::uint64_t seed) {
  const net::Network net = net::make_dragonfly(4, 4, 2);  // 144 endpoints
  const auto& h = net.endpoints();
  net::FlowSim fsim(net, cc, net::Routing::kMinimal, seed);

  // Elephants: spread senders across groups, all converging on endpoint 0.
  for (int i = 0; i < elephants; ++i)
    fsim.add_flow({h[static_cast<std::size_t>(7 * (i + 1) % h.size())], h[0], 20e9, 0, 0});
  // Victims: short flows between disjoint endpoint pairs.
  sim::Rng rng = sim::Rng(seed).child("bench.c2.victims");
  for (int v = 0; v < 40; ++v) {
    const int src = static_cast<int>(rng.index(h.size() / 2)) * 2 + 1;
    int dst = static_cast<int>(rng.index(h.size() / 2)) * 2 + 1;
    if (dst == src) dst = (dst + 2) % static_cast<int>(h.size());
    fsim.add_flow({h[static_cast<std::size_t>(src)], h[static_cast<std::size_t>(dst)],
                   1e9, static_cast<sim::TimeNs>(v) * 2'000'000, 1});
  }

  const net::FlowRunSummary out = fsim.run();
  const sim::Sampler victims = out.fct_sampler(1);
  const sim::Sampler eles = out.fct_sampler(0);
  return {victims.mean() / 1e6, victims.p99() / 1e6, eles.mean() / 1e6,
          out.makespan_ns / 1e6};
}

void print_experiment() {
  hpc::bench::banner(
      "C2", "Flow-based congestion management (Section II.B, Slingshot)",
      "identifying congesting flows and applying selective back-pressure "
      "protects victim flows' tail latency under incast load");

  sim::Table t({"elephants", "congestion-mgmt", "victim mean FCT", "victim p99 FCT",
                "elephant mean FCT", "makespan"});
  for (const int elephants : {4, 8, 16, 32}) {
    for (const auto cc : {net::CongestionControl::kNone, net::CongestionControl::kFlowBased}) {
      const Outcome o = run_incast(elephants, cc, 5);
      t.add_row({std::to_string(elephants),
                 cc == net::CongestionControl::kNone ? "none" : "flow-based",
                 sim::fmt(o.victim_mean_ms, 2) + " ms", sim::fmt(o.victim_p99_ms, 2) + " ms",
                 sim::fmt(o.elephant_mean_ms, 1) + " ms", sim::fmt(o.makespan_ms, 1) + " ms"});
    }
  }
  t.print();

  const Outcome none = run_incast(16, net::CongestionControl::kNone, 5);
  const Outcome fb = run_incast(16, net::CongestionControl::kFlowBased, 5);
  std::printf("\n16-elephant incast: flow-based CC improves victim p99 by %.1fx; the "
              "elephants themselves also finish %.1fx sooner because they stop "
              "saturating each other's upstream buffers\n\n",
              none.victim_p99_ms / fb.victim_p99_ms,
              none.elephant_mean_ms / fb.elephant_mean_ms);
}

void BM_IncastNoCC(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_incast(static_cast<int>(state.range(0)),
                                        net::CongestionControl::kNone, 5));
}
BENCHMARK(BM_IncastNoCC)->Arg(8)->Arg(32);

void BM_IncastFlowBased(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_incast(static_cast<int>(state.range(0)),
                                        net::CongestionControl::kFlowBased, 5));
}
BENCHMARK(BM_IncastFlowBased)->Arg(8)->Arg(32);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
