/// Ablation A2 (paper Section II.C): the exascale facility — "a 30-40 MW
/// datacenter with aggressive liquid cooling and very high-density racks,
/// up to 400 kW per rack".
///
/// Packs GPU- and wafer-scale-class silicon into a 35 MW facility under each
/// cooling technology.  Expected shape: air cooling wastes the budget on PUE
/// and rack count; direct liquid at 400 kW/rack hosts several times more
/// silicon per MW and per dollar — the paper's cooling argument made
/// quantitative.

#include <string>

#include "bench_common.hpp"
#include "hw/catalog.hpp"
#include "hw/facility.hpp"

namespace {

using namespace hpc;

void print_experiment() {
  hpc::bench::banner(
      "A2", "Power and cooling at exascale (Section II.C)",
      "high-density liquid-cooled racks are what make a 30-40 MW exascale "
      "machine room feasible");

  const double budget_mw = 35.0;
  for (const hw::DeviceSpec& device : {hw::gpu_hpc_spec(), hw::wafer_scale_spec()}) {
    std::printf("device family: %s (%.0f W TDP)\n", device.name.c_str(), device.tdp_w);
    sim::Table t({"cooling", "kW/rack", "PUE", "devices/rack", "racks", "devices",
                  "capex-M$", "energy-M$/yr"});
    for (const hw::Cooling cooling :
         {hw::Cooling::kAirCooled, hw::Cooling::kRearDoor, hw::Cooling::kDirectLiquid,
          hw::Cooling::kImmersion}) {
      const hw::CoolingSpec spec = hw::cooling_spec(cooling);
      const hw::RackPlan rack = hw::pack_rack(device, spec);
      const hw::FacilityPlan plan = hw::plan_facility(rack, budget_mw);
      t.add_row({std::string(hw::name_of(cooling)), sim::fmt(spec.max_rack_kw, 0),
                 sim::fmt(spec.pue, 2), std::to_string(rack.devices_per_rack),
                 std::to_string(plan.racks), sim::fmt(plan.devices, 0),
                 sim::fmt(plan.capex_usd / 1e6, 1),
                 sim::fmt(plan.annual_energy_cost_usd / 1e6, 1)});
    }
    t.print();
    std::printf("\n");
  }

  // Useful-compute view: GPUs hosted per facility MW.
  const hw::FacilityPlan air = hw::plan_facility(
      hw::pack_rack(hw::gpu_hpc_spec(), hw::cooling_spec(hw::Cooling::kAirCooled)),
      budget_mw);
  const hw::FacilityPlan liquid = hw::plan_facility(
      hw::pack_rack(hw::gpu_hpc_spec(), hw::cooling_spec(hw::Cooling::kDirectLiquid)),
      budget_mw);
  std::printf("liquid vs air at %.0f MW: %.2fx more accelerators in the same envelope\n\n",
              budget_mw, liquid.devices / air.devices);
}

void BM_FacilityPlanning(benchmark::State& state) {
  const hw::RackPlan rack =
      hw::pack_rack(hw::gpu_hpc_spec(), hw::cooling_spec(hw::Cooling::kDirectLiquid));
  for (auto _ : state) benchmark::DoNotOptimize(hw::plan_facility(rack, 35.0));
}
BENCHMARK(BM_FacilityPlanning);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
