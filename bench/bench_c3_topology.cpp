/// Experiment C3 (paper Section II.B): low-diameter topologies.
///
/// Dragonfly [11] and HyperX [12] against fat-tree and 2-D torus baselines at
/// comparable endpoint counts: structural metrics (diameter, mean hops, link
/// and optics counts, cost) and achieved global bandwidth under uniform and
/// adversarial traffic, with minimal vs Valiant routing on the dragonfly.
/// Expected shape: the low-diameter networks deliver the highest global
/// bandwidth per dollar; adversarial shift traffic hurts minimal dragonfly
/// routing and Valiant recovers it.

#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/collectives.hpp"
#include "net/flowsim.hpp"
#include "net/topology.hpp"

namespace {

using namespace hpc;

struct Candidate {
  std::string name;
  std::function<net::Network()> build;
};

std::vector<Candidate> candidates() {
  return {
      {"dragonfly(4,2,2)", [] { return net::make_dragonfly(4, 2, 2); }},    // 72 eps
      {"hyperx(6x6,p2)", [] { return net::make_hyperx_2d(6, 6, 2); }},      // 72 eps
      {"fat-tree(k=6)", [] { return net::make_fat_tree(6); }},              // 54 eps
      {"torus(9x8)", [] { return net::make_torus_2d(9, 8, 1); }},           // 72 eps
  };
}

/// Adversarial pattern: every endpoint sends to the endpoint half the
/// machine away (stresses inter-group/global links).
double adversarial_bandwidth_gbs(const net::Network& net, net::Routing routing) {
  const auto& eps = net.endpoints();
  net::FlowSim fsim(net, net::CongestionControl::kFlowBased, routing, 3);
  const double bytes = 2e8;
  const std::size_t n = eps.size();
  for (std::size_t i = 0; i < n; ++i)
    fsim.add_flow({eps[i], eps[(i + n / 2) % n], bytes, 0, 0});
  const double makespan = fsim.run().makespan_ns;
  return makespan > 0.0 ? bytes / makespan : 0.0;  // per-endpoint GB/s
}

void print_experiment() {
  hpc::bench::banner(
      "C3", "Low-diameter network topologies (Section II.B)",
      "dragonfly/HyperX-class low-diameter networks provide low latency and "
      "high, cost-effective global bandwidth");

  hpc::bench::section("structure and cost");
  sim::Table s({"topology", "endpoints", "switches", "diameter", "mean-hops",
                "electrical", "optical", "cost-k$"});
  for (const Candidate& c : candidates()) {
    const net::Network n = c.build();
    const net::TopologySummary sum = net::summarize(n, c.name);
    s.add_row({sum.name, std::to_string(sum.endpoints), std::to_string(sum.switches),
               std::to_string(sum.diameter), sim::fmt(sum.mean_hops, 2),
               std::to_string(sum.electrical_links), std::to_string(sum.optical_links),
               sim::fmt(sum.cost_usd / 1e3, 1)});
  }
  s.print();
  std::printf("\n");

  hpc::bench::section("global bandwidth under load (per-endpoint GB/s, 32 ranks)");
  sim::Table b({"topology", "uniform all-to-all", "adversarial shift",
                "adv + Valiant", "adv + adaptive", "GB/s per k$"});
  for (const Candidate& c : candidates()) {
    const net::Network n = c.build();
    std::vector<int> ranks(n.endpoints().begin(), n.endpoints().begin() + 32);
    const double uniform = net::alltoall_per_rank_bandwidth_gbs(n, ranks, 1e8);
    const double adv = adversarial_bandwidth_gbs(n, net::Routing::kMinimal);
    const double adv_valiant = adversarial_bandwidth_gbs(n, net::Routing::kValiant);
    const double adv_adaptive = adversarial_bandwidth_gbs(n, net::Routing::kAdaptive);
    const double cost_k = n.total_cost_usd() / 1e3;
    b.add_row({c.name, sim::fmt(uniform, 2), sim::fmt(adv, 2), sim::fmt(adv_valiant, 2),
               sim::fmt(adv_adaptive, 2), sim::fmt(uniform / cost_k, 3)});
  }
  b.print();
  std::printf("(Valiant halves peak by construction; UGAL-lite adaptive detours "
              "only when the minimal path is hot, so it tracks the better of the "
              "two)\n\n");
}

void BM_BuildDragonfly(benchmark::State& state) {
  for (auto _ : state) {
    const net::Network n = net::make_dragonfly(4, 2, 2);
    benchmark::DoNotOptimize(n.link_count());
  }
}
BENCHMARK(BM_BuildDragonfly);

void BM_Alltoall32(benchmark::State& state) {
  const net::Network n = net::make_dragonfly(4, 2, 2);
  std::vector<int> ranks(n.endpoints().begin(), n.endpoints().begin() + 32);
  for (auto _ : state)
    benchmark::DoNotOptimize(net::alltoall_per_rank_bandwidth_gbs(n, ranks, 1e8));
}
BENCHMARK(BM_Alltoall32);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
