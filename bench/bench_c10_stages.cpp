/// Experiment C10 (paper Section III.G): the staged path to democratized
/// compute — local-only -> bursting -> fluid workloads -> grid -> exchange.
///
/// The same bursty workload (demand peaks exceeding home capacity) runs at
/// every federation maturity stage.  Expected shape: each stage strictly
/// improves peak-demand absorption (p95 completion) — bursting buys relief at
/// cloud prices, fluid/grid spread load across the federation, and the
/// exchange stage trades a little completion time for the lowest cost.

#include <string>

#include "bench_common.hpp"
#include "fed/federation.hpp"
#include "sched/workload.hpp"

namespace {

using namespace hpc;

std::vector<fed::Site> staged_sites() {
  fed::Site campus = fed::make_onprem_site(0, "campus", 8, 4);
  fed::Site partner = fed::make_onprem_site(1, "partner-campus", 8, 4);
  partner.admin_domain = 0;  // same domain: reachable from the "fluid" stage on
  fed::Site center = fed::make_supercomputer_site(2, "national-center", 48);
  center.admin_domain = 0;   // national allocation: also inside the domain
  fed::Site cloud = fed::make_cloud_site(3, "cloud", 48, 0.15);  // foreign domain
  return {campus, partner, center, cloud};
}

fed::FederationResult run_stage(fed::FederationStage stage) {
  fed::FederationConfig cfg;
  cfg.stage = stage;
  cfg.policy = stage == fed::FederationStage::kExchange ? fed::MetaPolicy::kCheapest
                                                        : fed::MetaPolicy::kDataGravity;
  if (stage == fed::FederationStage::kLocalOnly) cfg.policy = fed::MetaPolicy::kHomeOnly;
  cfg.burst_site = 3;
  cfg.burst_queue_threshold_s = 120.0;
  cfg.seed = 31;

  fed::FederationSim fsim(staged_sites(), cfg);
  sim::Rng rng(32);
  // Bursty demand: a steady trickle plus a storm in the middle.
  sched::WorkloadConfig steady;
  steady.jobs = 120;
  steady.mean_interarrival_s = 60.0;
  steady.max_nodes = 4;
  std::vector<sched::Job> jobs = sched::generate_workload(steady, rng);
  sched::WorkloadConfig storm;
  storm.jobs = 120;
  storm.mean_interarrival_s = 3.0;
  storm.max_nodes = 8;
  std::vector<sched::Job> burst = sched::generate_workload(storm, rng);
  for (sched::Job& j : burst) {
    j.id += 1'000;
    j.arrival += sim::from_seconds(1'800.0);  // the storm hits at t = 30 min
  }
  jobs.insert(jobs.end(), burst.begin(), burst.end());
  fsim.submit_all(jobs, 0);
  return fsim.run();
}

void print_experiment() {
  hpc::bench::banner(
      "C10", "Stages toward democratized compute (Section III.G)",
      "bursting -> fluid workloads -> grid -> exchange: each step absorbs "
      "demand peaks better; the exchange adds cost discipline");

  sim::Table t({"stage", "mean completion", "p95 completion", "cost-$",
                "wan moved", "jobs off-site"});
  for (const auto stage :
       {fed::FederationStage::kLocalOnly, fed::FederationStage::kBursting,
        fed::FederationStage::kFluid, fed::FederationStage::kGrid,
        fed::FederationStage::kExchange}) {
    const fed::FederationResult r = run_stage(stage);
    int off_site = 0;
    for (const fed::FedPlacement& p : r.placements)
      if (p.site > 0) ++off_site;
    t.add_row({std::string(fed::name_of(stage)), sim::fmt(r.mean_completion_s, 1) + " s",
               sim::fmt(r.p95_completion_s, 1) + " s", sim::fmt(r.total_cost_usd, 0),
               sim::fmt_bytes(r.wan_gb_moved * 1e9), std::to_string(off_site)});
  }
  t.print();

  const fed::FederationResult local = run_stage(fed::FederationStage::kLocalOnly);
  const fed::FederationResult grid = run_stage(fed::FederationStage::kGrid);
  std::printf("\ngrid vs local-only: p95 completion improves %.1fx during the demand storm\n\n",
              local.p95_completion_s / std::max(1e-9, grid.p95_completion_s));
}

void BM_StageLocalOnly(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_stage(fed::FederationStage::kLocalOnly));
}
BENCHMARK(BM_StageLocalOnly);

void BM_StageGrid(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_stage(fed::FederationStage::kGrid));
}
BENCHMARK(BM_StageGrid);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
