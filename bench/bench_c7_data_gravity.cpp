/// Experiment C7 (paper Section III.F): data-gravity-aware meta-scheduling.
///
/// "Workloads may not only be scheduled following compute resources
/// availability but targeting the optimization of job completion time end to
/// end, including the data transfer."  A three-site federation (data-heavy
/// campus, big supercomputing center, elastic cloud) runs the same workload
/// stream under home-only, compute-availability-only, and gravity-aware
/// placement.  Expected shape: gravity-aware wins end-to-end completion and
/// slashes WAN traffic; compute-only wins raw queue wait but loses the
/// transfer time it ignores.

#include <string>

#include "bench_common.hpp"
#include "fed/federation.hpp"
#include "sched/workload.hpp"

namespace {

using namespace hpc;

std::vector<fed::Site> gravity_sites() {
  fed::Site campus = fed::make_onprem_site(0, "campus", 16, 4);
  fed::Site center = fed::make_supercomputer_site(1, "center", 64);
  center.admin_domain = 0;
  fed::Site cloud = fed::make_cloud_site(2, "cloud", 64, 0.1);
  return {campus, center, cloud};
}

fed::FederationResult run_policy(fed::MetaPolicy policy, double gb_per_tflop) {
  fed::FederationConfig cfg;
  cfg.stage = fed::FederationStage::kGrid;
  cfg.policy = policy;
  cfg.seed = 71;
  fed::FederationSim fsim(gravity_sites(), cfg);
  sim::Rng rng(72);
  sched::WorkloadConfig wcfg;
  wcfg.jobs = 200;
  wcfg.mean_interarrival_s = 15.0;
  wcfg.max_nodes = 8;
  wcfg.dataset_gb_per_tflop = gb_per_tflop;  // knob: how data-heavy the science is
  fsim.submit_all(sched::generate_workload(wcfg, rng), 0);
  return fsim.run();
}

void print_experiment() {
  hpc::bench::banner(
      "C7", "Data-gravity-aware meta-scheduling (Section III.F)",
      "placing work for end-to-end completion (including transfer) beats "
      "compute-availability-only placement as science gets data-heavier");

  sim::Table t({"GB per Tflop", "policy", "mean completion", "p95 completion",
                "wan moved", "cost-$"});
  for (const double heaviness : {1.0, 20.0, 100.0}) {
    for (const auto policy : {fed::MetaPolicy::kHomeOnly, fed::MetaPolicy::kComputeOnly,
                              fed::MetaPolicy::kDataGravity}) {
      const fed::FederationResult r = run_policy(policy, heaviness);
      t.add_row({sim::fmt(heaviness, 0), std::string(fed::name_of(policy)),
                 sim::fmt(r.mean_completion_s, 1) + " s",
                 sim::fmt(r.p95_completion_s, 1) + " s",
                 sim::fmt_bytes(r.wan_gb_moved * 1e9), sim::fmt(r.total_cost_usd, 0)});
    }
  }
  t.print();

  const fed::FederationResult grav = run_policy(fed::MetaPolicy::kDataGravity, 100.0);
  const fed::FederationResult comp = run_policy(fed::MetaPolicy::kComputeOnly, 100.0);
  std::printf("\ndata-heavy regime (100 GB/Tflop): gravity-aware moves %.1fx less WAN "
              "data and completes %.2fx sooner on average\n\n",
              comp.wan_gb_moved / std::max(1e-9, grav.wan_gb_moved),
              comp.mean_completion_s / std::max(1e-9, grav.mean_completion_s));
}

void BM_GravityFederation(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_policy(fed::MetaPolicy::kDataGravity, 20.0));
}
BENCHMARK(BM_GravityFederation);

void BM_ComputeOnlyFederation(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_policy(fed::MetaPolicy::kComputeOnly, 20.0));
}
BENCHMARK(BM_ComputeOnlyFederation);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
