/// Experiment C1 (paper Sections I, II.A): the end of Dennard scaling makes
/// specialization the only lever left inside a fixed power envelope.
///
/// Part (a): the technology model — general-purpose perf/W by generation,
/// showing the Dennard-era compounding and the post-2005 plateau, against
/// one-off specialization gains (Amdahl-limited by workload coverage).
/// Part (b): a 100 kW power envelope spent on different cluster mixes,
/// measured by aggregate domain throughput.  Expected shape: homogeneous
/// general-purpose saturates; the diversified mix wins every AI-heavy mix
/// and never collapses.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hw/catalog.hpp"
#include "hw/scaling.hpp"
#include "sched/cluster.hpp"
#include "sched/workload.hpp"

namespace {

using namespace hpc;

void print_scaling_curve() {
  hpc::bench::section("(a) general-purpose perf/W by process generation (gen 0 ~ 1990)");
  const hw::TechnologyModel tech;
  const hw::SpecializationModel spec;
  sim::Table t({"generation", "~year", "gen-gain", "cum perf/W", "with ASIC (30x, 70% cov)",
                "with analog (300x, 70% cov)"});
  for (int gen = 0; gen <= 18; gen += 2) {
    const double ppw = tech.perf_per_watt(gen);
    t.add_row({std::to_string(gen), std::to_string(1990 + 2 * gen),
               sim::fmt(tech.generation_gain(gen), 2), sim::fmt(ppw, 1),
               sim::fmt(ppw * spec.effective_speedup(spec.asic_gain), 1),
               sim::fmt(ppw * spec.effective_speedup(spec.analog_gain), 1)});
  }
  t.print();
  std::printf("(post-Dennard rows: the cumulative curve flattens; the remaining "
              "gap is exactly the specialization multiplier)\n\n");
}

/// Aggregate throughput (Tflop/s) of a cluster on a domain mix, power-capped.
double domain_throughput_tflops(const sched::Cluster& cluster, sched::JobKind kind) {
  double total = 0.0;
  for (const sched::Partition& p : cluster.partitions) {
    sched::Job probe;
    probe.total_gflop = 1e5;
    probe.mix = sched::mix_of(kind);
    probe.precision = sched::precision_of(kind);
    probe.nodes = 1;
    const double t_ns = sched::job_runtime_ns(probe, p.device, 1);
    if (t_ns >= 1e17) continue;
    total += probe.total_gflop / (t_ns * 1e-9) * p.nodes / 1e3;
  }
  return total;
}

/// Scales node counts so each cluster draws as close to the cap as possible.
sched::Cluster cap_power(sched::Cluster c, double cap_w) {
  const double draw = c.total_power_w();
  if (draw <= 0.0) return c;
  const double scale = cap_w / draw;
  for (sched::Partition& p : c.partitions)
    p.nodes = std::max(1, static_cast<int>(p.nodes * scale));
  return c;
}

void print_power_envelope() {
  hpc::bench::section("(b) 100 kW envelope: cluster mix vs domain throughput (Tflop/s)");
  const double cap = 100'000.0;
  struct Mix {
    std::string name;
    sched::Cluster cluster;
  };
  std::vector<Mix> mixes;
  mixes.push_back({"all-CPU", cap_power(sched::make_homogeneous_cpu_cluster(360), cap)});
  mixes.push_back({"CPU+GPU", cap_power(sched::make_cpu_gpu_cluster(150, 140), cap)});
  mixes.push_back(
      {"diversified", cap_power(sched::make_diversified_cluster(80, 80, 60, 40, 200), cap)});

  sim::Table t({"cluster mix", "power kW", "hpc-sim", "ai-train", "ai-infer",
                "analytics", "capex-M$"});
  for (const Mix& m : mixes) {
    t.add_row({m.name, sim::fmt(m.cluster.total_power_w() / 1e3, 1),
               sim::fmt(domain_throughput_tflops(m.cluster, sched::JobKind::kHpcSimulation), 1),
               sim::fmt(domain_throughput_tflops(m.cluster, sched::JobKind::kAiTraining), 1),
               sim::fmt(domain_throughput_tflops(m.cluster, sched::JobKind::kAiInference), 1),
               sim::fmt(domain_throughput_tflops(m.cluster, sched::JobKind::kAnalytics), 1),
               sim::fmt(m.cluster.total_cost_usd() / 1e6, 2)});
  }
  t.print();
  std::printf("\n");
}

void print_experiment() {
  hpc::bench::banner(
      "C1", "Specialization under a fixed power envelope (Sections I, II.A)",
      "after Dennard, general-purpose perf/W stalls; specialized accelerators "
      "are the remaining scaling lever, at the cost of narrow applicability");
  print_scaling_curve();
  print_power_envelope();
}

void BM_TechnologyCurve(benchmark::State& state) {
  const hw::TechnologyModel tech;
  for (auto _ : state) benchmark::DoNotOptimize(tech.perf_per_watt(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_TechnologyCurve)->Arg(8)->Arg(20);

void BM_DomainThroughput(benchmark::State& state) {
  const sched::Cluster c = sched::make_diversified_cluster(80, 80, 60, 40, 200);
  for (auto _ : state)
    benchmark::DoNotOptimize(domain_throughput_tflops(c, sched::JobKind::kAiTraining));
}
BENCHMARK(BM_DomainThroughput);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
