/// Experiment F3 (paper Figure 3): heterogeneous hardware architectures x
/// heterogeneous delivery models.
///
/// Top half of the figure — hardware heterogeneity: every device family's
/// sustained efficiency (Gflop/s per watt) per application domain, showing
/// why no single architecture dominates the matrix.
/// Bottom half — delivery models: the same workload stream delivered on-prem
/// only, cloud only, federated grid, and exchange-priced federation.
/// Expected shape: each silicon family wins somewhere; federated delivery
/// dominates single-site delivery on completion time, at a price.

#include <string>

#include "bench_common.hpp"
#include "fed/federation.hpp"
#include "hw/catalog.hpp"
#include "sched/workload.hpp"

namespace {

using namespace hpc;

void print_hardware_matrix() {
  hpc::bench::section("hardware heterogeneity: sustained Gflop/s per watt by domain");
  sim::Table t({"device", "hpc-sim", "ai-train", "ai-infer", "analytics"});
  for (const hw::DeviceSpec& spec : hw::default_catalog()) {
    std::vector<std::string> row{spec.name};
    for (const sched::JobKind kind :
         {sched::JobKind::kHpcSimulation, sched::JobKind::kAiTraining,
          sched::JobKind::kAiInference, sched::JobKind::kAnalytics}) {
      sched::Job probe;
      probe.total_gflop = 1e5;
      probe.mix = sched::mix_of(kind);
      probe.precision = sched::precision_of(kind);
      probe.nodes = 1;
      const double t_ns = sched::job_runtime_ns(probe, spec, 1);
      const double gflops = t_ns < 1e17 ? probe.total_gflop / (t_ns * 1e-9) : 0.0;
      row.push_back(sim::fmt(gflops / spec.tdp_w, 2));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("(read row-wise: every family has a domain where it wins "
              "per watt and domains where it is useless)\n\n");
}

fed::FederationResult run_delivery(const std::string& model) {
  std::vector<fed::Site> sites;
  fed::FederationConfig cfg;
  cfg.seed = 11;
  sites.push_back(fed::make_onprem_site(0, "campus", 12, 6));
  fed::Site super = fed::make_supercomputer_site(1, "center", 48);
  super.admin_domain = 0;
  sites.push_back(super);
  sites.push_back(fed::make_cloud_site(2, "cloud", 48, 0.15));

  if (model == "on-prem") {
    cfg.stage = fed::FederationStage::kLocalOnly;
    cfg.policy = fed::MetaPolicy::kHomeOnly;
  } else if (model == "cloud-only") {
    cfg.stage = fed::FederationStage::kLocalOnly;
    cfg.policy = fed::MetaPolicy::kHomeOnly;
  } else if (model == "grid") {
    cfg.stage = fed::FederationStage::kGrid;
    cfg.policy = fed::MetaPolicy::kDataGravity;
  } else {  // exchange
    cfg.stage = fed::FederationStage::kExchange;
    cfg.policy = fed::MetaPolicy::kCheapest;
  }

  fed::FederationSim sim(sites, cfg);
  sim::Rng rng(12);
  sched::WorkloadConfig wcfg;
  wcfg.jobs = 250;
  wcfg.mean_interarrival_s = 20.0;
  wcfg.max_nodes = 8;
  const int home = model == "cloud-only" ? 2 : 0;
  sim.submit_all(sched::generate_workload(wcfg, rng), home);
  return sim.run();
}

void print_delivery_models() {
  hpc::bench::section("delivery models: same workload, four delivery shapes");
  sim::Table t({"delivery model", "mean-completion", "p95-completion", "cost-$",
                "wan-moved", "completed"});
  for (const std::string model : {"on-prem", "cloud-only", "grid", "exchange"}) {
    const fed::FederationResult r = run_delivery(model);
    t.add_row({model, sim::fmt(r.mean_completion_s, 1) + " s",
               sim::fmt(r.p95_completion_s, 1) + " s", sim::fmt(r.total_cost_usd, 2),
               sim::fmt_bytes(r.wan_gb_moved * 1e9),
               std::to_string(r.jobs_completed)});
  }
  t.print();
  std::printf("\n");
}

void print_experiment() {
  hpc::bench::banner(
      "F3", "Heterogeneous hardware x delivery models (paper Figure 3)",
      "both the silicon menu and the delivery menu exhibit substantial "
      "heterogeneity; federation exploits both");
  print_hardware_matrix();
  print_delivery_models();
}

void BM_FederatedDelivery(benchmark::State& state) {
  for (auto _ : state) {
    const fed::FederationResult r = run_delivery("grid");
    benchmark::DoNotOptimize(r.mean_completion_s);
  }
}
BENCHMARK(BM_FederatedDelivery);

void BM_HardwareMatrixProbe(benchmark::State& state) {
  const hw::DeviceSpec spec = hw::gpu_hpc_spec();
  sched::Job probe;
  probe.total_gflop = 1e5;
  probe.mix = sched::mix_of(sched::JobKind::kAiTraining);
  probe.precision = hw::Precision::BF16;
  for (auto _ : state) benchmark::DoNotOptimize(sched::job_runtime_ns(probe, spec, 1));
}
BENCHMARK(BM_HardwareMatrixProbe);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
