/// Experiment F1 (paper Figure 1): the convergence of Big Data, HPC and AI.
///
/// A scientific campaign (ingest -> analyze -> simulate -> train -> infer)
/// is executed twice over the same edge/supercomputer/cloud archipelago:
/// once with each task kind pinned to its traditional silo (separate big-data
/// cloud, HPC center, AI cloud), and once on the converged infrastructure
/// with gravity-aware placement.  Expected shape: the converged run moves far
/// fewer bytes over the WAN and finishes sooner — the quantitative content of
/// the paper's "once in a generation opportunity" convergence argument.

#include "bench_common.hpp"
#include "core/system.hpp"

namespace {

using namespace hpc;

core::System make_archipelago() {
  fed::Site edge = fed::make_edge_site(0, "facility-edge", 8);
  fed::Site super = fed::make_supercomputer_site(1, "hpc-center", 64);
  super.admin_domain = 0;
  fed::Site cloud = fed::make_cloud_site(2, "analytics-cloud", 64, 0.1);
  return core::System({edge, super, cloud});
}

core::Workflow make_campaign(core::System& sys, int rounds) {
  core::Workflow wf;
  const int raw = sys.catalog().add("instrument-frames", 300.0, 0, 0,
                                    data::Sensitivity::kPublic, "frames");
  int prev = -1;
  for (int r = 0; r < rounds; ++r) {
    core::Task analyze;
    analyze.name = "analyze-" + std::to_string(r);
    analyze.kind = core::TaskKind::kAnalyze;
    analyze.input_datasets = {raw};
    if (prev >= 0) analyze.deps = {prev};
    analyze.output_sensitivity = data::Sensitivity::kPublic;
    analyze.output_gb = 150.0;
    analyze.job.nodes = 2;
    analyze.job.total_gflop = 5e4;
    const int a = wf.add(analyze);

    core::Task simulate;
    simulate.name = "simulate-" + std::to_string(r);
    simulate.kind = core::TaskKind::kSimulate;
    simulate.deps = {a};
    simulate.input_tasks = {a};  // consumes the analysis product
    simulate.output_sensitivity = data::Sensitivity::kPublic;
    simulate.output_gb = 100.0;
    simulate.job.nodes = 8;
    simulate.job.total_gflop = 4e5;
    const int s = wf.add(simulate);

    core::Task train;
    train.name = "train-" + std::to_string(r);
    train.kind = core::TaskKind::kTrain;
    train.deps = {s};
    train.input_tasks = {a, s};  // learns from analysis + simulation outputs
    train.output_sensitivity = data::Sensitivity::kPublic;
    train.output_gb = 2.0;
    train.job.nodes = 4;
    train.job.total_gflop = 8e5;
    const int t = wf.add(train);

    core::Task infer;
    infer.name = "infer-" + std::to_string(r);
    infer.kind = core::TaskKind::kInfer;
    infer.deps = {t};
    infer.input_tasks = {t};  // deploys the trained model
    infer.output_sensitivity = data::Sensitivity::kPublic;
    infer.output_gb = 0.1;
    infer.job.nodes = 1;
    infer.job.total_gflop = 1e3;
    prev = wf.add(infer);
  }
  return wf;
}

core::WorkflowResult run_mode(bool siloed, int rounds) {
  core::System sys = make_archipelago();
  if (siloed) {
    sys.pin_silo(core::TaskKind::kIngest, 0);
    sys.pin_silo(core::TaskKind::kAnalyze, 2);   // big-data silo: cloud
    sys.pin_silo(core::TaskKind::kSimulate, 1);  // HPC silo: center
    sys.pin_silo(core::TaskKind::kTrain, 2);     // AI silo: cloud
    sys.pin_silo(core::TaskKind::kInfer, 0);     // inference back at the edge
  }
  core::Workflow wf = make_campaign(sys, rounds);
  return sys.run(wf, siloed ? core::PlacementPolicy::kSiloed
                            : core::PlacementPolicy::kGravityAware);
}

void print_experiment() {
  hpc::bench::banner(
      "F1", "Convergence of Big Data, HPC and AI (paper Figure 1)",
      "converged HPC+analytics+ML infrastructure beats siloed systems on "
      "end-to-end time and data movement");

  sim::Table table({"campaign-rounds", "mode", "makespan", "wan-moved", "cost-$",
                    "energy-MJ"});
  for (const int rounds : {1, 3, 6}) {
    for (const bool siloed : {true, false}) {
      const core::WorkflowResult r = run_mode(siloed, rounds);
      table.add_row({std::to_string(rounds), siloed ? "siloed" : "converged",
                     sim::fmt_time_ns(static_cast<double>(r.makespan)),
                     sim::fmt_bytes(r.wan_gb_moved * 1e9), sim::fmt(r.total_cost_usd, 2),
                     sim::fmt(r.total_energy_j / 1e6, 3)});
    }
  }
  table.print();

  const core::WorkflowResult silo = run_mode(true, 3);
  const core::WorkflowResult conv = run_mode(false, 3);
  std::printf("\nconverged vs siloed (3 rounds): %.2fx less WAN traffic, %.2fx faster\n\n",
              silo.wan_gb_moved / std::max(1e-9, conv.wan_gb_moved),
              static_cast<double>(silo.makespan) / std::max<double>(1.0, static_cast<double>(conv.makespan)));
}

void BM_ConvergedCampaign(benchmark::State& state) {
  for (auto _ : state) {
    const core::WorkflowResult r = run_mode(false, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_ConvergedCampaign)->Arg(1)->Arg(4);

void BM_SiloedCampaign(benchmark::State& state) {
  for (auto _ : state) {
    const core::WorkflowResult r = run_mode(true, 4);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_SiloedCampaign);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
