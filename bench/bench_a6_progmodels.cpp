/// Ablation A6 (paper Section III.D): software and programming environments.
///
/// (a) Message passing vs PGAS: the phase time of a fixed communication
///     volume as access granularity shrinks, on an Ethernet cluster fabric vs
///     a CXL-class load/store fabric — quantifying when each of the paper's
///     "two programming models" wins and how coherent fabrics move the line.
/// (b) A Legion-like data-centric runtime: tasks declare region accesses, the
///     runtime extracts the parallelism implicitly and maps regions onto a
///     multi-level memory hierarchy — the paper's case for data-centric
///     runtimes on heterogeneous machines.

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/datart.hpp"
#include "net/progmodel.hpp"

namespace {

using namespace hpc;

void print_progmodels() {
  hpc::bench::section("(a) message passing vs PGAS: 8 MB of communication");
  sim::Table t({"granularity", "accesses", "eth200: MP", "eth200: PGAS",
                "cxl: MP", "cxl: PGAS", "winner on cxl"});
  const double total = 8e6;
  for (const double gran : {8.0, 64.0, 4'096.0, 1e6, 8e6}) {
    net::CommPhase phase;
    phase.granularity_bytes = gran;
    phase.accesses = static_cast<std::int64_t>(total / gran);
    const double eth_mp =
        net::phase_time_ns(net::ProgModel::kMessagePassing, phase, net::LinkClass::kEth200);
    const double eth_pg =
        net::phase_time_ns(net::ProgModel::kPgas, phase, net::LinkClass::kEth200);
    const double cxl_mp =
        net::phase_time_ns(net::ProgModel::kMessagePassing, phase, net::LinkClass::kCxl);
    const double cxl_pg =
        net::phase_time_ns(net::ProgModel::kPgas, phase, net::LinkClass::kCxl);
    t.add_row({sim::fmt_bytes(gran), std::to_string(phase.accesses),
               sim::fmt_time_ns(eth_mp), sim::fmt_time_ns(eth_pg),
               sim::fmt_time_ns(cxl_mp), sim::fmt_time_ns(cxl_pg),
               cxl_pg < cxl_mp ? "pgas" : "message-passing"});
  }
  t.print();
  const double eth_cross = net::pgas_win_granularity_bytes(net::LinkClass::kEth200, total);
  const double cxl_cross = net::pgas_win_granularity_bytes(net::LinkClass::kCxl, total);
  std::printf("finest granularity where PGAS still wins: eth200 %s, cxl %s\n\n",
              std::isinf(eth_cross) ? "never" : sim::fmt_bytes(eth_cross).c_str(),
              cxl_cross <= 8.0 ? "8 B (word grain — always)"
                               : sim::fmt_bytes(cxl_cross).c_str());
}

/// Blocked 2-phase stencil campaign: per-block compute tasks (disjoint
/// regions, parallel) followed by a reduction that reads every block.
core::DataRuntime make_stencil_graph(int blocks, int sweeps) {
  core::DataRuntime rt;
  std::vector<int> regions;
  for (int b = 0; b < blocks; ++b)
    regions.push_back(rt.add_region("block" + std::to_string(b), 4.0));
  const int stats = rt.add_region("stats", 0.1);
  for (int s = 0; s < sweeps; ++s) {
    for (int b = 0; b < blocks; ++b)
      rt.add_task("sweep" + std::to_string(s) + "_b" + std::to_string(b),
                  {{regions[static_cast<std::size_t>(b)], core::Access::kReadWrite}},
                  1'000.0);
    std::vector<core::RegionRequirement> reduce_reqs;
    for (const int r : regions) reduce_reqs.push_back({r, core::Access::kRead});
    reduce_reqs.push_back({stats, core::Access::kReadWrite});
    rt.add_task("reduce" + std::to_string(s), std::move(reduce_reqs), 400.0);
  }
  return rt;
}

void print_datart() {
  hpc::bench::section("(b) data-centric runtime: implicit parallelism from region accesses");
  const core::DataRuntime rt = make_stencil_graph(16, 6);
  std::printf("task graph: 16 blocks x 6 sweeps + per-sweep reductions = %zu tasks, "
              "critical path %s, serial %s\n",
              rt.task_count(), sim::fmt_time_ns(rt.critical_path_ns()).c_str(),
              sim::fmt_time_ns(rt.serial_ns()).c_str());
  sim::Table t({"workers", "makespan", "speedup", "efficiency"});
  for (const int workers : {1, 2, 4, 8, 16, 32}) {
    const core::RuntimeSchedule s = rt.schedule(workers);
    t.add_row({std::to_string(workers), sim::fmt_time_ns(s.makespan_ns),
               sim::fmt(s.speedup, 2) + "x",
               sim::fmt(100.0 * s.parallel_efficiency, 1) + " %"});
  }
  t.print();

  // Region mapping onto the hierarchy.
  mem::MemoryTier hbm = mem::hbm_tier();
  hbm.capacity_gb = 24.0;  // room for 6 hot blocks
  const mem::Hierarchy hierarchy({hbm, mem::dram_tier(), mem::pmem_tier()});
  const std::vector<std::size_t> placement = rt.map_regions(hierarchy);
  std::vector<int> per_tier(hierarchy.tiers().size(), 0);
  for (const std::size_t tier : placement) ++per_tier[tier];
  std::printf("\nregion mapping onto {hbm 24GB, dram, pmem}: %d regions in HBM, "
              "%d in DRAM, %d in PMEM (hottest first, capacity-respecting)\n\n",
              per_tier[0], per_tier[1], per_tier[2]);
}

void print_experiment() {
  hpc::bench::banner(
      "A6", "Programming environments for heterogeneous HPC (Section III.D)",
      "CXL-class fabrics move the MPI/PGAS crossover to fine granularity, and "
      "data-centric runtimes extract task/data parallelism implicitly");
  print_progmodels();
  print_datart();
}

void BM_DependencyExtraction(benchmark::State& state) {
  for (auto _ : state) {
    const core::DataRuntime rt = make_stencil_graph(16, 6);
    benchmark::DoNotOptimize(rt.task_count());
  }
}
BENCHMARK(BM_DependencyExtraction);

void BM_ListSchedule(benchmark::State& state) {
  const core::DataRuntime rt = make_stencil_graph(16, 6);
  for (auto _ : state)
    benchmark::DoNotOptimize(rt.schedule(static_cast<int>(state.range(0))).makespan_ns);
}
BENCHMARK(BM_ListSchedule)->Arg(4)->Arg(16);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
