/// Experiment C11 (paper Section III.B): accelerators "enable closed-loop
/// combinations of classical simulation and deep-learning inference (to
/// accelerate some simulation steps)".
///
/// A parameter-sweep campaign over an expensive physics step (damped
/// oscillator response, 1 ms per exact evaluation) is run with an MLP
/// surrogate trained on sampled data, re-anchored by exact evaluations every
/// k steps.  Expected shape: order-of-magnitude speedups at modest trajectory
/// error; more training data buys lower error, sparser anchoring buys more
/// speed — the classic fidelity/throughput frontier.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ai/surrogate.hpp"

namespace {

using namespace hpc;

void print_experiment() {
  hpc::bench::banner(
      "C11", "AI surrogates accelerating simulation steps (Section III.B)",
      "closed-loop simulation + surrogate inference trades bounded error for "
      "order-of-magnitude campaign speedup");

  const ai::GroundTruth truth = ai::oscillator_truth(1e6);  // 1 ms per exact step
  const std::int64_t campaign_steps = 200'000;

  hpc::bench::section("(a) training-set size vs fidelity (surrogate: 3-48-48-1 tanh MLP)");
  sim::Table f({"training samples", "train RMSE", "test RMSE", "collection cost"});
  std::vector<ai::Surrogate> surrogates;
  for (const std::int64_t samples : {250, 1'000, 4'000}) {
    sim::Rng rng(41);
    surrogates.push_back(ai::train_surrogate(truth, samples, 1e3, rng));
    const ai::Surrogate& s = surrogates.back();
    f.add_row({std::to_string(samples), sim::fmt(s.train_rmse, 4),
               sim::fmt(s.test_rmse, 4), sim::fmt_time_ns(s.train_cost_ns)});
  }
  f.print();

  hpc::bench::section("\n(b) campaign of 200k steps: anchoring cadence vs speedup/error");
  sim::Table t({"surrogate", "anchor every", "campaign time", "speedup",
                "mean |error|"});
  const ai::Surrogate& good = surrogates.back();  // 4k samples
  for (const std::int64_t anchor : {5, 20, 100, 0}) {
    sim::Rng rng(42);
    const ai::LoopResult r = ai::run_campaign(truth, good, campaign_steps, anchor, rng);
    t.add_row({"4k-sample", anchor == 0 ? "never" : "1/" + std::to_string(anchor),
               sim::fmt_time_ns(r.time_hybrid_ns), sim::fmt(r.speedup, 1) + "x",
               sim::fmt(r.mean_abs_error, 4)});
  }
  {
    sim::Rng rng(43);
    const ai::LoopResult r = ai::run_campaign(truth, surrogates.front(), campaign_steps, 20, rng);
    t.add_row({"250-sample", "1/20", sim::fmt_time_ns(r.time_hybrid_ns),
               sim::fmt(r.speedup, 1) + "x", sim::fmt(r.mean_abs_error, 4)});
  }
  {
    sim::Rng rng(44);
    const ai::LoopResult r = ai::run_campaign(truth, good, campaign_steps, 20, rng);
    std::printf("\nreference row (all-exact campaign): %s; hybrid (4k, 1/20): %s "
                "=> %.1fx speedup at %.4f mean error\n",
                sim::fmt_time_ns(r.time_full_ns).c_str(),
                sim::fmt_time_ns(r.time_hybrid_ns).c_str(), r.speedup, r.mean_abs_error);
  }
  t.print();
  std::printf("\n");
}

void BM_SurrogateTraining(benchmark::State& state) {
  const ai::GroundTruth truth = ai::oscillator_truth(1e6);
  for (auto _ : state) {
    sim::Rng rng(45);
    benchmark::DoNotOptimize(ai::train_surrogate(truth, state.range(0), 1e3, rng));
  }
}
BENCHMARK(BM_SurrogateTraining)->Arg(250)->Unit(benchmark::kMillisecond);

void BM_SurrogateInference(benchmark::State& state) {
  sim::Rng rng(46);
  const ai::GroundTruth truth = ai::oscillator_truth(1e6);
  const ai::Surrogate s = ai::train_surrogate(truth, 500, 1e3, rng);
  const std::vector<float> x{0.3f, 0.4f, 0.5f};
  for (auto _ : state) benchmark::DoNotOptimize(s.model.forward(x));
}
BENCHMARK(BM_SurrogateInference);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
