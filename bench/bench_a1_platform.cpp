/// Ablation A1 (paper Section III.E): business execution of heterogeneity —
/// custom per-silicon boards vs an OCP-like standard module.
///
/// "The silicon ecosystem is blooming but the ever more expensive system
/// development process can really sustain fewer and fewer options ... the
/// industry should drive towards a standard for motherboards."  Expected
/// shape: under a fixed enablement budget the standard module fields several
/// times more silicon options at low volume; custom boards only pay off at
/// volumes early accelerators never reach.

#include <string>

#include "bench_common.hpp"
#include "hw/platform.hpp"

namespace {

using namespace hpc;

void print_experiment() {
  hpc::bench::banner(
      "A1", "Board standardization economics (Section III.E)",
      "a standard system-board module lowers the enablement hurdle and "
      "sustains a diverse silicon ecosystem that custom boards cannot");

  const hw::PlatformModel custom = hw::custom_board_model();
  const hw::PlatformModel standard = hw::standard_module_model();

  hpc::bench::section("silicon options affordable under a $12M enablement budget");
  sim::Table t({"units per silicon", "custom boards", "standard modules", "ratio"});
  for (const double units : {200.0, 1'000.0, 5'000.0, 20'000.0}) {
    const int nc = hw::affordable_device_kinds(custom, 12e6, units);
    const int ns = hw::affordable_device_kinds(standard, 12e6, units);
    t.add_row({sim::fmt(units, 0), std::to_string(nc), std::to_string(ns),
               nc > 0 ? sim::fmt(static_cast<double>(ns) / nc, 1) + "x" : "inf"});
  }
  t.print();

  std::printf("\nbreak-even volume (custom NRE amortized): %.0f units per silicon\n",
              hw::breakeven_units(custom, standard));
  std::printf("integration time: %.0f weeks custom vs %.0f weeks standard\n\n",
              custom.integration_weeks, standard.integration_weeks);

  hpc::bench::section("total enablement cost of fielding 8 silicon options");
  sim::Table c({"units per silicon", "custom total-M$", "standard total-M$"});
  for (const double units : {500.0, 2'000.0, 10'000.0}) {
    c.add_row({sim::fmt(units, 0),
               sim::fmt(hw::enablement_cost_usd(custom, 8, units) / 1e6, 2),
               sim::fmt(hw::enablement_cost_usd(standard, 8, units) / 1e6, 2)});
  }
  c.print();
  std::printf("\n");
}

void BM_EnablementCost(benchmark::State& state) {
  const hw::PlatformModel m = hw::standard_module_model();
  for (auto _ : state)
    benchmark::DoNotOptimize(hw::enablement_cost_usd(m, 8, 1'000.0));
}
BENCHMARK(BM_EnablementCost);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
