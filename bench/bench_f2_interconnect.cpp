/// Experiment F2 (paper Figure 2): interconnect at the device, rack and
/// system scale.
///
/// Two quantifications of the figure's argument:
///  (a) Device scale — "PCIe latencies are far too high for memory access":
///      dependent-load latency and pointer-chase slowdown of fabric-attached
///      memory behind PCIe vs CXL-class links.
///  (b) "Provide bandwidth in a way that it can be divided between local,
///      rack-scale and system-wide connectivity": fixed per-scale bandwidth
///      partitioning vs flexible division, across traffic patterns.
/// Expected shape: CXL keeps remote memory in the sub-microsecond regime and
/// flexible partitioning matches every pattern while any fixed split loses
/// badly off its design point.

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mem/datamove.hpp"
#include "mem/fabric.hpp"

namespace {

using namespace hpc;

void print_device_scale() {
  hpc::bench::section("(a) device scale: fabric-attached memory behind each link class");
  sim::Table t({"link", "load-latency", "stream-bw", "ptr-chase-slowdown",
                "1GB-read"});
  for (const net::LinkClass cls :
       {net::LinkClass::kOnBoard, net::LinkClass::kCxl, net::LinkClass::kNvlinkish,
        net::LinkClass::kPcie5, net::LinkClass::kPcie4, net::LinkClass::kEth200}) {
    mem::FabricPool pool{mem::pmem_tier(), cls, 1};
    t.add_row({std::string(net::link_type(cls).name),
               sim::fmt_time_ns(mem::load_latency_ns(pool)),
               sim::fmt(mem::stream_bandwidth_gbs(pool), 1) + " GB/s",
               sim::fmt(mem::pointer_chase_slowdown(pool), 2) + "x",
               sim::fmt_time_ns(mem::bulk_read_ns(pool, 1e9))});
  }
  t.print();
  std::printf("(media is fabric-attached persistent memory throughout; the 'dram' "
              "row is the direct-attached reference point)\n\n");
}

/// Traffic pattern: demanded bandwidth (GB/s) at each scale.
struct Pattern {
  std::string name;
  double local;
  double rack;
  double system;
};

/// Fixed split: each scale gets a hard slice of the node's budget.
double fixed_throughput(const Pattern& p, double budget,
                        const std::array<double, 3>& split) {
  return std::min(p.local, budget * split[0]) + std::min(p.rack, budget * split[1]) +
         std::min(p.system, budget * split[2]);
}

/// Flexible division (the Figure 2 design): one budget, shared by demand.
double flexible_throughput(const Pattern& p, double budget) {
  const double total_demand = p.local + p.rack + p.system;
  return std::min(total_demand, budget);
}

void print_partitioning() {
  hpc::bench::section("(b) rack/system scale: fixed vs flexible bandwidth division");
  const double budget = 200.0;  // GB/s of total node connectivity
  const std::array<double, 3> even_split{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const std::vector<Pattern> patterns{
      {"local-heavy (accelerator peering)", 170.0, 20.0, 10.0},
      {"rack-heavy (memory pooling)", 30.0, 150.0, 20.0},
      {"system-heavy (all-reduce)", 10.0, 30.0, 160.0},
      {"balanced", 66.0, 66.0, 66.0},
  };
  sim::Table t({"traffic pattern", "fixed-split GB/s", "flexible GB/s", "gain"});
  for (const Pattern& p : patterns) {
    const double fixed = fixed_throughput(p, budget, even_split);
    const double flex = flexible_throughput(p, budget);
    t.add_row({p.name, sim::fmt(fixed, 1), sim::fmt(flex, 1),
               sim::fmt(flex / fixed, 2) + "x"});
  }
  t.print();
  std::printf("\n");
}

void print_experiment() {
  hpc::bench::banner(
      "F2", "Interconnect at device, rack and system scale (paper Figure 2)",
      "CXL-class links make disaggregated memory viable where PCIe cannot; "
      "flexibly divisible bandwidth beats fixed per-scale partitioning");
  print_device_scale();
  print_partitioning();
}

void BM_FabricLoadLatency(benchmark::State& state) {
  const mem::FabricPool pool{mem::pmem_tier(), net::LinkClass::kCxl,
                             static_cast<int>(state.range(0))};
  for (auto _ : state) benchmark::DoNotOptimize(mem::load_latency_ns(pool));
}
BENCHMARK(BM_FabricLoadLatency)->Arg(1)->Arg(4);

void BM_FlexibleWaterfill(benchmark::State& state) {
  const Pattern p{"x", 30.0, 150.0, 20.0};
  for (auto _ : state) benchmark::DoNotOptimize(flexible_throughput(p, 200.0));
}
BENCHMARK(BM_FlexibleWaterfill);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
