#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>

#include "sim/report.hpp"

/// \file bench_common.hpp
/// Shared scaffolding for the experiment binaries.  Each binary first prints
/// its paper-reproduction tables (the rows EXPERIMENTS.md records), then runs
/// its google-benchmark microbenchmarks of the underlying simulation engines.

namespace hpc::bench {

/// Prints the experiment banner: id, title, and the paper claim under test.
inline void banner(const char* id, const char* title, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("Paper claim: %s\n", claim);
  std::printf("==============================================================\n\n");
}

inline void section(const char* name) { std::printf("--- %s ---\n", name); }

}  // namespace hpc::bench

/// Prints the experiment tables, then runs registered microbenchmarks.
#define ARCHIPELAGO_BENCH_MAIN(print_experiment)                    \
  int main(int argc, char** argv) {                                 \
    print_experiment();                                             \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }
