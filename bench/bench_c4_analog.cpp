/// Experiment C4 (paper Section III.B): analog "neuromorphic" engines turn
/// the O(N^2) mat-vec into an O(N) problem.
///
/// Part (a): latency and energy of an NxN mat-vec on a digital systolic
/// accelerator (roofline) vs the memristor dot-product engine [19] vs the
/// coherent-photonics engine [20], sweeping N.  Expected shape: digital time
/// grows ~N^2, analog grows ~N (tile waves), with a crossover at modest N;
/// analog energy per op is orders of magnitude lower.
/// Part (b): the cost of analog — classifier accuracy vs read-noise level,
/// using the real trained MLP through the noisy crossbar model.

#include <string>

#include "bench_common.hpp"
#include "ai/datasets.hpp"
#include "ai/exec.hpp"
#include "hw/analog.hpp"
#include "hw/catalog.hpp"

namespace {

using namespace hpc;

void print_scaling() {
  hpc::bench::section("(a) NxN mat-vec: digital vs analog, latency and energy");
  const hw::Device systolic(hw::systolic_spec());
  const hw::AnalogEngine dpe(hw::dpe_spec());
  const hw::AnalogEngine photonic(hw::photonic_spec());

  sim::Table t({"N", "systolic time", "dpe time", "photonic time", "systolic uJ",
                "dpe uJ", "photonic uJ"});
  for (const std::int64_t n : {256, 512, 1024, 2048, 4096, 8192, 16384}) {
    const hw::Kernel k = hw::make_matvec(n, hw::Precision::INT8);
    const hw::ExecutionEstimate dig = systolic.execute(k);
    t.add_row({std::to_string(n), sim::fmt_time_ns(dig.time_ns),
               sim::fmt_time_ns(dpe.matvec_time_ns(n, n)),
               sim::fmt_time_ns(photonic.matvec_time_ns(n, n)),
               sim::fmt(dig.energy_j * 1e6, 2), sim::fmt(dpe.matvec_energy_j(n, n) * 1e6, 2),
               sim::fmt(photonic.matvec_energy_j(n, n) * 1e6, 2)});
  }
  t.print();

  // Complexity check: time growth factor when N doubles at large N.
  const double t8k = dpe.matvec_time_ns(8192, 8192);
  const double t16k = dpe.matvec_time_ns(16384, 16384);
  const hw::Kernel k8 = hw::make_matvec(8192, hw::Precision::INT8);
  const hw::Kernel k16 = hw::make_matvec(16384, hw::Precision::INT8);
  std::printf("\nN 8192 -> 16384: digital time x%.1f (O(N^2)-ish), "
              "analog tile-waves x%.1f (O(N^2) tiles / fixed pool but constant "
              "per-tile latency; per-MAC time -> 0)\n",
              hw::Device(hw::systolic_spec()).exec_time_ns(k16) /
                  hw::Device(hw::systolic_spec()).exec_time_ns(k8),
              t16k / t8k);
  std::printf("programming cost amortization: dpe program(4096x4096) = %s\n\n",
              sim::fmt_time_ns(dpe.program_time_ns(4096, 4096)).c_str());
}

void print_accuracy() {
  hpc::bench::section("(b) accuracy cost of analog inference (trained 2-32-32-4 classifier)");
  sim::Rng rng(77);
  const ai::Dataset all = ai::make_blobs(1'500, 4, 2, 0.5, rng);
  auto [train, test] = ai::split(all, 0.8);
  ai::Mlp model({2, 32, 32, 4}, ai::Activation::kReLU, ai::Loss::kSoftmaxCrossEntropy, rng);
  ai::TrainConfig cfg;
  cfg.epochs = 60;
  model.train(train, cfg, rng);

  ai::ExactExecutor exact;
  const double base = ai::accuracy_with(model, test, exact);

  sim::Table t({"engine / noise sigma", "weight bits", "accuracy", "loss vs fp32"});
  t.add_row({"digital fp32", "32", sim::fmt(100.0 * base, 1) + " %", "-"});
  for (const double sigma : {0.01, 0.03, 0.05, 0.10, 0.20, 0.40}) {
    hw::AnalogSpec spec = hw::dpe_spec();
    spec.read_noise_sigma = sigma;
    const hw::AnalogEngine engine(spec);
    sim::Rng arng(78);
    ai::AnalogExecutor analog(engine, arng);
    const double acc = ai::accuracy_with(model, test, analog);
    t.add_row({"dpe sigma=" + sim::fmt(sigma, 2), std::to_string(spec.weight_bits),
               sim::fmt(100.0 * acc, 1) + " %", sim::fmt(100.0 * (base - acc), 1) + " pp"});
  }
  {
    const hw::AnalogEngine photonic{hw::photonic_spec()};
    sim::Rng arng(79);
    ai::AnalogExecutor analog(photonic, arng);
    const double acc = ai::accuracy_with(model, test, analog);
    t.add_row({"photonic (sigma=0.05)", std::to_string(hw::photonic_spec().weight_bits),
               sim::fmt(100.0 * acc, 1) + " %", sim::fmt(100.0 * (base - acc), 1) + " pp"});
  }
  t.print();
  std::printf("\n");
}

void print_experiment() {
  hpc::bench::banner(
      "C4", "Analog dot-product engines: O(N^2) -> O(N) (Section III.B)",
      "analog and photonic matrix engines execute mat-vec in linear time and "
      "energy, at the price of noise-limited accuracy");
  print_scaling();
  print_accuracy();
}

void BM_DigitalMatvec4096(benchmark::State& state) {
  const hw::Device systolic(hw::systolic_spec());
  const hw::Kernel k = hw::make_matvec(4096, hw::Precision::INT8);
  for (auto _ : state) benchmark::DoNotOptimize(systolic.execute(k));
}
BENCHMARK(BM_DigitalMatvec4096);

void BM_AnalogNoisyMatvec(benchmark::State& state) {
  const hw::AnalogEngine dpe(hw::dpe_spec());
  const std::int64_t n = state.range(0);
  std::vector<float> w(static_cast<std::size_t>(n * n), 0.5f);
  std::vector<float> x(static_cast<std::size_t>(n), 1.0f);
  sim::Rng rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(dpe.matvec(w, n, n, x, rng));
}
BENCHMARK(BM_AnalogNoisyMatvec)->Arg(64)->Arg(256);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
