/// Experiment C9 (paper Sections III.A/B): inference at the instrumentation
/// edge.
///
/// "All the instrumentation data goes back to the HPC core, but that has
/// become a critical bottleneck, which is expected to get even worse with new
/// generations of faster and more detailed experimental facilities."
/// Part (a): three instrument generations under backhaul-everything vs
/// edge-NPU triage — WAN demand, frame loss, decision latency, energy.
/// Part (b): the real-time control consequence — regulating an instrument
/// plant with the controller at the edge vs across the WAN.

#include <string>

#include "bench_common.hpp"
#include "edge/control.hpp"
#include "edge/instrument.hpp"
#include "edge/pipeline.hpp"
#include "edge/stream_sim.hpp"

namespace {

using namespace hpc;

void print_pipelines() {
  hpc::bench::section("(a) instrument generations: backhaul vs edge triage (1.25 GB/s uplink)");
  const edge::Deployment dep;
  sim::Table t({"instrument", "raw rate", "design", "wan demand", "util", "frames lost",
                "decision latency", "mJ/frame"});
  for (const edge::InstrumentSpec& inst :
       {edge::light_source_spec(), edge::light_source_upgrade_spec(),
        edge::particle_detector_spec()}) {
    for (const bool triage : {false, true}) {
      const edge::PipelineOutcome o =
          triage ? edge::edge_triage(inst, dep) : edge::backhaul_all(inst, dep);
      t.add_row({inst.name, sim::fmt(edge::mean_rate_gbs(inst), 2) + " GB/s",
                 triage ? "edge-triage" : "backhaul",
                 sim::fmt(o.wan_gbs_required, 3) + " GB/s",
                 sim::fmt(100.0 * o.wan_utilization, 0) + " %",
                 sim::fmt(100.0 * o.frames_lost_fraction, 1) + " %",
                 sim::fmt_time_ns(o.mean_decision_latency_ns),
                 sim::fmt(o.energy_per_frame_j * 1e3, 2)});
    }
  }
  t.print();
  std::printf("\n");
}

void print_control() {
  hpc::bench::section("(b) real-time control: controller placement vs regulation quality");
  const edge::Plant plant;
  const edge::PidGains gains;
  sim::Table t({"controller placement", "loop delay", "rms error", "max error",
                "time in 5% band"});
  struct Case {
    std::string name;
    int delay_steps;  // of 1 ms control periods
  };
  for (const Case& c : {Case{"at the instrument (edge NPU)", 1},
                        Case{"campus datacenter", 10},
                        Case{"HPC core over WAN", 50},
                        Case{"remote cloud", 150}}) {
    sim::Rng rng(91);
    const edge::ControlResult r =
        edge::run_control_loop(plant, gains, 1e-3, c.delay_steps, 30.0, rng);
    t.add_row({c.name, std::to_string(c.delay_steps) + " ms", sim::fmt(r.rms_error, 3),
               sim::fmt(r.max_error, 2), sim::fmt(100.0 * r.settled_fraction, 1) + " %"});
  }
  t.print();
  std::printf("(the high-gain loop a fast instrument needs is exactly the loop "
              "that falls apart across the WAN — control must move to the edge)\n\n");
}

void print_provisioning() {
  hpc::bench::section(
      "(c) provisioning the edge station (event-driven queueing, 5 s of frames)");
  const edge::InstrumentSpec inst = edge::light_source_spec();  // 800 fr/s offered
  sim::Table t({"NPU engines", "capacity fr/s", "drop rate", "mean latency",
                "p99 latency", "utilization"});
  for (const int engines : {1, 2, 4}) {
    edge::StationConfig station;
    station.engines = engines;
    station.service_ns = 2e6;  // 2 ms per frame -> 500 fr/s per engine
    sim::Rng rng(97);
    const edge::StreamResult r = edge::run_stream(inst, station, 5.0, rng);
    t.add_row({std::to_string(engines), sim::fmt(engines * 500.0, 0),
               sim::fmt(100.0 * r.drop_fraction, 1) + " %",
               sim::fmt_time_ns(r.mean_latency_ns), sim::fmt_time_ns(r.p99_latency_ns),
               sim::fmt(100.0 * r.utilization, 0) + " %"});
  }
  t.print();
  std::printf("(the burst structure matters: at 80%% duty the station needs "
              "headroom for the 1000 fr/s burst rate, not the 800 fr/s mean)\n\n");
}

void print_experiment() {
  hpc::bench::banner(
      "C9", "Edge inference and control at the facility (Sections III.A/B)",
      "next-generation instruments exceed any backhaul; triage and control "
      "must move to power-optimized accelerators at the edge");
  print_pipelines();
  print_control();
  print_provisioning();
}

void BM_ControlLoop(benchmark::State& state) {
  const edge::Plant plant;
  const edge::PidGains gains;
  sim::Rng rng(92);
  for (auto _ : state)
    benchmark::DoNotOptimize(edge::run_control_loop(
        plant, gains, 1e-3, static_cast<int>(state.range(0)), 10.0, rng));
}
BENCHMARK(BM_ControlLoop)->Arg(1)->Arg(50);

void BM_FrameSampling(benchmark::State& state) {
  sim::Rng rng(93);
  const edge::InstrumentSpec inst = edge::light_source_spec();
  for (auto _ : state) benchmark::DoNotOptimize(edge::sample_frames(inst, 1.0, rng));
}
BENCHMARK(BM_FrameSampling);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
