#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchjson.hpp"
#include "net/flowsim.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

/// \file bench_perf_obs.cpp
/// Observability overhead benchmark — the hpc::obs budget enforcer.
///
/// Times the same hostile FlowSim scenario bench_perf_flowsim regresses
/// (fat_tree(8), 4096 incast+uniform flows, seed 1234) in three
/// configurations:
///
///   baseline  — no observer attached at all
///   disabled  — TraceRecorder + MetricRegistry attached, tracing off
///   enabled   — tracing on, metrics live, flight recorder filling
///
/// and emits BENCH_obs.json via tools/benchjson.  The contract from DESIGN.md
/// §9: "disabled" must stay within ~2% of baseline (attaching observability
/// costs one pointer test per solve decision) and "enabled" within ~15%.
/// The ratios are printed for eyeballing and recorded in the committed
/// baseline; the budget is asserted by PR review against BENCH_obs.json, not
/// by an in-bench abort, because short CI timings are too noisy for a hard
/// gate.
///
/// Every row runs a fixed 5 iterations after one untimed warmup run — the
/// original single-iteration rows (driven by --benchmark_min_time on a
/// ~0.5 s/op scenario) produced a bogus "+17% disabled overhead" baseline
/// from a cold first run.  The emitted file is self-validated with
/// min_iterations = 3 so a regression back to single-shot timing cannot
/// publish a baseline, and ci/check.sh stage [5/8] re-checks the artifact
/// with benchjson_check's default threshold.

namespace {

using hpc::net::CongestionControl;
using hpc::net::FlowSim;
using hpc::net::FlowSpec;
using hpc::net::Network;
using hpc::net::Routing;

/// Same deterministic incast + uniform mix as bench_perf_flowsim, so the
/// baseline here is directly comparable with that binary's fat_tree/4096 row.
std::vector<FlowSpec> make_flows(const Network& net, int n, std::uint64_t seed) {
  hpc::sim::Rng rng(seed);
  const std::vector<int>& hosts = net.endpoints();
  std::vector<int> receivers;
  for (int r = 0; r < 8; ++r) receivers.push_back(hosts[rng.index(hosts.size())]);
  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    FlowSpec f;
    if (i % 4 == 0) {  // incast quarter
      f.src = hosts[rng.index(hosts.size())];
      f.dst = receivers[static_cast<std::size_t>(i / 4) % receivers.size()];
    } else {  // pseudo-uniform pair
      f.src = hosts[rng.index(hosts.size())];
      f.dst = hosts[rng.index(hosts.size())];
    }
    if (f.src == f.dst) f.dst = hosts[(rng.index(hosts.size()) + 1) % hosts.size()];
    f.bytes = rng.uniform(1e6, 5e7);
    f.start = static_cast<hpc::sim::TimeNs>(rng.uniform(0.0, 1e6 * n));
    f.tag = i;
    f.weight = (i % 8 == 0) ? 4.0 : 1.0;
    flows.push_back(f);
  }
  return flows;
}

enum class Mode { kBaseline, kDisabled, kEnabled };

/// The measured op is a full simulation run; the observer (when attached)
/// lives across iterations like it would across a real experiment, with the
/// flight recorder cleared between runs (ring memory stays allocated).
void run_scenario(benchmark::State& state, const Network& net,
                  const std::vector<FlowSpec>& flows, Mode mode) {
  hpc::obs::TraceRecorder trace;  // default ring: 64k events
  hpc::obs::MetricRegistry metrics;
  trace.set_enabled(mode == Mode::kEnabled);
  {
    // Untimed warmup run: the library's MinWarmUpTime is mutually exclusive
    // with Iterations, so warm the allocator/caches by hand before the timer
    // starts.  Code ahead of the state loop is not measured.
    trace.clear();
    FlowSim warm(net, CongestionControl::kNone, Routing::kMinimal, /*seed=*/42);
    if (mode != Mode::kBaseline) warm.set_observer(&trace, &metrics);
    for (const FlowSpec& f : flows) warm.add_flow(f);
    benchmark::DoNotOptimize(warm.run().makespan_ns);
  }
  for (auto _ : state) {
    trace.clear();
    FlowSim sim(net, CongestionControl::kNone, Routing::kMinimal, /*seed=*/42);
    if (mode != Mode::kBaseline) sim.set_observer(&trace, &metrics);
    for (const FlowSpec& f : flows) sim.add_flow(f);
    benchmark::DoNotOptimize(sim.run().makespan_ns);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(flows.size()));
}

struct Scenario {
  Network net;
  std::vector<FlowSpec> flows;
};

Scenario& scenario() {
  static Scenario s{hpc::net::make_fat_tree(8), {}};
  return s;
}

void register_all() {
  scenario().flows = make_flows(scenario().net, 4096, 1234);
  struct Row {
    const char* name;
    Mode mode;
  };
  constexpr Row kRows[] = {
      {"fat_tree/4096/none_minimal/baseline", Mode::kBaseline},
      {"fat_tree/4096/none_minimal/disabled", Mode::kDisabled},
      {"fat_tree/4096/none_minimal/enabled", Mode::kEnabled},
  };
  for (const Row& row : kRows) {
    benchmark::RegisterBenchmark(row.name,
                                 [mode = row.mode](benchmark::State& state) {
                                   run_scenario(state, scenario().net,
                                                scenario().flows, mode);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
  }
}

/// Google-benchmark decorates run names with the iteration spec
/// ("/iterations:5"); strip it so the committed BENCH_obs.json keeps the
/// stable scenario names earlier baselines used.
std::vector<hpc::benchjson::Entry> stable_names(
    std::vector<hpc::benchjson::Entry> entries) {
  const std::string marker = "/iterations:";
  for (hpc::benchjson::Entry& e : entries) {
    const std::size_t at = e.name.rfind(marker);
    if (at != std::string::npos &&
        e.name.find_first_not_of("0123456789", at + marker.size()) ==
            std::string::npos)
      e.name.erase(at);
  }
  return entries;
}

/// ns/op for the entry whose name ends with \p suffix (0 if absent).
double entry_ns(const std::vector<hpc::benchjson::Entry>& entries,
                const std::string& suffix) {
  for (const hpc::benchjson::Entry& e : entries) {
    if (e.name.size() >= suffix.size() &&
        e.name.compare(e.name.size() - suffix.size(), suffix.size(), suffix) == 0)
      return e.ns_per_op;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  hpc::benchjson::Recorder recorder;
  benchmark::RunSpecifiedBenchmarks(&recorder);
  benchmark::Shutdown();

  const char* out_env = std::getenv("BENCHJSON_OUT");
  const std::string out = out_env != nullptr ? out_env : "BENCH_obs.json";
  const std::vector<hpc::benchjson::Entry> entries = stable_names(recorder.entries());
  if (!hpc::benchjson::write_file(out, "obs", entries)) {
    std::fprintf(stderr, "bench_perf_obs: failed to write %s\n", out.c_str());
    return 1;
  }
  const std::string error = hpc::benchjson::validate_file(out, /*min_iterations=*/3);
  if (!error.empty()) {
    std::fprintf(stderr, "bench_perf_obs: emitted %s is invalid: %s\n", out.c_str(),
                 error.c_str());
    return 1;
  }

  const double base = entry_ns(entries, "/baseline");
  const double off = entry_ns(entries, "/disabled");
  const double on = entry_ns(entries, "/enabled");
  if (base > 0.0 && off > 0.0 && on > 0.0) {
    std::printf("bench_perf_obs: disabled overhead %+.2f%%  enabled overhead %+.2f%%"
                "  (budget: <=2%% / <=15%%)\n",
                (off / base - 1.0) * 100.0, (on / base - 1.0) * 100.0);
  }
  std::printf("bench_perf_obs: wrote %s (%zu scenarios)\n", out.c_str(),
              entries.size());
  return 0;
}
