/// Ablation A5 (paper Section II.B, last paragraph): the switch-silicon wall
/// and the silicon-photonics escape.
///
/// "State of the art switches (12.8 Tbps) ... one more natural step (to
/// 25.6 Tbps with 64 ports at 400 Gbps).  These designs have a very high
/// wire density, much of their area is taken up by SerDes ... Radical change
/// is required beyond this point."  The model quantifies both roadmaps:
/// the electrical path drowns in SerDes area and loses copper reach; the
/// co-packaged-photonics path (the HPE Labs IP the paper describes) keeps
/// logic share and reach flat while bandwidth and radix keep scaling.

#include <string>

#include "bench_common.hpp"
#include "net/switchgen.hpp"

namespace {

using namespace hpc;

void print_roadmap(const char* title, const std::vector<net::SwitchGen>& roadmap) {
  hpc::bench::section(title);
  sim::Table t({"generation", "year", "Tbps", "radix x Gbps", "SerDes area",
                "logic area", "reach", "W/Tbps"});
  for (const net::SwitchGen& g : roadmap) {
    t.add_row({g.name, std::to_string(g.year), sim::fmt(g.aggregate_tbps, 1),
               std::to_string(g.radix) + " x " + sim::fmt(g.port_gbps, 0),
               sim::fmt(100.0 * g.serdes_area_share, 0) + " %",
               sim::fmt(100.0 * g.logic_area_share(), 0) + " %",
               g.electrical_reach_m >= 100.0 ? sim::fmt(g.electrical_reach_m, 0) + " m (optical)"
                                             : sim::fmt(g.electrical_reach_m, 1) + " m (copper)",
               sim::fmt(g.power_per_tbps(), 1)});
  }
  t.print();
  std::printf("\n");
}

void print_experiment() {
  hpc::bench::banner(
      "A5", "The switch-silicon wall and the photonics escape (Section II.B)",
      "beyond 25.6 Tbps, SerDes area and collapsing copper reach end the "
      "electrical roadmap; co-packaged silicon photonics continues it");

  print_roadmap("electrical roadmap", net::electrical_roadmap());
  print_roadmap("co-packaged silicon-photonics roadmap", net::copackaged_roadmap());

  const int wall = net::radical_change_generation(net::electrical_roadmap());
  std::printf("radical-change point: electrical generation %d (%s) crosses 50%% "
              "SerDes area; the photonic roadmap never does\n\n",
              wall,
              net::electrical_roadmap()[static_cast<std::size_t>(wall)].name.c_str());
}

void BM_RoadmapScan(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(net::radical_change_generation(net::electrical_roadmap()));
}
BENCHMARK(BM_RoadmapScan);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
