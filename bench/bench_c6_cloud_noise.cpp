/// Experiment C6 (paper Section II.C): multi-tenant cloud interference makes
/// "barrier-based synchronizations ineffective (the slowest component
/// dictates performance)".
///
/// A bulk-synchronous application is strong-scaled from 4 to 1024 ranks on
/// three infrastructures: a dedicated partition, an HPC-optimized cloud
/// partition, and a general shared cloud.  Expected shape: the dedicated
/// machine holds near-ideal efficiency; the shared cloud's efficiency decays
/// with rank count because each barrier waits for the max of n noisy ranks —
/// exactly the paper's argument for why only embarrassingly parallel work
/// thrived in the cloud.

#include <string>

#include "bench_common.hpp"
#include "fed/noise.hpp"
#include "net/collectives.hpp"
#include "net/topology.hpp"

namespace {

using namespace hpc;

void print_experiment() {
  hpc::bench::banner(
      "C6", "Cloud interference vs barrier synchronization (Section II.C)",
      "interference noise makes the slowest of n ranks dictate BSP step time; "
      "efficiency collapses with scale on shared infrastructure");

  const double total_work_ns = 4e9;  // fixed problem, strong scaling
  const int steps = 200;

  hpc::bench::section("strong-scaling BSP efficiency (fixed problem, 200 steps)");
  sim::Table t({"ranks", "compute/step", "dedicated eff", "hpc-cloud eff",
                "shared-cloud eff", "shared p99/mean step"});
  for (const int ranks : {4, 16, 64, 256, 1024}) {
    const double compute_ns = total_work_ns / ranks;
    const double barrier = 20e3 + 2e3 * std::log2(static_cast<double>(ranks));
    sim::Rng r1(61);
    sim::Rng r2(61);
    sim::Rng r3(61);
    const fed::BspResult ded = fed::run_bsp(ranks, steps, compute_ns, barrier,
                                            fed::dedicated_noise(), r1);
    const fed::BspResult hpc = fed::run_bsp(ranks, steps, compute_ns, barrier,
                                            fed::hpc_cloud_noise(), r2);
    const fed::BspResult shared = fed::run_bsp(ranks, steps, compute_ns, barrier,
                                               fed::shared_cloud_noise(), r3);
    t.add_row({std::to_string(ranks), sim::fmt_time_ns(compute_ns),
               sim::fmt(100.0 * ded.efficiency, 1) + " %",
               sim::fmt(100.0 * hpc.efficiency, 1) + " %",
               sim::fmt(100.0 * shared.efficiency, 1) + " %",
               sim::fmt(shared.p99_step_ns / shared.mean_step_ns, 2) + "x"});
  }
  t.print();

  hpc::bench::section("\nresulting speedup over 4 ranks (ideal = ranks/4)");
  sim::Table sp({"ranks", "ideal", "dedicated", "shared-cloud"});
  double base_ded = 0.0;
  double base_shared = 0.0;
  for (const int ranks : {4, 16, 64, 256, 1024}) {
    const double compute_ns = total_work_ns / ranks;
    const double barrier = 20e3 + 2e3 * std::log2(static_cast<double>(ranks));
    sim::Rng r1(62);
    sim::Rng r2(62);
    const double t_ded =
        fed::run_bsp(ranks, steps, compute_ns, barrier, fed::dedicated_noise(), r1).total_ns;
    const double t_shared =
        fed::run_bsp(ranks, steps, compute_ns, barrier, fed::shared_cloud_noise(), r2).total_ns;
    if (ranks == 4) {
      base_ded = t_ded;
      base_shared = t_shared;
    }
    sp.add_row({std::to_string(ranks), sim::fmt(ranks / 4.0, 0) + "x",
                sim::fmt(base_ded / t_ded, 1) + "x",
                sim::fmt(base_shared / t_shared, 1) + "x"});
  }
  sp.print();
  std::printf("\n");
}

void BM_BspSharedCloud(benchmark::State& state) {
  sim::Rng rng(63);
  const fed::NoiseModel m = fed::shared_cloud_noise();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        fed::run_bsp(static_cast<int>(state.range(0)), 100, 1e6, 1e4, m, rng));
}
BENCHMARK(BM_BspSharedCloud)->Arg(64)->Arg(1024);

void BM_NoiseSample(benchmark::State& state) {
  sim::Rng rng(64);
  const fed::NoiseModel m = fed::shared_cloud_noise();
  for (auto _ : state) benchmark::DoNotOptimize(m.sample_slowdown(rng));
}
BENCHMARK(BM_NoiseSample);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
