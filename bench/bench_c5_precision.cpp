/// Experiment C5 (paper Section III.B): "specialized reduced precision
/// floating point formats and tensor cores ... becoming mainstream".
///
/// The same trained classifier and regressor run at every precision an
/// A100-class GPU offers; throughput is the device's sustained rate at that
/// precision, accuracy is measured through bit-exact software emulation of
/// the format.  Expected shape: fp32 -> bf16/fp16 buys ~16x throughput for
/// negligible accuracy loss; int8 buys ~32x for a small loss; int4 falls off
/// the cliff — exactly why mixed precision became mainstream.

#include <string>

#include "bench_common.hpp"
#include "ai/datasets.hpp"
#include "ai/exec.hpp"
#include "hw/catalog.hpp"

namespace {

using namespace hpc;

void print_experiment() {
  hpc::bench::banner(
      "C5", "Reduced-precision inference (Section III.B)",
      "reduced-precision formats trade small accuracy losses for large "
      "throughput and memory gains — the trade that made them mainstream");

  // Train the reference models once.  The classifier task is the two-spirals
  // manifold — hard enough that quantization error actually moves accuracy.
  sim::Rng rng(55);
  const ai::Dataset spirals = ai::make_two_spirals(2'500, 0.15, rng);
  auto [ctrain, ctest] = ai::split(spirals, 0.8);
  ai::Mlp classifier({2, 48, 48, 2}, ai::Activation::kTanh,
                     ai::Loss::kSoftmaxCrossEntropy, rng);
  ai::TrainConfig ccfg;
  ccfg.epochs = 120;
  ccfg.learning_rate = 0.03f;
  classifier.train(ctrain, ccfg, rng);

  const ai::Dataset osc = ai::make_oscillator(2'000, rng);
  auto [rtrain, rtest] = ai::split(osc, 0.85);
  ai::Mlp regressor({3, 48, 48, 1}, ai::Activation::kTanh, ai::Loss::kMse, rng);
  ai::TrainConfig rcfg;
  rcfg.epochs = 200;
  rcfg.learning_rate = 0.05f;
  regressor.train(rtrain, rcfg, rng);

  const hw::Device gpu(hw::gpu_hpc_spec());
  const hw::Kernel probe = hw::make_gemm(4096, 4096, 4096, hw::Precision::FP32);

  ai::ExactExecutor exact;
  const double base_acc = ai::accuracy_with(classifier, ctest, exact);
  const double base_rmse = ai::rmse_with(regressor, rtest, exact);
  const double base_rate = gpu.sustained_gflops(probe);

  sim::Table t({"precision", "bits", "GPU sustained Tflop/s", "speedup",
                "classifier acc", "regressor RMSE", "model size"});
  for (const hw::Precision p :
       {hw::Precision::FP32, hw::Precision::TF32, hw::Precision::BF16,
        hw::Precision::FP16, hw::Precision::INT8, hw::Precision::INT4}) {
    hw::Kernel k = probe;
    k.precision = p;
    k.bytes = probe.bytes * hw::bytes_of(p) / hw::bytes_of(hw::Precision::FP32);
    const double rate = gpu.sustained_gflops(k);

    double acc = base_acc;
    double rmse = base_rmse;
    if (p != hw::Precision::FP32) {
      ai::QuantizedExecutor q(p);
      acc = ai::accuracy_with(classifier, ctest, q);
      rmse = ai::rmse_with(regressor, rtest, q);
    }
    const double size_mb =
        classifier.parameter_count() * hw::bytes_of(p) / 1e6;
    t.add_row({std::string(hw::name_of(p)), std::to_string(hw::bits_of(p)),
               sim::fmt(rate / 1e3, 1), sim::fmt(rate / base_rate, 1) + "x",
               sim::fmt(100.0 * acc, 1) + " %", sim::fmt(rmse, 4),
               sim::fmt(size_mb * 1e3, 1) + " KB"});
  }
  t.print();
  std::printf("\n(GPU int4 rate falls back to int8 silicon on this part; the "
              "accuracy column is the real quantization loss measured through "
              "bit-exact emulation)\n\n");
}

void BM_QuantizedInference(benchmark::State& state) {
  sim::Rng rng(56);
  const ai::Dataset blobs = ai::make_blobs(200, 4, 2, 0.5, rng);
  ai::Mlp model({2, 32, 32, 4}, ai::Activation::kReLU, ai::Loss::kSoftmaxCrossEntropy, rng);
  ai::QuantizedExecutor q(static_cast<hw::Precision>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(ai::accuracy_with(model, blobs, q));
}
BENCHMARK(BM_QuantizedInference)
    ->Arg(static_cast<int>(hw::Precision::BF16))
    ->Arg(static_cast<int>(hw::Precision::INT8));

void BM_ExactInference(benchmark::State& state) {
  sim::Rng rng(57);
  const ai::Dataset blobs = ai::make_blobs(200, 4, 2, 0.5, rng);
  ai::Mlp model({2, 32, 32, 4}, ai::Activation::kReLU, ai::Loss::kSoftmaxCrossEntropy, rng);
  ai::ExactExecutor exact;
  for (auto _ : state) benchmark::DoNotOptimize(ai::accuracy_with(model, blobs, exact));
}
BENCHMARK(BM_ExactInference);

}  // namespace

ARCHIPELAGO_BENCH_MAIN(print_experiment)
