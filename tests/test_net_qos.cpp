/// Virtual-network QoS (paper Section III.C): "the system will instantiate a
/// virtual network for each application or workflow, a secure environment
/// with strong service level guarantees" — realized here as weighted fair
/// sharing in the flow simulator.

#include <gtest/gtest.h>

#include "net/flowsim.hpp"
#include "net/topology.hpp"

namespace hpc::net {
namespace {

TEST(Qos, WeightsSplitASharedLink) {
  // Two flows share one 25 GB/s link with weights 3:1.
  const Network net = make_single_switch(3);
  const auto& h = net.endpoints();
  FlowSim sim(net);
  FlowSpec heavy{h[1], h[0], 7.5e9, 0, 1};
  heavy.weight = 3.0;
  FlowSpec light{h[2], h[0], 7.5e9, 0, 2};
  light.weight = 1.0;
  sim.add_flow(heavy);
  sim.add_flow(light);
  const FlowRunSummary out = sim.run();
  // Heavy gets 18.75 GB/s -> 0.4 s; light 6.25 then all 25 after heavy ends.
  const double heavy_fct = out.fct_sampler(1).mean();
  EXPECT_NEAR(heavy_fct, 0.4e9, 2e7);
  const double light_fct = out.fct_sampler(2).mean();
  EXPECT_GT(light_fct, heavy_fct);
}

TEST(Qos, EqualWeightsIsPlainFairShare) {
  const Network net = make_single_switch(3);
  const auto& h = net.endpoints();
  FlowSim sim(net);
  sim.add_flow({h[1], h[0], 12.5e9, 0, 1, 2.0});
  sim.add_flow({h[2], h[0], 12.5e9, 0, 2, 2.0});
  const FlowRunSummary out = sim.run();
  for (const FlowResult& f : out.flows) EXPECT_NEAR(f.fct_ns, 1e9, 2e7);
}

TEST(Qos, GuaranteedTenantUnaffectedByBestEffortStorm) {
  // A premium tenant (weight 10) shares the fabric with a storm of 10
  // best-effort flows (weight 1 each): the tenant holds half the link.
  const Network net = make_single_switch(12);
  const auto& h = net.endpoints();
  FlowSim sim(net);
  FlowSpec premium{h[1], h[0], 5e9, 0, 1};
  premium.weight = 10.0;
  sim.add_flow(premium);
  for (int i = 2; i < 12; ++i)
    sim.add_flow({h[static_cast<std::size_t>(i)], h[0], 25e9, 0, 2, 1.0});
  const FlowRunSummary out = sim.run();
  // Premium share: 10/20 of 25 GB/s = 12.5 -> 0.4 s.
  EXPECT_NEAR(out.fct_sampler(1).mean(), 0.4e9, 3e7);
}

TEST(Qos, WeightedShareSurvivesCongestionTreeMode) {
  const Network net = make_single_switch(4);
  const auto& h = net.endpoints();
  FlowSim sim(net, CongestionControl::kNone);
  FlowSpec premium{h[1], h[0], 5e9, 0, 1};
  premium.weight = 4.0;
  sim.add_flow(premium);
  sim.add_flow({h[2], h[0], 5e9, 0, 2, 1.0});
  sim.add_flow({h[3], h[0], 5e9, 0, 2, 1.0});
  const FlowRunSummary out = sim.run();
  // Premium: 4/6 of 25 GB/s ~ 16.7 -> ~0.3 s; best effort finish later.
  EXPECT_LT(out.fct_sampler(1).mean(), out.fct_sampler(2).mean());
}

TEST(Qos, ZeroWeightClampedNotStarved) {
  const Network net = make_single_switch(3);
  const auto& h = net.endpoints();
  FlowSim sim(net);
  sim.add_flow({h[1], h[0], 1e9, 0, 1, 0.0});  // degenerate weight
  const FlowRunSummary out = sim.run();
  ASSERT_EQ(out.flows.size(), 1u);
  // Sole flow on the link: clamped weight still yields the full link.
  EXPECT_NEAR(out.flows[0].fct_ns, 1e9 / 25.0, 1e6);
}

TEST(Qos, AggregateThroughputConserved) {
  // Weights redistribute, never create, bandwidth.
  const Network net = make_single_switch(4);
  const auto& h = net.endpoints();
  double total_weighted = 0.0;
  double total_equal = 0.0;
  {
    FlowSim sim(net);
    sim.add_flow({h[1], h[0], 10e9, 0, 0, 5.0});
    sim.add_flow({h[2], h[0], 10e9, 0, 0, 1.0});
    sim.add_flow({h[3], h[0], 10e9, 0, 0, 1.0});
    total_weighted = sim.run().makespan_ns;
  }
  {
    FlowSim sim(net);
    for (int i = 1; i <= 3; ++i) sim.add_flow({h[static_cast<std::size_t>(i)], h[0], 10e9, 0, 0, 1.0});
    total_equal = sim.run().makespan_ns;
  }
  // 30 GB over a 25 GB/s egress either way: same makespan.
  EXPECT_NEAR(total_weighted, total_equal, 1e7);
}

}  // namespace
}  // namespace hpc::net
