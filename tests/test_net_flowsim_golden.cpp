#include <gtest/gtest.h>

#include <vector>

#include "flowsim_reference.hpp"
#include "net/flowsim.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

/// \file test_net_flowsim_golden.cpp
/// Golden equivalence: the incidence-indexed FlowSim hot path must be
/// *behavior-preserving*, i.e. bit-identical to the frozen pre-optimization
/// implementation (tests/flowsim_reference.hpp) — same per-flow fct_ns /
/// finish_ns / mean_rate_gbs, same result ordering, same aggregates — on
/// seeded scenarios covering every solver branch: congestion-tree incast
/// (kNone + rate caps), adaptive routing (rng-consuming path probes),
/// weighted QoS mixes with arrival ties, and zero-hop flows (the
/// recompute-skip path).

namespace hpc::net {
namespace {

void expect_bit_identical(const FlowRunSummary& got, const FlowRunSummary& want) {
  ASSERT_EQ(got.flows.size(), want.flows.size());
  for (std::size_t i = 0; i < got.flows.size(); ++i) {
    SCOPED_TRACE("flow index " + std::to_string(i));
    EXPECT_EQ(got.flows[i].spec.src, want.flows[i].spec.src);
    EXPECT_EQ(got.flows[i].spec.dst, want.flows[i].spec.dst);
    EXPECT_EQ(got.flows[i].spec.tag, want.flows[i].spec.tag);
    // EXPECT_EQ on doubles is deliberate: the contract is bit-identical, not
    // approximately equal.
    EXPECT_EQ(got.flows[i].finish_ns, want.flows[i].finish_ns);
    EXPECT_EQ(got.flows[i].fct_ns, want.flows[i].fct_ns);
    EXPECT_EQ(got.flows[i].mean_rate_gbs, want.flows[i].mean_rate_gbs);
  }
  EXPECT_EQ(got.makespan_ns, want.makespan_ns);
  EXPECT_EQ(got.aggregate_throughput_gbs, want.aggregate_throughput_gbs);
}

void run_golden(const Network& net, const std::vector<FlowSpec>& flows,
                CongestionControl cc, Routing routing, std::uint64_t seed) {
  FlowSim optimized(net, cc, routing, seed);
  testref::ReferenceFlowSim reference(net, cc, routing, seed);
  for (const FlowSpec& f : flows) {
    optimized.add_flow(f);
    reference.add_flow(f);
  }
  expect_bit_identical(optimized.run(), reference.run());
}

/// Seeded pseudo-random flow set over the network's endpoints.
std::vector<FlowSpec> random_flows(const Network& net, int n, std::uint64_t seed,
                                   bool weighted, bool with_zero_hop) {
  sim::Rng rng(seed);
  const std::vector<int>& h = net.endpoints();
  std::vector<FlowSpec> flows;
  for (int i = 0; i < n; ++i) {
    FlowSpec f;
    f.src = h[rng.index(h.size())];
    f.dst = with_zero_hop && i % 9 == 0 ? f.src : h[rng.index(h.size())];
    f.bytes = rng.uniform(1e6, 2e9);
    // Ties on purpose: several flows share each start time so batched
    // activation and same-time completion sweeps are exercised.
    f.start = static_cast<sim::TimeNs>(i / 3) * 40'000'000;
    f.tag = i;
    if (weighted) f.weight = (i % 3 == 0) ? 4.0 : (i % 3 == 1 ? 2.0 : 1.0);
    flows.push_back(f);
  }
  return flows;
}

TEST(FlowSimGolden, FatTreeIncastCongestionTree) {
  const Network net = make_fat_tree(4);
  const std::vector<int>& h = net.endpoints();
  std::vector<FlowSpec> flows;
  // 40-to-1 incast onto h[0] (deep congestion tree, rate caps binding) plus
  // cross-pod background pairs.
  for (int i = 0; i < 40; ++i)
    flows.push_back({h[1 + (i % (static_cast<int>(h.size()) - 1))], h[0], 5e8,
                     static_cast<sim::TimeNs>(i % 5) * 10'000'000, i});
  for (int i = 0; i < 24; ++i)
    flows.push_back({h[static_cast<std::size_t>(1 + i % 7)],
                     h[static_cast<std::size_t>(8 + i % 8)], 2e9,
                     static_cast<sim::TimeNs>(i) * 25'000'000, 100 + i});
  run_golden(net, flows, CongestionControl::kNone, Routing::kMinimal, 11);
}

TEST(FlowSimGolden, DragonflyAdaptiveRouting) {
  const Network net = make_dragonfly(4, 2, 2);
  const std::vector<FlowSpec> flows = random_flows(net, 80, 17, /*weighted=*/false,
                                                   /*with_zero_hop=*/false);
  run_golden(net, flows, CongestionControl::kFlowBased, Routing::kAdaptive, 17);
}

TEST(FlowSimGolden, DragonflyValiantCongestionTree) {
  const Network net = make_dragonfly(4, 2, 2);
  const std::vector<FlowSpec> flows = random_flows(net, 60, 23, /*weighted=*/false,
                                                   /*with_zero_hop=*/false);
  run_golden(net, flows, CongestionControl::kNone, Routing::kValiant, 23);
}

TEST(FlowSimGolden, QosWeightedMixFlowBased) {
  const Network net = make_fat_tree(4);
  const std::vector<FlowSpec> flows = random_flows(net, 90, 31, /*weighted=*/true,
                                                   /*with_zero_hop=*/true);
  run_golden(net, flows, CongestionControl::kFlowBased, Routing::kMinimal, 31);
}

TEST(FlowSimGolden, QosWeightedMixCongestionTree) {
  const Network net = make_fat_tree(4);
  const std::vector<FlowSpec> flows = random_flows(net, 90, 37, /*weighted=*/true,
                                                   /*with_zero_hop=*/true);
  run_golden(net, flows, CongestionControl::kNone, Routing::kMinimal, 37);
}

TEST(FlowSimGolden, SingleSwitchZeroHopOnly) {
  // Pure zero-hop batch: exercises the recompute-skip path end to end.
  const Network net = make_single_switch(4);
  const std::vector<int>& h = net.endpoints();
  std::vector<FlowSpec> flows;
  for (int i = 0; i < 6; ++i)
    flows.push_back({h[static_cast<std::size_t>(i % 4)], h[static_cast<std::size_t>(i % 4)],
                     1e9, static_cast<sim::TimeNs>(i) * 1000, i});
  flows.push_back({h[0], h[1], 25e9, 2000, 99});  // one real flow among them
  run_golden(net, flows, CongestionControl::kFlowBased, Routing::kMinimal, 1);
}

}  // namespace
}  // namespace hpc::net
