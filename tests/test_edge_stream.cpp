#include "edge/stream_sim.hpp"

#include <gtest/gtest.h>

namespace hpc::edge {
namespace {

InstrumentSpec steady_instrument(double frames_per_s) {
  InstrumentSpec inst;
  inst.name = "steady";
  inst.frames_per_s = frames_per_s;
  inst.burst_duty = 1.0;  // no idle phases
  return inst;
}

TEST(StreamSim, UnderloadedStationServesEverything) {
  // 4 engines x 400 us service = 10k frames/s capacity; offer 2k/s.
  sim::Rng rng(101);
  const StreamResult r = run_stream(steady_instrument(2'000.0), StationConfig{}, 5.0, rng);
  EXPECT_GT(r.frames_offered, 8'000);
  EXPECT_DOUBLE_EQ(r.drop_fraction, 0.0);
  // Latency is close to bare service time.
  EXPECT_LT(r.mean_latency_ns, 2.0 * 400e3);
  EXPECT_NEAR(r.utilization, 0.2, 0.05);
}

TEST(StreamSim, OverloadedStationDrops) {
  // Offer 3x capacity: ~2/3 of frames must drop once the queue fills.
  sim::Rng rng(102);
  const StreamResult r = run_stream(steady_instrument(30'000.0), StationConfig{}, 3.0, rng);
  EXPECT_GT(r.drop_fraction, 0.5);
  EXPECT_GT(r.utilization, 0.95);
  // Served frames match capacity, not offered load.
  EXPECT_NEAR(static_cast<double>(r.frames_served), 10'000.0 * 3.0, 1'500.0);
}

TEST(StreamSim, QueueCapacityBoundsLatency) {
  sim::Rng rng(103);
  StationConfig small;
  small.queue_capacity = 8;
  StationConfig large;
  large.queue_capacity = 512;
  const StreamResult rs = run_stream(steady_instrument(12'000.0), small, 3.0, rng);
  sim::Rng rng2(103);
  const StreamResult rl = run_stream(steady_instrument(12'000.0), large, 3.0, rng2);
  // Same overload: the small queue drops more but keeps tail latency low.
  EXPECT_GT(rs.drop_fraction, rl.drop_fraction);
  EXPECT_LT(rs.p99_latency_ns, rl.p99_latency_ns);
}

TEST(StreamSim, MoreEnginesMoreThroughput) {
  sim::Rng r1(104);
  sim::Rng r2(104);
  StationConfig one;
  one.engines = 1;
  StationConfig eight;
  eight.engines = 8;
  const StreamResult a = run_stream(steady_instrument(10'000.0), one, 2.0, r1);
  const StreamResult b = run_stream(steady_instrument(10'000.0), eight, 2.0, r2);
  EXPECT_GT(b.frames_served, 3 * a.frames_served);
}

TEST(StreamSim, BurstDutyGatesOfferedLoad) {
  sim::Rng r1(105);
  sim::Rng r2(105);
  InstrumentSpec full = steady_instrument(5'000.0);
  InstrumentSpec half = full;
  half.burst_duty = 0.5;
  const StreamResult a = run_stream(full, StationConfig{}, 4.0, r1);
  const StreamResult b = run_stream(half, StationConfig{}, 4.0, r2);
  EXPECT_NEAR(static_cast<double>(b.frames_offered) / a.frames_offered, 0.5, 0.1);
}

TEST(StreamSim, AgreesWithAnalyticPipelineDirection) {
  // The event-driven station and the closed-form pipeline model must agree on
  // which instrument overloads a given deployment.
  const InstrumentSpec next_gen = light_source_upgrade_spec();
  StationConfig station;
  station.engines = 2;
  station.service_ns = 400e3;  // 5k frames/s capacity vs 8k offered
  sim::Rng rng(106);
  const StreamResult dynamic = run_stream(next_gen, station, 2.0, rng);
  EXPECT_GT(dynamic.drop_fraction, 0.2);
  EXPECT_GT(dynamic.utilization, 0.9);
}

TEST(StreamSim, DeterministicForSeed) {
  sim::Rng r1(107);
  sim::Rng r2(107);
  const StreamResult a = run_stream(steady_instrument(6'000.0), StationConfig{}, 2.0, r1);
  const StreamResult b = run_stream(steady_instrument(6'000.0), StationConfig{}, 2.0, r2);
  EXPECT_EQ(a.frames_offered, b.frames_offered);
  EXPECT_EQ(a.frames_dropped, b.frames_dropped);
  EXPECT_DOUBLE_EQ(a.mean_latency_ns, b.mean_latency_ns);
}

}  // namespace
}  // namespace hpc::edge
