#include "sched/workload.hpp"

#include <gtest/gtest.h>

#include <map>

namespace hpc::sched {
namespace {

TEST(Workload, GeneratesRequestedCount) {
  sim::Rng rng(81);
  WorkloadConfig cfg;
  cfg.jobs = 137;
  const std::vector<Job> jobs = generate_workload(cfg, rng);
  EXPECT_EQ(jobs.size(), 137u);
}

TEST(Workload, ArrivalsMonotone) {
  sim::Rng rng(82);
  WorkloadConfig cfg;
  cfg.jobs = 100;
  const std::vector<Job> jobs = generate_workload(cfg, rng);
  for (std::size_t i = 1; i < jobs.size(); ++i)
    EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
}

TEST(Workload, DeterministicForSeed) {
  auto once = [] {
    sim::Rng rng(83);
    WorkloadConfig cfg;
    cfg.jobs = 50;
    return generate_workload(cfg, rng);
  };
  const auto a = once();
  const auto b = once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_DOUBLE_EQ(a[i].total_gflop, b[i].total_gflop);
    EXPECT_EQ(a[i].nodes, b[i].nodes);
  }
}

TEST(Workload, KindSharesRoughlyHonored) {
  sim::Rng rng(84);
  WorkloadConfig cfg;
  cfg.jobs = 4'000;
  const std::vector<Job> jobs = generate_workload(cfg, rng);
  std::map<JobKind, int> counts;
  for (const Job& j : jobs) ++counts[kind_of(j)];
  EXPECT_NEAR(counts[JobKind::kHpcSimulation] / 4'000.0, 0.40, 0.04);
  EXPECT_NEAR(counts[JobKind::kAiTraining] / 4'000.0, 0.25, 0.04);
  EXPECT_NEAR(counts[JobKind::kAiInference] / 4'000.0, 0.20, 0.04);
  EXPECT_NEAR(counts[JobKind::kAnalytics] / 4'000.0, 0.15, 0.04);
}

TEST(Workload, MixesNormalized) {
  sim::Rng rng(85);
  WorkloadConfig cfg;
  cfg.jobs = 200;
  for (const Job& j : generate_workload(cfg, rng)) {
    double sum = 0.0;
    for (const double v : j.mix) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Workload, NodesWithinBounds) {
  sim::Rng rng(86);
  WorkloadConfig cfg;
  cfg.jobs = 500;
  cfg.max_nodes = 8;
  for (const Job& j : generate_workload(cfg, rng)) {
    EXPECT_GE(j.nodes, 1);
    EXPECT_LE(j.nodes, 8);
  }
}

TEST(Workload, InferenceJobsAreSmall) {
  sim::Rng rng(87);
  WorkloadConfig cfg;
  cfg.jobs = 2'000;
  double infer_mean = 0.0;
  double other_mean = 0.0;
  int ni = 0;
  int no = 0;
  for (const Job& j : generate_workload(cfg, rng)) {
    if (kind_of(j) == JobKind::kAiInference) {
      infer_mean += j.total_gflop;
      ++ni;
    } else {
      other_mean += j.total_gflop;
      ++no;
    }
  }
  ASSERT_GT(ni, 0);
  ASSERT_GT(no, 0);
  EXPECT_LT(infer_mean / ni, other_mean / no);
}

TEST(Workload, DeadlinesSetWhenConfigured) {
  sim::Rng rng(88);
  WorkloadConfig cfg;
  cfg.jobs = 50;
  cfg.deadline_slack = 3.0;
  for (const Job& j : generate_workload(cfg, rng)) EXPECT_GT(j.deadline, j.arrival);
  WorkloadConfig no_sla;
  no_sla.jobs = 50;
  sim::Rng rng2(88);
  for (const Job& j : generate_workload(no_sla, rng2)) EXPECT_EQ(j.deadline, 0u);
}

TEST(Workload, DatasetScalesWithWork) {
  sim::Rng rng(89);
  WorkloadConfig cfg;
  cfg.jobs = 100;
  for (const Job& j : generate_workload(cfg, rng))
    EXPECT_NEAR(j.dataset_gb, cfg.dataset_gb_per_tflop * j.total_gflop / 1e3, 1e-9);
}

TEST(Workload, KindNamesDistinct) {
  EXPECT_NE(name_of(JobKind::kHpcSimulation), name_of(JobKind::kAiTraining));
  EXPECT_NE(name_of(JobKind::kAiInference), name_of(JobKind::kAnalytics));
}

}  // namespace
}  // namespace hpc::sched
