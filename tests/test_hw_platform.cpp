#include "hw/platform.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hpc::hw {
namespace {

TEST(Platform, PaperAnchorFewMillionNre) {
  // Section III.E: "any given platform enablement effort can now easily
  // reach a few million dollars".
  EXPECT_GE(custom_board_model().nre_per_device_usd, 1e6);
  EXPECT_LT(standard_module_model().nre_per_device_usd,
            custom_board_model().nre_per_device_usd / 5.0);
}

TEST(Platform, EnablementCostLinearInKinds) {
  const PlatformModel m = custom_board_model();
  EXPECT_DOUBLE_EQ(enablement_cost_usd(m, 4, 1'000.0),
                   2.0 * enablement_cost_usd(m, 2, 1'000.0));
}

TEST(Platform, StandardModuleFieldsMoreSilicon) {
  // The paper's thesis: the standard "would lower the hurdle to new
  // technology enablement and truly enable a diverse silicon ecosystem".
  const double budget = 12e6;
  const double low_volume = 500.0;  // early/low-volume parts
  const int custom = affordable_device_kinds(custom_board_model(), budget, low_volume);
  const int standard = affordable_device_kinds(standard_module_model(), budget, low_volume);
  EXPECT_GE(standard, 4 * custom);
}

TEST(Platform, CustomWinsOnlyAtHugeVolume) {
  const double be = breakeven_units(custom_board_model(), standard_module_model());
  EXPECT_GT(be, 5'000.0);  // thousands of units before custom NRE pays off
  EXPECT_TRUE(std::isfinite(be));
  // At volumes beyond break-even, custom really is cheaper per kind.
  EXPECT_LT(enablement_cost_usd(custom_board_model(), 1, be * 2.0),
            enablement_cost_usd(standard_module_model(), 1, be * 2.0));
  // And below it, the standard module wins.
  EXPECT_GT(enablement_cost_usd(custom_board_model(), 1, be / 2.0),
            enablement_cost_usd(standard_module_model(), 1, be / 2.0));
}

TEST(Platform, BreakevenInfiniteWithoutPremiumGap) {
  PlatformModel a = custom_board_model();
  PlatformModel b = standard_module_model();
  b.unit_premium_usd = 0.0;
  EXPECT_TRUE(std::isinf(breakeven_units(a, b)));
}

TEST(Platform, IntegrationTimeShrink) {
  EXPECT_LT(standard_module_model().integration_weeks,
            custom_board_model().integration_weeks / 2.0);
}

}  // namespace
}  // namespace hpc::hw
