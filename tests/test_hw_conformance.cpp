#include "hw/conformance.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "hw/catalog.hpp"

namespace hpc::hw {
namespace {

TEST(CapabilitySet, AddHasMissing) {
  CapabilitySet caps{Capability::kKernelLaunch, Capability::kMemoryAlloc};
  EXPECT_TRUE(caps.has(Capability::kKernelLaunch));
  EXPECT_FALSE(caps.has(Capability::kTelemetry));
  EXPECT_EQ(caps.size(), 2u);
  const CapabilitySet required{Capability::kKernelLaunch, Capability::kTelemetry};
  const auto missing = caps.missing(required);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], Capability::kTelemetry);
}

TEST(CapabilitySet, DuplicateAddIdempotent) {
  CapabilitySet caps;
  caps.add(Capability::kTelemetry);
  caps.add(Capability::kTelemetry);
  EXPECT_EQ(caps.size(), 1u);
}

TEST(Certify, EstablishedSiliconPassesBaseProfile) {
  const RuntimeProfile profile;
  for (const DeviceSpec& spec : {cpu_server_spec(), gpu_hpc_spec(), systolic_spec(),
                                 fpga_spec(), edge_npu_spec()}) {
    const CertificationReport r = certify(spec, typical_driver(spec.kind), profile);
    EXPECT_TRUE(r.certified) << spec.name << " failures=" << r.failures();
  }
}

TEST(Certify, EarlyAnalogSiliconPassesBaseButFailsServiceProfile) {
  // The paper's DevOps promise: rolling in new silicon is automated *as long
  // as drivers meet the interface*.  Early analog parts meet the base
  // interface but lack telemetry/virtualization for as-a-Service duty.
  const DeviceSpec dpe = analog_dpe_device_spec();
  const CapabilitySet driver = typical_driver(dpe.kind);
  EXPECT_TRUE(certify(dpe, driver, RuntimeProfile{}).certified);
  const CertificationReport service = certify(dpe, driver, service_profile());
  EXPECT_FALSE(service.certified);
  EXPECT_EQ(service.missing_capabilities.size(), 2u);  // telemetry + virtualization
}

TEST(Certify, BrokenDeviceModelFailsSmokeTests) {
  DeviceSpec broken = cpu_server_spec();
  broken.peak_gflops.clear();  // driver enumerates nothing
  const CertificationReport r =
      certify(broken, typical_driver(broken.kind), RuntimeProfile{});
  EXPECT_FALSE(r.certified);
  bool exec_failed = false;
  for (const CheckResult& c : r.checks)
    if (c.name == "executes-gemm" && !c.passed) exec_failed = true;
  EXPECT_TRUE(exec_failed);
}

TEST(Certify, MissingDriverCapabilityBlocksCertification) {
  const DeviceSpec gpu = gpu_hpc_spec();
  CapabilitySet bare{Capability::kKernelLaunch};  // hopelessly incomplete
  const CertificationReport r = certify(gpu, bare, RuntimeProfile{});
  EXPECT_FALSE(r.certified);
  EXPECT_GE(r.missing_capabilities.size(), 3u);
  // The behavioural checks still pass — it is purely a driver-interface gap.
  for (const CheckResult& c : r.checks) EXPECT_TRUE(c.passed) << c.name;
}

TEST(Certify, ReportCountsFailures) {
  DeviceSpec broken = cpu_server_spec();
  broken.peak_gflops.clear();
  CapabilitySet bare{Capability::kKernelLaunch};
  const CertificationReport r = certify(broken, bare, service_profile());
  EXPECT_EQ(r.failures(),
            static_cast<int>(r.missing_capabilities.size()) + 4);  // 4 smoke checks fail
}

TEST(Capability, NamesDistinct) {
  std::set<std::string_view> names;
  for (int c = 0; c < kCapabilityCount; ++c)
    names.insert(name_of(static_cast<Capability>(c)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kCapabilityCount));
}

}  // namespace
}  // namespace hpc::hw
