#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

// Golden corpus: frozen source snippets with their exact expected findings.
//
// The first group reproduces, finding-for-finding, what archlint v1 (the
// line-based scanner this engine replaced) reported on the same sources —
// the v2 token engine must not lose a single v1 finding.  The second group
// pins cases v1 got WRONG: multi-line declarations it missed and raw-string
// / dead-code content it could misread.  Line numbers are part of the
// contract (editors jump to them), so they are asserted exactly.

namespace hpc::lint {
namespace {

using Expected = std::vector<std::pair<Rule, std::size_t>>;  // (rule, line)

void expect_exact(std::string_view path, std::string_view src, Expected want,
                  const char* label) {
  std::vector<Finding> got = lint_source(path, src);
  Expected have;
  have.reserve(got.size());
  for (const Finding& f : got) have.emplace_back(f.rule, f.line);
  std::sort(have.begin(), have.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(have, want) << label << ": findings diverged on " << path;
}

// ------------------------------------------------ v1 parity group -----------

TEST(ArchlintGolden, V1AmbientRngFindingsReproduce) {
  expect_exact("src/hw/bad.cpp",
               "#include <random>\n"
               "int f() {\n"
               "  std::random_device rd;\n"
               "  srand(42);\n"
               "  return rand() + (int)rd();\n"
               "}\n",
               {{Rule::kAmbientRng, 3}, {Rule::kAmbientRng, 4}, {Rule::kAmbientRng, 5}},
               "D1 corpus");
  expect_exact("src/fed/bad.cpp",
               "#include <chrono>\n"
               "long f() { return std::chrono::system_clock::now().count(); }\n"
               "long g() { return std::chrono::steady_clock::now().count(); }\n"
               "long h() { return time(nullptr); }\n",
               {{Rule::kAmbientRng, 2}, {Rule::kAmbientRng, 3}, {Rule::kAmbientRng, 4}},
               "D1 wall-clock corpus");
}

TEST(ArchlintGolden, V1UnorderedFindingsReproducePlusNewMutableGlobal) {
  // v1 flagged the include (line 1) and the use (line 2).  v2 reproduces
  // both AND sees what v1 never looked for: `table` is a mutable global.
  expect_exact("src/mem/bad.cpp",
               "#include <unordered_map>\n"
               "std::unordered_map<int, int> table;\n",
               {{Rule::kUnorderedIter, 1},
                {Rule::kUnorderedIter, 2},
                {Rule::kMutableGlobal, 2}},
               "D2 corpus");
}

TEST(ArchlintGolden, V1RawTimeFindingsReproduce) {
  expect_exact("src/net/bad.hpp",
               "#pragma once\n"
               "/// \\file bad.hpp\n"
               "namespace hpc::net {\n"
               "void set_timeout(double timeout_ns);\n"
               "void arm(std::uint64_t deadline_ns, int id);\n"
               "}\n",
               {{Rule::kRawTime, 4}, {Rule::kRawTime, 5}}, "D3 corpus");
}

TEST(ArchlintGolden, V1NodiscardFindingsReproduce) {
  expect_exact("src/sim/c.hpp",
               "#pragma once\n"
               "/// \\file c.hpp\n"
               "namespace hpc::sim {\n"
               "class C {\n"
               " public:\n"
               "  int count() const noexcept { return n_; }\n"
               " private:\n"
               "  int n_ = 0;\n"
               "};\n"
               "}\n",
               {{Rule::kNodiscard, 6}}, "D4 accessor corpus");
  expect_exact("src/core/f.hpp",
               "#pragma once\n"
               "/// \\file f.hpp\n"
               "namespace hpc::core {\n"
               "struct Config { int x = 0; };\n"
               "Config make_config();\n"
               "}\n",
               {{Rule::kNodiscard, 5}}, "D4 factory corpus");
}

TEST(ArchlintGolden, V1HeaderHygieneFindingsReproduceAtLineOne) {
  // v1 emitted these at line 0; the findings themselves are identical.
  expect_exact("src/hw/x.hpp", "int bare();\n",
               {{Rule::kHeaderHygiene, 1},
                {Rule::kHeaderHygiene, 1},
                {Rule::kHeaderHygiene, 1}},
               "D5 corpus");
}

TEST(ArchlintGolden, V1CleanSourcesStayClean) {
  expect_exact("src/hw/good.cpp",
               "#include \"sim/rng.hpp\"\n"
               "double f(hpc::sim::Rng& rng) { return rng.uniform(); }\n",
               {}, "clean corpus");
  expect_exact("src/mem/x.cpp",
               "#include <unordered_map>  // archlint: allow(unordered-iter)\n",
               {}, "allow-annotation corpus");
}

// ------------------------------------------------ v1-miss group -------------

TEST(ArchlintGolden, V2CatchesMultiLineDeclarationsV1Missed) {
  // v1 matched `double X_ns` within one physical line: splitting the
  // declaration was an (accidental) suppression.  Tokens don't care.
  expect_exact("src/net/split.hpp",
               "#pragma once\n"
               "/// \\file split.hpp\n"
               "namespace hpc::net {\n"
               "void set_timeout(double\n"
               "    timeout_ns);\n"
               "}\n",
               {{Rule::kRawTime, 5}}, "v1-missed multi-line D3");
  // Same story for `) const` split across lines.
  expect_exact("src/sim/split.hpp",
               "#pragma once\n"
               "/// \\file split.hpp\n"
               "namespace hpc::sim {\n"
               "class C {\n"
               " public:\n"
               "  int count()\n"
               "      const;\n"
               "};\n"
               "}\n",
               {{Rule::kNodiscard, 7}}, "v1-missed multi-line D4");
}

TEST(ArchlintGolden, V2IgnoresRawStringAndDeadCodeContent) {
  // A multi-line raw string: v1's per-line blanking lost track of the
  // literal after line one and saw `srand(1);` as code.
  expect_exact("src/hw/doc.cpp",
               "const char* doc = R\"(usage:\n"
               "srand(1);\n"
               "std::unordered_map<int, int> m;\n"
               ")\";\n",
               {}, "v1-misread raw string");
  expect_exact("src/hw/dead.cpp",
               "#if 0\n"
               "srand(1);\n"
               "std::random_device rd;\n"
               "#endif\n"
               "int live() { return 1; }\n",
               {}, "v1-misread #if 0 region");
}

}  // namespace
}  // namespace hpc::lint
