#include "campaign/matrix.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "exec/policy.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

/// Campaign determinism goldens: the same matrix must produce byte-identical
/// artifacts under SerialPolicy and ThreadPoolPolicy{2}/{4}, replica RNG
/// stream names must survive matrix reordering, and the runner's aggregation
/// must be pure replica-index-order folding.

namespace {

using namespace hpc;
using campaign::CampaignOptions;
using campaign::CampaignResult;
using campaign::ReplicaResult;
using campaign::ReplicaSpec;
using campaign::ScenarioMatrix;

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The golden 2x2x2 matrix (one seed): 8 coupled-co-sim replicas.
ScenarioMatrix golden_matrix() {
  ScenarioMatrix m;
  m.topologies = {"wan-10g", "wan-100g"};
  m.device_mixes = {"baseline", "cloud-heavy"};
  m.policies = {"gravity", "cheapest"};
  m.seeds = {7};
  return m;
}

campaign::ScenarioFn fast_federation() {
  campaign::FederationOptions opts;
  opts.shards = 2;  // smallest workflow that still stages over the WAN
  return campaign::make_federation_scenario(opts);
}

TEST(ScenarioMatrix, ExpansionOrderIsPinnedRowMajor) {
  ScenarioMatrix m;
  m.topologies = {"t0", "t1"};
  m.device_mixes = {"m0"};
  m.policies = {"p0", "p1"};
  m.seeds = {1, 2};
  ASSERT_EQ(m.size(), 8u);

  const std::vector<ReplicaSpec> replicas = campaign::expand(m);
  ASSERT_EQ(replicas.size(), 8u);
  // topology outermost, seed innermost
  EXPECT_EQ(replicas[0].stream(), "campaign/t0/m0/p0/seed=1");
  EXPECT_EQ(replicas[1].stream(), "campaign/t0/m0/p0/seed=2");
  EXPECT_EQ(replicas[2].stream(), "campaign/t0/m0/p1/seed=1");
  EXPECT_EQ(replicas[4].stream(), "campaign/t1/m0/p0/seed=1");
  EXPECT_EQ(replicas[7].stream(), "campaign/t1/m0/p1/seed=2");
  for (std::size_t i = 0; i < replicas.size(); ++i) EXPECT_EQ(replicas[i].index, i);
  EXPECT_EQ(replicas[3].cell(), "t0/m0/p1");
}

TEST(ScenarioMatrix, StreamNamesAreStableAcrossReordering) {
  // Reordering axis values (and adding new ones) permutes replica indices
  // but must not change any existing replica's stream label — and therefore
  // not its derived engine seed.
  ScenarioMatrix a;
  a.topologies = {"t0", "t1"};
  a.device_mixes = {"m0", "m1"};
  a.policies = {"p0"};
  a.seeds = {1, 2};

  ScenarioMatrix b;  // reordered + one extra topology
  b.topologies = {"t1", "t2", "t0"};
  b.device_mixes = {"m1", "m0"};
  b.policies = {"p0"};
  b.seeds = {2, 1};

  std::map<std::string, std::uint64_t> seeds_a;
  for (const ReplicaSpec& r : campaign::expand(a))
    seeds_a["c/" + r.topology + "/" + r.device_mix + "/" + r.policy + "/" +
            std::to_string(r.seed)] = sim::Rng::child_seed(99, r.stream());
  int matched = 0;
  for (const ReplicaSpec& r : campaign::expand(b)) {
    const auto it = seeds_a.find("c/" + r.topology + "/" + r.device_mix + "/" +
                                 r.policy + "/" + std::to_string(r.seed));
    if (it == seeds_a.end()) continue;  // the new t2 cells
    ++matched;
    EXPECT_EQ(sim::Rng::child_seed(99, r.stream()), it->second) << r.stream();
  }
  EXPECT_EQ(matched, 8);  // every original cell found under the new order
}

TEST(RngChildSeed, StaticOverloadMatchesInstanceStream) {
  // The runner derives engine seeds with the static overload; pin it to the
  // instance method so the campaign seed tree is the engine's seed tree.
  sim::Rng root(2026);
  EXPECT_EQ(sim::Rng::child_seed(2026, "campaign/t/m/p/seed=1"),
            root.child_seed("campaign/t/m/p/seed=1"));
  EXPECT_NE(sim::Rng::child_seed(2026, "campaign/t/m/p/seed=1"),
            sim::Rng::child_seed(2026, "campaign/t/m/p/seed=2"));
  EXPECT_NE(sim::Rng::child_seed(2026, "x"), sim::Rng::child_seed(2027, "x"));
}

TEST(Campaign, GoldenArtifactsAreExecutionPolicyInvariant) {
  const ScenarioMatrix matrix = golden_matrix();
  const campaign::ScenarioFn scenario = fast_federation();
  CampaignOptions options;
  options.seed = 2026;

  exec::SerialPolicy serial;
  const CampaignResult ref = run_campaign(matrix, scenario, serial, options);
  ASSERT_EQ(ref.results.size(), 8u);
  for (const ReplicaResult& r : ref.results) {
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_NE(r.digest, 0u);
    EXPECT_GT(r.events, 0u);
    EXPECT_GT(r.latency_ns, 0.0);
  }
  EXPECT_NE(ref.campaign_digest, 0u);

  const std::string ref_digests = ref.digests_text();
  const std::string ref_metrics = ref.merged.snapshot_json();
  const std::string ref_cells = ref.cells_bench_json();
  const std::string ref_report = campaign::make_report(ref);

  for (const int workers : {2, 4}) {
    exec::ThreadPoolPolicy pool(workers);
    const CampaignResult out = run_campaign(matrix, scenario, pool, options);
    EXPECT_EQ(out.campaign_digest, ref.campaign_digest) << workers << " workers";
    EXPECT_EQ(out.digests_text(), ref_digests) << workers << " workers";
    EXPECT_EQ(out.merged.snapshot_json(), ref_metrics) << workers << " workers";
    EXPECT_EQ(out.cells_bench_json(), ref_cells) << workers << " workers";
    EXPECT_EQ(campaign::make_report(out), ref_report) << workers << " workers";
    for (std::size_t i = 0; i < out.results.size(); ++i)
      EXPECT_EQ(out.results[i].digest, ref.results[i].digest) << "replica " << i;
  }
}

TEST(Campaign, RerunIsByteIdentical) {
  const ScenarioMatrix matrix = golden_matrix();
  const campaign::ScenarioFn scenario = fast_federation();
  CampaignOptions options;
  options.seed = 1;
  exec::SerialPolicy policy;
  const CampaignResult a = run_campaign(matrix, scenario, policy, options);
  const CampaignResult b = run_campaign(matrix, scenario, policy, options);
  EXPECT_EQ(a.campaign_digest, b.campaign_digest);
  EXPECT_EQ(a.digests_text(), b.digests_text());
  EXPECT_EQ(a.merged.snapshot_json(), b.merged.snapshot_json());
}

TEST(Campaign, CampaignSeedChangesEveryReplica) {
  ScenarioMatrix m;
  m.topologies = {"wan-10g"};
  m.device_mixes = {"baseline"};
  m.policies = {"gravity"};
  m.seeds = {1, 2};
  const campaign::ScenarioFn scenario = fast_federation();
  exec::SerialPolicy policy;
  CampaignOptions opts_a;
  opts_a.seed = 1;
  CampaignOptions opts_b;
  opts_b.seed = 2;
  const CampaignResult a = run_campaign(m, scenario, policy, opts_a);
  const CampaignResult b = run_campaign(m, scenario, policy, opts_b);
  EXPECT_NE(a.campaign_digest, b.campaign_digest);
  for (std::size_t i = 0; i < a.results.size(); ++i)
    EXPECT_NE(a.results[i].digest, b.results[i].digest) << "replica " << i;
}

TEST(Campaign, UnknownAxisValueBecomesDeterministicReplicaError) {
  ScenarioMatrix m;
  m.topologies = {"wan-10g", "wan-400g"};  // second one unknown
  m.device_mixes = {"baseline"};
  m.policies = {"gravity"};
  m.seeds = {1};
  const campaign::ScenarioFn scenario = fast_federation();
  exec::SerialPolicy policy;
  const CampaignResult out = run_campaign(m, scenario, policy, CampaignOptions{});
  ASSERT_EQ(out.results.size(), 2u);
  EXPECT_TRUE(out.results[0].error.empty());
  EXPECT_EQ(out.results[1].error, "campaign: unknown topology 'wan-400g'");
  // The failed replica appears in the digest listing and the failure counter.
  EXPECT_NE(out.digests_text().find("error campaign: unknown topology"),
            std::string::npos);
  const std::string metrics = out.merged.snapshot_json();
  EXPECT_NE(metrics.find("campaign.replicas_failed"), std::string::npos);
}

TEST(Campaign, ArtifactDirectoryContents) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "campaign_artifacts_test";
  std::filesystem::remove_all(dir);

  ScenarioMatrix m;
  m.topologies = {"wan-10g"};
  m.device_mixes = {"baseline"};
  m.policies = {"gravity", "cheapest"};
  m.seeds = {3};
  const campaign::ScenarioFn scenario = fast_federation();
  exec::ThreadPoolPolicy policy(2);
  CampaignOptions options;
  options.seed = 5;
  options.artifact_dir = dir.string();
  const CampaignResult out = run_campaign(m, scenario, policy, options);

  EXPECT_EQ(slurp(dir / "digests.txt"), out.digests_text());
  EXPECT_EQ(slurp(dir / "metrics.json"), out.merged.snapshot_json());
  EXPECT_EQ(slurp(dir / "cells.json"), out.cells_bench_json());
  EXPECT_EQ(slurp(dir / "report.txt"), campaign::make_report(out));
  // Per-replica snapshots are valid archipelago-metrics-v1 documents, as is
  // the merged aggregate.
  EXPECT_EQ(obs::validate_snapshot_file((dir / "metrics.json").string()), "");
  EXPECT_EQ(obs::validate_snapshot_file((dir / "replica-0000.json").string()), "");
  EXPECT_EQ(obs::validate_snapshot_file((dir / "replica-0001.json").string()), "");
  std::filesystem::remove_all(dir);
}

TEST(Campaign, CellsAggregateShapeAndReport) {
  const ScenarioMatrix matrix = golden_matrix();
  const campaign::ScenarioFn scenario = fast_federation();
  exec::SerialPolicy policy;
  CampaignOptions options;
  options.seed = 2026;
  const CampaignResult out = run_campaign(matrix, scenario, policy, options);

  const std::string cells = out.cells_bench_json();
  EXPECT_NE(cells.find("\"schema\": \"archipelago-bench-v1\""), std::string::npos);
  EXPECT_NE(cells.find("\"bench\": \"campaign\""), std::string::npos);
  EXPECT_NE(cells.find("wan-10g/baseline/gravity"), std::string::npos);
  EXPECT_NE(cells.find("wan-100g/cloud-heavy/cheapest"), std::string::npos);

  const std::string report = campaign::make_report(out);
  EXPECT_NE(report.find("campaign digest:"), std::string::npos);
  EXPECT_NE(report.find("host worker hint:"), std::string::npos);
  EXPECT_NE(report.find("best policy"), std::string::npos);
  EXPECT_NE(report.find("wan-10g/baseline"), std::string::npos);
}

TEST(Campaign, MergedMetricsEqualIndexOrderFold) {
  // The merged registry is exactly: fold replica registries 0..n-1 into a
  // fresh registry, then add the campaign.* instruments.  Re-derive it by
  // hand and compare snapshots byte for byte.
  const ScenarioMatrix matrix = golden_matrix();
  const campaign::ScenarioFn scenario = fast_federation();
  exec::ThreadPoolPolicy policy(4);
  CampaignOptions options;
  options.seed = 11;
  const CampaignResult out = run_campaign(matrix, scenario, policy, options);

  obs::MetricRegistry hand;
  for (const ReplicaResult& r : out.results) hand.merge_from(r.metrics);
  auto& ok = hand.counter("campaign.replicas_ok");
  auto& failed = hand.counter("campaign.replicas_failed");
  auto& latency = hand.histogram("campaign.replica_latency_ns");
  auto& cost = hand.histogram("campaign.replica_cost_usd");
  for (const ReplicaResult& r : out.results) {
    if (!r.error.empty()) {
      failed.inc();
      continue;
    }
    ok.inc();
    if (r.latency_ns > 0.0) latency.record(r.latency_ns);
    if (r.cost_usd > 0.0) cost.record(r.cost_usd);
  }
  EXPECT_EQ(hand.snapshot_json(), out.merged.snapshot_json());
}

}  // namespace
