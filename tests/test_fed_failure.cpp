/// Failure injection: a federated system must survive the loss of a site —
/// the resilience half of the paper's "global accessibility for resilience
/// and capacity" (Section III.C) and a core promise of federation.

#include <gtest/gtest.h>

#include "fed/federation.hpp"
#include "sched/workload.hpp"

namespace hpc::fed {
namespace {

std::vector<Site> resilient_federation() {
  Site a = make_onprem_site(0, "campus", 8, 4);
  Site b = make_supercomputer_site(1, "center", 48);
  b.admin_domain = 0;
  return {a, b};
}

std::vector<sched::Job> steady_jobs(int count) {
  sim::Rng rng(31);
  sched::WorkloadConfig cfg;
  cfg.jobs = count;
  cfg.mean_interarrival_s = 10.0;
  cfg.max_nodes = 4;
  return sched::generate_workload(cfg, rng);
}

TEST(Failure, GridReroutesAndCompletesEverything) {
  FederationConfig cfg;
  cfg.stage = FederationStage::kGrid;
  cfg.policy = MetaPolicy::kComputeOnly;
  cfg.fail_site = 1;                         // the big site dies...
  cfg.fail_at = sim::from_seconds(300.0);    // ...mid-run
  FederationSim fsim(resilient_federation(), cfg);
  fsim.submit_all(steady_jobs(80), 0);
  const FederationResult r = fsim.run();
  EXPECT_EQ(r.jobs_completed, 80);
  EXPECT_GT(r.jobs_rerouted, 0);
  // Nothing finishes at the dead site after the failure instant.
  for (const FedPlacement& p : r.placements) {
    if (p.site == 1) {
      EXPECT_LE(p.finish, cfg.fail_at);
    }
  }
}

TEST(Failure, FailureCostsCompletionTime) {
  // Transfer-free, identical jobs so the only effect in play is losing the
  // big site: rerouting onto the single-node campus must hurt.
  auto mean_completion = [](bool with_failure) {
    Site campus = make_onprem_site(0, "campus", 1, 0);
    campus.cluster = sched::make_homogeneous_cpu_cluster(1);
    Site center = make_supercomputer_site(1, "center", 48);
    center.admin_domain = 0;
    FederationConfig cfg;
    cfg.stage = FederationStage::kGrid;
    cfg.policy = MetaPolicy::kComputeOnly;
    if (with_failure) {
      cfg.fail_site = 1;
      cfg.fail_at = sim::from_seconds(50.0);
    }
    FederationSim fsim({campus, center}, cfg);
    for (int i = 0; i < 20; ++i) {
      sched::Job j;
      j.id = i;
      j.arrival = sim::from_seconds(10.0 * i);
      j.nodes = 1;
      j.total_gflop = 2e5;
      j.mix = sched::pure_mix(hw::OpClass::kGemm);
      j.precision = hw::Precision::BF16;
      fsim.submit(j, 0);
    }
    return fsim.run().mean_completion_s;
  };
  EXPECT_GT(mean_completion(true), 2.0 * mean_completion(false));
}

TEST(Failure, LocalOnlyLosesJobsWhenHomeDies) {
  FederationConfig cfg;
  cfg.stage = FederationStage::kLocalOnly;
  cfg.policy = MetaPolicy::kHomeOnly;
  cfg.fail_site = 0;
  cfg.fail_at = sim::from_seconds(100.0);
  FederationSim fsim(resilient_federation(), cfg);
  fsim.submit_all(steady_jobs(60), 0);
  const FederationResult r = fsim.run();
  // The federation exists but local-only policy cannot reach it: jobs die.
  EXPECT_GT(r.jobs_dropped, 0);
  EXPECT_LT(r.jobs_completed, 60);
}

TEST(Failure, LedgerVoidsKilledUsage) {
  FederationConfig cfg;
  cfg.stage = FederationStage::kGrid;
  cfg.policy = MetaPolicy::kComputeOnly;
  cfg.fail_site = 1;
  cfg.fail_at = sim::from_seconds(300.0);
  FederationSim fsim(resilient_federation(), cfg);
  fsim.submit_all(steady_jobs(80), cfg.fail_site >= 0 ? 0 : 0);
  const FederationResult r = fsim.run();
  // Ledger records equal completed jobs: voided records were replaced by the
  // rerouted run's record.
  EXPECT_EQ(static_cast<int>(r.ledger.records().size()), r.jobs_completed);
  // Ledger cost matches the placements' cost.
  double ledger_cost = 0.0;
  for (const auto& rec : r.ledger.records()) ledger_cost += rec.cost_usd;
  EXPECT_NEAR(ledger_cost, r.total_cost_usd, 1e-6);
}

TEST(Failure, FailureBeforeStartMeansSiteNeverUsed) {
  FederationConfig cfg;
  cfg.stage = FederationStage::kGrid;
  cfg.policy = MetaPolicy::kComputeOnly;
  cfg.fail_site = 1;
  cfg.fail_at = 1;  // dead essentially from the start
  FederationSim fsim(resilient_federation(), cfg);
  fsim.submit_all(steady_jobs(40), 0);
  const FederationResult r = fsim.run();
  for (const FedPlacement& p : r.placements) EXPECT_NE(p.site, 1);
}

TEST(Failure, NoFailureFieldsAreNeutral) {
  FederationConfig cfg;
  cfg.stage = FederationStage::kGrid;
  FederationSim fsim(resilient_federation(), cfg);
  fsim.submit_all(steady_jobs(30), 0);
  const FederationResult r = fsim.run();
  EXPECT_EQ(r.jobs_rerouted, 0);
  EXPECT_EQ(r.jobs_completed, 30);
}

}  // namespace
}  // namespace hpc::fed
