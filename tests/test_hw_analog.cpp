#include "hw/analog.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ai/linalg.hpp"

namespace hpc::hw {
namespace {

TEST(AnalogEngine, TileCount) {
  AnalogSpec s = dpe_spec();
  s.array_size = 256;
  const AnalogEngine eng(s);
  EXPECT_EQ(eng.tiles_for(256, 256), 1);
  EXPECT_EQ(eng.tiles_for(257, 256), 2);
  EXPECT_EQ(eng.tiles_for(512, 512), 4);
  EXPECT_EQ(eng.tiles_for(1, 1), 1);
}

TEST(AnalogEngine, TimeIsConstantWithinOneWave) {
  // O(N) claim, part 1: any mat-vec that fits one wave of tiles costs the
  // same single tile latency, regardless of how many MACs it performs.
  const AnalogEngine eng(dpe_spec());  // 64 parallel tiles of 256x256
  EXPECT_DOUBLE_EQ(eng.matvec_time_ns(16, 16), eng.matvec_time_ns(256, 256));
  EXPECT_DOUBLE_EQ(eng.matvec_time_ns(2048, 256), eng.matvec_time_ns(256, 256));
}

TEST(AnalogEngine, TimeScalesLinearlyAtLargeN) {
  // O(N) claim, part 2: at sizes beyond the tile pool, doubling BOTH matrix
  // dimensions (4x the MACs) only ~4x the tile count => time grows ~4x while
  // a digital engine's work grows 4x too, BUT the per-tile time hides N: at
  // fixed column count, doubling rows doubles time (linear, not quadratic).
  const AnalogEngine eng(dpe_spec());
  const double t1 = eng.matvec_time_ns(256 * 64, 256);      // exactly fills pool
  const double t2 = eng.matvec_time_ns(2 * 256 * 64, 256);  // double the rows
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(AnalogEngine, EnergyLinearInTiles) {
  // At pool-filling scale both the dynamic (tile count) and static (wave
  // time) terms double when the row count doubles: energy is linear.
  const AnalogEngine eng(dpe_spec());
  const std::int64_t full = 256 * 64;  // exactly one wave of the tile pool
  const double e1 = eng.matvec_energy_j(full, 256);
  const double e2 = eng.matvec_energy_j(2 * full, 256);
  EXPECT_NEAR(e2 / e1, 2.0, 1e-9);
  // Dynamic energy alone also scales with the tile count at sub-pool sizes.
  AnalogSpec no_static = dpe_spec();
  no_static.static_power_w = 0.0;
  const AnalogEngine dyn(no_static);
  EXPECT_NEAR(dyn.matvec_energy_j(512, 512) / dyn.matvec_energy_j(256, 256), 4.0, 1e-9);
}

TEST(AnalogEngine, ProgrammingCostsMoreThanReading) {
  const AnalogEngine eng(dpe_spec());
  EXPECT_GT(eng.program_time_ns(256, 256), eng.matvec_time_ns(256, 256));
}

TEST(AnalogEngine, PhotonicFasterPerTile) {
  const AnalogEngine dpe(dpe_spec());
  const AnalogEngine opt(photonic_spec());
  EXPECT_LT(opt.spec().tile_latency_ns, dpe.spec().tile_latency_ns);
}

TEST(AnalogEngine, NoiselessPerfectMatvec) {
  AnalogSpec s = dpe_spec();
  s.read_noise_sigma = 0.0;
  s.weight_bits = 16;  // effectively exact quantization
  const AnalogEngine eng(s);
  sim::Rng rng(1);

  const std::int64_t n = 32;
  std::vector<float> w(static_cast<std::size_t>(n * n));
  std::vector<float> x(static_cast<std::size_t>(n));
  sim::Rng data(2);
  for (float& v : w) v = static_cast<float>(data.normal(0.0, 1.0));
  for (float& v : x) v = static_cast<float>(data.normal(0.0, 1.0));

  const std::vector<float> y = eng.matvec(w, n, n, x, rng);
  std::vector<float> expect(static_cast<std::size_t>(n));
  ai::matvec(w, n, n, x, expect);
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], expect[static_cast<std::size_t>(i)], 2e-3);
}

TEST(AnalogEngine, NoiseGrowsWithSigma) {
  const std::int64_t n = 64;
  std::vector<float> w(static_cast<std::size_t>(n * n));
  std::vector<float> x(static_cast<std::size_t>(n));
  sim::Rng data(3);
  for (float& v : w) v = static_cast<float>(data.normal(0.0, 1.0));
  for (float& v : x) v = static_cast<float>(data.normal(0.0, 1.0));
  std::vector<float> expect(static_cast<std::size_t>(n));
  ai::matvec(w, n, n, x, expect);

  auto rms_at_sigma = [&](double sigma) {
    AnalogSpec s = dpe_spec();
    s.read_noise_sigma = sigma;
    s.weight_bits = 12;
    const AnalogEngine eng(s);
    sim::Rng rng(7);
    double acc = 0.0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      const std::vector<float> y = eng.matvec(w, n, n, x, rng);
      acc += ai::rms_error(y, expect);
    }
    return acc / trials;
  };

  const double low = rms_at_sigma(0.01);
  const double high = rms_at_sigma(0.10);
  EXPECT_GT(high, low * 3.0);
}

TEST(AnalogEngine, FewerWeightBitsMoreError) {
  const std::int64_t n = 64;
  std::vector<float> w(static_cast<std::size_t>(n * n));
  std::vector<float> x(static_cast<std::size_t>(n));
  sim::Rng data(4);
  for (float& v : w) v = static_cast<float>(data.normal(0.0, 1.0));
  for (float& v : x) v = static_cast<float>(data.normal(0.0, 1.0));
  std::vector<float> expect(static_cast<std::size_t>(n));
  ai::matvec(w, n, n, x, expect);

  auto rms_at_bits = [&](int bits) {
    AnalogSpec s = dpe_spec();
    s.read_noise_sigma = 0.0;
    s.weight_bits = bits;
    const AnalogEngine eng(s);
    sim::Rng rng(8);
    const std::vector<float> y = eng.matvec(w, n, n, x, rng);
    return ai::rms_error(y, expect);
  };

  EXPECT_GT(rms_at_bits(2), rms_at_bits(4));
  EXPECT_GT(rms_at_bits(4), rms_at_bits(8));
}

TEST(AnalogSpecs, PlausibleParameters) {
  for (const AnalogSpec& s : {dpe_spec(), photonic_spec()}) {
    EXPECT_GT(s.array_size, 0);
    EXPECT_GT(s.parallel_tiles, 0);
    EXPECT_GT(s.tile_latency_ns, 0.0);
    EXPECT_GE(s.read_noise_sigma, 0.0);
    EXPECT_GE(s.weight_bits, 1);
  }
}

}  // namespace
}  // namespace hpc::hw
