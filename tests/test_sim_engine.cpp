#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"

/// \file test_sim_engine.cpp
/// The co-simulation layer: Engine/Component lifecycle, the shared clock's
/// no-past contract, and the named child RNG stream tree (pinned constants —
/// child_seed is part of the determinism contract, so its values must never
/// drift between releases).

namespace hpc::sim {
namespace {

class Probe final : public Component {
 public:
  explicit Probe(std::string_view name = "test.probe") : name_(name) {}

  [[nodiscard]] std::string_view component_name() const noexcept override { return name_; }
  void on_attach(Engine& engine) override {
    ++attaches;
    attach_time = engine.now();
  }
  void on_detach(Engine&) override { ++detaches; }

  std::string_view name_;
  int attaches = 0;
  int detaches = 0;
  TimeNs attach_time = 0;
};

TEST(SimEngine, AttachSetsBackPointerAndFiresHooks) {
  Engine engine(9);
  Probe probe;
  EXPECT_FALSE(probe.attached());
  EXPECT_EQ(probe.engine(), nullptr);

  engine.attach(probe);
  EXPECT_TRUE(probe.attached());
  EXPECT_EQ(probe.engine(), &engine);
  EXPECT_EQ(probe.attaches, 1);
  ASSERT_EQ(engine.components().size(), 1u);
  EXPECT_EQ(engine.components()[0], &probe);

  engine.detach(probe);
  EXPECT_FALSE(probe.attached());
  EXPECT_EQ(probe.detaches, 1);
  EXPECT_TRUE(engine.components().empty());
}

TEST(SimEngine, EngineDestructionDetachesComponents) {
  Probe probe;
  {
    Engine engine(1);
    engine.attach(probe);
    EXPECT_TRUE(probe.attached());
  }
  EXPECT_FALSE(probe.attached());
  EXPECT_EQ(probe.detaches, 1);
}

TEST(SimEngine, DetachFromForeignEngineIsNoOp) {
  Engine a(1);
  Engine b(2);
  Probe probe;
  a.attach(probe);
  b.detach(probe);  // not attached to b: must not touch the component
  EXPECT_EQ(probe.engine(), &a);
  EXPECT_EQ(probe.detaches, 0);
  a.detach(probe);
}

TEST(SimEngine, SharedClockOrdersEventsAcrossComponents) {
  Engine engine(3);
  Probe first("test.first");
  Probe second("test.second");
  engine.attach(first);
  engine.attach(second);

  std::vector<int> order;
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(3); });  // FIFO at equal time
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 20);
  EXPECT_EQ(engine.events_executed(), 3u);
}

TEST(SimEngine, RunUntilLeavesLaterEventsQueued) {
  Engine engine(3);
  int fired = 0;
  engine.schedule_at(10, [&] { ++fired; });
  engine.schedule_at(100, [&] { ++fired; });
  engine.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), 50);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimEngine, DigestIsDeterministicAndScheduleSensitive) {
  auto digest_of = [](TimeNs second_event) {
    Engine engine(5);
    engine.schedule_at(1, [] {});
    engine.schedule_at(second_event, [] {});
    engine.run();
    return engine.digest();
  };
  EXPECT_EQ(digest_of(7), digest_of(7));
  EXPECT_NE(digest_of(7), digest_of(8));
}

#ifdef NDEBUG
TEST(SimEngine, ReleaseClampsPastScheduling) {
  // The debug assert is off: the kernel's monotonicity guarantee kicks in and
  // a past event runs at the current time instead of rewinding the clock.
  Engine engine(5);
  TimeNs seen = 0;
  engine.schedule_at(100, [&] {
    engine.schedule_at(5, [&] { seen = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(seen, 100);
}
#else
TEST(SimEngineDeathTest, DebugAssertsOnPastScheduling) {
  EXPECT_DEATH(
      {
        Engine engine(5);
        engine.schedule_at(100, [&] { engine.schedule_at(5, [] {}); });
        engine.run();
      },
      "scheduled into the past");
}
#endif

// --- Named child RNG streams -------------------------------------------------

TEST(SimEngine, ChildSeedsArePinned) {
  // child_seed(label) is a pure function of (seed, label).  These constants
  // are part of the reproducibility contract: changing the derivation would
  // silently re-seed every substrate in every coupled scenario.
  EXPECT_EQ(Rng(42).child_seed("net.wan"), 7494286683008777216ULL);
  EXPECT_EQ(Rng(42).child_seed("market.exchange"), 17259133030214003878ULL);
  EXPECT_EQ(Rng(1).child_seed("a"), 11244168118947418261ULL);
  EXPECT_EQ(Rng(1).child_seed("b"), 17202380882055019395ULL);
  EXPECT_EQ(Rng(2).child_seed("a"), 6957269413002370513ULL);
  EXPECT_EQ(Rng(7).child_seed("edge.stream"), 3118167939938303813ULL);
}

TEST(SimEngine, ChildStreamsAreIndependentOfSiblingDraws) {
  // Drawing from one child must not perturb another: each child is its own
  // generator, unlike the ad-hoc `Rng(seed + k)` convention it replaces.
  Rng parent(11);
  Rng a1 = parent.child("a");
  Rng b1 = parent.child("b");
  (void)a1.uniform();
  (void)a1.uniform();

  Rng b2 = Rng(11).child("b");
  for (int i = 0; i < 8; ++i) EXPECT_EQ(b1.uniform_int(0, 1 << 30), b2.uniform_int(0, 1 << 30));
}

TEST(SimEngine, EngineHandsOutChildStreams) {
  Engine engine(42);
  EXPECT_EQ(engine.seed(), 42u);
  EXPECT_EQ(engine.stream_seed("net.wan"), Rng(42).child_seed("net.wan"));
  Rng direct = Rng(42).child("net.wan");
  Rng via_engine = engine.rng("net.wan");
  EXPECT_EQ(via_engine.seed(), direct.seed());
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(via_engine.uniform_int(0, 1 << 30), direct.uniform_int(0, 1 << 30));
}

TEST(SimEngine, ChildSeedsChainThroughGrandchildren) {
  // child() returns a full Rng rooted at the derived seed, so stream trees
  // nest: seed -> "fed.site" -> "uplink" is stable and collision-free with
  // the flat labels around it.
  Rng root(99);
  const Rng site = root.child("fed.site");
  EXPECT_EQ(site.child_seed("uplink"), Rng(site.seed()).child_seed("uplink"));
  EXPECT_NE(site.child_seed("uplink"), root.child_seed("uplink"));
}

}  // namespace
}  // namespace hpc::sim
