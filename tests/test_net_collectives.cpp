#include "net/collectives.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace hpc::net {
namespace {

TEST(Collectives, AllreduceZeroForOneRank) {
  const Network net = make_single_switch(4);
  EXPECT_DOUBLE_EQ(ring_allreduce_ns(net, {net.endpoints()[0]}, 1e9), 0.0);
}

TEST(Collectives, AllreduceGrowsWithBytes) {
  const Network net = make_single_switch(8);
  const auto& r = net.endpoints();
  const double small = ring_allreduce_ns(net, r, 1e6);
  const double large = ring_allreduce_ns(net, r, 1e9);
  EXPECT_GT(large, small * 10.0);
}

TEST(Collectives, AllreduceBandwidthTermDominatesAtScale) {
  // Ring all-reduce moves 2(n-1)/n * bytes per rank: for large messages the
  // time approaches 2 * bytes / bw regardless of n.
  const Network net = make_single_switch(16);
  const double bytes = 25e9;
  const double t = ring_allreduce_ns(net, net.endpoints(), bytes);
  const double lower = 2.0 * (16.0 - 1.0) / 16.0 * bytes / 25.0;  // pure bw
  EXPECT_GT(t, lower);
  EXPECT_LT(t, lower * 1.2);
}

TEST(Collectives, BarrierLogarithmicRounds) {
  const Network star4 = make_single_switch(4);
  const Network star16 = make_single_switch(16);
  const double b4 = barrier_ns(star4, star4.endpoints());
  const double b16 = barrier_ns(star16, star16.endpoints());
  // 2 rounds vs 4 rounds of the same per-pair latency.
  EXPECT_NEAR(b16 / b4, 2.0, 0.1);
}

TEST(Collectives, BarrierZeroForOneRank) {
  const Network net = make_single_switch(4);
  EXPECT_DOUBLE_EQ(barrier_ns(net, {net.endpoints()[0]}), 0.0);
}

TEST(Collectives, AlltoallMakespanMatchesBisectionMath) {
  // On a single switch, each endpoint sends and receives (n-1)*bytes; the
  // binding resource is each host's 25 GB/s link.
  const Network net = make_single_switch(4);
  const double bytes = 1e9;
  const double t = alltoall_ns(net, net.endpoints(), bytes);
  const double expect = 3.0 * bytes / 25.0;
  EXPECT_NEAR(t, expect, expect * 0.05);
}

TEST(Collectives, PerRankBandwidthBounded) {
  const Network net = make_single_switch(8);
  const double bw = alltoall_per_rank_bandwidth_gbs(net, net.endpoints(), 1e8);
  EXPECT_GT(bw, 0.0);
  EXPECT_LE(bw, 25.0 * 1.01);
}

TEST(Collectives, ReduceScatterIsHalfAnAllreduce) {
  const Network net = make_single_switch(8);
  const auto& r = net.endpoints();
  const double bytes = 1e9;
  EXPECT_NEAR(ring_reduce_scatter_ns(net, r, bytes),
              ring_allreduce_ns(net, r, bytes) / 2.0, 1.0);
}

TEST(Collectives, ReduceScatterZeroForOneRank) {
  const Network net = make_single_switch(4);
  EXPECT_DOUBLE_EQ(ring_reduce_scatter_ns(net, {net.endpoints()[0]}, 1e9), 0.0);
}

TEST(Collectives, BroadcastLogRounds) {
  const Network star4 = make_single_switch(4);
  const Network star16 = make_single_switch(16);
  const double bytes = 1e6;
  const double b4 = tree_broadcast_ns(star4, star4.endpoints(), bytes);
  const double b16 = tree_broadcast_ns(star16, star16.endpoints(), bytes);
  EXPECT_NEAR(b16 / b4, 2.0, 0.05);  // 4 rounds vs 2 of identical pair cost
}

TEST(Collectives, BroadcastCheaperThanAllreduceForSameBytes) {
  // Broadcast moves each byte log(n) times on the critical path; ring
  // all-reduce moves ~2x the buffer through every rank.
  const Network net = make_single_switch(16);
  const double bytes = 1e9;
  EXPECT_LT(tree_broadcast_ns(net, net.endpoints(), bytes) / 4.0,
            ring_allreduce_ns(net, net.endpoints(), bytes));
}

TEST(Collectives, BroadcastZeroForOneRank) {
  const Network net = make_single_switch(4);
  EXPECT_DOUBLE_EQ(tree_broadcast_ns(net, {net.endpoints()[0]}, 1e9), 0.0);
}

TEST(Collectives, LowDiameterBeatsTorusOnGlobalTraffic) {
  // The paper's Section II.B: low-diameter networks provide high global
  // bandwidth.  Same endpoint count, same per-link speed.
  const Network fly = make_dragonfly(4, 2, 2);     // 72 endpoints
  const Network torus = make_torus_2d(9, 8, 1);    // 72 endpoints
  std::vector<int> fly_ranks(fly.endpoints().begin(), fly.endpoints().begin() + 24);
  std::vector<int> torus_ranks(torus.endpoints().begin(), torus.endpoints().begin() + 24);
  const double bw_fly = alltoall_per_rank_bandwidth_gbs(fly, fly_ranks, 1e8);
  const double bw_torus = alltoall_per_rank_bandwidth_gbs(torus, torus_ranks, 1e8);
  EXPECT_GT(bw_fly, bw_torus);
}

}  // namespace
}  // namespace hpc::net
