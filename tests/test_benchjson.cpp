#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "benchjson.hpp"

/// \file test_benchjson.cpp
/// Round-trip and schema-validation tests for the BENCH_*.json perf-baseline
/// emitter (tools/benchjson).  The ci/check.sh perf-smoke stage trusts
/// benchjson_check to reject broken baselines, so the validator itself needs
/// direct coverage: well-formed files round-trip, and truncation, schema
/// drift, and nonsense values are all rejected.

namespace hpc::benchjson {
namespace {

class BenchJsonTest : public ::testing::Test {
 protected:
  std::string path_;

  void SetUp() override {
    path_ = ::testing::TempDir() + "bench_roundtrip.json";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_raw(const std::string& text) {
    std::ofstream out(path_);
    out << text;
  }
};

TEST_F(BenchJsonTest, RoundTripPreservesEntries) {
  const std::vector<Entry> entries = {
      {"fat_tree/4096/none_minimal", 123456.789, 17},
      {"dragonfly/256/flowbased_adaptive", 0.125, 400000},
      {R"(odd"name\with/escapes)", 1.0, 1},
  };
  ASSERT_TRUE(write_file(path_, "flowsim", entries));
  EXPECT_EQ(validate_file(path_), "");

  std::string bench;
  std::vector<Entry> got;
  std::string error;
  ASSERT_TRUE(read_file(path_, bench, got, error)) << error;
  EXPECT_EQ(bench, "flowsim");
  ASSERT_EQ(got.size(), entries.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].name, entries[i].name);
    EXPECT_NEAR(got[i].ns_per_op, entries[i].ns_per_op, 1e-3);
    EXPECT_EQ(got[i].iterations, entries[i].iterations);
  }
}

TEST_F(BenchJsonTest, EmptyResultListIsInvalid) {
  ASSERT_TRUE(write_file(path_, "flowsim", {}));
  EXPECT_NE(validate_file(path_), "");
}

TEST_F(BenchJsonTest, TruncatedFileIsRejected) {
  ASSERT_TRUE(write_file(path_, "flowsim", {{"a/b/c", 10.0, 3}}));
  std::ifstream in(path_);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  write_raw(text.substr(0, text.size() / 2));
  EXPECT_NE(validate_file(path_), "");
}

TEST_F(BenchJsonTest, WrongSchemaIsRejected) {
  write_raw(R"({"schema": "somebody-elses-v9", "bench": "x", "unit": "ns_per_op",
                "results": [{"name": "a", "ns_per_op": 1.0, "iterations": 1}]})");
  EXPECT_NE(validate_file(path_), "");
}

TEST_F(BenchJsonTest, NonPositiveTimesAreRejected) {
  ASSERT_TRUE(write_file(path_, "flowsim", {{"a/b/c", 0.0, 3}}));
  EXPECT_NE(validate_file(path_), "");
  ASSERT_TRUE(write_file(path_, "flowsim", {{"a/b/c", 5.0, 0}}));
  EXPECT_NE(validate_file(path_), "");
}

TEST_F(BenchJsonTest, MinIterationsThresholdIsEnforced) {
  ASSERT_TRUE(write_file(path_, "obs", {{"probe/hot", 12.5, 5}, {"probe/cold", 80.0, 1}}));
  // Default threshold of 1 accepts single-iteration rows.
  EXPECT_EQ(validate_file(path_), "");
  // A committed-baseline check at 3 rejects the single-iteration row and
  // names it in the error.
  const std::string error = validate_file(path_, 3);
  EXPECT_NE(error, "");
  EXPECT_NE(error.find("probe/cold"), std::string::npos);
  EXPECT_NE(error.find(">= 3"), std::string::npos);
  // Thresholds below 1 clamp to the zero/negative guard only.
  EXPECT_EQ(validate_file(path_, -7), "");
}

TEST_F(BenchJsonTest, MissingFileIsRejected) {
  EXPECT_NE(validate_file(::testing::TempDir() + "does_not_exist.json"), "");
}

}  // namespace
}  // namespace hpc::benchjson
