#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "benchjson.hpp"

/// \file test_benchjson.cpp
/// Round-trip and schema-validation tests for the BENCH_*.json perf-baseline
/// emitter (tools/benchjson).  The ci/check.sh perf-smoke stage trusts
/// benchjson_check to reject broken baselines, so the validator itself needs
/// direct coverage: well-formed files round-trip, and truncation, schema
/// drift, and nonsense values are all rejected.

namespace hpc::benchjson {
namespace {

class BenchJsonTest : public ::testing::Test {
 protected:
  std::string path_;

  void SetUp() override {
    path_ = ::testing::TempDir() + "bench_roundtrip.json";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_raw(const std::string& text) {
    std::ofstream out(path_);
    out << text;
  }
};

TEST_F(BenchJsonTest, RoundTripPreservesEntries) {
  const std::vector<Entry> entries = {
      {"fat_tree/4096/none_minimal", 123456.789, 17},
      {"dragonfly/256/flowbased_adaptive", 0.125, 400000},
      {R"(odd"name\with/escapes)", 1.0, 1},
  };
  ASSERT_TRUE(write_file(path_, "flowsim", entries));
  EXPECT_EQ(validate_file(path_), "");

  std::string bench;
  std::vector<Entry> got;
  std::string error;
  ASSERT_TRUE(read_file(path_, bench, got, error)) << error;
  EXPECT_EQ(bench, "flowsim");
  ASSERT_EQ(got.size(), entries.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].name, entries[i].name);
    EXPECT_NEAR(got[i].ns_per_op, entries[i].ns_per_op, 1e-3);
    EXPECT_EQ(got[i].iterations, entries[i].iterations);
  }
}

TEST_F(BenchJsonTest, EmptyResultListIsInvalid) {
  ASSERT_TRUE(write_file(path_, "flowsim", {}));
  EXPECT_NE(validate_file(path_), "");
}

TEST_F(BenchJsonTest, TruncatedFileIsRejected) {
  ASSERT_TRUE(write_file(path_, "flowsim", {{"a/b/c", 10.0, 3}}));
  std::ifstream in(path_);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  write_raw(text.substr(0, text.size() / 2));
  EXPECT_NE(validate_file(path_), "");
}

TEST_F(BenchJsonTest, WrongSchemaIsRejected) {
  write_raw(R"({"schema": "somebody-elses-v9", "bench": "x", "unit": "ns_per_op",
                "results": [{"name": "a", "ns_per_op": 1.0, "iterations": 1}]})");
  EXPECT_NE(validate_file(path_), "");
}

TEST_F(BenchJsonTest, NonPositiveTimesAreRejected) {
  ASSERT_TRUE(write_file(path_, "flowsim", {{"a/b/c", 0.0, 3}}));
  EXPECT_NE(validate_file(path_), "");
  ASSERT_TRUE(write_file(path_, "flowsim", {{"a/b/c", 5.0, 0}}));
  EXPECT_NE(validate_file(path_), "");
}

TEST_F(BenchJsonTest, MinIterationsThresholdIsEnforced) {
  ASSERT_TRUE(write_file(path_, "obs", {{"probe/hot", 12.5, 5}, {"probe/cold", 80.0, 1}}));
  // Default threshold of 1 accepts single-iteration rows.
  EXPECT_EQ(validate_file(path_), "");
  // A committed-baseline check at 3 rejects the single-iteration row and
  // names it in the error.
  const std::string error = validate_file(path_, 3);
  EXPECT_NE(error, "");
  EXPECT_NE(error.find("probe/cold"), std::string::npos);
  EXPECT_NE(error.find(">= 3"), std::string::npos);
  // Thresholds below 1 clamp to the zero/negative guard only.
  EXPECT_EQ(validate_file(path_, -7), "");
}

TEST_F(BenchJsonTest, MissingFileIsRejected) {
  EXPECT_NE(validate_file(::testing::TempDir() + "does_not_exist.json"), "");
}

TEST_F(BenchJsonTest, MergePreservesOrderAndRejectsDuplicates) {
  const std::string a = ::testing::TempDir() + "merge_a.json";
  const std::string b = ::testing::TempDir() + "merge_b.json";
  const std::string out = ::testing::TempDir() + "merge_out.json";
  ASSERT_TRUE(write_file(a, "flowsim", {{"f/one", 1.0, 3}, {"f/two", 2.0, 3}}));
  ASSERT_TRUE(write_file(b, "campaign", {{"c/one", 3.0, 5}}));

  EXPECT_EQ(merge_files({a, b}, out, "merged"), "");
  std::string bench, error;
  std::vector<Entry> got;
  ASSERT_TRUE(read_file(out, bench, got, error)) << error;
  EXPECT_EQ(bench, "merged");
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].name, "f/one");
  EXPECT_EQ(got[1].name, "f/two");
  EXPECT_EQ(got[2].name, "c/one");

  // A row name colliding across inputs is a data error.
  ASSERT_TRUE(write_file(b, "campaign", {{"f/one", 3.0, 5}}));
  const std::string dup = merge_files({a, b}, out, "merged");
  EXPECT_NE(dup, "");
  EXPECT_NE(dup.find("f/one"), std::string::npos);

  EXPECT_NE(merge_files({}, out, "merged"), "");
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(out.c_str());
}

TEST_F(BenchJsonTest, CompareExactAndTolerantModes) {
  const std::string base = ::testing::TempDir() + "cmp_base.json";
  const std::string cur = ::testing::TempDir() + "cmp_cur.json";
  ASSERT_TRUE(write_file(base, "campaign", {{"cell/a", 100.0, 2}, {"cell/b", 50.0, 2}}));
  ASSERT_TRUE(write_file(cur, "campaign", {{"cell/a", 100.0, 2}, {"cell/b", 50.0, 2}}));

  std::vector<CompareRow> rows;
  // Identical files pass exact mode (tolerance 0).
  EXPECT_EQ(compare_files(base, cur, 0.0, rows), "");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "cell/a");
  EXPECT_EQ(rows[0].delta_pct, 0.0);

  // A 4% move fails exact mode but passes a 10% tolerance.
  ASSERT_TRUE(write_file(cur, "campaign", {{"cell/a", 104.0, 2}, {"cell/b", 50.0, 2}}));
  const std::string exact = compare_files(base, cur, 0.0, rows);
  EXPECT_NE(exact, "");
  EXPECT_NE(exact.find("cell/a"), std::string::npos);
  EXPECT_EQ(compare_files(base, cur, 10.0, rows), "");
  EXPECT_NEAR(rows[0].delta_pct, 4.0, 1e-9);

  std::remove(base.c_str());
  std::remove(cur.c_str());
}

TEST_F(BenchJsonTest, CompareRejectsRowSetDrift) {
  const std::string base = ::testing::TempDir() + "cmp_base2.json";
  const std::string cur = ::testing::TempDir() + "cmp_cur2.json";
  std::vector<CompareRow> rows;

  // Row missing from current.
  ASSERT_TRUE(write_file(base, "x", {{"a", 1.0, 2}, {"b", 2.0, 2}}));
  ASSERT_TRUE(write_file(cur, "x", {{"a", 1.0, 2}}));
  std::string error = compare_files(base, cur, 100.0, rows);
  EXPECT_NE(error.find("'b'"), std::string::npos);

  // Extra row in current.
  ASSERT_TRUE(write_file(cur, "x", {{"a", 1.0, 2}, {"b", 2.0, 2}, {"c", 3.0, 2}}));
  error = compare_files(base, cur, 100.0, rows);
  EXPECT_NE(error.find("'c'"), std::string::npos);

  // Unreadable input is reported, not swallowed.
  EXPECT_NE(compare_files(base, ::testing::TempDir() + "nope.json", 0.0, rows), "");

  std::remove(base.c_str());
  std::remove(cur.c_str());
}

}  // namespace
}  // namespace hpc::benchjson
