#include <gtest/gtest.h>

#include "edge/control.hpp"
#include "edge/instrument.hpp"
#include "edge/pipeline.hpp"

namespace hpc::edge {
namespace {

TEST(Instrument, MeanRateArithmetic) {
  InstrumentSpec s;
  s.frame_bytes = 1e6;
  s.frames_per_s = 1'000.0;
  s.burst_duty = 0.5;
  EXPECT_DOUBLE_EQ(mean_rate_gbs(s), 0.5);
}

TEST(Instrument, UpgradeIsHeavier) {
  EXPECT_GT(mean_rate_gbs(light_source_upgrade_spec()),
            10.0 * mean_rate_gbs(light_source_spec()));
}

TEST(Instrument, SampleFramesProportions) {
  sim::Rng rng(101);
  const InstrumentSpec s = light_source_spec();
  const FrameSample sample = sample_frames(s, 10.0, rng);
  EXPECT_EQ(sample.frames, static_cast<std::int64_t>(s.frames_per_s * s.burst_duty * 10.0));
  const double frac = static_cast<double>(sample.interesting) / sample.frames;
  EXPECT_NEAR(frac, s.interesting_fraction, 0.02);
}

TEST(Pipeline, BackhaulDemandsFullRate) {
  const InstrumentSpec inst = light_source_spec();
  const Deployment dep;
  const PipelineOutcome out = backhaul_all(inst, dep);
  EXPECT_DOUBLE_EQ(out.wan_gbs_required, mean_rate_gbs(inst));
}

TEST(Pipeline, EdgeTriageSlashesWanDemand) {
  const InstrumentSpec inst = light_source_spec();
  const Deployment dep;
  const PipelineOutcome backhaul = backhaul_all(inst, dep);
  const PipelineOutcome edge = edge_triage(inst, dep);
  // ~5% interesting fraction => >10x reduction.
  EXPECT_LT(edge.wan_gbs_required, backhaul.wan_gbs_required / 10.0);
}

TEST(Pipeline, UpgradeSaturatesBackhaulNotEdge) {
  const InstrumentSpec inst = light_source_upgrade_spec();  // 128 GB/s burst
  const Deployment dep;                                      // 1.25 GB/s uplink
  const PipelineOutcome backhaul = backhaul_all(inst, dep);
  const PipelineOutcome edge = edge_triage(inst, dep);
  EXPECT_GT(backhaul.wan_utilization, 1.0);
  EXPECT_GT(backhaul.frames_lost_fraction, 0.9);
  EXPECT_LT(edge.frames_lost_fraction, backhaul.frames_lost_fraction);
}

TEST(Pipeline, EdgeDecisionLatencyIndependentOfWan) {
  const InstrumentSpec inst = light_source_spec();
  Deployment slow;
  slow.wan_rtt_ns = 100e6;  // terrible WAN
  Deployment fast;
  fast.wan_rtt_ns = 1e6;
  EXPECT_DOUBLE_EQ(edge_triage(inst, slow).mean_decision_latency_ns,
                   edge_triage(inst, fast).mean_decision_latency_ns);
  EXPECT_GT(backhaul_all(inst, slow).mean_decision_latency_ns,
            backhaul_all(inst, fast).mean_decision_latency_ns);
}

TEST(Pipeline, EdgeEnergyPerFrameLower) {
  const InstrumentSpec inst = light_source_spec();
  const Deployment dep;
  EXPECT_LT(edge_triage(inst, dep).energy_per_frame_j,
            backhaul_all(inst, dep).energy_per_frame_j);
}

TEST(Control, StableWithoutDelay) {
  sim::Rng rng(102);
  const Plant plant;
  const PidGains gains;
  const ControlResult r = run_control_loop(plant, gains, 1e-3, 1, 20.0, rng);
  EXPECT_LT(r.rms_error, 0.2);
  EXPECT_GT(r.settled_fraction, 0.5);
}

TEST(Control, DelayDegradesRegulation) {
  // Edge controller (1 ms loop) vs WAN controller (50 ms of delay at the
  // same 1 ms period): latency in the loop costs regulation quality.
  sim::Rng rng1(103);
  sim::Rng rng2(103);
  const Plant plant;
  const PidGains gains;
  const ControlResult local = run_control_loop(plant, gains, 1e-3, 1, 20.0, rng1);
  const ControlResult remote = run_control_loop(plant, gains, 1e-3, 50, 20.0, rng2);
  EXPECT_GT(remote.rms_error, 1.2 * local.rms_error);
  EXPECT_LT(remote.settled_fraction, local.settled_fraction);
}

TEST(Control, ControlBeatsNoControl) {
  sim::Rng rng1(104);
  sim::Rng rng2(104);
  const Plant plant;
  const ControlResult active = run_control_loop(plant, PidGains{}, 1e-3, 1, 20.0, rng1);
  const ControlResult passive =
      run_control_loop(plant, PidGains{0.0, 0.0, 0.0}, 1e-3, 1, 20.0, rng2);
  EXPECT_LT(active.rms_error, passive.rms_error);
}

TEST(Control, DeterministicForSeed) {
  const Plant plant;
  const PidGains gains;
  sim::Rng rng1(105);
  sim::Rng rng2(105);
  const ControlResult a = run_control_loop(plant, gains, 1e-3, 5, 10.0, rng1);
  const ControlResult b = run_control_loop(plant, gains, 1e-3, 5, 10.0, rng2);
  EXPECT_DOUBLE_EQ(a.rms_error, b.rms_error);
}

}  // namespace
}  // namespace hpc::edge
