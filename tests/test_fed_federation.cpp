#include "fed/federation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sched/workload.hpp"

namespace hpc::fed {
namespace {

std::vector<Site> two_site_federation() {
  // Site 0: small on-prem; site 1: large supercomputer, same domain.
  Site a = make_onprem_site(0, "campus", 4, 2);
  Site b = make_supercomputer_site(1, "leadership", 64);
  b.admin_domain = 0;
  return {a, b};
}

sched::Job data_heavy_job(int id, double gflop, double gb, int data_site) {
  sched::Job j;
  j.id = id;
  j.arrival = 0;
  j.nodes = 1;
  j.total_gflop = gflop;
  j.mix = sched::mix_of(sched::JobKind::kHpcSimulation);
  j.precision = hw::Precision::FP64;
  j.dataset_gb = gb;
  j.data_site = data_site;
  return j;
}

TEST(Sites, BuildersProduceDistinctKinds) {
  EXPECT_EQ(make_onprem_site(0, "a", 2, 2).kind, SiteKind::kOnPrem);
  EXPECT_EQ(make_supercomputer_site(1, "b", 32).kind, SiteKind::kSupercomputer);
  EXPECT_EQ(make_cloud_site(2, "c", 16).kind, SiteKind::kCloud);
  EXPECT_EQ(make_edge_site(3, "d", 4).kind, SiteKind::kEdge);
}

TEST(Sites, CloudIsNoisyAndForeignDomain) {
  const Site c = make_cloud_site(2, "cloud", 16);
  EXPECT_GT(c.noise_factor, 0.0);
  EXPECT_NE(c.admin_domain, 0);
}

TEST(Sites, WanTransferComponents) {
  const Site a = make_onprem_site(0, "a", 2, 2);
  const Site b = make_supercomputer_site(1, "b", 16);
  const double t = wan_transfer_ns(a, b, 10.0);
  const double expected =
      a.wan_latency_ns + b.wan_latency_ns + 10.0 * 1e9 / std::min(a.wan_bandwidth_gbs,
                                                                  b.wan_bandwidth_gbs);
  EXPECT_NEAR(t, expected, 1.0);
  EXPECT_DOUBLE_EQ(wan_transfer_ns(a, a, 10.0), 0.0);
}

TEST(FederationSim, SingleJobRunsAtHome) {
  FederationConfig cfg;
  cfg.stage = FederationStage::kLocalOnly;
  cfg.policy = MetaPolicy::kHomeOnly;
  FederationSim sim(two_site_federation(), cfg);
  sim.submit(data_heavy_job(0, 1e6, 1.0, 0), 0);
  const FederationResult r = sim.run();
  EXPECT_EQ(r.jobs_completed, 1);
  EXPECT_EQ(r.placements[0].site, 0);
  EXPECT_DOUBLE_EQ(r.wan_gb_moved, 0.0);
}

TEST(FederationSim, GridMovesWorkToBigSite) {
  FederationConfig cfg;
  cfg.stage = FederationStage::kGrid;
  cfg.policy = MetaPolicy::kComputeOnly;
  FederationSim sim(two_site_federation(), cfg);
  // Flood the small home site; overflow should land on the supercomputer.
  for (int i = 0; i < 30; ++i) sim.submit(data_heavy_job(i, 1e7, 0.0, 0), 0);
  const FederationResult r = sim.run();
  int remote = 0;
  for (const FedPlacement& p : r.placements)
    if (p.site == 1) ++remote;
  EXPECT_GT(remote, 10);
}

TEST(FederationSim, DataGravityAvoidsWanForHeavyData) {
  // A training job whose data (500 GB) lives at a CPU-only campus: gravity
  // accepts the slower local silicon because the 400-second transfer
  // dominates; compute-only chases the remote GPUs and pays it.
  auto run_policy = [](MetaPolicy p) {
    Site home = make_onprem_site(0, "campus", 4, 0);
    home.cluster = sched::make_homogeneous_cpu_cluster(4);
    Site super = make_supercomputer_site(1, "leadership", 64);
    super.admin_domain = 0;
    FederationConfig cfg;
    cfg.stage = FederationStage::kGrid;
    cfg.policy = p;
    FederationSim sim({home, super}, cfg);
    sched::Job j;
    j.id = 0;
    j.nodes = 1;
    j.total_gflop = 2e5;  // ~30 s on the local CPU, ~1 s on remote GPUs
    j.mix = sched::pure_mix(hw::OpClass::kGemm);
    j.precision = hw::Precision::BF16;
    j.dataset_gb = 500.0;
    j.data_site = 0;
    sim.submit(j, 0);
    return sim.run();
  };
  const FederationResult gravity = run_policy(MetaPolicy::kDataGravity);
  const FederationResult compute_only = run_policy(MetaPolicy::kComputeOnly);
  EXPECT_EQ(gravity.placements[0].site, 0);
  EXPECT_DOUBLE_EQ(gravity.wan_gb_moved, 0.0);
  EXPECT_EQ(compute_only.placements[0].site, 1);
  EXPECT_GT(compute_only.wan_gb_moved, 0.0);
  EXPECT_LT(gravity.mean_completion_s, compute_only.mean_completion_s);
}

TEST(FederationSim, BurstingOnlyOverThreshold) {
  std::vector<Site> sites = two_site_federation();
  sites.push_back(make_cloud_site(2, "cloud", 32, 0.0));
  FederationConfig cfg;
  cfg.stage = FederationStage::kBursting;
  cfg.policy = MetaPolicy::kDataGravity;
  cfg.burst_site = 2;
  cfg.burst_queue_threshold_s = 30.0;
  FederationSim sim(sites, cfg);
  for (int i = 0; i < 40; ++i) sim.submit(data_heavy_job(i, 5e7, 0.0, 0), 0);
  const FederationResult r = sim.run();
  int at_cloud = 0;
  int at_super = 0;
  for (const FedPlacement& p : r.placements) {
    if (p.site == 2) ++at_cloud;
    if (p.site == 1) ++at_super;
  }
  EXPECT_GT(at_cloud, 0);   // queue built up -> burst
  EXPECT_EQ(at_super, 0);   // bursting stage may only use the burst target
}

TEST(FederationSim, FluidRespectsAdminDomains) {
  std::vector<Site> sites = two_site_federation();
  sites.push_back(make_cloud_site(2, "cloud", 64, 0.0));  // foreign domain
  FederationConfig cfg;
  cfg.stage = FederationStage::kFluid;
  cfg.policy = MetaPolicy::kComputeOnly;
  FederationSim sim(sites, cfg);
  for (int i = 0; i < 30; ++i) sim.submit(data_heavy_job(i, 5e7, 0.0, 0), 0);
  const FederationResult r = sim.run();
  for (const FedPlacement& p : r.placements) EXPECT_NE(p.site, 2);
}

TEST(FederationSim, LedgerIsZeroSumAcrossSites) {
  FederationConfig cfg;
  cfg.stage = FederationStage::kGrid;
  cfg.policy = MetaPolicy::kComputeOnly;
  FederationSim sim(two_site_federation(), cfg);
  for (int i = 0; i < 20; ++i) sim.submit(data_heavy_job(i, 1e7, 0.0, 0), 0);
  const FederationResult r = sim.run();
  double net = 0.0;
  for (int s = 0; s < 2; ++s) net += r.ledger.net_usd(s);
  EXPECT_NEAR(net, 0.0, 1e-9);
  EXPECT_GT(r.ledger.total_node_hours(), 0.0);
}

TEST(FederationSim, CloudNoiseInflatesRuntime) {
  auto completion = [](double noise) {
    std::vector<Site> sites{make_cloud_site(0, "cloud", 8, noise)};
    FederationConfig cfg;
    cfg.stage = FederationStage::kLocalOnly;
    cfg.policy = MetaPolicy::kHomeOnly;
    cfg.seed = 9;
    FederationSim sim(sites, cfg);
    for (int i = 0; i < 10; ++i) {
      sched::Job j;
      j.id = i;
      j.nodes = 1;
      j.total_gflop = 1e7;
      j.mix = sched::mix_of(sched::JobKind::kHpcSimulation);
      sim.submit(j, 0);
    }
    return sim.run().mean_completion_s;
  };
  EXPECT_GT(completion(0.5), completion(0.0));
}

TEST(FederationSim, CheapestPolicyPrefersCheapSite) {
  std::vector<Site> sites = two_site_federation();
  sites[0].price_per_node_hour = 0.1;
  sites[1].price_per_node_hour = 10.0;
  FederationConfig cfg;
  cfg.stage = FederationStage::kGrid;
  cfg.policy = MetaPolicy::kCheapest;
  FederationSim sim(sites, cfg);
  sim.submit(data_heavy_job(0, 1e6, 0.0, 0), 0);
  const FederationResult r = sim.run();
  EXPECT_EQ(r.placements[0].site, 0);
}

TEST(Ledger, EarnedSpentBookkeeping) {
  Ledger ledger;
  UsageRecord r;
  r.job_id = 1;
  r.consumer_site = 0;
  r.provider_site = 1;
  r.node_hours = 2.0;
  r.cost_usd = 10.0;
  ledger.record(r);
  EXPECT_DOUBLE_EQ(ledger.earned_usd(1), 10.0);
  EXPECT_DOUBLE_EQ(ledger.spent_usd(0), 10.0);
  EXPECT_DOUBLE_EQ(ledger.net_usd(1), 10.0);
  EXPECT_DOUBLE_EQ(ledger.net_usd(0), -10.0);
  // Self-provided work is not an exchange.
  UsageRecord self;
  self.consumer_site = 0;
  self.provider_site = 0;
  self.cost_usd = 99.0;
  ledger.record(self);
  EXPECT_DOUBLE_EQ(ledger.earned_usd(0), 0.0);
  EXPECT_DOUBLE_EQ(ledger.spent_usd(0), 10.0);
}

}  // namespace
}  // namespace hpc::fed
