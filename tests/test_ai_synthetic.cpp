#include "ai/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ai/datasets.hpp"
#include "sim/stats.hpp"

namespace hpc::ai {
namespace {

TEST(GaussianMixture, FitsASingleGaussian) {
  sim::Rng rng(41);
  const std::int64_t n = 2'000;
  std::vector<float> x(static_cast<std::size_t>(n * 2));
  for (std::int64_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i * 2)] = static_cast<float>(rng.normal(3.0, 0.5));
    x[static_cast<std::size_t>(i * 2 + 1)] = static_cast<float>(rng.normal(-1.0, 2.0));
  }
  GaussianMixture gm(1, 2);
  gm.fit(x, n, 20, rng);
  // Samples should match the source moments.
  sim::RunningStats s0;
  sim::RunningStats s1;
  for (int i = 0; i < 5'000; ++i) {
    const std::vector<float> s = gm.sample(rng);
    s0.push(s[0]);
    s1.push(s[1]);
  }
  EXPECT_NEAR(s0.mean(), 3.0, 0.1);
  EXPECT_NEAR(s0.stddev(), 0.5, 0.1);
  EXPECT_NEAR(s1.mean(), -1.0, 0.2);
  EXPECT_NEAR(s1.stddev(), 2.0, 0.2);
}

TEST(GaussianMixture, LikelihoodImprovesWithFit) {
  sim::Rng rng(42);
  const Dataset blobs = make_blobs(1'000, 3, 2, 0.4, rng);
  GaussianMixture fresh(3, 2);
  const double before = fresh.log_likelihood(blobs.x, blobs.n);
  GaussianMixture fitted(3, 2);
  fitted.fit(blobs.x, blobs.n, 40, rng);
  const double after = fitted.log_likelihood(blobs.x, blobs.n);
  EXPECT_GT(after, before);
}

TEST(GaussianMixture, MoreComponentsFitMultimodalBetter) {
  sim::Rng rng(43);
  const Dataset blobs = make_blobs(2'000, 4, 2, 0.35, rng);
  GaussianMixture one(1, 2);
  sim::Rng r1(44);
  one.fit(blobs.x, blobs.n, 40, r1);
  GaussianMixture four(4, 2);
  sim::Rng r2(44);
  four.fit(blobs.x, blobs.n, 40, r2);
  EXPECT_GT(four.log_likelihood(blobs.x, blobs.n), one.log_likelihood(blobs.x, blobs.n));
}

TEST(Synthesize, PreservesClassBalanceRoughly) {
  sim::Rng rng(45);
  const Dataset real = make_blobs(1'500, 3, 2, 0.4, rng);
  const Dataset synth = synthesize_like(real, 3'000, 2, rng);
  EXPECT_EQ(synth.n, 3'000);
  EXPECT_EQ(synth.dim, real.dim);
  std::vector<int> counts(3, 0);
  for (const int l : synth.label) ++counts[static_cast<std::size_t>(l)];
  for (const int c : counts) EXPECT_NEAR(c, 1'000, 150);
}

TEST(Synthesize, TrainingOnSyntheticTransfersToReal) {
  // The paper's GAN-for-synthetic-data claim, with a GMM generator: a model
  // trained ONLY on synthetic data should classify real held-out data nearly
  // as well as one trained on real data.
  sim::Rng rng(46);
  const Dataset all = make_blobs(2'000, 3, 2, 0.5, rng);
  const auto [real_train, real_test] = split(all, 0.7);
  const Dataset synth = synthesize_like(real_train, real_train.n, 2, rng);

  TrainConfig cfg;
  cfg.epochs = 50;
  Mlp on_real({2, 24, 3}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  on_real.train(real_train, cfg, rng);
  Mlp on_synth({2, 24, 3}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  on_synth.train(synth, cfg, rng);

  const double acc_real = on_real.accuracy(real_test);
  const double acc_synth = on_synth.accuracy(real_test);
  EXPECT_GT(acc_real, 0.9);
  EXPECT_GT(acc_synth, acc_real - 0.05);
}

TEST(Synthesize, HandlesEmptySource) {
  sim::Rng rng(47);
  Dataset empty;
  empty.n = 0;
  empty.dim = 2;
  empty.targets = 2;
  const Dataset synth = synthesize_like(empty, 0, 2, rng);
  EXPECT_EQ(synth.n, 0);
}

}  // namespace
}  // namespace hpc::ai
