#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "edge/stream_sim.hpp"
#include "fed/federation.hpp"
#include "market/agents.hpp"
#include "market/exchange.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"

/// \file test_cosim_golden.cpp
/// Pre/post-refactor golden digests for the kernel-unification refactor.
///
/// Each scenario below was run against the pre-Engine batch `run()` loops
/// (ClusterSim, FederationSim, Exchange, edge run_stream) and its complete
/// observable output folded into an FNV-1a digest; the constants pin those
/// digests bit-exactly.  The Engine migration (sim/engine.hpp) must keep
/// every one of them green: the batch wrappers are required to produce
/// results byte-identical to the retired substrate-owned event loops.
/// FlowSim is pinned separately against the frozen oracle in
/// tests/test_net_flowsim_golden.cpp.

namespace hpc {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Running FNV-1a digest over 64-bit words (same fold as sim::Simulator).
class Digest {
 public:
  void fold(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffULL;
      h_ *= kFnvPrime;
    }
  }
  void fold(int v) noexcept { fold(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void fold(std::int64_t v) noexcept { fold(static_cast<std::uint64_t>(v)); }
  void fold(double v) noexcept { fold(std::bit_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

std::vector<sched::Job> golden_workload(int jobs, double deadline_slack = 0.0) {
  sched::WorkloadConfig cfg;
  cfg.jobs = jobs;
  cfg.mean_interarrival_s = 20.0;
  cfg.deadline_slack = deadline_slack;
  sim::Rng rng(42);
  return sched::generate_workload(cfg, rng);
}

std::uint64_t cluster_digest(sched::Policy policy) {
  sched::ClusterSim sim(sched::make_diversified_cluster(16, 8, 4, 4, 2), policy,
                        /*seed=*/7);
  sim.add_jobs(golden_workload(120, policy == sched::Policy::kDeadlineAware ? 2.0 : 0.0));
  const sched::ScheduleResult r = sim.run();
  Digest d;
  for (const sched::Placement& p : r.placements) {
    d.fold(p.job_id);
    d.fold(p.partition);
    d.fold(p.start);
    d.fold(p.finish);
    d.fold(p.arrival);
    d.fold(p.energy_j);
  }
  d.fold(r.makespan);
  d.fold(r.mean_wait_ns);
  d.fold(r.p95_wait_ns);
  d.fold(r.mean_slowdown);
  d.fold(r.utilization);
  d.fold(r.sla_violations);
  d.fold(r.total_energy_j);
  d.fold(r.throughput_jobs_per_s);
  return d.value();
}

std::vector<fed::Site> golden_sites() {
  fed::Site a = fed::make_onprem_site(0, "campus", 8, 4);
  fed::Site b = fed::make_supercomputer_site(1, "leadership", 64);
  b.admin_domain = 0;
  fed::Site c = fed::make_cloud_site(2, "cloud", 48);
  return {a, b, c};
}

std::uint64_t federation_digest(const fed::FederationConfig& cfg) {
  fed::FederationSim sim(golden_sites(), cfg);
  const std::vector<sched::Job> jobs = golden_workload(80);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    sched::Job j = jobs[i];
    j.data_site = static_cast<int>(i % 3);
    sim.submit(j, static_cast<int>((i * 7) % 3));
  }
  const fed::FederationResult r = sim.run();
  Digest d;
  for (const fed::FedPlacement& p : r.placements) {
    d.fold(p.job_id);
    d.fold(p.site);
    d.fold(p.partition);
    d.fold(p.submitted);
    d.fold(p.data_ready);
    d.fold(p.start);
    d.fold(p.finish);
    d.fold(p.transfer_gb);
    d.fold(p.cost_usd);
  }
  d.fold(r.makespan);
  d.fold(r.mean_completion_s);
  d.fold(r.p95_completion_s);
  d.fold(r.total_cost_usd);
  d.fold(r.wan_gb_moved);
  d.fold(r.jobs_completed);
  d.fold(r.jobs_dropped);
  d.fold(r.jobs_rerouted);
  for (const fed::UsageRecord& u : r.ledger.records()) {
    d.fold(u.job_id);
    d.fold(u.consumer_site);
    d.fold(u.provider_site);
    d.fold(u.node_hours);
    d.fold(u.cost_usd);
    d.fold(u.start);
    d.fold(u.finish);
  }
  return d.value();
}

std::uint64_t exchange_digest() {
  market::Exchange ex(17);
  sim::Rng pop(18);
  for (int i = 0; i < 20; ++i)
    ex.add_agent(std::make_unique<market::ProviderAgent>(
        "prov" + std::to_string(i), pop.uniform(0.5, 1.5), 1.0));
  for (int i = 0; i < 30; ++i)
    ex.add_agent(std::make_unique<market::ConsumerAgent>(
        "cons" + std::to_string(i), pop.uniform(0.8, 2.5), 1.0));
  ex.add_agent(std::make_unique<market::BrokerAgent>("broker"));
  ex.add_agent(std::make_unique<market::SpeculatorAgent>("spec"));
  ex.run_rounds(60);

  Digest d;
  for (const double p : ex.round_prices()) d.fold(p);
  for (const double v : ex.round_volumes()) d.fold(v);
  for (const market::Trade& t : ex.all_trades()) {
    d.fold(t.buyer);
    d.fold(t.seller);
    d.fold(t.price);
    d.fold(t.quantity);
    d.fold(t.seq);
  }
  d.fold(ex.total_volume());
  d.fold(ex.cash_imbalance());
  return d.value();
}

std::uint64_t edge_digest() {
  const edge::InstrumentSpec inst = edge::light_source_upgrade_spec();
  edge::StationConfig station;
  station.engines = 6;
  station.service_ns = 350e3;
  station.queue_capacity = 48;
  sim::Rng rng(23);
  const edge::StreamResult r = edge::run_stream(inst, station, /*duration_s=*/0.5, rng);
  Digest d;
  d.fold(r.frames_offered);
  d.fold(r.frames_served);
  d.fold(r.frames_dropped);
  d.fold(r.drop_fraction);
  d.fold(r.mean_latency_ns);
  d.fold(r.p99_latency_ns);
  d.fold(r.utilization);
  return d.value();
}

// -- Pinned pre-refactor digests --------------------------------------------

TEST(CosimGolden, ClusterSimFcfsBlocking) {
  EXPECT_EQ(cluster_digest(sched::Policy::kFcfsBlocking), 5328295899566122597ULL);
}

TEST(CosimGolden, ClusterSimFcfsSkip) {
  EXPECT_EQ(cluster_digest(sched::Policy::kFcfsSkip), 1720568156168360443ULL);
}

TEST(CosimGolden, ClusterSimEasyBackfill) {
  EXPECT_EQ(cluster_digest(sched::Policy::kEasyBackfill), 4788916846970041396ULL);
}

TEST(CosimGolden, ClusterSimHeteroAffinity) {
  EXPECT_EQ(cluster_digest(sched::Policy::kHeteroAffinity), 5110404862658624499ULL);
}

TEST(CosimGolden, ClusterSimRandomPlacement) {
  EXPECT_EQ(cluster_digest(sched::Policy::kRandomPlacement), 10271502154594506186ULL);
}

TEST(CosimGolden, ClusterSimDeadlineAware) {
  EXPECT_EQ(cluster_digest(sched::Policy::kDeadlineAware), 1128174391826264918ULL);
}

TEST(CosimGolden, FederationGridDataGravity) {
  fed::FederationConfig cfg;
  cfg.stage = fed::FederationStage::kGrid;
  cfg.policy = fed::MetaPolicy::kDataGravity;
  cfg.seed = 5;
  EXPECT_EQ(federation_digest(cfg), 13874465863557560047ULL);
}

TEST(CosimGolden, FederationBursting) {
  fed::FederationConfig cfg;
  cfg.stage = fed::FederationStage::kBursting;
  cfg.policy = fed::MetaPolicy::kComputeOnly;
  cfg.burst_site = 1;
  cfg.burst_queue_threshold_s = 60.0;
  cfg.seed = 5;
  EXPECT_EQ(federation_digest(cfg), 422257991878826856ULL);
}

TEST(CosimGolden, FederationExchangeCheapest) {
  fed::FederationConfig cfg;
  cfg.stage = fed::FederationStage::kExchange;
  cfg.policy = fed::MetaPolicy::kCheapest;
  cfg.seed = 5;
  EXPECT_EQ(federation_digest(cfg), 16436865242536713816ULL);
}

TEST(CosimGolden, FederationSiteFailureReroute) {
  fed::FederationConfig cfg;
  cfg.stage = fed::FederationStage::kGrid;
  cfg.policy = fed::MetaPolicy::kDataGravity;
  cfg.seed = 5;
  cfg.fail_site = 1;
  cfg.fail_at = sim::from_seconds(400.0);
  EXPECT_EQ(federation_digest(cfg), 11792600980729147186ULL);
}

TEST(CosimGolden, ExchangeClearing) { EXPECT_EQ(exchange_digest(), 6408783572886254077ULL); }

TEST(CosimGolden, EdgeStream) { EXPECT_EQ(edge_digest(), 3479997523809023418ULL); }

}  // namespace
}  // namespace hpc
