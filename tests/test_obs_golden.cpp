#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/flowsim.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "obs/tracefile.hpp"
#include "sim/audit.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

/// \file test_obs_golden.cpp
/// The golden determinism contract for hpc::obs: identical seeds must yield
/// byte-identical trace and metrics artifacts, different seeds must diverge,
/// attaching an observer must not perturb the simulation it watches, and the
/// SimulatorProbe must witness the exact digest the DeterminismAuditor
/// reports.  These are the properties ISSUE acceptance pins and the ci
/// [6/6] obs gate samples end to end.

namespace hpc::obs {
namespace {

/// Runs a seeded FlowSim scenario with full observability attached and
/// returns the exported (trace json, metrics snapshot json) pair.
std::pair<std::string, std::string> instrumented_run(std::uint64_t seed) {
  sim::Rng rng(seed);
  TraceRecorder trace(1 << 12);
  trace.set_enabled(true);
  MetricRegistry metrics;

  const net::Network netw = net::make_single_switch(4);
  net::FlowSim fs(netw, net::CongestionControl::kFlowBased,
                  net::Routing::kValiant, rng.engine()());
  fs.set_observer(&trace, &metrics);
  const std::vector<int>& eps = netw.endpoints();
  for (int i = 0; i < 24; ++i) {
    net::FlowSpec flow;
    flow.src = eps[rng.index(eps.size())];
    flow.dst = eps[rng.index(eps.size())];
    flow.bytes = rng.uniform(1e6, 2e9);
    flow.start = sim::from_seconds(rng.uniform(0.0, 0.5));
    flow.tag = i;
    fs.add_flow(flow);
  }
  (void)fs.run();
  return {trace.chrome_trace_json(), metrics.snapshot_json()};
}

TEST(ObsGolden, SameSeedProducesByteIdenticalArtifacts) {
  const auto [trace_a, metrics_a] = instrumented_run(1234);
  const auto [trace_b, metrics_b] = instrumented_run(1234);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(metrics_a, metrics_b);
  // And the artifacts are well-formed by their own validators.
  TraceStats stats;
  EXPECT_EQ(check_trace_text(trace_a, &stats), "");
  EXPECT_GT(stats.spans["net.flowsim.solve"].count, 0u);
  EXPECT_GT(stats.counters["net.flowsim.active_flows"].samples, 0u);
  EXPECT_EQ(validate_snapshot_text(metrics_a), "");
}

TEST(ObsGolden, DifferentSeedsProduceDifferentTraces) {
  const auto [trace_a, metrics_a] = instrumented_run(1);
  const auto [trace_b, metrics_b] = instrumented_run(2);
  EXPECT_NE(trace_a, trace_b);
}

TEST(ObsGolden, ObserverIsPassive) {
  // The observed simulation must be bit-identical to the unobserved one:
  // recording never touches the RNG stream or the solver.
  auto run_flows = [](bool observed) {
    sim::Rng rng(99);
    TraceRecorder trace;
    trace.set_enabled(true);
    MetricRegistry metrics;
    const net::Network netw = net::make_single_switch(4);
    net::FlowSim fs(netw, net::CongestionControl::kFlowBased,
                    net::Routing::kValiant, rng.engine()());
    if (observed) fs.set_observer(&trace, &metrics);
    const std::vector<int>& eps = netw.endpoints();
    for (int i = 0; i < 16; ++i) {
      net::FlowSpec flow;
      flow.src = eps[rng.index(eps.size())];
      flow.dst = eps[rng.index(eps.size())];
      flow.bytes = rng.uniform(1e6, 2e9);
      flow.start = sim::from_seconds(rng.uniform(0.0, 0.5));
      flow.tag = i;
      fs.add_flow(flow);
    }
    return fs.run();
  };
  const net::FlowRunSummary with = run_flows(true);
  const net::FlowRunSummary without = run_flows(false);
  ASSERT_EQ(with.flows.size(), without.flows.size());
  for (std::size_t i = 0; i < with.flows.size(); ++i) {
    EXPECT_EQ(with.flows[i].finish_ns, without.flows[i].finish_ns);
    EXPECT_EQ(with.flows[i].fct_ns, without.flows[i].fct_ns);
  }
  EXPECT_EQ(with.makespan_ns, without.makespan_ns);
}

TEST(ObsGolden, SimulatorProbeWitnessesAuditDigest) {
  // The auditor runs the simulator to completion after the scenario returns,
  // so probes must outlive the scenario closure; park them externally.
  std::vector<std::unique_ptr<TraceRecorder>> traces;
  std::vector<std::unique_ptr<SimulatorProbe>> probes;
  sim::DeterminismAuditor auditor([&](sim::Simulator& sim, sim::Rng& rng) {
    traces.push_back(std::make_unique<TraceRecorder>());
    traces.back()->set_enabled(true);
    probes.push_back(std::make_unique<SimulatorProbe>(traces.back().get(), nullptr));
    sim.set_probe(probes.back().get(), /*checkpoint_interval=*/1);
    for (int i = 0; i < 10; ++i)
      sim.schedule_at(sim::from_seconds(rng.uniform(0.0, 1.0)), [] {});
  });
  const sim::AuditReport report = auditor.audit(/*seed=*/7, /*runs=*/2);
  EXPECT_TRUE(report.deterministic);
  ASSERT_EQ(probes.size(), 2u);
  // With checkpoint_interval = 1 the probe's final checkpoint digest is the
  // full event-stream digest the auditor compares.
  EXPECT_EQ(probes[0]->last_digest(), report.digest());
  EXPECT_EQ(probes[1]->last_digest(), report.digest());
  EXPECT_EQ(probes[0]->checkpoints(), 10u);
  // And the two probed runs recorded identical traces.
  EXPECT_EQ(traces[0]->chrome_trace_json(), traces[1]->chrome_trace_json());
}

TEST(ObsGolden, ProbedTraceValidatesAndCountsDispatches) {
  TraceRecorder trace;
  trace.set_enabled(true);
  MetricRegistry metrics;
  SimulatorProbe probe(&trace, &metrics);
  sim::Simulator sim;
  sim.set_probe(&probe, /*checkpoint_interval=*/4);
  for (sim::TimeNs t = 10; t <= 80; t += 10) sim.schedule_at(t, [] {});
  sim.run();

  TraceStats stats;
  ASSERT_EQ(check_trace_text(trace.chrome_trace_json(), &stats), "");
  EXPECT_EQ(stats.spans["sim.dispatch"].count, 8u);
  EXPECT_EQ(stats.counters["sim.queue_depth"].samples, 8u);
  EXPECT_EQ(stats.phase_counts["i"], 2u);  // checkpoints at 4 and 8 events
  EXPECT_EQ(metrics.counter("sim.events_executed").value(), 8u);
  EXPECT_EQ(probe.checkpoints(), 2u);
  EXPECT_EQ(probe.last_digest(), sim.event_digest());
}

}  // namespace
}  // namespace hpc::obs
