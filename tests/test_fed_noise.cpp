#include "fed/noise.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hpc::fed {
namespace {

TEST(NoiseModel, SlowdownAtLeastOne) {
  const NoiseModel m = shared_cloud_noise();
  sim::Rng rng(91);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(m.sample_slowdown(rng), 1.0);
}

TEST(NoiseModel, DedicatedIsNearIdeal) {
  const NoiseModel m = dedicated_noise();
  sim::Rng rng(92);
  double worst = 0.0;
  for (int i = 0; i < 10'000; ++i) worst = std::max(worst, m.sample_slowdown(rng));
  EXPECT_LT(worst, 1.05);
}

TEST(NoiseModel, SharedCloudHasHeavySpikes) {
  const NoiseModel m = shared_cloud_noise();
  sim::Rng rng(93);
  double worst = 0.0;
  for (int i = 0; i < 10'000; ++i) worst = std::max(worst, m.sample_slowdown(rng));
  EXPECT_GT(worst, 2.0);
}

TEST(Bsp, IdealWithoutNoise) {
  const NoiseModel m = dedicated_noise();
  sim::Rng rng(94);
  const BspResult r = run_bsp(64, 200, 1e6, 1e4, m, rng);
  EXPECT_GT(r.efficiency, 0.95);
  EXPECT_NEAR(r.ideal_ns, 200.0 * (1e6 + 1e4), 1.0);
}

TEST(Bsp, EfficiencyDropsWithRanks) {
  // The paper: "the slowest component dictates performance" — max-of-n
  // statistics worsen as n grows.
  const NoiseModel m = shared_cloud_noise();
  sim::Rng rng1(95);
  sim::Rng rng2(95);
  const BspResult small = run_bsp(4, 300, 1e6, 1e4, m, rng1);
  const BspResult large = run_bsp(512, 300, 1e6, 1e4, m, rng2);
  EXPECT_GT(small.efficiency, large.efficiency);
}

TEST(Bsp, EfficiencyDropsWithNoiseLevel) {
  sim::Rng rng1(96);
  sim::Rng rng2(96);
  sim::Rng rng3(96);
  const BspResult dedicated = run_bsp(128, 200, 1e6, 1e4, dedicated_noise(), rng1);
  const BspResult hpc_cloud = run_bsp(128, 200, 1e6, 1e4, hpc_cloud_noise(), rng2);
  const BspResult shared = run_bsp(128, 200, 1e6, 1e4, shared_cloud_noise(), rng3);
  EXPECT_GT(dedicated.efficiency, hpc_cloud.efficiency);
  EXPECT_GT(hpc_cloud.efficiency, shared.efficiency);
}

TEST(Bsp, TailStepWorseThanMean) {
  const NoiseModel m = shared_cloud_noise();
  sim::Rng rng(97);
  const BspResult r = run_bsp(64, 500, 1e6, 1e4, m, rng);
  EXPECT_GT(r.p99_step_ns, r.mean_step_ns);
}

TEST(Bsp, ZeroStepsSafe) {
  sim::Rng rng(98);
  const BspResult r = run_bsp(8, 0, 1e6, 1e4, dedicated_noise(), rng);
  EXPECT_DOUBLE_EQ(r.total_ns, 0.0);
  EXPECT_DOUBLE_EQ(r.efficiency, 1.0);
}

}  // namespace
}  // namespace hpc::fed
