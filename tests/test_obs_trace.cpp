#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/jsonlite.hpp"
#include "obs/tracefile.hpp"

/// \file test_obs_trace.cpp
/// TraceRecorder unit tests: flight-recorder ring semantics (wraparound
/// overwrites the oldest events), string-interning stability, the disabled
/// fast path, and the Chrome exporter's escaping, balance repair, and
/// byte-determinism guarantees — the properties the golden determinism test
/// and the ci [6/6] obs gate build on.

namespace hpc::obs {
namespace {

TEST(TraceRecorder, DisabledPathRecordsNothing) {
  TraceRecorder rec(8);
  EXPECT_FALSE(rec.enabled());
  const TrackId t = rec.track("t");
  const StrId n = rec.intern("n");
  rec.begin_span(t, n, 1);
  rec.end_span(t, n, 2);
  rec.complete_span(t, n, 1, 2);
  rec.instant(t, n, 3);
  rec.counter(t, n, 4, 1.0);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, InterningIsStableAndDeduplicated) {
  TraceRecorder rec;
  const StrId a = rec.intern("alpha");
  const StrId b = rec.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.intern("alpha"), a);
  EXPECT_EQ(rec.name(a), "alpha");
  EXPECT_EQ(rec.name(b), "beta");
  // clear() forgets events but interned ids survive (instrumentation holds
  // them across runs).
  rec.clear();
  EXPECT_EQ(rec.intern("alpha"), a);
  EXPECT_EQ(rec.track("sim"), rec.track("sim"));
  EXPECT_EQ(rec.track_count(), 1u);
}

TEST(TraceRecorder, RingWrapsOverwritingOldest) {
  TraceRecorder rec(4);
  rec.set_enabled(true);
  const TrackId t = rec.track("t");
  const StrId n = rec.intern("n");
  for (sim::TimeNs ts = 0; ts < 6; ++ts) rec.instant(t, n, ts);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  // Oldest-first view: ts 0 and 1 were overwritten.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(rec.event(i).ts, i + 2);
}

TEST(TraceRecorder, ExporterEscapesHostileNames) {
  TraceRecorder rec;
  rec.set_enabled(true);
  const TrackId t = rec.track("tr\"ack\\");
  const StrId n = rec.intern("sp\"an\\\n\x01");
  rec.instant(t, n, 5);
  const std::string json = rec.chrome_trace_json();

  jsonlite::Value root;
  std::string error;
  ASSERT_TRUE(jsonlite::parse(json, root, error)) << error;
  const jsonlite::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Metadata (track name) + the instant; the hostile names round-trip.
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(events->array[0].find("args")->find("name")->string, "tr\"ack\\");
  EXPECT_EQ(events->array[1].find("name")->string, "sp\"an\\\n\x01");

  EXPECT_EQ(check_trace_text(json, nullptr), "");
}

TEST(TraceRecorder, ExporterClosesOpenSpansWithTheirRealNames) {
  TraceRecorder rec;
  rec.set_enabled(true);
  const TrackId t = rec.track("t");
  const StrId outer = rec.intern("outer");
  const StrId inner = rec.intern("inner");
  rec.begin_span(t, outer, 10);
  rec.begin_span(t, inner, 20);
  rec.instant(t, rec.intern("mark"), 30);
  // Neither span closed: the exporter must auto-close innermost-first with
  // matching names, or the validator's stack check fails.
  const std::string json = rec.chrome_trace_json();
  TraceStats stats;
  ASSERT_EQ(check_trace_text(json, &stats), "");
  EXPECT_EQ(stats.phase_counts["B"], 2u);
  EXPECT_EQ(stats.phase_counts["E"], 2u);
  EXPECT_EQ(stats.spans["inner"].count, 1u);
  EXPECT_EQ(stats.spans["outer"].count, 1u);
}

TEST(TraceRecorder, ExporterDropsEndsWhoseBeginsWereEvicted) {
  // Capacity 3: begin_span(a) is overwritten by later events, leaving an
  // orphan end that must be skipped (and counted) for the export to balance.
  TraceRecorder rec(3);
  rec.set_enabled(true);
  const TrackId t = rec.track("t");
  const StrId a = rec.intern("a");
  const StrId m = rec.intern("m");
  rec.begin_span(t, a, 1);   // evicted below
  rec.instant(t, m, 2);
  rec.instant(t, m, 3);
  rec.instant(t, m, 4);      // wraps: begin(a) gone
  rec.end_span(t, a, 5);     // orphan
  EXPECT_EQ(rec.dropped(), 2u);

  const std::string json = rec.chrome_trace_json();
  TraceStats stats;
  ASSERT_EQ(check_trace_text(json, &stats), "");
  EXPECT_EQ(stats.phase_counts["E"], 0u);
  EXPECT_EQ(stats.truncated_spans, 1u);
  EXPECT_EQ(stats.dropped, 2u);
}

TEST(TraceRecorder, CompleteSpanClampsInvertedInterval) {
  TraceRecorder rec;
  rec.set_enabled(true);
  const TrackId t = rec.track("t");
  rec.complete_span(t, rec.intern("x"), 100, 40);  // end < begin
  TraceStats stats;
  ASSERT_EQ(check_trace_text(rec.chrome_trace_json(), &stats), "");
  EXPECT_EQ(stats.spans["x"].count, 1u);
  EXPECT_EQ(stats.spans["x"].total_us, 0.0);
}

TEST(TraceRecorder, IdenticalStreamsExportByteIdentically) {
  auto record = [] {
    TraceRecorder rec(16);
    rec.set_enabled(true);
    const TrackId t = rec.track("t");
    const StrId s = rec.intern("s");
    const StrId c = rec.intern("c");
    for (sim::TimeNs ts = 0; ts < 40; ts += 2) {
      rec.begin_span(t, s, ts);
      rec.counter(t, c, ts, static_cast<double>(ts) * 0.5);
      rec.end_span(t, s, ts + 1);
    }
    return rec.chrome_trace_json();
  };
  EXPECT_EQ(record(), record());
}

}  // namespace
}  // namespace hpc::obs
