#include <gtest/gtest.h>

#include "mem/datamove.hpp"
#include "mem/fabric.hpp"
#include "mem/tier.hpp"

namespace hpc::mem {
namespace {

TEST(Tiers, OrderedByLatency) {
  EXPECT_LT(dram_tier().latency_ns, pmem_tier().latency_ns);
  EXPECT_LT(pmem_tier().latency_ns, ssd_tier().latency_ns);
}

TEST(Tiers, OrderedByCostPerGb) {
  EXPECT_GT(hbm_tier().cost_per_gb, dram_tier().cost_per_gb);
  EXPECT_GT(dram_tier().cost_per_gb, pmem_tier().cost_per_gb);
  EXPECT_GT(pmem_tier().cost_per_gb, ssd_tier().cost_per_gb);
}

TEST(Tiers, PersistenceFlags) {
  EXPECT_FALSE(dram_tier().persistent);
  EXPECT_TRUE(pmem_tier().persistent);
  EXPECT_TRUE(pmem_tier().byte_addressable);
  EXPECT_FALSE(ssd_tier().byte_addressable);
}

TEST(Tiers, StreamTimeLinear) {
  const MemoryTier t = dram_tier();
  const double t1 = stream_time_ns(t, 1e9);
  const double t2 = stream_time_ns(t, 2e9);
  EXPECT_NEAR(t2 - t1, 1e9 / t.bandwidth_gbs, 1.0);
}

TEST(Tiers, RandomAccessOverlap) {
  const MemoryTier d = dram_tier();
  // 4-way overlap for byte-addressable tiers.
  EXPECT_NEAR(random_access_time_ns(d, 1000.0), 1000.0 * d.latency_ns / 4.0, 1e-6);
  const MemoryTier s = ssd_tier();
  EXPECT_NEAR(random_access_time_ns(s, 10.0), 10.0 * s.latency_ns, 1e-6);
}

TEST(Hierarchy, PlacesInFastestFittingTier) {
  const Hierarchy h({hbm_tier(), dram_tier(), pmem_tier()});
  EXPECT_EQ(h.place(10.0), 0u);     // fits in 80 GB HBM
  EXPECT_EQ(h.place(100.0), 1u);    // spills to DRAM
  EXPECT_EQ(h.place(1'000.0), 2u);  // spills to PMEM
  EXPECT_EQ(h.place(1e6), 2u);      // nothing fits: last tier
}

TEST(Hierarchy, Totals) {
  const Hierarchy h({dram_tier(), pmem_tier()});
  EXPECT_DOUBLE_EQ(h.total_capacity_gb(), 512.0 + 4'096.0);
  EXPECT_GT(h.total_cost_usd(), 0.0);
}

TEST(Fabric, CxlLoadLatencyIsMemoryClass) {
  // The paper's Figure 2 claim: CXL-class attach keeps remote memory in the
  // sub-microsecond regime, PCIe does not.
  FabricPool cxl{pmem_tier(), net::LinkClass::kCxl, 1};
  FabricPool pcie{pmem_tier(), net::LinkClass::kPcie4, 1};
  EXPECT_LT(load_latency_ns(cxl), 1'000.0);
  EXPECT_GT(load_latency_ns(pcie), 2'000.0);
  EXPECT_GT(pointer_chase_slowdown(pcie), 3.0 * pointer_chase_slowdown(cxl));
}

TEST(Fabric, HopsAddRoundTrips) {
  FabricPool one{dram_tier(), net::LinkClass::kCxl, 1};
  FabricPool three{dram_tier(), net::LinkClass::kCxl, 3};
  const double per_hop = 2.0 * net::link_type(net::LinkClass::kCxl).latency_ns;
  EXPECT_NEAR(load_latency_ns(three) - load_latency_ns(one), 2.0 * per_hop, 1e-9);
}

TEST(Fabric, StreamBandwidthIsMinOfLinkAndMedia) {
  FabricPool pool{pmem_tier(), net::LinkClass::kCxl, 1};  // pmem 40 < cxl 64
  EXPECT_DOUBLE_EQ(stream_bandwidth_gbs(pool), 40.0);
  FabricPool pool2{hbm_tier(), net::LinkClass::kCxl, 1};  // cxl 64 < hbm 2000
  EXPECT_DOUBLE_EQ(stream_bandwidth_gbs(pool2), 64.0);
}

TEST(Fabric, BulkReadZeroBytes) {
  FabricPool pool{dram_tier(), net::LinkClass::kCxl, 1};
  EXPECT_DOUBLE_EQ(bulk_read_ns(pool, 0.0), 0.0);
}

TEST(DataMove, MemoryDrivenMovesFewerBytes) {
  const std::vector<PipelineStage> stages{{1e6, 0.5}, {1e6, 0.5}, {1e6, 0.1}};
  const double copy_bytes = copy_pipeline_bytes(10.0, stages);
  const double mdc_bytes = memory_driven_pipeline_bytes(10.0, stages);
  EXPECT_LT(mdc_bytes, copy_bytes);
  // Copy moves input+output per stage; memory-driven only streams input.
  EXPECT_NEAR(copy_bytes, (10.0 + 5.0 + 5.0 + 2.5 + 2.5 + 0.25) * 1e9, 1.0);
  EXPECT_NEAR(mdc_bytes, (10.0 + 5.0 + 2.5) * 1e9, 1.0);
}

TEST(DataMove, MemoryDrivenFasterOnFabric) {
  FabricPool pool{pmem_tier(), net::LinkClass::kCxl, 1};
  const std::vector<PipelineStage> stages{{1e6, 0.8}, {1e6, 0.5}};
  EXPECT_LT(memory_driven_pipeline_ns(pool, 20.0, stages),
            copy_pipeline_ns(pool, 20.0, stages));
}

TEST(DataMove, ComputeDominatedPipelinesConverge) {
  // When compute >> movement, both designs cost about the same.
  FabricPool pool{dram_tier(), net::LinkClass::kCxl, 1};
  const std::vector<PipelineStage> stages{{1e12, 1.0}};  // very heavy compute
  const double copy = copy_pipeline_ns(pool, 1.0, stages);
  const double mdc = memory_driven_pipeline_ns(pool, 1.0, stages);
  EXPECT_NEAR(copy / mdc, 1.0, 0.05);
}

}  // namespace
}  // namespace hpc::mem
