#include "hw/kernel.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string_view>

namespace hpc::hw {
namespace {

TEST(Kernel, GemmFlopsAndBytes) {
  const Kernel k = make_gemm(100, 200, 300, Precision::FP32);
  EXPECT_DOUBLE_EQ(k.flops, 2.0 * 100 * 200 * 300);
  EXPECT_DOUBLE_EQ(k.bytes, 4.0 * (100.0 * 300 + 300.0 * 200 + 2.0 * 100 * 200));
  EXPECT_EQ(k.op, OpClass::kGemm);
}

TEST(Kernel, GemmIntensityGrowsWithSize) {
  const Kernel small = make_gemm(64, 64, 64);
  const Kernel big = make_gemm(4096, 4096, 4096);
  EXPECT_GT(big.intensity(), small.intensity());
}

TEST(Kernel, MatvecIsMemoryBoundShape) {
  const Kernel k = make_matvec(1000, Precision::FP32);
  EXPECT_DOUBLE_EQ(k.flops, 2.0e6);
  // Intensity ~ 0.5 flops/byte at fp32: firmly memory bound.
  EXPECT_LT(k.intensity(), 1.0);
}

TEST(Kernel, PrecisionScalesBytes) {
  const Kernel fp64 = make_matvec(512, Precision::FP64);
  const Kernel bf16 = make_matvec(512, Precision::BF16);
  EXPECT_DOUBLE_EQ(fp64.bytes / bf16.bytes, 4.0);
  EXPECT_DOUBLE_EQ(fp64.flops, bf16.flops);
}

TEST(Kernel, Stencil3d) {
  const Kernel k = make_stencil3d(64);
  EXPECT_DOUBLE_EQ(k.flops, 8.0 * 64 * 64 * 64);
  EXPECT_EQ(k.op, OpClass::kStencil);
}

TEST(Kernel, FftFlopCount) {
  const Kernel k = make_fft(1024);
  EXPECT_DOUBLE_EQ(k.flops, 5.0 * 1024 * 10);  // 5 N log2 N
  EXPECT_EQ(k.op, OpClass::kFft);
}

TEST(Kernel, SpmvBytesIncludeIndices) {
  const Kernel k = make_spmv(1'000, Precision::FP64);
  EXPECT_DOUBLE_EQ(k.bytes, (8.0 + 4.0) * 1'000);
  EXPECT_DOUBLE_EQ(k.flops, 2'000.0);
}

TEST(Kernel, GraphIsLatencyBound) {
  const Kernel k = make_graph(1'000'000);
  EXPECT_LT(k.intensity(), 0.1);  // pointer chasing: ~1 flop per 16 bytes
  EXPECT_EQ(k.op, OpClass::kGraph);
}

TEST(Kernel, ZeroBytesIntensityIsHuge) {
  Kernel k;
  k.flops = 100.0;
  k.bytes = 0.0;
  EXPECT_GT(k.intensity(), 1e12);
}

TEST(OpClass, AllNamesDistinct) {
  std::set<std::string_view> names;
  for (int c = 0; c < kOpClassCount; ++c)
    names.insert(name_of(static_cast<OpClass>(c)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kOpClassCount));
}

}  // namespace
}  // namespace hpc::hw
