#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <vector>

// Fixtures below spell forbidden tokens inside ordinary string literals; the
// scanner blanks string contents before matching, so this file itself stays
// clean under the archlint_tree gate while the fixtures still exercise every
// rule through lint_source().

namespace hpc::lint {
namespace {

std::size_t count_rule(const std::vector<Finding>& fs, Rule r) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(), [r](const Finding& f) { return f.rule == r; }));
}

bool has_rule(const std::vector<Finding>& fs, Rule r) { return count_rule(fs, r) > 0; }

// ---------------------------------------------------------------- D1 --------

TEST(ArchlintAmbientRng, FlagsRandomDeviceSrandAndRand) {
  const char* src =
      "#include <random>\n"
      "int f() {\n"
      "  std::random_device rd;\n"
      "  srand(42);\n"
      "  return rand() + (int)rd();\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/hw/bad.cpp", src);
  EXPECT_EQ(count_rule(fs, Rule::kAmbientRng), 3u);
}

TEST(ArchlintAmbientRng, FlagsWallClockReads) {
  const char* src =
      "#include <chrono>\n"
      "long f() { return std::chrono::system_clock::now().time_since_epoch().count(); }\n"
      "long g() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n"
      "long h() { return time(nullptr); }\n";
  const std::vector<Finding> fs = lint_source("src/fed/bad.cpp", src);
  EXPECT_EQ(count_rule(fs, Rule::kAmbientRng), 3u);
}

TEST(ArchlintAmbientRng, RngImplementationIsExempt) {
  const char* src =
      "#include <random>\n"
      "unsigned seed_entropy() { std::random_device rd; return rd(); }\n";
  EXPECT_FALSE(has_rule(lint_source("src/sim/rng.cpp", src), Rule::kAmbientRng));
  EXPECT_TRUE(has_rule(lint_source("src/sim/other.cpp", src), Rule::kAmbientRng));
}

TEST(ArchlintAmbientRng, SeededRngIsClean) {
  const char* src =
      "#include \"sim/rng.hpp\"\n"
      "double f(hpc::sim::Rng& rng) { return rng.uniform() + rng.normal(0.0, 1.0); }\n";
  EXPECT_TRUE(lint_source("src/hw/good.cpp", src).empty());
}

TEST(ArchlintAmbientRng, IdentifiersContainingRandAreClean) {
  const char* src =
      "int operand(int x) { return x; }\n"
      "int f() { int strand = 1; return operand(strand); }\n";
  EXPECT_TRUE(lint_source("src/hw/good.cpp", src).empty());
}

TEST(ArchlintAmbientRng, AllowAnnotationSuppresses) {
  const char* same_line =
      "#include <random>\n"
      "std::random_device rd;  // archlint: allow(ambient-rng): entropy for demo only\n";
  EXPECT_FALSE(has_rule(lint_source("src/hw/x.cpp", same_line), Rule::kAmbientRng));
  const char* line_above =
      "#include <random>\n"
      "// archlint: allow(ambient-rng)\n"
      "std::random_device rd;\n";
  EXPECT_FALSE(has_rule(lint_source("src/hw/x.cpp", line_above), Rule::kAmbientRng));
}

// ---------------------------------------------------------------- D2 --------

TEST(ArchlintUnordered, FlagsIncludeAndUse) {
  const char* src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> table;\n";
  EXPECT_EQ(count_rule(lint_source("src/mem/bad.cpp", src), Rule::kUnorderedIter), 2u);
}

TEST(ArchlintUnordered, OrderedContainersAreClean) {
  const char* src =
      "#include <map>\n"
      "#include <set>\n"
      "std::map<int, int> table;\n"
      "std::set<int> keys;\n";
  EXPECT_TRUE(lint_source("src/mem/good.cpp", src).empty());
}

TEST(ArchlintUnordered, AllowAnnotationSuppresses) {
  const char* src =
      "#include <unordered_map>  // archlint: allow(unordered-iter)\n"
      "// archlint: allow(unordered-iter): membership cache, never iterated\n"
      "std::unordered_map<int, int> cache;\n";
  EXPECT_FALSE(has_rule(lint_source("src/mem/x.cpp", src), Rule::kUnorderedIter));
}

// ---------------------------------------------------------------- D3 --------

TEST(ArchlintRawTime, FlagsRawTimeParametersInHeaders) {
  const char* src =
      "#pragma once\n"
      "/// \\file bad.hpp\n"
      "namespace hpc::net {\n"
      "void set_timeout(double timeout_ns);\n"
      "void arm(std::uint64_t deadline_ns, int id);\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_source("src/net/bad.hpp", src), Rule::kRawTime), 2u);
}

TEST(ArchlintRawTime, TypedTimeAndMembersAreClean) {
  const char* src =
      "#pragma once\n"
      "/// \\file good.hpp\n"
      "#include \"sim/time.hpp\"\n"
      "namespace hpc::net {\n"
      "void set_timeout(sim::TimeNs timeout_ns);\n"
      "struct Link { double latency_ns = 0.0; };\n"
      "double propagation_ns(const Link& l);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/net/good.hpp", src).empty());
}

TEST(ArchlintRawTime, OnlyHeadersAreChecked) {
  const char* src = "static void set_timeout(double timeout_ns) { (void)timeout_ns; }\n";
  EXPECT_FALSE(has_rule(lint_source("src/net/impl.cpp", src), Rule::kRawTime));
}

TEST(ArchlintRawTime, AllowAnnotationSuppresses) {
  const char* src =
      "#pragma once\n"
      "/// \\file x.hpp\n"
      "namespace hpc::net {\n"
      "// archlint: allow(raw-time): analytic fractional-ns model\n"
      "double latency(double distance_ns);\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/net/x.hpp", src), Rule::kRawTime));
}

// ---------------------------------------------------------------- D4 --------

TEST(ArchlintNodiscard, FlagsConstAccessorsInSimCoreAndObs) {
  const char* src =
      "#pragma once\n"
      "/// \\file c.hpp\n"
      "namespace hpc::sim {\n"
      "class C {\n"
      " public:\n"
      "  int count() const noexcept { return n_; }\n"
      " private:\n"
      "  int n_ = 0;\n"
      "};\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_source("src/sim/c.hpp", src), Rule::kNodiscard), 1u);
  EXPECT_EQ(count_rule(lint_source("src/core/c.hpp", src), Rule::kNodiscard), 1u);
  EXPECT_EQ(count_rule(lint_source("src/obs/c.hpp", src), Rule::kNodiscard), 1u);
  // Out of scope: the rest of the tree is not (yet) held to D4.
  EXPECT_FALSE(has_rule(lint_source("src/hw/c.hpp", src), Rule::kNodiscard));
  EXPECT_FALSE(has_rule(lint_source("src/sim/c.cpp", src), Rule::kNodiscard));
}

TEST(ArchlintNodiscard, MarkedAccessorsAndVoidMembersAreClean) {
  const char* src =
      "#pragma once\n"
      "/// \\file c.hpp\n"
      "namespace hpc::sim {\n"
      "class C {\n"
      " public:\n"
      "  [[nodiscard]] int count() const noexcept { return n_; }\n"
      "  [[nodiscard]] double long_name_accessor(\n"
      "      int which) const;\n"
      "  void debug_dump() const;\n"
      " private:\n"
      "  int n_ = 0;\n"
      "};\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/sim/c.hpp", src), Rule::kNodiscard));
}

TEST(ArchlintNodiscard, FlagsFactoryFunctions) {
  const char* bad =
      "#pragma once\n"
      "/// \\file f.hpp\n"
      "namespace hpc::core {\n"
      "struct Config { int x = 0; };\n"
      "Config make_config();\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_source("src/core/f.hpp", bad), Rule::kNodiscard), 1u);
  const char* good =
      "#pragma once\n"
      "/// \\file f.hpp\n"
      "namespace hpc::core {\n"
      "struct Config { int x = 0; };\n"
      "[[nodiscard]] Config make_config();\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/core/f.hpp", good), Rule::kNodiscard));
}

// ---------------------------------------------------------------- D5 --------

TEST(ArchlintHeaderHygiene, FlagsEachMissingElement) {
  const char* no_pragma =
      "/// \\file x.hpp\n"
      "namespace hpc::x {}\n";
  EXPECT_EQ(count_rule(lint_source("src/hw/x.hpp", no_pragma), Rule::kHeaderHygiene), 1u);
  const char* no_namespace =
      "#pragma once\n"
      "/// \\file x.hpp\n"
      "int bare();\n";
  EXPECT_EQ(count_rule(lint_source("src/hw/x.hpp", no_namespace), Rule::kHeaderHygiene), 1u);
  const char* no_doc =
      "#pragma once\n"
      "namespace hpc::x {}\n";
  EXPECT_EQ(count_rule(lint_source("src/hw/x.hpp", no_doc), Rule::kHeaderHygiene), 1u);
}

TEST(ArchlintHeaderHygiene, CompleteHeaderIsCleanAndCppIsExempt) {
  const char* good =
      "#pragma once\n"
      "\n"
      "/// \\file good.hpp\n"
      "/// What this header is for.\n"
      "\n"
      "namespace hpc::x {\n"
      "inline int answer() { return 42; }\n"
      "}  // namespace hpc::x\n";
  EXPECT_TRUE(lint_source("src/hw/good.hpp", good).empty());
  EXPECT_FALSE(has_rule(lint_source("src/hw/impl.cpp", "int x = 0;\n"), Rule::kHeaderHygiene));
}

// ------------------------------------------------- scanner mechanics --------

TEST(ArchlintScanner, TokensInsideStringsAndCommentsAreInvisible) {
  const char* src =
      "const char* a = \"std::random_device lives here\";\n"
      "const char* b = R\"(srand(1); std::unordered_map)\";\n"
      "// a comment mentioning rand() and unordered_map is fine\n"
      "/* so is srand in a block comment */\n";
  EXPECT_TRUE(lint_source("src/hw/strings.cpp", src).empty());
}

TEST(ArchlintScanner, AllowListCoversMultipleRules) {
  const char* src =
      "#include <unordered_map>  // archlint: allow(unordered-iter, ambient-rng)\n";
  EXPECT_TRUE(lint_source("src/hw/x.cpp", src).empty());
}

TEST(ArchlintScanner, AllowDoesNotLeakToOtherRules) {
  const char* src =
      "// archlint: allow(raw-time)\n"
      "std::unordered_map<int, int> m;\n";
  EXPECT_TRUE(has_rule(lint_source("src/hw/x.cpp", src), Rule::kUnorderedIter));
}

TEST(ArchlintScanner, FormatIsPathLineRuleMessage) {
  const std::vector<Finding> fs =
      lint_source("src/hw/bad.cpp", "#include <unordered_map>\n");
  ASSERT_EQ(fs.size(), 1u);
  const std::string line = format(fs[0]);
  EXPECT_NE(line.find("src/hw/bad.cpp:1:"), std::string::npos);
  EXPECT_NE(line.find("[unordered-iter]"), std::string::npos);
}

TEST(ArchlintTree, WalksDirectoriesAndFindsViolations) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "archlint_tree_test";
  fs::create_directories(root / "src");
  {
    std::ofstream bad(root / "src" / "bad.cpp");
    bad << "#include <random>\nstd::random_device rd;\n";
    std::ofstream good(root / "src" / "good.cpp");
    good << "int x = 0;\n";
  }
  const std::vector<Finding> fs_found = lint_tree({root / "src"});
  EXPECT_EQ(fs_found.size(), 1u);
  EXPECT_TRUE(has_rule(fs_found, Rule::kAmbientRng));
  fs::remove_all(root);
}

}  // namespace
}  // namespace hpc::lint
