#include "lint.hpp"
#include "report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <vector>

// Fixtures below spell forbidden tokens inside ordinary string literals; the
// scanner blanks string contents before matching, so this file itself stays
// clean under the archlint_tree gate while the fixtures still exercise every
// rule through lint_source().

namespace hpc::lint {
namespace {

std::size_t count_rule(const std::vector<Finding>& fs, Rule r) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(), [r](const Finding& f) { return f.rule == r; }));
}

bool has_rule(const std::vector<Finding>& fs, Rule r) { return count_rule(fs, r) > 0; }

// ---------------------------------------------------------------- D1 --------

TEST(ArchlintAmbientRng, FlagsRandomDeviceSrandAndRand) {
  const char* src =
      "#include <random>\n"
      "int f() {\n"
      "  std::random_device rd;\n"
      "  srand(42);\n"
      "  return rand() + (int)rd();\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/hw/bad.cpp", src);
  EXPECT_EQ(count_rule(fs, Rule::kAmbientRng), 3u);
}

TEST(ArchlintAmbientRng, FlagsWallClockReads) {
  const char* src =
      "#include <chrono>\n"
      "long f() { return std::chrono::system_clock::now().time_since_epoch().count(); }\n"
      "long g() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n"
      "long h() { return time(nullptr); }\n";
  const std::vector<Finding> fs = lint_source("src/fed/bad.cpp", src);
  EXPECT_EQ(count_rule(fs, Rule::kAmbientRng), 3u);
}

TEST(ArchlintAmbientRng, RngImplementationIsExempt) {
  const char* src =
      "#include <random>\n"
      "unsigned seed_entropy() { std::random_device rd; return rd(); }\n";
  EXPECT_FALSE(has_rule(lint_source("src/sim/rng.cpp", src), Rule::kAmbientRng));
  EXPECT_TRUE(has_rule(lint_source("src/sim/other.cpp", src), Rule::kAmbientRng));
}

TEST(ArchlintAmbientRng, SeededRngIsClean) {
  const char* src =
      "#include \"sim/rng.hpp\"\n"
      "double f(hpc::sim::Rng& rng) { return rng.uniform() + rng.normal(0.0, 1.0); }\n";
  EXPECT_TRUE(lint_source("src/hw/good.cpp", src).empty());
}

TEST(ArchlintAmbientRng, IdentifiersContainingRandAreClean) {
  const char* src =
      "int operand(int x) { return x; }\n"
      "int f() { int strand = 1; return operand(strand); }\n";
  EXPECT_TRUE(lint_source("src/hw/good.cpp", src).empty());
}

TEST(ArchlintAmbientRng, AllowAnnotationSuppresses) {
  const char* same_line =
      "#include <random>\n"
      "std::random_device rd;  // archlint: allow(ambient-rng): entropy for demo only\n";
  EXPECT_FALSE(has_rule(lint_source("src/hw/x.cpp", same_line), Rule::kAmbientRng));
  const char* line_above =
      "#include <random>\n"
      "// archlint: allow(ambient-rng)\n"
      "std::random_device rd;\n";
  EXPECT_FALSE(has_rule(lint_source("src/hw/x.cpp", line_above), Rule::kAmbientRng));
}

// ---------------------------------------------------------------- D2 --------

TEST(ArchlintUnordered, FlagsIncludeAndUse) {
  const char* src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> table;\n";
  EXPECT_EQ(count_rule(lint_source("src/mem/bad.cpp", src), Rule::kUnorderedIter), 2u);
}

TEST(ArchlintUnordered, OrderedContainersAreClean) {
  const char* src =
      "#include <map>\n"
      "#include <set>\n"
      "std::map<int, int> table;\n"
      "std::set<int> keys;\n";
  const std::vector<Finding> fs = lint_source("src/mem/good.cpp", src);
  EXPECT_FALSE(has_rule(fs, Rule::kUnorderedIter));
  // The two namespace-scope containers are still mutable globals (D9).
  EXPECT_EQ(count_rule(fs, Rule::kMutableGlobal), 2u);
}

TEST(ArchlintUnordered, AllowAnnotationSuppresses) {
  const char* src =
      "#include <unordered_map>  // archlint: allow(unordered-iter)\n"
      "// archlint: allow(unordered-iter): membership cache, never iterated\n"
      "std::unordered_map<int, int> cache;\n";
  EXPECT_FALSE(has_rule(lint_source("src/mem/x.cpp", src), Rule::kUnorderedIter));
}

// ---------------------------------------------------------------- D3 --------

TEST(ArchlintRawTime, FlagsRawTimeParametersInHeaders) {
  const char* src =
      "#pragma once\n"
      "/// \\file bad.hpp\n"
      "namespace hpc::net {\n"
      "void set_timeout(double timeout_ns);\n"
      "void arm(std::uint64_t deadline_ns, int id);\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_source("src/net/bad.hpp", src), Rule::kRawTime), 2u);
}

TEST(ArchlintRawTime, TypedTimeAndMembersAreClean) {
  const char* src =
      "#pragma once\n"
      "/// \\file good.hpp\n"
      "#include \"sim/time.hpp\"\n"
      "namespace hpc::net {\n"
      "void set_timeout(sim::TimeNs timeout_ns);\n"
      "struct Link { double latency_ns = 0.0; };\n"
      "double propagation_ns(const Link& l);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/net/good.hpp", src).empty());
}

TEST(ArchlintRawTime, OnlyHeadersAreChecked) {
  const char* src = "static void set_timeout(double timeout_ns) { (void)timeout_ns; }\n";
  EXPECT_FALSE(has_rule(lint_source("src/net/impl.cpp", src), Rule::kRawTime));
}

TEST(ArchlintRawTime, AllowAnnotationSuppresses) {
  const char* src =
      "#pragma once\n"
      "/// \\file x.hpp\n"
      "namespace hpc::net {\n"
      "// archlint: allow(raw-time): analytic fractional-ns model\n"
      "double latency(double distance_ns);\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/net/x.hpp", src), Rule::kRawTime));
}

// ---------------------------------------------------------------- D4 --------

TEST(ArchlintNodiscard, FlagsConstAccessorsInSimCoreAndObs) {
  const char* src =
      "#pragma once\n"
      "/// \\file c.hpp\n"
      "namespace hpc::sim {\n"
      "class C {\n"
      " public:\n"
      "  int count() const noexcept { return n_; }\n"
      " private:\n"
      "  int n_ = 0;\n"
      "};\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_source("src/sim/c.hpp", src), Rule::kNodiscard), 1u);
  EXPECT_EQ(count_rule(lint_source("src/core/c.hpp", src), Rule::kNodiscard), 1u);
  EXPECT_EQ(count_rule(lint_source("src/obs/c.hpp", src), Rule::kNodiscard), 1u);
  // Out of scope: the rest of the tree is not (yet) held to D4.
  EXPECT_FALSE(has_rule(lint_source("src/hw/c.hpp", src), Rule::kNodiscard));
  EXPECT_FALSE(has_rule(lint_source("src/sim/c.cpp", src), Rule::kNodiscard));
}

TEST(ArchlintNodiscard, MarkedAccessorsAndVoidMembersAreClean) {
  const char* src =
      "#pragma once\n"
      "/// \\file c.hpp\n"
      "namespace hpc::sim {\n"
      "class C {\n"
      " public:\n"
      "  [[nodiscard]] int count() const noexcept { return n_; }\n"
      "  [[nodiscard]] double long_name_accessor(\n"
      "      int which) const;\n"
      "  void debug_dump() const;\n"
      " private:\n"
      "  int n_ = 0;\n"
      "};\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/sim/c.hpp", src), Rule::kNodiscard));
}

TEST(ArchlintNodiscard, FlagsFactoryFunctions) {
  const char* bad =
      "#pragma once\n"
      "/// \\file f.hpp\n"
      "namespace hpc::core {\n"
      "struct Config { int x = 0; };\n"
      "Config make_config();\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_source("src/core/f.hpp", bad), Rule::kNodiscard), 1u);
  const char* good =
      "#pragma once\n"
      "/// \\file f.hpp\n"
      "namespace hpc::core {\n"
      "struct Config { int x = 0; };\n"
      "[[nodiscard]] Config make_config();\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/core/f.hpp", good), Rule::kNodiscard));
}

// ---------------------------------------------------------------- D5 --------

TEST(ArchlintHeaderHygiene, FlagsEachMissingElement) {
  const char* no_pragma =
      "/// \\file x.hpp\n"
      "namespace hpc::x {}\n";
  EXPECT_EQ(count_rule(lint_source("src/hw/x.hpp", no_pragma), Rule::kHeaderHygiene), 1u);
  const char* no_namespace =
      "#pragma once\n"
      "/// \\file x.hpp\n"
      "int bare();\n";
  EXPECT_EQ(count_rule(lint_source("src/hw/x.hpp", no_namespace), Rule::kHeaderHygiene), 1u);
  const char* no_doc =
      "#pragma once\n"
      "namespace hpc::x {}\n";
  EXPECT_EQ(count_rule(lint_source("src/hw/x.hpp", no_doc), Rule::kHeaderHygiene), 1u);
}

TEST(ArchlintHeaderHygiene, WholeFileFindingsPointAtLineOne) {
  // v1 reported these at line 0, which renders as "x.hpp:0:" and confuses
  // every editor's jump-to-location; whole-file findings live on line 1.
  const std::vector<Finding> fs = lint_source("src/hw/x.hpp", "int bare();\n");
  ASSERT_EQ(count_rule(fs, Rule::kHeaderHygiene), 3u);
  for (const Finding& f : fs) EXPECT_EQ(f.line, 1u);
}

TEST(ArchlintHeaderHygiene, CompleteHeaderIsCleanAndCppIsExempt) {
  const char* good =
      "#pragma once\n"
      "\n"
      "/// \\file good.hpp\n"
      "/// What this header is for.\n"
      "\n"
      "namespace hpc::x {\n"
      "inline int answer() { return 42; }\n"
      "}  // namespace hpc::x\n";
  EXPECT_TRUE(lint_source("src/hw/good.hpp", good).empty());
  EXPECT_FALSE(has_rule(lint_source("src/hw/impl.cpp", "int x = 0;\n"), Rule::kHeaderHygiene));
}

// ------------------------------------------------- scanner mechanics --------

TEST(ArchlintScanner, TokensInsideStringsAndCommentsAreInvisible) {
  const char* src =
      "const char* a = \"std::random_device lives here\";\n"
      "const char* b = R\"(srand(1); std::unordered_map)\";\n"
      "// a comment mentioning rand() and unordered_map is fine\n"
      "/* so is srand in a block comment */\n";
  EXPECT_TRUE(lint_source("src/hw/strings.cpp", src).empty());
}

TEST(ArchlintScanner, AllowListCoversMultipleRules) {
  const char* src =
      "#include <unordered_map>  // archlint: allow(unordered-iter, ambient-rng)\n";
  EXPECT_TRUE(lint_source("src/hw/x.cpp", src).empty());
}

TEST(ArchlintScanner, AllowDoesNotLeakToOtherRules) {
  const char* src =
      "// archlint: allow(raw-time)\n"
      "std::unordered_map<int, int> m;\n";
  EXPECT_TRUE(has_rule(lint_source("src/hw/x.cpp", src), Rule::kUnorderedIter));
}

TEST(ArchlintScanner, FormatIsPathLineRuleMessage) {
  const std::vector<Finding> fs =
      lint_source("src/hw/bad.cpp", "#include <unordered_map>\n");
  ASSERT_EQ(fs.size(), 1u);
  const std::string line = format(fs[0]);
  EXPECT_NE(line.find("src/hw/bad.cpp:1:"), std::string::npos);
  EXPECT_NE(line.find("[unordered-iter]"), std::string::npos);
}

// ---------------------------------------------------------------- D8 --------

TEST(ArchlintFloatEq, FlagsLiteralAndDeclaredDoubleComparisons) {
  const char* src =
      "bool f(double x) { return x == 1.0; }\n"
      "bool g(double x) { return 0.5f != x; }\n"
      "bool h(int n) { return n == 3.0; }\n";
  EXPECT_EQ(count_rule(lint_source("src/hw/bad.cpp", src), Rule::kFloatEq), 3u);
}

TEST(ArchlintFloatEq, IntegerAndPointerComparisonsAreClean) {
  const char* src =
      "bool f(int a, int b) { return a == b; }\n"
      "bool g(double* p, double* q) { return p != q; }\n"
      "bool h(unsigned long x) { return x == 0x10; }\n";
  EXPECT_TRUE(lint_source("src/hw/good.cpp", src).empty());
}

TEST(ArchlintFloatEq, OperatorDefinitionAndTestsAreExempt) {
  const char* op =
      "struct V { double v; };\n"
      "bool operator==(const V& a, const V& b);\n";
  EXPECT_FALSE(has_rule(lint_source("src/hw/v.cpp", op), Rule::kFloatEq));
  const char* cmp = "bool f(double x) { return x == 1.0; }\n";
  EXPECT_FALSE(has_rule(lint_source("tests/test_x.cpp", cmp), Rule::kFloatEq));
  EXPECT_TRUE(has_rule(lint_source("src/hw/x.cpp", cmp), Rule::kFloatEq));
}

TEST(ArchlintFloatEq, AllowAnnotationSuppresses) {
  const char* src =
      "bool f(double x) {\n"
      "  return x == 0.0;  // archlint: allow(float-eq): exact sentinel\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/hw/x.cpp", src), Rule::kFloatEq));
}

// ---------------------------------------------------------------- D9 --------

TEST(ArchlintMutableGlobal, FlagsNamespaceScopeVariables) {
  const char* src =
      "namespace hpc::hw {\n"
      "int counter = 0;\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/hw/bad.cpp", src);
  ASSERT_EQ(count_rule(fs, Rule::kMutableGlobal), 1u);
  EXPECT_NE(fs[0].message.find("'counter'"), std::string::npos);
}

TEST(ArchlintMutableGlobal, ConstConstexprAndLocalsAreClean) {
  const char* src =
      "namespace hpc::hw {\n"
      "const int kA = 1;\n"
      "constexpr double kB = 2.5;\n"
      "inline constexpr char kName[] = \"x\";\n"
      "int f() { static int local = 0; return ++local; }\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/hw/good.cpp", src), Rule::kMutableGlobal));
}

TEST(ArchlintMutableGlobal, DeclarationsAreNotVariables) {
  const char* src =
      "namespace hpc::hw {\n"
      "class Widget;\n"
      "struct Config { int x = 0; };\n"
      "using Table = int;\n"
      "extern int shared_elsewhere;\n"
      "int area(int w, int h);\n"
      "template <typename T> T zero() { return T{}; }\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/hw/decls.cpp", src), Rule::kMutableGlobal));
}

TEST(ArchlintMutableGlobal, OnlySrcIsChecked) {
  const char* src = "int counter = 0;\n";
  EXPECT_TRUE(has_rule(lint_source("src/hw/x.cpp", src), Rule::kMutableGlobal));
  EXPECT_FALSE(has_rule(lint_source("tests/x.cpp", src), Rule::kMutableGlobal));
  EXPECT_FALSE(has_rule(lint_source("bench/x.cpp", src), Rule::kMutableGlobal));
}

TEST(ArchlintMutableGlobal, AllowAnnotationSuppresses) {
  const char* src =
      "namespace hpc::hw {\n"
      "// archlint: allow(mutable-global): registered-at-init plugin table\n"
      "int plugin_count = 0;\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("src/hw/x.cpp", src), Rule::kMutableGlobal));
}

// --------------------------------------------------- rule selection ---------

TEST(ArchlintRuleSet, DisableAndEnableFilterFindings) {
  const char* src = "#include <unordered_map>\nstd::random_device rd;\n";
  Options only_d2;
  only_d2.rules = RuleSet::none();
  only_d2.rules.enable(Rule::kUnorderedIter);
  const std::vector<Finding> fs = lint_source("src/hw/x.cpp", src, only_d2);
  EXPECT_TRUE(has_rule(fs, Rule::kUnorderedIter));
  EXPECT_FALSE(has_rule(fs, Rule::kAmbientRng));
  EXPECT_FALSE(has_rule(fs, Rule::kMutableGlobal));

  Options no_d2;
  no_d2.rules.disable(Rule::kUnorderedIter);
  EXPECT_FALSE(has_rule(lint_source("src/hw/x.cpp", src, no_d2), Rule::kUnorderedIter));
}

TEST(ArchlintRuleSet, IoErrorCannotBeDisabled) {
  Options none;
  none.rules = RuleSet::none();
  EXPECT_TRUE(none.rules.contains(Rule::kIoError));
  const std::vector<Finding> fs =
      lint_file(std::filesystem::path("definitely/not/a/real/file.cpp"), none);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, Rule::kIoError);
  EXPECT_EQ(fs[0].line, 1u);
}

TEST(ArchlintRuleSet, RuleIdsRoundTrip) {
  for (int i = 0; i < kRuleCount; ++i) {
    const Rule r = static_cast<Rule>(i);
    Rule back = Rule::kAmbientRng;
    ASSERT_TRUE(rule_from_id(id_of(r), back)) << id_of(r);
    EXPECT_EQ(back, r);
  }
  Rule unused;
  EXPECT_FALSE(rule_from_id("no-such-rule", unused));
}

// ------------------------------------------------------- tree scans ---------

TEST(ArchlintTree, WalksDirectoriesAndFindsViolations) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "archlint_tree_test";
  fs::create_directories(root / "src");
  {
    std::ofstream bad(root / "src" / "bad.cpp");
    bad << "#include <random>\nstd::random_device rd;\n";
    std::ofstream good(root / "src" / "good.cpp");
    good << "int f() { return 0; }\n";
  }
  const std::vector<Finding> fs_found = lint_tree({root / "src"});
  // The global `rd` is both ambient nondeterminism and a mutable global.
  EXPECT_EQ(fs_found.size(), 2u);
  EXPECT_TRUE(has_rule(fs_found, Rule::kAmbientRng));
  EXPECT_TRUE(has_rule(fs_found, Rule::kMutableGlobal));
  fs::remove_all(root);
}

// D6-D9 against the committed violation corpus (the same directory the
// archlint_fixtures ctest scans through the CLI).
TEST(ArchlintFixtureCorpus, EveryGraphAndTokenRuleFires) {
  namespace fs = std::filesystem;
  const fs::path corpus = ARCHLINT_FIXTURES_DIR;
  ASSERT_TRUE(fs::exists(corpus / "layers.txt"));
  TreeOptions opts;
  opts.root = corpus;
  opts.layers_file = corpus / "layers.txt";
  const std::vector<Finding> fs_found = lint_tree({corpus / "src"}, opts);
  // 5 graph/token findings (v2) + 8 semantic findings from the epsilon and
  // zeta modules (v3: D10 x2, D11 x2, D12 x2, D13, D14) = 13.  The per-rule
  // v3 breakdown is pinned in test_archlint_symbols.cpp.
  ASSERT_EQ(fs_found.size(), 13u);
  EXPECT_EQ(count_rule(fs_found, Rule::kLayerViolation), 2u);
  EXPECT_EQ(count_rule(fs_found, Rule::kIncludeCycle), 1u);
  EXPECT_EQ(count_rule(fs_found, Rule::kFloatEq), 1u);
  EXPECT_EQ(count_rule(fs_found, Rule::kMutableGlobal), 1u);
  for (const Finding& f : fs_found) {
    if (f.rule == Rule::kLayerViolation)
      EXPECT_TRUE(f.path == "src/alpha/a.hpp" || f.path == "src/delta/d.hpp") << format(f);
    else if (f.rule == Rule::kIncludeCycle)
      EXPECT_EQ(f.path, "src/alpha/a.hpp") << format(f);
    else if (f.rule == Rule::kFloatEq || f.rule == Rule::kMutableGlobal)
      EXPECT_EQ(f.path, "src/gamma/g.cpp") << format(f);
    else  // v3 semantic findings all live in the epsilon and zeta modules
      EXPECT_TRUE(f.path.rfind("src/epsilon/", 0) == 0 ||
                  f.path == "src/zeta/z.cpp")
          << format(f);
  }
  // The lateral substrate edge fires on the including file, not on gamma.
  bool delta_fired = false;
  for (const Finding& f : fs_found)
    if (f.rule == Rule::kLayerViolation && f.path == "src/delta/d.hpp") delta_fired = true;
  EXPECT_TRUE(delta_fired);
}

TEST(ArchlintFixtureCorpus, FixturesAreSkippedBelowAScanRoot) {
  // Scanning the PARENT of the corpus must see nothing: `fixtures` path
  // components below a root are data, not code.
  namespace fs = std::filesystem;
  const fs::path corpus = ARCHLINT_FIXTURES_DIR;
  const std::vector<Finding> fs_found = lint_tree({corpus.parent_path()});
  for (const Finding& f : fs_found)
    EXPECT_EQ(f.path.find("fixtures"), std::string::npos) << format(f);
}

// ------------------------------------------------- reporting layer ----------

TEST(ArchlintReport, JsonAndSarifRenderDeterministically) {
  const std::vector<Finding> fs =
      lint_source("src/hw/bad.cpp", "#include <unordered_map>\n");
  ASSERT_EQ(fs.size(), 1u);
  const std::string json = render(fs, Format::kJson);
  EXPECT_NE(json.find("\"tool\": \"archlint\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"unordered-iter\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_EQ(json, render(fs, Format::kJson));

  const std::string sarif = render(fs, Format::kSarif);
  std::string error;
  EXPECT_TRUE(check_sarif_roundtrip(fs, sarif, error)) << error;
}

TEST(ArchlintReport, SarifRoundTripCatchesMismatches) {
  const std::vector<Finding> fs =
      lint_source("src/hw/bad.cpp", "#include <unordered_map>\n");
  const std::string sarif = render(fs, Format::kSarif);
  std::string error;
  EXPECT_FALSE(check_sarif_roundtrip({}, sarif, error));  // count mismatch
  EXPECT_FALSE(check_sarif_roundtrip(fs, "{}", error));   // not SARIF
}

TEST(ArchlintReport, BaselineSuppressesAndCountsStaleEntries) {
  const std::vector<Finding> fs = lint_source(
      "src/hw/bad.cpp", "#include <unordered_map>\n#include <unordered_set>\n");
  ASSERT_EQ(fs.size(), 2u);
  Baseline b;
  b.entries.push_back(Baseline::Entry{Rule::kUnorderedIter, "src/hw/bad.cpp", 1});
  b.entries.push_back(Baseline::Entry{Rule::kUnorderedIter, "src/hw/other.cpp", 9});
  const BaselineResult r = apply_baseline(fs, b);
  EXPECT_EQ(r.kept.size(), 1u);
  EXPECT_EQ(r.suppressed, 1u);
  EXPECT_EQ(r.stale, 1u);
}

TEST(ArchlintReport, BaselineNeverMasksIoError) {
  const std::vector<Finding> fs{
      Finding{Rule::kIoError, "src/hw/gone.cpp", 1, "cannot read file"}};
  const BaselineResult r = apply_baseline(fs, Baseline::from_findings(fs));
  EXPECT_EQ(r.kept.size(), 1u);  // from_findings refuses io-error entries...
  Baseline forced;
  forced.entries.push_back(Baseline::Entry{Rule::kIoError, "src/hw/gone.cpp", 1});
  const BaselineResult r2 = apply_baseline(fs, forced);
  EXPECT_EQ(r2.kept.size(), 1u);  // ...and apply ignores them even if forced.
}

TEST(ArchlintReport, BaselineSerializeLoadRoundTrips) {
  namespace fs = std::filesystem;
  Baseline b;
  b.entries.push_back(Baseline::Entry{Rule::kFloatEq, "src/ai/mlp.cpp", 23});
  b.entries.push_back(Baseline::Entry{Rule::kMutableGlobal, "src/hw/x.cpp", 7});
  const fs::path file = fs::temp_directory_path() / "archlint_baseline_test.txt";
  {
    std::ofstream out(file, std::ios::binary);
    out << b.serialize();
  }
  Baseline loaded;
  std::string error;
  ASSERT_TRUE(Baseline::load(file, loaded, error)) << error;
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.entries[0].rule, Rule::kFloatEq);
  EXPECT_EQ(loaded.entries[0].path, "src/ai/mlp.cpp");
  EXPECT_EQ(loaded.entries[0].line, 23u);
  fs::remove(file);

  Baseline missing;
  EXPECT_FALSE(Baseline::load(fs::path("no/such/baseline.txt"), missing, error));
}

}  // namespace
}  // namespace hpc::lint
