#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "market/agents.hpp"
#include "market/exchange.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

/// \file test_core_cosim.cpp
/// Coupled co-simulation determinism: one seed, one clock, one digest.
///
/// The coupled scenario (workflow driver + WAN FlowSim + market exchange on a
/// shared sim::Engine) must be exactly reproducible: the same seed yields the
/// same engine digest, the same workflow outcomes, and byte-identical
/// observability artifacts — and attaching an observer must not change the
/// simulation (passivity).

namespace hpc {
namespace {

std::vector<fed::Site> make_sites() {
  fed::Site campus = fed::make_onprem_site(0, "campus", 8, 4);
  fed::Site center = fed::make_supercomputer_site(1, "center", 32);
  center.admin_domain = 0;
  fed::Site cloud = fed::make_cloud_site(2, "cloud", 32, 0.15);
  cloud.admin_domain = 0;
  return {campus, center, cloud};
}

/// Three parallel data-heavy shards (concurrent staging flows through the
/// campus uplink) fanned into one training task.
core::Workflow make_campaign(core::System& system) {
  std::vector<int> shard_tasks;
  core::Workflow wf;
  for (int s = 0; s < 3; ++s) {
    const int ds = system.catalog().add("shard-" + std::to_string(s), 50.0, 0, 0,
                                        data::Sensitivity::kInternal, "frames");
    core::Task analyze;
    analyze.name = "analyze-" + std::to_string(s);
    analyze.kind = core::TaskKind::kAnalyze;
    analyze.input_datasets = {ds};
    analyze.output_gb = 4.0;
    analyze.job.nodes = 4;
    analyze.job.total_gflop = 1e5;
    shard_tasks.push_back(wf.add(analyze));
  }
  core::Task train;
  train.name = "train";
  train.kind = core::TaskKind::kTrain;
  train.deps = shard_tasks;
  train.input_tasks = shard_tasks;
  train.output_gb = 1.0;
  train.job.nodes = 8;
  train.job.total_gflop = 2e5;
  wf.add(train);
  return wf;
}

void populate_market(market::Exchange& exchange) {
  sim::Rng rng(5);
  for (int s = 0; s < 4; ++s)
    exchange.add_agent(std::make_unique<market::ProviderAgent>(
        "p" + std::to_string(s), rng.uniform(0.6, 1.4), 3.0));
  for (int u = 0; u < 6; ++u)
    exchange.add_agent(std::make_unique<market::ConsumerAgent>(
        "u" + std::to_string(u), rng.uniform(0.9, 2.4), 2.0));
}

struct CoupledRun {
  core::CoupledResult result;
  double last_price = 0.0;
  std::string trace_json;
  std::string metrics_json;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void run_scenario(CoupledRun& run, std::uint64_t seed, bool observe, const std::string& tag) {
  core::System system(make_sites());
  obs::TraceRecorder trace;
  obs::MetricRegistry metrics;
  if (observe) {
    trace.set_enabled(true);
    system.set_observer(&trace, &metrics);
  }
  const core::Workflow wf = make_campaign(system);

  market::Exchange exchange(2026);
  populate_market(exchange);
  if (observe) exchange.set_observer(&trace, &metrics);
  exchange.set_cosim_clearing(sim::from_seconds(0.25), 20);

  core::CosimConfig cfg;
  cfg.seed = seed;
  cfg.price_fn = [&exchange] { return exchange.last_price(); };
  cfg.extra = {&exchange};

  run.result = system.run_coupled(wf, core::PlacementPolicy::kGravityAware, cfg);
  run.last_price = exchange.last_price();
  if (observe) {
    const std::string trace_path = testing::TempDir() + "cosim_trace_" + tag + ".json";
    const std::string metrics_path = testing::TempDir() + "cosim_metrics_" + tag + ".json";
    ASSERT_TRUE(trace.export_chrome_trace(trace_path)) << trace_path;
    ASSERT_TRUE(metrics.write_snapshot(metrics_path)) << metrics_path;
    run.trace_json = slurp(trace_path);
    run.metrics_json = slurp(metrics_path);
  }
}

void expect_same_workflow(const core::WorkflowResult& a, const core::WorkflowResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].site, b.outcomes[i].site) << i;
    EXPECT_EQ(a.outcomes[i].partition, b.outcomes[i].partition) << i;
    EXPECT_EQ(a.outcomes[i].start, b.outcomes[i].start) << i;
    EXPECT_EQ(a.outcomes[i].finish, b.outcomes[i].finish) << i;
    EXPECT_EQ(a.outcomes[i].cost_usd, b.outcomes[i].cost_usd) << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.wan_gb_moved, b.wan_gb_moved);
  EXPECT_EQ(a.total_cost_usd, b.total_cost_usd);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
}

TEST(CoreCosim, SameSeedSameDigestAndResults) {
  CoupledRun a;
  CoupledRun b;
  ASSERT_NO_FATAL_FAILURE(run_scenario(a, 42, /*observe=*/true, "a"));
  ASSERT_NO_FATAL_FAILURE(run_scenario(b, 42, /*observe=*/true, "b"));
  EXPECT_EQ(a.result.engine_digest, b.result.engine_digest);
  EXPECT_EQ(a.result.events_executed, b.result.events_executed);
  EXPECT_EQ(a.result.end_time, b.result.end_time);
  EXPECT_EQ(a.last_price, b.last_price);
  expect_same_workflow(a.result.workflow, b.result.workflow);
  ASSERT_EQ(a.result.wan.flows.size(), b.result.wan.flows.size());
  EXPECT_EQ(a.result.wan.makespan_ns, b.result.wan.makespan_ns);
}

TEST(CoreCosim, ArtifactsAreByteIdentical) {
  CoupledRun a;
  CoupledRun b;
  ASSERT_NO_FATAL_FAILURE(run_scenario(a, 42, /*observe=*/true, "c"));
  ASSERT_NO_FATAL_FAILURE(run_scenario(b, 42, /*observe=*/true, "d"));
  ASSERT_FALSE(a.trace_json.empty());
  ASSERT_FALSE(a.metrics_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(CoreCosim, ObserverIsPassive) {
  CoupledRun observed;
  CoupledRun blind;
  ASSERT_NO_FATAL_FAILURE(run_scenario(observed, 42, /*observe=*/true, "e"));
  ASSERT_NO_FATAL_FAILURE(run_scenario(blind, 42, /*observe=*/false, "f"));
  EXPECT_EQ(observed.result.engine_digest, blind.result.engine_digest);
  EXPECT_EQ(observed.result.events_executed, blind.result.events_executed);
  expect_same_workflow(observed.result.workflow, blind.result.workflow);
}

TEST(CoreCosim, ScenarioChangesDigest) {
  // The digest witnesses the executed event stream: any change to the
  // coupled scenario — here, dropping the market's clearing cadence —
  // must change it.  (The seed alone need not: on a minimally-routed star
  // none of the attached substrates draws a time-shifting random number.)
  CoupledRun with_market;
  ASSERT_NO_FATAL_FAILURE(run_scenario(with_market, 42, /*observe=*/false, "g"));

  core::System system(make_sites());
  const core::Workflow wf = make_campaign(system);
  core::CosimConfig cfg;
  cfg.seed = 42;
  const core::CoupledResult bare =
      system.run_coupled(wf, core::PlacementPolicy::kGravityAware, cfg);
  EXPECT_NE(with_market.result.engine_digest, bare.engine_digest);
  EXPECT_LT(bare.events_executed, with_market.result.events_executed);
}

TEST(CoreCosim, CoupledRunIsStructurallySound) {
  CoupledRun run;
  ASSERT_NO_FATAL_FAILURE(run_scenario(run, 42, /*observe=*/false, "i"));
  const core::WorkflowResult& wr = run.result.workflow;
  ASSERT_EQ(wr.outcomes.size(), 4u);

  double staged = 0.0;
  for (const core::TaskOutcome& o : wr.outcomes) {
    EXPECT_GE(o.site, 0) << "task " << o.task << " unplaced";
    EXPECT_GE(o.start, o.ready);
    EXPECT_GE(o.finish, o.start);
    staged += o.staged_gb;
  }
  EXPECT_DOUBLE_EQ(wr.wan_gb_moved, staged);
  // The fan-in task cannot start before its last shard finishes.
  const core::TaskOutcome& train = wr.outcomes[3];
  for (int s = 0; s < 3; ++s) EXPECT_GE(train.ready, wr.outcomes[s].finish);
  // Every staged gigabyte crossed the simulated fabric as a real flow.
  double flow_gb = 0.0;
  for (const net::FlowResult& f : run.result.wan.flows) flow_gb += f.spec.bytes / 1e9;
  EXPECT_DOUBLE_EQ(flow_gb, staged);
  // The shared clock runs to quiescence: past the workflow makespan and the
  // market's last clearing round (20 rounds x 250 ms).
  EXPECT_GE(run.result.end_time, wr.makespan);
  EXPECT_GE(run.result.end_time, 20 * sim::from_seconds(0.25));
}

TEST(CoreCosim, MarketCouplingPricesTasks) {
  // With clearing attached, tasks committing after the first cleared round
  // pay cost * last_price; the scenario's shards commit well after 250 ms of
  // simulated time, so at least one outcome must differ from the unpriced run.
  CoupledRun priced;
  ASSERT_NO_FATAL_FAILURE(run_scenario(priced, 42, /*observe=*/false, "j"));
  ASSERT_GT(priced.last_price, 0.0);

  core::System system(make_sites());
  const core::Workflow wf = make_campaign(system);
  core::CosimConfig cfg;
  cfg.seed = 42;  // no market attached: same fabric, unit pricing
  const core::CoupledResult unpriced =
      system.run_coupled(wf, core::PlacementPolicy::kGravityAware, cfg);

  ASSERT_EQ(priced.result.workflow.outcomes.size(), unpriced.workflow.outcomes.size());
  // Placement and timing are identical (the market only scales the bill)...
  for (std::size_t i = 0; i < unpriced.workflow.outcomes.size(); ++i) {
    EXPECT_EQ(priced.result.workflow.outcomes[i].site, unpriced.workflow.outcomes[i].site);
    EXPECT_EQ(priced.result.workflow.outcomes[i].finish,
              unpriced.workflow.outcomes[i].finish);
  }
  // ...but the bill reflects the cleared price.
  EXPECT_NE(priced.result.workflow.total_cost_usd, unpriced.workflow.total_cost_usd);
}

}  // namespace
}  // namespace hpc
