#include "net/flowsim.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace hpc::net {
namespace {

/// Two endpoints through one switch, 25 GB/s links.
Network pair_network() { return make_single_switch(2); }

TEST(FlowSim, SingleFlowGetsFullBandwidth) {
  const Network net = pair_network();
  FlowSim sim(net);
  const double bytes = 25e9;  // 1 second at 25 GB/s
  sim.add_flow({net.endpoints()[0], net.endpoints()[1], bytes, 0, 0});
  const FlowRunSummary out = sim.run();
  ASSERT_EQ(out.flows.size(), 1u);
  EXPECT_NEAR(out.flows[0].fct_ns, 1e9, 1e6);
  EXPECT_NEAR(out.flows[0].mean_rate_gbs, 25.0, 0.1);
}

TEST(FlowSim, TwoFlowsShareFairly) {
  const Network net = make_single_switch(3);
  FlowSim sim(net);
  // Both flows converge on endpoint 0's downlink: fair share 12.5 GB/s each.
  sim.add_flow({net.endpoints()[1], net.endpoints()[0], 12.5e9, 0, 0});
  sim.add_flow({net.endpoints()[2], net.endpoints()[0], 12.5e9, 0, 1});
  const FlowRunSummary out = sim.run();
  ASSERT_EQ(out.flows.size(), 2u);
  for (const FlowResult& f : out.flows) EXPECT_NEAR(f.fct_ns, 1e9, 1e7);
}

TEST(FlowSim, MaxMinSpareCapacityReallocated) {
  // Endpoints A,B -> C incast plus an independent flow A -> B.  The incast
  // flows bottleneck at C's downlink (12.5 each); A->B then fills A's uplink
  // remainder (12.5)... with ideal flow-based CC.
  const Network net = make_single_switch(3);
  const int a = net.endpoints()[0];
  const int b = net.endpoints()[1];
  const int c = net.endpoints()[2];
  FlowSim sim(net, CongestionControl::kFlowBased);
  sim.add_flow({a, c, 12.5e9, 0, 0});
  sim.add_flow({b, c, 12.5e9, 0, 0});
  sim.add_flow({a, b, 12.5e9, 0, 1});
  const FlowRunSummary out = sim.run();
  // A->C and B->C: share C downlink -> 12.5 each -> 1 s.
  // A->B: A uplink shared with A->C (12.5 left) -> 12.5 -> 1 s.
  for (const FlowResult& f : out.flows) EXPECT_NEAR(f.fct_ns, 1e9, 5e7) << f.spec.tag;
}

TEST(FlowSim, LaterArrivalsDelayCompletion) {
  const Network net = pair_network();
  FlowSim sim(net);
  const int a = net.endpoints()[0];
  const int b = net.endpoints()[1];
  sim.add_flow({a, b, 25e9, 0, 0});
  sim.add_flow({a, b, 25e9, 500'000'000, 1});  // arrives at 0.5 s
  const FlowRunSummary out = sim.run();
  ASSERT_EQ(out.flows.size(), 2u);
  // Total 50 GB over a 25 GB/s link: makespan 2 s regardless of sharing.
  EXPECT_NEAR(out.makespan_ns, 2e9, 5e7);
  EXPECT_NEAR(out.aggregate_throughput_gbs, 25.0, 0.5);
}

TEST(FlowSim, ZeroHopFlowCompletesImmediately) {
  const Network net = pair_network();
  FlowSim sim(net);
  const int a = net.endpoints()[0];
  sim.add_flow({a, a, 1e9, 100, 7});
  const FlowRunSummary out = sim.run();
  ASSERT_EQ(out.flows.size(), 1u);
  EXPECT_NEAR(out.flows[0].fct_ns, 0.0, 1.0);
}

TEST(FlowSim, CongestionTreeHurtsVictims) {
  // Incast across a two-switch fabric: 6 senders on switch A flood one
  // receiver on switch B, bottlenecking at the receiver's downlink.  A victim
  // flow (A -> B between two other hosts) shares only the fat trunk, which
  // has ample capacity: with flow-based CC the victim is untouched; without
  // it, the elephants' excess injection saturates trunk buffers (congestion
  // tree) and the victim collapses.
  auto victim_fct = [&](CongestionControl cc) {
    Network net;
    const int sw_a = net.add_node(NodeRole::kSwitch, "A");
    const int sw_b = net.add_node(NodeRole::kSwitch, "B");
    net.add_duplex_link(sw_a, sw_b, LinkClass::kEth200, 100.0);  // fat trunk
    std::vector<int> senders;
    for (int i = 0; i < 6; ++i) {
      senders.push_back(net.add_node(NodeRole::kEndpoint));
      net.add_duplex_link(senders.back(), sw_a, LinkClass::kEth200);
    }
    const int receiver = net.add_node(NodeRole::kEndpoint);
    net.add_duplex_link(receiver, sw_b, LinkClass::kEth200);
    const int victim_src = net.add_node(NodeRole::kEndpoint);
    net.add_duplex_link(victim_src, sw_a, LinkClass::kEth200);
    const int victim_dst = net.add_node(NodeRole::kEndpoint);
    net.add_duplex_link(victim_dst, sw_b, LinkClass::kEth200);
    net.build_routes();

    FlowSim sim(net, cc);
    for (const int s : senders) sim.add_flow({s, receiver, 25e9, 0, 0});
    sim.add_flow({victim_src, victim_dst, 2.5e9, 0, 1});
    const FlowRunSummary out = sim.run();
    return out.fct_sampler(1).mean();
  };

  const double with_cc = victim_fct(CongestionControl::kFlowBased);
  const double without_cc = victim_fct(CongestionControl::kNone);
  // With CC the victim gets its full 25 GB/s: 0.1 s.
  EXPECT_NEAR(with_cc, 1e8, 5e6);
  // Without CC the congestion tree must hurt the victim substantially.
  EXPECT_GT(without_cc, 2.0 * with_cc);
}

TEST(FlowSim, ValiantRoutingStillDelivers) {
  const Network net = make_dragonfly(4, 2, 2);
  FlowSim sim(net, CongestionControl::kFlowBased, Routing::kValiant, 99);
  const auto& h = net.endpoints();
  for (int i = 0; i < 10; ++i)
    sim.add_flow({h[static_cast<std::size_t>(i)],
                  h[static_cast<std::size_t>(i + 20)], 1e9, 0, i});
  const FlowRunSummary out = sim.run();
  EXPECT_EQ(out.flows.size(), 10u);
  for (const FlowResult& f : out.flows) EXPECT_GT(f.fct_ns, 0.0);
}

TEST(FlowSim, ResultsAreDeterministic) {
  auto once = [] {
    const Network net = make_dragonfly(4, 2, 2);
    FlowSim sim(net, CongestionControl::kNone, Routing::kMinimal, 5);
    const auto& h = net.endpoints();
    for (int i = 0; i < 20; ++i)
      sim.add_flow({h[static_cast<std::size_t>(i)],
                    h[static_cast<std::size_t>((i * 7 + 3) % h.size())],
                    1e9 * (i + 1), static_cast<sim::TimeNs>(i) * 1'000'000, i});
    return sim.run().makespan_ns;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

TEST(FlowRunSummary, TagFilteredSampler) {
  const Network net = pair_network();
  FlowSim sim(net);
  const int a = net.endpoints()[0];
  const int b = net.endpoints()[1];
  sim.add_flow({a, b, 1e9, 0, 1});
  sim.add_flow({a, b, 1e9, 0, 2});
  const FlowRunSummary out = sim.run();
  EXPECT_EQ(out.fct_sampler(1).count(), 1u);
  EXPECT_EQ(out.fct_sampler(2).count(), 1u);
  EXPECT_EQ(out.fct_sampler(-1).count(), 2u);
  EXPECT_EQ(out.fct_sampler(3).count(), 0u);
}

}  // namespace
}  // namespace hpc::net
