#include "net/network.hpp"

#include <gtest/gtest.h>

#include "net/link.hpp"

namespace hpc::net {
namespace {

/// A -- sw1 -- sw2 -- B line network.
Network line_network() {
  Network net;
  const int a = net.add_node(NodeRole::kEndpoint, "A");
  const int s1 = net.add_node(NodeRole::kSwitch, "s1");
  const int s2 = net.add_node(NodeRole::kSwitch, "s2");
  const int b = net.add_node(NodeRole::kEndpoint, "B");
  net.add_duplex_link(a, s1, LinkClass::kEth200);
  net.add_duplex_link(s1, s2, LinkClass::kEth200);
  net.add_duplex_link(s2, b, LinkClass::kEth200);
  net.build_routes();
  return net;
}

TEST(LinkTypes, CxlFarLowerLatencyThanPcie) {
  // The paper: "PCIe latencies are far too high for memory access".
  EXPECT_GT(link_type(LinkClass::kPcie4).latency_ns,
            4.0 * link_type(LinkClass::kCxl).latency_ns);
}

TEST(LinkTypes, GenerationsIncreaseBandwidth) {
  EXPECT_GT(link_type(LinkClass::kEth400).bandwidth_gbs,
            link_type(LinkClass::kEth200).bandwidth_gbs);
  EXPECT_GT(link_type(LinkClass::kPcie5).bandwidth_gbs,
            link_type(LinkClass::kPcie4).bandwidth_gbs);
}

TEST(Network, RouteFollowsLine) {
  const Network net = line_network();
  const std::vector<int> path = net.route(0, 3);
  EXPECT_EQ(path.size(), 3u);
  EXPECT_EQ(net.link(path.front()).from, 0);
  EXPECT_EQ(net.link(path.back()).to, 3);
  // Consecutive links chain.
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    EXPECT_EQ(net.link(path[i]).to, net.link(path[i + 1]).from);
}

TEST(Network, RouteToSelfIsEmpty) {
  const Network net = line_network();
  EXPECT_TRUE(net.route(0, 0).empty());
  EXPECT_EQ(net.hops(0, 0), 0);
}

TEST(Network, HopsSymmetricOnDuplex) {
  const Network net = line_network();
  EXPECT_EQ(net.hops(0, 3), 3);
  EXPECT_EQ(net.hops(3, 0), 3);
}

TEST(Network, EndpointDiameter) {
  const Network net = line_network();
  EXPECT_EQ(net.endpoint_diameter(), 3);
  EXPECT_DOUBLE_EQ(net.mean_endpoint_hops(), 3.0);
}

TEST(Network, RouteViaIntermediate) {
  Network net;
  const int a = net.add_node(NodeRole::kEndpoint);
  const int s1 = net.add_node(NodeRole::kSwitch);
  const int s2 = net.add_node(NodeRole::kSwitch);
  const int b = net.add_node(NodeRole::kEndpoint);
  net.add_duplex_link(a, s1, LinkClass::kEth200);
  net.add_duplex_link(a, s2, LinkClass::kEth200);
  net.add_duplex_link(s1, b, LinkClass::kEth200);
  net.add_duplex_link(s2, b, LinkClass::kEth200);
  net.build_routes();
  const std::vector<int> direct = net.route(a, b);
  const std::vector<int> via = net.route_via(a, s2, b);
  EXPECT_EQ(direct.size(), 2u);
  EXPECT_EQ(via.size(), 2u);
  EXPECT_EQ(net.link(via[0]).to, s2);
}

TEST(Network, MessageLatencyComponents) {
  const Network net = line_network();
  const LinkType t = link_type(LinkClass::kEth200);
  // 3 links + 2 switch traversals + serialization of 1 MB at 25 GB/s.
  const double expect = 3.0 * t.latency_ns + 2.0 * 100.0 + 1e6 / t.bandwidth_gbs;
  EXPECT_NEAR(net.message_latency_ns(0, 3, 1e6), expect, 1.0);
}

TEST(Network, MessageLatencyZeroForSelf) {
  const Network net = line_network();
  EXPECT_DOUBLE_EQ(net.message_latency_ns(2, 2, 1e9), 0.0);
}

TEST(Network, CostCountsSwitchesAndLinks) {
  const Network net = line_network();
  const double link_cost = 3.0 * link_type(LinkClass::kEth200).cost_usd;
  EXPECT_DOUBLE_EQ(net.total_cost_usd(10'000.0), link_cost + 2.0 * 10'000.0);
}

TEST(Network, DuplexLinkCounting) {
  const Network net = line_network();
  EXPECT_EQ(net.link_count(), 6u);  // 3 duplex pairs
  EXPECT_EQ(net.duplex_links_of(LinkClass::kEth200), 3u);
  EXPECT_EQ(net.duplex_links_of(LinkClass::kSiph), 0u);
}

TEST(Network, BandwidthOverrideRespected) {
  Network net;
  const int a = net.add_node(NodeRole::kEndpoint);
  const int b = net.add_node(NodeRole::kEndpoint);
  net.add_duplex_link(a, b, LinkClass::kEth200, 99.0, 10.0);
  net.build_routes();
  EXPECT_DOUBLE_EQ(net.link(0).bandwidth_gbs, 99.0);
  EXPECT_DOUBLE_EQ(net.link(0).latency_ns, 10.0);
}

TEST(Network, UnreachableThrows) {
  Network net;
  net.add_node(NodeRole::kEndpoint);
  net.add_node(NodeRole::kEndpoint);
  net.build_routes();
  EXPECT_EQ(net.hops(0, 1), -1);
  EXPECT_THROW(net.route(0, 1), std::runtime_error);
}

}  // namespace
}  // namespace hpc::net
