#include "market/forwards.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hpc::market {
namespace {

TEST(ForwardContract, BuyerPayoffSign) {
  const ForwardContract c{0, 1, 1.5, 10.0, 5};
  EXPECT_DOUBLE_EQ(c.buyer_payoff(2.0), 5.0);    // spot above strike: buyer wins
  EXPECT_DOUBLE_EQ(c.buyer_payoff(1.0), -5.0);   // spot below: buyer pays
  EXPECT_DOUBLE_EQ(c.buyer_payoff(1.5), 0.0);
}

TEST(ForwardBook, SettlesOnlyMaturedContracts) {
  ForwardBook book;
  book.add({0, 1, 1.0, 5.0, 3});
  book.add({2, 3, 1.2, 2.0, 7});
  EXPECT_EQ(book.open_contracts(), 2u);
  const auto settled = book.settle(3, 1.4);
  ASSERT_EQ(settled.size(), 1u);
  EXPECT_EQ(settled[0].buyer, 0);
  EXPECT_EQ(book.open_contracts(), 1u);
  EXPECT_DOUBLE_EQ(book.cash(0), 2.0);   // (1.4 - 1.0) * 5
  EXPECT_DOUBLE_EQ(book.cash(1), -2.0);
  EXPECT_DOUBLE_EQ(book.cash(2), 0.0);   // not yet delivered
}

TEST(ForwardBook, ZeroSumAlways) {
  ForwardBook book;
  sim::Rng rng(91);
  for (int i = 0; i < 50; ++i)
    book.add({static_cast<int>(rng.index(10)), static_cast<int>(rng.index(10)) + 10,
              rng.uniform(0.5, 2.0), rng.uniform(1.0, 20.0),
              static_cast<int>(rng.index(5))});
  for (int round = 0; round < 5; ++round) book.settle(round, rng.uniform(0.5, 2.5));
  EXPECT_EQ(book.open_contracts(), 0u);
  EXPECT_NEAR(book.imbalance(), 0.0, 1e-9);
}

TEST(Hedge, RemovesPriceRisk) {
  sim::Rng rng(92);
  const HedgeOutcome h = evaluate_hedge(1.5, 0.05, 20, 100.0, 500, rng);
  // The hedged cost is exactly strike * quantity on every path.
  EXPECT_NEAR(h.stdev_hedged, 0.0, 1e-9);
  EXPECT_NEAR(h.mean_hedged, 1.5 * 100.0, 1e-6);
  // The unhedged cost is volatile.
  EXPECT_GT(h.stdev_unhedged, 10.0);
  // Without drift the *mean* costs agree: hedging trades variance, not level.
  EXPECT_NEAR(h.mean_unhedged, h.mean_hedged, 3.0 * h.stdev_unhedged / std::sqrt(500.0));
}

TEST(Hedge, MoreVolatilityMoreBenefit) {
  sim::Rng r1(93);
  sim::Rng r2(93);
  const HedgeOutcome calm = evaluate_hedge(1.5, 0.02, 20, 100.0, 300, r1);
  const HedgeOutcome wild = evaluate_hedge(1.5, 0.10, 20, 100.0, 300, r2);
  EXPECT_GT(wild.stdev_unhedged, 3.0 * calm.stdev_unhedged);
  EXPECT_NEAR(wild.stdev_hedged, 0.0, 1e-9);
}

}  // namespace
}  // namespace hpc::market
