#include "hw/facility.hpp"

#include <gtest/gtest.h>

#include "hw/catalog.hpp"

namespace hpc::hw {
namespace {

TEST(Cooling, SpecsOrderedByDensity) {
  EXPECT_LT(cooling_spec(Cooling::kAirCooled).max_rack_kw,
            cooling_spec(Cooling::kRearDoor).max_rack_kw);
  EXPECT_LT(cooling_spec(Cooling::kRearDoor).max_rack_kw,
            cooling_spec(Cooling::kDirectLiquid).max_rack_kw);
}

TEST(Cooling, BetterCoolingBetterPue) {
  EXPECT_GT(cooling_spec(Cooling::kAirCooled).pue,
            cooling_spec(Cooling::kDirectLiquid).pue);
  EXPECT_GE(cooling_spec(Cooling::kDirectLiquid).pue, 1.0);
}

TEST(Cooling, PaperAnchor400kwRack) {
  // Section II.C: "very high-density racks, up to 400 kW per rack".
  EXPECT_DOUBLE_EQ(cooling_spec(Cooling::kDirectLiquid).max_rack_kw, 400.0);
}

TEST(RackPacking, CountsAgainstCap) {
  const RackPlan air = pack_rack(gpu_hpc_spec(), cooling_spec(Cooling::kAirCooled));
  // 20 kW / 400 W = 50 GPUs.
  EXPECT_EQ(air.devices_per_rack, 50);
  EXPECT_NEAR(air.rack_it_kw, 20.0, 0.4);
  const RackPlan liquid = pack_rack(gpu_hpc_spec(), cooling_spec(Cooling::kDirectLiquid));
  EXPECT_EQ(liquid.devices_per_rack, 1'000);
}

TEST(RackPacking, WaferScaleNeedsLiquid) {
  // A 20 kW wafer-scale engine consumes an entire air-cooled rack by itself;
  // direct liquid hosts twenty of them.
  const RackPlan air = pack_rack(wafer_scale_spec(), cooling_spec(Cooling::kAirCooled));
  EXPECT_LE(air.devices_per_rack, 1);
  const RackPlan liquid = pack_rack(wafer_scale_spec(), cooling_spec(Cooling::kDirectLiquid));
  EXPECT_EQ(liquid.devices_per_rack, 20);
}

TEST(Facility, BudgetRespected) {
  const RackPlan rack = pack_rack(gpu_hpc_spec(), cooling_spec(Cooling::kDirectLiquid));
  const FacilityPlan plan = plan_facility(rack, 35.0);  // the paper's 30-40 MW
  EXPECT_GT(plan.racks, 0);
  EXPECT_LE(plan.facility_mw, 35.0 + 1e-9);
  EXPECT_GT(plan.facility_mw, 30.0);  // packing is tight at this scale
  EXPECT_NEAR(plan.facility_mw, plan.it_mw * rack.cooling.pue, 1e-9);
}

TEST(Facility, BetterCoolingMoreDevicesPerMw) {
  const FacilityPlan air =
      plan_facility(pack_rack(gpu_hpc_spec(), cooling_spec(Cooling::kAirCooled)), 10.0);
  const FacilityPlan liquid = plan_facility(
      pack_rack(gpu_hpc_spec(), cooling_spec(Cooling::kDirectLiquid)), 10.0);
  EXPECT_GT(liquid.devices, air.devices);
}

TEST(Facility, EnergyCostScalesWithPower) {
  const RackPlan rack = pack_rack(cpu_server_spec(), cooling_spec(Cooling::kRearDoor));
  const FacilityPlan small = plan_facility(rack, 5.0);
  const FacilityPlan large = plan_facility(rack, 20.0);
  EXPECT_NEAR(large.annual_energy_cost_usd / small.annual_energy_cost_usd,
              large.facility_mw / small.facility_mw, 1e-9);
}

TEST(Facility, ZeroPowerDeviceSafe) {
  DeviceSpec ghost = cpu_server_spec();
  ghost.tdp_w = 0.0;
  const RackPlan rack = pack_rack(ghost, cooling_spec(Cooling::kAirCooled));
  EXPECT_EQ(rack.devices_per_rack, 0);
  const FacilityPlan plan = plan_facility(rack, 10.0);
  EXPECT_EQ(plan.racks, 0);
}

}  // namespace
}  // namespace hpc::hw
