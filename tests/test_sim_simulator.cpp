#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace hpc::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(kMillisecond), 1.0);
  EXPECT_DOUBLE_EQ(to_micros(kMicrosecond), 1.0);
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000u);
  EXPECT_EQ(from_seconds(-3.0), 0u);
  EXPECT_EQ(kHour, 3'600u * kSecond);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300u);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule_at(50, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  TimeNs seen = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { seen = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  TimeNs seen = 0;
  sim.schedule_at(100, [&] { sim.schedule_in(50, [&] { seen = sim.now(); }); });
  sim.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(200, [&] { ++fired; });
  sim.run_until(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 150u);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(20, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, StepExecutesExactlyN) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) sim.schedule_at(static_cast<TimeNs>(i), [&] { ++fired; });
  EXPECT_EQ(sim.step(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.step(10), 2u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.step(), 0u);
}

TEST(Simulator, ScheduleEveryRepeatsUntilFalse) {
  Simulator sim;
  int count = 0;
  sim.schedule_every(10, [&] {
    ++count;
    return count < 4;
  });
  sim.run();
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.now(), 40u);
}

TEST(Simulator, NestedSchedulingDuringRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99u);
}

TEST(Simulator, EmptyRunIsNoop) {
  Simulator sim;
  sim.run();
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500u);
}

}  // namespace
}  // namespace hpc::sim
