#include "core/workflow.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hpc::core {
namespace {

Task simple_task(std::string name, TaskKind kind, std::vector<int> deps = {}) {
  Task t;
  t.name = std::move(name);
  t.kind = kind;
  t.deps = std::move(deps);
  t.job.nodes = 1;
  t.job.total_gflop = 1e3;
  return t;
}

TEST(Workflow, AddAssignsIds) {
  Workflow wf;
  const int a = wf.add(simple_task("a", TaskKind::kSimulate));
  const int b = wf.add(simple_task("b", TaskKind::kTrain, {a}));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(wf.size(), 2u);
}

TEST(Workflow, DefaultMixFilledFromKind) {
  Workflow wf;
  const int t = wf.add(simple_task("train", TaskKind::kTrain));
  const Task& task = wf.task(t);
  EXPECT_GT(task.job.mix[static_cast<std::size_t>(hw::OpClass::kGemm)], 0.5);
  EXPECT_EQ(task.job.precision, hw::Precision::BF16);
}

TEST(Workflow, ExplicitMixPreserved) {
  Workflow wf;
  Task t = simple_task("custom", TaskKind::kTrain);
  t.job.mix = sched::pure_mix(hw::OpClass::kFft);
  t.job.precision = hw::Precision::FP64;
  const int id = wf.add(std::move(t));
  EXPECT_DOUBLE_EQ(wf.task(id).job.mix[static_cast<std::size_t>(hw::OpClass::kFft)], 1.0);
  EXPECT_EQ(wf.task(id).job.precision, hw::Precision::FP64);
}

TEST(Workflow, ForwardDependencyRejected) {
  Workflow wf;
  EXPECT_THROW(wf.add(simple_task("bad", TaskKind::kSimulate, {0})), std::runtime_error);
  wf.add(simple_task("a", TaskKind::kSimulate));
  EXPECT_THROW(wf.add(simple_task("self", TaskKind::kSimulate, {1})), std::runtime_error);
}

TEST(Workflow, TopologicalOrderRespectsDeps) {
  Workflow wf;
  const int a = wf.add(simple_task("a", TaskKind::kIngest));
  const int b = wf.add(simple_task("b", TaskKind::kSimulate, {a}));
  const int c = wf.add(simple_task("c", TaskKind::kTrain, {a, b}));
  const std::vector<int> order = wf.topological_order();
  ASSERT_EQ(order.size(), 3u);
  // For each task, deps appear earlier in the order.
  std::vector<int> pos(order.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  for (const Task& t : wf.tasks())
    for (const int d : t.deps)
      EXPECT_LT(pos[static_cast<std::size_t>(d)], pos[static_cast<std::size_t>(t.id)]);
  (void)b;
  (void)c;
}

TEST(Workflow, CriticalPath) {
  Workflow wf;
  const int a = wf.add(simple_task("a", TaskKind::kIngest));
  const int b = wf.add(simple_task("b", TaskKind::kSimulate, {a}));
  wf.add(simple_task("c", TaskKind::kInfer, {a}));  // parallel branch
  const int d = wf.add(simple_task("d", TaskKind::kTrain, {b}));
  wf.add(simple_task("e", TaskKind::kAnalyze, {d}));
  EXPECT_EQ(wf.critical_path_length(), 4);  // a->b->d->e
}

TEST(Workflow, EmptyWorkflow) {
  const Workflow wf;
  EXPECT_EQ(wf.critical_path_length(), 0);
  EXPECT_TRUE(wf.topological_order().empty());
}

TEST(Workflow, KindNamesAndDefaults) {
  EXPECT_EQ(name_of(TaskKind::kSimulate), "simulate");
  EXPECT_EQ(name_of(TaskKind::kIngest), "ingest");
  EXPECT_EQ(default_precision(TaskKind::kInfer), hw::Precision::INT8);
  const sched::OpMix mix = default_mix(TaskKind::kAnalyze);
  double sum = 0.0;
  for (const double v : mix) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace hpc::core
