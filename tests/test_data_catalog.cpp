#include "data/catalog.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hpc::data {
namespace {

/// Trivial oracle: 1 ns per GB per site-distance.
double oracle(int from, int to, double gb) {
  return std::abs(from - to) * gb;
}

TEST(Catalog, AddAndGet) {
  Catalog cat;
  const int id = cat.add("raw", 100.0, 0, 0, Sensitivity::kPublic, "frames");
  const DatasetMeta& m = cat.get(id);
  EXPECT_EQ(m.name, "raw");
  EXPECT_DOUBLE_EQ(m.size_gb, 100.0);
  EXPECT_EQ(m.replica_sites, std::vector<int>{0});
  EXPECT_EQ(cat.size(), 1u);
}

TEST(Catalog, UnknownIdThrows) {
  Catalog cat;
  EXPECT_THROW(cat.get(0), std::out_of_range);
  EXPECT_THROW(cat.get(-1), std::out_of_range);
}

TEST(Catalog, LineageAncestors) {
  Catalog cat;
  const int raw = cat.add("raw", 10.0, 0, 0, Sensitivity::kPublic, "");
  const int clean = cat.derive("clean", {raw}, "denoise", 8.0, 0, 0, Sensitivity::kPublic);
  const int model = cat.derive("model", {clean}, "train", 1.0, 1, 0, Sensitivity::kPublic);
  const std::vector<int> anc = cat.ancestors(model);
  ASSERT_EQ(anc.size(), 2u);
  EXPECT_EQ(anc[0], clean);  // nearest first
  EXPECT_EQ(anc[1], raw);
  EXPECT_TRUE(cat.ancestors(raw).empty());
}

TEST(Catalog, DiamondLineageDeduplicated) {
  Catalog cat;
  const int raw = cat.add("raw", 10.0, 0, 0, Sensitivity::kPublic, "");
  const int a = cat.derive("a", {raw}, "fa", 1.0, 0, 0, Sensitivity::kPublic);
  const int b = cat.derive("b", {raw}, "fb", 1.0, 0, 0, Sensitivity::kPublic);
  const int join = cat.derive("join", {a, b}, "merge", 1.0, 0, 0, Sensitivity::kPublic);
  const std::vector<int> anc = cat.ancestors(join);
  EXPECT_EQ(anc.size(), 3u);  // a, b, raw — raw only once
  EXPECT_EQ(std::count(anc.begin(), anc.end(), raw), 1);
}

TEST(Catalog, Descendants) {
  Catalog cat;
  const int raw = cat.add("raw", 10.0, 0, 0, Sensitivity::kPublic, "");
  const int a = cat.derive("a", {raw}, "fa", 1.0, 0, 0, Sensitivity::kPublic);
  const int b = cat.derive("b", {a}, "fb", 1.0, 0, 0, Sensitivity::kPublic);
  const std::vector<int> desc = cat.descendants(raw);
  EXPECT_EQ(desc.size(), 2u);
  EXPECT_NE(std::find(desc.begin(), desc.end(), a), desc.end());
  EXPECT_NE(std::find(desc.begin(), desc.end(), b), desc.end());
}

TEST(Catalog, DeriveUnknownParentThrows) {
  Catalog cat;
  EXPECT_THROW(cat.derive("x", {42}, "f", 1.0, 0, 0, Sensitivity::kPublic),
               std::out_of_range);
}

TEST(Catalog, ProvenanceRootsFirst) {
  Catalog cat;
  const int raw = cat.add("raw", 10.0, 0, 0, Sensitivity::kPublic, "");
  const int clean = cat.derive("clean", {raw}, "denoise", 8.0, 0, 0, Sensitivity::kPublic);
  const auto chain = cat.provenance(clean);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].dataset, raw);
  EXPECT_NE(chain[0].description.find("source"), std::string::npos);
  EXPECT_NE(chain[1].description.find("denoise"), std::string::npos);
}

TEST(Governance, PublicMovesAnywhere) {
  Catalog cat;
  const int id = cat.add("pub", 1.0, 0, 0, Sensitivity::kPublic, "");
  EXPECT_TRUE(cat.may_move_to(id, 5, 99));
}

TEST(Governance, InternalStaysInDomain) {
  Catalog cat;
  const int id = cat.add("int", 1.0, 0, 7, Sensitivity::kInternal, "");
  EXPECT_TRUE(cat.may_move_to(id, 3, 7));
  EXPECT_FALSE(cat.may_move_to(id, 3, 8));
}

TEST(Governance, RestrictedPinnedToHome) {
  Catalog cat;
  const int id = cat.add("secret", 1.0, 2, 0, Sensitivity::kRestricted, "");
  EXPECT_TRUE(cat.may_move_to(id, 2, 0));
  EXPECT_FALSE(cat.may_move_to(id, 3, 0));
}

TEST(Replicas, CheapestReplicaChosen) {
  Catalog cat;
  const int id = cat.add("d", 10.0, 0, 0, Sensitivity::kPublic, "");
  cat.add_replica(id, 4);
  // Destination site 5: replica at 4 costs 10, home at 0 costs 50.
  const auto choice = cat.cheapest_replica(id, 5, 0, oracle);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->from_site, 4);
  EXPECT_DOUBLE_EQ(choice->transfer_ns, 10.0);
}

TEST(Replicas, LocalReplicaIsFree) {
  Catalog cat;
  const int id = cat.add("d", 10.0, 0, 0, Sensitivity::kPublic, "");
  cat.add_replica(id, 3);
  const auto choice = cat.cheapest_replica(id, 3, 0, oracle);
  ASSERT_TRUE(choice.has_value());
  EXPECT_DOUBLE_EQ(choice->transfer_ns, 0.0);
}

TEST(Replicas, DuplicateAddIgnored) {
  Catalog cat;
  const int id = cat.add("d", 10.0, 0, 0, Sensitivity::kPublic, "");
  cat.add_replica(id, 0);
  cat.add_replica(id, 1);
  cat.add_replica(id, 1);
  EXPECT_EQ(cat.get(id).replica_sites.size(), 2u);
}

TEST(Replicas, GovernanceBlocksChoice) {
  Catalog cat;
  const int id = cat.add("d", 10.0, 0, 0, Sensitivity::kRestricted, "");
  EXPECT_FALSE(cat.cheapest_replica(id, 1, 0, oracle).has_value());
}

TEST(Staging, PlanAccumulatesAndReportsUnmovable) {
  Catalog cat;
  const int pub = cat.add("pub", 10.0, 0, 0, Sensitivity::kPublic, "");
  const int local = cat.add("loc", 5.0, 2, 0, Sensitivity::kPublic, "");
  const int secret = cat.add("sec", 1.0, 0, 0, Sensitivity::kRestricted, "");
  const auto plan = cat.plan_staging({pub, local, secret}, 2, 0, oracle);
  EXPECT_DOUBLE_EQ(plan.total_gb, 10.0);  // pub moves; loc already there
  EXPECT_DOUBLE_EQ(plan.total_ns, 20.0);  // 2 sites x 10 GB
  ASSERT_EQ(plan.unmovable.size(), 1u);
  EXPECT_EQ(plan.unmovable[0], secret);
}

}  // namespace
}  // namespace hpc::data
