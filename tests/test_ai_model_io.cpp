#include "ai/model_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "ai/datasets.hpp"
#include "ai/exec.hpp"

namespace hpc::ai {
namespace {

TEST(ModelIo, RoundTripPreservesOutputsExactly) {
  sim::Rng rng(61);
  const Dataset data = make_blobs(400, 3, 2, 0.5, rng);
  Mlp model({2, 16, 3}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  TrainConfig cfg;
  cfg.epochs = 20;
  model.train(data, cfg, rng);

  const Mlp restored = from_text(to_text(model));
  EXPECT_EQ(restored.input_size(), model.input_size());
  EXPECT_EQ(restored.output_size(), model.output_size());
  EXPECT_EQ(restored.hidden_activation(), model.hidden_activation());
  EXPECT_EQ(restored.loss(), model.loss());
  for (std::int64_t i = 0; i < data.n; i += 17) {
    const auto a = model.forward(data.input(i));
    const auto b = restored.forward(data.input(i));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_FLOAT_EQ(a[k], b[k]) << i;
  }
}

TEST(ModelIo, RoundTripRegressionModel) {
  sim::Rng rng(62);
  Mlp model({3, 8, 1}, Activation::kTanh, Loss::kMse, rng);
  const Mlp restored = from_text(to_text(model));
  const std::vector<float> x{0.1f, 0.2f, 0.3f};
  EXPECT_FLOAT_EQ(model.forward(x)[0], restored.forward(x)[0]);
}

TEST(ModelIo, DecouplesTrainingFromQuantizedInference) {
  // The ONNX story: train at the core, ship the artifact, run it through a
  // different executor at the edge.
  sim::Rng rng(63);
  const Dataset data = make_blobs(600, 3, 2, 0.5, rng);
  Mlp model({2, 24, 3}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  TrainConfig cfg;
  cfg.epochs = 40;
  model.train(data, cfg, rng);

  const Mlp shipped = from_text(to_text(model));
  QuantizedExecutor int8(hw::Precision::INT8);
  EXPECT_GT(accuracy_with(shipped, data, int8), model.accuracy(data) - 0.05);
}

TEST(ModelIo, RejectsGarbage) {
  EXPECT_THROW(from_text(""), std::runtime_error);
  EXPECT_THROW(from_text("not-a-model 1"), std::runtime_error);
  EXPECT_THROW(from_text("archipelago-mlp 99\n0 0\n1\n"), std::runtime_error);
}

TEST(ModelIo, RejectsTruncatedWeights) {
  sim::Rng rng(64);
  Mlp model({2, 4, 2}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  std::string text = to_text(model);
  text.resize(text.size() / 2);
  EXPECT_THROW(from_text(text), std::runtime_error);
}

TEST(ModelIo, StreamInterface) {
  sim::Rng rng(65);
  Mlp model({2, 4, 2}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  std::stringstream ss;
  write_text(ss, model);
  const Mlp restored = read_text(ss);
  EXPECT_EQ(restored.parameter_count(), model.parameter_count());
}

}  // namespace
}  // namespace hpc::ai
