/// Deadline-aware (EDF) scheduling tests — the SLA machinery the paper's
/// as-a-Service delivery model needs (Sections II.C, III.F).

#include <gtest/gtest.h>

#include "sched/scheduler.hpp"
#include "sched/workload.hpp"

namespace hpc::sched {
namespace {

Job sized_job(int id, sim::TimeNs arrival, double gflop, sim::TimeNs deadline = 0) {
  Job j;
  j.id = id;
  j.arrival = arrival;
  j.mix = pure_mix(hw::OpClass::kGemm);
  j.precision = hw::Precision::BF16;
  j.total_gflop = gflop;
  j.nodes = 1;
  j.deadline = deadline;
  return j;
}

TEST(DeadlineAware, UrgentJobJumpsTheQueue) {
  // One node; a long job is running; two queued jobs — the later-arriving one
  // has a tight deadline and must start first under EDF.
  ClusterSim sim(make_homogeneous_cpu_cluster(1), Policy::kDeadlineAware);
  sim.add_job(sized_job(0, 0, 1e7));                                // running
  sim.add_job(sized_job(1, 1, 1e6, sim::from_seconds(1e6)));        // lax
  sim.add_job(sized_job(2, 2, 1e6, sim::from_seconds(10.0)));       // urgent
  const ScheduleResult r = sim.run();
  EXPECT_LT(r.placements[2].start, r.placements[1].start);
}

TEST(DeadlineAware, NoDeadlineJobsGoLast) {
  ClusterSim sim(make_homogeneous_cpu_cluster(1), Policy::kDeadlineAware);
  sim.add_job(sized_job(0, 0, 1e7));                                // running
  sim.add_job(sized_job(1, 1, 1e6));                                // no SLA
  sim.add_job(sized_job(2, 2, 1e6, sim::from_seconds(1e5)));        // SLA
  const ScheduleResult r = sim.run();
  EXPECT_LT(r.placements[2].start, r.placements[1].start);
}

TEST(DeadlineAware, FewerViolationsThanFcfs) {
  auto violations = [](Policy policy) {
    sim::Rng rng(81);
    WorkloadConfig cfg;
    cfg.jobs = 150;
    cfg.mean_interarrival_s = 4.0;
    cfg.max_nodes = 4;
    cfg.deadline_slack = 6.0;  // tight-ish SLAs
    ClusterSim sim(make_cpu_gpu_cluster(4, 4), policy, 5);
    sim.add_jobs(generate_workload(cfg, rng));
    return sim.run().sla_violations;
  };
  EXPECT_LE(violations(Policy::kDeadlineAware), violations(Policy::kFcfsSkip));
}

TEST(DeadlineAware, PicksFastestPartition) {
  ClusterSim sim(make_cpu_gpu_cluster(2, 2), Policy::kDeadlineAware);
  Job j = sized_job(0, 0, 1e6, sim::from_seconds(30.0));
  sim.add_job(j);
  const ScheduleResult r = sim.run();
  EXPECT_EQ(r.placements[0].partition, 1);  // GPU: fastest for GEMM
}

TEST(DeadlineAware, StillDeterministic) {
  auto once = [] {
    sim::Rng rng(82);
    WorkloadConfig cfg;
    cfg.jobs = 60;
    cfg.deadline_slack = 4.0;
    ClusterSim sim(make_diversified_cluster(4, 4, 2, 1, 1), Policy::kDeadlineAware, 9);
    sim.add_jobs(generate_workload(cfg, rng));
    return sim.run().makespan;
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace hpc::sched
