#include "ai/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hpc::ai {
namespace {

TEST(Linalg, MatvecKnownResult) {
  // W = [[1,2],[3,4]], x = [5,6] -> y = [17, 39].
  const std::vector<float> w{1, 2, 3, 4};
  const std::vector<float> x{5, 6};
  std::vector<float> y(2);
  matvec(w, 2, 2, x, y);
  EXPECT_FLOAT_EQ(y[0], 17.0f);
  EXPECT_FLOAT_EQ(y[1], 39.0f);
}

TEST(Linalg, MatvecRectangular) {
  // W: 1x3.
  const std::vector<float> w{1, 2, 3};
  const std::vector<float> x{1, 1, 1};
  std::vector<float> y(1);
  matvec(w, 1, 3, x, y);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
}

TEST(Linalg, MatvecTransposedKnownResult) {
  // W = [[1,2],[3,4]] (2x2), x = [5,6] -> W^T x = [23, 34].
  const std::vector<float> w{1, 2, 3, 4};
  const std::vector<float> x{5, 6};
  std::vector<float> y(2);
  matvec_transposed(w, 2, 2, x, y);
  EXPECT_FLOAT_EQ(y[0], 23.0f);
  EXPECT_FLOAT_EQ(y[1], 34.0f);
}

TEST(Linalg, AddOuterAccumulates) {
  std::vector<float> w{0, 0, 0, 0};
  const std::vector<float> a{1, 2};
  const std::vector<float> b{3, 4};
  add_outer(w, 2, 2, a, b, 2.0f);
  EXPECT_FLOAT_EQ(w[0], 6.0f);   // 2*1*3
  EXPECT_FLOAT_EQ(w[1], 8.0f);   // 2*1*4
  EXPECT_FLOAT_EQ(w[2], 12.0f);  // 2*2*3
  EXPECT_FLOAT_EQ(w[3], 16.0f);  // 2*2*4
}

TEST(Linalg, Axpy) {
  std::vector<float> dst{1, 2};
  const std::vector<float> src{10, 20};
  axpy(dst, src, 0.5f);
  EXPECT_FLOAT_EQ(dst[0], 6.0f);
  EXPECT_FLOAT_EQ(dst[1], 12.0f);
}

TEST(Linalg, Norm2) {
  const std::vector<float> v{3, 4};
  EXPECT_FLOAT_EQ(norm2(v), 5.0f);
  EXPECT_FLOAT_EQ(norm2(std::vector<float>{}), 0.0f);
}

TEST(Linalg, RmsError) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{1, 2, 5};
  EXPECT_NEAR(rms_error(a, b), std::sqrt(4.0 / 3.0), 1e-6);
  EXPECT_FLOAT_EQ(rms_error(a, a), 0.0f);
}

TEST(Linalg, Argmax) {
  EXPECT_EQ(argmax(std::vector<float>{1, 5, 3}), 1u);
  EXPECT_EQ(argmax(std::vector<float>{-1, -5, -3}), 0u);
  EXPECT_EQ(argmax(std::vector<float>{}), 0u);
}

TEST(Linalg, SoftmaxSumsToOne) {
  std::vector<float> v{1, 2, 3, 4};
  softmax(v);
  float sum = 0.0f;
  for (const float x : v) {
    sum += x;
    EXPECT_GT(x, 0.0f);
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(v[3], v[0]);
}

TEST(Linalg, SoftmaxStableForLargeValues) {
  std::vector<float> v{1000.0f, 1001.0f};
  softmax(v);
  EXPECT_FALSE(std::isnan(v[0]));
  EXPECT_NEAR(v[0] + v[1], 1.0f, 1e-6f);
  EXPECT_GT(v[1], v[0]);
}

}  // namespace
}  // namespace hpc::ai
