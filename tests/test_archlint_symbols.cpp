#include "lexer.hpp"
#include "lint.hpp"
#include "report.hpp"
#include "semantic.hpp"
#include "symbols.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

// Symbol-indexer and semantic-pass (D10-D14) tests.  Like test_archlint.cpp,
// every fixture spells its violations inside ordinary string literals, so
// this file stays clean under the archlint_tree gate while the in-memory
// corpora exercise the extractor and every semantic rule.

namespace hpc::lint {
namespace {

std::size_t count_rule(const std::vector<Finding>& fs, Rule r) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(), [r](const Finding& f) { return f.rule == r; }));
}

bool has_rule(const std::vector<Finding>& fs, Rule r) { return count_rule(fs, r) > 0; }

FileSymbols extract(const char* path, const char* text) {
  return extract_symbols(path, lex(text));
}

SymbolIndex make_index(std::vector<std::pair<const char*, const char*>> files) {
  std::vector<FileSymbols> fs;
  fs.reserve(files.size());
  for (const auto& [path, text] : files) fs.push_back(extract(path, text));
  return SymbolIndex::build(std::move(fs));
}

std::vector<Finding> judge(std::vector<std::pair<const char*, const char*>> files) {
  return check_semantics(make_index(std::move(files)), RuleSet::all(), SemanticConfig{});
}

const FileSymbols::Func* find_fn(const FileSymbols& fs, std::string_view name) {
  for (const FileSymbols::Func& f : fs.functions)
    if (f.name == name) return &f;
  return nullptr;
}

// ------------------------------------------------------------ extraction ----

TEST(ArchlintSymbols, FreeFunctionDeclAndDef) {
  const FileSymbols fs = extract("src/core/a.cpp",
                                 "namespace hpc::core {\n"
                                 "int parse_flags(int argc);\n"
                                 "int parse_flags(int argc) { return argc; }\n"
                                 "}\n");
  ASSERT_EQ(fs.functions.size(), 2u);
  EXPECT_EQ(fs.functions[0].name, "parse_flags");
  EXPECT_EQ(fs.functions[0].scope, "hpc::core");
  EXPECT_EQ(fs.functions[0].line, 2u);
  EXPECT_FALSE(fs.functions[0].is_definition);
  EXPECT_TRUE(fs.functions[1].is_definition);
  EXPECT_EQ(fs.functions[1].line, 3u);
}

TEST(ArchlintSymbols, OutOfLineMemberDefinitionGetsQualifiedScope) {
  const FileSymbols fs = extract("src/sim/e.cpp",
                                 "namespace hpc::sim {\n"
                                 "TimeNs Engine::now() const { return now_; }\n"
                                 "void Engine::step(int n) { n_ += n; }\n"
                                 "}\n");
  ASSERT_EQ(fs.functions.size(), 2u);
  EXPECT_EQ(fs.functions[0].name, "now");
  EXPECT_EQ(fs.functions[0].scope, "hpc::sim::Engine");
  EXPECT_TRUE(fs.functions[0].is_definition);
  EXPECT_EQ(fs.functions[1].name, "step");
  EXPECT_EQ(fs.functions[1].scope, "hpc::sim::Engine");
}

TEST(ArchlintSymbols, ClassMembersTemplatesAndOperators) {
  const FileSymbols fs = extract("src/core/w.hpp",
                                 "namespace hpc::core {\n"
                                 "template <typename T>\n"
                                 "struct Slot {\n"
                                 "  Slot() = default;\n"
                                 "  ~Slot();\n"
                                 "  T get() const;\n"
                                 "  bool operator==(const Slot& o) const;\n"
                                 "};\n"
                                 "template <typename T>\n"
                                 "T Slot<T>::get() const { return T{}; }\n"
                                 "}\n");
  ASSERT_EQ(fs.types.size(), 1u);
  EXPECT_EQ(fs.types[0].name, "Slot");

  const FileSymbols::Func* ctor = find_fn(fs, "Slot");
  ASSERT_NE(ctor, nullptr);
  EXPECT_TRUE(ctor->is_defaulted);
  EXPECT_EQ(ctor->scope, "hpc::core::Slot");

  const FileSymbols::Func* dtor = find_fn(fs, "~Slot");
  ASSERT_NE(dtor, nullptr);
  EXPECT_FALSE(dtor->is_definition);

  const FileSymbols::Func* eq = find_fn(fs, "operator==");
  ASSERT_NE(eq, nullptr);
  EXPECT_TRUE(eq->is_operator);

  // Both the in-class declaration and the out-of-line template definition.
  std::size_t gets = 0;
  for (const FileSymbols::Func& f : fs.functions)
    if (f.name == "get") ++gets;
  EXPECT_EQ(gets, 2u);
}

TEST(ArchlintSymbols, RawStringRedHerringIsInvisible) {
  const FileSymbols fs = extract("src/core/r.cpp",
                                 "const char* kDoc = R\"(int fake_fn(int);)\";\n"
                                 "int real_fn();\n");
  EXPECT_EQ(find_fn(fs, "fake_fn"), nullptr);
  EXPECT_NE(find_fn(fs, "real_fn"), nullptr);
  ASSERT_EQ(fs.globals.size(), 1u);
  EXPECT_EQ(fs.globals[0].name, "kDoc");
  EXPECT_TRUE(fs.globals[0].init_literal_only);  // a string literal is static
}

TEST(ArchlintSymbols, MultiLineDeclarationAndCtorInitList) {
  const FileSymbols fs = extract("src/net/m.cpp",
                                 "namespace hpc::net {\n"
                                 "std::vector<int>\n"
                                 "collect_widget_ids(\n"
                                 "    const Registry& reg,\n"
                                 "    int limit);\n"
                                 "Router::Router(int ports)\n"
                                 "    : ports_{ports}, name_(\"r\") {\n"
                                 "  rebuild();\n"
                                 "}\n"
                                 "int after_ctor();\n"
                                 "}\n");
  const FileSymbols::Func* multi = find_fn(fs, "collect_widget_ids");
  ASSERT_NE(multi, nullptr);
  EXPECT_EQ(multi->line, 3u);  // the declarator line, not the type's

  const FileSymbols::Func* ctor = find_fn(fs, "Router");
  ASSERT_NE(ctor, nullptr);
  EXPECT_EQ(ctor->scope, "hpc::net::Router");
  EXPECT_TRUE(ctor->is_definition);

  // The walker resynchronized after the brace-init-heavy ctor body.
  EXPECT_NE(find_fn(fs, "after_ctor"), nullptr);
}

TEST(ArchlintSymbols, GlobalQualifiersAndInitializerClasses) {
  const FileSymbols fs = extract("src/app/g.cpp",
                                 "namespace app {\n"
                                 "int counter = 3;\n"
                                 "const std::string kName = make_name();\n"
                                 "constexpr int kTwo = 2;\n"
                                 "extern int shared;\n"
                                 "}\n");
  ASSERT_EQ(fs.globals.size(), 4u);
  EXPECT_EQ(fs.globals[0].name, "counter");
  EXPECT_TRUE(fs.globals[0].init_literal_only);
  EXPECT_EQ(fs.globals[1].name, "kName");
  EXPECT_TRUE(fs.globals[1].is_const);
  EXPECT_TRUE(fs.globals[1].has_initializer);
  EXPECT_FALSE(fs.globals[1].init_literal_only);
  EXPECT_TRUE(fs.globals[2].is_constexpr);
  EXPECT_TRUE(fs.globals[3].is_extern_decl);
}

TEST(ArchlintSymbols, IndexMergesMentionsAcrossFiles) {
  const SymbolIndex idx = make_index({
      {"src/core/api.hpp", "int used_fn();\nint unused_fn();\n"},
      {"src/core/api.cpp",
       "int used_fn() { return 1; }\nint caller() { return used_fn(); }\n"},
  });
  EXPECT_EQ(idx.uses_of("used_fn"), 1u);    // the call site in caller()
  EXPECT_EQ(idx.uses_of("unused_fn"), 0u);  // declaration only
  EXPECT_EQ(idx.uses_of("no_such_name"), 0u);
}

// ------------------------------------------------------------------ D10 -----

TEST(ArchlintSemanticD10, UnorderedAndPointerKeyedFire) {
  const std::vector<Finding> fs = judge({{"src/hw/c.cpp",
                                          "std::unordered_multimap<int, int> m;\n"
                                          "std::map<const Device*, int> order;\n"
                                          "std::map<std::string, int> by_name;\n"
                                          "std::set<Dev<int>*> s;\n"}});
  EXPECT_EQ(count_rule(fs, Rule::kNondetContainer), 3u);  // by_name is clean
}

TEST(ArchlintSemanticD10, NestedPointerDoesNotPoisonValueKey) {
  const std::vector<Finding> fs = judge(
      {{"src/hw/c.cpp", "std::map<std::string, const Device*> owners;\n"}});
  EXPECT_FALSE(has_rule(fs, Rule::kNondetContainer));
}

TEST(ArchlintSemanticD10, AllowAnnotationSuppresses) {
  const std::vector<Finding> fs = judge(
      {{"src/hw/c.cpp",
        "// archlint: allow(nondet-container): scratch set, never iterated\n"
        "std::unordered_multiset<int> scratch;\n"}});
  EXPECT_FALSE(has_rule(fs, Rule::kNondetContainer));
}

// ------------------------------------------------------------------ D11 -----

TEST(ArchlintSemanticD11, EntropyFiresOnlyUnderSrc) {
  const char* src = "int f() { return std::getenv(\"X\") != nullptr; }\n";
  EXPECT_TRUE(has_rule(judge({{"src/fed/e.cpp", src}}), Rule::kEntropySource));
  EXPECT_FALSE(has_rule(judge({{"bench/e.cpp", src}}), Rule::kEntropySource));
  EXPECT_FALSE(has_rule(judge({{"tools/e.cpp", src}}), Rule::kEntropySource));
}

TEST(ArchlintSemanticD11, ClockNowAndTimeCallsFire) {
  const std::vector<Finding> fs = judge(
      {{"src/fed/t.cpp",
        "long a() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n"
        "long b() { return time(nullptr); }\n"
        "long c(Stamp s) { return s.time(); }\n"}});  // accessor: not entropy
  EXPECT_EQ(count_rule(fs, Rule::kEntropySource), 2u);
}

TEST(ArchlintSemanticD11, ConfiguredAllowlistSkipsFile) {
  const SymbolIndex idx = make_index(
      {{"src/hw/probe.cpp", "int f() { return std::getenv(\"X\") != nullptr; }\n"}});
  SemanticConfig cfg;
  EXPECT_TRUE(has_rule(check_semantics(idx, RuleSet::all(), cfg), Rule::kEntropySource));
  cfg.entropy_allow.push_back("src/hw/probe.");
  EXPECT_FALSE(has_rule(check_semantics(idx, RuleSet::all(), cfg), Rule::kEntropySource));
}

// ------------------------------------------------------------------ D12 -----

TEST(ArchlintSemanticD12, AdHocRootFiresOutsideSimOnly) {
  const char* src = "void f(unsigned base) { sim::Rng bad(base); }\n";
  EXPECT_TRUE(has_rule(judge({{"src/hw/r.cpp", src}}), Rule::kRngDiscipline));
  EXPECT_FALSE(has_rule(judge({{"src/sim/r.cpp", src}}), Rule::kRngDiscipline));
}

TEST(ArchlintSemanticD12, ChildDerivationIsClean) {
  const std::vector<Finding> fs = judge(
      {{"src/hw/r.cpp",
        "void f(sim::Rng& parent) { auto stream = parent.child(\"hw\"); }\n"}});
  EXPECT_FALSE(has_rule(fs, Rule::kRngDiscipline));
}

TEST(ArchlintSemanticD12, SeedArithmeticFires) {
  const std::vector<Finding> fs = judge(
      {{"src/hw/r.cpp", "unsigned mix(unsigned seed) { return seed ^ 17u; }\n"}});
  EXPECT_EQ(count_rule(fs, Rule::kRngDiscipline), 1u);
}

// ------------------------------------------------------------------ D13 -----

TEST(ArchlintSemanticD13, DynamicInitFiresLiteralAndConstexprDoNot) {
  const std::vector<Finding> fs = judge(
      {{"src/app/g.cpp",
        "namespace app {\n"
        "const std::string kBanner = make_banner();\n"  // fires: runs code
        "const Registry kReg;\n"                        // fires: default ctor
        "constexpr int kOk = 2;\n"
        "const double kPi = 3.14;\n"
        "extern int shared;\n"
        "}\n"}});
  EXPECT_EQ(count_rule(fs, Rule::kDynamicInitGlobal), 2u);
}

TEST(ArchlintSemanticD13, OnlySrcIsJudged) {
  const char* src = "const std::string kBanner = make_banner();\n";
  EXPECT_TRUE(has_rule(judge({{"src/app/g.cpp", src}}), Rule::kDynamicInitGlobal));
  EXPECT_FALSE(has_rule(judge({{"tests/g.cpp", src}}), Rule::kDynamicInitGlobal));
}

// ------------------------------------------------------------------ D14 -----

TEST(ArchlintSemanticD14, OrphanHeaderFunctionFires) {
  const std::vector<Finding> fs = judge({
      {"src/core/api.hpp", "int used_fn();\nint unused_fn();\n"},
      {"src/core/api.cpp",
       "int used_fn() { return 1; }\nint caller() { return used_fn(); }\n"},
  });
  ASSERT_EQ(count_rule(fs, Rule::kDeadPublicApi), 1u);
  for (const Finding& f : fs)
    if (f.rule == Rule::kDeadPublicApi) {
      EXPECT_EQ(f.path, "src/core/api.hpp");
      EXPECT_EQ(f.line, 2u);
    }
}

TEST(ArchlintSemanticD14, CtorsOperatorsMainAndCppFilesAreExempt) {
  const std::vector<Finding> fs = judge({
      {"src/core/t.hpp",
       "struct Widget {\n"
       "  Widget();\n"                              // ctor: exempt
       "  bool operator<(const Widget&) const;\n"   // operator: exempt
       "};\n"
       "int main();\n"},                            // main: exempt
      {"src/core/t.cpp", "int cpp_only_helper() { return 0; }\n"},  // not a header
  });
  EXPECT_FALSE(has_rule(fs, Rule::kDeadPublicApi));
}

TEST(ArchlintSemanticD14, AllowAnnotationSuppresses) {
  const std::vector<Finding> fs = judge(
      {{"src/core/t.hpp",
        "// archlint: allow(dead-public-api): public extension point\n"
        "int plugin_hook();\n"}});
  EXPECT_FALSE(has_rule(fs, Rule::kDeadPublicApi));
}

// ------------------------------------------------------- config / plumbing --

TEST(ArchlintSemanticConfig, ParseReplacesDefaultsPerKey) {
  SemanticConfig cfg;
  std::string error;
  ASSERT_TRUE(parse_semantics("# comment\nentropy-allow: src/a/ src/b/\n", cfg, error))
      << error;
  ASSERT_EQ(cfg.entropy_allow.size(), 2u);
  EXPECT_EQ(cfg.entropy_allow[0], "src/a/");
  // rng-allow untouched: still the built-in default.
  ASSERT_EQ(cfg.rng_allow.size(), 1u);
  EXPECT_EQ(cfg.rng_allow[0], "src/sim/");
}

TEST(ArchlintSemanticConfig, UnknownKeyIsAnError) {
  SemanticConfig cfg;
  std::string error;
  EXPECT_FALSE(parse_semantics("entropy-alow: src/a/\n", cfg, error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
}

TEST(ArchlintRuleIds, DNumberAliasesResolve) {
  Rule r = Rule::kAmbientRng;
  EXPECT_TRUE(rule_from_id("D10", r));
  EXPECT_EQ(r, Rule::kNondetContainer);
  EXPECT_TRUE(rule_from_id("d14", r));
  EXPECT_EQ(r, Rule::kDeadPublicApi);
  EXPECT_TRUE(rule_from_id("D1", r));
  EXPECT_EQ(r, Rule::kAmbientRng);
  EXPECT_FALSE(rule_from_id("D0", r));
  EXPECT_FALSE(rule_from_id("D15", r));  // io-error has no D number
  EXPECT_FALSE(rule_from_id("Dx", r));
}

TEST(ArchlintExitCodes, IoErrorDominatesRuleFindings) {
  EXPECT_EQ(exit_code_for({}), 0);
  const Finding rule_hit{Rule::kFloatEq, "src/x.cpp", 3, "m"};
  const Finding io_hit{Rule::kIoError, "src/gone.cpp", 1, "m"};
  EXPECT_EQ(exit_code_for({rule_hit}), 1);
  EXPECT_EQ(exit_code_for({rule_hit, io_hit}), 3);
  EXPECT_EQ(exit_code_for({io_hit}), 3);
}

// ------------------------------------------------------- fixture corpus -----

TEST(ArchlintSemanticFixtures, CorpusFiresEveryRuleExactly) {
  const std::filesystem::path root = ARCHLINT_FIXTURES_DIR;
  TreeOptions opts;
  opts.root = root;
  opts.layers_file = root / "layers.txt";
  const std::vector<Finding> fs = lint_tree({root / "src"}, opts);
  EXPECT_EQ(count_rule(fs, Rule::kNondetContainer), 2u);
  EXPECT_EQ(count_rule(fs, Rule::kEntropySource), 2u);
  EXPECT_EQ(count_rule(fs, Rule::kRngDiscipline), 2u);
  EXPECT_EQ(count_rule(fs, Rule::kDynamicInitGlobal), 1u);
  EXPECT_EQ(count_rule(fs, Rule::kDeadPublicApi), 1u);
  EXPECT_FALSE(has_rule(fs, Rule::kIoError));
  EXPECT_EQ(fs.size(), 13u);  // the README table, exactly
}

TEST(ArchlintSemanticFixtures, JobCountDoesNotChangeOutput) {
  const std::filesystem::path root = ARCHLINT_FIXTURES_DIR;
  TreeOptions serial;
  serial.root = root;
  serial.layers_file = root / "layers.txt";
  TreeOptions parallel = serial;
  parallel.jobs = 4;
  const std::vector<Finding> a = lint_tree({root / "src"}, serial);
  const std::vector<Finding> b = lint_tree({root / "src"}, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(format(a[i]), format(b[i]));
}

}  // namespace
}  // namespace hpc::lint
