#include "hw/scaling.hpp"

#include <gtest/gtest.h>

namespace hpc::hw {
namespace {

TEST(TechnologyModel, GenerationZeroIsUnity) {
  const TechnologyModel m;
  EXPECT_DOUBLE_EQ(m.perf_per_watt(0), 1.0);
  EXPECT_DOUBLE_EQ(m.generation_gain(0), 1.0);
}

TEST(TechnologyModel, DennardEraCompounds) {
  const TechnologyModel m;
  for (int g = 1; g <= m.dennard_end_gen; ++g)
    EXPECT_DOUBLE_EQ(m.generation_gain(g), m.dennard_gain);
  EXPECT_NEAR(m.perf_per_watt(2), m.dennard_gain * m.dennard_gain, 1e-9);
}

TEST(TechnologyModel, PostDennardGainsDecay) {
  const TechnologyModel m;
  double prev = m.generation_gain(m.dennard_end_gen + 1);
  EXPECT_LT(prev, m.dennard_gain);
  for (int g = m.dennard_end_gen + 2; g < m.dennard_end_gen + 10; ++g) {
    const double gain = m.generation_gain(g);
    EXPECT_LT(gain, prev);
    EXPECT_GE(gain, 1.0);
    prev = gain;
  }
}

TEST(TechnologyModel, GainApproachesOne) {
  const TechnologyModel m;
  EXPECT_NEAR(m.generation_gain(m.dennard_end_gen + 60), 1.0, 0.01);
}

TEST(TechnologyModel, PerfPerWattMonotone) {
  const TechnologyModel m;
  double prev = 0.0;
  for (int g = 0; g <= 30; ++g) {
    const double ppw = m.perf_per_watt(g);
    EXPECT_GT(ppw, prev);
    prev = ppw;
  }
}

TEST(SpecializationModel, AmdahlLimit) {
  SpecializationModel s;
  s.coverage = 0.7;
  // Infinite gain saturates at 1/(1-coverage).
  EXPECT_NEAR(s.effective_speedup(1e12), 1.0 / 0.3, 1e-6);
  EXPECT_DOUBLE_EQ(s.effective_speedup(1.0), 1.0);
}

TEST(SpecializationModel, SpeedupMonotoneInGain) {
  const SpecializationModel s;
  double prev = 0.0;
  for (double g = 1.0; g < 1000.0; g *= 2.0) {
    const double sp = s.effective_speedup(g);
    EXPECT_GT(sp, prev);
    prev = sp;
  }
}

TEST(SpecializationModel, FullCoverageIsFullGain) {
  SpecializationModel s;
  s.coverage = 1.0;
  EXPECT_NEAR(s.effective_speedup(30.0), 30.0, 1e-9);
}

TEST(SpecializationModel, ZeroGainIsSafe) {
  const SpecializationModel s;
  EXPECT_DOUBLE_EQ(s.effective_speedup(0.0), 1.0);
}

}  // namespace
}  // namespace hpc::hw
