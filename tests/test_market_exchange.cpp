#include "market/exchange.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace hpc::market {
namespace {

TEST(Equilibrium, SimpleCross) {
  // Supply costs {1, 2, 3}; demand values {4, 2.5, 1.5}: two units trade,
  // marginal pair is (2, 2.5) -> p* = 2.25.
  const EquilibriumPoint eq = competitive_equilibrium({1.0, 2.0, 3.0}, {4.0, 2.5, 1.5});
  EXPECT_DOUBLE_EQ(eq.quantity, 2.0);
  EXPECT_DOUBLE_EQ(eq.price, 2.25);
  EXPECT_DOUBLE_EQ(eq.max_surplus, (4.0 - 1.0) + (2.5 - 2.0));
}

TEST(Equilibrium, NoTradePossible) {
  const EquilibriumPoint eq = competitive_equilibrium({10.0}, {5.0});
  EXPECT_DOUBLE_EQ(eq.quantity, 0.0);
  EXPECT_DOUBLE_EQ(eq.max_surplus, 0.0);
  EXPECT_DOUBLE_EQ(eq.price, 7.5);
}

TEST(Equilibrium, UnsortedInputsHandled) {
  const EquilibriumPoint a = competitive_equilibrium({3.0, 1.0, 2.0}, {1.5, 4.0, 2.5});
  const EquilibriumPoint b = competitive_equilibrium({1.0, 2.0, 3.0}, {4.0, 2.5, 1.5});
  EXPECT_DOUBLE_EQ(a.price, b.price);
  EXPECT_DOUBLE_EQ(a.quantity, b.quantity);
}

/// Builds a provider/consumer market around a known equilibrium.
Exchange make_market(int providers, int consumers, double* eq_price = nullptr) {
  Exchange ex(17);
  std::vector<double> costs;
  std::vector<double> values;
  sim::Rng rng(18);
  for (int i = 0; i < providers; ++i) {
    const double cost = rng.uniform(0.5, 1.5);
    costs.push_back(cost);
    ex.add_agent(std::make_unique<ProviderAgent>("prov" + std::to_string(i), cost, 1.0));
  }
  for (int i = 0; i < consumers; ++i) {
    const double value = rng.uniform(0.8, 2.5);
    values.push_back(value);
    ex.add_agent(std::make_unique<ConsumerAgent>("cons" + std::to_string(i), value, 1.0));
  }
  if (eq_price) *eq_price = competitive_equilibrium(costs, values).price;
  return ex;
}

TEST(Exchange, CashIsZeroSum) {
  Exchange ex = make_market(20, 30);
  ex.run_rounds(50);
  EXPECT_GT(ex.total_volume(), 0.0);
  EXPECT_NEAR(ex.cash_imbalance(), 0.0, 1e-6);
}

TEST(Exchange, PriceConvergesTowardEquilibrium) {
  // The paper's claim: the non-cooperative game "eventually reaches
  // equilibrium".  Late-round prices must be much closer to p* than early
  // ones.
  double p_star = 0.0;
  Exchange ex = make_market(40, 60, &p_star);
  ex.run_rounds(300);
  const auto& prices = ex.round_prices();
  ASSERT_GE(prices.size(), 300u);

  auto mean_abs_dev = [&](std::size_t from, std::size_t to) {
    double acc = 0.0;
    int n = 0;
    for (std::size_t i = from; i < to; ++i) {
      if (prices[i] <= 0.0) continue;
      acc += std::abs(prices[i] - p_star);
      ++n;
    }
    return n ? acc / n : 1e9;
  };
  const double late = mean_abs_dev(250, 300);
  EXPECT_LT(late, 0.25 * p_star);
}

TEST(Exchange, TradesTrackEquilibriumQuantityPerRound) {
  double p_star = 0.0;
  Exchange ex = make_market(40, 60, &p_star);
  ex.run_rounds(300);
  // Late rounds: traded volume per round should be positive and bounded by
  // the per-round supply.
  const auto& volumes = ex.round_volumes();
  double late_volume = 0.0;
  for (std::size_t i = 250; i < 300; ++i) late_volume += volumes[i];
  EXPECT_GT(late_volume / 50.0, 1.0);   // at least some units per round
  EXPECT_LE(late_volume / 50.0, 40.0);  // cannot exceed supply
}

TEST(Exchange, ProvidersNeverSellBelowCostOnAverage) {
  Exchange ex(21);
  sim::Rng rng(22);
  std::vector<const ProviderAgent*> providers;
  // Names built via append rather than operator+ to dodge GCC 12's spurious
  // -Wrestrict on inlined SSO string concatenation (PR105651).
  for (int i = 0; i < 10; ++i) {
    std::string name = "p";
    name += std::to_string(i);
    auto p = std::make_unique<ProviderAgent>(std::move(name), rng.uniform(0.5, 1.5), 1.0);
    providers.push_back(p.get());
    ex.add_agent(std::move(p));
  }
  for (int i = 0; i < 15; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    ex.add_agent(std::make_unique<ConsumerAgent>(std::move(name), rng.uniform(0.8, 2.5), 1.0));
  }
  ex.run_rounds(100);
  for (const ProviderAgent* p : providers) {
    if (p->sold_total() > 0.0) {
      // Revenue per unit >= marginal cost (asks never priced below cost).
      EXPECT_GE(p->cash() / p->sold_total(), p->marginal_cost() - 1e-9);
    }
  }
}

TEST(Exchange, BrokerAndSpeculatorDoNotBreakZeroSum) {
  Exchange ex = make_market(15, 20);
  ex.add_agent(std::make_unique<BrokerAgent>("broker"));
  ex.add_agent(std::make_unique<SpeculatorAgent>("spec"));
  ex.run_rounds(150);
  EXPECT_NEAR(ex.cash_imbalance(), 0.0, 1e-6);
}

TEST(Exchange, AgentIdsAssignedSequentially) {
  Exchange ex(1);
  const int a = ex.add_agent(std::make_unique<BrokerAgent>("a"));
  const int b = ex.add_agent(std::make_unique<BrokerAgent>("b"));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(ex.agent_count(), 2u);
  EXPECT_EQ(ex.agent(0).name(), "a");
}

TEST(Exchange, NoAgentsNoTrades) {
  Exchange ex(2);
  ex.run_rounds(10);
  EXPECT_DOUBLE_EQ(ex.total_volume(), 0.0);
  EXPECT_DOUBLE_EQ(ex.last_price(), 0.0);
}

TEST(Exchange, InventoryConservation) {
  // Units bought == units sold across all agents.
  Exchange ex = make_market(10, 15);
  ex.run_rounds(80);
  double net_inventory = 0.0;
  for (std::size_t i = 0; i < ex.agent_count(); ++i)
    net_inventory += ex.agent(static_cast<int>(i)).inventory();
  EXPECT_NEAR(net_inventory, 0.0, 1e-6);
}

}  // namespace
}  // namespace hpc::market
