#include "obs/tracefile.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/trace.hpp"

/// \file test_obs_tracefile.cpp
/// Trace validator/summarizer tests (the library behind tools/tracecat).
/// The ci [6/6] obs gate trusts `tracecat --check` to reject malformed or
/// unbalanced traces, so the checker itself needs direct coverage: exporter
/// output passes, and truncated JSON, unknown phases, missing fields, and
/// every flavor of span imbalance are rejected with useful errors.

namespace hpc::obs {
namespace {

/// Wraps raw event JSON in a minimal trace document.
std::string doc(const std::string& events) {
  return R"({"otherData": {"schema": "archipelago-trace-v1", "dropped": 0,)"
         R"( "truncated_spans": 0}, "traceEvents": [)" +
         events + "]}";
}

TEST(TraceFile, RecorderExportPassesAndAggregates) {
  TraceRecorder rec;
  rec.set_enabled(true);
  const TrackId t = rec.track("net.flowsim");
  const StrId solve = rec.intern("solve");
  const StrId depth = rec.intern("depth");
  rec.begin_span(t, solve, 1000);
  rec.end_span(t, solve, 3000);
  rec.counter(t, depth, 1000, 4.0);
  rec.counter(t, depth, 2000, 9.0);
  rec.counter(t, depth, 3000, 2.0);
  rec.complete_span(t, rec.intern("flow"), 0, 10000);
  rec.instant(t, rec.intern("mark"), 1500);

  TraceStats stats;
  ASSERT_EQ(check_trace_text(rec.chrome_trace_json(), &stats), "");
  EXPECT_EQ(stats.events, 8u);  // 7 recorded + 1 thread_name metadata
  EXPECT_EQ(stats.phase_counts["M"], 1u);
  EXPECT_EQ(stats.phase_counts["C"], 3u);
  EXPECT_EQ(stats.spans["solve"].count, 1u);
  EXPECT_NEAR(stats.spans["solve"].total_us, 2.0, 1e-9);   // 2000 ns
  EXPECT_NEAR(stats.spans["flow"].total_us, 10.0, 1e-9);   // 10000 ns
  EXPECT_EQ(stats.counters["depth"].samples, 3u);
  EXPECT_EQ(stats.counters["depth"].min, 2.0);
  EXPECT_EQ(stats.counters["depth"].max, 9.0);
  EXPECT_EQ(stats.counters["depth"].last, 2.0);
}

TEST(TraceFile, RejectsMalformedJson) {
  EXPECT_NE(check_trace_text("", nullptr), "");
  EXPECT_NE(check_trace_text("{\"traceEvents\": [", nullptr), "");
  EXPECT_NE(check_trace_text("[1, 2]", nullptr), "");
  EXPECT_NE(check_trace_text("{\"otherData\": {}}", nullptr), "");  // no traceEvents
}

TEST(TraceFile, RejectsUnknownPhaseAndMissingFields) {
  const std::string base =
      R"({"name": "n", "cat": "t", "pid": 1, "tid": 0, "ph": "B", "ts": 1.0})";
  EXPECT_EQ(check_trace_text(
                doc(base + "," +
                    R"({"name": "n", "cat": "t", "pid": 1, "tid": 0, "ph": "E", "ts": 2.0})"),
                nullptr),
            "");
  // Unknown phase code.
  EXPECT_NE(check_trace_text(
                doc(R"({"name": "n", "pid": 1, "tid": 0, "ph": "Q", "ts": 1.0})"), nullptr),
            "");
  // Missing name / pid / ts; negative ts; X without dur; C without value.
  EXPECT_NE(check_trace_text(doc(R"({"pid": 1, "tid": 0, "ph": "i", "ts": 1.0})"), nullptr), "");
  EXPECT_NE(check_trace_text(doc(R"({"name": "n", "ph": "i", "ts": 1.0})"), nullptr), "");
  EXPECT_NE(check_trace_text(doc(R"({"name": "n", "pid": 1, "tid": 0, "ph": "i"})"), nullptr), "");
  EXPECT_NE(check_trace_text(
                doc(R"({"name": "n", "pid": 1, "tid": 0, "ph": "i", "ts": -1.0})"), nullptr),
            "");
  EXPECT_NE(check_trace_text(
                doc(R"({"name": "n", "pid": 1, "tid": 0, "ph": "X", "ts": 1.0})"), nullptr),
            "");
  EXPECT_NE(check_trace_text(
                doc(R"({"name": "n", "pid": 1, "tid": 0, "ph": "C", "ts": 1.0, "args": {}})"),
                nullptr),
            "");
}

TEST(TraceFile, RejectsUnbalancedSpans) {
  // B never closed.
  std::string err = check_trace_text(
      doc(R"({"name": "open", "pid": 1, "tid": 0, "ph": "B", "ts": 1.0})"), nullptr);
  EXPECT_NE(err, "");
  EXPECT_NE(err.find("open"), std::string::npos);
  // E with no open span.
  EXPECT_NE(check_trace_text(
                doc(R"({"name": "n", "pid": 1, "tid": 0, "ph": "E", "ts": 1.0})"), nullptr),
            "");
  // E whose name does not match the open B (interleaved, not nested).
  EXPECT_NE(
      check_trace_text(
          doc(R"({"name": "a", "pid": 1, "tid": 0, "ph": "B", "ts": 1.0},)"
              R"({"name": "b", "pid": 1, "tid": 0, "ph": "E", "ts": 2.0})"),
          nullptr),
      "");
  // Same names on different tracks are independent stacks.
  EXPECT_EQ(
      check_trace_text(
          doc(R"({"name": "a", "pid": 1, "tid": 0, "ph": "B", "ts": 1.0},)"
              R"({"name": "a", "pid": 1, "tid": 1, "ph": "B", "ts": 1.0},)"
              R"({"name": "a", "pid": 1, "tid": 1, "ph": "E", "ts": 2.0},)"
              R"({"name": "a", "pid": 1, "tid": 0, "ph": "E", "ts": 3.0})"),
          nullptr),
      "");
}

TEST(TraceFile, SummaryIsDeterministicAndRanksSpans) {
  TraceStats stats;
  stats.events = 5;
  stats.phase_counts["X"] = 5;
  stats.spans["small"] = SpanAgg{3, 10.0};
  stats.spans["big"] = SpanAgg{1, 90.0};
  stats.counters["depth"] = CounterAgg{4, 1.0, 9.0, 2.0};
  const std::string s = summary(stats, 10);
  EXPECT_EQ(s, summary(stats, 10));
  EXPECT_LT(s.find("big"), s.find("small"));  // ranked by inclusive time
  EXPECT_NE(s.find("depth"), std::string::npos);
  // top_n truncates the ranking.
  const std::string top1 = summary(stats, 1);
  EXPECT_NE(top1.find("big"), std::string::npos);
  EXPECT_EQ(top1.find("small  count"), std::string::npos);
}

TEST(TraceFile, CheckFileReportsIoAndContentErrors) {
  EXPECT_NE(check_trace_file("/nonexistent/trace.json", nullptr), "");

  const std::string path = ::testing::TempDir() + "obs_trace_roundtrip.json";
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.instant(rec.track("t"), rec.intern("n"), 1);
  ASSERT_TRUE(rec.export_chrome_trace(path));
  TraceStats stats;
  EXPECT_EQ(check_trace_file(path, &stats), "");
  EXPECT_EQ(stats.events, 2u);

  std::ofstream(path, std::ios::binary) << "{\"truncated";
  EXPECT_NE(check_trace_file(path, nullptr), "");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hpc::obs
