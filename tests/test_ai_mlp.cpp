#include "ai/mlp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ai/datasets.hpp"

namespace hpc::ai {
namespace {

TEST(Mlp, ShapesAndParameterCount) {
  sim::Rng rng(1);
  const Mlp m({3, 16, 8, 2}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  EXPECT_EQ(m.input_size(), 3);
  EXPECT_EQ(m.output_size(), 2);
  EXPECT_EQ(m.layers().size(), 3u);
  EXPECT_EQ(m.parameter_count(), 3 * 16 + 16 + 16 * 8 + 8 + 8 * 2 + 2);
  EXPECT_DOUBLE_EQ(m.inference_flops(), 2.0 * (3 * 16 + 16 * 8 + 8 * 2));
}

TEST(Mlp, SoftmaxOutputIsDistribution) {
  sim::Rng rng(2);
  const Mlp m({4, 8, 3}, Activation::kTanh, Loss::kSoftmaxCrossEntropy, rng);
  const std::vector<float> out = m.forward(std::vector<float>{0.1f, -0.2f, 0.3f, 0.4f});
  ASSERT_EQ(out.size(), 3u);
  float sum = 0.0f;
  for (const float v : out) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Mlp, TrainingReducesLoss) {
  sim::Rng rng(3);
  Dataset data = make_blobs(400, 3, 2, 0.5, rng);
  Mlp m({2, 24, 3}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  TrainConfig cfg;
  cfg.epochs = 1;
  const float first = m.train_epoch(data, cfg, rng);
  float last = first;
  for (int e = 0; e < 30; ++e) last = m.train_epoch(data, cfg, rng);
  EXPECT_LT(last, first * 0.5f);
}

TEST(Mlp, LearnsBlobs) {
  sim::Rng rng(4);
  const Dataset all = make_blobs(1'200, 4, 2, 0.45, rng);
  const auto [train, test] = split(all, 0.8);
  Mlp m({2, 32, 4}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.learning_rate = 0.05f;
  m.train(train, cfg, rng);
  EXPECT_GT(m.accuracy(test), 0.9);
}

TEST(Mlp, LearnsSpiralsNonlinear) {
  sim::Rng rng(5);
  const Dataset all = make_two_spirals(1'500, 0.08, rng);
  const auto [train, test] = split(all, 0.8);
  Mlp m({2, 48, 48, 2}, Activation::kTanh, Loss::kSoftmaxCrossEntropy, rng);
  TrainConfig cfg;
  cfg.epochs = 120;
  cfg.learning_rate = 0.03f;
  m.train(train, cfg, rng);
  EXPECT_GT(m.accuracy(test), 0.85);
}

TEST(Mlp, LearnsRegression) {
  sim::Rng rng(6);
  const Dataset all = make_oscillator(2'000, rng);
  const auto [train, test] = split(all, 0.85);
  Mlp m({3, 48, 48, 1}, Activation::kTanh, Loss::kMse, rng);
  TrainConfig cfg;
  cfg.epochs = 200;
  cfg.learning_rate = 0.05f;
  m.train(train, cfg, rng);
  // Target range is roughly [-1, 1]; a useful surrogate is well under 0.1.
  EXPECT_LT(m.rmse(test), 0.1);
}

TEST(Mlp, UntrainedChanceAccuracy) {
  sim::Rng rng(7);
  const Dataset data = make_blobs(1'000, 4, 2, 0.4, rng);
  const Mlp m({2, 16, 4}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  const double acc = m.accuracy(data);
  EXPECT_GT(acc, 0.05);
  EXPECT_LT(acc, 0.6);
}

TEST(Mlp, PruneCreatesSparsity) {
  sim::Rng rng(8);
  Mlp m({8, 32, 4}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  EXPECT_DOUBLE_EQ(m.sparsity(), 0.0);
  const double sparsity = m.prune(0.5);
  EXPECT_NEAR(sparsity, 0.5, 0.02);
  EXPECT_NEAR(m.sparsity(), sparsity, 1e-12);
}

TEST(Mlp, PruneKeepsLargestWeights) {
  sim::Rng rng(9);
  Mlp m({4, 8, 2}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  float max_before = 0.0f;
  for (const auto& l : m.layers())
    for (const float w : l.w) max_before = std::max(max_before, std::abs(w));
  m.prune(0.7);
  float max_after = 0.0f;
  for (const auto& l : m.layers())
    for (const float w : l.w) max_after = std::max(max_after, std::abs(w));
  EXPECT_FLOAT_EQ(max_before, max_after);
}

TEST(Mlp, ModeratePruningPreservesAccuracy) {
  sim::Rng rng(10);
  const Dataset all = make_blobs(1'000, 3, 2, 0.5, rng);
  const auto [train, test] = split(all, 0.8);
  Mlp m({2, 48, 3}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
  TrainConfig cfg;
  cfg.epochs = 50;
  m.train(train, cfg, rng);
  const double before = m.accuracy(test);
  m.prune(0.3);
  const double after = m.accuracy(test);
  EXPECT_GT(after, before - 0.1);
}

TEST(Mlp, DeterministicGivenSeeds) {
  auto build = [] {
    sim::Rng rng(11);
    Dataset data = make_blobs(200, 2, 2, 0.5, rng);
    Mlp m({2, 8, 2}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, rng);
    TrainConfig cfg;
    cfg.epochs = 5;
    m.train(data, cfg, rng);
    return m.forward(std::vector<float>{0.5f, -0.5f});
  };
  const auto a = build();
  const auto b = build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Datasets, BlobsLabelRange) {
  sim::Rng rng(12);
  const Dataset d = make_blobs(100, 5, 3, 0.3, rng);
  EXPECT_EQ(d.n, 100);
  EXPECT_EQ(d.dim, 3);
  for (const int l : d.label) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 5);
  }
}

TEST(Datasets, SpiralsBalanced) {
  sim::Rng rng(13);
  const Dataset d = make_two_spirals(1'000, 0.05, rng);
  int ones = 0;
  for (const int l : d.label) ones += l;
  EXPECT_EQ(ones, 500);
}

TEST(Datasets, OscillatorValuesBounded) {
  sim::Rng rng(14);
  const Dataset d = make_oscillator(500, rng);
  for (const float y : d.y) {
    EXPECT_GE(y, -1.1f);
    EXPECT_LE(y, 1.1f);
  }
}

TEST(Datasets, SplitSizes) {
  sim::Rng rng(15);
  const Dataset d = make_blobs(100, 2, 2, 0.3, rng);
  const auto [train, test] = split(d, 0.75);
  EXPECT_EQ(train.n, 75);
  EXPECT_EQ(test.n, 25);
  EXPECT_EQ(train.x.size(), 150u);
  EXPECT_EQ(test.label.size(), 25u);
}

}  // namespace
}  // namespace hpc::ai
