#include "exec/policy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

/// Pins the `hpc::exec` execution-policy contract: every index exactly once,
/// static round-robin assignment (no stealing), deterministic exception
/// selection — the properties that let campaign artifacts be byte-identical
/// whatever policy runs them.

namespace {

using hpc::exec::ExecutionPolicy;
using hpc::exec::SerialPolicy;
using hpc::exec::ThreadPoolPolicy;

TEST(SerialPolicy, RunsEveryIndexInOrderOnCallingThread) {
  SerialPolicy policy;
  EXPECT_EQ(policy.name(), "serial");
  EXPECT_EQ(policy.workers(), 1);

  std::vector<std::size_t> order;
  const std::thread::id caller = std::this_thread::get_id();
  policy.run(5, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SerialPolicy, ZeroTasksIsANoop) {
  SerialPolicy policy;
  int calls = 0;
  policy.run(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolPolicy, EveryIndexExactlyOnce) {
  ThreadPoolPolicy policy(4);
  EXPECT_EQ(policy.name(), "threads");
  EXPECT_EQ(policy.workers(), 4);

  constexpr std::size_t kN = 103;  // deliberately not a multiple of 4
  std::vector<std::atomic<int>> hits(kN);
  policy.run(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolPolicy, StaticRoundRobinAssignmentNoStealing) {
  // Record which thread ran each index and in what per-thread order; the
  // contract is i % workers == slot, ascending within each worker, even when
  // slices are wildly unbalanced (index 0 sleeps).
  ThreadPoolPolicy policy(3);
  constexpr std::size_t kN = 31;
  std::mutex mu;
  std::map<std::thread::id, std::vector<std::size_t>> by_thread;
  policy.run(kN, [&](std::size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const std::lock_guard<std::mutex> lock(mu);
    by_thread[std::this_thread::get_id()].push_back(i);
  });

  ASSERT_LE(by_thread.size(), 3u);
  for (const auto& [tid, indices] : by_thread) {
    ASSERT_FALSE(indices.empty());
    const std::size_t slot = indices.front() % 3;
    std::size_t expect = slot;
    for (const std::size_t i : indices) {
      EXPECT_EQ(i % 3, slot) << "stolen index " << i;
      EXPECT_EQ(i, expect) << "out-of-order index within worker slice";
      expect += 3;
    }
  }
}

TEST(ThreadPoolPolicy, MoreWorkersThanTasks) {
  ThreadPoolPolicy policy(8);
  std::vector<std::atomic<int>> hits(3);
  policy.run(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolPolicy, ZeroWorkerCountUsesHardwareHint) {
  ThreadPoolPolicy policy(0);
  EXPECT_GE(policy.workers(), 1);
  EXPECT_EQ(policy.workers(), hpc::exec::hardware_worker_hint());
}

TEST(ThreadPoolPolicy, LowestIndexExceptionWinsDeterministically) {
  // Indices 2 and 9 both throw; whichever worker finishes first, the rethrow
  // must be index 2's.  Later tasks on throwing workers are skipped.
  ThreadPoolPolicy policy(4);
  std::vector<std::atomic<int>> hits(12);
  try {
    policy.run(12, [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 9) throw std::runtime_error("error at 9");
      if (i == 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        throw std::runtime_error("error at 2");
      }
    });
    FAIL() << "expected run() to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "error at 2");
  }
  // Worker 2's slice is {2, 6, 10}; the throw at 2 skips the rest of it.
  EXPECT_EQ(hits[2].load(), 1);
  EXPECT_EQ(hits[6].load(), 0);
  EXPECT_EQ(hits[10].load(), 0);
}

TEST(SerialPolicy, ExceptionPropagatesAndStops) {
  SerialPolicy policy;
  std::vector<std::size_t> ran;
  EXPECT_THROW(policy.run(5,
                          [&](std::size_t i) {
                            ran.push_back(i);
                            if (i == 2) throw std::runtime_error("boom");
                          }),
               std::runtime_error);
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(HardwareWorkerHint, AtLeastOne) {
  EXPECT_GE(hpc::exec::hardware_worker_hint(), 1);
}

TEST(ExecutionPolicy, PolymorphicUseThroughBase) {
  SerialPolicy serial;
  ThreadPoolPolicy threads(2);
  for (ExecutionPolicy* policy : {static_cast<ExecutionPolicy*>(&serial),
                                  static_cast<ExecutionPolicy*>(&threads)}) {
    std::vector<std::atomic<int>> hits(10);
    policy->run(10, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

}  // namespace
