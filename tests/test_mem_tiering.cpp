#include "mem/tiering.hpp"

#include <gtest/gtest.h>

namespace hpc::mem {
namespace {

const MemoryTier kFast = dram_tier();   // 90 ns
const MemoryTier kSlow = pmem_tier();   // 300 ns

TEST(Tiering, StaticHitRateEqualsCapacityFraction) {
  const TieringOutcome o =
      evaluate_tiering(kFast, kSlow, 100.0, 25.0, 1.0, TieringPolicy::kStatic);
  EXPECT_NEAR(o.fast_hit_rate, 0.25, 1e-9);
}

TEST(Tiering, HotColdBeatsStaticUnderSkew) {
  const TieringOutcome st =
      evaluate_tiering(kFast, kSlow, 100.0, 25.0, 1.0, TieringPolicy::kStatic);
  const TieringOutcome hc =
      evaluate_tiering(kFast, kSlow, 100.0, 25.0, 1.0, TieringPolicy::kHotCold);
  EXPECT_GT(hc.fast_hit_rate, st.fast_hit_rate + 0.2);
  EXPECT_LT(hc.mean_access_ns, st.mean_access_ns);
}

TEST(Tiering, UniformAccessEqualizesPolicies) {
  const TieringOutcome st =
      evaluate_tiering(kFast, kSlow, 100.0, 25.0, 0.0, TieringPolicy::kStatic);
  const TieringOutcome hc =
      evaluate_tiering(kFast, kSlow, 100.0, 25.0, 0.0, TieringPolicy::kHotCold);
  EXPECT_NEAR(st.fast_hit_rate, hc.fast_hit_rate, 1e-9);
}

TEST(Tiering, HitRateMonotoneInCapacity) {
  double prev = -1.0;
  for (const double cap : {5.0, 10.0, 25.0, 50.0, 100.0}) {
    const TieringOutcome o =
        evaluate_tiering(kFast, kSlow, 100.0, cap, 1.0, TieringPolicy::kHotCold);
    EXPECT_GT(o.fast_hit_rate, prev);
    prev = o.fast_hit_rate;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);  // everything fits at 100 GB
}

TEST(Tiering, SkewConcentratesBenefit) {
  // A tiny fast tier already captures most accesses under strong skew.
  const TieringOutcome mild =
      evaluate_tiering(kFast, kSlow, 100.0, 10.0, 0.5, TieringPolicy::kHotCold);
  const TieringOutcome strong =
      evaluate_tiering(kFast, kSlow, 100.0, 10.0, 1.3, TieringPolicy::kHotCold);
  EXPECT_GT(strong.fast_hit_rate, mild.fast_hit_rate);
  EXPECT_GT(strong.fast_hit_rate, 0.6);
}

TEST(Tiering, SlowdownBoundedByTierRatio) {
  const TieringOutcome o =
      evaluate_tiering(kFast, kSlow, 100.0, 1.0, 0.8, TieringPolicy::kHotCold);
  EXPECT_GE(o.slowdown_vs_all_fast, 1.0);
  EXPECT_LE(o.slowdown_vs_all_fast, kSlow.latency_ns / kFast.latency_ns + 1e-9);
}

TEST(Tiering, OversizedFastTierIsPerfect) {
  const TieringOutcome o =
      evaluate_tiering(kFast, kSlow, 50.0, 200.0, 1.0, TieringPolicy::kStatic);
  EXPECT_DOUBLE_EQ(o.fast_hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(o.slowdown_vs_all_fast, 1.0);
}

}  // namespace
}  // namespace hpc::mem
