#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>

namespace hpc::net {
namespace {

TEST(SingleSwitch, StarShape) {
  const Network net = make_single_switch(8);
  EXPECT_EQ(net.endpoints().size(), 8u);
  EXPECT_EQ(net.node_count(), 9u);
  EXPECT_EQ(net.endpoint_diameter(), 2);
  EXPECT_DOUBLE_EQ(net.mean_endpoint_hops(), 2.0);
}

TEST(FatTree, K4Counts) {
  const Network net = make_fat_tree(4);
  // k=4: 16 hosts, 4 cores, 8 agg+edge switches.
  EXPECT_EQ(net.endpoints().size(), 16u);
  EXPECT_EQ(net.node_count() - net.endpoints().size(), 4u + 8u + 8u);
  EXPECT_EQ(net.endpoint_diameter(), 6);  // host-edge-agg-core-agg-edge-host
}

TEST(FatTree, SamePodIsShorter) {
  const Network net = make_fat_tree(4);
  const auto& hosts = net.endpoints();
  // Hosts 0,1 share an edge switch; 0 and 15 are in different pods.
  EXPECT_EQ(net.hops(hosts[0], hosts[1]), 2);
  EXPECT_EQ(net.hops(hosts[0], hosts[15]), 6);
}

TEST(Torus2d, WrapAroundShortens) {
  const Network net = make_torus_2d(4, 4, 1);
  // Opposite corners are 2+2 hops away through switches thanks to wraparound
  // (+2 for the host links).
  EXPECT_LE(net.endpoint_diameter(), 2 + 4);
}

TEST(Torus2d, EndpointCount) {
  const Network net = make_torus_2d(3, 5, 2);
  EXPECT_EQ(net.endpoints().size(), 30u);
}

TEST(Dragonfly, GroupCountFormula) {
  // a=4, h=2 -> g = a*h+1 = 9 groups; 4 routers each; p=2 hosts per router.
  const Network net = make_dragonfly(4, 2, 2);
  EXPECT_EQ(net.endpoints().size(), static_cast<std::size_t>(9 * 4 * 2));
  EXPECT_EQ(net.node_count() - net.endpoints().size(), 9u * 4u);
}

TEST(Dragonfly, LowDiameter) {
  const Network net = make_dragonfly(4, 2, 2);
  // Minimal dragonfly routes: host-router(-router)(-global)(-router)-host
  // <= 5 switch hops + 2 host links.
  EXPECT_LE(net.endpoint_diameter(), 5 + 2);
  EXPECT_GE(net.endpoint_diameter(), 3);
}

TEST(Dragonfly, GlobalLinksAreOptical) {
  const Network net = make_dragonfly(4, 2, 2);
  // 9 groups, each pair connected once: 36 global optical links.
  EXPECT_EQ(net.duplex_links_of(LinkClass::kSiph), 36u);
}

TEST(HyperX, FullRowColumnConnectivity) {
  const Network net = make_hyperx_2d(3, 3, 1);
  EXPECT_EQ(net.endpoints().size(), 9u);
  // Any switch pair is at most 2 dimension hops: diameter <= 2 + 2 host links.
  EXPECT_LE(net.endpoint_diameter(), 4);
}

TEST(HyperX, SwitchLinkCount) {
  const Network net = make_hyperx_2d(4, 4, 1);
  // Each row: C(4,2)=6 links x 4 rows; same for columns: 48 switch links
  // + 16 host links.
  EXPECT_EQ(net.link_count() / 2, 48u + 16u);
}

struct TopoCase {
  std::string name;
  std::function<Network()> build;
  int max_diameter;
};

class EveryTopology : public ::testing::TestWithParam<TopoCase> {};

TEST_P(EveryTopology, AllPairsConnected) {
  const Network net = GetParam().build();
  const auto& eps = net.endpoints();
  ASSERT_GE(eps.size(), 2u);
  for (const int a : eps)
    for (const int b : eps)
      if (a != b) {
        EXPECT_GT(net.hops(a, b), 0);
      }
}

TEST_P(EveryTopology, DiameterWithinSpec) {
  const Network net = GetParam().build();
  EXPECT_LE(net.endpoint_diameter(), GetParam().max_diameter);
}

TEST_P(EveryTopology, RoutesAreLoopFree) {
  const Network net = GetParam().build();
  const auto& eps = net.endpoints();
  for (std::size_t i = 0; i < eps.size(); i += 3)
    for (std::size_t j = 0; j < eps.size(); j += 3) {
      if (eps[i] == eps[j]) continue;
      const std::vector<int> path = net.route(eps[i], eps[j]);
      std::set<int> visited{eps[i]};
      for (const int lid : path) {
        const int next = net.link(lid).to;
        EXPECT_TRUE(visited.insert(next).second) << "loop in route";
      }
    }
}

TEST_P(EveryTopology, SummaryConsistent) {
  const Network net = GetParam().build();
  const TopologySummary s = summarize(net, GetParam().name);
  EXPECT_EQ(s.endpoints, static_cast<int>(net.endpoints().size()));
  EXPECT_EQ(s.switches, static_cast<int>(net.node_count()) - s.endpoints);
  EXPECT_GT(s.cost_usd, 0.0);
  EXPECT_GE(s.mean_hops, 1.0);
  EXPECT_LE(s.mean_hops, s.diameter);
  EXPECT_EQ(s.electrical_links + s.optical_links, net.link_count() / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Fleet, EveryTopology,
    ::testing::Values(
        TopoCase{"star16", [] { return make_single_switch(16); }, 2},
        TopoCase{"fattree4", [] { return make_fat_tree(4); }, 6},
        TopoCase{"torus4x4", [] { return make_torus_2d(4, 4, 1); }, 6},
        TopoCase{"dragonfly", [] { return make_dragonfly(4, 2, 2); }, 7},
        TopoCase{"hyperx3x3", [] { return make_hyperx_2d(3, 3, 2); }, 4}),
    [](const ::testing::TestParamInfo<TopoCase>& info) { return info.param.name; });

}  // namespace
}  // namespace hpc::net
