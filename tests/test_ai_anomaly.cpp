#include "ai/anomaly.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace hpc::ai {
namespace {

TEST(StreamingDetector, QuietStreamNoAlarms) {
  StreamingDetector det(0.05, 4.0, 50);
  sim::Rng rng(51);
  int alarms = 0;
  for (int i = 0; i < 5'000; ++i)
    if (det.observe(rng.normal(10.0, 0.5))) ++alarms;
  // 4-sigma threshold: essentially no alarms on Gaussian noise.
  EXPECT_LT(alarms, 10);
  EXPECT_NEAR(det.mean(), 10.0, 0.3);
}

TEST(StreamingDetector, CatchesLargeSpike) {
  StreamingDetector det(0.05, 4.0, 50);
  sim::Rng rng(52);
  for (int i = 0; i < 500; ++i) det.observe(rng.normal(10.0, 0.5));
  EXPECT_TRUE(det.observe(25.0));
  EXPECT_EQ(det.alarms(), 1);
}

TEST(StreamingDetector, WarmupSuppressesAlarms) {
  StreamingDetector det(0.05, 4.0, 100);
  sim::Rng rng(53);
  det.observe(10.0);
  det.observe(10.1);
  // A wild value during warmup must not alarm.
  EXPECT_FALSE(det.observe(1'000.0));
}

TEST(StreamingDetector, OutliersDoNotPoisonBaseline) {
  StreamingDetector det(0.05, 4.0, 50);
  sim::Rng rng(54);
  for (int i = 0; i < 1'000; ++i) det.observe(rng.normal(5.0, 0.2));
  const double mean_before = det.mean();
  for (int i = 0; i < 20; ++i) det.observe(100.0);  // attack burst
  EXPECT_NEAR(det.mean(), mean_before, 0.1);  // baseline unchanged
  EXPECT_GE(det.alarms(), 19);
}

TEST(StreamingDetector, AdaptsToSlowDrift) {
  StreamingDetector det(0.05, 4.0, 50);
  sim::Rng rng(55);
  int alarms = 0;
  double level = 10.0;
  for (int i = 0; i < 5'000; ++i) {
    level += 0.001;  // slow drift well under threshold per step
    if (det.observe(rng.normal(level, 0.5))) ++alarms;
  }
  EXPECT_LT(alarms, 25);
  EXPECT_NEAR(det.mean(), level, 1.0);
}

TEST(StreamingDetector, PrecisionRecallOnLabelledStream) {
  StreamingDetector det(0.05, 4.0, 100);
  sim::Rng rng(56);
  DetectionQuality q;
  for (int i = 0; i < 10'000; ++i) {
    const bool attack = i > 200 && rng.bernoulli(0.01);
    const double value = attack ? rng.normal(30.0, 2.0) : rng.normal(10.0, 0.5);
    const bool alarm = det.observe(value);
    if (attack && alarm) ++q.true_positives;
    if (attack && !alarm) ++q.false_negatives;
    if (!attack && alarm) ++q.false_positives;
    if (!attack && !alarm) ++q.true_negatives;
  }
  EXPECT_GT(q.precision(), 0.9);
  EXPECT_GT(q.recall(), 0.9);
}

TEST(DetectionQuality, EmptyCountersSafe) {
  const DetectionQuality q;
  EXPECT_DOUBLE_EQ(q.precision(), 0.0);
  EXPECT_DOUBLE_EQ(q.recall(), 0.0);
}

}  // namespace
}  // namespace hpc::ai
