#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "sim/stats.hpp"

namespace hpc::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= x == 0;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.push(rng.exponential(5.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.push(rng.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ParetoMinimumAndMean) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 200'000; ++i) {
    const double x = rng.pareto(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    s.push(x);
  }
  // Mean of Pareto(xm=2, alpha=3) is xm*alpha/(alpha-1) = 3.
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
}

TEST(Rng, ZipfRankOneMostFrequent) {
  Rng rng(12);
  std::array<int, 11> counts{};
  for (int i = 0; i < 50'000; ++i) {
    const std::size_t r = rng.zipf(10, 1.2);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 10u);
    ++counts[r];
  }
  for (std::size_t r = 2; r <= 10; ++r) EXPECT_GT(counts[1], counts[r]);
}

TEST(Rng, ZipfZeroExponentIsUniformish) {
  Rng rng(13);
  std::array<int, 5> counts{};
  for (int i = 0; i < 50'000; ++i) ++counts[rng.zipf(4, 0.0) - 1];
  for (int r = 0; r < 4; ++r) EXPECT_NEAR(counts[r], 12'500, 800);
}

TEST(Rng, ZipfCacheInvalidatesOnParamChange) {
  Rng rng(14);
  // Exercise the cached table with alternating parameters.
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(rng.zipf(5, 1.0), 5u);
    EXPECT_LE(rng.zipf(50, 2.0), 50u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ForkIsIndependent) {
  Rng a(42);
  Rng fork = a.fork();
  // The fork must not replay the parent's stream.
  int same = 0;
  Rng b(42);
  b.fork();
  for (int i = 0; i < 100; ++i)
    if (fork.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 100);  // sanity: streams exist
}

TEST(Rng, IndexCoversRange) {
  Rng rng(16);
  std::array<bool, 7> seen{};
  for (int i = 0; i < 1'000; ++i) seen[rng.index(7)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, PickReturnsElement) {
  Rng rng(17);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int v = rng.pick(std::span<const int>(items));
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

}  // namespace
}  // namespace hpc::sim
