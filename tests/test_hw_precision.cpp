#include "hw/precision.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hpc::hw {
namespace {

TEST(Precision, BitsAndBytes) {
  EXPECT_EQ(bits_of(Precision::FP64), 64);
  EXPECT_EQ(bits_of(Precision::FP32), 32);
  EXPECT_EQ(bits_of(Precision::BF16), 16);
  EXPECT_EQ(bits_of(Precision::INT8), 8);
  EXPECT_EQ(bits_of(Precision::INT4), 4);
  EXPECT_DOUBLE_EQ(bytes_of(Precision::TF32), 4.0);  // stored as 32-bit
  EXPECT_DOUBLE_EQ(bytes_of(Precision::INT4), 0.5);
}

TEST(Precision, Names) {
  EXPECT_EQ(name_of(Precision::BF16), "bf16");
  EXPECT_EQ(name_of(Precision::INT8), "int8");
}

TEST(Bf16, ExactValuesPreserved) {
  // Powers of two and small integers are exactly representable.
  for (const float v : {0.0f, 1.0f, -2.0f, 0.5f, 256.0f, -1024.0f})
    EXPECT_EQ(round_bf16(v), v);
}

TEST(Bf16, RelativeErrorBounded) {
  // bf16 has 8 significand bits (incl. implicit): rel error <= 2^-8.
  for (float v = 0.001f; v < 1e6f; v *= 3.7f) {
    const float r = round_bf16(v);
    EXPECT_NEAR(r / v, 1.0f, 1.0f / 256.0f) << v;
  }
}

TEST(Bf16, Idempotent) {
  for (float v = 0.001f; v < 1e6f; v *= 2.3f)
    EXPECT_EQ(round_bf16(round_bf16(v)), round_bf16(v));
}

TEST(Fp16, RelativeErrorBounded) {
  for (float v = 0.01f; v < 60'000.0f; v *= 3.1f) {
    const float r = round_fp16(v);
    EXPECT_NEAR(r / v, 1.0f, 1.0f / 1024.0f) << v;
  }
}

TEST(Fp16, OverflowsToInfinity) {
  EXPECT_TRUE(std::isinf(round_fp16(70'000.0f)));
  EXPECT_TRUE(std::isinf(round_fp16(-70'000.0f)));
  EXPECT_LT(round_fp16(-70'000.0f), 0.0f);
}

TEST(Fp16, SubnormalsQuantized) {
  const float tiny = 1e-7f;
  const float r = round_fp16(tiny);
  // Quantized to a multiple of 2^-24.
  const float q = 5.960464477539063e-8f;
  EXPECT_NEAR(std::fmod(r, q), 0.0f, 1e-12f);
}

TEST(Tf32, MorePreciseThanBf16) {
  double tf32_err = 0.0;
  double bf16_err = 0.0;
  for (float v = 0.37f; v < 1000.0f; v *= 1.7f) {
    tf32_err += std::abs(round_tf32(v) - v) / v;
    bf16_err += std::abs(round_bf16(v) - v) / v;
  }
  EXPECT_LT(tf32_err, bf16_err);
}

TEST(Int8, ClampsToRange) {
  EXPECT_FLOAT_EQ(round_int8(1e9f, 1.0f), 127.0f);
  EXPECT_FLOAT_EQ(round_int8(-1e9f, 1.0f), -127.0f);
}

TEST(Int8, QuantizesToScaleMultiples) {
  const float scale = 0.1f;
  for (const float v : {0.04f, 0.06f, 0.13f, -0.27f}) {
    const float q = round_int8(v, scale);
    EXPECT_NEAR(std::fmod(q, scale), 0.0f, 1e-6f);
    EXPECT_NEAR(q, v, scale / 2.0f + 1e-6f);
  }
}

TEST(Int8, ZeroScaleYieldsZero) { EXPECT_FLOAT_EQ(round_int8(3.0f, 0.0f), 0.0f); }

TEST(Int4, CoarserThanInt8) {
  const float scale = 0.1f;
  EXPECT_FLOAT_EQ(round_int4(10.0f, scale), 0.7f);   // clamps at 7 levels
  EXPECT_FLOAT_EQ(round_int8(10.0f, scale), 10.0f);  // 100 levels fit in int8
}

TEST(ApplyPrecision, Fp32IsIdentity) {
  for (const float v : {1.234567f, -9.87e-12f, 3.4e28f})
    EXPECT_EQ(apply_precision(v, Precision::FP32), v);
}

TEST(ApplyPrecision, DispatchesAllFormats) {
  const float v = 1.2345678f;
  EXPECT_EQ(apply_precision(v, Precision::BF16), round_bf16(v));
  EXPECT_EQ(apply_precision(v, Precision::FP16), round_fp16(v));
  EXPECT_EQ(apply_precision(v, Precision::TF32), round_tf32(v));
  EXPECT_EQ(apply_precision(v, Precision::INT8, 0.01f), round_int8(v, 0.01f));
}

class PrecisionErrorOrdering : public ::testing::TestWithParam<float> {};

TEST_P(PrecisionErrorOrdering, WiderFormatsNoWorse) {
  const float v = GetParam();
  const float e_tf32 = std::abs(round_tf32(v) - v);
  const float e_fp16 = std::abs(round_fp16(v) - v);
  const float e_bf16 = std::abs(round_bf16(v) - v);
  EXPECT_LE(e_tf32, e_bf16);
  // fp16 has more mantissa bits than bf16 inside its exponent range.
  if (std::abs(v) < 60'000.0f && std::abs(v) > 1e-4f) {
    EXPECT_LE(e_fp16, e_bf16);
  }
}

INSTANTIATE_TEST_SUITE_P(SweepValues, PrecisionErrorOrdering,
                         ::testing::Values(0.001f, 0.1f, 0.7f, 1.5f, 3.14159f, 42.0f,
                                           1234.5f, 54321.0f));

TEST(Bf16, RoundToNearestEven) {
  // 1 + 2^-8 is exactly halfway between 1.0 and 1 + 2^-7; ties to even -> 1.0.
  const float halfway = 1.0f + 1.0f / 256.0f;
  EXPECT_FLOAT_EQ(round_bf16(halfway), 1.0f);
  // Slightly above halfway rounds up.
  EXPECT_FLOAT_EQ(round_bf16(1.0f + 1.5f / 256.0f), 1.0f + 1.0f / 128.0f);
}

}  // namespace
}  // namespace hpc::hw
