#include "core/datart.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace hpc::core {
namespace {

RegionRequirement read(int r) { return {r, Access::kRead}; }
RegionRequirement write(int r) { return {r, Access::kWrite}; }
RegionRequirement rw(int r) { return {r, Access::kReadWrite}; }

TEST(DataRuntime, RawDependencyExtracted) {
  DataRuntime rt;
  const int a = rt.add_region("a", 1.0);
  const int producer = rt.add_task("produce", {write(a)}, 100.0);
  const int consumer = rt.add_task("consume", {read(a)}, 50.0);
  EXPECT_TRUE(rt.dependencies(producer).empty());
  EXPECT_EQ(rt.dependencies(consumer), std::vector<int>{producer});
}

TEST(DataRuntime, WawDependencyExtracted) {
  DataRuntime rt;
  const int a = rt.add_region("a", 1.0);
  const int first = rt.add_task("w1", {write(a)}, 100.0);
  const int second = rt.add_task("w2", {write(a)}, 100.0);
  EXPECT_EQ(rt.dependencies(second), std::vector<int>{first});
}

TEST(DataRuntime, WarDependencyExtracted) {
  DataRuntime rt;
  const int a = rt.add_region("a", 1.0);
  const int w = rt.add_task("w", {write(a)}, 100.0);
  const int r1 = rt.add_task("r1", {read(a)}, 50.0);
  const int r2 = rt.add_task("r2", {read(a)}, 50.0);
  const int w2 = rt.add_task("w-again", {write(a)}, 100.0);
  const std::vector<int>& deps = rt.dependencies(w2);
  // The second writer waits for both readers (WAR), not just the writer.
  EXPECT_NE(std::find(deps.begin(), deps.end(), r1), deps.end());
  EXPECT_NE(std::find(deps.begin(), deps.end(), r2), deps.end());
  (void)w;
}

TEST(DataRuntime, ConcurrentReadersIndependent) {
  DataRuntime rt;
  const int a = rt.add_region("a", 1.0);
  rt.add_task("w", {write(a)}, 100.0);
  const int r1 = rt.add_task("r1", {read(a)}, 50.0);
  const int r2 = rt.add_task("r2", {read(a)}, 50.0);
  // Readers depend on the writer but not on each other.
  EXPECT_EQ(rt.dependencies(r1), std::vector<int>{0});
  EXPECT_EQ(rt.dependencies(r2), std::vector<int>{0});
}

TEST(DataRuntime, DisjointRegionsFullyParallel) {
  DataRuntime rt;
  for (int i = 0; i < 8; ++i) {
    const int r = rt.add_region("r" + std::to_string(i), 1.0);
    rt.add_task("t" + std::to_string(i), {rw(r)}, 100.0);
  }
  const RuntimeSchedule s = rt.schedule(8);
  EXPECT_NEAR(s.makespan_ns, 100.0, 1e-9);  // everything runs at once
  EXPECT_NEAR(s.speedup, 8.0, 1e-9);
  EXPECT_NEAR(s.parallel_efficiency, 1.0, 1e-9);
}

TEST(DataRuntime, ChainFullySerial) {
  DataRuntime rt;
  const int a = rt.add_region("a", 1.0);
  for (int i = 0; i < 5; ++i) rt.add_task("s" + std::to_string(i), {rw(a)}, 100.0);
  const RuntimeSchedule s = rt.schedule(8);
  EXPECT_NEAR(s.makespan_ns, 500.0, 1e-9);
  EXPECT_NEAR(s.speedup, 1.0, 1e-9);
}

TEST(DataRuntime, ScheduleRespectsDependencies) {
  DataRuntime rt;
  const int a = rt.add_region("a", 1.0);
  const int b = rt.add_region("b", 1.0);
  rt.add_task("wa", {write(a)}, 100.0);
  rt.add_task("wb", {write(b)}, 70.0);
  rt.add_task("join", {read(a), read(b)}, 30.0);
  const RuntimeSchedule s = rt.schedule(2);
  for (std::size_t t = 0; t < rt.task_count(); ++t)
    for (const int d : rt.dependencies(static_cast<int>(t)))
      EXPECT_GE(s.tasks[t].start_ns, s.tasks[static_cast<std::size_t>(d)].finish_ns);
  EXPECT_NEAR(s.makespan_ns, 130.0, 1e-9);  // max(100,70) + 30
}

TEST(DataRuntime, NoWorkerRunsTwoTasksAtOnce) {
  DataRuntime rt;
  sim::Rng rng(7);
  std::vector<int> regions;
  for (int i = 0; i < 6; ++i) regions.push_back(rt.add_region("r" + std::to_string(i), 1.0));
  for (int t = 0; t < 40; ++t) {
    std::vector<RegionRequirement> reqs;
    reqs.push_back(rng.bernoulli(0.5) ? read(regions[rng.index(6)])
                                      : write(regions[rng.index(6)]));
    if (rng.bernoulli(0.3)) reqs.push_back(read(regions[rng.index(6)]));
    rt.add_task("t" + std::to_string(t), std::move(reqs), rng.uniform(10.0, 100.0));
  }
  const RuntimeSchedule s = rt.schedule(3);
  for (std::size_t i = 0; i < s.tasks.size(); ++i)
    for (std::size_t j = i + 1; j < s.tasks.size(); ++j) {
      if (s.tasks[i].worker != s.tasks[j].worker) continue;
      const bool disjoint = s.tasks[i].finish_ns <= s.tasks[j].start_ns + 1e-9 ||
                            s.tasks[j].finish_ns <= s.tasks[i].start_ns + 1e-9;
      EXPECT_TRUE(disjoint) << i << " vs " << j;
    }
}

TEST(DataRuntime, MakespanNeverBelowCriticalPath) {
  DataRuntime rt;
  const int a = rt.add_region("a", 1.0);
  const int b = rt.add_region("b", 1.0);
  rt.add_task("w1", {write(a)}, 120.0);
  rt.add_task("r", {read(a), write(b)}, 60.0);
  rt.add_task("ind", {}, 200.0);
  for (const int workers : {1, 2, 4, 16}) {
    const RuntimeSchedule s = rt.schedule(workers);
    EXPECT_GE(s.makespan_ns, rt.critical_path_ns() - 1e-9) << workers;
    EXPECT_LE(s.makespan_ns, rt.serial_ns() + 1e-9) << workers;
  }
}

TEST(DataRuntime, MoreWorkersNeverSlower) {
  DataRuntime rt;
  sim::Rng rng(9);
  std::vector<int> regions;
  for (int i = 0; i < 10; ++i) regions.push_back(rt.add_region("r" + std::to_string(i), 1.0));
  for (int t = 0; t < 60; ++t)
    rt.add_task("t" + std::to_string(t),
                {rng.bernoulli(0.4) ? write(regions[rng.index(10)])
                                    : read(regions[rng.index(10)])},
                rng.uniform(10.0, 80.0));
  double prev = 1e300;
  for (const int workers : {1, 2, 4, 8}) {
    const double makespan = rt.schedule(workers).makespan_ns;
    EXPECT_LE(makespan, prev + 1e-6);
    prev = makespan;
  }
}

TEST(DataRuntime, MapsHotRegionsToFastTiers) {
  DataRuntime rt;
  const int hot = rt.add_region("hot", 10.0);
  const int warm = rt.add_region("warm", 10.0);
  const int cold = rt.add_region("cold", 10.0);
  for (int i = 0; i < 10; ++i) rt.add_task("h" + std::to_string(i), {rw(hot)}, 100.0);
  for (int i = 0; i < 3; ++i) rt.add_task("w" + std::to_string(i), {rw(warm)}, 100.0);
  rt.add_task("c", {read(cold)}, 100.0);

  // Tiny HBM tier: only one 10 GB region fits.
  mem::MemoryTier hbm = mem::hbm_tier();
  hbm.capacity_gb = 12.0;
  const mem::Hierarchy hierarchy({hbm, mem::dram_tier(), mem::pmem_tier()});
  const std::vector<std::size_t> placement = rt.map_regions(hierarchy);
  EXPECT_EQ(placement[static_cast<std::size_t>(hot)], 0u);   // HBM
  EXPECT_EQ(placement[static_cast<std::size_t>(warm)], 1u);  // DRAM
  EXPECT_EQ(placement[static_cast<std::size_t>(cold)], 1u);  // DRAM still fits
}

TEST(DataRuntime, EmptyScheduleSafe) {
  const DataRuntime rt;
  const RuntimeSchedule s = rt.schedule(4);
  EXPECT_DOUBLE_EQ(s.makespan_ns, 0.0);
}

}  // namespace
}  // namespace hpc::core
