#include "sim/report.hpp"

#include <gtest/gtest.h>

namespace hpc::sim {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(Fmt, Digits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(FmtBytes, Units) {
  EXPECT_EQ(fmt_bytes(500.0), "500.00 B");
  EXPECT_EQ(fmt_bytes(1'500.0), "1.50 KB");
  EXPECT_EQ(fmt_bytes(2.5e9), "2.50 GB");
  EXPECT_EQ(fmt_bytes(3e12), "3.00 TB");
}

TEST(FmtTime, Units) {
  EXPECT_EQ(fmt_time_ns(500.0), "500.0 ns");
  EXPECT_EQ(fmt_time_ns(2'500.0), "2.50 us");
  EXPECT_EQ(fmt_time_ns(3.5e6), "3.50 ms");
  EXPECT_EQ(fmt_time_ns(1.25e9), "1.250 s");
}

}  // namespace
}  // namespace hpc::sim
