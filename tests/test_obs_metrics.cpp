#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

/// \file test_obs_metrics.cpp
/// MetricRegistry unit tests: instrument semantics (counters, gauges with
/// extrema, log-binned histogram percentiles), stable references across
/// registry growth, deterministic sorted snapshots with hostile-name
/// escaping, and the snapshot validator's rejection of malformed artifacts
/// (mirroring the tools/benchjson validator contract).

namespace hpc::obs {
namespace {

TEST(Metrics, CounterAndGaugeSemantics) {
  MetricRegistry reg;
  Counter& c = reg.counter("a.count");
  c.inc();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(reg.counter("a.count").value(), 5u);  // same instrument

  Gauge& g = reg.gauge("a.depth");
  EXPECT_EQ(g.min(), 0.0);  // no samples yet
  g.set(3.0);
  g.set(-1.0);
  g.set(2.0);
  EXPECT_EQ(g.value(), 2.0);
  EXPECT_EQ(g.min(), -1.0);
  EXPECT_EQ(g.max(), 3.0);
  EXPECT_EQ(g.samples(), 3u);
  EXPECT_EQ(reg.gauge_count(), 1u);
}

TEST(Metrics, ReferencesSurviveRegistryGrowth) {
  MetricRegistry reg;
  Counter& first = reg.counter("m.000");
  first.add(7);
  // Force many rebalances of the underlying map.
  for (int i = 1; i < 200; ++i)
    reg.counter("m." + std::to_string(i)).inc();
  EXPECT_EQ(first.value(), 7u);
  EXPECT_EQ(reg.counter("m.000").value(), 7u);
  EXPECT_EQ(reg.counter_count(), 200u);
}

TEST(Metrics, HistogramPercentilesTrackLogBins) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("lat");
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(reg.histogram_count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Log-binned: percentile error is bounded by the per-decade resolution.
  EXPECT_NEAR(h.percentile(50.0), 500.0, 500.0 * 0.15);
  EXPECT_NEAR(h.percentile(99.0), 990.0, 990.0 * 0.15);
  EXPECT_GT(h.percentile(99.9), h.percentile(50.0));
}

TEST(Metrics, SnapshotIsSortedDeterministicAndValid) {
  auto build = [] {
    MetricRegistry reg;
    reg.counter("z.last").add(3);
    reg.counter("a.first").inc();
    reg.gauge("m.depth").set(4.25);
    Histogram& h = reg.histogram("m.wait");
    h.record(10.0);
    h.record(1000.0);
    return reg.snapshot_json();
  };
  const std::string snap = build();
  EXPECT_EQ(snap, build());  // byte-identical for identical contents
  EXPECT_EQ(validate_snapshot_text(snap), "");
  // Sorted iteration: "a.first" serializes before "z.last".
  EXPECT_LT(snap.find("a.first"), snap.find("z.last"));
}

TEST(Metrics, SnapshotEscapesHostileMetricNames) {
  MetricRegistry reg;
  reg.counter("bad\"name\\with\nnewline").inc();
  reg.gauge("tab\there").set(1.0);
  const std::string snap = reg.snapshot_json();
  EXPECT_EQ(validate_snapshot_text(snap), "") << snap;
}

TEST(Metrics, ValidatorRejectsMalformedArtifacts) {
  EXPECT_NE(validate_snapshot_text("not json"), "");
  EXPECT_NE(validate_snapshot_text("{}"), "");
  EXPECT_NE(validate_snapshot_text(
                R"({"schema": "wrong", "counters": [], "gauges": [], "histograms": []})"),
            "");
  // Right schema but a section missing.
  EXPECT_NE(validate_snapshot_text(
                R"({"schema": "archipelago-metrics-v1", "counters": [], "gauges": []})"),
            "");
  // Non-numeric field value.
  EXPECT_NE(validate_snapshot_text(
                R"({"schema": "archipelago-metrics-v1",
                    "counters": [{"name": "c", "value": "NaN"}],
                    "gauges": [], "histograms": []})"),
            "");
  // Unsorted names break the determinism contract.
  EXPECT_NE(validate_snapshot_text(
                R"({"schema": "archipelago-metrics-v1",
                    "counters": [{"name": "b", "value": 1}, {"name": "a", "value": 1}],
                    "gauges": [], "histograms": []})"),
            "");
}

TEST(Metrics, SnapshotOfEmptyRegistryIsValid) {
  MetricRegistry reg;
  EXPECT_EQ(validate_snapshot_text(reg.snapshot_json()), "");
}

}  // namespace
}  // namespace hpc::obs
