#include "sched/job.hpp"

#include <gtest/gtest.h>

#include "hw/catalog.hpp"
#include "sched/workload.hpp"

namespace hpc::sched {
namespace {

Job gemm_job(double gflop = 1e6) {
  Job j;
  j.id = 1;
  j.total_gflop = gflop;
  j.mix = pure_mix(hw::OpClass::kGemm);
  j.precision = hw::Precision::BF16;
  j.nodes = 1;
  return j;
}

TEST(OpMix, PureAndNormalize) {
  OpMix mix = pure_mix(hw::OpClass::kFft);
  EXPECT_DOUBLE_EQ(mix[static_cast<std::size_t>(hw::OpClass::kFft)], 1.0);
  mix[static_cast<std::size_t>(hw::OpClass::kGemm)] = 3.0;
  normalize(mix);
  EXPECT_DOUBLE_EQ(mix[static_cast<std::size_t>(hw::OpClass::kGemm)], 0.75);
  EXPECT_DOUBLE_EQ(mix[static_cast<std::size_t>(hw::OpClass::kFft)], 0.25);
}

TEST(OpMix, NormalizeAllZeroIsNoop) {
  OpMix mix{};
  normalize(mix);
  for (const double v : mix) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(JobRuntime, ScalesInverselyWithNodes) {
  const Job j = gemm_job();
  const double t1 = job_runtime_ns(j, hw::gpu_hpc_spec(), 1);
  const double t4 = job_runtime_ns(j, hw::gpu_hpc_spec(), 4);
  EXPECT_NEAR(t1 / t4, 4.0, 0.01);
}

TEST(JobRuntime, ScalesLinearlyWithWork) {
  const double t1 = job_runtime_ns(gemm_job(1e6), hw::gpu_hpc_spec(), 1);
  const double t2 = job_runtime_ns(gemm_job(2e6), hw::gpu_hpc_spec(), 1);
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);
}

TEST(JobRuntime, ZeroNodesImpossible) {
  EXPECT_GE(job_runtime_ns(gemm_job(), hw::gpu_hpc_spec(), 0), 1e18);
}

TEST(JobRuntime, AffinityGpuVsCpuOnTraining) {
  const Job j = gemm_job();
  EXPECT_LT(job_runtime_ns(j, hw::gpu_hpc_spec(), 1) * 10.0,
            job_runtime_ns(j, hw::cpu_server_spec(), 1));
}

TEST(JobRuntime, AffinityCpuVsSystolicOnGraphs) {
  Job j;
  j.total_gflop = 1e5;
  j.mix = pure_mix(hw::OpClass::kGraph);
  j.precision = hw::Precision::FP64;
  j.nodes = 1;
  EXPECT_LT(job_runtime_ns(j, hw::cpu_server_spec(), 1),
            job_runtime_ns(j, hw::systolic_spec(), 1));
}

TEST(JobRuntime, MixedJobIsWeightedSum) {
  Job pure_a = gemm_job(1e6);
  Job pure_b = pure_a;
  pure_b.mix = pure_mix(hw::OpClass::kFft);
  Job mixed = pure_a;
  mixed.mix = OpMix{};
  mixed.mix[static_cast<std::size_t>(hw::OpClass::kGemm)] = 0.5;
  mixed.mix[static_cast<std::size_t>(hw::OpClass::kFft)] = 0.5;
  const hw::DeviceSpec dev = hw::gpu_hpc_spec();
  const double ta = job_runtime_ns(pure_a, dev, 1);
  const double tb = job_runtime_ns(pure_b, dev, 1);
  const double tm = job_runtime_ns(mixed, dev, 1);
  EXPECT_NEAR(tm, 0.5 * ta + 0.5 * tb, (ta + tb) * 0.01);
}

TEST(JobEnergy, TdpTimesTime) {
  const Job j = gemm_job();
  const hw::DeviceSpec dev = hw::gpu_hpc_spec();
  const double t = job_runtime_ns(j, dev, 2);
  EXPECT_NEAR(job_energy_j(j, dev, 2), t * 1e-9 * dev.tdp_w * 2.0, 1e-6);
}

TEST(SustainedGflops, PositiveForSupportedClasses) {
  for (int c = 0; c < hw::kOpClassCount; ++c) {
    const double rate = sustained_gflops(hw::cpu_server_spec(),
                                         static_cast<hw::OpClass>(c), hw::Precision::FP64);
    EXPECT_GT(rate, 0.0) << "class " << c;
  }
}

TEST(SustainedGflops, SystolicGemmDwarfsItsGraphRate) {
  const hw::DeviceSpec tpu = hw::systolic_spec();
  const double gemm = sustained_gflops(tpu, hw::OpClass::kGemm, hw::Precision::BF16);
  const double graph = sustained_gflops(tpu, hw::OpClass::kGraph, hw::Precision::BF16);
  EXPECT_GT(gemm, 100.0 * graph);
}

}  // namespace
}  // namespace hpc::sched
