#include "ai/exec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ai/datasets.hpp"

namespace hpc::ai {
namespace {

/// Shared fixture: one well-trained classifier reused across executor tests.
class ExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new sim::Rng(21);
    const Dataset all = make_blobs(1'500, 4, 2, 0.5, *rng_);
    auto [train, test] = split(all, 0.8);
    test_ = new Dataset(std::move(test));
    model_ = new Mlp({2, 32, 32, 4}, Activation::kReLU, Loss::kSoftmaxCrossEntropy, *rng_);
    TrainConfig cfg;
    cfg.epochs = 60;
    model_->train(train, cfg, *rng_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete test_;
    delete rng_;
    model_ = nullptr;
    test_ = nullptr;
    rng_ = nullptr;
  }

  static Mlp* model_;
  static Dataset* test_;
  static sim::Rng* rng_;
};

Mlp* ExecTest::model_ = nullptr;
Dataset* ExecTest::test_ = nullptr;
sim::Rng* ExecTest::rng_ = nullptr;

TEST_F(ExecTest, ExactExecutorMatchesNativeForward) {
  ExactExecutor exec;
  const auto x = test_->input(0);
  const std::vector<float> a = model_->forward(x);
  const std::vector<float> b = forward_with(*model_, x, exec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
  EXPECT_DOUBLE_EQ(accuracy_with(*model_, *test_, exec), model_->accuracy(*test_));
}

TEST_F(ExecTest, BaselineAccuracyIsHigh) {
  ExactExecutor exec;
  EXPECT_GT(accuracy_with(*model_, *test_, exec), 0.9);
}

TEST_F(ExecTest, Bf16NearlyLossless) {
  ExactExecutor exact;
  QuantizedExecutor bf16(hw::Precision::BF16);
  const double base = accuracy_with(*model_, *test_, exact);
  const double q = accuracy_with(*model_, *test_, bf16);
  EXPECT_GT(q, base - 0.02);
}

TEST_F(ExecTest, Fp16NearlyLossless) {
  ExactExecutor exact;
  QuantizedExecutor fp16(hw::Precision::FP16);
  EXPECT_GT(accuracy_with(*model_, *test_, fp16),
            accuracy_with(*model_, *test_, exact) - 0.02);
}

TEST_F(ExecTest, Int8SmallLoss) {
  ExactExecutor exact;
  QuantizedExecutor int8(hw::Precision::INT8);
  EXPECT_GT(accuracy_with(*model_, *test_, int8),
            accuracy_with(*model_, *test_, exact) - 0.05);
}

TEST_F(ExecTest, Int4DegradesMoreThanInt8) {
  QuantizedExecutor int8(hw::Precision::INT8);
  QuantizedExecutor int4(hw::Precision::INT4);
  EXPECT_LE(accuracy_with(*model_, *test_, int4),
            accuracy_with(*model_, *test_, int8) + 0.02);
}

TEST_F(ExecTest, AnalogLowNoiseUsable) {
  hw::AnalogSpec spec = hw::dpe_spec();
  spec.read_noise_sigma = 0.01;
  const hw::AnalogEngine engine(spec);
  sim::Rng rng(31);
  AnalogExecutor analog(engine, rng);
  ExactExecutor exact;
  EXPECT_GT(accuracy_with(*model_, *test_, analog),
            accuracy_with(*model_, *test_, exact) - 0.1);
}

TEST_F(ExecTest, AnalogAccuracyDegradesWithNoise) {
  auto acc_at = [&](double sigma) {
    hw::AnalogSpec spec = hw::dpe_spec();
    spec.read_noise_sigma = sigma;
    const hw::AnalogEngine engine(spec);
    sim::Rng rng(32);
    AnalogExecutor analog(engine, rng);
    return accuracy_with(*model_, *test_, analog);
  };
  const double clean = acc_at(0.005);
  const double noisy = acc_at(0.5);
  EXPECT_GT(clean, noisy + 0.1);
}

TEST_F(ExecTest, QuantizedRegressionRmseOrdering) {
  sim::Rng rng(33);
  const Dataset all = make_oscillator(1'200, rng);
  auto [train, test] = split(all, 0.85);
  Mlp reg({3, 32, 32, 1}, Activation::kTanh, Loss::kMse, rng);
  TrainConfig cfg;
  cfg.epochs = 150;
  cfg.learning_rate = 0.05f;
  reg.train(train, cfg, rng);

  ExactExecutor exact;
  QuantizedExecutor bf16(hw::Precision::BF16);
  QuantizedExecutor int4(hw::Precision::INT4);
  const double e_exact = rmse_with(reg, test, exact);
  const double e_bf16 = rmse_with(reg, test, bf16);
  const double e_int4 = rmse_with(reg, test, int4);
  EXPECT_LT(e_exact, 0.12);
  EXPECT_LT(e_bf16, e_int4);
  EXPECT_GE(e_int4, e_exact);
}

}  // namespace
}  // namespace hpc::ai
