#include "net/switchgen.hpp"

#include <gtest/gtest.h>

namespace hpc::net {
namespace {

TEST(SwitchGen, PaperAnchors) {
  // Section II.B: "state of the art switches (12.8 Tbps)" with "one more
  // natural step (to 25.6 Tbps with 64 ports at 400 Gbps)".
  const auto roadmap = electrical_roadmap();
  ASSERT_GE(roadmap.size(), 2u);
  EXPECT_DOUBLE_EQ(roadmap[0].aggregate_tbps, 12.8);
  EXPECT_DOUBLE_EQ(roadmap[1].aggregate_tbps, 25.6);
  EXPECT_EQ(roadmap[1].radix, 64);
  EXPECT_DOUBLE_EQ(roadmap[1].port_gbps, 400.0);
}

TEST(SwitchGen, AggregateIsRadixTimesPort) {
  for (const auto& roadmap : {electrical_roadmap(), copackaged_roadmap()})
    for (const SwitchGen& g : roadmap)
      EXPECT_NEAR(g.aggregate_tbps, g.radix * g.port_gbps / 1'000.0, 1e-9) << g.name;
}

TEST(SwitchGen, ElectricalSerdesShareGrows) {
  const auto roadmap = electrical_roadmap();
  for (std::size_t g = 1; g < roadmap.size(); ++g)
    EXPECT_GT(roadmap[g].serdes_area_share, roadmap[g - 1].serdes_area_share);
}

TEST(SwitchGen, ElectricalReachCollapses) {
  const auto roadmap = electrical_roadmap();
  for (std::size_t g = 1; g < roadmap.size(); ++g)
    EXPECT_LT(roadmap[g].electrical_reach_m, roadmap[g - 1].electrical_reach_m);
  // "Increases in link speed have brought reductions in electrical reach."
  EXPECT_LT(roadmap.back().electrical_reach_m, 1.0);
}

TEST(SwitchGen, RadicalChangePointExists) {
  // The paper: "radical change is required beyond this point" — i.e. beyond
  // 25.6T the electrical path drowns in SerDes.
  const int g = radical_change_generation(electrical_roadmap());
  ASSERT_GE(g, 0);
  EXPECT_GE(electrical_roadmap()[static_cast<std::size_t>(g)].aggregate_tbps, 51.2);
}

TEST(SwitchGen, CopackagedEscapesTheWall) {
  EXPECT_EQ(radical_change_generation(copackaged_roadmap()), -1);
  // Optics keeps reach and logic share roughly flat while scaling bandwidth.
  const auto cpo = copackaged_roadmap();
  EXPECT_GT(cpo.back().aggregate_tbps, 200.0);
  EXPECT_GT(cpo.back().logic_area_share(), 0.7);
  EXPECT_GT(cpo.back().electrical_reach_m, 100.0);  // optical reach
}

TEST(SwitchGen, CopackagedBetterPowerPerTbpsAtScale) {
  const SwitchGen el = electrical_roadmap().back();     // 102.4T electrical
  const SwitchGen cpo = copackaged_roadmap()[2];        // 102.4T co-packaged
  EXPECT_DOUBLE_EQ(el.aggregate_tbps, cpo.aggregate_tbps);
  EXPECT_LT(cpo.power_per_tbps(), el.power_per_tbps());
}

TEST(SwitchGen, HighRadixEnabledByOptics) {
  // "A system fabric of essentially unlimited scale can be constructed from
  // low-cost switches" — radix growth happens on the optical path.
  EXPECT_EQ(electrical_roadmap().back().radix, 64);
  EXPECT_GE(copackaged_roadmap().back().radix, 256);
}

}  // namespace
}  // namespace hpc::net
