#include "ai/surrogate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hpc::ai {
namespace {

TEST(GroundTruth, OscillatorMatchesDatasetGenerator) {
  const GroundTruth g = oscillator_truth();
  const std::vector<double> x{0.3, 0.4, 0.5};
  EXPECT_DOUBLE_EQ(g.f(x), oscillator_response(0.3, 0.4, 0.5));
}

TEST(GroundTruth, ResponseDecaysWithTime) {
  // Damped oscillation: the envelope at a later time never exceeds an
  // earlier envelope.
  const double early = std::abs(oscillator_response(0.5, 0.5, 0.0));
  const double late = std::abs(oscillator_response(0.5, 0.5, 1.0));
  EXPECT_LE(late, early);
  EXPECT_DOUBLE_EQ(oscillator_response(0.5, 0.5, 0.0), 1.0);  // cos(0)
}

TEST(Surrogate, TrainsToUsefulFidelity) {
  const GroundTruth truth = oscillator_truth(1e6);
  sim::Rng rng(41);
  const Surrogate s = train_surrogate(truth, 2'500, 1e3, rng);
  EXPECT_LT(s.test_rmse, 0.12);
  EXPECT_LT(s.train_rmse, s.test_rmse * 2.0 + 0.05);
  EXPECT_DOUBLE_EQ(s.train_cost_ns, 2'500.0 * 1e6);
}

TEST(Surrogate, CampaignSpeedsUp) {
  const GroundTruth truth = oscillator_truth(1e6);  // 1 ms per exact step
  sim::Rng rng(42);
  const Surrogate s = train_surrogate(truth, 2'000, 1e3, rng);
  const LoopResult r = run_campaign(truth, s, 100'000, 50, rng);
  // 100k steps at 1 ms = 100 s exact; hybrid pays 2k training evals + 2k
  // anchors + 98k cheap inferences.
  EXPECT_GT(r.speedup, 5.0);
  EXPECT_LT(r.mean_abs_error, 0.15);
  EXPECT_DOUBLE_EQ(r.time_full_ns, 1e6 * 100'000);
}

TEST(Surrogate, MoreAnchoringCostsMoreTime) {
  const GroundTruth truth = oscillator_truth(1e6);
  sim::Rng rng(43);
  const Surrogate s = train_surrogate(truth, 1'000, 1e3, rng);
  sim::Rng r1(44);
  sim::Rng r2(44);
  const LoopResult dense = run_campaign(truth, s, 20'000, 5, r1);
  const LoopResult sparse = run_campaign(truth, s, 20'000, 100, r2);
  EXPECT_GT(dense.time_hybrid_ns, sparse.time_hybrid_ns);
  EXPECT_LT(dense.speedup, sparse.speedup);
}

TEST(Surrogate, ZeroAnchoringIsAllSurrogate) {
  const GroundTruth truth = oscillator_truth(1e6);
  sim::Rng rng(45);
  const Surrogate s = train_surrogate(truth, 1'000, 1e3, rng);
  const LoopResult r = run_campaign(truth, s, 10'000, 0, rng);
  // anchor_every = 0 disables anchoring entirely.
  EXPECT_NEAR(r.time_hybrid_ns, s.train_cost_ns + 10'000.0 * 1e3, 1.0);
}

}  // namespace
}  // namespace hpc::ai
