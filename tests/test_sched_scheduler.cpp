#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include "sched/workload.hpp"

namespace hpc::sched {
namespace {

Job quick_job(int id, sim::TimeNs arrival, JobKind kind, double gflop, int nodes = 1) {
  Job j;
  j.id = id;
  j.arrival = arrival;
  j.mix = mix_of(kind);
  j.precision = precision_of(kind);
  j.total_gflop = gflop;
  j.nodes = nodes;
  return j;
}

TEST(ClusterBuilders, Shapes) {
  const Cluster cpu = make_homogeneous_cpu_cluster(8);
  EXPECT_EQ(cpu.partitions.size(), 1u);
  EXPECT_EQ(cpu.total_nodes(), 8);
  const Cluster mixed = make_diversified_cluster(4, 4, 2, 1, 1);
  EXPECT_EQ(mixed.partitions.size(), 5u);
  EXPECT_EQ(mixed.total_nodes(), 12);
  EXPECT_GT(mixed.total_power_w(), 0.0);
  EXPECT_GT(mixed.total_cost_usd(), 0.0);
}

TEST(ClusterSim, SingleJobRunsImmediately) {
  ClusterSim sim(make_homogeneous_cpu_cluster(4), Policy::kFcfsSkip);
  sim.add_job(quick_job(0, 0, JobKind::kHpcSimulation, 1e5));
  const ScheduleResult r = sim.run();
  ASSERT_EQ(r.placements.size(), 1u);
  EXPECT_EQ(r.placements[0].partition, 0);
  EXPECT_EQ(r.placements[0].start, 0u);
  EXPECT_GT(r.placements[0].finish, 0u);
  EXPECT_EQ(r.sla_violations, 0);
}

TEST(ClusterSim, JobsQueueWhenFull) {
  ClusterSim sim(make_homogeneous_cpu_cluster(1), Policy::kFcfsSkip);
  sim.add_job(quick_job(0, 0, JobKind::kHpcSimulation, 1e6));
  sim.add_job(quick_job(1, 0, JobKind::kHpcSimulation, 1e6));
  const ScheduleResult r = sim.run();
  EXPECT_EQ(r.placements[1].start, r.placements[0].finish);
  EXPECT_GT(r.mean_wait_ns, 0.0);
}

TEST(ClusterSim, FcfsBlockingHeadOfLine) {
  // Head job needs 2 nodes (never available while job 0 runs); FCFS blocking
  // must hold back the small job behind it, skip policy must not.
  auto run_policy = [](Policy p) {
    ClusterSim sim(make_homogeneous_cpu_cluster(2), p);
    sim.add_job(quick_job(0, 0, JobKind::kHpcSimulation, 1e7, 1));  // long, 1 node
    sim.add_job(quick_job(1, 1, JobKind::kHpcSimulation, 1e7, 2));  // big head
    sim.add_job(quick_job(2, 2, JobKind::kHpcSimulation, 1e4, 1));  // tiny
    return sim.run();
  };
  const ScheduleResult blocking = run_policy(Policy::kFcfsBlocking);
  const ScheduleResult skip = run_policy(Policy::kFcfsSkip);
  // Blocking: tiny job waits for the 2-node job to start first.
  EXPECT_GT(blocking.placements[2].start, blocking.placements[1].start);
  // Skip: tiny job starts while the 2-node head waits.
  EXPECT_LT(skip.placements[2].start, skip.placements[1].start);
}

TEST(ClusterSim, BackfillFillsHolesWithoutDelayingHead) {
  ClusterSim sim(make_homogeneous_cpu_cluster(2), Policy::kEasyBackfill);
  sim.add_job(quick_job(0, 0, JobKind::kHpcSimulation, 1e7, 1));   // long runner
  sim.add_job(quick_job(1, 1, JobKind::kHpcSimulation, 1e7, 2));   // head blocked
  sim.add_job(quick_job(2, 2, JobKind::kHpcSimulation, 1e3, 1));   // tiny backfill
  const ScheduleResult r = sim.run();
  // Tiny job backfills into the idle node.
  EXPECT_LT(r.placements[2].start, r.placements[1].start);
  // Head starts exactly when the long runner finishes (not delayed by tiny).
  EXPECT_EQ(r.placements[1].start, r.placements[0].finish);
}

TEST(ClusterSim, HeteroAffinityPicksFastPartition) {
  Cluster c = make_cpu_gpu_cluster(4, 4);
  ClusterSim sim(c, Policy::kHeteroAffinity);
  sim.add_job(quick_job(0, 0, JobKind::kAiTraining, 1e6));
  const ScheduleResult r = sim.run();
  EXPECT_EQ(r.placements[0].partition, 1);  // GPU partition
}

TEST(ClusterSim, FcfsPicksFirstConfigured) {
  Cluster c = make_cpu_gpu_cluster(4, 4);
  ClusterSim sim(c, Policy::kFcfsSkip);
  sim.add_job(quick_job(0, 0, JobKind::kAiTraining, 1e6));
  const ScheduleResult r = sim.run();
  EXPECT_EQ(r.placements[0].partition, 0);  // CPU partition listed first
}

TEST(ClusterSim, HeteroAffinityBeatsRandomOnMakespan) {
  auto run_policy = [](Policy p) {
    sim::Rng rng(71);
    WorkloadConfig cfg;
    cfg.jobs = 120;
    cfg.mean_interarrival_s = 2.0;
    cfg.max_nodes = 4;
    ClusterSim sim(make_diversified_cluster(8, 8, 4, 2, 2), p, 5);
    sim.add_jobs(generate_workload(cfg, rng));
    return sim.run();
  };
  const ScheduleResult hetero = run_policy(Policy::kHeteroAffinity);
  const ScheduleResult random = run_policy(Policy::kRandomPlacement);
  EXPECT_LT(hetero.makespan, random.makespan);
}

TEST(ClusterSim, UtilizationWithinBounds) {
  sim::Rng rng(72);
  WorkloadConfig cfg;
  cfg.jobs = 50;
  ClusterSim sim(make_cpu_gpu_cluster(4, 4), Policy::kHeteroAffinity);
  sim.add_jobs(generate_workload(cfg, rng));
  const ScheduleResult r = sim.run();
  EXPECT_GE(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0);
  EXPECT_GT(r.throughput_jobs_per_s, 0.0);
}

TEST(ClusterSim, ImpossibleJobDropped) {
  ClusterSim sim(make_homogeneous_cpu_cluster(2), Policy::kFcfsSkip);
  sim.add_job(quick_job(0, 0, JobKind::kHpcSimulation, 1e5, 16));  // too wide
  sim.add_job(quick_job(1, 0, JobKind::kHpcSimulation, 1e5, 1));
  const ScheduleResult r = sim.run();
  EXPECT_EQ(r.placements[0].partition, -1);
  EXPECT_GE(r.placements[1].partition, 0);
}

TEST(ClusterSim, SlaViolationsCounted) {
  ClusterSim sim(make_homogeneous_cpu_cluster(1), Policy::kFcfsSkip);
  Job a = quick_job(0, 0, JobKind::kHpcSimulation, 1e7);
  Job b = quick_job(1, 0, JobKind::kHpcSimulation, 1e7);
  b.deadline = 1;  // impossible: must wait for a
  sim.add_job(a);
  sim.add_job(b);
  const ScheduleResult r = sim.run();
  EXPECT_EQ(r.sla_violations, 1);
}

TEST(ClusterSim, DeterministicRuns) {
  auto once = [] {
    sim::Rng rng(73);
    WorkloadConfig cfg;
    cfg.jobs = 60;
    ClusterSim sim(make_diversified_cluster(4, 4, 2, 1, 1), Policy::kRandomPlacement, 99);
    sim.add_jobs(generate_workload(cfg, rng));
    return sim.run().makespan;
  };
  EXPECT_EQ(once(), once());
}

TEST(ClusterSim, MeanSlowdownAtLeastOne) {
  sim::Rng rng(74);
  WorkloadConfig cfg;
  cfg.jobs = 40;
  ClusterSim sim(make_cpu_gpu_cluster(2, 2), Policy::kEasyBackfill);
  sim.add_jobs(generate_workload(cfg, rng));
  const ScheduleResult r = sim.run();
  EXPECT_GE(r.mean_slowdown, 1.0);
}

}  // namespace
}  // namespace hpc::sched
