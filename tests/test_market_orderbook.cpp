#include "market/orderbook.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"

namespace hpc::market {
namespace {

TEST(OrderBook, EmptyBook) {
  OrderBook book;
  EXPECT_FALSE(book.best_bid().has_value());
  EXPECT_FALSE(book.best_ask().has_value());
  EXPECT_FALSE(book.mid().has_value());
  EXPECT_FALSE(book.last_trade_price().has_value());
  EXPECT_EQ(book.open_orders(), 0u);
}

TEST(OrderBook, RestingOrdersQuote) {
  OrderBook book;
  book.submit(1, Side::kBid, 10.0, 5.0);
  book.submit(2, Side::kAsk, 12.0, 3.0);
  EXPECT_DOUBLE_EQ(*book.best_bid(), 10.0);
  EXPECT_DOUBLE_EQ(*book.best_ask(), 12.0);
  EXPECT_DOUBLE_EQ(*book.mid(), 11.0);
  EXPECT_TRUE(book.take_trades().empty());
  EXPECT_DOUBLE_EQ(book.depth(Side::kBid), 5.0);
  EXPECT_DOUBLE_EQ(book.depth(Side::kAsk), 3.0);
}

TEST(OrderBook, CrossingTradesAtRestingPrice) {
  OrderBook book;
  book.submit(1, Side::kAsk, 10.0, 5.0);
  book.submit(2, Side::kBid, 11.0, 5.0);  // crosses
  const auto trades = book.take_trades();
  ASSERT_EQ(trades.size(), 1u);
  EXPECT_DOUBLE_EQ(trades[0].price, 10.0);  // resting ask sets the price
  EXPECT_DOUBLE_EQ(trades[0].quantity, 5.0);
  EXPECT_EQ(trades[0].buyer, 2);
  EXPECT_EQ(trades[0].seller, 1);
  EXPECT_EQ(book.open_orders(), 0u);
}

TEST(OrderBook, PartialFillRests) {
  OrderBook book;
  book.submit(1, Side::kAsk, 10.0, 3.0);
  book.submit(2, Side::kBid, 10.0, 5.0);
  const auto trades = book.take_trades();
  ASSERT_EQ(trades.size(), 1u);
  EXPECT_DOUBLE_EQ(trades[0].quantity, 3.0);
  // Remainder of the bid rests.
  EXPECT_DOUBLE_EQ(book.depth(Side::kBid), 2.0);
  EXPECT_DOUBLE_EQ(book.depth(Side::kAsk), 0.0);
}

TEST(OrderBook, PricePriority) {
  OrderBook book;
  book.submit(1, Side::kAsk, 12.0, 1.0);
  book.submit(2, Side::kAsk, 10.0, 1.0);  // better ask
  book.submit(3, Side::kBid, 15.0, 1.0);
  const auto trades = book.take_trades();
  ASSERT_EQ(trades.size(), 1u);
  EXPECT_EQ(trades[0].seller, 2);
  EXPECT_DOUBLE_EQ(trades[0].price, 10.0);
}

TEST(OrderBook, TimePriorityWithinLevel) {
  OrderBook book;
  book.submit(1, Side::kAsk, 10.0, 1.0);
  book.submit(2, Side::kAsk, 10.0, 1.0);
  book.submit(3, Side::kBid, 10.0, 1.0);
  const auto trades = book.take_trades();
  ASSERT_EQ(trades.size(), 1u);
  EXPECT_EQ(trades[0].seller, 1);  // first in, first matched
}

TEST(OrderBook, SweepsMultipleLevels) {
  OrderBook book;
  book.submit(1, Side::kAsk, 10.0, 1.0);
  book.submit(2, Side::kAsk, 11.0, 1.0);
  book.submit(3, Side::kBid, 12.0, 2.0);
  const auto trades = book.take_trades();
  ASSERT_EQ(trades.size(), 2u);
  EXPECT_DOUBLE_EQ(trades[0].price, 10.0);
  EXPECT_DOUBLE_EQ(trades[1].price, 11.0);
  EXPECT_DOUBLE_EQ(*book.last_trade_price(), 11.0);
}

TEST(OrderBook, NoCrossBelowLimit) {
  OrderBook book;
  book.submit(1, Side::kAsk, 10.0, 1.0);
  book.submit(2, Side::kBid, 9.0, 1.0);
  EXPECT_TRUE(book.take_trades().empty());
  EXPECT_EQ(book.open_orders(), 2u);
}

TEST(OrderBook, CancelRestingOrder) {
  OrderBook book;
  const int id = book.submit(1, Side::kBid, 10.0, 5.0);
  EXPECT_TRUE(book.cancel(id));
  EXPECT_FALSE(book.cancel(id));  // already gone
  EXPECT_EQ(book.open_orders(), 0u);
}

TEST(OrderBook, CancelFilledOrderFails) {
  OrderBook book;
  const int ask = book.submit(1, Side::kAsk, 10.0, 1.0);
  book.submit(2, Side::kBid, 10.0, 1.0);
  book.take_trades();
  EXPECT_FALSE(book.cancel(ask));
}

TEST(OrderBook, MidWithOneSide) {
  OrderBook book;
  book.submit(1, Side::kBid, 7.0, 1.0);
  EXPECT_DOUBLE_EQ(*book.mid(), 7.0);
}

TEST(OrderBook, RandomOperationsKeepInvariants) {
  // Property stress: after every operation the book is never crossed
  // (best bid < best ask), depth is non-negative, and traded quantity never
  // exceeds submitted quantity.
  OrderBook book;
  sim::Rng rng(404);
  double submitted = 0.0;
  double traded = 0.0;
  std::vector<int> live_orders;
  for (int op = 0; op < 5'000; ++op) {
    if (!live_orders.empty() && rng.bernoulli(0.2)) {
      const std::size_t pick = rng.index(live_orders.size());
      book.cancel(live_orders[pick]);
      live_orders[pick] = live_orders.back();
      live_orders.pop_back();
    } else {
      const double qty = rng.uniform(0.5, 3.0);
      submitted += qty;
      const int id = book.submit(static_cast<int>(rng.index(20)),
                                 rng.bernoulli(0.5) ? Side::kBid : Side::kAsk,
                                 rng.uniform(0.8, 1.2), qty);
      live_orders.push_back(id);
    }
    for (const Trade& t : book.take_trades()) {
      EXPECT_GT(t.quantity, 0.0);
      EXPECT_GT(t.price, 0.0);
      traded += t.quantity;
    }
    const auto bid = book.best_bid();
    const auto ask = book.best_ask();
    if (bid && ask) {
      EXPECT_LT(*bid, *ask + 1e-9) << "crossed book at op " << op;
    }
    EXPECT_GE(book.depth(Side::kBid), 0.0);
    EXPECT_GE(book.depth(Side::kAsk), 0.0);
  }
  EXPECT_LE(traded, submitted + 1e-6);
  EXPECT_GT(traded, 0.0);
}

TEST(OrderBook, SelfCrossingAllowedAndMatches) {
  // The book is agent-agnostic; wash-trade prevention is an agent concern.
  OrderBook book;
  book.submit(1, Side::kAsk, 10.0, 1.0);
  book.submit(1, Side::kBid, 10.0, 1.0);
  const auto trades = book.take_trades();
  ASSERT_EQ(trades.size(), 1u);
  EXPECT_EQ(trades[0].buyer, trades[0].seller);
}

}  // namespace
}  // namespace hpc::market
