/// Cross-cutting property tests: invariants that must hold for every
/// configuration, enforced with parameterized sweeps rather than single
/// examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "fed/federation.hpp"
#include "hw/precision.hpp"
#include "net/flowsim.hpp"
#include "net/topology.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"

namespace {

using namespace hpc;

// ---------------------------------------------------------------------------
// Scheduler: no partition is ever oversubscribed (reconstructed from the
// placement intervals), across policies and workloads.
// ---------------------------------------------------------------------------

struct SchedCase {
  std::string name;
  sched::Policy policy;
  std::uint64_t seed;
};

class SchedulerInvariants : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerInvariants, NoPartitionOversubscribed) {
  const SchedCase& param = GetParam();
  const sched::Cluster cluster = sched::make_diversified_cluster(6, 6, 3, 2, 2);
  sim::Rng rng(param.seed);
  sched::WorkloadConfig cfg;
  cfg.jobs = 120;
  cfg.mean_interarrival_s = 5.0;
  cfg.max_nodes = 4;
  std::vector<sched::Job> jobs = sched::generate_workload(cfg, rng);
  sched::ClusterSim csim(cluster, param.policy, param.seed);
  csim.add_jobs(jobs);
  const sched::ScheduleResult result = csim.run();

  // Check occupancy at every start event.
  for (const sched::Placement& probe : result.placements) {
    if (probe.partition < 0) continue;
    std::vector<int> used(cluster.partitions.size(), 0);
    for (std::size_t j = 0; j < result.placements.size(); ++j) {
      const sched::Placement& p = result.placements[j];
      if (p.partition < 0) continue;
      if (p.start <= probe.start && probe.start < p.finish)
        used[static_cast<std::size_t>(p.partition)] += jobs[j].nodes;
    }
    for (std::size_t part = 0; part < cluster.partitions.size(); ++part)
      EXPECT_LE(used[part], cluster.partitions[part].nodes)
          << param.name << " partition " << part << " at t=" << probe.start;
  }
}

TEST_P(SchedulerInvariants, JobsNeverStartBeforeArrival) {
  const SchedCase& param = GetParam();
  sim::Rng rng(param.seed + 1);
  sched::WorkloadConfig cfg;
  cfg.jobs = 80;
  sched::ClusterSim csim(sched::make_cpu_gpu_cluster(4, 4), param.policy, param.seed);
  csim.add_jobs(sched::generate_workload(cfg, rng));
  for (const sched::Placement& p : csim.run().placements) {
    if (p.partition < 0) continue;
    EXPECT_GE(p.start, p.arrival);
    EXPECT_GT(p.finish, p.start);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SchedulerInvariants,
    ::testing::Values(SchedCase{"fcfs", sched::Policy::kFcfsBlocking, 3},
                      SchedCase{"fcfs_skip", sched::Policy::kFcfsSkip, 4},
                      SchedCase{"backfill", sched::Policy::kEasyBackfill, 5},
                      SchedCase{"hetero", sched::Policy::kHeteroAffinity, 6},
                      SchedCase{"random", sched::Policy::kRandomPlacement, 7}),
    [](const ::testing::TestParamInfo<SchedCase>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Federation: per-site-partition occupancy, ledger consistency, and WAN
// serialization, across stages.
// ---------------------------------------------------------------------------

class FederationInvariants
    : public ::testing::TestWithParam<fed::FederationStage> {};

TEST_P(FederationInvariants, OccupancyLedgerAndCompletionConsistent) {
  std::vector<fed::Site> sites{fed::make_onprem_site(0, "campus", 6, 2)};
  fed::Site super = fed::make_supercomputer_site(1, "center", 32);
  super.admin_domain = 0;
  sites.push_back(super);
  sites.push_back(fed::make_cloud_site(2, "cloud", 24, 0.1));

  fed::FederationConfig cfg;
  cfg.stage = GetParam();
  cfg.policy = fed::MetaPolicy::kDataGravity;
  cfg.burst_site = 2;
  cfg.burst_queue_threshold_s = 60.0;
  fed::FederationSim fsim(sites, cfg);
  sim::Rng rng(11);
  sched::WorkloadConfig wcfg;
  wcfg.jobs = 100;
  wcfg.mean_interarrival_s = 10.0;
  wcfg.max_nodes = 4;
  std::vector<sched::Job> jobs = sched::generate_workload(wcfg, rng);
  fsim.submit_all(jobs, 0);
  const fed::FederationResult r = fsim.run();

  // Every completed job: staging precedes start precedes finish.
  for (const fed::FedPlacement& p : r.placements) {
    if (p.site < 0) continue;
    EXPECT_GE(p.data_ready, p.submitted);
    EXPECT_GE(p.start, p.data_ready);
    EXPECT_GT(p.finish, p.start);
  }

  // Occupancy per (site, partition) at every start instant.
  for (const fed::FedPlacement& probe : r.placements) {
    if (probe.site < 0) continue;
    std::map<std::pair<int, int>, int> used;
    for (std::size_t j = 0; j < r.placements.size(); ++j) {
      const fed::FedPlacement& p = r.placements[j];
      if (p.site < 0) continue;
      if (p.start <= probe.start && probe.start < p.finish)
        used[{p.site, p.partition}] += jobs[j].nodes;
    }
    for (const auto& [key, nodes] : used) {
      const auto& part = sites[static_cast<std::size_t>(key.first)]
                             .cluster.partitions[static_cast<std::size_t>(key.second)];
      EXPECT_LE(nodes, part.nodes) << "site " << key.first;
    }
  }

  // Ledger records match completed placements one-to-one in cost.
  double ledger_cost = 0.0;
  for (const auto& rec : r.ledger.records()) ledger_cost += rec.cost_usd;
  EXPECT_NEAR(ledger_cost, r.total_cost_usd, 1e-6);
  EXPECT_EQ(static_cast<int>(r.ledger.records().size()), r.jobs_completed);
}

INSTANTIATE_TEST_SUITE_P(Stages, FederationInvariants,
                         ::testing::Values(fed::FederationStage::kLocalOnly,
                                           fed::FederationStage::kBursting,
                                           fed::FederationStage::kFluid,
                                           fed::FederationStage::kGrid,
                                           fed::FederationStage::kExchange),
                         [](const ::testing::TestParamInfo<fed::FederationStage>& info) {
                           std::string n(fed::name_of(info.param));
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(FederationInvariantsExtra, WanTransfersSerializeOnUplinks) {
  // Two data-heavy jobs from the same home: their staging windows must not
  // overlap (full-serialization uplink model).
  std::vector<fed::Site> sites{fed::make_onprem_site(0, "campus", 1, 0)};
  fed::Site super = fed::make_supercomputer_site(1, "center", 32);
  super.admin_domain = 0;
  sites.push_back(super);
  fed::FederationConfig cfg;
  cfg.stage = fed::FederationStage::kGrid;
  cfg.policy = fed::MetaPolicy::kComputeOnly;
  fed::FederationSim fsim(sites, cfg);
  for (int i = 0; i < 2; ++i) {
    sched::Job j;
    j.id = i;
    j.nodes = 1;
    j.total_gflop = 1e4;
    j.mix = sched::pure_mix(hw::OpClass::kGemm);
    j.precision = hw::Precision::BF16;
    j.dataset_gb = 100.0;  // 80 s each over the shared 1.25 GB/s uplink
    j.data_site = 0;
    fsim.submit(j, 0);
  }
  const fed::FederationResult r = fsim.run();
  ASSERT_EQ(r.jobs_completed, 2);
  const auto& a = r.placements[0];
  const auto& b = r.placements[1];
  // Second transfer completes roughly twice the single-transfer time.
  const sim::TimeNs first = std::min(a.data_ready, b.data_ready);
  const sim::TimeNs second = std::max(a.data_ready, b.data_ready);
  EXPECT_GT(static_cast<double>(second), 1.8 * static_cast<double>(first));
}

// ---------------------------------------------------------------------------
// Flow simulator: aggregate throughput can never exceed physical cuts,
// across topologies and congestion modes.
// ---------------------------------------------------------------------------

struct FlowCase {
  std::string name;
  net::CongestionControl cc;
  std::uint64_t seed;
};

class FlowInvariants : public ::testing::TestWithParam<FlowCase> {};

TEST_P(FlowInvariants, ThroughputBoundedByEndpointLinks) {
  const FlowCase& param = GetParam();
  const net::Network network = net::make_dragonfly(4, 2, 2);
  const auto& h = network.endpoints();
  net::FlowSim fsim(network, param.cc, net::Routing::kMinimal, param.seed);
  sim::Rng rng(param.seed);
  double total_bytes = 0.0;
  for (int f = 0; f < 60; ++f) {
    const int src = static_cast<int>(rng.index(h.size()));
    int dst = static_cast<int>(rng.index(h.size()));
    if (dst == src) dst = (dst + 1) % static_cast<int>(h.size());
    const double bytes = rng.uniform(1e8, 5e9);
    total_bytes += bytes;
    fsim.add_flow({h[static_cast<std::size_t>(src)], h[static_cast<std::size_t>(dst)],
                   bytes, 0, f});
  }
  const net::FlowRunSummary out = fsim.run();
  EXPECT_EQ(out.flows.size(), 60u);
  // Aggregate throughput cannot exceed the sum of endpoint link speeds.
  const double endpoint_cap = 25.0 * static_cast<double>(h.size());
  EXPECT_LE(out.aggregate_throughput_gbs, endpoint_cap * 1.0001) << param.name;
  // And the makespan is bounded below by the busiest endpoint's serialization.
  EXPECT_GE(out.makespan_ns, total_bytes / endpoint_cap) << param.name;
}

TEST_P(FlowInvariants, AllFlowsEventuallyComplete) {
  const FlowCase& param = GetParam();
  const net::Network network = net::make_hyperx_2d(3, 3, 2);
  const auto& h = network.endpoints();
  net::FlowSim fsim(network, param.cc, net::Routing::kValiant, param.seed);
  for (std::size_t i = 0; i < h.size(); ++i)
    fsim.add_flow({h[i], h[(i + 5) % h.size()], 1e9,
                   static_cast<sim::TimeNs>(i) * 10'000'000, static_cast<int>(i),
                   1.0 + static_cast<double>(i % 3)});
  const net::FlowRunSummary out = fsim.run();
  EXPECT_EQ(out.flows.size(), h.size());
  for (const net::FlowResult& f : out.flows) {
    EXPECT_GT(f.fct_ns, 0.0);
    EXPECT_LT(f.fct_ns, 1e12);  // nothing starves
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FlowInvariants,
    ::testing::Values(FlowCase{"flow_based", net::CongestionControl::kFlowBased, 21},
                      FlowCase{"none", net::CongestionControl::kNone, 22},
                      FlowCase{"flow_based_b", net::CongestionControl::kFlowBased, 23}),
    [](const ::testing::TestParamInfo<FlowCase>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Precision emulation: idempotence and error bounds over a random sweep.
// ---------------------------------------------------------------------------

class PrecisionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrecisionSweep, RoundingIsIdempotentAndBounded) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 2'000; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, 100.0));
    for (const hw::Precision p :
         {hw::Precision::TF32, hw::Precision::BF16, hw::Precision::FP16}) {
      const float once = hw::apply_precision(v, p);
      EXPECT_EQ(hw::apply_precision(once, p), once);
      if (std::isfinite(once) && v != 0.0f) {
        const double rel = std::abs(static_cast<double>(once) - v) / std::abs(v);
        EXPECT_LT(rel, 1.0 / 128.0) << hw::name_of(p) << " " << v;
      }
    }
    // Integer formats: quantization error bounded by half a step.
    const float scale = 0.25f;
    EXPECT_LE(std::abs(hw::round_int8(std::clamp(v, -31.0f, 31.0f), scale) -
                       std::clamp(v, -31.0f, 31.0f)),
              scale / 2.0f + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrecisionSweep, ::testing::Values(101, 202, 303));

}  // namespace
