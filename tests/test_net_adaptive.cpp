/// Adaptive (UGAL-lite) routing tests — the routing mode low-diameter
/// networks rely on to survive adversarial traffic (paper refs [11][12]).

#include <gtest/gtest.h>

#include "net/flowsim.hpp"
#include "net/topology.hpp"

namespace hpc::net {
namespace {

TEST(AdaptiveRouting, QuietNetworkTakesMinimalPaths) {
  // Without load, adaptive must behave exactly like minimal routing.
  const Network net = make_dragonfly(4, 2, 2);
  const auto& h = net.endpoints();
  FlowSim minimal(net, CongestionControl::kFlowBased, Routing::kMinimal, 3);
  FlowSim adaptive(net, CongestionControl::kFlowBased, Routing::kAdaptive, 3);
  minimal.add_flow({h[0], h[40], 1e9, 0, 0});
  adaptive.add_flow({h[0], h[40], 1e9, 0, 0});
  EXPECT_DOUBLE_EQ(minimal.run().flows[0].fct_ns, adaptive.run().flows[0].fct_ns);
}

TEST(AdaptiveRouting, AllFlowsComplete) {
  const Network net = make_dragonfly(4, 2, 2);
  const auto& h = net.endpoints();
  FlowSim sim(net, CongestionControl::kFlowBased, Routing::kAdaptive, 5);
  for (std::size_t i = 0; i < h.size(); ++i)
    sim.add_flow({h[i], h[(i + h.size() / 2) % h.size()], 5e8, 0, static_cast<int>(i)});
  const FlowRunSummary out = sim.run();
  EXPECT_EQ(out.flows.size(), h.size());
  for (const FlowResult& f : out.flows) EXPECT_GT(f.fct_ns, 0.0);
}

TEST(AdaptiveRouting, NotWorseThanValiantOnHotspot) {
  // Group-adversarial pattern: all of group 0's hosts target group 1,
  // saturating the single minimal inter-group link.  Adaptive should do at
  // least as well as always-misroute Valiant.
  auto run_mode = [](Routing routing) {
    const Network net = make_dragonfly(4, 2, 2);
    const auto& h = net.endpoints();  // 8 hosts per group
    FlowSim sim(net, CongestionControl::kFlowBased, routing, 7);
    for (int i = 0; i < 8; ++i)
      sim.add_flow({h[static_cast<std::size_t>(i)], h[static_cast<std::size_t>(8 + i)],
                    5e9, 0, 0});
    return sim.run().makespan_ns;
  };
  const double adaptive = run_mode(Routing::kAdaptive);
  const double valiant = run_mode(Routing::kValiant);
  EXPECT_LE(adaptive, valiant * 1.05);
}

TEST(AdaptiveRouting, DetoursUnderSustainedLoad) {
  // With many flows crammed on one minimal route, adaptive spreads at least
  // some of them (its makespan beats all-minimal on the hotspot pattern).
  auto run_mode = [](Routing routing) {
    const Network net = make_dragonfly(4, 2, 2);
    const auto& h = net.endpoints();
    FlowSim sim(net, CongestionControl::kFlowBased, routing, 11);
    // Heavy repeated pair traffic: 24 flows between the same two groups.
    for (int i = 0; i < 24; ++i)
      sim.add_flow({h[static_cast<std::size_t>(i % 8)],
                    h[static_cast<std::size_t>(8 + (i % 8))], 5e9, 0, 0});
    return sim.run().makespan_ns;
  };
  EXPECT_LE(run_mode(Routing::kAdaptive), run_mode(Routing::kMinimal));
}

}  // namespace
}  // namespace hpc::net
