/// Adaptive (UGAL-lite) routing tests — the routing mode low-diameter
/// networks rely on to survive adversarial traffic (paper refs [11][12]).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/flowsim.hpp"
#include "net/topology.hpp"

namespace hpc::net {
namespace {

/// Seed whose first three Rng::index(3) draws are {2, 2, 2}: in the triangle
/// scenario below every flow probes S2, and only the third (which sees trunk
/// load 2) crosses the UGAL-lite threshold and detours.
constexpr std::uint64_t kTriangleDetourSeed = 2;

TEST(AdaptiveRouting, QuietNetworkTakesMinimalPaths) {
  // Without load, adaptive must behave exactly like minimal routing.
  const Network net = make_dragonfly(4, 2, 2);
  const auto& h = net.endpoints();
  FlowSim minimal(net, CongestionControl::kFlowBased, Routing::kMinimal, 3);
  FlowSim adaptive(net, CongestionControl::kFlowBased, Routing::kAdaptive, 3);
  minimal.add_flow({h[0], h[40], 1e9, 0, 0});
  adaptive.add_flow({h[0], h[40], 1e9, 0, 0});
  EXPECT_DOUBLE_EQ(minimal.run().flows[0].fct_ns, adaptive.run().flows[0].fct_ns);
}

TEST(AdaptiveRouting, AllFlowsComplete) {
  const Network net = make_dragonfly(4, 2, 2);
  const auto& h = net.endpoints();
  FlowSim sim(net, CongestionControl::kFlowBased, Routing::kAdaptive, 5);
  for (std::size_t i = 0; i < h.size(); ++i)
    sim.add_flow({h[i], h[(i + h.size() / 2) % h.size()], 5e8, 0, static_cast<int>(i)});
  const FlowRunSummary out = sim.run();
  EXPECT_EQ(out.flows.size(), h.size());
  for (const FlowResult& f : out.flows) EXPECT_GT(f.fct_ns, 0.0);
}

TEST(AdaptiveRouting, NotWorseThanValiantOnHotspot) {
  // Group-adversarial pattern: all of group 0's hosts target group 1,
  // saturating the single minimal inter-group link.  Adaptive should do at
  // least as well as always-misroute Valiant.
  auto run_mode = [](Routing routing) {
    const Network net = make_dragonfly(4, 2, 2);
    const auto& h = net.endpoints();  // 8 hosts per group
    FlowSim sim(net, CongestionControl::kFlowBased, routing, 7);
    for (int i = 0; i < 8; ++i)
      sim.add_flow({h[static_cast<std::size_t>(i)], h[static_cast<std::size_t>(8 + i)],
                    5e9, 0, 0});
    return sim.run().makespan_ns;
  };
  const double adaptive = run_mode(Routing::kAdaptive);
  const double valiant = run_mode(Routing::kValiant);
  EXPECT_LE(adaptive, valiant * 1.05);
}

TEST(AdaptiveRouting, DetoursUnderSustainedLoad) {
  // With many flows crammed on one minimal route, adaptive spreads at least
  // some of them (its makespan beats all-minimal on the hotspot pattern).
  auto run_mode = [](Routing routing) {
    const Network net = make_dragonfly(4, 2, 2);
    const auto& h = net.endpoints();
    FlowSim sim(net, CongestionControl::kFlowBased, routing, 11);
    // Heavy repeated pair traffic: 24 flows between the same two groups.
    for (int i = 0; i < 24; ++i)
      sim.add_flow({h[static_cast<std::size_t>(i % 8)],
                    h[static_cast<std::size_t>(8 + (i % 8))], 5e9, 0, 0});
    return sim.run().makespan_ns;
  };
  EXPECT_LE(run_mode(Routing::kAdaptive), run_mode(Routing::kMinimal));
}

TEST(AdaptiveRouting, TwoSwitchIncastVictimStaysMinimal) {
  // Crafted 2-switch incast pinning the UGAL-lite minimal-vs-detour decision
  // and the load-probe ordering: the probe must read link loads *before* the
  // flow being placed is counted.  Five elephants (hosts on A) incast onto a
  // receiver on B, loading the A->B trunk to 5.  The victim is intra-switch
  // on A: its minimal path is empty of load, while any distinct detour (via
  // B) crosses the loaded trunk.  UGAL-lite must keep it minimal for *every*
  // seed — 0 >= 2*load(detour) + 2 can never hold — so the victim's FCT is
  // exactly the uncontended serialization time.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    Network net;
    const int sw_a = net.add_node(NodeRole::kSwitch, "A");
    const int sw_b = net.add_node(NodeRole::kSwitch, "B");
    net.add_duplex_link(sw_a, sw_b, LinkClass::kEth200);
    std::vector<int> elephants;
    for (int i = 0; i < 5; ++i) {
      const int h = net.add_node(NodeRole::kEndpoint);
      net.add_duplex_link(h, sw_a, LinkClass::kEth200);
      elephants.push_back(h);
    }
    const int receiver = net.add_node(NodeRole::kEndpoint);
    net.add_duplex_link(receiver, sw_b, LinkClass::kEth200);
    const int victim_src = net.add_node(NodeRole::kEndpoint);
    const int victim_dst = net.add_node(NodeRole::kEndpoint);
    net.add_duplex_link(victim_src, sw_a, LinkClass::kEth200);
    net.add_duplex_link(victim_dst, sw_a, LinkClass::kEth200);
    net.build_routes();

    FlowSim sim(net, CongestionControl::kFlowBased, Routing::kAdaptive, seed);
    for (const int e : elephants) sim.add_flow({e, receiver, 5e9, 0, 0});
    const double victim_bytes = 1e8;
    sim.add_flow({victim_src, victim_dst, victim_bytes, 100, 1});
    const FlowRunSummary out = sim.run();

    const double bw = link_type(LinkClass::kEth200).bandwidth_gbs;
    for (const FlowResult& f : out.flows) {
      if (f.spec.tag == 1) {
        EXPECT_NEAR(f.fct_ns, victim_bytes / bw, 1.0) << "seed " << seed;
      }
    }
  }
}

TEST(AdaptiveRouting, TriangleDetourFiresUnderTrunkLoad) {
  // Complement of the pin above: a case where the detour *must* fire.  Three
  // switches in a triangle; three staggered same-direction flows S0->S1.
  // Flow 1 sees no load (minimal), flow 2 sees trunk load 1 (1 >= 2d+2 never
  // holds: minimal), flow 3 sees trunk load 2 — if its probed intermediate is
  // S2, the detour is empty and 2 >= 2*0 + 2 fires.  The seed is chosen so
  // the third rng draw picks S2 (pinned by the deterministic Rng contract);
  // the detoured flow then runs at full line rate while the minimal flows
  // share the trunk.
  auto run_mode = [](Routing routing, std::uint64_t seed) {
    Network net;
    const int s0 = net.add_node(NodeRole::kSwitch, "S0");
    const int s1 = net.add_node(NodeRole::kSwitch, "S1");
    const int s2 = net.add_node(NodeRole::kSwitch, "S2");
    net.add_duplex_link(s0, s1, LinkClass::kEth200);
    net.add_duplex_link(s0, s2, LinkClass::kEth200);
    net.add_duplex_link(s2, s1, LinkClass::kEth200);
    std::vector<int> sources, sinks;
    for (int i = 0; i < 3; ++i) {
      const int src = net.add_node(NodeRole::kEndpoint);
      const int dst = net.add_node(NodeRole::kEndpoint);
      net.add_duplex_link(src, s0, LinkClass::kEth200);
      net.add_duplex_link(dst, s1, LinkClass::kEth200);
      sources.push_back(src);
      sinks.push_back(dst);
    }
    net.build_routes();
    FlowSim sim(net, CongestionControl::kFlowBased, routing, seed);
    const double bytes = 1e9;
    for (int i = 0; i < 3; ++i)
      sim.add_flow({sources[static_cast<std::size_t>(i)],
                    sinks[static_cast<std::size_t>(i)], bytes,
                    static_cast<sim::TimeNs>(10 * i), i + 1});
    return sim.run();
  };

  const std::uint64_t seed = kTriangleDetourSeed;
  const FlowRunSummary adaptive = run_mode(Routing::kAdaptive, seed);
  const FlowRunSummary minimal = run_mode(Routing::kMinimal, seed);
  const double bw = link_type(LinkClass::kEth200).bandwidth_gbs;

  auto fct_of = [](const FlowRunSummary& s, int tag) {
    for (const FlowResult& f : s.flows)
      if (f.spec.tag == tag) return f.fct_ns;
    return -1.0;
  };
  // Detoured third flow: uncontended full line rate, and strictly faster
  // than both trunk-sharing survivors and its own all-minimal counterpart.
  EXPECT_NEAR(fct_of(adaptive, 3), 1e9 / bw, 1.0);
  EXPECT_LT(fct_of(adaptive, 3), fct_of(adaptive, 1));
  EXPECT_LT(fct_of(adaptive, 3), fct_of(adaptive, 2));
  EXPECT_LT(fct_of(adaptive, 3), fct_of(minimal, 3));
}

}  // namespace
}  // namespace hpc::net
