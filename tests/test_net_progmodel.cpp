#include "net/progmodel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hpc::net {
namespace {

TEST(ProgModel, BulkTransfersFavorMessagePassingOnEthernet) {
  // One big halo buffer over the cluster network: aggregation wins.
  CommPhase bulk;
  bulk.accesses = 1;
  bulk.granularity_bytes = 16e6;  // 16 MB halo
  const double mp = phase_time_ns(ProgModel::kMessagePassing, bulk, LinkClass::kEth200);
  const double pgas = phase_time_ns(ProgModel::kPgas, bulk, LinkClass::kEth200);
  // For a single access both degenerate to ~bandwidth; MP adds pack cost, so
  // PGAS bulk put is at least as good.
  EXPECT_LE(pgas, mp);
}

TEST(ProgModel, FineGrainOverEthernetIsCatastrophicForPgas) {
  // Graph-style random updates: 1M 8-byte touches over Ethernet round trips.
  CommPhase fine;
  fine.accesses = 1'000'000;
  fine.granularity_bytes = 8.0;
  const double mp = phase_time_ns(ProgModel::kMessagePassing, fine, LinkClass::kEth200);
  const double pgas = phase_time_ns(ProgModel::kPgas, fine, LinkClass::kEth200);
  // Software aggregation (MP) beats per-touch round trips by a wide margin.
  EXPECT_GT(pgas, 3.0 * mp);
}

TEST(ProgModel, CxlRescuesFineGrainPgas) {
  // The same fine-grained pattern over a CXL-class fabric: the ns-scale
  // round trip flips the verdict — exactly why load/store fabrics change the
  // programming-model calculus (Section III.D).
  CommPhase fine;
  fine.accesses = 1'000'000;
  fine.granularity_bytes = 8.0;
  const double mp = phase_time_ns(ProgModel::kMessagePassing, fine, LinkClass::kCxl);
  const double pgas = phase_time_ns(ProgModel::kPgas, fine, LinkClass::kCxl);
  EXPECT_LT(pgas, mp);
}

TEST(ProgModel, CrossoverGranularityOrdering) {
  // The finer the access where PGAS still wins, the more PGAS-friendly the
  // link.  CXL tolerates word grain; Ethernet needs kilobyte-class puts.
  const double total = 8e6;
  const double eth = pgas_win_granularity_bytes(LinkClass::kEth200, total);
  const double cxl = pgas_win_granularity_bytes(LinkClass::kCxl, total);
  EXPECT_DOUBLE_EQ(cxl, 8.0);
  EXPECT_GT(eth, 64.0);
  EXPECT_LT(eth, 1e6);
}

TEST(ProgModel, MoreOutstandingTransactionsHelpPgas) {
  CommPhase fine;
  fine.accesses = 100'000;
  fine.granularity_bytes = 8.0;
  const double shallow = phase_time_ns(ProgModel::kPgas, fine, LinkClass::kCxl, 4);
  const double deep = phase_time_ns(ProgModel::kPgas, fine, LinkClass::kCxl, 64);
  EXPECT_GT(shallow, 2.0 * deep);
}

TEST(ProgModel, TimesArePositiveAndFinite) {
  for (const auto model : {ProgModel::kMessagePassing, ProgModel::kPgas})
    for (const auto link : {LinkClass::kCxl, LinkClass::kPcie4, LinkClass::kEth400}) {
      CommPhase p;
      p.accesses = 1'000;
      p.granularity_bytes = 64.0;
      const double t = phase_time_ns(model, p, link);
      EXPECT_GT(t, 0.0);
      EXPECT_TRUE(std::isfinite(t));
    }
}

TEST(ProgModel, Names) {
  EXPECT_EQ(name_of(ProgModel::kMessagePassing), "message-passing");
  EXPECT_EQ(name_of(ProgModel::kPgas), "pgas");
}

}  // namespace
}  // namespace hpc::net
