#include "net/maxmin.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

/// \file test_net_maxmin.cpp
/// Direct unit coverage of the progressive-filling weighted max-min solver —
/// previously testable only through end-to-end FlowSim experiments.  Covers
/// weighted shares, rate caps binding before the link bottleneck, the
/// last_unit monotonicity clamp on unit-share ties, empty-path flows, and
/// scratch-arena reuse across solves of different shapes.

namespace hpc::net {
namespace {

/// Helper: solve for flows given as (path, weight) with per-link capacities.
std::vector<double> solve(const std::vector<std::vector<int>>& paths,
                          const std::vector<double>& capacity,
                          std::vector<double> weights = {},
                          const std::vector<double>* caps = nullptr) {
  std::vector<const std::vector<int>*> path_ptrs;
  for (const auto& p : paths) path_ptrs.push_back(&p);
  if (weights.empty()) weights.assign(paths.size(), 1.0);
  return maxmin_rates(path_ptrs, capacity, weights, caps);
}

TEST(MaxMin, EqualFlowsSplitTheBottleneck) {
  const std::vector<double> rates = solve({{0}, {0}}, {10.0});
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(MaxMin, WeightedSharesAreProportional) {
  // Weights 1 and 3 on a 12 GB/s link: 3 and 9.
  const std::vector<double> rates = solve({{0}, {0}}, {12.0}, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(rates[0], 3.0);
  EXPECT_DOUBLE_EQ(rates[1], 9.0);
}

TEST(MaxMin, SpareCapacityIsReallocated) {
  // Flow A crosses links 0+1, flow B only link 1.  Link 0 (cap 2) binds A;
  // B then takes the rest of link 1 (cap 10): max-min, not proportional.
  const std::vector<double> rates = solve({{0, 1}, {1}}, {2.0, 10.0});
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 8.0);
}

TEST(MaxMin, RateCapBindsBeforeLinkBottleneck) {
  // Two unit-weight flows on a 10 GB/s link would get 5 each, but flow 0 is
  // capped at 2: the cap fixes first and flow 1 inherits the slack.
  const std::vector<double> caps = {2.0, 0.0};  // <= 0 means uncapped
  const std::vector<double> rates = solve({{0}, {0}}, {10.0}, {1.0, 1.0}, &caps);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 8.0);
}

TEST(MaxMin, CapAboveFairShareDoesNotBind) {
  const std::vector<double> caps = {7.0, 0.0};
  const std::vector<double> rates = solve({{0}, {0}}, {10.0}, {1.0, 1.0}, &caps);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(MaxMin, CapScalesWithWeight) {
  // The binding comparison is cap/weight vs unit share: a weight-4 flow
  // capped at 8 binds at unit share 2 — before the link's unit share of
  // 12/(4+1) = 2.4 — leaving the weight-1 flow the remaining 4.
  const std::vector<double> caps = {8.0, 0.0};
  const std::vector<double> rates = solve({{0}, {0}}, {12.0}, {4.0, 1.0}, &caps);
  EXPECT_DOUBLE_EQ(rates[0], 8.0);
  EXPECT_DOUBLE_EQ(rates[1], 4.0);
}

TEST(MaxMin, TieOnUnitShareStaysMonotone) {
  // Two disjoint links with *identical* unit shares: floating-point drift
  // across rounds must never push a later round's unit share below an
  // earlier one (the last_unit clamp) — all rates positive and equal.
  const std::vector<double> rates =
      solve({{0}, {0}, {1}, {1}}, {10.0, 10.0}, {1.0, 1.0, 1.0, 1.0});
  for (const double r : rates) {
    EXPECT_GT(r, 0.0);
    EXPECT_DOUBLE_EQ(r, 5.0);
  }
}

TEST(MaxMin, ManyWayTieProducesNoZeroRates) {
  // 17 equal flows over a chain of equal links, plus cross traffic: every
  // round after the first resolves at the clamped unit share; nobody may
  // starve.  (Regression guard for the drift the clamp exists to absorb.)
  std::vector<std::vector<int>> paths;
  for (int i = 0; i < 17; ++i) paths.push_back({0, 1, 2});
  for (int i = 0; i < 5; ++i) paths.push_back({1});
  const std::vector<double> rates = solve(paths, {7.0, 7.0, 7.0});
  for (const double r : rates) EXPECT_GT(r, 0.0);
}

TEST(MaxMin, EmptyPathFlowsAreUnconstrained) {
  const std::vector<double> rates = solve({{}, {0}, {}}, {10.0});
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_TRUE(std::isinf(rates[0]));
  EXPECT_DOUBLE_EQ(rates[1], 10.0);
  EXPECT_TRUE(std::isinf(rates[2]));
}

TEST(MaxMin, NoFlowsNoRates) {
  EXPECT_TRUE(solve({}, {10.0, 20.0}).empty());
}

TEST(MaxMin, LinkAppearingTwiceOnOnePathCountsOnceForFixing) {
  // A loopy (Valiant-style) path crossing link 0 twice: the flow is fixed
  // exactly once, and its weight is debited per occurrence, mirroring how
  // it was credited — so the link ends exactly empty, and a second flow on
  // the link still gets a sane share.
  const std::vector<double> rates = solve({{0, 1, 0}, {0}}, {10.0, 10.0});
  // Link 0 carries flow 0 twice + flow 1 once: unit share 10/3, and both
  // flows bind there (flow 0's two crossings consume two shares).
  EXPECT_DOUBLE_EQ(rates[0], 10.0 / 3.0);
  EXPECT_DOUBLE_EQ(rates[1], 10.0 / 3.0);
}

TEST(MaxMin, ScratchArenaReuseAcrossShapes) {
  // The scratch-arena entry point must give identical answers when reused
  // across solves with different link sets and flow counts (epoch stamps,
  // not full clears, reset the per-link state).
  MaxMinScratch scratch;
  std::vector<double> rates;
  const std::vector<int> p0 = {0};
  const std::vector<int> p12 = {1, 2};
  const std::vector<int> p2 = {2};
  const std::vector<double> capacity = {10.0, 4.0, 8.0};
  const std::vector<double> w2 = {1.0, 1.0};

  maxmin_rates({&p0, &p0}, capacity, w2, nullptr, scratch, rates);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);

  maxmin_rates({&p12, &p2}, capacity, w2, nullptr, scratch, rates);
  EXPECT_DOUBLE_EQ(rates[0], 4.0);  // link 1 binds
  EXPECT_DOUBLE_EQ(rates[1], 4.0);  // link 2 leftover
  const std::vector<double> once = rates;

  // Same solve again through the same scratch: bit-identical.
  maxmin_rates({&p12, &p2}, capacity, w2, nullptr, scratch, rates);
  EXPECT_EQ(rates[0], once[0]);
  EXPECT_EQ(rates[1], once[1]);
}

}  // namespace
}  // namespace hpc::net
