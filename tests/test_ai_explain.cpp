#include "ai/explain.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ai/datasets.hpp"

namespace hpc::ai {
namespace {

/// A dataset where only feature 0 carries the label: y = [x0 > 0], features
/// 1..d-1 are noise.
Dataset one_informative_feature(std::int64_t n, std::int64_t dim, sim::Rng& rng) {
  Dataset d;
  d.n = n;
  d.dim = dim;
  d.targets = 2;
  d.x.resize(static_cast<std::size_t>(n * dim));
  d.label.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-2.0, 2.0);
    d.x[static_cast<std::size_t>(i * dim)] = static_cast<float>(x0);
    for (std::int64_t k = 1; k < dim; ++k)
      d.x[static_cast<std::size_t>(i * dim + k)] = static_cast<float>(rng.normal(0.0, 1.0));
    d.label[static_cast<std::size_t>(i)] = x0 > 0.0 ? 1 : 0;
  }
  return d;
}

class ExplainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new sim::Rng(31);
    data_ = new Dataset(one_informative_feature(800, 4, *rng_));
    model_ = new Mlp({4, 16, 2}, Activation::kTanh, Loss::kSoftmaxCrossEntropy, *rng_);
    TrainConfig cfg;
    cfg.epochs = 40;
    model_->train(*data_, cfg, *rng_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    delete rng_;
    model_ = nullptr;
    data_ = nullptr;
    rng_ = nullptr;
  }
  static Mlp* model_;
  static Dataset* data_;
  static sim::Rng* rng_;
};

Mlp* ExplainTest::model_ = nullptr;
Dataset* ExplainTest::data_ = nullptr;
sim::Rng* ExplainTest::rng_ = nullptr;

TEST_F(ExplainTest, ModelActuallyLearned) {
  EXPECT_GT(model_->accuracy(*data_), 0.95);
}

TEST_F(ExplainTest, PermutationImportanceFindsTheSignal) {
  sim::Rng rng(32);
  const FeatureImportance fi = permutation_importance(*model_, *data_, rng);
  ASSERT_EQ(fi.importance.size(), 4u);
  EXPECT_GT(fi.baseline_score, 0.95);
  // Feature 0 dominates every noise feature.
  for (std::size_t k = 1; k < 4; ++k)
    EXPECT_GT(fi.importance[0], 5.0 * std::abs(fi.importance[k])) << k;
  // Shuffling the signal column costs a lot of accuracy.
  EXPECT_GT(fi.importance[0], 0.3);
}

TEST_F(ExplainTest, SaliencyConcentratesOnTheSignal) {
  // Average |attribution| over confident samples.
  std::vector<double> mean_abs(4, 0.0);
  int used = 0;
  for (std::int64_t i = 0; i < data_->n; i += 7) {
    const auto x = data_->input(i);
    if (std::abs(x[0]) < 0.5f) continue;  // skip boundary samples
    const std::vector<double> attr = saliency(*model_, x);
    for (std::size_t k = 0; k < 4; ++k) mean_abs[k] += std::abs(attr[k]);
    ++used;
  }
  ASSERT_GT(used, 20);
  for (std::size_t k = 1; k < 4; ++k) EXPECT_GT(mean_abs[0], 2.0 * mean_abs[k]) << k;
}

TEST_F(ExplainTest, SaliencySizeMatchesInput) {
  const std::vector<double> attr = saliency(*model_, data_->input(0));
  EXPECT_EQ(attr.size(), 4u);
}

TEST(Explain, RegressionImportanceUsesRmse) {
  sim::Rng rng(33);
  const Dataset osc = make_oscillator(600, rng);
  Mlp reg({3, 32, 1}, Activation::kTanh, Loss::kMse, rng);
  TrainConfig cfg;
  cfg.epochs = 80;
  cfg.learning_rate = 0.05f;
  reg.train(osc, cfg, rng);
  sim::Rng rng2(34);
  const FeatureImportance fi = permutation_importance(reg, osc, rng2);
  EXPECT_LT(fi.baseline_score, 0.0);  // -RMSE
  // All three oscillator inputs matter.
  for (const double imp : fi.importance) EXPECT_GT(imp, 0.0);
}

}  // namespace
}  // namespace hpc::ai
