#include "sim/audit.hpp"

#include <gtest/gtest.h>

#include "net/flowsim.hpp"
#include "net/topology.hpp"
#include "sched/cluster.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"

namespace hpc::sim {
namespace {

/// Scheduler scenario: a seeded synthetic workload runs through the
/// heterogeneous cluster simulator, and every placement's start/finish is
/// replayed onto the event kernel so the digest witnesses the full schedule.
void scheduler_scenario(Simulator& sim, Rng& rng) {
  sched::WorkloadConfig cfg;
  cfg.jobs = 40;
  cfg.mean_interarrival_s = 5.0;
  const std::vector<sched::Job> jobs = sched::generate_workload(cfg, rng);
  sched::ClusterSim cluster(sched::make_diversified_cluster(4, 4, 2, 1, 1),
                            sched::Policy::kHeteroAffinity, rng.engine()());
  cluster.add_jobs(jobs);
  const sched::ScheduleResult result = cluster.run();
  for (const sched::Placement& p : result.placements) {
    if (p.partition < 0) continue;
    sim.schedule_at(p.start, [] {});
    sim.schedule_at(p.finish, [] {});
  }
}

/// Network scenario: random flows over a single-switch fabric with Valiant
/// routing (which consumes Rng draws); each completion becomes an event.
void flowsim_scenario(Simulator& sim, Rng& rng) {
  const net::Network netw = net::make_single_switch(4);
  net::FlowSim fs(netw, net::CongestionControl::kNone, net::Routing::kValiant,
                  rng.engine()());
  const std::vector<int>& eps = netw.endpoints();
  for (int i = 0; i < 24; ++i) {
    net::FlowSpec flow;
    flow.src = eps[rng.index(eps.size())];
    flow.dst = eps[rng.index(eps.size())];
    flow.bytes = rng.uniform(1e6, 2e9);
    flow.start = from_seconds(rng.uniform(0.0, 0.5));
    flow.tag = i;
    fs.add_flow(flow);
  }
  const net::FlowRunSummary summary = fs.run();
  for (const net::FlowResult& f : summary.flows)
    sim.schedule_at(static_cast<TimeNs>(f.finish_ns), [] {});
}

/// The representative combined scenario the determinism contract is audited
/// against: scheduling and network simulation feeding one event stream.
void combined_scenario(Simulator& sim, Rng& rng) {
  scheduler_scenario(sim, rng);
  flowsim_scenario(sim, rng);
}

TEST(SimulatorDigest, FoldsExecutedEventsInOrder) {
  Simulator a;
  const std::uint64_t empty = a.event_digest();
  a.schedule_at(10, [] {});
  EXPECT_EQ(a.event_digest(), empty);  // scheduling alone must not change it
  a.run();
  EXPECT_NE(a.event_digest(), empty);
}

TEST(SimulatorDigest, IdenticalSchedulesYieldIdenticalDigests) {
  auto build_and_run = [] {
    Simulator s;
    for (TimeNs t : {100u, 50u, 50u, 900u}) s.schedule_at(t, [] {});
    s.run();
    return s.event_digest();
  };
  EXPECT_EQ(build_and_run(), build_and_run());
}

TEST(SimulatorDigest, InsertionOrderIsPartOfTheContract) {
  // Same timestamps, different insertion order: ties are broken by sequence
  // number, so the executed (time, seq) streams — and digests — differ.
  Simulator a;
  a.schedule_at(10, [] {});
  a.schedule_at(20, [] {});
  a.run();
  Simulator b;
  b.schedule_at(20, [] {});
  b.schedule_at(10, [] {});
  b.run();
  EXPECT_NE(a.event_digest(), b.event_digest());
}

TEST(DeterminismAuditor, SchedulerScenarioIsReproducible) {
  DeterminismAuditor auditor(scheduler_scenario);
  const AuditReport report = auditor.audit(/*seed=*/42, /*runs=*/3);
  ASSERT_EQ(report.runs.size(), 3u);
  EXPECT_TRUE(report.deterministic);
  EXPECT_GT(report.runs[0].events, 0u);
  for (const AuditRun& run : report.runs) {
    EXPECT_EQ(run.digest, report.digest());
    EXPECT_EQ(run.events, report.runs[0].events);
    EXPECT_EQ(run.end_time, report.runs[0].end_time);
  }
}

TEST(DeterminismAuditor, FlowsimScenarioIsReproducible) {
  DeterminismAuditor auditor(flowsim_scenario);
  const AuditReport report = auditor.audit(/*seed=*/7, /*runs=*/2);
  EXPECT_TRUE(report.deterministic);
  EXPECT_GT(report.runs[0].events, 0u);
}

TEST(DeterminismAuditor, CombinedScenarioIsReproducible) {
  DeterminismAuditor auditor(combined_scenario);
  const AuditReport report = auditor.audit(/*seed=*/2021, /*runs=*/2);
  EXPECT_TRUE(report.deterministic);
  EXPECT_GT(report.runs[0].events, 0u);
}

TEST(DeterminismAuditor, DifferentSeedsDiverge) {
  DeterminismAuditor auditor(combined_scenario);
  const AuditReport a = auditor.audit(/*seed=*/1);
  const AuditReport b = auditor.audit(/*seed=*/2);
  EXPECT_TRUE(a.deterministic);
  EXPECT_TRUE(b.deterministic);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(DeterminismAuditor, CatchesNondeterministicScenarios) {
  // A scenario leaking state across runs (here: a captured counter) is
  // exactly the class of bug the auditor exists to catch.
  int calls = 0;
  DeterminismAuditor auditor([&calls](Simulator& sim, Rng&) {
    sim.schedule_at(static_cast<TimeNs>(100 + calls++), [] {});
  });
  const AuditReport report = auditor.audit(/*seed=*/5, /*runs=*/2);
  EXPECT_FALSE(report.deterministic);
}

}  // namespace
}  // namespace hpc::sim
