#include "lexer.hpp"
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

// The lexer is what makes archlint v2 token-accurate: these tests pin the
// exact failure modes the v1 line scanner had — raw strings, line-spliced
// comments, `#if 0` regions, multi-line declarations — and prove none of
// them can false-positive (or false-negative) through lint_source().

namespace hpc::lint {
namespace {

std::vector<std::string> texts_of(const LexedFile& lf, TokKind kind) {
  std::vector<std::string> out;
  for (const Token& t : lf.tokens)
    if (t.kind == kind) out.push_back(t.text);
  return out;
}

bool has_ident(const LexedFile& lf, std::string_view name) {
  for (const Token& t : lf.tokens)
    if (t.kind == TokKind::kIdent && t.text == name) return true;
  return false;
}

// ------------------------------------------------------ raw strings ---------

TEST(ArchlintLexer, RawStringsBecomeSingleTokens) {
  const LexedFile lf = lex("const char* s = R\"(srand(1); std::unordered_map)\";\n");
  const std::vector<std::string> strings = texts_of(lf, TokKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "R\"(srand(1); std::unordered_map)\"");
  EXPECT_FALSE(has_ident(lf, "srand"));
  EXPECT_FALSE(has_ident(lf, "unordered_map"));
}

TEST(ArchlintLexer, RawStringsWithDelimitersAndQuotes) {
  // The )" inside the literal must not close a d-char-delimited raw string.
  const LexedFile lf = lex("auto s = R\"x(quote \" close )\" rand() )x\";\n");
  EXPECT_FALSE(has_ident(lf, "rand"));
  ASSERT_EQ(texts_of(lf, TokKind::kString).size(), 1u);
}

TEST(ArchlintLexer, MultiLineRawStringKeepsFollowingCodeVisible) {
  const char* src =
      "auto s = R\"(line one\n"
      "rand();\n"
      "line three)\";\n"
      "int after = 1;\n";
  const LexedFile lf = lex(src);
  EXPECT_FALSE(has_ident(lf, "rand"));
  EXPECT_TRUE(has_ident(lf, "after"));
}

TEST(ArchlintLexer, RawStringViolationsNeverFire) {
  const char* src =
      "const char* doc = R\"(call rand() on a std::unordered_map\n"
      "while reading std::random_device at time(nullptr))\";\n";
  EXPECT_TRUE(lint_source("src/hw/doc.cpp", src).empty());
}

// ------------------------------------------------- spliced comments ---------

TEST(ArchlintLexer, LineSplicedCommentSwallowsNextLine) {
  // The backslash-newline extends the // comment: srand(1) is commentary,
  // not code.  v1 matched per physical line and flagged it.
  const char* src =
      "int x = 0;  // a comment that continues \\\n"
      "srand(1);\n"
      "int y = 1;\n";
  const LexedFile lf = lex(src);
  EXPECT_FALSE(has_ident(lf, "srand"));
  EXPECT_TRUE(has_ident(lf, "y"));
  EXPECT_TRUE(lint_source("tests/spliced.cpp", src).empty());
}

TEST(ArchlintLexer, SplicedCodeKeepsPhysicalLines) {
  const char* src =
      "int ab\\\n"
      "cd = 2;\n"
      "int ef = 3;\n";
  const LexedFile lf = lex(src);
  EXPECT_TRUE(has_ident(lf, "abcd"));  // splice joins the identifier
  for (const Token& t : lf.tokens) {
    if (t.text == "ef") {
      EXPECT_EQ(t.line, 3u);  // physical lines survive
    }
  }
}

// ------------------------------------------------------ #if 0 blocks --------

TEST(ArchlintLexer, IfZeroRegionsAreInvisible) {
  const char* src =
      "int before() { return 1; }\n"
      "#if 0\n"
      "srand(1);\n"
      "std::unordered_map<int, int> dead;\n"
      "#if 1\n"
      "rand();\n"
      "#endif\n"
      "#endif\n"
      "int after() { return 2; }\n";
  const LexedFile lf = lex(src);
  EXPECT_FALSE(has_ident(lf, "srand"));
  EXPECT_FALSE(has_ident(lf, "unordered_map"));
  EXPECT_TRUE(has_ident(lf, "before"));
  EXPECT_TRUE(has_ident(lf, "after"));
  EXPECT_TRUE(lint_source("src/hw/dead.cpp", src).empty());
}

TEST(ArchlintLexer, ElseBranchOfIfZeroIsLive) {
  const char* src =
      "#if 0\n"
      "srand(1);\n"
      "#else\n"
      "int live = 1;\n"
      "#endif\n";
  const LexedFile lf = lex(src);
  EXPECT_FALSE(has_ident(lf, "srand"));
  EXPECT_TRUE(has_ident(lf, "live"));
}

TEST(ArchlintLexer, OrdinaryConditionalsStayVisible) {
  const char* src =
      "#ifdef FEATURE\n"
      "int a = 1;\n"
      "#else\n"
      "int b = 2;\n"
      "#endif\n";
  const LexedFile lf = lex(src);
  EXPECT_TRUE(has_ident(lf, "a"));
  EXPECT_TRUE(has_ident(lf, "b"));
}

// ----------------------------------------------- multi-line declarations ----

TEST(ArchlintLexer, MultiLineDeclarationTokensKeepTheirLines) {
  const char* src =
      "void set_timeout(\n"
      "    double timeout_ns,\n"
      "    int id);\n";
  const LexedFile lf = lex(src);
  for (const Token& t : lf.tokens) {
    if (t.text == "timeout_ns") {
      EXPECT_EQ(t.line, 2u);
    }
    if (t.text == "id") {
      EXPECT_EQ(t.line, 3u);
    }
  }
}

TEST(ArchlintLexer, MultiLineRawTimeDeclarationIsCaught) {
  // v1 matched "double X_ns" within one physical line and missed this.
  const char* src =
      "#pragma once\n"
      "/// \\file split.hpp\n"
      "namespace hpc::net {\n"
      "void set_timeout(double\n"
      "    timeout_ns);\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/net/split.hpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, Rule::kRawTime);
  EXPECT_EQ(fs[0].line, 5u);  // points at the parameter name's line
}

TEST(ArchlintLexer, MultiLineConstAccessorIsCaught) {
  // v1's `) const` regex needed both on one physical line.
  const char* src =
      "#pragma once\n"
      "/// \\file split.hpp\n"
      "namespace hpc::sim {\n"
      "class C {\n"
      " public:\n"
      "  int count()\n"
      "      const noexcept;\n"
      "};\n"
      "}\n";
  const std::vector<Finding> fs = lint_source("src/sim/split.hpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, Rule::kNodiscard);
}

// ------------------------------------------------------- mechanics ----------

TEST(ArchlintLexer, CommentsAreCollectedPerLine) {
  const char* src =
      "int a = 1;  // first\n"
      "/* second */ int b = 2;\n";
  const LexedFile lf = lex(src);
  ASSERT_GE(lf.line_comments.size(), 2u);
  EXPECT_NE(lf.line_comments[0].find("first"), std::string::npos);
  EXPECT_NE(lf.line_comments[1].find("second"), std::string::npos);
}

TEST(ArchlintLexer, DirectivesAreWhitespaceCollapsedSingleTokens) {
  const LexedFile lf = lex("#  include   \"net/link.hpp\"   // why\n");
  const std::vector<std::string> dirs = texts_of(lf, TokKind::kDirective);
  ASSERT_EQ(dirs.size(), 1u);
  EXPECT_EQ(dirs[0], "#include \"net/link.hpp\"");
}

TEST(ArchlintLexer, NumbersLexAsSingleTokens) {
  const LexedFile lf = lex("auto x = 1'000'000 + 1.5e-3 + 0x1Fp2;\n");
  const std::vector<std::string> nums = texts_of(lf, TokKind::kNumber);
  ASSERT_EQ(nums.size(), 3u);
  EXPECT_EQ(nums[0], "1'000'000");
  EXPECT_EQ(nums[1], "1.5e-3");
  EXPECT_EQ(nums[2], "0x1Fp2");
}

TEST(ArchlintLexer, FloatLiteralClassification) {
  EXPECT_TRUE(is_float_literal("1.0"));
  EXPECT_TRUE(is_float_literal("1e9"));
  EXPECT_TRUE(is_float_literal("2.5f"));
  EXPECT_TRUE(is_float_literal("3F"));
  EXPECT_TRUE(is_float_literal("0x1Fp2"));   // hex float: binary exponent
  EXPECT_FALSE(is_float_literal("42"));
  EXPECT_FALSE(is_float_literal("0x1F"));    // hex int: 'F' is a digit
  EXPECT_FALSE(is_float_literal("100L"));
  EXPECT_FALSE(is_float_literal("1'000"));
}

TEST(ArchlintLexer, UnterminatedStringClosesAtNewline) {
  const char* src =
      "const char* s = \"oops\n"
      "int still_lexed = 1;\n";
  EXPECT_TRUE(has_ident(lex(src), "still_lexed"));
}

TEST(ArchlintLexer, CrLfSourceLexesLikeLf) {
  const LexedFile a = lex("int x = 1;\r\nint y = 2;\r\n");
  const LexedFile b = lex("int x = 1;\nint y = 2;\n");
  ASSERT_EQ(a.tokens.size(), b.tokens.size());
  for (std::size_t i = 0; i < a.tokens.size(); ++i) {
    EXPECT_EQ(a.tokens[i].text, b.tokens[i].text);
    EXPECT_EQ(a.tokens[i].line, b.tokens[i].line);
  }
}

}  // namespace
}  // namespace hpc::lint
