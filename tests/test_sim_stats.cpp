#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"

namespace hpc::sim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.push(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.push(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).push(x);
    all.push(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.push(1.0);
  a.push(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Sampler, PercentilesOfKnownSequence) {
  Sampler s;
  for (int i = 1; i <= 100; ++i) s.push(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 0.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(Sampler, PercentileMonotoneInP) {
  Sampler s;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) s.push(rng.pareto(1.0, 1.5));
  double prev = -1.0;
  for (double p = 0.0; p <= 100.0; p += 5.0) {
    const double v = s.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Sampler, EmptyPercentileIsZero) {
  Sampler s;
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(Sampler, PushAfterQueryResorts) {
  Sampler s;
  s.push(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.push(0.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(LogHistogram, MeanExact) {
  LogHistogram h;
  h.record(10.0);
  h.record(20.0);
  h.record(30.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LogHistogram, PercentileWithinBinError) {
  LogHistogram h(20);
  Rng rng(5);
  Sampler exact;
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.lognormal(2.0, 1.0);
    h.record(v);
    exact.push(v);
  }
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    const double approx = h.percentile(p);
    const double truth = exact.percentile(p);
    // 20 bins/decade => ~12% max relative bin width; allow 2 bins of slack.
    EXPECT_NEAR(approx / truth, 1.0, 0.25) << "p=" << p;
  }
}

TEST(LogHistogram, EmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
}

TEST(TimeSeries, BucketsAccumulate) {
  TimeSeries ts(10.0);
  ts.add(1.0, 5.0);
  ts.add(9.0, 5.0);
  ts.add(15.0, 3.0);
  EXPECT_EQ(ts.buckets(), 2u);
  EXPECT_DOUBLE_EQ(ts.at(0), 10.0);
  EXPECT_DOUBLE_EQ(ts.at(1), 3.0);
  EXPECT_DOUBLE_EQ(ts.peak(), 10.0);
  EXPECT_DOUBLE_EQ(ts.total(), 13.0);
}

TEST(TimeSeries, NegativeTimeIgnored) {
  TimeSeries ts(1.0);
  ts.add(-0.5, 100.0);
  EXPECT_DOUBLE_EQ(ts.total(), 0.0);
}

TEST(TimeSeries, OutOfRangeReadIsZero) {
  TimeSeries ts(1.0);
  ts.add(0.0, 1.0);
  EXPECT_DOUBLE_EQ(ts.at(99), 0.0);
}

}  // namespace
}  // namespace hpc::sim
