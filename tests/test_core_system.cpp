#include "core/system.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace hpc::core {
namespace {

/// Edge site 0 (data source), supercomputer site 1, cloud site 2.
std::vector<fed::Site> archipelago() {
  fed::Site edge = fed::make_edge_site(0, "facility", 4);
  fed::Site core = fed::make_supercomputer_site(1, "leadership", 32);
  core.admin_domain = 0;
  fed::Site cloud = fed::make_cloud_site(2, "cloud", 32, 0.1);
  return {edge, core, cloud};
}

Task make_task(std::string name, TaskKind kind, std::vector<int> deps,
               std::vector<int> inputs, double out_gb, double gflop = 1e5) {
  Task t;
  t.name = std::move(name);
  t.kind = kind;
  t.deps = std::move(deps);
  t.input_datasets = std::move(inputs);
  t.output_gb = out_gb;
  t.job.nodes = 1;
  t.job.total_gflop = gflop;
  return t;
}

TEST(System, SingleTaskRuns) {
  System sys(archipelago());
  const int ds = sys.catalog().add("raw", 10.0, 1, 0, data::Sensitivity::kPublic, "");
  Workflow wf;
  wf.add(make_task("analyze", TaskKind::kAnalyze, {}, {ds}, 1.0));
  const WorkflowResult r = sys.run(wf, PlacementPolicy::kGravityAware);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_GE(r.outcomes[0].site, 0);
  EXPECT_GT(r.outcomes[0].finish, r.outcomes[0].start);
  EXPECT_GT(r.makespan, 0u);
}

TEST(System, DependenciesSequence) {
  System sys(archipelago());
  Workflow wf;
  const int a = wf.add(make_task("sim", TaskKind::kSimulate, {}, {}, 5.0));
  wf.add(make_task("train", TaskKind::kTrain, {a}, {}, 1.0));
  const WorkflowResult r = sys.run(wf, PlacementPolicy::kGravityAware);
  EXPECT_GE(r.outcomes[1].start, r.outcomes[0].finish);
}

TEST(System, OutputRegisteredAtExecutionSite) {
  System sys(archipelago());
  Workflow wf;
  wf.add(make_task("sim", TaskKind::kSimulate, {}, {}, 5.0));
  const WorkflowResult r = sys.run(wf, PlacementPolicy::kGravityAware);
  const int out_ds = r.outcomes[0].output_dataset;
  ASSERT_GE(out_ds, 0);
  const data::DatasetMeta& m = sys.catalog().get(out_ds);
  EXPECT_EQ(m.home_site, r.outcomes[0].site);
  EXPECT_DOUBLE_EQ(m.size_gb, 5.0);
  EXPECT_EQ(m.created, r.outcomes[0].finish);
}

TEST(System, LineageFlowsThroughWorkflow) {
  System sys(archipelago());
  Workflow wf;
  const int a = wf.add(make_task("sim", TaskKind::kSimulate, {}, {}, 5.0));
  const WorkflowResult r1 = sys.run(wf, PlacementPolicy::kGravityAware);
  const int ds_a = r1.outcomes[static_cast<std::size_t>(a)].output_dataset;

  Workflow wf2;
  wf2.add(make_task("train", TaskKind::kTrain, {}, {ds_a}, 1.0));
  const WorkflowResult r2 = sys.run(wf2, PlacementPolicy::kGravityAware);
  const int ds_b = r2.outcomes[0].output_dataset;
  ASSERT_GE(ds_b, 0);
  const std::vector<int> anc = sys.catalog().ancestors(ds_b);
  EXPECT_NE(std::find(anc.begin(), anc.end(), ds_a), anc.end());
}

TEST(System, GravityBeatsSiloedOnDataMovement) {
  // A chain of tasks over one big dataset: siloed placement ping-pongs the
  // data between pinned sites; gravity-aware keeps computation near it.
  auto build = [](System& sys, Workflow& wf) {
    const int raw =
        sys.catalog().add("raw", 200.0, 1, 0, data::Sensitivity::kPublic, "frames");
    const int t0 = wf.add(make_task("clean", TaskKind::kAnalyze, {}, {raw}, 150.0));
    Task sim = make_task("sim", TaskKind::kSimulate, {t0}, {raw}, 50.0);
    wf.add(sim);
    wf.add(make_task("train", TaskKind::kTrain, {t0}, {raw}, 10.0));
  };

  System siloed(archipelago());
  siloed.pin_silo(TaskKind::kAnalyze, 2);  // analytics in the cloud
  siloed.pin_silo(TaskKind::kSimulate, 1); // HPC at the center
  siloed.pin_silo(TaskKind::kTrain, 2);    // training in the cloud
  Workflow wf1;
  build(siloed, wf1);
  const WorkflowResult silo = siloed.run(wf1, PlacementPolicy::kSiloed);

  System gravity(archipelago());
  Workflow wf2;
  build(gravity, wf2);
  const WorkflowResult grav = gravity.run(wf2, PlacementPolicy::kGravityAware);

  EXPECT_LT(grav.wan_gb_moved, silo.wan_gb_moved);
  EXPECT_LE(grav.makespan, silo.makespan);
}

TEST(System, StagedInputGetsReplica) {
  System sys(archipelago());
  const int ds = sys.catalog().add("raw", 50.0, 0, 0, data::Sensitivity::kPublic, "");
  Workflow wf;
  Task t = make_task("train", TaskKind::kTrain, {}, {ds}, 1.0);
  wf.add(t);
  const WorkflowResult r = sys.run(wf, PlacementPolicy::kGravityAware);
  const int site = r.outcomes[0].site;
  const auto& replicas = sys.catalog().get(ds).replica_sites;
  EXPECT_NE(std::find(replicas.begin(), replicas.end(), site), replicas.end());
}

TEST(System, RestrictedDataPinsComputation) {
  System sys(archipelago());
  const int secret =
      sys.catalog().add("secret", 10.0, 0, 0, data::Sensitivity::kRestricted, "");
  Workflow wf;
  wf.add(make_task("analyze", TaskKind::kAnalyze, {}, {secret}, 1.0));
  const WorkflowResult r = sys.run(wf, PlacementPolicy::kGravityAware);
  EXPECT_EQ(r.outcomes[0].site, 0);  // must run where the data lives
}

TEST(System, CheapestPolicyMinimizesCost) {
  System sys(archipelago());
  Workflow wf;
  wf.add(make_task("analyze", TaskKind::kAnalyze, {}, {}, 0.0, 1e4));
  const WorkflowResult cheap = sys.run(wf, PlacementPolicy::kCheapest);
  System sys2(archipelago());
  Workflow wf2;
  wf2.add(make_task("analyze", TaskKind::kAnalyze, {}, {}, 0.0, 1e4));
  const WorkflowResult fast = sys2.run(wf2, PlacementPolicy::kGravityAware);
  EXPECT_LE(cheap.total_cost_usd, fast.total_cost_usd + 1e-9);
}

TEST(System, ParallelTasksOverlapOnDifferentNodes) {
  System sys(archipelago());
  Workflow wf;
  wf.add(make_task("a", TaskKind::kSimulate, {}, {}, 0.0, 1e6));
  wf.add(make_task("b", TaskKind::kSimulate, {}, {}, 0.0, 1e6));
  const WorkflowResult r = sys.run(wf, PlacementPolicy::kGravityAware);
  // Both independent tasks start at time 0 (enough free nodes exist).
  EXPECT_EQ(r.outcomes[0].start, 0u);
  EXPECT_EQ(r.outcomes[1].start, 0u);
}

TEST(System, InputTasksStageUpstreamOutputs) {
  // A producer at the edge (pinned via restricted data) hands 80 GB to a
  // consumer that must run at the center (too wide for the edge): the
  // consumer's staged bytes are exactly the producer's output.
  System sys(archipelago());
  const int pinned =
      sys.catalog().add("pinned", 1.0, 0, 0, data::Sensitivity::kRestricted, "");
  Workflow wf;
  Task produce = make_task("produce", TaskKind::kInfer, {}, {pinned}, 80.0);
  produce.output_sensitivity = data::Sensitivity::kPublic;
  const int p = wf.add(produce);
  Task consume = make_task("consume", TaskKind::kTrain, {p}, {}, 0.0, 1e6);
  consume.input_tasks = {p};
  consume.job.nodes = 16;  // wider than the edge site
  wf.add(consume);
  const WorkflowResult r = sys.run(wf, PlacementPolicy::kGravityAware);
  EXPECT_EQ(r.outcomes[0].site, 0);   // pinned with the restricted input
  EXPECT_NE(r.outcomes[1].site, 0);   // forced off the edge
  EXPECT_DOUBLE_EQ(r.outcomes[1].staged_gb, 80.0);
}

TEST(System, RestrictedOutputPinsDownstream) {
  // If the producer marks its output restricted, a downstream task that
  // consumes it cannot leave the producer's site.
  System sys(archipelago());
  Workflow wf;
  Task produce = make_task("produce", TaskKind::kAnalyze, {}, {}, 10.0);
  produce.output_sensitivity = data::Sensitivity::kRestricted;
  const int p = wf.add(produce);
  Task consume = make_task("consume", TaskKind::kAnalyze, {p}, {}, 0.0);
  consume.input_tasks = {p};
  wf.add(consume);
  const WorkflowResult r = sys.run(wf, PlacementPolicy::kGravityAware);
  ASSERT_GE(r.outcomes[0].site, 0);
  EXPECT_EQ(r.outcomes[1].site, r.outcomes[0].site);
}

TEST(System, InputTaskWithoutOutputIsHarmless) {
  System sys(archipelago());
  Workflow wf;
  Task produce = make_task("produce", TaskKind::kAnalyze, {}, {}, 0.0);  // no output
  const int p = wf.add(produce);
  Task consume = make_task("consume", TaskKind::kAnalyze, {p}, {}, 0.0);
  consume.input_tasks = {p};
  wf.add(consume);
  const WorkflowResult r = sys.run(wf, PlacementPolicy::kGravityAware);
  EXPECT_GE(r.outcomes[1].site, 0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].staged_gb, 0.0);
}

TEST(System, EnergyAndCostAccumulated) {
  System sys(archipelago());
  Workflow wf;
  wf.add(make_task("a", TaskKind::kSimulate, {}, {}, 0.0));
  wf.add(make_task("b", TaskKind::kTrain, {0}, {}, 0.0));
  const WorkflowResult r = sys.run(wf, PlacementPolicy::kGravityAware);
  EXPECT_GT(r.total_cost_usd, 0.0);
  EXPECT_GT(r.total_energy_j, 0.0);
}

}  // namespace
}  // namespace hpc::core
