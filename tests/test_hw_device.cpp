#include "hw/device.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "hw/catalog.hpp"

namespace hpc::hw {
namespace {

DeviceSpec simple_spec() {
  DeviceSpec d;
  d.name = "test";
  d.peak_gflops = {{Precision::FP32, 1'000.0}};  // 1 Tflop/s
  d.mem_bw_gbs = 100.0;
  d.tdp_w = 100.0;
  d.idle_w = 20.0;
  d.launch_overhead_ns = 0.0;
  d.set_flat_efficiency(1.0);
  return d;
}

TEST(Device, ComputeBoundTime) {
  const Device dev(simple_spec());
  Kernel k;
  k.op = OpClass::kGemm;
  k.flops = 1e9;   // at 1000 Gflop/s -> 1e6 ns
  k.bytes = 1e3;   // negligible
  k.precision = Precision::FP32;
  const auto est = dev.execute(k);
  EXPECT_NEAR(est.time_ns, 1e6, 1.0);
  EXPECT_TRUE(est.compute_bound);
}

TEST(Device, MemoryBoundTime) {
  const Device dev(simple_spec());
  Kernel k;
  k.op = OpClass::kGemm;
  k.flops = 1e3;
  k.bytes = 1e9;  // at 100 GB/s -> 1e7 ns
  k.precision = Precision::FP32;
  const auto est = dev.execute(k);
  EXPECT_NEAR(est.time_ns, 1e7, 1.0);
  EXPECT_FALSE(est.compute_bound);
}

TEST(Device, LaunchOverheadAdds) {
  DeviceSpec s = simple_spec();
  s.launch_overhead_ns = 5'000.0;
  const Device dev(s);
  Kernel k;
  k.flops = 0.0;
  k.bytes = 0.0;
  k.op = OpClass::kGemm;
  EXPECT_NEAR(dev.exec_time_ns(k), 5'000.0, 1e-9);
}

TEST(Device, EfficiencyScalesComputeTime) {
  DeviceSpec s = simple_spec();
  s.set_efficiency(OpClass::kGraph, 0.1);
  const Device dev(s);
  Kernel k;
  k.op = OpClass::kGraph;
  k.flops = 1e9;
  k.bytes = 1.0;
  EXPECT_NEAR(dev.exec_time_ns(k), 1e7, 10.0);  // 10x slower than full eff
}

TEST(Device, ZeroEfficiencyCannotRun) {
  DeviceSpec s = simple_spec();
  s.set_efficiency(OpClass::kFft, 0.0);
  const Device dev(s);
  Kernel k;
  k.op = OpClass::kFft;
  k.flops = 1.0;
  EXPECT_GE(dev.exec_time_ns(k), 1e17);
}

TEST(Device, PrecisionFallbackToWider) {
  const Device dev(simple_spec());  // only FP32
  EXPECT_EQ(dev.effective_precision(Precision::BF16), Precision::FP32);
  EXPECT_EQ(dev.effective_precision(Precision::INT8), Precision::FP32);
  EXPECT_DOUBLE_EQ(dev.peak_gflops(Precision::INT8), 1'000.0);
}

TEST(Device, PrecisionFallbackWhenOnlyNarrowSupported) {
  DeviceSpec s = simple_spec();
  s.peak_gflops = {{Precision::INT8, 500.0}};
  const Device dev(s);
  // FP64 requested but only INT8 exists: least-lossy remaining option.
  EXPECT_EQ(dev.effective_precision(Precision::FP64), Precision::INT8);
}

TEST(Device, NativePrecisionPreferred) {
  DeviceSpec s = simple_spec();
  s.peak_gflops = {{Precision::FP32, 1'000.0}, {Precision::BF16, 4'000.0}};
  const Device dev(s);
  EXPECT_EQ(dev.effective_precision(Precision::BF16), Precision::BF16);
  EXPECT_DOUBLE_EQ(dev.peak_gflops(Precision::BF16), 4'000.0);
}

TEST(Device, EnergyBetweenIdleAndTdp) {
  const Device dev(simple_spec());
  Kernel k;
  k.op = OpClass::kGemm;
  k.flops = 1e9;
  k.bytes = 1e6;
  const auto est = dev.execute(k);
  const double seconds = est.time_ns * 1e-9;
  EXPECT_GE(est.energy_j, 20.0 * seconds * 0.99);
  EXPECT_LE(est.energy_j, 100.0 * seconds * 1.01);
}

TEST(Device, FullUtilizationDrawsTdp) {
  const Device dev(simple_spec());
  Kernel k;
  k.op = OpClass::kGemm;
  k.flops = 1e9;
  k.bytes = 0.0;  // pure compute -> utilization 1
  const auto est = dev.execute(k);
  EXPECT_NEAR(est.energy_j, 100.0 * est.time_ns * 1e-9, 1e-6);
}

TEST(Device, SustainedNeverExceedsPeak) {
  for (const DeviceSpec& spec : default_catalog()) {
    const Device dev(spec);
    const Kernel k = make_gemm(2048, 2048, 2048, Precision::FP32);
    const double sustained = dev.sustained_gflops(k);
    EXPECT_LE(sustained, dev.peak_gflops(Precision::FP32) * 1.0001) << spec.name;
  }
}

// -- Catalog sanity, parameterized over every device family -----------------

class CatalogDevice : public ::testing::TestWithParam<DeviceSpec> {};

TEST_P(CatalogDevice, SpecIsPhysicallyPlausible) {
  const DeviceSpec& d = GetParam();
  EXPECT_FALSE(d.name.empty());
  EXPECT_FALSE(d.peak_gflops.empty());
  for (const auto& [p, gf] : d.peak_gflops) {
    (void)p;
    EXPECT_GT(gf, 0.0);
  }
  EXPECT_GT(d.mem_bw_gbs, 0.0);
  EXPECT_GT(d.tdp_w, d.idle_w);
  EXPECT_GT(d.cost_usd, 0.0);
  for (const double e : d.efficiency) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST_P(CatalogDevice, ExecutesAGemm) {
  const Device dev(GetParam());
  const Kernel k = make_gemm(1024, 1024, 1024, Precision::FP32);
  const auto est = dev.execute(k);
  EXPECT_GT(est.time_ns, 0.0);
  EXPECT_LT(est.time_ns, 1e17) << GetParam().name << " cannot run GEMM";
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, CatalogDevice,
                         ::testing::ValuesIn(default_catalog()),
                         [](const ::testing::TestParamInfo<DeviceSpec>& info) {
                           std::string n = info.param.name;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Catalog, SpecializationIsPeaked) {
  // The paper's premise: specialized silicon is spectacular on its motif and
  // poor off-motif, while the CPU is flat.
  const DeviceSpec tpu = systolic_spec();
  EXPECT_GT(tpu.efficiency_of(OpClass::kGemm), 0.9);
  EXPECT_LT(tpu.efficiency_of(OpClass::kGraph), 0.05);

  const DeviceSpec cpu = cpu_server_spec();
  double min_eff = 1.0;
  double max_eff = 0.0;
  for (const double e : cpu.efficiency) {
    min_eff = std::min(min_eff, e);
    max_eff = std::max(max_eff, e);
  }
  EXPECT_GT(min_eff, 0.2);  // CPU never collapses
  EXPECT_LT(max_eff / min_eff, 4.0);
}

TEST(Catalog, GpuBeatsCpuOnTrainingMotif) {
  const Device cpu(cpu_server_spec());
  const Device gpu(gpu_hpc_spec());
  const Kernel k = make_gemm(4096, 4096, 4096, Precision::BF16);
  EXPECT_LT(gpu.exec_time_ns(k), cpu.exec_time_ns(k) / 10.0);
}

TEST(Catalog, CpuBeatsSystolicOnGraphs) {
  const Device cpu(cpu_server_spec());
  const Device tpu(systolic_spec());
  const Kernel k = make_graph(100'000'000);
  EXPECT_LT(cpu.exec_time_ns(k), tpu.exec_time_ns(k));
}

TEST(Catalog, EdgeNpuIsLowPower) {
  EXPECT_LT(edge_npu_spec().tdp_w, 20.0);
  EXPECT_GT(gpu_hpc_spec().tdp_w, 300.0);
}

}  // namespace
}  // namespace hpc::hw
