#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "net/flowsim.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"

/// \file flowsim_reference.hpp
/// Frozen pre-optimization FlowSim — the golden oracle.
///
/// This is a verbatim copy of the simple O(events × rounds × links × flows)
/// implementation that `hpc::net::FlowSim` shipped with before the
/// incidence-indexed hot-path rework (PR 2).  It exists purely so
/// test_net_flowsim_golden.cpp can assert that every optimization in the
/// production simulator is *behavior-preserving*: bit-identical per-flow
/// `fct_ns`/`finish_ns`, result ordering, and summary aggregates on seeded
/// scenarios.  Do not "fix" or optimize this file — its whole value is that
/// it never changes.  (It intentionally reuses the public FlowSpec /
/// FlowResult / FlowRunSummary types so summaries compare field-for-field.)
namespace hpc::net::testref {

/// The pre-rework flow simulator, preserved bit-for-bit.
class ReferenceFlowSim {
 public:
  ReferenceFlowSim(const Network& net, CongestionControl cc = CongestionControl::kFlowBased,
                   Routing routing = Routing::kMinimal, std::uint64_t seed = 1,
                   double tree_degradation = 0.8)
      : net_(net), cc_(cc), routing_(routing), rng_(seed),
        tree_degradation_(tree_degradation) {}

  void add_flow(const FlowSpec& spec) { pending_.push_back(spec); }

  FlowRunSummary run() {
    std::sort(pending_.begin(), pending_.end(),
              [](const FlowSpec& a, const FlowSpec& b) { return a.start < b.start; });

    FlowRunSummary summary;
    std::vector<ActiveFlow> storage;
    storage.reserve(pending_.size());
    std::vector<ActiveFlow*> active;
    std::size_t next_arrival = 0;
    double now = 0.0;
    double total_bytes = 0.0;

    auto activate_due = [&](double t) {
      while (next_arrival < pending_.size() &&
             static_cast<double>(pending_[next_arrival].start) <= t + 1e-9) {
        const FlowSpec& spec = pending_[next_arrival++];
        storage.push_back(ActiveFlow{spec, pick_path(spec.src, spec.dst), spec.bytes, 0.0,
                                     static_cast<double>(spec.start)});
        active.push_back(&storage.back());
        if (link_load_.size() != net_.link_count()) link_load_.assign(net_.link_count(), 0);
        for (const int lid : storage.back().path) ++link_load_[static_cast<std::size_t>(lid)];
        total_bytes += spec.bytes;
      }
    };

    activate_due(0.0);

    while (!active.empty() || next_arrival < pending_.size()) {
      if (active.empty()) {
        now = static_cast<double>(pending_[next_arrival].start);
        activate_due(now);
        continue;
      }
      compute_rates(active);

      // Next completion.
      double next_completion = std::numeric_limits<double>::infinity();
      for (const ActiveFlow* f : active) {
        if (f->rate <= 0.0) continue;
        if (std::isinf(f->rate)) {
          next_completion = now;  // zero-hop flow finishes immediately
          break;
        }
        next_completion = std::min(next_completion, now + f->remaining / f->rate);
      }
      const double next_arrival_t = next_arrival < pending_.size()
                                        ? static_cast<double>(pending_[next_arrival].start)
                                        : std::numeric_limits<double>::infinity();
      double t_next = std::min(next_completion, next_arrival_t);
      if (!std::isfinite(t_next)) {
        for (ActiveFlow* f : active) f->remaining = 0.0;
        t_next = now;
      }
      const double dt = std::max(0.0, t_next - now);

      // Drain bytes.
      for (ActiveFlow* f : active) {
        if (std::isinf(f->rate)) {
          f->remaining = 0.0;
        } else {
          f->remaining -= f->rate * dt;
        }
      }
      now = t_next;

      // Complete finished flows.
      for (std::size_t i = 0; i < active.size();) {
        ActiveFlow* f = active[i];
        if (f->remaining <= 0.1) {
          FlowResult r;
          r.spec = f->spec;
          r.finish_ns = now;
          r.fct_ns = now - f->started_ns;
          r.mean_rate_gbs = r.fct_ns > 0.0 ? f->spec.bytes / r.fct_ns : 0.0;
          summary.flows.push_back(r);
          for (const int lid : f->path) --link_load_[static_cast<std::size_t>(lid)];
          active[i] = active.back();
          active.pop_back();
        } else {
          ++i;
        }
      }
      activate_due(now);
    }

    summary.makespan_ns = now;
    summary.aggregate_throughput_gbs = now > 0.0 ? total_bytes / now : 0.0;
    return summary;
  }

 private:
  struct ActiveFlow {
    FlowSpec spec;
    std::vector<int> path;
    double remaining = 0.0;
    double rate = 0.0;
    double started_ns = 0.0;
  };

  int path_load(const std::vector<int>& path) const {
    int worst = 0;
    for (const int lid : path)
      worst = std::max(worst, link_load_[static_cast<std::size_t>(lid)]);
    return worst;
  }

  std::vector<int> pick_path(int src, int dst) {
    if (src == dst) return {};
    if (routing_ == Routing::kMinimal) return net_.route(src, dst);

    std::vector<int> switches;
    for (std::size_t v = 0; v < net_.node_count(); ++v)
      if (net_.role(static_cast<int>(v)) == NodeRole::kSwitch)
        switches.push_back(static_cast<int>(v));
    if (switches.empty()) return net_.route(src, dst);
    const int mid = switches[rng_.index(switches.size())];
    std::vector<int> detour = net_.route_via(src, mid, dst);
    if (routing_ == Routing::kValiant) return detour;

    std::vector<int> minimal = net_.route(src, dst);
    if (link_load_.size() != net_.link_count())
      link_load_.assign(net_.link_count(), 0);
    if (path_load(minimal) >= 2 * path_load(detour) + 2) return detour;
    return minimal;
  }

  static std::vector<double> maxmin_rates(const std::vector<const std::vector<int>*>& paths,
                                          const std::vector<double>& capacity,
                                          const std::vector<double>& weights,
                                          const std::vector<double>* rate_cap = nullptr) {
    const std::size_t nf = paths.size();
    std::vector<double> rate(nf, std::numeric_limits<double>::infinity());
    std::vector<double> rem = capacity;
    std::vector<double> weight_sum(capacity.size(), 0.0);
    std::vector<int> count(capacity.size(), 0);
    std::vector<bool> fixed(nf, false);

    for (std::size_t f = 0; f < nf; ++f) {
      if (paths[f]->empty()) {
        fixed[f] = true;
        continue;
      }
      for (const int lid : *paths[f]) {
        weight_sum[static_cast<std::size_t>(lid)] += weights[f];
        ++count[static_cast<std::size_t>(lid)];
      }
    }

    double last_unit = 0.0;
    while (true) {
      double best_unit = std::numeric_limits<double>::infinity();
      int best_link = -1;
      for (std::size_t l = 0; l < rem.size(); ++l) {
        if (count[l] > 0 && weight_sum[l] > 0.0) {
          const double unit = std::max(rem[l] / weight_sum[l], last_unit);
          if (unit < best_unit) {
            best_unit = unit;
            best_link = static_cast<int>(l);
          }
        }
      }
      int best_flow = -1;
      if (rate_cap) {
        for (std::size_t f = 0; f < nf; ++f)
          if (!fixed[f] && (*rate_cap)[f] > 0.0 && (*rate_cap)[f] / weights[f] < best_unit) {
            best_unit = (*rate_cap)[f] / weights[f];
            best_flow = static_cast<int>(f);
            best_link = -1;
          }
      }
      if (best_link < 0 && best_flow < 0) break;
      last_unit = best_unit;

      auto fix_flow = [&](std::size_t f) {
        rate[f] = best_unit * weights[f];
        fixed[f] = true;
        for (const int lid : *paths[f]) {
          const auto l = static_cast<std::size_t>(lid);
          rem[l] = std::max(0.0, rem[l] - rate[f]);
          weight_sum[l] -= weights[f];
          --count[l];
        }
      };

      if (best_flow >= 0) {
        fix_flow(static_cast<std::size_t>(best_flow));
        continue;
      }
      for (std::size_t f = 0; f < nf; ++f) {
        if (fixed[f]) continue;
        bool on = false;
        for (const int lid : *paths[f])
          if (lid == best_link) {
            on = true;
            break;
          }
        if (on) fix_flow(f);
      }
    }
    return rate;
  }

  void compute_rates(std::vector<ActiveFlow*>& active) {
    std::vector<const std::vector<int>*> paths;
    paths.reserve(active.size());
    for (const ActiveFlow* f : active) paths.push_back(&f->path);

    std::vector<double> capacity(net_.link_count());
    for (std::size_t l = 0; l < capacity.size(); ++l)
      capacity[l] = net_.link(static_cast<int>(l)).bandwidth_gbs;

    std::vector<double> weights;
    weights.reserve(active.size());
    for (const ActiveFlow* f : active) weights.push_back(std::max(1e-6, f->spec.weight));

    std::vector<double> rates = maxmin_rates(paths, capacity, weights);

    if (cc_ == CongestionControl::kNone && !active.empty()) {
      std::vector<double> eff = capacity;
      std::vector<double> caps(active.size(), 0.0);
      for (std::size_t f = 0; f < active.size(); ++f) {
        const auto& path = active[f]->path;
        if (path.empty()) continue;
        int sharing = 0;
        for (const ActiveFlow* g : active)
          for (const int lid : g->path)
            if (lid == path.front()) {
              ++sharing;
              break;
            }
        const double inject =
            capacity[static_cast<std::size_t>(path.front())] / std::max(1, sharing);
        const double excess = std::max(0.0, inject - rates[f]);
        caps[f] = rates[f];
        if (excess <= 1e-12) continue;
        for (std::size_t h = 0; h + 1 < path.size(); ++h) {
          const auto l = static_cast<std::size_t>(path[h]);
          eff[l] = std::max(0.05 * capacity[l], eff[l] - tree_degradation_ * excess);
        }
      }
      rates = maxmin_rates(paths, eff, weights, &caps);
    }

    for (std::size_t f = 0; f < active.size(); ++f) active[f]->rate = rates[f];
  }

  const Network& net_;
  CongestionControl cc_;
  Routing routing_;
  sim::Rng rng_;
  double tree_degradation_;
  std::vector<FlowSpec> pending_;
  std::vector<int> link_load_;
};

}  // namespace hpc::net::testref
